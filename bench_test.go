// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§4), plus micro-benchmarks and policy
// ablations. Run everything with
//
//	go test -bench=. -benchmem
//
// Each figure benchmark regenerates the figure's data and reports its
// headline numbers as custom metrics; the first iteration prints the
// full table (EXPERIMENTS.md records paper-vs-measured values).
package dynacut_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dynacut/dynacut"
	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/experiments"
)

// printOnce emits a figure's rendering on the first iteration only.
func printOnce(b *testing.B, i int, title, body string) {
	b.Helper()
	if i == 0 {
		fmt.Printf("\n--- %s ---\n%s", title, body)
	}
}

func BenchmarkFigure2_LivenessMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Figure 2: basic-block liveness", experiments.FormatF2(rows))
		for _, r := range rows {
			if r.Program == "lighttpd" {
				b.ReportMetric(float64(r.UnusedBlocks)/float64(r.TotalBlocks)*100, "lighttpd-unused-%")
			}
		}
	}
}

func BenchmarkFigure6_FeatureRemoval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Figure 6: feature-removal overhead", experiments.FormatF6(rows))
		for _, r := range rows {
			b.ReportMetric(float64(r.Total().Microseconds()), r.App+"-total-us")
		}
	}
}

func BenchmarkFigure7_InitRemoval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(!testing.Short())
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Figure 7: init-code removal cost", experiments.FormatF7(rows))
		for _, r := range rows {
			if r.App == "600.perlbench_s" || r.App == "lighttpd" {
				b.ReportMetric(float64(r.CodeUpdate.Microseconds()), r.App+"-update-us")
			}
		}
	}
}

func BenchmarkFigure8_ServiceInterruption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Figure 8: Redis-like throughput timeline", experiments.FormatF8(res))
		if !res.ServerSurvived {
			b.Fatal("server died during rewrites")
		}
	}
}

func BenchmarkFigure9_InitBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(!testing.Short())
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Figure 9: executed vs removed basic blocks", experiments.FormatF9(rows))
		for _, r := range rows {
			if r.App == "nginx" {
				b.ReportMetric(r.RemovedPct*100, "nginx-removed-%")
			}
		}
	}
}

func BenchmarkFigure10_LiveBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Figure 10: live basic blocks over time", experiments.FormatF10(res))
		b.ReportMetric(res.MaxPct*100, "dynacut-max-live-%")
		b.ReportMetric(res.RazorPct*100, "razor-live-%")
		b.ReportMetric(res.ChiselPct*100, "chisel-live-%")
	}
}

func BenchmarkTable1_CVEMitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Table 1: Redis CVE mitigation", experiments.FormatT1(rows))
		mitigated := 0
		for _, r := range rows {
			if r.BlockedMitigated {
				mitigated++
			}
		}
		b.ReportMetric(float64(mitigated), "CVEs-mitigated")
	}
}

func BenchmarkSecurity_PLTRemoval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SecurityPLT()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Security: executed-PLT removal (ret2plt)", experiments.FormatPLT(rows))
		for _, r := range rows {
			b.ReportMetric(float64(r.RemovedPLT), r.App+"-plt-removed")
		}
	}
}

func BenchmarkSecurity_SyscallSpecialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SecuritySeccomp()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Security: temporal syscall specialization (§5)",
			experiments.FormatSeccomp(res))
		b.ReportMetric(float64(res.AllowedSyscalls), "allowed-syscalls")
	}
}

func BenchmarkSecurity_BROP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SecurityBROP()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Security: BROP mitigation", experiments.FormatBROP(res))
		b.ReportMetric(float64(res.VanillaRounds), "vanilla-rounds")
		b.ReportMetric(float64(res.ProtectedRounds), "protected-rounds")
	}
}

func BenchmarkAblation_TraceQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationTraceQuality()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: profiling-quality sensitivity (§5)",
			experiments.FormatAblation(rows))
		b.ReportMetric(float64(rows[0].FalseRemovals), "false-rm-smallest-profile")
		b.ReportMetric(float64(rows[len(rows)-1].FalseRemovals), "false-rm-fullest-profile")
	}
}

// ---------------------------------------------------------------------------
// Ablation: removal-policy cost (DESIGN.md's policy trade-off)

func benchmarkPolicy(b *testing.B, policy dynacut.Policy) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080, InitRoutines: 64})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range experiments.WantedWeb {
			if _, err := sess.Request(r); err != nil {
				b.Fatal(err)
			}
		}
		serving, err := sess.SnapshotPhase("serving")
		if err != nil {
			b.Fatal(err)
		}
		blocks := dynacut.IdentifyInitBlocks(sess.InitGraph(), serving, app.Config.Name)
		cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := cust.DisableBlocks("init", blocks, policy)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if i == 0 {
			b.Logf("policy %v: %d blocks, %d pages unmapped, %v total",
				policy, stats.BlocksPatched, stats.PagesUnmapped, stats.Total())
		}
	}
}

func BenchmarkAblation_PolicyBlockEntry(b *testing.B) { benchmarkPolicy(b, dynacut.PolicyBlockEntry) }
func BenchmarkAblation_PolicyWipeBlocks(b *testing.B) { benchmarkPolicy(b, dynacut.PolicyWipeBlocks) }
func BenchmarkAblation_PolicyUnmapPages(b *testing.B) { benchmarkPolicy(b, dynacut.PolicyUnmapPages) }

// ---------------------------------------------------------------------------
// Micro-benchmarks: the primitive costs behind the figures.

func buildBenchSession(b *testing.B) *dynacut.Session {
	b.Helper()
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		b.Fatal(err)
	}
	return sess
}

func BenchmarkMicro_CheckpointDump(b *testing.B) {
	sess := buildBenchSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynacut.Dump(sess.Machine, sess.PID(), dynacut.DumpOpts{ExecPages: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalDump measures the tentpole property of the
// incremental pipeline: re-checkpointing an idle guest against the
// previous images transfers a fraction of the page bytes of the first,
// full dump (real CRIU's --track-mem parent images).
func BenchmarkIncrementalDump(b *testing.B) {
	sess := buildBenchSession(b)
	pageBytes := func(set *dynacut.ImageSet) int {
		n := 0
		for _, pi := range set.Procs {
			n += len(pi.Pages)
		}
		return n
	}
	parent, err := dynacut.Dump(sess.Machine, sess.PID(), dynacut.DumpOpts{ExecPages: true})
	if err != nil {
		b.Fatal(err)
	}
	fullBytes := pageBytes(parent)
	var deltaBytes, skipped int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := dynacut.Dump(sess.Machine, sess.PID(), dynacut.DumpOpts{
			ExecPages: true, Parent: parent,
		})
		if err != nil {
			b.Fatal(err)
		}
		deltaBytes = pageBytes(set)
		skipped = set.PagesSkipped
	}
	b.StopTimer()
	if skipped == 0 {
		b.Fatal("incremental dump skipped no pages")
	}
	if deltaBytes*10 > fullBytes {
		b.Fatalf("incremental dump carries %d page bytes, full dump %d — want >=10x reduction",
			deltaBytes, fullBytes)
	}
	b.ReportMetric(float64(fullBytes), "full-page-bytes")
	b.ReportMetric(float64(deltaBytes), "delta-page-bytes")
	b.ReportMetric(float64(skipped), "pages-skipped")
}

// ---------------------------------------------------------------------------
// Observer overhead: the same rewrite and incremental-dump loops with
// the observability layer detached (nil — the zero-overhead contract)
// and attached, so BENCH json records both sides of the comparison.

func benchmarkObserverRewrite(b *testing.B, o *dynacut.Observer) {
	sess := buildBenchSession(b)
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
		Observer: o,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cust.Rewrite(func(ed *crit.Editor, pids []int) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if o != nil {
		b.ReportMetric(float64(o.Seq()), "trace-events")
	}
}

func BenchmarkObserver_RewriteNil(b *testing.B) { benchmarkObserverRewrite(b, nil) }
func BenchmarkObserver_RewriteAttached(b *testing.B) {
	benchmarkObserverRewrite(b, dynacut.NewObserver(0))
}

func benchmarkObserverIncrementalDump(b *testing.B, o *dynacut.Observer) {
	sess := buildBenchSession(b)
	if o != nil {
		sess.Machine.SetObserver(o)
	}
	parent, err := dynacut.Dump(sess.Machine, sess.PID(), dynacut.DumpOpts{ExecPages: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynacut.Dump(sess.Machine, sess.PID(), dynacut.DumpOpts{
			ExecPages: true, Parent: parent,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObserver_IncrementalDumpNil(b *testing.B) { benchmarkObserverIncrementalDump(b, nil) }
func BenchmarkObserver_IncrementalDumpAttached(b *testing.B) {
	benchmarkObserverIncrementalDump(b, dynacut.NewObserver(0))
}

func BenchmarkMicro_DumpRestoreCycle(b *testing.B) {
	sess := buildBenchSession(b)
	pid := sess.PID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := dynacut.Dump(sess.Machine, pid, dynacut.DumpOpts{ExecPages: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Machine.Kill(pid); err != nil {
			b.Fatal(err)
		}
		procs, _, err := dynacut.Restore(sess.Machine, set)
		if err != nil {
			b.Fatal(err)
		}
		pid = procs[0].PID()
	}
}

func BenchmarkMicro_ImageMarshal(b *testing.B) {
	sess := buildBenchSession(b)
	set, err := dynacut.Dump(sess.Machine, sess.PID(), dynacut.DumpOpts{ExecPages: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := set.Marshal()
		if len(blob) == 0 {
			b.Fatal("empty blob")
		}
	}
}

func BenchmarkMicro_GuestRequest(b *testing.B) {
	sess := buildBenchSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := sess.Request("GET /\n")
		if err != nil || !strings.Contains(resp, "200") {
			b.Fatalf("resp=%q err=%v", resp, err)
		}
	}
}

func BenchmarkMicro_StaticCFG(b *testing.B) {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := dynacut.AnalyzeCFG(app.Exe)
		if cfg.Count() == 0 {
			b.Fatal("empty CFG")
		}
	}
}

func BenchmarkMicro_TraceDiff(b *testing.B) {
	sess := buildBenchSession(b)
	for _, r := range experiments.WantedWeb {
		if _, err := sess.Request(r); err != nil {
			b.Fatal(err)
		}
	}
	wanted, err := sess.SnapshotPhase("wanted")
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range experiments.UndesiredWeb {
		if _, err := sess.Request(r); err != nil {
			b.Fatal(err)
		}
	}
	undesired, err := sess.SnapshotPhase("undesired")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dynacut.DiffGraphs(undesired, wanted)
		if d.Count() == 0 {
			b.Fatal("empty diff")
		}
	}
}

// BenchmarkMicro_BootFromScratch vs BenchmarkMicro_RestoreCustomized
// quantify the paper's §4.1 footnote: resuming a customized process
// image is faster than booting through the whole initialization
// sequence again.
func BenchmarkMicro_BootFromScratch(b *testing.B) {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{
		Name: "lighttpd", Port: 8080, InitRoutines: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_RestoreCustomized(b *testing.B) {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{
		Name: "lighttpd", Port: 8080, InitRoutines: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		b.Fatal(err)
	}
	set, err := dynacut.Dump(sess.Machine, sess.PID(), dynacut.DumpOpts{ExecPages: true})
	if err != nil {
		b.Fatal(err)
	}
	blob := set.Marshal()
	binaries := map[string][]byte{}
	for _, name := range []string{app.Exe.Name, app.Libc.Name} {
		data, err := sess.Machine.ReadFile(name)
		if err != nil {
			b.Fatal(err)
		}
		binaries[name] = data
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := dynacut.NewMachine()
		for name, data := range binaries {
			m.WriteFile(name, data)
		}
		shipped, err := dynacut.UnmarshalImages(blob)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := dynacut.Restore(m, shipped); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_BuildWebServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSupervisorOverhead measures the request-path cost of the
// attached closed-loop supervisor. "bare" is the baseline; "attached"
// adds the tick watchdog firing every DefaultPollEvery ticks with
// nothing to heal (the pure poll cost); "canaried" adds the
// end-to-end health probe on its DefaultCanaryEvery cadence — the
// full steady-state configuration.
func BenchmarkSupervisorOverhead(b *testing.B) {
	run := func(b *testing.B, attach bool, canary bool) {
		app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
		if err != nil {
			b.Fatal(err)
		}
		cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if attach {
			cfg := dynacut.SupervisorConfig{}
			if canary {
				cfg.Canary = sess.Canary("GET /\n", "200")
			}
			sup := dynacut.NewSupervisor(sess.Machine, cust, cfg)
			if err := sup.Attach(); err != nil {
				b.Fatal(err)
			}
			defer sup.Detach()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := sess.MustRequest("GET /\n"); !strings.Contains(resp, "200") {
				b.Fatalf("GET -> %q (%v)", resp, sess.LastErr)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, false, false) })
	b.Run("attached", func(b *testing.B) { run(b, true, false) })
	b.Run("canaried", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkFleetRollout measures the tentpole of fleet-scale
// customization: one profiled template cloned copy-on-write into N
// replicas, then the webdav-removal rewrite rolled out across all of
// them, serial (1 worker) vs pooled. The headline metric is virtual
// ticks: SerialTicks sums every replica's rewrite cost on the guest
// clock, FleetTicks is the LPT packing of those costs into the worker
// lanes — host-independent numbers the 1-CPU CI runner can't distort.
func BenchmarkFleetRollout(b *testing.B) {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		b.Fatal(err)
	}
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		b.Fatal(err)
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		b.Fatal(err)
	}

	// The health probe drives each replica's guest clock through a
	// real request, so per-replica Ticks reflect the full
	// rewrite-and-verify cycle rather than flooring at 1.
	health := dynacut.HealthProbe(app.Config.Port, "GET /\n", "200")

	run := func(b *testing.B, replicas, workers int) {
		for i := 0; i < b.N; i++ {
			f, err := dynacut.NewFleetFromSession(sess, dynacut.FleetConfig{
				Replicas: replicas,
				Workers:  workers,
				WaveSize: replicas, // one canary, then everything in one wave
				Core: dynacut.CustomizerOptions{
					RedirectTo:  errAddr,
					HealthCheck: health,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := f.Rollout(func(r *dynacut.FleetReplica) (dynacut.RewriteStats, error) {
				return r.Cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry)
			})
			if err != nil {
				b.Fatal(err)
			}
			if got := res.Committed(); got != replicas {
				b.Fatalf("committed %d/%d: %+v", got, replicas, res.Outcomes)
			}
			if i == 0 {
				st := f.Store().Stats()
				b.ReportMetric(float64(res.SerialTicks), "serial-vticks")
				b.ReportMetric(float64(res.FleetTicks), "fleet-vticks")
				b.ReportMetric(float64(res.SerialTicks)/float64(res.FleetTicks), "vtick-speedup")
				b.ReportMetric(float64(st.StoredBytes), "store-bytes")
				b.ReportMetric(float64(st.DedupHits), "dedup-pages")
			}
		}
	}
	for _, replicas := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("replicas=%d/serial", replicas), func(b *testing.B) { run(b, replicas, 1) })
		b.Run(fmt.Sprintf("replicas=%d/pooled", replicas), func(b *testing.B) { run(b, replicas, 8) })
	}
}

// BenchmarkFleetControllerScale pushes the event-driven rollout
// controller to fleet scale: 256 and 1024 replicas through the leased
// work queue with a pool of 8 worker lanes. The headline is makespan —
// fleet-vticks, the virtual-clock finish time of the last lane —
// against serial-vticks, the one-lane sum; journal-records and
// journal-bytes size the crash-recovery log the rollout leaves behind.
func BenchmarkFleetControllerScale(b *testing.B) {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		b.Fatal(err)
	}
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		b.Fatal(err)
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		b.Fatal(err)
	}
	health := dynacut.HealthProbe(app.Config.Port, "GET /\n", "200")

	for _, replicas := range []int{256, 1024} {
		b.Run(fmt.Sprintf("replicas=%d/pooled", replicas), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := dynacut.NewFleetFromSession(sess, dynacut.FleetConfig{
					Replicas: replicas,
					Workers:  8,
					WaveSize: replicas, // one canary, then everything in one wave
					Core: dynacut.CustomizerOptions{
						RedirectTo:  errAddr,
						HealthCheck: health,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				c := dynacut.NewRolloutController(f, nil)
				res, err := c.Run(func(r *dynacut.FleetReplica) (dynacut.RewriteStats, error) {
					return r.Cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry)
				})
				if err != nil {
					b.Fatal(err)
				}
				if got := res.Committed(); got != replicas {
					b.Fatalf("committed %d/%d", got, replicas)
				}
				if i == 0 {
					j := c.Journal()
					b.ReportMetric(float64(res.SerialTicks), "serial-vticks")
					b.ReportMetric(float64(res.FleetTicks), "fleet-vticks")
					b.ReportMetric(float64(res.SerialTicks)/float64(res.FleetTicks), "vtick-speedup")
					b.ReportMetric(float64(j.Len()), "journal-records")
					b.ReportMetric(float64(len(j.Bytes())), "journal-bytes")
				}
			}
		})
	}
}

// BenchmarkRewriteUnderLoad measures what a staged rollout costs the
// traffic it interrupts: a 4-replica fleet serves open-loop
// constant-rate load while the rollout disables webdav-write on every
// replica, against a steady-state baseline of the same fleet shape
// and schedule. The rollout's charged downtime (wall-clock rewrite
// cost converted to vticks and capped at three buckets) must surface
// as dropped requests and a per-replica service gap that matches the
// journal's intent/outcome vclock stamps.
func BenchmarkRewriteUnderLoad(b *testing.B) {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		b.Fatal(err)
	}
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		b.Fatal(err)
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		b.Fatal(err)
	}

	const (
		replicas = 4
		bucket   = 100_000
		horizon  = 1_200_000
	)
	fcfg := dynacut.FleetConfig{
		Replicas:     replicas,
		Workers:      2,
		CanaryShards: 1,
		WaveSize:     replicas,
		Core: dynacut.CustomizerOptions{
			RedirectTo:     errAddr,
			TicksPerSecond: 2_000_000_000_000,
			MaxChargeTicks: 3 * bucket,
		},
	}
	cfg := dynacut.SLOConfig{
		Port:        app.Config.Port,
		Schedule:    dynacut.NewConstantSchedule(10_000),
		Mix:         dynacut.NewLoadMix(dynacut.LoadRequest{Payload: "GET /\n"}),
		Horizon:     horizon,
		BucketTicks: bucket,
		PollTicks:   5_000,
	}
	apply := func(r *dynacut.FleetReplica) (dynacut.RewriteStats, error) {
		return r.Cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry)
	}

	// Live-patch column: same fleet shape, load and feature, but the
	// template carries the SIGTRAP handler pre-installed (one rewrite,
	// paid once, before cloning) so every replica qualifies for the
	// zero-downtime fast path.
	liveM := sess.Machine.Clone()
	liveCust, err := dynacut.NewCustomizer(liveM, sess.PID(), dynacut.CustomizerOptions{RedirectTo: errAddr})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := liveCust.InstallHandler(); err != nil {
		b.Fatal(err)
	}
	fcfgLive := fcfg
	fcfgLive.LivePatch = &dynacut.LivePatchSpec{Blocks: blocks, Policy: dynacut.PolicyBlockEntry}
	applyLive := func(r *dynacut.FleetReplica) (dynacut.RewriteStats, error) {
		return r.Cust.DisableBlocksLive("webdav-write", blocks, dynacut.PolicyBlockEntry)
	}

	for i := 0; i < b.N; i++ {
		base, err := dynacut.NewFleetFromSession(sess, fcfg)
		if err != nil {
			b.Fatal(err)
		}
		steady, err := dynacut.SteadyStateLoad(base, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, _, err := dynacut.RolloutUnderLoad(sess.Machine, sess.PID(), fcfg, cfg, apply)
		if err != nil {
			b.Fatal(err)
		}
		if got := rep.Rollout.Committed(); got != replicas {
			b.Fatalf("committed %d/%d", got, replicas)
		}
		repLive, _, err := dynacut.RolloutUnderLoad(liveM, liveCust.PID(), fcfgLive, cfg, applyLive)
		if err != nil {
			b.Fatal(err)
		}
		if got := repLive.Rollout.Committed(); got != replicas {
			b.Fatalf("live-patch committed %d/%d", got, replicas)
		}
		for _, o := range repLive.Rollout.Outcomes {
			if !o.Stats.LivePatched {
				b.Fatalf("replica %d did not take the live-patch fast path (fellBack=%v reason=%q)",
					o.Index, o.Stats.FellBack, o.Stats.FallbackReason)
			}
		}
		if i == 0 {
			var journal, observed, liveJournal, liveObserved float64
			for _, s := range rep.JournalSpans {
				journal += float64(s.Ticks())
			}
			for _, s := range rep.ObservedSpans {
				observed += float64(s.Ticks())
			}
			for _, s := range repLive.JournalSpans {
				liveJournal += float64(s.Ticks())
			}
			for _, s := range repLive.ObservedSpans {
				liveObserved += float64(s.Ticks())
			}
			printOnce(b, i, "Rewrite under load: SLO vs steady state", fmt.Sprintf(
				"steady    : p50 %6d  p99 %6d  p999 %6d vticks  served %d/%d  dropped %d\nrollout   : p50 %6d  p99 %6d  p999 %6d vticks  served %d/%d  dropped %d\nlive-patch: p50 %6d  p99 %6d  p999 %6d vticks  served %d/%d  dropped %d\nmean downtime per replica: transaction journal %.0f / observed %.0f vticks, live-patch journal %.0f / observed %.0f vticks\n",
				steady.P50, steady.P99, steady.P999, steady.Served, steady.Total, steady.Dropped,
				rep.P50, rep.P99, rep.P999, rep.Served, rep.Total, rep.Dropped,
				repLive.P50, repLive.P99, repLive.P999, repLive.Served, repLive.Total, repLive.Dropped,
				journal/replicas, observed/replicas, liveJournal/replicas, liveObserved/replicas))
			b.ReportMetric(float64(steady.P99), "steady-p99-vticks")
			b.ReportMetric(float64(rep.P99), "rollout-p99-vticks")
			b.ReportMetric(steady.ServedPerVtick*1e3, "steady-served-per-kvtick")
			b.ReportMetric(rep.ServedPerVtick*1e3, "rollout-served-per-kvtick")
			b.ReportMetric(float64(rep.Dropped), "rollout-dropped-reqs")
			b.ReportMetric(journal/replicas, "journal-downtime-vticks")
			b.ReportMetric(observed/replicas, "observed-downtime-vticks")
			b.ReportMetric(float64(repLive.P99), "livepatch-p99-vticks")
			b.ReportMetric(float64(repLive.Dropped), "livepatch-dropped-reqs")
			b.ReportMetric(liveJournal/replicas, "livepatch-journal-downtime-vticks")
			b.ReportMetric(liveObserved/replicas, "livepatch-observed-downtime-vticks")
		}
	}
}
