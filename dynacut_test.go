package dynacut

import (
	"strings"
	"testing"
)

func startWebSession(t *testing.T, cfg WebServerConfig) (*Session, *WebServerApp) {
	t.Helper()
	app, err := BuildWebServer(cfg)
	if err != nil {
		t.Fatalf("BuildWebServer: %v", err)
	}
	sess, err := StartServer(app.Exe, []*Binary{app.Libc}, app.Config.Port)
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	return sess, app
}

func TestSessionBootAndRequest(t *testing.T) {
	sess, _ := startWebSession(t, WebServerConfig{Port: 8080})
	if sess.InitLog == nil || len(sess.InitLog.Blocks) == 0 {
		t.Fatal("no init coverage captured")
	}
	resp, err := sess.Request("GET /\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "200") {
		t.Fatalf("GET -> %q", resp)
	}
	if _, err := sess.Root(); err != nil {
		t.Fatal(err)
	}
	if sess.InitGraph().Count() == 0 {
		t.Fatal("empty init graph")
	}
}

func TestPublicEndToEndCustomization(t *testing.T) {
	sess, _ := startWebSession(t, WebServerConfig{Port: 8080})
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("no feature blocks")
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		t.Fatal(err)
	}
	cust, err := NewCustomizer(sess.Machine, sess.PID(), CustomizerOptions{RedirectTo: errAddr})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := cust.DisableBlocks("webdav", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksPatched == 0 {
		t.Error("nothing patched")
	}
	if resp := sess.MustRequest("PUT /f x\n"); !strings.Contains(resp, "403") {
		t.Fatalf("PUT -> %q", resp)
	}
	if resp := sess.MustRequest("GET /\n"); !strings.Contains(resp, "200") {
		t.Fatalf("GET -> %q", resp)
	}
	if _, err := cust.EnableBlocks("webdav"); err != nil {
		t.Fatal(err)
	}
	if resp := sess.MustRequest("PUT /f x\n"); !strings.Contains(resp, "201") {
		t.Fatalf("PUT after enable -> %q", resp)
	}
}

func TestPublicAssemble(t *testing.T) {
	lib, err := AssembleLibrary("mini.so", `
.text
.global seven
seven:
	mov r0, 7
	ret
`)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := Assemble("mini", `
.text
.global _start
_start:
	call seven@plt
	mov r1, r0
	mov r0, 1
	syscall
`, lib)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	p, err := m.Load(exe, lib)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	if !p.Exited() || p.ExitCode() != 7 {
		t.Fatalf("exit = %v/%d", p.Exited(), p.ExitCode())
	}
}

func TestPublicCFGAndBaselines(t *testing.T) {
	sess, app := startWebSession(t, WebServerConfig{Port: 8080})
	cfg := AnalyzeCFG(app.Exe)
	if cfg.Count() == 0 {
		t.Fatal("empty CFG")
	}
	if _, err := sess.Request("GET /\n"); err != nil {
		t.Fatal(err)
	}
	g, err := sess.SnapshotPhase("get-only")
	if err != nil {
		t.Fatal(err)
	}
	full := MergeGraphs(sess.InitGraph(), g)
	razor, err := RazorDebloat(app.Exe, full)
	if err != nil {
		t.Fatal(err)
	}
	chisel, err := ChiselDebloat(app.Exe, full)
	if err != nil {
		t.Fatal(err)
	}
	if !(chisel.LiveFraction() < razor.LiveFraction() && razor.LiveFraction() < 1.0) {
		t.Errorf("live fractions: chisel=%.3f razor=%.3f",
			chisel.LiveFraction(), razor.LiveFraction())
	}
	unexec := IdentifyUnexecutedBlocks(cfg, full, app.Exe.Name)
	if len(unexec) == 0 {
		t.Error("no unexecuted blocks found")
	}
	if len(unexec) >= cfg.Count() {
		t.Error("everything reported unexecuted")
	}
}

func TestPublicDumpRestore(t *testing.T) {
	sess, _ := startWebSession(t, WebServerConfig{Port: 8080})
	set, err := Dump(sess.Machine, sess.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Machine.Kill(sess.PID()); err != nil {
		t.Fatal(err)
	}
	procs, _, err := Restore(sess.Machine, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 {
		t.Fatalf("restored %d", len(procs))
	}
	if resp := sess.MustRequest("GET /\n"); !strings.Contains(resp, "200") {
		t.Fatalf("GET after manual dump/restore -> %q", resp)
	}
}

func TestRequestErrors(t *testing.T) {
	sess, _ := startWebSession(t, WebServerConfig{Port: 8080})
	// Kill the server: requests must fail, not hang.
	if err := sess.Machine.Kill(sess.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Request("GET /\n"); err == nil {
		t.Fatal("request to dead server succeeded")
	}
	if _, err := sess.Root(); err == nil {
		t.Fatal("Root on dead machine succeeded")
	}
}

// TestPublicExecModes: the execution-engine surface — ExecMode on a
// session's machine, cache statistics, and the lockstep differential
// oracle — all reachable through the public API.
func TestPublicExecModes(t *testing.T) {
	sess, _ := startWebSession(t, WebServerConfig{Port: 8080})

	if got := sess.Machine.ExecMode(); got != ModeInterpret {
		t.Fatalf("default mode %v, want %v", got, ModeInterpret)
	}
	sess.Machine.SetExecMode(ModeTranslate)
	for _, req := range []string{"GET /\n", "HEAD /\n", "GET /\n"} {
		resp, err := sess.Request(req)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp, "200") {
			t.Fatalf("%q -> %q under translate", req, resp)
		}
	}
	st := sess.Machine.BlockCacheStats()
	if st.Hits == 0 || st.Translations == 0 {
		t.Fatalf("translate mode never used the cache: %+v", st)
	}

	// The oracle: interpreter vs translator on clones of the booted
	// server, request traffic driven symmetrically into both.
	ls := NewLockstep(sess.Machine, ModeLockstep)
	for i := 0; i < 3; i++ {
		ls.Do(func(m *Machine) {
			conn, err := m.Dial(8080)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Write([]byte("GET /\n")); err != nil {
				t.Fatal(err)
			}
		})
		ls.Run(200)
	}
	if divs := ls.Divergences(); len(divs) != 0 {
		t.Fatalf("lockstep diverged: %v", divs)
	}
}
