// Package dynacut is the public API of DynaCut-Go, a reproduction of
// "DynaCut: A Framework for Dynamic and Adaptive Program
// Customization" (Middleware 2023) as a self-contained simulation:
// guest programs compiled for a virtual ISA run on a userspace
// kernel, and DynaCut customizes them at run time by checkpointing
// (CRIU-style), rewriting the frozen process images (INT3 blocking,
// block wiping, page unmapping, signal-handler injection), and
// restoring them with live TCP connections intact.
//
// The typical workflow:
//
//	app, _ := dynacut.BuildWebServer(dynacut.WebServerConfig{Port: 8080})
//	sess, _ := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, 8080)
//	sess.Request("GET /\n")                       // wanted traffic
//	wanted := sess.SnapshotPhase("wanted")
//	sess.Request("PUT /f data\n")                 // undesired traffic
//	undesired := sess.SnapshotPhase("undesired")
//	blocks := dynacut.IdentifyFeatureBlocks(undesired, wanted, app.Exe.Name)
//
//	cust, _ := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
//	    RedirectTo: errHandlerAddr,
//	})
//	cust.DisableBlocks("webdav", blocks, dynacut.PolicyBlockEntry)
//	// ... later, when the scenario changes:
//	cust.EnableBlocks("webdav")
package dynacut

import (
	"github.com/dynacut/dynacut/internal/apps/kvstore"
	applibc "github.com/dynacut/dynacut/internal/apps/libc"
	"github.com/dynacut/dynacut/internal/apps/specgen"
	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/baseline"
	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/disasm"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/fleet"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/loadgen"
	"github.com/dynacut/dynacut/internal/obs"
	"github.com/dynacut/dynacut/internal/slo"
	"github.com/dynacut/dynacut/internal/supervise"
	"github.com/dynacut/dynacut/internal/trace"
)

// Re-exported types. The implementation lives under internal/; these
// aliases form the supported public surface.
type (
	// Machine is the simulated computer hosting guest processes.
	Machine = kernel.Machine
	// Process is one guest process.
	Process = kernel.Process
	// HostConn is a host-side client connection into a guest server.
	HostConn = kernel.HostConn
	// Module describes one binary mapped into a process.
	Module = kernel.Module
	// Signal is a guest signal number.
	Signal = kernel.Signal
	// ExecMode selects the machine's execution engine: the reference
	// interpreter, the basic-block translation cache, or the
	// self-checking lockstep variant (Machine.SetExecMode).
	ExecMode = kernel.ExecMode
	// BlockCacheStats is the translation cache's counter set
	// (Machine.BlockCacheStats).
	BlockCacheStats = kernel.BlockCacheStats
	// CacheDivergence is one stale cached decode caught by lockstep
	// mode (Machine.CacheDivergences).
	CacheDivergence = kernel.CacheDivergence
	// Lockstep runs the interpreter and the translating engine side
	// by side on cloned machines, diffing full machine state after
	// every scheduler round — the differential oracle that proves the
	// engines equivalent.
	Lockstep = kernel.Lockstep
	// Divergence is one state difference found by a Lockstep harness.
	Divergence = kernel.Divergence

	// Binary is a DELF executable or shared library.
	Binary = delf.File

	// Customizer applies DynaCut's dynamic customization to a guest.
	Customizer = core.Customizer
	// CustomizerOptions configures a Customizer.
	CustomizerOptions = core.Options
	// Policy selects how undesired code is removed.
	Policy = core.Policy
	// RewriteStats reports the cost of one rewrite cycle.
	RewriteStats = core.Stats
	// Handler is the injected SIGTRAP handler's in-guest state.
	Handler = core.Handler

	// Attestation is a Customizer's expected-state oracle snapshot:
	// per-text-page digests folded into a Merkle-style root plus the
	// active feature set.
	Attestation = core.Attestation
	// AttestReport is one attestation pass: live text hashed against
	// the oracle, mismatches classified repairable or foreign.
	AttestReport = core.AttestReport
	// PageMismatch is one diverged text page inside an AttestReport.
	PageMismatch = core.PageMismatch
	// PageVerdict classifies one mismatched page.
	PageVerdict = core.PageVerdict
	// RepairStats reports one anti-entropy repair pass.
	RepairStats = core.RepairStats

	// Graph is a code-coverage graph.
	Graph = coverage.Graph
	// AbsBlock is a basic block at an absolute guest address.
	AbsBlock = coverage.AbsBlock
	// Collector gathers drcov-style coverage.
	Collector = trace.Collector
	// CoverageLog is one serializable coverage log.
	CoverageLog = trace.Log

	// ImageSet is a CRIU-style checkpoint of a process tree.
	ImageSet = criu.ImageSet
	// DumpOpts controls checkpointing.
	DumpOpts = criu.DumpOpts

	// Observer collects structured trace events (phase spans, injected
	// faults, point events) and metrics from the rewrite pipeline.
	// Install via CustomizerOptions.Observer; a nil observer costs
	// nothing.
	Observer = obs.Observer
	// ObsEvent is one structured trace event in an Observer's ring.
	ObsEvent = obs.Event
	// TraceSummary aggregates a trace into per-phase statistics.
	TraceSummary = obs.TraceSummary

	// FaultInjector deterministically injects failures into the
	// checkpoint/rewrite/restore machinery (install with
	// Machine.SetFaultHook) — the chaos-testing harness behind the
	// transactional-rewrite guarantees.
	FaultInjector = faultinject.Injector
	// FaultEvent is one consultation of the fault injector.
	FaultEvent = faultinject.Event

	// CFG is a static control-flow graph.
	CFG = disasm.CFG

	// WebServerConfig shapes the web-server guest.
	WebServerConfig = webserv.Config
	// WebServerApp is a built web-server guest.
	WebServerApp = webserv.App
	// KVStoreConfig shapes the key-value store guest.
	KVStoreConfig = kvstore.Config
	// KVStoreApp is a built key-value store guest.
	KVStoreApp = kvstore.App
	// SpecProfile shapes a synthetic SPEC-like benchmark guest.
	SpecProfile = specgen.Profile
	// SpecApp is a built benchmark guest.
	SpecApp = specgen.App

	// DebloatResult is the outcome of a static baseline debloater.
	DebloatResult = baseline.Result

	// AutoNudge detects the end of initialization automatically by
	// syscall monitoring (the paper's §5 future-work item).
	AutoNudge = core.AutoNudge

	// Supervisor is the self-healing closed-loop controller (§3.3):
	// trap polling, false-removal adoption, canary probing, per-feature
	// circuit breakers and the trap-storm degradation ladder.
	Supervisor = supervise.Supervisor
	// SupervisorConfig tunes the supervisor's cadences and thresholds.
	SupervisorConfig = supervise.Config
	// SupervisorStatus snapshots the supervisor's ledger.
	SupervisorStatus = supervise.Status
	// FeatureBreaker is one feature's circuit-breaker ledger.
	FeatureBreaker = supervise.Breaker
	// BreakerState is a circuit breaker's state (closed/open/half-open).
	BreakerState = supervise.BreakerState
	// SupervisorAggregate is a fleet-wide merge of supervisor ledgers
	// (worst-state breakers, level histogram, loss counts).
	SupervisorAggregate = supervise.AggregateStatus

	// Fleet owns N replicas cloned copy-on-write from one booted
	// template guest and applies customizations across them as staged
	// canary/wave rollouts with automatic halt and pristine rollback.
	Fleet = fleet.Fleet
	// FleetConfig sizes and tunes a fleet.
	FleetConfig = fleet.Config
	// FleetReplica is one cloned guest plus its customizer.
	FleetReplica = fleet.Replica
	// FleetStatus pairs per-replica supervisor ledgers with their
	// fleet-wide aggregate.
	FleetStatus = fleet.Status
	// ReplicaOutcome records where one replica ended after a rollout.
	ReplicaOutcome = fleet.ReplicaOutcome
	// RolloutOutcome classifies one replica's end state.
	RolloutOutcome = fleet.Outcome
	// RolloutResult is the full record of one staged rollout.
	RolloutResult = fleet.RolloutResult
	// WaveResult summarizes one canary shard or rollout wave.
	WaveResult = fleet.WaveResult

	// RolloutController is the crash-resumable rollout engine behind
	// Fleet.Rollout: worker lanes lease per-replica steps off a work
	// queue under virtual-clock deadlines, and every scheduling
	// decision is journaled so a dead controller can be resumed.
	RolloutController = fleet.Controller
	// ControllerStatus snapshots a controller mid-rollout.
	ControllerStatus = fleet.ControllerStatus
	// StepEvent is one scheduling event streamed through
	// FleetConfig.OnStep (lease, expire, requeue, outcome, ...).
	StepEvent = fleet.StepEvent
	// RolloutJournal is the append-only CRC-framed log of a rollout.
	RolloutJournal = fleet.Journal
	// JournalRecord is one rollout-journal entry.
	JournalRecord = fleet.Record
	// JournalRecKind enumerates rollout-journal record types.
	JournalRecKind = fleet.RecKind
	// StepMode is the rewrite path of one rollout step (transaction,
	// live-patch, or fell-back), journaled on intents and outcomes.
	StepMode = fleet.StepMode
	// LivePatchSpec declares a rollout's live-patch block set so torn
	// journal windows are verified byte-wise on resume.
	LivePatchSpec = fleet.LivePatchSpec
	// AttestVerdict classifies one replica inside a fleet attestation
	// sweep (clean, repaired, skew, foreign, readmit).
	AttestVerdict = fleet.AttestVerdict
	// SweepResult summarizes one fleet-wide attestation sweep.
	SweepResult = fleet.SweepResult
	// ReplicaAttest is one replica's verdict inside a SweepResult.
	ReplicaAttest = fleet.ReplicaAttest

	// PageStore is the content-addressed checkpoint store replicas
	// deduplicate their pristine images into.
	PageStore = criu.PageStore
	// PageStoreStats reports dedup effectiveness.
	PageStoreStats = criu.StoreStats

	// LoadRequest is one weighted entry of a workload mix.
	LoadRequest = loadgen.Request
	// LoadMix is a deterministic weighted request mix.
	LoadMix = loadgen.Mix
	// LoadHistogram records request latencies (in guest instructions)
	// with ceil nearest-rank percentile queries.
	LoadHistogram = loadgen.Histogram
	// LoadBucket is one throughput window on the virtual-time axis.
	LoadBucket = loadgen.Bucket
	// LoadResult aggregates one load-driver run.
	LoadResult = loadgen.Result
	// LoadDriver is the closed-loop workload driver: one request in
	// flight, the next fired as the previous resolves (Figure 8).
	LoadDriver = loadgen.Driver
	// OpenLoadDriver is the open-loop driver: requests fire at the
	// vticks a LoadSchedule dictates, outstanding responses or not,
	// with a bounded in-flight window and explicit drop accounting.
	OpenLoadDriver = loadgen.OpenDriver
	// LoadPool fans closed-loop drivers across fleet replicas.
	LoadPool = loadgen.Pool
	// OpenLoadPool fans open-loop drivers across fleet replicas.
	OpenLoadPool = loadgen.OpenPool
	// LoadSchedule dictates open-loop arrival times on the vtick axis.
	LoadSchedule = loadgen.Schedule
	// LoadArrival is one scheduled request arrival.
	LoadArrival = loadgen.Arrival
	// LoadTrace is a trace-driven schedule parsed from CSV
	// (invocations-per-slot with optional per-slot payloads).
	LoadTrace = loadgen.TraceSchedule

	// SLOConfig shapes the load half of a rollout-under-load run.
	SLOConfig = slo.Config
	// SLOReport carries the figures an operator would ask for:
	// p50/p99/p999 latency, served per vtick, drops, and per-replica
	// downtime spans measured from the journal and from observed
	// service gaps independently.
	SLOReport = slo.Report
	// DowntimeSpan is one replica's downtime interval.
	DowntimeSpan = slo.Span
)

// Replica end states after a staged rollout.
const (
	OutcomePending    = fleet.OutcomePending
	OutcomeCommitted  = fleet.OutcomeCommitted
	OutcomeAborted    = fleet.OutcomeAborted
	OutcomeFailed     = fleet.OutcomeFailed
	OutcomeRolledBack = fleet.OutcomeRolledBack
	OutcomeRestored   = fleet.OutcomeRestored
	OutcomeLost       = fleet.OutcomeLost
)

// Rollout-journal record kinds.
const (
	RecStart    = fleet.RecStart
	RecIntent   = fleet.RecIntent
	RecOutcome  = fleet.RecOutcome
	RecWaveDone = fleet.RecWaveDone
	RecHalt     = fleet.RecHalt
	RecResume   = fleet.RecResume
	RecDone     = fleet.RecDone

	// Journal v3 attestation kinds.
	RecAttest     = fleet.RecAttest
	RecRepair     = fleet.RecRepair
	RecQuarantine = fleet.RecQuarantine
)

// Attestation-sweep verdicts (JournalRecord.Attempt of a RecAttest).
const (
	VerdictClean    = fleet.VerdictClean
	VerdictRepaired = fleet.VerdictRepaired
	VerdictSkew     = fleet.VerdictSkew
	VerdictForeign  = fleet.VerdictForeign
	VerdictReadmit  = fleet.VerdictReadmit
)

// Per-page attestation verdicts (PageMismatch.Verdict).
const (
	PageClean      = core.PageClean
	PageRepairable = core.PageRepairable
	PageForeign    = core.PageForeign
)

// Rollout step modes (JournalRecord.Mode / StepEvent.Mode).
const (
	ModeTransaction = fleet.ModeTransaction
	ModeLivePatch   = fleet.ModeLivePatch
	ModeFellBack    = fleet.ModeFellBack
)

// DefaultQuiesceRounds bounds DisableBlocksLive's quiescence loop
// when CustomizerOptions.LiveQuiesceRounds is zero.
const DefaultQuiesceRounds = core.DefaultQuiesceRounds

// Removal policies (§3.2.2), cheapest to strongest.
const (
	PolicyBlockEntry = core.PolicyBlockEntry
	PolicyWipeBlocks = core.PolicyWipeBlocks
	PolicyUnmapPages = core.PolicyUnmapPages
)

// Circuit-breaker states.
const (
	BreakerClosed   = supervise.BreakerClosed
	BreakerOpen     = supervise.BreakerOpen
	BreakerHalfOpen = supervise.BreakerHalfOpen
)

// Signals.
const (
	SIGTRAP = kernel.SIGTRAP
	SIGSEGV = kernel.SIGSEGV
	SIGSYS  = kernel.SIGSYS
)

// Execution engines (Machine.SetExecMode; DESIGN.md §15).
const (
	// ModeInterpret single-steps every instruction. The reference.
	ModeInterpret = kernel.ModeInterpret
	// ModeTranslate executes through the basic-block cache.
	ModeTranslate = kernel.ModeTranslate
	// ModeLockstep is ModeTranslate with every cached block
	// re-verified against live bytes at dispatch.
	ModeLockstep = kernel.ModeLockstep
)

// Failure-model sentinels, for errors.Is against Customizer and image
// errors.
var (
	// ErrRolledBack: the rewrite failed but the guest was restored
	// from the pre-edit images and keeps serving.
	ErrRolledBack = core.ErrRolledBack
	// ErrRestoreFailed: a restore failed after the guest was killed
	// (always accompanied by a rollback, or by ErrRollbackFailed).
	ErrRestoreFailed = core.ErrRestoreFailed
	// ErrRollbackFailed: the rollback restore failed too; the guest is
	// lost.
	ErrRollbackFailed = core.ErrRollbackFailed
	// ErrCorruptImage: an image blob failed its checksum or framing.
	ErrCorruptImage = criu.ErrCorruptImage
	// ErrStoreCorrupt: a content-addressed page-store blob no longer
	// hashes to its key — the store rotted underneath us.
	ErrStoreCorrupt = criu.ErrStoreCorrupt
	// ErrInconsistentImage: a decoded image set fails cross-checks
	// (ImageSet.Validate).
	ErrInconsistentImage = criu.ErrInconsistentImage
	// ErrFaultInjected: a failure came from the fault injector.
	ErrFaultInjected = faultinject.ErrInjected
	// ErrQuarantined: DisableFeature refused — the feature's breaker is
	// open and under probation.
	ErrQuarantined = supervise.ErrQuarantined
	// ErrDisarmed: DisableFeature refused — the degradation ladder
	// switched patching off; Rearm to resume.
	ErrDisarmed = supervise.ErrDisarmed
	// ErrGuestLost: the supervisor exhausted its pristine-restore
	// attempts; the guest is gone.
	ErrGuestLost = supervise.ErrGuestLost
	// ErrRewriteAborted: a rewrite stopped at its pre-commit gate; the
	// guest is untouched.
	ErrRewriteAborted = core.ErrAborted
	// ErrFleetHalted: a staged rollout halted (canary or wave failure)
	// before this replica's rewrite committed.
	ErrFleetHalted = fleet.ErrHalted
	// ErrControllerCrashed: the rollout controller died mid-rollout
	// (injected crash or torn journal append); resume from its journal
	// with ResumeRolloutController.
	ErrControllerCrashed = fleet.ErrControllerCrashed
	// ErrJournalCorrupt: a rollout journal has CRC or framing damage
	// before its final record — damage a crash cannot explain.
	ErrJournalCorrupt = fleet.ErrJournalCorrupt
	// ErrJournalMagic: bytes handed to DecodeRolloutJournal are not a
	// rollout journal.
	ErrJournalMagic = fleet.ErrJournalMagic
	// ErrNoLoadMix: a load driver has arrivals without payloads and no
	// mix to draw them from.
	ErrNoLoadMix = loadgen.ErrNoMix
	// ErrNoLoadSchedule: an open-loop driver has no schedule.
	ErrNoLoadSchedule = loadgen.ErrNoSchedule
	// ErrLoadTruncated: a response was still mid-write when its
	// request budget ran out.
	ErrLoadTruncated = loadgen.ErrTruncated
	// ErrBadLoadTrace: a trace CSV failed to parse.
	ErrBadLoadTrace = loadgen.ErrBadTrace
	// ErrNoLoadHorizon: an SLOConfig is missing its horizon.
	ErrNoLoadHorizon = slo.ErrNoHorizon
)

// NewMachine creates an empty simulated machine.
func NewMachine() *Machine { return kernel.NewMachine() }

// NewLockstep builds the differential-execution oracle: two clones of
// m, one interpreting and one running the given engine, advanced
// round-for-round and diffed after each (registers, memory, dirty
// bitmaps, tick counts, net buffers). Divergences are collected, not
// fatal — inspect with Lockstep.Divergences.
func NewLockstep(m *Machine, mode ExecMode) *Lockstep { return kernel.NewLockstep(m, mode) }

// NewFaultInjector creates a deterministic, seeded fault injector;
// install it with Machine.SetFaultHook.
func NewFaultInjector(seed int64) *FaultInjector { return faultinject.New(seed) }

// NewObserver creates a trace observer with a bounded event ring of
// the given capacity (<= 0 selects the default).
func NewObserver(capacity int) *Observer { return obs.New(capacity) }

// SummarizeTrace aggregates a slice of trace events (e.g. read back
// from a JSONL file via obs tooling, or Observer.Events) into
// per-phase statistics.
func SummarizeTrace(events []ObsEvent) *TraceSummary { return obs.Summarize(events) }

// NewCustomizer wraps the guest process rooted at pid.
func NewCustomizer(m *Machine, pid int, opts CustomizerOptions) (*Customizer, error) {
	return core.New(m, pid, opts)
}

// NewSupervisor builds the closed-loop controller for a customized
// guest. Call Attach to snapshot the last-good images and start it.
func NewSupervisor(m *Machine, cust *Customizer, cfg SupervisorConfig) *Supervisor {
	return supervise.New(m, cust, cfg)
}

// AggregateSupervisors merges per-replica supervisor ledgers into one
// fleet-wide view (worst breaker state wins, strikes are summed).
func AggregateSupervisors(sts ...SupervisorStatus) SupervisorAggregate {
	return supervise.Aggregate(sts...)
}

// NewFleet clones the booted guest rooted at rootPID on template into
// cfg.Replicas copy-on-write replicas whose pristine checkpoints
// deduplicate into a shared PageStore. The template itself is never
// part of the fleet and stays untouched.
func NewFleet(template *Machine, rootPID int, cfg FleetConfig) (*Fleet, error) {
	return fleet.New(template, rootPID, cfg)
}

// NewFleetFromSession builds a fleet from a profiled Session (the
// session's guest becomes the template).
func NewFleetFromSession(s *Session, cfg FleetConfig) (*Fleet, error) {
	return fleet.New(s.Machine, s.PID(), cfg)
}

// NewRolloutController builds a crash-resumable rollout controller
// over the fleet. A nil journal starts a fresh log; Fleet.Rollout is
// shorthand for NewRolloutController(f, nil).Run(apply).
func NewRolloutController(f *Fleet, j *RolloutJournal) *RolloutController {
	return fleet.NewController(f, j)
}

// ResumeRolloutController rebuilds a controller from a dead
// controller's serialized journal: committed replicas are skipped,
// torn intent windows re-verified, and an interrupted halt protocol
// completed. Run the returned controller to finish the rollout.
func ResumeRolloutController(f *Fleet, journal []byte) (*RolloutController, error) {
	return fleet.ResumeController(f, journal)
}

// DecodeRolloutJournal parses a serialized rollout journal, tolerating
// the torn final frame a crash mid-append leaves behind.
func DecodeRolloutJournal(data []byte) ([]JournalRecord, error) {
	return fleet.DecodeJournal(data)
}

// NewPageStore creates an empty content-addressed checkpoint store.
func NewPageStore() *PageStore { return criu.NewPageStore() }

// RestoreFromStore materializes the checkpoint named by ident out of
// the store into fresh processes on m.
func RestoreFromStore(m *Machine, store *PageStore, ident uint32) ([]*Process, map[int]int, error) {
	return criu.RestoreFromStore(m, store, ident)
}

// DefaultInitEndSyscall is the accept(2) analogue used by AutoNudge
// as the canonical init/serving boundary for servers.
const DefaultInitEndSyscall = core.DefaultInitEndSyscall

// ServingSyscalls returns the post-initialization syscall allow list
// for servers (request handling only), for use with
// Customizer.RestrictSyscalls — the paper's §5 temporal seccomp
// specialization built on process rewriting.
func ServingSyscalls() []uint64 { return append([]uint64(nil), core.ServingSyscalls...) }

// MasterSyscalls returns the allow list for a supervising master
// process.
func MasterSyscalls() []uint64 { return append([]uint64(nil), core.MasterSyscalls...) }

// NewAutoNudge arms automatic init-end detection: onInit fires once
// when the guest first issues the trigger syscall.
func NewAutoNudge(m *Machine, trigger uint64, onInit func(pid int)) *AutoNudge {
	return core.NewAutoNudge(m, trigger, onInit)
}

// BuildLibc builds the shared C-library guest binary.
func BuildLibc() (*Binary, error) { return applibc.Build() }

// BuildWebServer builds the Lighttpd/Nginx-like guest.
func BuildWebServer(cfg WebServerConfig) (*WebServerApp, error) { return webserv.Build(cfg) }

// BuildKVStore builds the Redis-like guest.
func BuildKVStore(cfg KVStoreConfig) (*KVStoreApp, error) { return kvstore.Build(cfg) }

// BuildSpec builds a synthetic SPEC-like benchmark guest.
func BuildSpec(p SpecProfile) (*SpecApp, error) { return specgen.Build(p) }

// SpecProfiles returns the built-in benchmark profiles (the paper's
// seven SPEC INTSpeed C/C++ programs at 1:10 scale).
func SpecProfiles() []SpecProfile { return append([]SpecProfile(nil), specgen.Profiles...) }

// Assemble builds an executable from assembly source, linked against
// the given shared libraries.
func Assemble(name, src string, libs ...*Binary) (*Binary, error) {
	obj, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return link.Executable(name, []*asm.Object{obj}, libs...)
}

// AssembleLibrary builds a position-independent shared library from
// assembly source.
func AssembleLibrary(name, src string) (*Binary, error) {
	obj, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return link.Library(name, []*asm.Object{obj})
}

// Dump checkpoints a process (tree) into CRIU-style images.
func Dump(m *Machine, pid int, opts DumpOpts) (*ImageSet, error) {
	return criu.Dump(m, pid, opts)
}

// Restore materializes an image set into fresh processes.
func Restore(m *Machine, set *ImageSet) ([]*Process, map[int]int, error) {
	return criu.Restore(m, set)
}

// UnmarshalImages decodes a serialized image-set blob (the inverse of
// ImageSet.Marshal), e.g. images shipped between machines.
func UnmarshalImages(blob []byte) (*ImageSet, error) {
	return criu.Unmarshal(blob)
}

// AnalyzeCFG statically enumerates a binary's basic blocks (the
// paper's Angr role).
func AnalyzeCFG(b *Binary) *CFG { return disasm.Analyze(b) }

// IdentifyFeatureBlocks diffs undesired-request coverage against
// wanted-request coverage (§3.1).
func IdentifyFeatureBlocks(undesired, wanted *Graph, program string) []AbsBlock {
	return core.IdentifyFeatureBlocks(undesired, wanted, program)
}

// IdentifyInitBlocks diffs initialization coverage against serving
// coverage (§3.1).
func IdentifyInitBlocks(initPhase, serving *Graph, program string) []AbsBlock {
	return core.IdentifyInitBlocks(initPhase, serving, program)
}

// IdentifyUnexecutedBlocks lists static blocks no trace covered.
func IdentifyUnexecutedBlocks(cfg *CFG, executed *Graph, program string) []AbsBlock {
	return core.IdentifyUnexecutedBlocks(cfg, executed, program)
}

// RazorDebloat statically debloats a binary the way RAZOR does
// (traced blocks plus related-code heuristics).
func RazorDebloat(exe *Binary, traces *Graph) (*DebloatResult, error) {
	return baseline.Razor(exe, traces)
}

// ChiselDebloat statically debloats a binary the way CHISEL does
// (exactly the traced blocks).
func ChiselDebloat(exe *Binary, traces *Graph) (*DebloatResult, error) {
	return baseline.Chisel(exe, traces)
}

// GraphFromLog builds a coverage graph from one log.
func GraphFromLog(l *CoverageLog) *Graph { return coverage.FromLog(l) }

// NewLoadMix builds a deterministic weighted request mix.
func NewLoadMix(reqs ...LoadRequest) *LoadMix { return loadgen.NewMix(reqs...) }

// MergeLoadResults folds per-replica load results into one fleet view
// (nil slots from failed replicas are skipped).
func MergeLoadResults(results ...*LoadResult) *LoadResult { return loadgen.Merge(results...) }

// NewConstantSchedule arrives every interval vticks.
func NewConstantSchedule(interval uint64) LoadSchedule { return loadgen.NewConstant(interval) }

// NewStepRampSchedule starts at start arrivals per slot and adds step
// (possibly negative) each slot — the stress-mode ramp.
func NewStepRampSchedule(start, step int, slotTicks uint64) LoadSchedule {
	return loadgen.NewStepRamp(start, step, slotTicks)
}

// NewPoissonSchedule draws seeded exponential inter-arrival gaps with
// the given mean: bursty but exactly reproducible per seed.
func NewPoissonSchedule(meanInterval uint64, seed int64) LoadSchedule {
	return loadgen.NewPoisson(meanInterval, seed)
}

// ParseLoadTrace parses a CSV trace ("invocations[,payload]" per
// slot) into a trace-driven schedule.
func ParseLoadTrace(data string, slotTicks uint64) (*LoadTrace, error) {
	return loadgen.ParseTraceCSV(data, slotTicks)
}

// RolloutUnderLoad clones the booted guest rooted at rootPID into a
// fleet, then runs a staged rollout of apply across it while every
// replica serves the configured open-loop load, and reports the SLO
// figures — latency percentiles, served per vtick, drops, and
// per-replica downtime spans cross-checked between the rollout
// journal and the load generator's observed service gaps.
func RolloutUnderLoad(template *Machine, rootPID int, fcfg FleetConfig, cfg SLOConfig, apply func(*FleetReplica) (RewriteStats, error)) (*SLOReport, *Fleet, error) {
	return slo.RolloutUnderLoad(template, rootPID, fcfg, cfg, apply)
}

// SteadyStateLoad measures the same load shape against clones of the
// fleet's replicas with no rollout running — the baseline for
// RolloutUnderLoad figures. The fleet's machines are untouched.
func SteadyStateLoad(f *Fleet, cfg SLOConfig) (*SLOReport, error) {
	return slo.SteadyState(f, cfg)
}

// MergeGraphs unions coverage graphs.
func MergeGraphs(gs ...*Graph) *Graph { return coverage.Merge(gs...) }

// DiffGraphs returns blocks in a absent from b.
func DiffGraphs(a, b *Graph) *Graph { return coverage.Diff(a, b) }
