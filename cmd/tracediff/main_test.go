package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/trace"
)

func writeLog(t *testing.T, dir, name string, blocks ...trace.RawBlock) string {
	t.Helper()
	col := trace.NewCollector("prog")
	for _, b := range blocks {
		col.OnBlock(1, b.Addr, b.Size)
	}
	log := col.Snapshot([]kernel.Module{
		{Name: "prog", Lo: 0x400000, Hi: 0x500000},
		{Name: "libc.so", Lo: 0x10000000, Hi: 0x10100000},
	}, "test")
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, log.Marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTracediffRun(t *testing.T) {
	dir := t.TempDir()
	wanted := writeLog(t, dir, "wanted.cov",
		trace.RawBlock{Addr: 0x400010, Size: 5},
		trace.RawBlock{Addr: 0x10000010, Size: 5})
	undesired := writeLog(t, dir, "undesired.cov",
		trace.RawBlock{Addr: 0x400010, Size: 5},
		trace.RawBlock{Addr: 0x400020, Size: 5},   // unique
		trace.RawBlock{Addr: 0x10000020, Size: 5}) // library: filtered

	if err := run([]string{"-undesired", undesired, "-wanted", wanted}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestTracediffMissingArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("run without args succeeded")
	}
}

func TestTracediffBadFile(t *testing.T) {
	dir := t.TempDir()
	bogus := filepath.Join(dir, "bogus.cov")
	if err := os.WriteFile(bogus, []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-undesired", bogus, "-wanted", bogus}); err == nil {
		t.Fatal("bogus log accepted")
	}
}
