// Command tracediff is the paper's tracediff.py (Figure 4): given
// coverage logs of undesired and wanted executions, it prints the
// basic blocks unique to the undesired features, filtering out
// library blocks.
//
// Usage:
//
//	tracediff -undesired put.cov -wanted get.cov [-keep-libs]
//	tracediff -undesired init.cov -wanted serving.cov   # init-only blocks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracediff", flag.ContinueOnError)
	undesiredPath := fs.String("undesired", "", "coverage log of undesired executions")
	wantedPaths := fs.String("wanted", "", "','-separated coverage logs of wanted executions (merged)")
	keepLibs := fs.Bool("keep-libs", false, "keep blocks from shared libraries in the diff")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *undesiredPath == "" || *wantedPaths == "" {
		return fmt.Errorf("usage: tracediff -undesired <log> -wanted <log>[,<log>...]")
	}

	undesired, err := loadGraph(*undesiredPath)
	if err != nil {
		return err
	}
	wanted := coverage.NewGraph()
	for _, p := range strings.Split(*wantedPaths, ",") {
		g, err := loadGraph(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		wanted = coverage.Merge(wanted, g)
	}

	diff := coverage.Diff(undesired, wanted)
	if !*keepLibs {
		diff = diff.FilterModules(func(m string) bool {
			return m != "" && !strings.HasSuffix(m, ".so")
		})
	}
	blocks := diff.Blocks()
	fmt.Printf("# %d basic blocks unique to %s\n", len(blocks), *undesiredPath)
	fmt.Printf("# module, offset, size, absolute\n")
	for _, b := range blocks {
		abs := "-"
		if base, ok := diff.ModuleBase(b.Module); ok {
			abs = fmt.Sprintf("0x%x", base+b.Off)
		}
		fmt.Printf("%s, 0x%x, %d, %s\n", b.Module, b.Off, b.Size, abs)
	}
	return nil
}

func loadGraph(path string) (*coverage.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	log, err := trace.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return coverage.FromLog(log), nil
}
