// Command crit inspects and edits CRIU-style checkpoint image files
// (produced by `dynacut dump`), mirroring the CRIT tool the paper
// extends: decode images to JSON, list memory regions, and show
// register state.
//
// Usage:
//
//	crit show images.img [pid]        # core image JSON
//	crit x images.img mems [pid]      # VMA table
//	crit x images.img files [pid]     # descriptor table
//	crit decode images.img pid out/   # write core/mm JSON files
//	crit disasm images.img [pid]      # disassemble executable pages
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/disasm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: crit show|x|decode <images.img> ...")
	}
	cmd := args[0]
	set, err := load(args[1])
	if err != nil {
		return err
	}
	ed := crit.NewEditor(set, nil)

	pickPID := func(arg string) (int, error) {
		if arg == "" {
			return set.PIDs[0], nil
		}
		return strconv.Atoi(arg)
	}

	switch cmd {
	case "show":
		pidArg := ""
		if len(args) > 2 {
			pidArg = args[2]
		}
		pid, err := pickPID(pidArg)
		if err != nil {
			return err
		}
		out, err := ed.CoreJSON(pid)
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	case "x":
		if len(args) < 3 {
			return fmt.Errorf("usage: crit x <images.img> mems|files [pid]")
		}
		pidArg := ""
		if len(args) > 3 {
			pidArg = args[3]
		}
		pid, err := pickPID(pidArg)
		if err != nil {
			return err
		}
		switch args[2] {
		case "mems":
			vmas, err := ed.VMAs(pid)
			if err != nil {
				return err
			}
			for _, v := range vmas {
				fmt.Printf("%#x-%#x %s %s\n", v.Start, v.End, delf.Perm(v.Perm), v.Name)
			}
			return nil
		case "files":
			pi, err := set.Proc(pid)
			if err != nil {
				return err
			}
			for _, f := range pi.Files.Files {
				fmt.Printf("fd %d kind %d port %d conn %d\n", f.FD, f.Kind, f.Port, f.ConnID)
			}
			return nil
		default:
			return fmt.Errorf("unknown x target %q", args[2])
		}
	case "decode":
		if len(args) < 4 {
			return fmt.Errorf("usage: crit decode <images.img> <pid> <outdir>")
		}
		pid, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		outDir := args[3]
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		core, err := ed.CoreJSON(pid)
		if err != nil {
			return err
		}
		mm, err := ed.MMJSON(pid)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, fmt.Sprintf("core-%d.json", pid)), core, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, fmt.Sprintf("mm-%d.json", pid)), mm, 0o644); err != nil {
			return err
		}
		fmt.Printf("decoded pid %d into %s\n", pid, outDir)
		return nil
	case "disasm":
		pidArg := ""
		if len(args) > 2 {
			pidArg = args[2]
		}
		pid, err := pickPID(pidArg)
		if err != nil {
			return err
		}
		out, err := disasmImage(ed, set, pid)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// disasmImage reconstructs the executable VMAs of pid from the dumped
// pages and disassembles them — showing exactly what DynaCut's
// rewriter left in memory (INT3 patches included).
func disasmImage(ed *crit.Editor, set *criu.ImageSet, pid int) (string, error) {
	vmas, err := ed.VMAs(pid)
	if err != nil {
		return "", err
	}
	pi, err := set.Proc(pid)
	if err != nil {
		return "", err
	}
	synth := &delf.File{Type: delf.TypeExec, Name: pi.Core.Name + fmt.Sprintf("[pid %d image]", pid)}
	for _, v := range vmas {
		if delf.Perm(v.Perm)&delf.PermX == 0 {
			continue
		}
		data, err := ed.ReadMem(pid, v.Start, int(v.End-v.Start))
		if err != nil {
			// Code pages absent (vanilla dump): note and skip.
			continue
		}
		synth.Sections = append(synth.Sections, &delf.Section{
			Name: v.Name, Addr: v.Start, Size: v.End - v.Start,
			Perm: delf.Perm(v.Perm), Data: data,
		})
	}
	if len(synth.Sections) == 0 {
		return "", fmt.Errorf("no executable pages in the image (dump with ExecPages)")
	}
	return disasm.Listing(synth), nil
}

func load(path string) (*criu.ImageSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return criu.Unmarshal(data)
}
