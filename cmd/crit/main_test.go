package main

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/dynacut/dynacut"
)

// writeImages dumps a booted kvstore into a temp image file.
func writeImages(t *testing.T) (string, int) {
	t.Helper()
	app, err := dynacut.BuildKVStore(dynacut.KVStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	set, err := dynacut.Dump(sess.Machine, sess.PID(), dynacut.DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "images.img")
	if err := os.WriteFile(path, set.Marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, set.PIDs[0]
}

func TestCritShowAndX(t *testing.T) {
	path, pid := writeImages(t)
	if err := run([]string{"show", path}); err != nil {
		t.Fatalf("show: %v", err)
	}
	if err := run([]string{"show", path, strconv.Itoa(pid)}); err != nil {
		t.Fatalf("show pid: %v", err)
	}
	if err := run([]string{"x", path, "mems"}); err != nil {
		t.Fatalf("x mems: %v", err)
	}
	if err := run([]string{"x", path, "files"}); err != nil {
		t.Fatalf("x files: %v", err)
	}
	if err := run([]string{"x", path, "wat"}); err == nil {
		t.Fatal("unknown x target accepted")
	}
}

func TestCritDecode(t *testing.T) {
	path, pid := writeImages(t)
	outDir := filepath.Join(t.TempDir(), "decoded")
	if err := run([]string{"decode", path, strconv.Itoa(pid), outDir}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, name := range []string{"core", "mm"} {
		p := filepath.Join(outDir, name+"-"+strconv.Itoa(pid)+".json")
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", p)
		}
	}
}

func TestCritErrors(t *testing.T) {
	path, _ := writeImages(t)
	for _, args := range [][]string{
		nil,
		{"show"},
		{"show", "/nonexistent.img"},
		{"frob", path},
		{"decode", path},
		{"decode", path, "notanumber", "out"},
		{"show", path, "999"}, // unknown pid
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
	// Corrupt image file.
	bad := filepath.Join(t.TempDir(), "bad.img")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"show", bad}); err == nil {
		t.Error("garbage image accepted")
	}
}

func TestCritDisasm(t *testing.T) {
	path, pid := writeImages(t)
	if err := run([]string{"disasm", path, strconv.Itoa(pid)}); err != nil {
		t.Fatalf("disasm: %v", err)
	}
	if err := run([]string{"disasm", path}); err != nil {
		t.Fatalf("disasm default pid: %v", err)
	}
}
