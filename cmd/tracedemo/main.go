// Command tracedemo runs one full customization cycle under fault
// injection with the observability layer attached, then prints the
// human-readable phase summary and (optionally) writes the JSONL
// trace. It is the quickest way to see the rewrite pipeline's
// timeline: checkpoint → edit → validate → kill → restore (fails,
// injected) → rollback → retry → commit, with every phase and fault
// stamped on the machine's virtual clock.
//
// Usage:
//
//	go run ./cmd/tracedemo [-o trace.jsonl] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dynacut/dynacut"
)

func run(out string, seed int64) error {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		return err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return err
	}
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		return err
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return err
	}

	// Arm a transient restore fault: the first restore attempt fails
	// mid-transaction, forcing a rollback and a retry — the most
	// informative timeline a single rewrite can produce.
	in := dynacut.NewFaultInjector(seed)
	in.FailTransient("criu.restore.", 1, 1)
	sess.Machine.SetFaultHook(in)

	o := dynacut.NewObserver(0)
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
		RedirectTo:  errAddr,
		MaxAttempts: 2,
		Observer:    o,
	})
	if err != nil {
		return err
	}
	stats, err := cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry)
	if err != nil {
		return fmt.Errorf("rewrite: %w", err)
	}
	// Exercise the customized guest so the trap counters move.
	if resp := sess.MustRequest("PUT /f data\n"); resp != "" {
		fmt.Printf("PUT after customization -> %q\n", firstLine(resp))
	}
	if resp := sess.MustRequest("GET /\n"); resp != "" {
		fmt.Printf("GET after customization -> %q\n", firstLine(resp))
	}

	fmt.Printf("\nrewrite committed: attempts=%d rolledBack=%v pagesDumped=%d injectedFaults=%d\n\n",
		stats.Attempts, stats.RolledBack, stats.PagesDumped, in.Injected())
	fmt.Println(o.Summary())

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := o.WriteJSONL(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s\n", o.Len(), out)
	}
	return nil
}

func firstLine(s string) string {
	for i := range s {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func main() {
	out := flag.String("o", "", "write the JSONL trace to this file")
	seed := flag.Int64("seed", 42, "fault-injector seed")
	flag.Parse()
	if err := run(*out, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "tracedemo: %v\n", err)
		os.Exit(1)
	}
}
