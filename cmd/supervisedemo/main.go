// Command supervisedemo runs the closed-loop supervisor end to end
// and prints its decision timeline: a feature is disabled through the
// supervisor, undesired traffic drives the trap counters into a
// storm, and the watchdog-driven control loop walks the degradation
// ladder — re-enabling the offending feature, opening its circuit
// breaker, and quarantining it from further disables until probation
// expires. The timeline is reconstructed from the observability
// trace, so every decision shown is stamped on the machine's virtual
// clock.
//
// Usage:
//
//	go run ./cmd/supervisedemo [-o supervise.jsonl] [-puts 8]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/dynacut/dynacut"
)

func run(out string, puts int) error {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		return err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return err
	}
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		return err
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return err
	}

	o := dynacut.NewObserver(0)
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{
		RedirectTo: errAddr,
		Observer:   o,
	})
	if err != nil {
		return err
	}
	sup := dynacut.NewSupervisor(sess.Machine, cust, dynacut.SupervisorConfig{
		Canary: sess.Canary("GET /\n", "200"),
		// A session request spans at least one 50k-tick drain window,
		// so the storm window must cover several requests' worth of
		// virtual time for their traps to count together.
		StormWindow:    400_000,
		StormThreshold: 4,
		Observer:       o,
	})
	if err := sup.Attach(); err != nil {
		return err
	}
	defer sup.Detach()

	fmt.Println("== disable webdav-write through the supervisor ==")
	if _, err := sup.DisableFeature("webdav-write", blocks, dynacut.PolicyBlockEntry); err != nil {
		return fmt.Errorf("disable: %w", err)
	}
	fmt.Printf("PUT  -> %q (blocked)\n", firstLine(sess.MustRequest("PUT /f data\n")))
	fmt.Printf("GET  -> %q\n\n", firstLine(sess.MustRequest("GET /\n")))

	fmt.Printf("== hammer %d PUTs: drive the trap counters into a storm ==\n", puts)
	for i := 0; i < puts; i++ {
		resp := firstLine(sess.MustRequest("PUT /f data\n"))
		note := ""
		if sess.LastErr != nil {
			note = fmt.Sprintf("  (%v)", sess.LastErr)
		}
		fmt.Printf("PUT #%d -> %q  level=%d%s\n", i+1, resp, sup.Level(), note)
		if sup.Level() >= 2 {
			break
		}
	}

	fmt.Println("\n== aftermath ==")
	fmt.Printf("PUT  -> %q (feature re-enabled by the ladder)\n",
		firstLine(sess.MustRequest("PUT /g data\n")))
	if _, err := sup.DisableFeature("webdav-write", blocks, dynacut.PolicyBlockEntry); err != nil {
		switch {
		case errors.Is(err, dynacut.ErrQuarantined):
			fmt.Printf("re-disable refused: %v\n", err)
		default:
			fmt.Printf("re-disable failed: %v\n", err)
		}
	} else {
		fmt.Println("re-disable accepted (breaker closed again)")
	}

	st := sup.Status()
	fmt.Printf("\nsupervisor: level=%d disarmed=%v restored=%v windowHits=%d\n",
		st.Level, st.Disarmed, st.Restored, st.WindowHits)
	names := make([]string, 0, len(st.Breakers))
	for name := range st.Breakers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		br := st.Breakers[name]
		fmt.Printf("breaker %-14s state=%-8s strikes=%d trips=%d probation=%d\n",
			name, br.State, br.Strikes, br.Trips, br.Probation)
	}

	fmt.Println("\n== supervisor timeline (virtual clock) ==")
	for _, ev := range o.Events() {
		if !strings.HasPrefix(ev.Name, "supervise.") {
			continue
		}
		line := fmt.Sprintf("%10d  %-11s %s", ev.VClock, ev.Kind, ev.Name)
		if ev.N != 0 {
			line += fmt.Sprintf("  n=%d", ev.N)
		}
		if ev.Err != "" {
			line += "  err=" + ev.Err
		}
		fmt.Println(line)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := o.WriteJSONL(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d trace events to %s\n", o.Len(), out)
	}
	return nil
}

func firstLine(s string) string {
	for i := range s {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func main() {
	out := flag.String("o", "", "write the JSONL trace to this file")
	puts := flag.Int("puts", 8, "how many PUTs to hammer")
	flag.Parse()
	if err := run(*out, *puts); err != nil {
		fmt.Fprintf(os.Stderr, "supervisedemo: %v\n", err)
		os.Exit(1)
	}
}
