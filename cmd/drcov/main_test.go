package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/trace"
)

func TestDrcovServerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "serving.cov")
	initOut := filepath.Join(dir, "init.cov")
	err := run([]string{
		"-app", "lighttpd", "-o", out, "-init", initOut,
		"-requests", "GET /;PUT /f data;DELETE /f",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, path := range []string{out, initOut} {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		log, err := trace.Parse(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(log.Blocks) == 0 || len(log.Modules) == 0 {
			t.Fatalf("%s: empty log", path)
		}
		if !strings.Contains(log.Program, "lighttpd") {
			t.Errorf("%s: program = %q", path, log.Program)
		}
	}
}

func TestDrcovSpecProfile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "mcf.cov")
	initOut := filepath.Join(dir, "mcf-init.cov")
	if err := run([]string{"-app", "605.mcf_s", "-o", out, "-init", initOut}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(initOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := trace.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if log.Phase != "init" {
		t.Errorf("phase = %q", log.Phase)
	}
}

func TestDrcovUnknownApp(t *testing.T) {
	if err := run([]string{"-app", "doom"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}
