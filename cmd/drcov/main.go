// Command drcov runs a guest application under the basic-block
// coverage tracer and writes drcov-style logs, including the
// nudge-split initialization-phase log the paper's extension adds.
//
// Usage:
//
//	drcov -app lighttpd -o serving.cov -init init.cov -requests "GET /;PUT /f x"
//	drcov -app 605.mcf_s -o full.cov -init init.cov
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dynacut/dynacut"
	"github.com/dynacut/dynacut/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drcov:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drcov", flag.ContinueOnError)
	appName := fs.String("app", "lighttpd", "guest: lighttpd, nginx, kvstore, or a SPEC profile name")
	out := fs.String("o", "coverage.cov", "output log (post-init coverage)")
	initOut := fs.String("init", "", "optional output log for init-phase coverage")
	requests := fs.String("requests", "GET /", "';'-separated requests to drive (servers only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// SPEC profile?
	for _, prof := range dynacut.SpecProfiles() {
		if prof.Name == *appName {
			return traceSpec(prof, *out, *initOut)
		}
	}
	return traceServer(*appName, *out, *initOut, strings.Split(*requests, ";"))
}

func traceServer(name, out, initOut string, reqs []string) error {
	var (
		exe  *dynacut.Binary
		libs []*dynacut.Binary
		port uint16
	)
	switch name {
	case "lighttpd", "nginx":
		workers := 0
		if name == "nginx" {
			workers = 1
		}
		app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: name, Port: 8080, Workers: workers})
		if err != nil {
			return err
		}
		exe, libs, port = app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port
	case "kvstore":
		app, err := dynacut.BuildKVStore(dynacut.KVStoreConfig{})
		if err != nil {
			return err
		}
		exe, libs, port = app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port
	default:
		return fmt.Errorf("unknown app %q", name)
	}
	sess, err := dynacut.StartServer(exe, libs, port)
	if err != nil {
		return err
	}
	if initOut != "" {
		if err := os.WriteFile(initOut, sess.InitLog.Marshal(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote init coverage (%d blocks) to %s\n", len(sess.InitLog.Blocks), initOut)
	}
	for _, r := range reqs {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if _, err := sess.Request(r + "\n"); err != nil {
			return fmt.Errorf("request %q: %w", r, err)
		}
	}
	root, err := sess.Root()
	if err != nil {
		return err
	}
	log := sess.Collector.Snapshot(root.Modules(), "serving")
	if err := os.WriteFile(out, log.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote serving coverage (%d blocks) to %s\n", len(log.Blocks), out)
	return nil
}

func traceSpec(prof dynacut.SpecProfile, out, initOut string) error {
	app, err := dynacut.BuildSpec(prof)
	if err != nil {
		return err
	}
	m := dynacut.NewMachine()
	col := trace.NewCollector(prof.Name)
	m.SetTracer(col)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		return err
	}
	var initLog *dynacut.CoverageLog
	m.SetNudgeFunc(func(pid int, arg uint64) {
		if initLog == nil {
			initLog = col.SnapshotAndReset(p.Modules(), "init")
		}
	})
	m.Run(2_000_000_000)
	if !p.Exited() {
		return fmt.Errorf("%s did not finish", prof.Name)
	}
	if initOut != "" && initLog != nil {
		if err := os.WriteFile(initOut, initLog.Marshal(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote init coverage (%d blocks) to %s\n", len(initLog.Blocks), initOut)
	}
	log := col.Snapshot(p.Modules(), "serving")
	if err := os.WriteFile(out, log.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote serving coverage (%d blocks) to %s\n", len(log.Blocks), out)
	return nil
}
