// Command fleetdemo runs a fleet-scale customization end to end: one
// web-server guest is booted and profiled, cloned copy-on-write into N
// replicas whose pristine checkpoints deduplicate into a shared page
// store, and then a feature-removal rewrite rolls out across the fleet
// in stages — canary shard first, then bounded waves. With -failat the
// rewrite is sabotaged on one replica, demonstrating the halt: the
// failed wave's committed siblings are restored to their pristine
// checkpoints and later waves never run. With -crash the rollout
// controller itself is killed at the Nth crash-site consultation,
// demonstrating crash recovery: the append-only journal it left behind
// seeds a resumed controller that skips every committed replica and
// finishes the rollout without re-rewriting anything.
//
// Usage:
//
//	go run ./cmd/fleetdemo [-replicas 8] [-workers 4] [-wave 3] [-failat -1] [-crash -1] [-o fleet.jsonl]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dynacut/dynacut"
)

func run(replicas, workers, wave, failat, crash int, out string) error {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		return err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return err
	}
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		return err
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return err
	}

	fmt.Printf("== spawn %d CoW replicas from the template ==\n", replicas)
	cfg := dynacut.FleetConfig{
		Replicas:     replicas,
		Workers:      workers,
		CanaryShards: 1,
		WaveSize:     wave,
		Core: dynacut.CustomizerOptions{
			RedirectTo:  errAddr,
			HealthCheck: dynacut.HealthProbe(app.Config.Port, "GET /\n", "200"),
		},
	}
	if crash >= 0 {
		// Arm the controller's death at its Nth crash-site consultation
		// (the controller checks the site before and after every journal
		// append, so hit N lands mid-rollout for small N).
		inj := dynacut.NewFaultInjector(1)
		inj.FailAt("fleet.controller.crash", crash)
		cfg.FaultHook = inj
	}
	f, err := dynacut.NewFleetFromSession(sess, cfg)
	if err != nil {
		return err
	}
	st := f.Store().Stats()
	fmt.Printf("page store: %d sets, %d unique pages (%d deduplicated), %d blob bytes\n\n",
		st.Sets, st.UniquePages, st.DedupHits, st.StoredBytes)

	fmt.Println("== staged rollout: disable webdav-write fleet-wide ==")
	apply := func(r *dynacut.FleetReplica) (dynacut.RewriteStats, error) {
		if r.Index == failat {
			return dynacut.RewriteStats{}, fmt.Errorf("sabotaged replica %d", r.Index)
		}
		return r.Cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry)
	}
	c := dynacut.NewRolloutController(f, nil)
	res, err := c.Run(apply)
	if errors.Is(err, dynacut.ErrControllerCrashed) {
		jb := c.Journal().Bytes()
		recs, derr := dynacut.DecodeRolloutJournal(jb)
		if derr != nil {
			return derr
		}
		fmt.Printf("\ncontroller CRASHED mid-rollout: %v\n", firstLine(err.Error()))
		fmt.Printf("journal left behind: %d records, %d bytes; committed so far: %d/%d\n",
			len(recs), len(jb), res.Committed(), replicas)
		fmt.Println("\n== resume from the journal ==")
		c, err = dynacut.ResumeRolloutController(f, jb)
		if err != nil {
			return err
		}
		res, err = c.Run(apply)
		if err == nil {
			fmt.Printf("resumed: %d replicas skipped as already committed, 0 rewrites repeated\n",
				res.SkippedCommitted)
		}
	}
	if err != nil {
		return err
	}
	for _, w := range res.Waves {
		kind := "wave  "
		if w.Canary {
			kind = "canary"
		}
		fmt.Printf("%s %d: replicas %v, failures %d\n", kind, w.Index, w.Replicas, w.Failures)
	}
	if res.Halted {
		fmt.Printf("rollout HALTED at wave %d\n", res.HaltedWave)
	}
	fmt.Printf("serial cost %d vticks, %d-lane makespan %d vticks (%.1fx)\n\n",
		res.SerialTicks, workers, res.FleetTicks,
		float64(res.SerialTicks)/float64(max(res.FleetTicks, 1)))

	fmt.Println("== per-replica convergence ==")
	for _, o := range res.Outcomes {
		r := f.Replicas()[o.Index]
		put := firstLine(probe(r.Machine, app.Config.Port, "PUT /f data\n"))
		get := firstLine(probe(r.Machine, app.Config.Port, "GET /\n"))
		note := ""
		if o.Err != nil {
			if errors.Is(o.Err, dynacut.ErrFleetHalted) {
				note = "  (halted)"
			} else {
				note = fmt.Sprintf("  (%v)", firstLine(o.Err.Error()))
			}
		}
		fmt.Printf("replica %2d  %-10s  PUT->%-28q GET->%q%s\n",
			o.Index, o.Outcome, put, get, note)
	}
	fmt.Printf("committed: %d/%d\n", res.Committed(), replicas)

	fmt.Println("\n== fleet timeline (merged per-replica streams) ==")
	shown := 0
	for _, ev := range f.Timeline() {
		if !strings.Contains(ev.Name, "fleet.") {
			continue
		}
		line := fmt.Sprintf("%10d  %-11s %s", ev.VClock, ev.Kind, ev.Name)
		if ev.N != 0 {
			line += fmt.Sprintf("  n=%d", ev.N)
		}
		fmt.Println(line)
		if shown++; shown >= 24 {
			fmt.Println("  ...")
			break
		}
	}

	if out != "" {
		fh, err := os.Create(out)
		if err != nil {
			return err
		}
		defer fh.Close()
		for _, ev := range f.Timeline() {
			fmt.Fprintf(fh, "%+v\n", ev)
		}
		fmt.Printf("\nwrote merged timeline to %s\n", out)
	}
	return nil
}

// probe sends one request to a replica guest and returns the response.
func probe(m *dynacut.Machine, port uint16, req string) string {
	conn, err := m.Dial(port)
	if err != nil {
		return ""
	}
	if _, err := conn.Write([]byte(req)); err != nil {
		return ""
	}
	m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
	m.Run(20000)
	return string(conn.ReadAll())
}

func firstLine(s string) string {
	for i := range s {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func main() {
	replicas := flag.Int("replicas", 8, "fleet size")
	workers := flag.Int("workers", 4, "rewrite worker pool size")
	wave := flag.Int("wave", 3, "replicas per post-canary wave")
	failat := flag.Int("failat", -1, "sabotage the rewrite on this replica index (-1: none)")
	crash := flag.Int("crash", -1, "kill the controller at the Nth crash-site hit, then resume from the journal (-1: none)")
	out := flag.String("o", "", "write the merged timeline to this file")
	flag.Parse()
	if err := run(*replicas, *workers, *wave, *failat, *crash, *out); err != nil {
		fmt.Fprintf(os.Stderr, "fleetdemo: %v\n", err)
		os.Exit(1)
	}
}
