// Command fleetdemo runs a fleet-scale customization end to end: one
// web-server guest is booted and profiled, cloned copy-on-write into N
// replicas whose pristine checkpoints deduplicate into a shared page
// store, and then a feature-removal rewrite rolls out across the fleet
// in stages — canary shard first, then bounded waves. With -failat the
// rewrite is sabotaged on one replica, demonstrating the halt: the
// failed wave's committed siblings are restored to their pristine
// checkpoints and later waves never run. With -crash the rollout
// controller itself is killed at the Nth crash-site consultation,
// demonstrating crash recovery: the append-only journal it left behind
// seeds a resumed controller that skips every committed replica and
// finishes the rollout without re-rewriting anything.
//
// With -load the rollout instead runs under open-loop, schedule-driven
// traffic (constant, step-ramp, Poisson or a CSV trace) and the demo
// prints the SLO view: latency percentiles and served/dropped counts
// against a steady-state baseline, plus each replica's downtime span
// measured twice — from the rollout journal's vclock stamps and from
// the service gap the load generator observed — which must agree
// within one bucket.
//
// With -live the rollout takes the live-patch fast path instead of the
// checkpoint transaction: each replica is quiesced at a scheduler-round
// boundary, verified safe (no RIP or saved return address inside an
// affected block), and its text bytes are patched in place — near-zero
// downtime, with automatic fallback to the transaction when a replica
// cannot be proven safe.
//
// With -scrub the rollout runs with attestation sweeps armed while a
// silent bit-flip storm corrupts replica text pages — no error is ever
// returned by the fault; the corruption is only visible to a hash of
// the live bytes. After every wave the controller hashes each replica's
// text against its expected-state oracle and repairs divergence in
// place from the content-addressed page store (no restore, PIDs stay
// put); replicas whose repair budget is exhausted are quarantined and
// drained from later waves. The demo prints each sweep's verdicts and
// then proves the invariant: every replica is attested-correct or
// quarantined, never silently wrong.
//
// Usage:
//
//	go run ./cmd/fleetdemo [-replicas 8] [-workers 4] [-wave 3] [-failat -1] [-crash -1] [-live] [-o fleet.jsonl]
//	go run ./cmd/fleetdemo -load [-live] [-sched constant|ramp|poisson|trace.csv] [-interval 10000] [-horizon 1200000]
//	go run ./cmd/fleetdemo -scrub [-replicas 8] [-flipevery 3]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dynacut/dynacut"
)

// setup boots and profiles the template web server every demo mode
// starts from.
func setup() (*dynacut.WebServerApp, *dynacut.Session, []dynacut.AbsBlock, uint64, error) {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"},
	)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return app, sess, blocks, errAddr, nil
}

// prepLive pre-installs the INT3 handler library in the template guest
// so every clone qualifies for the live-patch fast path, and returns
// the (possibly re-rooted) template PID.
func prepLive(sess *dynacut.Session, errAddr uint64) (int, error) {
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{RedirectTo: errAddr})
	if err != nil {
		return 0, err
	}
	if _, err := cust.InstallHandler(); err != nil {
		return 0, err
	}
	return cust.PID(), nil
}

// stepMode renders how a replica's rewrite was applied.
func stepMode(s dynacut.RewriteStats) string {
	switch {
	case s.LivePatched:
		return "live-patched"
	case s.FellBack:
		return "fell-back"
	default:
		return "txn"
	}
}

func run(replicas, workers, wave, failat, crash int, live bool, out string) error {
	app, sess, blocks, errAddr, err := setup()
	if err != nil {
		return err
	}

	fmt.Printf("== spawn %d CoW replicas from the template ==\n", replicas)
	cfg := dynacut.FleetConfig{
		Replicas:     replicas,
		Workers:      workers,
		CanaryShards: 1,
		WaveSize:     wave,
		Core: dynacut.CustomizerOptions{
			RedirectTo:  errAddr,
			HealthCheck: dynacut.HealthProbe(app.Config.Port, "GET /\n", "200"),
		},
	}
	if crash >= 0 {
		// Arm the controller's death at its Nth crash-site consultation
		// (the controller checks the site before and after every journal
		// append, so hit N lands mid-rollout for small N).
		inj := dynacut.NewFaultInjector(1)
		inj.FailAt("fleet.controller.crash", crash)
		cfg.FaultHook = inj
	}
	rootPID := sess.PID()
	if live {
		cfg.LivePatch = &dynacut.LivePatchSpec{Blocks: blocks, Policy: dynacut.PolicyBlockEntry}
		if rootPID, err = prepLive(sess, errAddr); err != nil {
			return err
		}
	}
	f, err := dynacut.NewFleet(sess.Machine, rootPID, cfg)
	if err != nil {
		return err
	}
	st := f.Store().Stats()
	fmt.Printf("page store: %d sets, %d unique pages (%d deduplicated), %d blob bytes\n\n",
		st.Sets, st.UniquePages, st.DedupHits, st.StoredBytes)

	if live {
		fmt.Println("== staged rollout: disable webdav-write fleet-wide (live-patch fast path) ==")
	} else {
		fmt.Println("== staged rollout: disable webdav-write fleet-wide ==")
	}
	apply := func(r *dynacut.FleetReplica) (dynacut.RewriteStats, error) {
		if r.Index == failat {
			return dynacut.RewriteStats{}, fmt.Errorf("sabotaged replica %d", r.Index)
		}
		if live {
			return r.Cust.DisableBlocksLive("webdav-write", blocks, dynacut.PolicyBlockEntry)
		}
		return r.Cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry)
	}
	c := dynacut.NewRolloutController(f, nil)
	res, err := c.Run(apply)
	if errors.Is(err, dynacut.ErrControllerCrashed) {
		jb := c.Journal().Bytes()
		recs, derr := dynacut.DecodeRolloutJournal(jb)
		if derr != nil {
			return derr
		}
		fmt.Printf("\ncontroller CRASHED mid-rollout: %v\n", firstLine(err.Error()))
		fmt.Printf("journal left behind: %d records, %d bytes; committed so far: %d/%d\n",
			len(recs), len(jb), res.Committed(), replicas)
		fmt.Println("\n== resume from the journal ==")
		c, err = dynacut.ResumeRolloutController(f, jb)
		if err != nil {
			return err
		}
		res, err = c.Run(apply)
		if err == nil {
			fmt.Printf("resumed: %d replicas skipped as already committed, 0 rewrites repeated\n",
				res.SkippedCommitted)
		}
	}
	if err != nil {
		return err
	}
	for _, w := range res.Waves {
		kind := "wave  "
		if w.Canary {
			kind = "canary"
		}
		fmt.Printf("%s %d: replicas %v, failures %d\n", kind, w.Index, w.Replicas, w.Failures)
	}
	if res.Halted {
		fmt.Printf("rollout HALTED at wave %d\n", res.HaltedWave)
	}
	fmt.Printf("serial cost %d vticks, %d-lane makespan %d vticks (%.1fx)\n\n",
		res.SerialTicks, workers, res.FleetTicks,
		float64(res.SerialTicks)/float64(max(res.FleetTicks, 1)))

	fmt.Println("== per-replica convergence ==")
	for _, o := range res.Outcomes {
		r := f.Replicas()[o.Index]
		put := firstLine(probe(r.Machine, app.Config.Port, "PUT /f data\n"))
		get := firstLine(probe(r.Machine, app.Config.Port, "GET /\n"))
		note := ""
		if o.Err != nil {
			if errors.Is(o.Err, dynacut.ErrFleetHalted) {
				note = "  (halted)"
			} else {
				note = fmt.Sprintf("  (%v)", firstLine(o.Err.Error()))
			}
		}
		fmt.Printf("replica %2d  %-10s  %-12s  PUT->%-28q GET->%q%s\n",
			o.Index, o.Outcome, stepMode(o.Stats), put, get, note)
	}
	fmt.Printf("committed: %d/%d\n", res.Committed(), replicas)

	fmt.Println("\n== fleet timeline (merged per-replica streams) ==")
	shown := 0
	for _, ev := range f.Timeline() {
		if !strings.Contains(ev.Name, "fleet.") {
			continue
		}
		line := fmt.Sprintf("%10d  %-11s %s", ev.VClock, ev.Kind, ev.Name)
		if ev.N != 0 {
			line += fmt.Sprintf("  n=%d", ev.N)
		}
		fmt.Println(line)
		if shown++; shown >= 24 {
			fmt.Println("  ...")
			break
		}
	}

	if out != "" {
		fh, err := os.Create(out)
		if err != nil {
			return err
		}
		defer fh.Close()
		for _, ev := range f.Timeline() {
			fmt.Fprintf(fh, "%+v\n", ev)
		}
		fmt.Printf("\nwrote merged timeline to %s\n", out)
	}
	return nil
}

// runScrub demonstrates the anti-entropy attestation sweep: a staged
// live-patch rollout with Scrub armed, under a silent text bit-flip
// storm, ends with every replica attested-correct or quarantined.
func runScrub(replicas, workers, wave, flipevery int) error {
	app, sess, blocks, errAddr, err := setup()
	if err != nil {
		return err
	}
	rootPID, err := prepLive(sess, errAddr)
	if err != nil {
		return err
	}

	// The storm: every flipevery-th consultation of the bit-flip site
	// silently XORs one byte of a text page. No error anywhere.
	inj := dynacut.NewFaultInjector(1)
	inj.FailTransient("kernel.text.bitflip", flipevery, 2)

	fmt.Printf("== spawn %d CoW replicas; attestation scrub armed, bit-flip storm every %d checks ==\n",
		replicas, flipevery)
	cfg := dynacut.FleetConfig{
		Replicas:     replicas,
		Workers:      workers,
		CanaryShards: 1,
		WaveSize:     wave,
		Scrub:        true,
		FaultHook:    inj,
		LivePatch:    &dynacut.LivePatchSpec{Blocks: blocks, Policy: dynacut.PolicyBlockEntry},
		Core: dynacut.CustomizerOptions{
			RedirectTo:  errAddr,
			HealthCheck: dynacut.HealthProbe(app.Config.Port, "GET /\n", "200"),
		},
	}
	f, err := dynacut.NewFleet(sess.Machine, rootPID, cfg)
	if err != nil {
		return err
	}

	fmt.Println("\n== staged rollout: disable webdav-write, scrub after every wave ==")
	c := dynacut.NewRolloutController(f, nil)
	res, err := c.Run(func(r *dynacut.FleetReplica) (dynacut.RewriteStats, error) {
		return r.Cust.DisableBlocksLive("webdav-write", blocks, dynacut.PolicyBlockEntry)
	})
	if err != nil {
		return err
	}
	fmt.Printf("committed %d/%d, %d silent faults injected\n\n", res.Committed(), replicas, inj.Injected())

	fmt.Println("== attestation sweeps (one per wave) ==")
	for _, sw := range res.Sweeps {
		fmt.Printf("sweep after wave %d: quorum %d/%d on the modal root, %d divergent\n",
			sw.Wave, sw.Quorum, sw.Quorum+sw.Divergent, sw.Divergent)
		for _, ra := range sw.Replicas {
			if ra.Verdict == dynacut.VerdictClean {
				continue
			}
			line := fmt.Sprintf("  replica %2d  %-9v  %d pages checked", ra.Index, ra.Verdict, ra.Checked)
			if ra.Repaired > 0 {
				line += fmt.Sprintf(", %d repaired in place (try %d)", ra.Repaired, ra.Tries)
			}
			if ra.Err != nil {
				line += fmt.Sprintf("  (%v)", firstLine(ra.Err.Error()))
			}
			fmt.Println(line)
		}
		fmt.Printf("  totals: %d repaired, %d skews absorbed, %d quarantined\n",
			sw.Repaired, sw.Skews, sw.Quarantined)
	}

	// Journal ledger: repairs must never surface as restores.
	var attests, repairs, quarantines int
	for _, rec := range c.Journal().Records() {
		switch rec.Kind {
		case dynacut.RecAttest:
			attests++
		case dynacut.RecRepair:
			repairs++
		case dynacut.RecQuarantine:
			quarantines++
		}
	}
	fmt.Printf("\njournal (v3): %d attest, %d repair, %d quarantine records\n", attests, repairs, quarantines)

	fmt.Println("\n== the invariant: attested-correct or quarantined, never silently wrong ==")
	for _, r := range f.Replicas() {
		r.Machine.SetFaultHook(nil) // disarm: verification must observe, not inject
	}
	f.Store().SetFaultHook(nil)
	wrong := 0
	for _, r := range f.Replicas() {
		if r.Quarantined() {
			fmt.Printf("replica %2d  QUARANTINED (drained from service)\n", r.Index)
			continue
		}
		rep, aerr := r.Cust.Attest()
		verdict := "attested clean"
		if aerr != nil || !rep.Clean() {
			verdict = "SILENTLY DIVERGED"
			wrong++
		}
		get := firstLine(probe(r.Machine, app.Config.Port, "GET /\n"))
		put := firstLine(probe(r.Machine, app.Config.Port, "PUT /f data\n"))
		fmt.Printf("replica %2d  %-14s  pid %d  GET->%-24q PUT->%q\n",
			r.Index, verdict, r.Cust.PID(), get, put)
	}
	fmt.Printf("serving %d/%d replicas, %d silently wrong\n", len(f.Active()), replicas, wrong)
	return nil
}

// pickSchedule maps the -sched flag to a load schedule: a builtin
// name, or a path to a CSV trace ("invocations[,payload]" per slot).
func pickSchedule(name string, interval, bucket uint64) (dynacut.LoadSchedule, error) {
	switch name {
	case "constant":
		return dynacut.NewConstantSchedule(interval), nil
	case "ramp":
		// Stress mode: start at ~1 arrival per bucket and add one more
		// each bucket.
		return dynacut.NewStepRampSchedule(1, 1, bucket), nil
	case "poisson":
		return dynacut.NewPoissonSchedule(interval, 42), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("-sched %q is not a builtin and not a readable trace: %w", name, err)
	}
	return dynacut.ParseLoadTrace(string(data), bucket)
}

func fmtReport(tag string, r *dynacut.SLOReport) {
	fmt.Printf("%-14s p50 %6d  p99 %6d  p999 %6d vticks   served/vtick %.5f   served %d/%d  dropped %d  errors %d\n",
		tag, r.P50, r.P99, r.P999, r.ServedPerVtick, r.Served, r.Total, r.Dropped, r.Errors)
}

// runLoad measures a staged rollout under open-loop load against a
// steady-state baseline of the same fleet shape and schedule.
func runLoad(replicas, workers, wave int, live bool, sched string, interval, horizon uint64) error {
	app, sess, blocks, errAddr, err := setup()
	if err != nil {
		return err
	}
	const bucket = 100_000
	schedule, err := pickSchedule(sched, interval, bucket)
	if err != nil {
		return err
	}
	fcfg := dynacut.FleetConfig{
		Replicas:     replicas,
		Workers:      workers,
		CanaryShards: 1,
		WaveSize:     wave,
		Core: dynacut.CustomizerOptions{
			RedirectTo: errAddr,
			// Convert the rewrite's wall-clock interruption to vticks
			// aggressively and cap it, so the charged downtime is a
			// deterministic span the demo can cross-check.
			TicksPerSecond: 2_000_000_000_000,
			MaxChargeTicks: 3 * bucket,
		},
	}
	cfg := dynacut.SLOConfig{
		Port:        app.Config.Port,
		Schedule:    schedule,
		Mix:         dynacut.NewLoadMix(dynacut.LoadRequest{Payload: "GET /\n", Weight: 4}, dynacut.LoadRequest{Payload: "HEAD /\n"}),
		Horizon:     horizon,
		BucketTicks: bucket,
		// Poll finer than the arrival gap so boundary responses are
		// stamped before the rewrite's hold point — keeps the observed
		// service gap flush with the journal's charged span.
		PollTicks: interval / 2,
	}
	apply := func(r *dynacut.FleetReplica) (dynacut.RewriteStats, error) {
		if live {
			return r.Cust.DisableBlocksLive("webdav-write", blocks, dynacut.PolicyBlockEntry)
		}
		return r.Cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry)
	}
	rootPID := sess.PID()
	if live {
		fcfg.LivePatch = &dynacut.LivePatchSpec{Blocks: blocks, Policy: dynacut.PolicyBlockEntry}
		if rootPID, err = prepLive(sess, errAddr); err != nil {
			return err
		}
	}

	fmt.Printf("== open-loop load: %s schedule, horizon %d vticks, %d replicas ==\n", sched, horizon, replicas)
	baseFleet, err := dynacut.NewFleet(sess.Machine, rootPID, fcfg)
	if err != nil {
		return err
	}
	steady, err := dynacut.SteadyStateLoad(baseFleet, cfg)
	if err != nil {
		return err
	}
	fmtReport("steady state:", steady)

	if live {
		fmt.Println("\n== same load while the live patch disables webdav-write ==")
	} else {
		fmt.Println("\n== same load while the rollout disables webdav-write ==")
	}
	rep, _, err := dynacut.RolloutUnderLoad(sess.Machine, rootPID, fcfg, cfg, apply)
	if err != nil {
		return err
	}
	fmtReport("under rollout:", rep)
	fmt.Printf("rollout committed %d/%d replicas\n", rep.Rollout.Committed(), replicas)
	if live {
		for _, o := range rep.Rollout.Outcomes {
			if !o.Stats.LivePatched {
				fmt.Printf("replica %2d applied via %s (%s)\n", o.Index, stepMode(o.Stats), o.Stats.FallbackReason)
			}
		}
	}

	fmt.Println("\n== per-replica downtime: journal stamps vs observed service gaps ==")
	obs := map[int]dynacut.DowntimeSpan{}
	for _, s := range rep.ObservedSpans {
		obs[s.Replica] = s
	}
	for _, js := range rep.JournalSpans {
		os, ok := obs[js.Replica]
		verdict := "NO OBSERVED GAP"
		if ok {
			verdict = "disagree"
			if js.Matches(os, bucket) {
				verdict = "agree within one bucket"
			}
		}
		fmt.Printf("replica %2d  journal %7d vticks   observed gap %7d vticks   %s\n",
			js.Replica, js.Ticks(), os.Ticks(), verdict)
	}
	return nil
}

// probe sends one request to a replica guest and returns the response.
func probe(m *dynacut.Machine, port uint16, req string) string {
	conn, err := m.Dial(port)
	if err != nil {
		return ""
	}
	if _, err := conn.Write([]byte(req)); err != nil {
		return ""
	}
	m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
	m.Run(20000)
	return string(conn.ReadAll())
}

func firstLine(s string) string {
	for i := range s {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func main() {
	replicas := flag.Int("replicas", 8, "fleet size")
	workers := flag.Int("workers", 4, "rewrite worker pool size")
	wave := flag.Int("wave", 3, "replicas per post-canary wave")
	failat := flag.Int("failat", -1, "sabotage the rewrite on this replica index (-1: none)")
	crash := flag.Int("crash", -1, "kill the controller at the Nth crash-site hit, then resume from the journal (-1: none)")
	out := flag.String("o", "", "write the merged timeline to this file")
	load := flag.Bool("load", false, "measure the rollout under open-loop load instead")
	scrub := flag.Bool("scrub", false, "run attestation sweeps under a silent bit-flip storm instead")
	flipevery := flag.Int("flipevery", 3, "bit-flip storm period (with -scrub): corrupt on every Nth site check")
	live := flag.Bool("live", false, "use the live-patch fast path (INT3 patch at a quiesced round; no checkpoint/restore)")
	sched := flag.String("sched", "constant", "load schedule: constant, ramp, poisson, or a trace CSV path")
	interval := flag.Uint64("interval", 10_000, "mean inter-arrival gap in vticks (constant/poisson)")
	horizon := flag.Uint64("horizon", 1_200_000, "load run length in vticks")
	flag.Parse()
	var err error
	if *scrub {
		err = runScrub(*replicas, *workers, *wave, *flipevery)
	} else if *load {
		err = runLoad(*replicas, *workers, *wave, *live, *sched, *interval, *horizon)
	} else {
		err = run(*replicas, *workers, *wave, *failat, *crash, *live, *out)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetdemo: %v\n", err)
		os.Exit(1)
	}
}
