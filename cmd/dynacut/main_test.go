package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"frobnicate"},
		{"report"},
		{"report", "figure99"},
		{"dump", "-app", "nosuch"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestDemo(t *testing.T) {
	if err := demo(); err != nil {
		t.Fatalf("demo: %v", err)
	}
}

func TestDumpWritesImages(t *testing.T) {
	out := filepath.Join(t.TempDir(), "images.img")
	if err := run([]string{"dump", "-app", "kvstore", "-o", out}); err != nil {
		t.Fatalf("dump: %v", err)
	}
	st, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("empty image file")
	}
}

func TestReportSingleFigure(t *testing.T) {
	// figure6 is one of the fastest full reports.
	if err := run([]string{"report", "figure6"}); err != nil {
		t.Fatalf("report figure6: %v", err)
	}
}

func TestReportFastReports(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"figure10", "table1", "seccomp", "ablation"} {
		if err := run([]string{"report", name}); err != nil {
			t.Fatalf("report %s: %v", name, err)
		}
	}
}
