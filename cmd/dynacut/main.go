// Command dynacut is the end-to-end driver: it can run the guest
// applications, reproduce every figure/table of the paper
// ("report"), demonstrate live feature customization ("demo"), and
// dump CRIU-style checkpoint images to disk for inspection with
// cmd/crit ("dump").
//
// Usage:
//
//	dynacut demo
//	dynacut report figure2|figure6|figure7|figure8|figure9|figure10|table1|plt|brop|all
//	dynacut dump -app lighttpd|nginx|kvstore -o images.img
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dynacut/dynacut"
	"github.com/dynacut/dynacut/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynacut:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: dynacut demo | report <figure> | dump -app <name> -o <file>")
	}
	switch args[0] {
	case "demo":
		return demo()
	case "report":
		if len(args) < 2 {
			return errors.New("usage: dynacut report figure2|figure6|figure7|figure8|figure9|figure10|table1|plt|brop|seccomp|ablation|all")
		}
		return report(args[1])
	case "dump":
		return dump(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// demo walks the paper's headline flow interactively on stdout.
func demo() error {
	fmt.Println("== DynaCut demo: dynamic WebDAV-write removal on a Lighttpd-like guest ==")
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		return err
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		return err
	}
	fmt.Printf("booted %s: %d init-phase blocks traced\n", app.Config.Name, len(sess.InitLog.Blocks))

	blocks, err := sess.ProfileFeatures(experiments.WantedWeb, experiments.UndesiredWeb)
	if err != nil {
		return err
	}
	fmt.Printf("trace diff: %d basic blocks unique to PUT/DELETE\n", len(blocks))

	errAddr, err := sess.SymbolAddr("resp_403")
	if err != nil {
		return err
	}
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{RedirectTo: errAddr})
	if err != nil {
		return err
	}
	stats, err := cust.DisableBlocks("webdav-write", blocks, dynacut.PolicyBlockEntry)
	if err != nil {
		return err
	}
	fmt.Printf("rewrote process in %v (checkpoint %v, int3 %v, handler %v, restore %v)\n",
		stats.Total(), stats.Checkpoint, stats.CodeUpdate, stats.InsertHandler, stats.Restore)

	show := func(req string) error {
		resp, err := sess.Request(req)
		if err != nil {
			return err
		}
		fmt.Printf("  %-18q -> %q\n", strings.TrimSuffix(req, "\n"), strings.TrimSuffix(resp, "\n"))
		return nil
	}
	fmt.Println("with PUT/DELETE disabled:")
	for _, r := range []string{"GET /\n", "PUT /f data\n", "DELETE /f\n"} {
		if err := show(r); err != nil {
			return err
		}
	}
	if _, err := cust.EnableBlocks("webdav-write"); err != nil {
		return err
	}
	fmt.Println("after re-enabling:")
	for _, r := range []string{"PUT /f data\n", "GET /f\n"} {
		if err := show(r); err != nil {
			return err
		}
	}
	fmt.Println("server never restarted; live connection state preserved throughout.")
	return nil
}

func report(which string) error {
	type job struct {
		name string
		fn   func() (string, error)
	}
	jobs := []job{
		{"figure2", func() (string, error) {
			rows, err := experiments.Figure2()
			if err != nil {
				return "", err
			}
			s := experiments.FormatF2(rows)
			for _, r := range rows {
				s += fmt.Sprintf("\n%s liveness map ('#' hot, 'i' init-only, '.' unused):\n%s\n", r.Program, r.Map)
			}
			return s, nil
		}},
		{"figure6", func() (string, error) {
			rows, err := experiments.Figure6()
			if err != nil {
				return "", err
			}
			return experiments.FormatF6(rows), nil
		}},
		{"figure7", func() (string, error) {
			rows, err := experiments.Figure7(true)
			if err != nil {
				return "", err
			}
			return experiments.FormatF7(rows), nil
		}},
		{"figure8", func() (string, error) {
			res, err := experiments.Figure8()
			if err != nil {
				return "", err
			}
			return experiments.FormatF8(res), nil
		}},
		{"figure9", func() (string, error) {
			rows, err := experiments.Figure9(true)
			if err != nil {
				return "", err
			}
			return experiments.FormatF9(rows), nil
		}},
		{"figure10", func() (string, error) {
			res, err := experiments.Figure10()
			if err != nil {
				return "", err
			}
			return experiments.FormatF10(res), nil
		}},
		{"table1", func() (string, error) {
			rows, err := experiments.Table1()
			if err != nil {
				return "", err
			}
			return experiments.FormatT1(rows), nil
		}},
		{"plt", func() (string, error) {
			rows, err := experiments.SecurityPLT()
			if err != nil {
				return "", err
			}
			return experiments.FormatPLT(rows), nil
		}},
		{"brop", func() (string, error) {
			res, err := experiments.SecurityBROP()
			if err != nil {
				return "", err
			}
			return experiments.FormatBROP(res), nil
		}},
		{"seccomp", func() (string, error) {
			res, err := experiments.SecuritySeccomp()
			if err != nil {
				return "", err
			}
			return experiments.FormatSeccomp(res), nil
		}},
		{"ablation", func() (string, error) {
			rows, err := experiments.AblationTraceQuality()
			if err != nil {
				return "", err
			}
			return experiments.FormatAblation(rows), nil
		}},
	}
	ran := false
	for _, j := range jobs {
		if which != "all" && which != j.name {
			continue
		}
		ran = true
		out, err := j.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		fmt.Printf("=== %s ===\n%s\n", j.name, out)
	}
	if !ran {
		return fmt.Errorf("unknown report %q", which)
	}
	return nil
}

func dump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ContinueOnError)
	appName := fs.String("app", "lighttpd", "guest to dump: lighttpd, nginx, kvstore")
	out := fs.String("o", "images.img", "output image file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		sess *dynacut.Session
		err  error
	)
	switch *appName {
	case "lighttpd", "nginx":
		workers := 0
		if *appName == "nginx" {
			workers = 1
		}
		var app *dynacut.WebServerApp
		app, err = dynacut.BuildWebServer(dynacut.WebServerConfig{Name: *appName, Port: 8080, Workers: workers})
		if err == nil {
			sess, err = dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, 8080)
		}
	case "kvstore":
		var app *dynacut.KVStoreApp
		app, err = dynacut.BuildKVStore(dynacut.KVStoreConfig{})
		if err == nil {
			sess, err = dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
		}
	default:
		return fmt.Errorf("unknown app %q", *appName)
	}
	if err != nil {
		return err
	}
	set, err := dynacut.Dump(sess.Machine, sess.PID(), dynacut.DumpOpts{ExecPages: true, Tree: true})
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, set.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("dumped %s (%d process(es)) to %s\n", *appName, len(set.PIDs), *out)
	return nil
}
