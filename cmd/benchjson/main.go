// Command benchjson converts `go test -bench` output into a JSON
// record so benchmark numbers can be tracked in-repo across PRs
// (BENCH_pr2.json and successors). It tees its stdin to stdout — the
// human-readable benchmark log stays visible — and writes the parsed
// results to the file named by -o.
//
// With -trace it also reads a JSONL trace (as written by
// Observer.WriteJSONL / cmd/tracedemo) and embeds its per-phase
// summary in the report, tying the benchmark numbers to the observed
// rewrite timeline.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/dynacut/dynacut/internal/obs"
)

// Result is one benchmark line: name, iteration count, and every
// value/unit pair Go's benchmark runner printed (ns/op, B/op,
// allocs/op, and any b.ReportMetric custom units).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole run, plus the go test environment header lines.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
	// Trace is the per-phase summary of the JSONL trace named by
	// -trace, when given.
	Trace *obs.TraceSummary `json:"trace,omitempty"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

func main() {
	out := flag.String("o", "", "output JSON file (required)")
	tracePath := flag.String("trace", "", "JSONL trace file to summarize into the report")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o output file is required")
		os.Exit(2)
	}

	rep := Report{Results: []Result{}}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		events, err := obs.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: reading trace: %v\n", err)
			os.Exit(1)
		}
		rep.Trace = obs.Summarize(events)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the log readable
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}
