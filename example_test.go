package dynacut_test

import (
	"fmt"
	"strings"

	"github.com/dynacut/dynacut"
)

// Example demonstrates the full DynaCut workflow on the web-server
// guest: profile, disable a feature, observe the redirect, re-enable.
func Example() {
	app, err := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	blocks, err := sess.ProfileFeatures(
		[]string{"GET /\n", "HEAD /\n", "POST /\n"},
		[]string{"PUT /f x\n", "DELETE /f\n"},
	)
	if err != nil {
		fmt.Println("profile:", err)
		return
	}
	errAddr, _ := sess.SymbolAddr("resp_403")
	cust, err := dynacut.NewCustomizer(sess.Machine, sess.PID(),
		dynacut.CustomizerOptions{RedirectTo: errAddr})
	if err != nil {
		fmt.Println("customizer:", err)
		return
	}
	if _, err := cust.DisableBlocks("webdav", blocks, dynacut.PolicyBlockEntry); err != nil {
		fmt.Println("disable:", err)
		return
	}
	fmt.Println("PUT  ->", strings.TrimSpace(sess.MustRequest("PUT /f data\n")))
	fmt.Println("GET  ->", strings.TrimSpace(sess.MustRequest("GET /\n")))
	if _, err := cust.EnableBlocks("webdav"); err != nil {
		fmt.Println("enable:", err)
		return
	}
	fmt.Println("PUT  ->", strings.TrimSpace(sess.MustRequest("PUT /f data\n")))
	// Output:
	// PUT  -> 403 Forbidden
	// GET  -> 200 OK
	// PUT  -> 201 Created
}

// ExampleAssemble shows running a hand-written guest program.
func ExampleAssemble() {
	exe, err := dynacut.Assemble("hello", `
.text
.global _start
_start:
	lea r2, msg
	mov r0, 2       ; write
	mov r1, 1       ; stdout
	mov r3, 14
	syscall
	mov r0, 1       ; exit
	mov r1, 0
	syscall
.rodata
msg: .ascii "hello, guest!\n"
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	m := dynacut.NewMachine()
	p, err := m.Load(exe)
	if err != nil {
		fmt.Println(err)
		return
	}
	m.Run(1000)
	fmt.Print(string(p.Stdout()))
	// Output:
	// hello, guest!
}

// ExampleCustomizer_RestrictSyscalls shows temporal syscall
// specialization: post-initialization, a server only needs its
// request-serving syscalls.
func ExampleCustomizer_RestrictSyscalls() {
	app, _ := dynacut.BuildWebServer(dynacut.WebServerConfig{Name: "lighttpd", Port: 8080})
	sess, err := dynacut.StartServer(app.Exe, []*dynacut.Binary{app.Libc}, app.Config.Port)
	if err != nil {
		fmt.Println(err)
		return
	}
	cust, _ := dynacut.NewCustomizer(sess.Machine, sess.PID(), dynacut.CustomizerOptions{})
	if _, err := cust.RestrictSyscalls(dynacut.ServingSyscalls()); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("GET ->", strings.TrimSpace(sess.MustRequest("GET /\n")))
	// Output:
	// GET -> 200 OK
}
