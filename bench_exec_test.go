// Execution-engine benchmark: interpreter vs the basic-block
// translation cache on the Figure 6/7 workloads (a lighttpd-shaped
// web server serving requests and a SPEC-shaped CPU-bound guest), at
// 1/4/16 replicas. Each sub-benchmark runs the identical workload
// through both engines and reports guest throughput — virtual-clock
// ticks retired per wall second — for each, plus the speedup ratio.
// `make bench` records the numbers in BENCH_pr10.json; the headline
// acceptance bar is speedup ≥ 5× on the CPU-bound guests.
//
// Virtual time is engine-invariant by construction (the translator
// charges the clock instruction-for-instruction like the
// interpreter), so the two engines retire the *same* vtick count and
// the ratio below is a pure wall-clock measurement of decode reuse.
package dynacut_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/dynacut/dynacut/internal/apps/specgen"
	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/kernel"
)

// reportEngines runs the workload under both engines and reports
// throughput and speedup. workload returns retired vticks and the
// wall time they took, excluding any build/load setup.
func reportEngines(b *testing.B, workload func(b *testing.B, mode kernel.ExecMode) (uint64, time.Duration)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		iTicks, iWall := workload(b, kernel.ModeInterpret)
		tTicks, tWall := workload(b, kernel.ModeTranslate)
		if iTicks != tTicks {
			b.Fatalf("engines disagree on virtual time: interpret %d vticks, translate %d", iTicks, tTicks)
		}
		if i == 0 {
			iRate := float64(iTicks) / iWall.Seconds() / 1e6
			tRate := float64(tTicks) / tWall.Seconds() / 1e6
			b.ReportMetric(float64(iTicks), "guest-vticks")
			b.ReportMetric(iRate, "interp-Minst/s")
			b.ReportMetric(tRate, "translate-Minst/s")
			b.ReportMetric(tRate/iRate, "speedup")
		}
	}
}

// BenchmarkExecEngineSpec: the Figure 7 CPU-bound guests run to
// completion on N independent machines. Pure straight-line and loop
// execution — the translation cache's best case and the acceptance
// headline.
func BenchmarkExecEngineSpec(b *testing.B) {
	for _, name := range []string{"605.mcf_s", "631.deepsjeng_s"} {
		prof, ok := specgen.ProfileByName(name)
		if !ok {
			b.Fatalf("no profile %s", name)
		}
		app, err := specgen.Build(prof)
		if err != nil {
			b.Fatal(err)
		}
		for _, replicas := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/replicas=%d", name, replicas), func(b *testing.B) {
				reportEngines(b, func(b *testing.B, mode kernel.ExecMode) (uint64, time.Duration) {
					machines := make([]*kernel.Machine, replicas)
					procs := make([]*kernel.Process, replicas)
					for i := range machines {
						m := kernel.NewMachine()
						m.SetExecMode(mode)
						p, err := m.Load(app.Exe, app.Libc)
						if err != nil {
							b.Fatal(err)
						}
						machines[i], procs[i] = m, p
					}
					start := time.Now()
					var ticks uint64
					for i, m := range machines {
						for !procs[i].Exited() {
							if m.Run(1_000_000) == 0 {
								b.Fatalf("%s wedged under %v", name, mode)
							}
						}
						ticks += m.Clock()
					}
					return ticks, time.Since(start)
				})
			})
		}
	}
}

// BenchmarkExecEngineWebserv: the Figure 6 workload — boot lighttpd
// and serve a batch of requests on N independent machines. Syscall-
// and trap-heavy, so blocks are short and the engines converge; this
// row bounds the realistic fleet-wide gain.
func BenchmarkExecEngineWebserv(b *testing.B) {
	app, err := webserv.Build(webserv.Config{Name: "lighttpd", Port: 8080})
	if err != nil {
		b.Fatal(err)
	}
	reqs := []string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "PUT /f data\n", "DELETE /f\n"}
	for _, replicas := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("lighttpd/replicas=%d", replicas), func(b *testing.B) {
			reportEngines(b, func(b *testing.B, mode kernel.ExecMode) (uint64, time.Duration) {
				start := time.Now()
				var ticks uint64
				for i := 0; i < replicas; i++ {
					m := kernel.NewMachine()
					m.SetExecMode(mode)
					if _, err := m.Load(app.Exe, app.Libc); err != nil {
						b.Fatal(err)
					}
					booted := false
					m.SetNudgeFunc(func(pid int, arg uint64) { booted = true })
					if !m.RunUntil(func() bool { return booted }, 50_000_000) {
						b.Fatal("boot: nudge never fired")
					}
					m.Run(10_000)
					for round := 0; round < 8; round++ {
						for _, r := range reqs {
							conn, err := m.Dial(app.Config.Port)
							if err != nil {
								b.Fatal(err)
							}
							if _, err := conn.Write([]byte(r)); err != nil {
								b.Fatal(err)
							}
							m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
							m.Run(10_000)
							if got := string(conn.ReadAll()); got == "" || !strings.Contains(got, " ") {
								b.Fatalf("bad response under %v: %q", mode, got)
							}
						}
					}
					ticks += m.Clock()
				}
				return ticks, time.Since(start)
			})
		})
	}
}
