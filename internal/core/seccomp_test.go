package core

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/kernel"
)

// TestTemporalSyscallSpecialization installs the post-init allow list
// on a serving web server: requests keep working, the filter survives
// dump/restore, and a later removal of the filter restores full
// capability (the dynamic enable/disable direction of §5).
func TestTemporalSyscallSpecialization(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8097})
	c, err := New(tb.m, tb.proc.PID(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestrictSyscalls(ServingSyscalls); err != nil {
		t.Fatalf("restrict: %v", err)
	}
	// The serving path only uses allowed syscalls.
	for i := 0; i < 3; i++ {
		if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
			t.Fatalf("GET under filter -> %q", got)
		}
	}
	p, err := tb.m.Process(c.PID())
	if err != nil {
		t.Fatal(err)
	}
	filter := p.SyscallFilter()
	if len(filter) != len(ServingSyscalls) {
		t.Fatalf("live filter = %v", filter)
	}
	// Remove the filter again.
	if _, err := c.RestrictSyscalls(nil); err != nil {
		t.Fatal(err)
	}
	p, err = tb.m.Process(c.PID())
	if err != nil {
		t.Fatal(err)
	}
	if p.SyscallFilter() != nil {
		t.Fatal("filter survived removal")
	}
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET after unfilter -> %q", got)
	}
}

// TestSyscallFilterKillsDeniedCall: a guest that calls fork under a
// filter without fork dies with SIGSYS — even though the fork code
// itself was never removed.
func TestSyscallFilterKillsDeniedCall(t *testing.T) {
	m := kernel.NewMachine()
	exe := buildTestExe(t, "forker", `
.text
.global _start
_start:
	mov r8, =go
spin:
	load r1, [r8]
	cmp r1, 0
	je spin
	mov r0, 9            ; fork: denied under the filter
	syscall
	mov r0, 1
	mov r1, 0
	syscall
.data
go: .quad 0
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(500)
	c, err := New(m, p.PID(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestrictSyscalls(ServingSyscalls); err != nil {
		t.Fatal(err)
	}
	rp, err := m.Process(c.PID())
	if err != nil {
		t.Fatal(err)
	}
	goSym, err := exe.Symbol("go")
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Mem().WriteU64(goSym.Value, 1); err != nil {
		t.Fatal(err)
	}
	m.Run(100000)
	if rp.KilledBy() != kernel.SIGSYS {
		t.Fatalf("killed by %v, want SIGSYS", rp.KilledBy())
	}
}

// TestSyscallFilterInheritedByFork.
func TestSyscallFilterInheritedByFork(t *testing.T) {
	m := kernel.NewMachine()
	exe := buildTestExe(t, "inherit", `
.text
.global _start
_start:
	mov r0, 9            ; fork while still unfiltered
	syscall
	cmp r0, 0
	je child
parent:
	mov r0, 14
	syscall
	jmp parent
child:
	mov r8, =go
cspin:
	load r1, [r8]
	cmp r1, 0
	je cspin
	mov r0, 4            ; socket: denied post-restriction
	syscall
	mov r0, 1
	mov r1, 0
	syscall
.data
go: .quad 0
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2000)
	c, err := New(m, p.PID(), Options{Tree: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestrictSyscalls(ServingSyscalls); err != nil {
		t.Fatal(err)
	}
	// Find the restored child and poke it.
	var child *kernel.Process
	for _, pr := range m.Processes() {
		if pr.Parent() != 0 {
			child = pr
		}
	}
	if child == nil {
		t.Fatal("no child after restore")
	}
	goSym, err := exe.Symbol("go")
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Mem().WriteU64(goSym.Value, 1); err != nil {
		t.Fatal(err)
	}
	m.Run(100000)
	if child.KilledBy() != kernel.SIGSYS {
		t.Fatalf("child killed by %v, want SIGSYS", child.KilledBy())
	}
}

// buildTestExe assembles a standalone test program (no libc).
func buildTestExe(t *testing.T, name, src string) *delf.File {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	exe, err := link.Executable(name, []*asm.Object{obj})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return exe
}
