package core

import (
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/trace"
)

// TestAutoNudgeDetectsInitEnd boots the web server WITHOUT relying on
// its explicit nudge: the first accept syscall marks the end of
// initialization, and the init coverage snapshot taken there must
// match what the explicit nudge produces (the same init-only set).
func TestAutoNudgeDetectsInitEnd(t *testing.T) {
	app, err := webserv.Build(webserv.Config{Name: "lighttpd", Port: 8095, InitRoutines: 12})
	if err != nil {
		t.Fatal(err)
	}
	m := kernel.NewMachine()
	col := trace.NewCollector(app.Config.Name)
	m.SetTracer(col)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatal(err)
	}

	// Explicit nudge still fires (the guest calls it); record both
	// boundaries and compare.
	var explicitInit, autoInit *coverage.Graph
	m.SetNudgeFunc(func(pid int, arg uint64) {
		if explicitInit == nil {
			explicitInit = coverage.FromLog(col.Snapshot(p.Modules(), "init-explicit"))
		}
	})
	an := NewAutoNudge(m, DefaultInitEndSyscall, func(pid int) {
		autoInit = coverage.FromLog(col.Snapshot(p.Modules(), "init-auto"))
	})

	ok := m.RunUntil(func() bool { return an.Fired() && explicitInit != nil }, 10_000_000)
	if !ok {
		t.Fatalf("boot detection failed: auto=%v explicit=%v", an.Fired(), explicitInit != nil)
	}
	if autoInit == nil {
		t.Fatal("auto snapshot missing")
	}

	// The automatic boundary fires slightly *after* the explicit one
	// (nudge precedes the accept loop), so auto ⊇ explicit, and the
	// difference is tiny (the nudge wrapper and accept-entry blocks).
	missing := coverage.Diff(explicitInit, autoInit)
	if missing.Count() != 0 {
		t.Errorf("auto boundary lost %d blocks the explicit one had", missing.Count())
	}
	extra := coverage.Diff(autoInit, explicitInit)
	if extra.Count() > 8 {
		t.Errorf("auto boundary includes %d extra blocks; boundary too late", extra.Count())
	}
}

// TestAutoNudgeFiresOnce: the hook must uninstall itself after the
// first trigger.
func TestAutoNudgeFiresOnce(t *testing.T) {
	app, err := webserv.Build(webserv.Config{Name: "lighttpd", Port: 8096})
	if err != nil {
		t.Fatal(err)
	}
	m := kernel.NewMachine()
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	an := NewAutoNudge(m, DefaultInitEndSyscall, func(pid int) { fired++ })
	m.RunUntil(func() bool { return an.Fired() }, 10_000_000)
	// Drive a few requests: each accept must NOT re-fire.
	for i := 0; i < 3; i++ {
		conn, err := m.Dial(8096)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte("GET /\n")); err != nil {
			t.Fatal(err)
		}
		m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 }, 2_000_000)
	}
	if fired != 1 {
		t.Fatalf("fired %d times", fired)
	}
	if p.Exited() {
		t.Fatal("server died")
	}
}
