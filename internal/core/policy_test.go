package core

import (
	"testing"
	"time"

	"github.com/dynacut/dynacut/internal/coverage"
)

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyBlockEntry: "block-entry",
		PolicyWipeBlocks: "wipe-blocks",
		PolicyUnmapPages: "unmap-pages",
		Policy(42):       "Policy(42)",
	} {
		if p.String() != want {
			t.Errorf("%d -> %q, want %q", p, p.String(), want)
		}
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{
		Checkpoint:    time.Millisecond,
		CodeUpdate:    2 * time.Millisecond,
		InsertHandler: 3 * time.Millisecond,
		Restore:       4 * time.Millisecond,
	}
	if s.Total() != 10*time.Millisecond {
		t.Errorf("Total = %v", s.Total())
	}
}

func TestFilterProtected(t *testing.T) {
	c := &Customizer{opts: Options{RedirectTo: 0x400100}}
	blocks := []coverage.AbsBlock{
		{Addr: 0x400000, Size: 0x10}, // far away: kept
		{Addr: 0x4000f8, Size: 0x10}, // covers the redirect target: dropped
		{Addr: 0x400100, Size: 0x08}, // starts at the target: dropped
		{Addr: 0x400108, Size: 0x10}, // adjacent, past it: kept
	}
	got := c.filterProtected(blocks)
	if len(got) != 2 {
		t.Fatalf("filtered = %+v", got)
	}
	if got[0].Addr != 0x400000 || got[1].Addr != 0x400108 {
		t.Errorf("kept = %+v", got)
	}
	// No redirect configured: pass-through.
	c2 := &Customizer{}
	if len(c2.filterProtected(blocks)) != len(blocks) {
		t.Error("filter applied without a redirect target")
	}
}

func TestSplitPageCoverage(t *testing.T) {
	// Blocks covering exactly one full page plus a partial tail.
	blocks := []coverage.AbsBlock{
		{Addr: 0x1000, Size: 0x1000}, // full page 1
		{Addr: 0x2000, Size: 0x80},   // partial page 2
	}
	full, partial := splitPageCoverage(blocks)
	if len(full) != 1 || full[0].start != 0x1000 || full[0].end != 0x2000 {
		t.Fatalf("full = %+v", full)
	}
	if len(partial) != 1 || partial[0].Addr != 0x2000 || partial[0].Size != 0x80 {
		t.Fatalf("partial = %+v", partial)
	}

	// Many small blocks that together fill a page coalesce into one
	// unmappable range.
	var small []coverage.AbsBlock
	for off := uint64(0); off < 0x1000; off += 0x100 {
		small = append(small, coverage.AbsBlock{Addr: 0x5000 + off, Size: 0x100})
	}
	full, partial = splitPageCoverage(small)
	if len(full) != 1 || full[0].start != 0x5000 || full[0].end != 0x6000 {
		t.Fatalf("coalesced full = %+v", full)
	}
	if len(partial) != 0 {
		t.Fatalf("coalesced partial = %+v", partial)
	}

	// Adjacent full pages merge into one range.
	two := []coverage.AbsBlock{{Addr: 0x8000, Size: 0x2000}}
	full, _ = splitPageCoverage(two)
	if len(full) != 1 || full[0].end-full[0].start != 0x2000 {
		t.Fatalf("merged range = %+v", full)
	}

	// A block spanning a page boundary without covering either page
	// fully is all partial.
	span := []coverage.AbsBlock{{Addr: 0x1f80, Size: 0x100}}
	full, partial = splitPageCoverage(span)
	if len(full) != 0 {
		t.Fatalf("span full = %+v", full)
	}
	var total uint64
	for _, b := range partial {
		total += b.Size
	}
	if total != 0x100 {
		t.Fatalf("span partial bytes = %#x", total)
	}
}
