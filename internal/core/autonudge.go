package core

import (
	"github.com/dynacut/dynacut/internal/kernel"
)

// AutoNudge implements the paper's §5 proposal for a fully automatic
// DynaCut: instead of requiring the operator to nudge the tracer when
// the server has finished booting, the end of the initialization
// phase is inferred by monitoring system calls. For server programs
// the first blocking accept is a reliable transition point — it is
// the moment the program starts consuming external requests (the
// same structural boundary Ghavamnia et al. identify manually via
// ngx_worker_process_cycle / server_main_loop).
//
// Arm it before running the guest; when the trigger syscall is first
// observed, onInit runs once (typically snapshotting the coverage
// collector) and the hook uninstalls itself.
type AutoNudge struct {
	machine *kernel.Machine
	trigger uint64
	fired   bool
	onInit  func(pid int)
}

// NewAutoNudge arms automatic init-end detection on m. trigger is
// the syscall number ending initialization (DefaultInitEndSyscall for
// servers); onInit is invoked exactly once, with the PID that issued
// the call.
func NewAutoNudge(m *kernel.Machine, trigger uint64, onInit func(pid int)) *AutoNudge {
	a := &AutoNudge{machine: m, trigger: trigger, onInit: onInit}
	m.SetSyscallHook(a.hook)
	return a
}

// DefaultInitEndSyscall is the accept(2) analogue: the canonical
// init/serving boundary for server programs.
const DefaultInitEndSyscall = kernel.SysAccept

// Fired reports whether the transition point was observed.
func (a *AutoNudge) Fired() bool { return a.fired }

func (a *AutoNudge) hook(pid int, nr uint64) {
	if a.fired || nr != a.trigger {
		return
	}
	a.fired = true
	a.machine.SetSyscallHook(nil)
	if a.onInit != nil {
		a.onInit(pid)
	}
}
