// Live-patch fast path: INT3-only removal policies applied directly
// to the running guest's text, with zero downtime.
//
// The checkpoint transaction (rewrite.go's kill → restore cycle) pays
// the restore cost as the service-interruption window every time, even
// for a one-byte INT3 patch. But for PolicyBlockEntry and
// PolicyWipeBlocks the edit is exactly "write INT3 over bytes the
// guest must not be executing" — and since this kernel's scheduler is
// ours, we can establish that safety directly instead of freezing the
// world: between scheduler rounds no process is mid-instruction, the
// process table is stable, and host-side Memory.Write both breaks CoW
// sharing and marks the page dirty (so the next incremental checkpoint
// carries the patch — the dirty-bitmap invariant the regression tests
// pin).
//
// Protocol:
//
//  1. Eligibility — the policy must be INT3-only, verifier mode off
//     (its vtable edits need the image editor), and every target
//     process must already carry the injected SIGTRAP handler library
//     (a live INT3 with no handler would kill the guest; library
//     injection itself requires the transaction).
//  2. Quiesce — run single scheduler rounds until no target RIP and no
//     saved return address on any target stack lies inside an affected
//     block. The stack scan is conservative: every 8-byte-aligned word
//     from SP to the top of the stack VMA counts as a potential return
//     address, which covers both CALL frames and signal-frame saved
//     RIPs (sigreturn pops the frame from the stack, so a pending
//     frame's resume address is always above SP). False positives only
//     cost a fallback.
//  3. Patch — save original bytes, write INT3 through Memory.Write.
//     Any failure (including injected core.livepatch.* faults) unwinds
//     every byte already written before falling back, so the fallback
//     transaction never checkpoints half-patched text.
//  4. Commit — one last Options.BeforeCommit gate (a halted fleet
//     rollout aborts here, exactly like the transaction's pre-commit
//     exit), then the saved bytes enter the customizer bookkeeping.
//     The incremental parent chain stays valid: the patched pages are
//     dirty, so the next delta dump includes them.
//
// Anything the fast path cannot prove safe falls back to
// DisableBlocks' full checkpoint transaction; Stats.FellBack and
// Stats.FallbackReason record why.
package core

import (
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/isa"
	"github.com/dynacut/dynacut/internal/kernel"
)

// DefaultQuiesceRounds bounds the quiescence loop when
// Options.LiveQuiesceRounds is zero. A round gives every live process
// one 64-instruction slice, so even a deep call chain inside an
// affected block drains within a few rounds — a guest still unsafe
// after eight is parked there and will never move.
const DefaultQuiesceRounds = 8

// blockSpan is one affected [lo, hi) text range.
type blockSpan struct{ lo, hi uint64 }

// DisableBlocksLive disables the named block group like DisableBlocks,
// but tries the live-patch fast path first: quiesce at a scheduler
// round, verify no RIP or saved return address sits inside an affected
// block, and write the INT3 bytes directly into the running VMAs —
// zero downtime, no kill, no restore. When the fast path is not
// applicable (PolicyUnmapPages, verifier mode, missing handler
// library) or cannot complete (quiescence timeout, injected fault), it
// falls back to the checkpoint transaction; the returned Stats carry
// LivePatched / FellBack / FallbackReason so callers and rollout
// journals can tell the paths apart.
func (c *Customizer) DisableBlocksLive(name string, blocks []coverage.AbsBlock, policy Policy) (Stats, error) {
	filtered := c.filterProtected(blocks)
	if len(filtered) == 0 {
		return Stats{}, fmt.Errorf("core: no blocks to disable for %q", name)
	}
	stats, reason, err := c.livePatch(name, filtered, policy)
	if reason == "" {
		// The fast path ran to a verdict (committed or hard error like
		// ErrDead/ErrAborted); report it like Rewrite would.
		if c.opts.OnOutcome != nil {
			c.opts.OnOutcome(stats, err)
		}
		return stats, err
	}
	c.point("livepatch.fallback", int64(stats.QuiesceRounds))
	if o := c.opts.Observer; o != nil {
		o.Add("core.livepatch.fallbacks", 1)
	}
	fstats, ferr := c.DisableBlocks(name, blocks, policy)
	fstats.FellBack = true
	fstats.FallbackReason = reason
	fstats.QuiesceRounds = stats.QuiesceRounds
	return fstats, ferr
}

// livePatch attempts the fast path. A non-empty reason means "fall
// back to the transaction" with the guest untouched (any partial
// writes already unwound); err is only non-nil for hard verdicts that
// the transaction could not improve on (dead guest, BeforeCommit
// abort).
func (c *Customizer) livePatch(name string, blocks []coverage.AbsBlock, policy Policy) (stats Stats, reason string, err error) {
	if policy != PolicyBlockEntry && policy != PolicyWipeBlocks {
		return stats, fmt.Sprintf("policy %v requires the checkpoint transaction", policy), nil
	}
	if c.opts.Verifier {
		return stats, "verifier mode requires image-side vtable edits", nil
	}
	root, err := c.machine.Process(c.pid)
	if err != nil || root.Exited() {
		return stats, "", ErrDead
	}

	targets := c.liveTargets()
	for _, p := range targets {
		mod, ok := handlerModule(p)
		if !ok {
			return stats, fmt.Sprintf("handler library not mapped in pid %d", p.PID()), nil
		}
		if c.handler == nil {
			// A customizer rebound onto an already-customized guest has
			// no handler state; re-derive it from the live module so
			// TrapHits and verifier maintenance keep working.
			c.handler = handlerFromModule(c.handlerLib, criu.ModuleEntry{Name: mod.Name, Lo: mod.Lo, Hi: mod.Hi})
		}
	}

	spans := affectedSpans(blocks)

	// Quiesce: step whole scheduler rounds until no target RIP or
	// saved return address lies inside an affected block.
	endQ := c.span("livepatch.quiesce", 0)
	if ferr := c.machine.Fault(faultinject.SiteLivePatchQuiesce, c.pid); ferr != nil {
		endQ(ferr)
		return stats, fmt.Sprintf("quiesce fault: %v", ferr), nil
	}
	maxRounds := c.opts.LiveQuiesceRounds
	if maxRounds <= 0 {
		maxRounds = DefaultQuiesceRounds
	}
	for {
		conflict := liveConflict(targets, spans)
		if conflict == "" {
			break
		}
		if stats.QuiesceRounds >= maxRounds {
			endQ(nil)
			return stats, fmt.Sprintf("quiescence not reached in %d rounds: %s", maxRounds, conflict), nil
		}
		n := c.machine.RunRound()
		stats.QuiesceRounds++
		if n == 0 {
			// Every live process is blocked; more rounds cannot move
			// the conflicting RIP or pop the conflicting frame.
			endQ(nil)
			return stats, fmt.Sprintf("guest parked inside affected block: %s", conflict), nil
		}
		// Fork during a round can add targets; recompute so a child
		// parked inside a block is seen before we patch.
		targets = c.liveTargets()
		if len(targets) == 0 {
			endQ(nil)
			return stats, "", ErrDead
		}
	}
	endQ(nil)

	// Patch: write INT3 through Memory.Write (breaks CoW, marks the
	// page dirty — the next incremental checkpoint carries the patch).
	// Every write is recorded so any failure unwinds to pristine text.
	type writeRec struct {
		mem  *kernel.Memory
		addr uint64
		orig []byte
	}
	var undo []writeRec
	unwind := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			// Restoring bytes just written cannot fail: the pages are
			// resident and private after the patch write.
			_ = undo[i].mem.Write(undo[i].addr, undo[i].orig)
		}
	}
	endP := c.span("livepatch.patch", 0)
	savedNew := map[uint64][]byte{}
	patched := 0
	for _, p := range targets {
		mem := p.Mem()
		for _, b := range blocks {
			n := 1
			if policy == PolicyWipeBlocks {
				n = int(b.Size)
			}
			if ferr := c.machine.Fault(faultinject.SiteLivePatchPatch, p.PID()); ferr != nil {
				unwind()
				endP(ferr)
				return stats, fmt.Sprintf("patch fault at %#x: %v", b.Addr, ferr), nil
			}
			orig, rerr := mem.Read(b.Addr, n)
			if rerr != nil {
				unwind()
				endP(rerr)
				return stats, fmt.Sprintf("reading %#x: %v", b.Addr, rerr), nil
			}
			fill := make([]byte, n)
			for i := range fill {
				fill[i] = 0xCC
			}
			if werr := mem.Write(b.Addr, fill); werr != nil {
				unwind()
				endP(werr)
				return stats, fmt.Sprintf("patching %#x: %v", b.Addr, werr), nil
			}
			undo = append(undo, writeRec{mem: mem, addr: b.Addr, orig: orig})
			if _, ok := c.saved[b.Addr]; !ok {
				if _, ok := savedNew[b.Addr]; !ok {
					savedNew[b.Addr] = orig
				}
			}
			patched++
		}
	}
	endP(nil)

	// Commit. The BeforeCommit gate mirrors the transaction's
	// pre-commit exit: a halted fleet rollout aborts here with the
	// guest's pristine text restored — ErrAborted, not a fallback (the
	// transaction would abort at the same gate).
	if c.opts.BeforeCommit != nil {
		if aerr := c.opts.BeforeCommit(1); aerr != nil {
			unwind()
			c.point("rewrite.abort", 1)
			return stats, "", fmt.Errorf("%w: %v", ErrAborted, aerr)
		}
	}
	if ferr := c.machine.Fault(faultinject.SiteLivePatchCommit, len(blocks)); ferr != nil {
		unwind()
		return stats, fmt.Sprintf("commit fault: %v", ferr), nil
	}
	for addr, orig := range savedNew {
		c.saved[addr] = orig
	}
	c.disabled[name] = append([]coverage.AbsBlock(nil), blocks...)
	stats.BlocksPatched = patched
	stats.Attempts = 1
	stats.LivePatched = true
	// Downtime stays zero by construction: the guest was never killed
	// and the writes land between scheduler rounds, instantaneous on
	// the virtual clock. The quiesce rounds were real guest execution
	// (service, not interruption) and already advanced the clock.
	c.point("livepatch.commit", int64(patched))
	if o := c.opts.Observer; o != nil {
		o.Add("core.livepatches", 1)
	}
	// Incremental oracle commit: only the pages the patch touched are
	// resealed (their pre-patch digests join the version chain).
	_ = c.updateOraclePages(spanPages(spans))
	return stats, "", nil
}

// spanPages returns the sorted, deduplicated page numbers covered by
// the spans.
func spanPages(spans []blockSpan) []uint64 {
	seen := map[uint64]struct{}{}
	var pns []uint64
	for _, s := range spans {
		for pn := s.lo / kernel.PageSize; pn <= (s.hi-1)/kernel.PageSize; pn++ {
			if _, ok := seen[pn]; !ok {
				seen[pn] = struct{}{}
				pns = append(pns, pn)
			}
		}
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	return pns
}

// liveTargets returns the live processes the patch applies to: the
// root alone, or (Options.Tree) the root and every live descendant —
// the same set the transaction dumps. Fork-created children must be
// included: text pages are copy-on-write per process, so patching only
// the parent would leave a child running the unpatched feature.
func (c *Customizer) liveTargets() []*kernel.Process {
	procs := c.machine.Processes()
	if !c.opts.Tree {
		for _, p := range procs {
			if p.PID() == c.pid {
				return []*kernel.Process{p}
			}
		}
		return nil
	}
	inTree := map[int]bool{c.pid: true}
	// Processes() is PID-sorted and children have higher PIDs than
	// their parent, so one pass closes the descendant set.
	var out []*kernel.Process
	for _, p := range procs {
		if inTree[p.PID()] || inTree[p.Parent()] {
			inTree[p.PID()] = true
			out = append(out, p)
		}
	}
	return out
}

// handlerModule finds the injected handler library mapping in p.
func handlerModule(p *kernel.Process) (kernel.Module, bool) {
	for _, mod := range p.Modules() {
		if mod.Name == HandlerLibName {
			return mod, true
		}
	}
	return kernel.Module{}, false
}

// affectedSpans converts blocks to their full [Addr, Addr+Size) spans.
// Both policies use whole-block spans for the safety check even though
// PolicyBlockEntry writes a single byte: a RIP or return address
// anywhere inside the block means the guest intends to execute bytes
// whose reachability the patch changes, and a conservative answer only
// costs a fallback.
func affectedSpans(blocks []coverage.AbsBlock) []blockSpan {
	spans := make([]blockSpan, len(blocks))
	for i, b := range blocks {
		spans[i] = blockSpan{lo: b.Addr, hi: b.Addr + b.Size}
	}
	return spans
}

func inSpans(addr uint64, spans []blockSpan) bool {
	for _, s := range spans {
		if addr >= s.lo && addr < s.hi {
			return true
		}
	}
	return false
}

// liveConflict reports why patching is unsafe right now ("" = safe):
// some target's RIP is inside an affected block, or a word on its live
// stack — a CALL return address or a signal frame's saved RIP — points
// into one. Every target process is checked, so forked children parked
// inside a block are caught (the multi-process gap InHandler's
// single-concern scan never had to cover).
func liveConflict(targets []*kernel.Process, spans []blockSpan) string {
	for _, p := range targets {
		if p.Exited() {
			continue
		}
		if inSpans(p.RIP(), spans) {
			return fmt.Sprintf("pid %d RIP %#x in affected block", p.PID(), p.RIP())
		}
		mem := p.Mem()
		sp := p.Reg(isa.SP)
		vma, ok := mem.VMAAt(sp)
		if !ok {
			// No mapped stack to prove safe — treat as a conflict.
			return fmt.Sprintf("pid %d SP %#x unmapped", p.PID(), sp)
		}
		for a := sp &^ 7; a+8 <= vma.End; a += 8 {
			w, err := mem.ReadU64(a)
			if err != nil {
				return fmt.Sprintf("pid %d stack read %#x: %v", p.PID(), a, err)
			}
			if inSpans(w, spans) {
				return fmt.Sprintf("pid %d stack word %#x -> %#x in affected block", p.PID(), a, w)
			}
		}
	}
	return ""
}

// CountPatched reports, byte-wise from the live guest's text, how many
// of blocks are fully INT3 under policy (full) and how many are only
// partially INT3 (partial — possible for PolicyWipeBlocks when a crash
// interrupted a multi-byte write path). It is the ground truth a
// resumed rollout controller uses to classify a torn live-patch
// journal window: unlike DisabledBlockCount, it cannot be fooled by
// lost in-memory bookkeeping, and a partial result proves torn text
// that must never be re-patched blindly (re-patching would record INT3
// as the "original" bytes and corrupt every later EnableBlocks).
func (c *Customizer) CountPatched(blocks []coverage.AbsBlock, policy Policy) (full, partial int, err error) {
	p, err := c.machine.Process(c.pid)
	if err != nil || p.Exited() {
		return 0, 0, ErrDead
	}
	mem := p.Mem()
	for _, b := range blocks {
		n := 1
		if policy != PolicyBlockEntry {
			n = int(b.Size)
		}
		data, rerr := mem.Read(b.Addr, n)
		if rerr != nil {
			return 0, 0, fmt.Errorf("core: reading block %#x: %w", b.Addr, rerr)
		}
		int3 := 0
		for _, by := range data {
			if by == 0xCC {
				int3++
			}
		}
		switch {
		case int3 == len(data):
			full++
		case int3 > 0:
			partial++
		}
	}
	return full, partial, nil
}

// FilterProtected returns blocks minus any block covering the
// configured RedirectTo address — the set DisableBlocks and
// DisableBlocksLive actually apply. External verifiers (a rollout
// controller classifying a torn journal window byte-wise) must
// compare the guest's text against this set, not the raw input.
func (c *Customizer) FilterProtected(blocks []coverage.AbsBlock) []coverage.AbsBlock {
	return append([]coverage.AbsBlock(nil), c.filterProtected(blocks)...)
}

// InstallHandler injects the SIGTRAP handler library now, through a
// no-op rewrite transaction, without disabling anything. Fleet
// templates call it once before cloning so every replica already
// carries the handler and later DisableBlocksLive calls qualify for
// the zero-downtime fast path (the live path cannot inject a library;
// that is one of its fallback cases). A guest that already has the
// handler returns immediately with zero Stats.
func (c *Customizer) InstallHandler() (Stats, error) {
	p, err := c.machine.Process(c.pid)
	if err != nil || p.Exited() {
		return Stats{}, ErrDead
	}
	if _, ok := handlerModule(p); ok {
		return Stats{}, nil
	}
	return c.Rewrite(func(ed *crit.Editor, pids []int) error { return nil })
}
