// Package core implements DynaCut itself: dynamic and adaptive
// program customization by offline process rewriting. A Customizer
// wraps one running guest process (or process tree) and applies the
// checkpoint → rewrite → restore cycle of the paper's Figure 3:
// undesired basic blocks (identified by internal/coverage's
// trace-differencing) are blocked with one-byte INT3 patches, wiped,
// or unmapped; a signal-handler library is injected to redirect
// accidental accesses to the application's own error path; and every
// change is reversible at run time, so features can be re-enabled
// when the usage scenario changes.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/kernel"
)

// Policy selects how undesired code is removed (§3.2.2).
type Policy int

// Removal policies, from cheapest to strongest.
const (
	// PolicyBlockEntry replaces only the first byte of each block
	// with INT3: enough to stop the dispatcher from entering the
	// feature, constant-time to apply and to revert.
	PolicyBlockEntry Policy = iota + 1
	// PolicyWipeBlocks overwrites every byte of each block with
	// INT3, defeating mid-block jumps (ROP gadget reuse).
	PolicyWipeBlocks
	// PolicyUnmapPages removes whole pages from the address space;
	// only pages fully covered by undesired blocks are unmapped, the
	// remainder is wiped.
	PolicyUnmapPages
)

func (p Policy) String() string {
	switch p {
	case PolicyBlockEntry:
		return "block-entry"
	case PolicyWipeBlocks:
		return "wipe-blocks"
	case PolicyUnmapPages:
		return "unmap-pages"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options configures a Customizer.
type Options struct {
	// Tree customizes the whole process tree (multi-process servers).
	Tree bool
	// RedirectTo, when nonzero, is the in-target address of the
	// application's error path (e.g. the "403 Forbidden" responder);
	// blocked-feature traps are redirected there instead of killing
	// the process.
	RedirectTo uint64
	// Verifier arms §3.2.3's validation mode: trapped blocks restore
	// themselves and log the address instead of being treated as
	// attacks, so over-eliminated blocks can be found.
	Verifier bool
	// TicksPerSecond, when nonzero, converts the wall-clock rewrite
	// time into virtual clock ticks charged to the machine — the
	// service-interruption window of Figure 8.
	TicksPerSecond uint64
}

// Stats reports the cost of one rewrite cycle, matching the segments
// of Figures 6 and 7 (checkpoint, code update, handler insertion,
// restore).
type Stats struct {
	Checkpoint    time.Duration
	CodeUpdate    time.Duration
	InsertHandler time.Duration
	Restore       time.Duration
	ImageBytes    int
	BlocksPatched int
	PagesUnmapped int
}

// Total returns the end-to-end service interruption.
func (s Stats) Total() time.Duration {
	return s.Checkpoint + s.CodeUpdate + s.InsertHandler + s.Restore
}

// Customizer errors.
var (
	ErrNotDisabled = errors.New("core: feature not currently disabled")
	ErrDead        = errors.New("core: target process has exited")
)

// Customizer dynamically customizes one guest program.
type Customizer struct {
	machine *kernel.Machine
	pid     int // current root PID (changes across restores)
	opts    Options

	handlerLib *delf.File
	handler    *Handler

	// saved[addr] = original bytes, for re-enabling features.
	saved map[uint64][]byte
	// disabled tracks currently-disabled block spans by feature name.
	disabled map[string][]coverage.AbsBlock
	// unmapped page ranges (cannot be re-enabled byte-wise).
	unmapped []pageRange

	verifierCount int
}

type pageRange struct{ start, end uint64 }

// New creates a Customizer for the process rooted at pid.
func New(m *kernel.Machine, pid int, opts Options) (*Customizer, error) {
	lib, err := BuildHandlerLib()
	if err != nil {
		return nil, err
	}
	return &Customizer{
		machine:    m,
		pid:        pid,
		opts:       opts,
		handlerLib: lib,
		saved:      map[uint64][]byte{},
		disabled:   map[string][]coverage.AbsBlock{},
	}, nil
}

// PID returns the current root process ID (it changes after each
// rewrite, since restore creates fresh processes).
func (c *Customizer) PID() int { return c.pid }

// Handler returns the injected handler state, if any.
func (c *Customizer) Handler() *Handler { return c.handler }

// Rewrite runs one full checkpoint → edit → restore cycle, applying
// edit to the frozen images. It is the paper's core primitive: all
// customization goes through it, and the target's live TCP
// connections survive.
func (c *Customizer) Rewrite(edit func(ed *crit.Editor, pids []int) error) (Stats, error) {
	var stats Stats
	p, err := c.machine.Process(c.pid)
	if err != nil || p.Exited() {
		return stats, ErrDead
	}

	t0 := time.Now()
	set, err := criu.Dump(c.machine, c.pid, criu.DumpOpts{ExecPages: true, Tree: c.opts.Tree})
	if err != nil {
		return stats, fmt.Errorf("checkpoint: %w", err)
	}
	stats.Checkpoint = time.Since(t0)
	stats.ImageBytes = set.TotalBytes()

	// Kill the originals: the rewrite happens on the frozen images.
	for _, pid := range set.PIDs {
		if err := c.machine.Kill(pid); err != nil {
			return stats, fmt.Errorf("freeze: %w", err)
		}
	}

	ed := crit.NewEditor(set, c.machine)

	// Ensure the handler library is present in the (new) image set:
	// injection state does not survive re-dumps of restored procs, it
	// does — the library VMAs were dumped; only re-inject when absent.
	t1 := time.Now()
	if err := c.ensureHandler(ed, set.PIDs); err != nil {
		return stats, err
	}
	stats.InsertHandler = time.Since(t1)

	t2 := time.Now()
	if err := edit(ed, set.PIDs); err != nil {
		return stats, fmt.Errorf("rewrite: %w", err)
	}
	stats.CodeUpdate = time.Since(t2)

	t3 := time.Now()
	procs, pidMap, err := criu.Restore(c.machine, set)
	if err != nil {
		return stats, fmt.Errorf("restore: %w", err)
	}
	stats.Restore = time.Since(t3)

	c.pid = pidMap[c.pid]
	if c.pid == 0 && len(procs) > 0 {
		c.pid = procs[0].PID()
	}
	if c.opts.TicksPerSecond > 0 {
		ticks := uint64(stats.Total().Seconds() * float64(c.opts.TicksPerSecond))
		c.machine.AdvanceClock(ticks)
	}
	return stats, nil
}

// ensureHandler injects the signal-handler library into every dumped
// process that does not already carry it.
func (c *Customizer) ensureHandler(ed *crit.Editor, pids []int) error {
	for _, pid := range pids {
		if _, err := ed.FindModule(pid, HandlerLibName); err == nil {
			continue
		}
		h, err := injectHandler(ed, pid, c.handlerLib, c.opts.RedirectTo)
		if err != nil {
			return err
		}
		if c.handler == nil {
			c.handler = h
		}
	}
	return nil
}

// DisableBlocks disables the named group of basic blocks under the
// given policy. The original bytes are saved so EnableBlocks can
// restore them later.
//
// The block containing the configured RedirectTo address is never
// disabled: the trap handler must always be able to land there, or a
// blocked feature would re-trap forever (the redirect target is, by
// construction, rarely covered by profiling traces).
func (c *Customizer) DisableBlocks(name string, blocks []coverage.AbsBlock, policy Policy) (Stats, error) {
	blocks = c.filterProtected(blocks)
	if len(blocks) == 0 {
		return Stats{}, fmt.Errorf("core: no blocks to disable for %q", name)
	}
	var applied Stats
	stats, err := c.Rewrite(func(ed *crit.Editor, pids []int) error {
		for _, pid := range pids {
			if err := c.applyPolicy(ed, pid, blocks, policy, &applied); err != nil {
				return err
			}
		}
		return nil
	})
	stats.BlocksPatched = applied.BlocksPatched
	stats.PagesUnmapped = applied.PagesUnmapped
	if err != nil {
		return stats, err
	}
	c.disabled[name] = append([]coverage.AbsBlock(nil), blocks...)
	return stats, nil
}

// filterProtected drops blocks that cover the redirect target.
func (c *Customizer) filterProtected(blocks []coverage.AbsBlock) []coverage.AbsBlock {
	if c.opts.RedirectTo == 0 {
		return blocks
	}
	out := blocks[:0:0]
	for _, b := range blocks {
		if c.opts.RedirectTo >= b.Addr && c.opts.RedirectTo < b.Addr+b.Size {
			continue
		}
		out = append(out, b)
	}
	return out
}

func (c *Customizer) applyPolicy(ed *crit.Editor, pid int, blocks []coverage.AbsBlock, policy Policy, stats *Stats) error {
	switch policy {
	case PolicyBlockEntry:
		for _, b := range blocks {
			if err := c.saveAndPatch(ed, pid, b.Addr, 1); err != nil {
				return err
			}
			stats.BlocksPatched++
		}
	case PolicyWipeBlocks:
		for _, b := range blocks {
			if err := c.saveAndPatch(ed, pid, b.Addr, int(b.Size)); err != nil {
				return err
			}
			stats.BlocksPatched++
		}
	case PolicyUnmapPages:
		full, partial := splitPageCoverage(blocks)
		for _, pr := range full {
			if err := ed.UnmapRange(pid, pr.start, pr.end); err != nil {
				return err
			}
			stats.PagesUnmapped += int((pr.end - pr.start) / kernel.PageSize)
			c.unmapped = append(c.unmapped, pr)
		}
		for _, b := range partial {
			if err := c.saveAndPatch(ed, pid, b.Addr, int(b.Size)); err != nil {
				return err
			}
			stats.BlocksPatched++
		}
	default:
		return fmt.Errorf("core: unknown policy %v", policy)
	}
	return nil
}

// saveAndPatch records the original bytes (once) and overwrites them
// with INT3. In verifier mode the (addr, original-first-byte) pair is
// also published to the in-guest table and the page made writable so
// the handler can self-heal false removals.
func (c *Customizer) saveAndPatch(ed *crit.Editor, pid int, addr uint64, n int) error {
	orig, err := ed.ReadMem(pid, addr, n)
	if err != nil {
		return err
	}
	if _, ok := c.saved[addr]; !ok {
		c.saved[addr] = orig
	}
	fill := make([]byte, n)
	for i := range fill {
		fill[i] = 0xCC
	}
	if err := ed.WriteMem(pid, addr, fill); err != nil {
		return err
	}
	if c.opts.Verifier && c.handler != nil {
		if err := addVerifierEntry(ed, pid, c.handler, c.verifierCount, addr, orig[0]); err != nil {
			return err
		}
		c.verifierCount++
		if err := c.makeTextWritable(ed, pid, addr); err != nil {
			return err
		}
	}
	return nil
}

// makeTextWritable flips the VMA containing addr to RWX in the image
// (verifier mode only: the in-guest handler restores bytes itself).
func (c *Customizer) makeTextWritable(ed *crit.Editor, pid int, addr uint64) error {
	vmas, err := ed.VMAs(pid)
	if err != nil {
		return err
	}
	for _, v := range vmas {
		if addr >= v.Start && addr < v.End {
			if delf.Perm(v.Perm)&delf.PermW != 0 {
				return nil
			}
			return c.setVMAPerm(ed, pid, v.Start, v.Perm|uint8(delf.PermW))
		}
	}
	return fmt.Errorf("core: no VMA at %#x", addr)
}

func (c *Customizer) setVMAPerm(ed *crit.Editor, pid int, start uint64, perm uint8) error {
	pi, err := ed.Set().Proc(pid)
	if err != nil {
		return err
	}
	for i := range pi.MM.VMAs {
		if pi.MM.VMAs[i].Start == start {
			pi.MM.VMAs[i].Perm = perm
			return nil
		}
	}
	return fmt.Errorf("core: VMA at %#x vanished", start)
}

// EnableBlocks restores a previously disabled feature: the saved
// original bytes are written back (the paper's bidirectional
// transformation). Unmapped pages cannot be re-enabled this way.
func (c *Customizer) EnableBlocks(name string) (Stats, error) {
	blocks, ok := c.disabled[name]
	if !ok {
		return Stats{}, fmt.Errorf("%w: %q", ErrNotDisabled, name)
	}
	patched := 0
	stats, err := c.Rewrite(func(ed *crit.Editor, pids []int) error {
		for _, pid := range pids {
			for _, b := range blocks {
				orig, ok := c.saved[b.Addr]
				if !ok {
					return fmt.Errorf("core: no saved bytes for %#x", b.Addr)
				}
				if err := ed.WriteMem(pid, b.Addr, orig); err != nil {
					return err
				}
				patched++
			}
		}
		return nil
	})
	stats.BlocksPatched = patched
	if err != nil {
		return stats, err
	}
	for _, b := range blocks {
		delete(c.saved, b.Addr)
	}
	delete(c.disabled, name)
	return stats, nil
}

// Disabled reports the currently disabled block groups.
func (c *Customizer) Disabled() map[string][]coverage.AbsBlock {
	out := make(map[string][]coverage.AbsBlock, len(c.disabled))
	for k, v := range c.disabled {
		out[k] = append([]coverage.AbsBlock(nil), v...)
	}
	return out
}

// DisabledBlockCount returns the total number of disabled blocks.
func (c *Customizer) DisabledBlockCount() int {
	n := 0
	for _, v := range c.disabled {
		n += len(v)
	}
	return n
}

// DisabledBytes returns the total size of disabled block spans plus
// unmapped pages.
func (c *Customizer) DisabledBytes() uint64 {
	var n uint64
	for _, blocks := range c.disabled {
		for _, b := range blocks {
			n += b.Size
		}
	}
	for _, pr := range c.unmapped {
		n += pr.end - pr.start
	}
	return n
}

// TrapHits reads the injected handler's hit counter from the live
// process.
func (c *Customizer) TrapHits() (uint64, error) {
	if c.handler == nil {
		return 0, fmt.Errorf("core: no handler injected")
	}
	p, err := c.machine.Process(c.pid)
	if err != nil {
		return 0, err
	}
	return p.Mem().ReadU64(c.handler.HitsAddr)
}

// FalseRemovals reads the verifier log: addresses whose removal the
// handler reverted at run time (§3.2.3).
func (c *Customizer) FalseRemovals() ([]uint64, error) {
	if c.handler == nil {
		return nil, fmt.Errorf("core: no handler injected")
	}
	p, err := c.machine.Process(c.pid)
	if err != nil {
		return nil, err
	}
	n, err := p.Mem().ReadU64(c.handler.FLogLen)
	if err != nil {
		return nil, err
	}
	if n > 256 {
		n = 256
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		a, err := p.Mem().ReadU64(c.handler.FLog + 8*i)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// AdoptFalseRemovals completes the §3.2.3 validation loop: every
// address the in-guest verifier healed is accepted as wanted code —
// dropped from the disabled bookkeeping so later EnableBlocks /
// DisableBlocks cycles treat it as never removed. It returns the
// adopted addresses.
func (c *Customizer) AdoptFalseRemovals() ([]uint64, error) {
	healed, err := c.FalseRemovals()
	if err != nil {
		return nil, err
	}
	healedSet := make(map[uint64]bool, len(healed))
	for _, a := range healed {
		healedSet[a] = true
	}
	for name, blocks := range c.disabled {
		keep := blocks[:0:0]
		for _, b := range blocks {
			if healedSet[b.Addr] {
				delete(c.saved, b.Addr)
				continue
			}
			keep = append(keep, b)
		}
		if len(keep) == 0 {
			delete(c.disabled, name)
		} else {
			c.disabled[name] = keep
		}
	}
	return healed, nil
}

// splitPageCoverage partitions blocks into page ranges fully covered
// by them (safe to unmap) and leftover blocks (wiped instead).
func splitPageCoverage(blocks []coverage.AbsBlock) ([]pageRange, []coverage.AbsBlock) {
	bytesOn := map[uint64]uint64{} // page -> undesired bytes on it
	for _, b := range blocks {
		for a := b.Addr; a < b.Addr+b.Size; {
			pn := a / kernel.PageSize
			end := (pn + 1) * kernel.PageSize
			hi := b.Addr + b.Size
			if hi > end {
				hi = end
			}
			bytesOn[pn] += hi - a
			a = hi
		}
	}
	var full []pageRange
	fullSet := map[uint64]bool{}
	for pn, n := range bytesOn {
		if n >= kernel.PageSize {
			fullSet[pn] = true
		}
	}
	// Coalesce adjacent full pages.
	pns := make([]uint64, 0, len(fullSet))
	for pn := range fullSet {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for i := 0; i < len(pns); {
		j := i
		for j+1 < len(pns) && pns[j+1] == pns[j]+1 {
			j++
		}
		full = append(full, pageRange{
			start: pns[i] * kernel.PageSize,
			end:   (pns[j] + 1) * kernel.PageSize,
		})
		i = j + 1
	}
	var partial []coverage.AbsBlock
	for _, b := range blocks {
		// Keep the sub-spans not inside full pages.
		for a := b.Addr; a < b.Addr+b.Size; {
			pn := a / kernel.PageSize
			end := (pn + 1) * kernel.PageSize
			hi := b.Addr + b.Size
			if hi > end {
				hi = end
			}
			if !fullSet[pn] {
				partial = append(partial, coverage.AbsBlock{Addr: a, Size: hi - a})
			}
			a = hi
		}
	}
	return full, partial
}
