// Package core implements DynaCut itself: dynamic and adaptive
// program customization by offline process rewriting. A Customizer
// wraps one running guest process (or process tree) and applies the
// checkpoint → rewrite → restore cycle of the paper's Figure 3:
// undesired basic blocks (identified by internal/coverage's
// trace-differencing) are blocked with one-byte INT3 patches, wiped,
// or unmapped; a signal-handler library is injected to redirect
// accidental accesses to the application's own error path; and every
// change is reversible at run time, so features can be re-enabled
// when the usage scenario changes.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/obs"
)

// Policy selects how undesired code is removed (§3.2.2).
type Policy int

// Removal policies, from cheapest to strongest.
const (
	// PolicyBlockEntry replaces only the first byte of each block
	// with INT3: enough to stop the dispatcher from entering the
	// feature, constant-time to apply and to revert.
	PolicyBlockEntry Policy = iota + 1
	// PolicyWipeBlocks overwrites every byte of each block with
	// INT3, defeating mid-block jumps (ROP gadget reuse).
	PolicyWipeBlocks
	// PolicyUnmapPages removes whole pages from the address space;
	// only pages fully covered by undesired blocks are unmapped, the
	// remainder is wiped.
	PolicyUnmapPages
)

func (p Policy) String() string {
	switch p {
	case PolicyBlockEntry:
		return "block-entry"
	case PolicyWipeBlocks:
		return "wipe-blocks"
	case PolicyUnmapPages:
		return "unmap-pages"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options configures a Customizer.
type Options struct {
	// Tree customizes the whole process tree (multi-process servers).
	Tree bool
	// RedirectTo, when nonzero, is the in-target address of the
	// application's error path (e.g. the "403 Forbidden" responder);
	// blocked-feature traps are redirected there instead of killing
	// the process.
	RedirectTo uint64
	// Verifier arms §3.2.3's validation mode: trapped blocks restore
	// themselves and log the address instead of being treated as
	// attacks, so over-eliminated blocks can be found.
	Verifier bool
	// TicksPerSecond, when nonzero, converts the wall-clock rewrite
	// time into virtual clock ticks charged to the machine — the
	// service-interruption window of Figure 8. With retries, every
	// attempt's time is charged, so Figure 8-style interruption
	// numbers stay honest.
	TicksPerSecond uint64
	// MaxChargeTicks, when nonzero, caps the virtual ticks charged per
	// rewrite. The measured downtime is wall time, so a descheduled
	// test host can inflate one rewrite's charge by orders of
	// magnitude; timeline experiments set a cap a few buckets wide so
	// a scheduling outlier cannot swallow the rest of the timeline.
	MaxChargeTicks uint64
	// MaxAttempts bounds how many times Rewrite retries the whole
	// edit/restore cycle on failure before giving up (each failed
	// attempt is rolled back first). 0 or 1 = no retry.
	MaxAttempts int
	// HealthCheck, when non-nil, is run after every restore with the
	// new root PID, before the transaction commits; a non-nil error
	// rolls the guest back to the pre-edit images. Session wires a
	// canary request through this so server flows verify end-to-end
	// service.
	HealthCheck func(m *kernel.Machine, pid int) error
	// HealthBudget is the instruction budget of the built-in liveness
	// probe run after each restore (0 = a small default). The probe
	// fails if the restored root exits or dies on a signal within the
	// budget.
	HealthBudget uint64
	// BeforeCommit, when non-nil, runs immediately before the commit
	// point of every attempt (killing the originals). A non-nil error
	// aborts the transaction with ErrAborted and the guest untouched —
	// the last moment an external controller (a halted fleet rollout)
	// can stop an in-flight rewrite without paying a rollback.
	BeforeCommit func(attempt int) error
	// OnOutcome, when non-nil, is called after every Rewrite with its
	// final stats and error (nil on commit). Fleet supervisors use it
	// to aggregate per-replica outcomes without wrapping every call
	// site.
	OnOutcome func(Stats, error)
	// LiveQuiesceRounds bounds how many scheduler rounds
	// DisableBlocksLive runs waiting for quiescence before falling
	// back to the checkpoint transaction (0 = DefaultQuiesceRounds).
	LiveQuiesceRounds int
	// Observer, when non-nil, receives a typed event for every rewrite
	// phase (checkpoint, edit, validate, kill, restore, health,
	// rollback) plus pipeline counters. New also installs it as the
	// machine's observer if the machine has none, so kernel, criu and
	// fault-injection telemetry land in the same sink. nil = zero
	// overhead: no events, no metrics, no allocations.
	Observer *obs.Observer
	// AttestStore, when non-nil, backs the attestation oracle's
	// expected-content deposits (attest.go). Fleets pass their shared
	// PageStore so N replicas' identical text pages dedup to one blob;
	// nil = a private store created on first use.
	AttestStore *criu.PageStore
}

// Stats reports the cost of one rewrite cycle, matching the segments
// of Figures 6 and 7 (checkpoint, code update, handler insertion,
// restore). With retries the editing and restore segments accumulate
// across attempts, so the total still reflects the real interruption.
type Stats struct {
	Checkpoint    time.Duration
	CodeUpdate    time.Duration
	InsertHandler time.Duration
	Restore       time.Duration
	HealthCheck   time.Duration
	// Downtime is the measured service-interruption window: the
	// wall-clock time from the commit point (killing the originals to
	// free their ports) until the replacement tree was restored —
	// accumulated across attempts, including rollback restores. The
	// pre-commit segments (checkpoint, edit, handler insertion,
	// validation) run while the guest still serves and are not downtime.
	Downtime time.Duration
	// ImageBytes is the serialized size of the pre-edit checkpoint; for
	// an incremental dump this is the delta blob, not the flattened set.
	ImageBytes int
	// PagesDumped / PagesSkipped report the incremental checkpoint's
	// work: pages serialized into the image versus pages elided because
	// the parent chain already carries them unchanged.
	PagesDumped   int
	PagesSkipped  int
	BlocksPatched int
	PagesUnmapped int
	// Attempts is how many edit/restore cycles ran (1 = no retry).
	Attempts int
	// LivePatched reports the rewrite took the live-patch fast path:
	// the guest was never killed, Downtime is zero, and the text bytes
	// were written directly into the running VMAs between scheduler
	// rounds.
	LivePatched bool
	// FellBack reports a requested live patch that could not run (or
	// was unwound after an injected fault) and was applied through the
	// full checkpoint transaction instead; FallbackReason says why.
	FellBack       bool
	FallbackReason string
	// QuiesceRounds counts the scheduler rounds the live patcher ran
	// waiting for every RIP and saved return address to leave the
	// affected blocks (0 = the guest was already safe).
	QuiesceRounds int
	// RolledBack reports the transaction's final outcome: true when
	// the rewrite failed and the guest is running the restored
	// pre-edit images (its live connections intact). It is false both
	// on success and when an early failure — bad dump, corrupt image
	// blob, failed edit — was caught before the guest was killed, in
	// which case the original processes were never touched.
	RolledBack bool
}

// Total returns the end-to-end rewrite cost, health probing included.
func (s Stats) Total() time.Duration {
	return s.Checkpoint + s.CodeUpdate + s.InsertHandler + s.Restore + s.HealthCheck
}

// Interruption returns the service-interruption window: the time the
// guest was not available, i.e. the measured kill-to-restored Downtime.
// Checkpoint, image editing and validation all run while the original
// guest is still serving (criu.Dump leaves it running), so they do not
// count; neither does the health probe, which runs against the
// already-restored, already-serving guest (its guest-side cost lands
// on the virtual clock as executed instructions).
func (s Stats) Interruption() time.Duration {
	return s.Downtime
}

// Customizer errors.
var (
	ErrNotDisabled = errors.New("core: feature not currently disabled")
	ErrDead        = errors.New("core: target process has exited")
	// ErrRestoreFailed marks a restore that failed after the guest was
	// killed; it always travels with ErrRolledBack (or, if even the
	// rollback restore failed, ErrRollbackFailed).
	ErrRestoreFailed = errors.New("core: restore failed")
	// ErrRolledBack reports a rewrite that failed but recovered: the
	// pre-edit images were restored and the guest survived.
	ErrRolledBack = errors.New("core: rewrite failed, guest rolled back to pre-edit images")
	// ErrRollbackFailed is the unrecoverable case: the rewrite failed
	// after the commit point and restoring the pristine images failed
	// too, so the guest is gone.
	ErrRollbackFailed = errors.New("core: rollback failed, guest lost")
	// ErrAborted reports a rewrite stopped by Options.BeforeCommit
	// before the commit point: nothing was killed, the guest is
	// untouched and still running its pre-rewrite code.
	ErrAborted = errors.New("core: rewrite aborted before commit")
)

// defaultHealthBudget is the instruction budget of the built-in
// post-restore liveness probe when Options.HealthBudget is zero.
const defaultHealthBudget = 20000

// Customizer dynamically customizes one guest program.
type Customizer struct {
	machine *kernel.Machine
	pid     int // current root PID (changes across restores)
	opts    Options

	handlerLib *delf.File
	handler    *Handler

	// saved[addr] = original bytes, for re-enabling features.
	saved map[uint64][]byte
	// disabled tracks currently-disabled block spans by feature name.
	disabled map[string][]coverage.AbsBlock
	// unmapped page ranges (cannot be re-enabled byte-wise).
	unmapped []pageRange

	// parent is the image set the live guest's memory is a delta
	// against (the last committed images, PIDs remapped to the live
	// tree): the next checkpoint dumps only pages dirtied since it.
	// Invalidated on rollback — the next dump is then a full one.
	parent *criu.ImageSet
	// tickCarry holds the sub-tick remainder of charge()'s
	// seconds→ticks conversion so fractional interruptions accumulate
	// across rewrites instead of truncating to zero.
	tickCarry float64

	verifierCount int

	// Expected-state oracle (attest.go): per-text-page expected digests
	// with version history, resealed at every commit point. attStore is
	// the content-addressed repair source — shared with the fleet's
	// store when Options.AttestStore is set.
	oracle    map[uint64]*pageOracle
	attStore  *criu.PageStore
	attSealed bool
}

type pageRange struct{ start, end uint64 }

// New creates a Customizer for the process rooted at pid.
func New(m *kernel.Machine, pid int, opts Options) (*Customizer, error) {
	lib, err := BuildHandlerLib()
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil && m.Observer() == nil {
		m.SetObserver(opts.Observer)
	}
	c := &Customizer{
		machine:    m,
		pid:        pid,
		opts:       opts,
		handlerLib: lib,
		saved:      map[uint64][]byte{},
		disabled:   map[string][]coverage.AbsBlock{},
		attStore:   opts.AttestStore,
	}
	// Seal the oracle on the pristine text so the first version in
	// every page's chain is the unmodified binary. A guest that is not
	// running yet seals lazily on first use instead.
	_ = c.resealOracle()
	return c, nil
}

// span opens an observability span for one rewrite phase and returns
// its closer. With no observer configured both directions are no-ops
// (the returned closure is static, so the nil path does not allocate).
func (c *Customizer) span(name string, attempt int) func(err error) {
	o := c.opts.Observer
	if o == nil {
		return noopSpanEnd
	}
	o.PhaseStart(name, attempt)
	return func(err error) { o.PhaseEnd(name, attempt, err) }
}

func noopSpanEnd(error) {}

// point emits an instantaneous observability event if observing.
func (c *Customizer) point(name string, n int64) {
	if o := c.opts.Observer; o != nil {
		o.Point(name, n)
	}
}

// PID returns the current root process ID (it changes after each
// rewrite, since restore creates fresh processes).
func (c *Customizer) PID() int { return c.pid }

// Handler returns the injected handler state, if any.
func (c *Customizer) Handler() *Handler { return c.handler }

// Rewrite runs one full checkpoint → edit → restore cycle, applying
// edit to the frozen images. It is the paper's core primitive: all
// customization goes through it, and the target's live TCP
// connections survive.
//
// The cycle is transactional. The freshly dumped images are validated
// and a pristine serialized copy is kept before anything is killed;
// every attempt edits a fresh decode of that copy. Failures before
// the commit point (handler injection, the edit itself, validation of
// the edited images) leave the original processes untouched. The
// commit point is killing the originals to free their ports; past it,
// a failed restore or a failed post-restore health check rolls the
// guest back to the pristine images, so it keeps serving with its
// live connections intact. Options.MaxAttempts > 1 retries the whole
// cycle after any rolled-back (or pre-commit) failure.
func (c *Customizer) Rewrite(edit func(ed *crit.Editor, pids []int) error) (Stats, error) {
	stats, err := c.rewrite(edit)
	if c.opts.OnOutcome != nil {
		c.opts.OnOutcome(stats, err)
	}
	return stats, err
}

func (c *Customizer) rewrite(edit func(ed *crit.Editor, pids []int) error) (Stats, error) {
	var stats Stats
	p, err := c.machine.Process(c.pid)
	if err != nil || p.Exited() {
		return stats, ErrDead
	}
	rootOld := c.pid

	// Incremental checkpoint: dump only the pages dirtied since the
	// last committed images. Dump's fault prepass guarantees a failed
	// dump clears no dirty bitmap, so c.parent stays valid on error.
	t0 := time.Now()
	endCkpt := c.span("checkpoint", 0)
	set, err := criu.Dump(c.machine, c.pid, criu.DumpOpts{
		ExecPages: true, Tree: c.opts.Tree, Parent: c.parent,
	})
	endCkpt(err)
	if err != nil {
		return stats, fmt.Errorf("checkpoint: %w", err)
	}
	stats.Checkpoint = time.Since(t0)
	stats.ImageBytes = set.TotalBytes()
	stats.PagesDumped = set.PagesDumped
	stats.PagesSkipped = set.PagesSkipped
	defer func() { c.charge(stats) }()

	// Validate while the guest is still running: a bad image set must
	// be rejected before it can cost us a live process.
	endVal := c.span("validate", 0)
	err = set.Validate(c.machine)
	endVal(err)
	if err != nil {
		// The dump reset the dirty bitmaps, so older parents no longer
		// cover the guest's writes — and this set is not trustworthy.
		// Force the next checkpoint to be a full dump.
		c.parent = nil
		return stats, fmt.Errorf("checkpoint: %w", err)
	}

	// The guest's memory is, as of this dump, exactly what the set
	// describes — so the set is the parent for the next incremental
	// dump, whatever else this transaction does (dirty tracking
	// restarted at the dump). Committing below upgrades it to the
	// PID-remapped post-edit images.
	c.parent = set
	blobParent := set.Parent // what a decode of the pristine blob binds to

	// The pristine pre-edit images are the rollback anchor. Keeping
	// them serialized (and re-decoding per use) guarantees no edit can
	// alias into them; the blob passes through the machine's fault
	// hook, modeling corruption of the image files on the tmpfs
	// between dump and restore.
	pristine := c.machine.MutateBlob(faultinject.SitePristine, set.Marshal())

	// Edit closures mutate customizer bookkeeping (saved bytes,
	// unmapped ranges, verifier table, handler). Snapshot it (deep,
	// slices included — edits may mutate saved bytes in place) so every
	// attempt starts clean and a failed transaction leaks nothing.
	savedSnap := make(map[uint64][]byte, len(c.saved))
	for k, v := range c.saved {
		savedSnap[k] = append([]byte(nil), v...)
	}
	unmappedSnap := append([]pageRange(nil), c.unmapped...)
	verifierSnap := c.verifierCount
	handlerSnap := c.handler

	maxAttempts := c.opts.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	curPIDs := append([]int(nil), set.PIDs...) // the live guest's PIDs
	rolledBack := false                        // a rollback restore has run
	var lastErr error

	for attempt := 1; attempt <= maxAttempts; attempt++ {
		stats.Attempts = attempt
		c.saved = make(map[uint64][]byte, len(savedSnap))
		for k, v := range savedSnap {
			c.saved[k] = append([]byte(nil), v...)
		}
		c.unmapped = append([]pageRange(nil), unmappedSnap...)
		c.verifierCount = verifierSnap
		c.handler = handlerSnap

		endDecode := c.span("decode", attempt)
		work, err := criu.Unmarshal(pristine)
		if err == nil {
			// A delta blob comes back detached; re-attach its ancestry.
			// An identity mismatch means the blob's parent reference was
			// corrupted in flight — caught like any other corruption.
			err = work.BindParent(blobParent)
		}
		endDecode(err)
		if err != nil {
			// The serialized images are corrupt; the checksum caught it
			// before anything was killed. The guest is untouched, and
			// retrying a deterministically bad blob is pointless.
			stats.RolledBack = rolledBack
			return stats, fmt.Errorf("image decode: %w", err)
		}
		ed := crit.NewEditor(work, c.machine)

		// Ensure the handler library is present in the image set:
		// injection survives re-dumps of restored procs (the library
		// VMAs were dumped), so only re-inject when absent.
		t1 := time.Now()
		endEdit := c.span("edit", attempt)
		err = c.ensureHandler(ed, work.PIDs)
		stats.InsertHandler += time.Since(t1)
		if err != nil {
			endEdit(err)
			lastErr = err
			continue // guest untouched; retry or give up below
		}

		t2 := time.Now()
		err = edit(ed, work.PIDs)
		stats.CodeUpdate += time.Since(t2)
		endEdit(err)
		if err != nil {
			lastErr = fmt.Errorf("rewrite: %w", err)
			continue // guest untouched
		}

		// The edited images must still describe a restorable process
		// tree — checked while the originals are alive.
		endVal := c.span("validate", attempt)
		err = work.Validate(c.machine)
		endVal(err)
		if err != nil {
			lastErr = fmt.Errorf("rewrite: %w", err)
			continue // guest untouched
		}

		// Last exit before the commit point: an external controller (a
		// fleet rollout that halted) can still abort with the guest
		// untouched. Bookkeeping is restored to the pre-rewrite snapshot
		// since ensureHandler/edit already mutated it this attempt.
		if c.opts.BeforeCommit != nil {
			if err := c.opts.BeforeCommit(attempt); err != nil {
				c.saved = savedSnap
				c.unmapped = unmappedSnap
				c.verifierCount = verifierSnap
				c.handler = handlerSnap
				stats.RolledBack = rolledBack
				c.point("rewrite.abort", int64(attempt))
				return stats, fmt.Errorf("%w: %v", ErrAborted, err)
			}
		}

		// Commit point: kill the originals so their ports free up for
		// the restore. From here on, failure means rollback, and the
		// guest is down until a restore (of the edited images or, on
		// rollback, the pristine ones) completes — that window is the
		// measured Downtime.
		// (Kill can only fail for an already-gone process, which holds
		// no ports; a genuinely stuck port surfaces as a restore failure
		// below.)
		tKill := time.Now()
		endKill := c.span("kill", attempt)
		for _, pid := range curPIDs {
			c.machine.Kill(pid)
		}
		endKill(nil)

		t3 := time.Now()
		endRestore := c.span("restore", attempt)
		procs, pidMap, err := criu.Restore(c.machine, work)
		endRestore(err)
		stats.Restore += time.Since(t3)
		if err != nil {
			// Restore is atomic: its partial procs are already gone.
			restoreErr := fmt.Errorf("%w (attempt %d): %w", ErrRestoreFailed, attempt, err)
			endRB := c.span("rollback", attempt)
			var rbErr error
			curPIDs, rbErr = c.rollbackOr(&stats, pristine, blobParent, rootOld, restoreErr)
			endRB(rbErr)
			stats.Downtime += time.Since(tKill) // down from kill through the rollback restore
			if rbErr != nil {
				return stats, rbErr
			}
			rolledBack = true
			lastErr = restoreErr
			continue
		}
		stats.Downtime += time.Since(tKill)

		newRoot := pidMap[rootOld]
		if newRoot == 0 && len(procs) > 0 {
			newRoot = procs[0].PID()
		}

		t4 := time.Now()
		endHealth := c.span("health", attempt)
		hcErr := c.healthCheck(newRoot, procs)
		endHealth(hcErr)
		stats.HealthCheck += time.Since(t4)
		if hcErr != nil {
			// Tear down the unhealthy restored tree, then roll back. The
			// guest is down again from the teardown until the rollback
			// restore completes.
			tDown := time.Now()
			for i := len(procs) - 1; i >= 0; i-- {
				c.machine.Kill(procs[i].PID())
				c.machine.Remove(procs[i].PID())
			}
			endRB := c.span("rollback", attempt)
			var rbErr error
			curPIDs, rbErr = c.rollbackOr(&stats, pristine, blobParent, rootOld, hcErr)
			endRB(rbErr)
			stats.Downtime += time.Since(tDown)
			if rbErr != nil {
				return stats, rbErr
			}
			rolledBack = true
			lastErr = fmt.Errorf("health check (attempt %d): %w", attempt, hcErr)
			continue
		}

		// Committed. The restored memory mirrors the edited images
		// exactly (restore resets dirty tracking), so they — re-keyed to
		// the live PIDs — are the parent for the next checkpoint.
		c.pid = newRoot
		c.parent = work.RemapPIDs(pidMap)
		stats.RolledBack = false
		c.point("rewrite.commit", int64(attempt))
		// The restored text is the new expected state: reseal the
		// attestation oracle against it (pristine digests stay in each
		// page's version chain).
		_ = c.resealOracle()
		if o := c.opts.Observer; o != nil {
			o.Add("core.commits", 1)
		}
		return stats, nil
	}

	// Every attempt failed. If the last failure was past the commit
	// point the guest is running the rolled-back pristine images;
	// otherwise it was never touched. Either way the bookkeeping must
	// match the pre-rewrite snapshot, not the dead attempt's edits.
	c.saved = savedSnap
	c.unmapped = unmappedSnap
	c.verifierCount = verifierSnap
	c.handler = handlerSnap
	stats.RolledBack = rolledBack
	if rolledBack {
		return stats, fmt.Errorf("%w (after %d attempts): %w", ErrRolledBack, stats.Attempts, lastErr)
	}
	return stats, lastErr
}

// rollbackOr restores the pristine pre-edit images after a post-commit
// failure (cause). On success it returns the new live PIDs and updates
// c.pid; the incremental-dump parent is invalidated either way — a
// rolled-back transaction forces the next checkpoint to be a full
// dump. If the rollback restore itself fails the guest is lost: it
// marks the transaction dead and returns an ErrRollbackFailed error
// carrying both failures.
func (c *Customizer) rollbackOr(stats *Stats, pristine []byte, blobParent *criu.ImageSet, rootOld int, cause error) ([]int, error) {
	if o := c.opts.Observer; o != nil {
		o.Add("core.rollbacks", 1)
	}
	c.parent = nil
	set, err := criu.Unmarshal(pristine)
	if err == nil {
		err = set.BindParent(blobParent)
	}
	if err == nil {
		var procs []*kernel.Process
		var pidMap map[int]int
		procs, pidMap, err = criu.Restore(c.machine, set)
		if err == nil {
			pids := make([]int, len(procs))
			for i, p := range procs {
				pids[i] = p.PID()
			}
			c.pid = pidMap[rootOld]
			if c.pid == 0 && len(procs) > 0 {
				c.pid = procs[0].PID()
			}
			// The rolled-back pristine text is the expected state now.
			_ = c.resealOracle()
			return pids, nil
		}
	}
	stats.RolledBack = false
	return nil, fmt.Errorf("%w: %v (while recovering from: %v)", ErrRollbackFailed, err, cause)
}

// healthCheck probes the freshly restored tree before the transaction
// commits: the guest runs for a bounded instruction budget, every
// restored process must still be alive afterwards, and the optional
// user probe (Options.HealthCheck — Session wires a canary request
// through it) must pass.
func (c *Customizer) healthCheck(root int, procs []*kernel.Process) error {
	if err := c.machine.Fault(faultinject.SiteHealth, root); err != nil {
		return err
	}
	budget := c.opts.HealthBudget
	if budget == 0 {
		budget = defaultHealthBudget
	}
	c.machine.Run(budget)
	for _, p := range procs {
		if p.Exited() {
			return fmt.Errorf("core: restored pid %d died within %d ticks of restore", p.PID(), budget)
		}
	}
	if c.opts.HealthCheck != nil {
		if err := c.opts.HealthCheck(c.machine, root); err != nil {
			return fmt.Errorf("core: health probe: %w", err)
		}
	}
	return nil
}

// charge converts the accumulated service interruption into virtual
// clock ticks (the Figure 8 interruption window). Failed attempts are
// charged too: their downtime was real. The conversion rounds to the
// nearest tick and carries the sub-tick remainder to the next rewrite,
// so many small interruptions cannot each truncate to zero.
func (c *Customizer) charge(stats Stats) {
	if c.opts.TicksPerSecond == 0 {
		return
	}
	exact := stats.Interruption().Seconds()*float64(c.opts.TicksPerSecond) + c.tickCarry
	ticks := math.Floor(exact + 0.5)
	c.tickCarry = exact - ticks
	if max := c.opts.MaxChargeTicks; max > 0 && ticks > float64(max) {
		ticks = float64(max)
		c.tickCarry = 0 // an outlier's excess is dropped, not deferred
	}
	if ticks > 0 {
		c.machine.AdvanceClock(uint64(ticks))
	}
}

// ensureHandler injects the signal-handler library into every dumped
// process that does not already carry it. When the library is already
// mapped but this customizer holds no handler state (a fresh or
// rebound instance working on images from an earlier customization),
// the export addresses are re-derived from the module entry so
// verifier bookkeeping and trap counters keep working.
func (c *Customizer) ensureHandler(ed *crit.Editor, pids []int) error {
	for _, pid := range pids {
		if mod, err := ed.FindModule(pid, HandlerLibName); err == nil {
			if c.handler == nil {
				c.handler = handlerFromModule(c.handlerLib, mod)
			}
			continue
		}
		h, err := injectHandler(ed, pid, c.handlerLib, c.opts.RedirectTo)
		if err != nil {
			return err
		}
		if c.handler == nil {
			c.handler = h
		}
	}
	return nil
}

// DisableBlocks disables the named group of basic blocks under the
// given policy. The original bytes are saved so EnableBlocks can
// restore them later.
//
// The block containing the configured RedirectTo address is never
// disabled: the trap handler must always be able to land there, or a
// blocked feature would re-trap forever (the redirect target is, by
// construction, rarely covered by profiling traces).
func (c *Customizer) DisableBlocks(name string, blocks []coverage.AbsBlock, policy Policy) (Stats, error) {
	blocks = c.filterProtected(blocks)
	if len(blocks) == 0 {
		return Stats{}, fmt.Errorf("core: no blocks to disable for %q", name)
	}
	var applied Stats
	stats, err := c.Rewrite(func(ed *crit.Editor, pids []int) error {
		applied = Stats{} // the closure re-runs on retried attempts
		for _, pid := range pids {
			if err := c.applyPolicy(ed, pid, blocks, policy, &applied); err != nil {
				return err
			}
		}
		return nil
	})
	stats.BlocksPatched = applied.BlocksPatched
	stats.PagesUnmapped = applied.PagesUnmapped
	if err != nil {
		return stats, err
	}
	c.disabled[name] = append([]coverage.AbsBlock(nil), blocks...)
	return stats, nil
}

// filterProtected drops blocks that cover the redirect target.
func (c *Customizer) filterProtected(blocks []coverage.AbsBlock) []coverage.AbsBlock {
	if c.opts.RedirectTo == 0 {
		return blocks
	}
	out := blocks[:0:0]
	for _, b := range blocks {
		if c.opts.RedirectTo >= b.Addr && c.opts.RedirectTo < b.Addr+b.Size {
			continue
		}
		out = append(out, b)
	}
	return out
}

func (c *Customizer) applyPolicy(ed *crit.Editor, pid int, blocks []coverage.AbsBlock, policy Policy, stats *Stats) error {
	switch policy {
	case PolicyBlockEntry:
		for _, b := range blocks {
			if err := c.saveAndPatch(ed, pid, b.Addr, 1); err != nil {
				return err
			}
			stats.BlocksPatched++
		}
	case PolicyWipeBlocks:
		for _, b := range blocks {
			if err := c.saveAndPatch(ed, pid, b.Addr, int(b.Size)); err != nil {
				return err
			}
			stats.BlocksPatched++
		}
	case PolicyUnmapPages:
		full, partial := splitPageCoverage(blocks)
		for _, pr := range full {
			if err := ed.UnmapRange(pid, pr.start, pr.end); err != nil {
				return err
			}
			stats.PagesUnmapped += int((pr.end - pr.start) / kernel.PageSize)
			c.unmapped = append(c.unmapped, pr)
		}
		for _, b := range partial {
			if err := c.saveAndPatch(ed, pid, b.Addr, int(b.Size)); err != nil {
				return err
			}
			stats.BlocksPatched++
		}
	default:
		return fmt.Errorf("core: unknown policy %v", policy)
	}
	return nil
}

// saveAndPatch records the original bytes (once) and overwrites them
// with INT3. In verifier mode the (addr, original-first-byte) pair is
// also published to the in-guest table and the page made writable so
// the handler can self-heal false removals.
func (c *Customizer) saveAndPatch(ed *crit.Editor, pid int, addr uint64, n int) error {
	orig, err := ed.ReadMem(pid, addr, n)
	if err != nil {
		return err
	}
	if _, ok := c.saved[addr]; !ok {
		c.saved[addr] = orig
	}
	fill := make([]byte, n)
	for i := range fill {
		fill[i] = 0xCC
	}
	if err := ed.WriteMem(pid, addr, fill); err != nil {
		return err
	}
	if c.opts.Verifier && c.handler != nil {
		if err := addVerifierEntry(ed, pid, c.handler, c.verifierCount, addr, orig[0]); err != nil {
			return err
		}
		c.verifierCount++
		if err := c.makeTextWritable(ed, pid, addr); err != nil {
			return err
		}
	}
	return nil
}

// makeTextWritable flips the VMA containing addr to RWX in the image
// (verifier mode only: the in-guest handler restores bytes itself).
func (c *Customizer) makeTextWritable(ed *crit.Editor, pid int, addr uint64) error {
	vmas, err := ed.VMAs(pid)
	if err != nil {
		return err
	}
	for _, v := range vmas {
		if addr >= v.Start && addr < v.End {
			if delf.Perm(v.Perm)&delf.PermW != 0 {
				return nil
			}
			return c.setVMAPerm(ed, pid, v.Start, v.Perm|uint8(delf.PermW))
		}
	}
	return fmt.Errorf("core: no VMA at %#x", addr)
}

func (c *Customizer) setVMAPerm(ed *crit.Editor, pid int, start uint64, perm uint8) error {
	pi, err := ed.Set().Proc(pid)
	if err != nil {
		return err
	}
	for i := range pi.MM.VMAs {
		if pi.MM.VMAs[i].Start == start {
			pi.MM.VMAs[i].Perm = perm
			return nil
		}
	}
	return fmt.Errorf("core: VMA at %#x vanished", start)
}

// EnableBlocks restores a previously disabled feature: the saved
// original bytes are written back (the paper's bidirectional
// transformation). Unmapped pages cannot be re-enabled this way.
func (c *Customizer) EnableBlocks(name string) (Stats, error) {
	blocks, ok := c.disabled[name]
	if !ok {
		return Stats{}, fmt.Errorf("%w: %q", ErrNotDisabled, name)
	}
	patched := 0
	stats, err := c.Rewrite(func(ed *crit.Editor, pids []int) error {
		patched = 0 // the closure re-runs on retried attempts
		for _, pid := range pids {
			for _, b := range blocks {
				orig, ok := c.saved[b.Addr]
				if !ok {
					return fmt.Errorf("core: no saved bytes for %#x", b.Addr)
				}
				if err := ed.WriteMem(pid, b.Addr, orig); err != nil {
					return err
				}
				patched++
			}
		}
		return nil
	})
	stats.BlocksPatched = patched
	if err != nil {
		return stats, err
	}
	for _, b := range blocks {
		delete(c.saved, b.Addr)
	}
	delete(c.disabled, name)
	return stats, nil
}

// EnableAll restores every currently disabled feature in a single
// rewrite — the supervisor's "turn everything back on" rung. Features
// whose pages were unmapped (PolicyUnmapPages) cannot be restored
// byte-wise and make EnableAll fail like EnableBlocks would; callers
// needing a guaranteed way back from that state restore images
// instead. With nothing disabled it is a no-op.
func (c *Customizer) EnableAll() (Stats, error) {
	if len(c.disabled) == 0 {
		return Stats{}, nil
	}
	names := make([]string, 0, len(c.disabled))
	for name := range c.disabled {
		names = append(names, name)
	}
	sort.Strings(names)
	patched := 0
	stats, err := c.Rewrite(func(ed *crit.Editor, pids []int) error {
		patched = 0 // the closure re-runs on retried attempts
		for _, pid := range pids {
			for _, name := range names {
				for _, b := range c.disabled[name] {
					orig, ok := c.saved[b.Addr]
					if !ok {
						return fmt.Errorf("core: no saved bytes for %#x (feature %q)", b.Addr, name)
					}
					if err := ed.WriteMem(pid, b.Addr, orig); err != nil {
						return err
					}
					patched++
				}
			}
		}
		return nil
	})
	stats.BlocksPatched = patched
	if err != nil {
		return stats, err
	}
	for _, name := range names {
		for _, b := range c.disabled[name] {
			delete(c.saved, b.Addr)
		}
		delete(c.disabled, name)
	}
	return stats, nil
}

// Checkpoint snapshots the live guest for external keeping (e.g. the
// supervisor's last-good images). The tree is dumped incrementally
// against the customizer's parent chain and — because any dump resets
// the kernel's dirty-page tracking — adopted as the new incremental
// parent, so taking a snapshot here never invalidates the chain the
// next Rewrite depends on. The returned set is flattened: fully
// self-contained, restorable with no ancestry attached. Callers that
// checkpoint outside this method corrupt the incremental pipeline.
func (c *Customizer) Checkpoint() (*criu.ImageSet, error) {
	p, err := c.machine.Process(c.pid)
	if err != nil || p.Exited() {
		return nil, ErrDead
	}
	end := c.span("checkpoint", 0)
	set, err := criu.Dump(c.machine, c.pid, criu.DumpOpts{
		ExecPages: true, Tree: c.opts.Tree, Parent: c.parent,
	})
	end(err)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := set.Validate(c.machine); err != nil {
		// Dirty bitmaps were reset by the dump but the set is not
		// trustworthy: force the next checkpoint to be a full dump.
		c.parent = nil
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	c.parent = set
	flat, err := set.Flatten()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return flat, nil
}

// Rebind re-points the customizer at a guest tree that was restored
// outside its own rewrite cycle — e.g. the supervisor materializing
// its last-good pristine images after the degradation ladder bottoms
// out. All customization bookkeeping is reset to "nothing disabled":
// the restored images predate every edit this instance applied. If
// the images do carry an injected handler, the next rewrite
// re-derives its state from the module table instead of re-injecting.
func (c *Customizer) Rebind(pid int) {
	c.pid = pid
	c.saved = map[uint64][]byte{}
	c.disabled = map[string][]coverage.AbsBlock{}
	c.unmapped = nil
	c.verifierCount = 0
	c.handler = nil
	c.parent = nil
	c.tickCarry = 0
	// The restored tree's text is a fresh expected state; the old
	// oracle described a guest that no longer exists.
	c.oracle = nil
	c.attSealed = false
	_ = c.resealOracle()
}

// Disabled reports the currently disabled block groups.
func (c *Customizer) Disabled() map[string][]coverage.AbsBlock {
	out := make(map[string][]coverage.AbsBlock, len(c.disabled))
	for k, v := range c.disabled {
		out[k] = append([]coverage.AbsBlock(nil), v...)
	}
	return out
}

// DisabledBlockCount returns the total number of disabled blocks.
func (c *Customizer) DisabledBlockCount() int {
	n := 0
	for _, v := range c.disabled {
		n += len(v)
	}
	return n
}

// DisabledBytes returns the total size of disabled block spans plus
// unmapped pages.
func (c *Customizer) DisabledBytes() uint64 {
	var n uint64
	for _, blocks := range c.disabled {
		for _, b := range blocks {
			n += b.Size
		}
	}
	for _, pr := range c.unmapped {
		n += pr.end - pr.start
	}
	return n
}

// TrapHits reads the injected handler's hit counter from the live
// process.
func (c *Customizer) TrapHits() (uint64, error) {
	if c.handler == nil {
		return 0, fmt.Errorf("core: no handler injected")
	}
	p, err := c.machine.Process(c.pid)
	if err != nil {
		return 0, err
	}
	return p.Mem().ReadU64(c.handler.HitsAddr)
}

// FalseRemovals reads the verifier log: addresses whose removal the
// handler reverted at run time (§3.2.3). The log holds at most
// maxVerifierEntries addresses; use FalseRemovalsSeen to detect
// whether the guest healed more than that.
func (c *Customizer) FalseRemovals() ([]uint64, error) {
	out, _, err := c.FalseRemovalsSeen()
	return out, err
}

// FalseRemovalsSeen reads the verifier log and also returns how many
// reverts the guest performed in total. The in-guest handler counts
// every revert in flog_len but stores only the first
// maxVerifierEntries addresses, so seen > len(addrs) means the log
// overflowed and the excess addresses were dropped — surfaced here
// (and as a "verifier.flog.truncated" trace event) rather than
// silently capped.
func (c *Customizer) FalseRemovalsSeen() (addrs []uint64, seen uint64, err error) {
	if c.handler == nil {
		return nil, 0, fmt.Errorf("core: no handler injected")
	}
	p, err := c.machine.Process(c.pid)
	if err != nil {
		return nil, 0, err
	}
	seen, err = p.Mem().ReadU64(c.handler.FLogLen)
	if err != nil {
		return nil, 0, err
	}
	n := seen
	if n > maxVerifierEntries {
		n = maxVerifierEntries
		c.point("verifier.flog.truncated", int64(seen-n))
	}
	addrs = make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		a, err := p.Mem().ReadU64(c.handler.FLog + 8*i)
		if err != nil {
			return nil, 0, err
		}
		addrs = append(addrs, a)
	}
	return addrs, seen, nil
}

// InHandler reports whether any live guest process is currently
// executing inside the injected SIGTRAP handler library. Host-side
// verifier maintenance (AdoptFalseRemovals) rewrites the vtable the
// handler scans; doing that while a guest is mid-scan corrupts the
// lookup, so asynchronous callers (the supervisor's closed loop) must
// defer adoption until the guest is out of the handler.
func (c *Customizer) InHandler() bool {
	if c.handler == nil {
		return false
	}
	for _, p := range c.machine.Processes() {
		if p.Exited() {
			continue
		}
		for _, mod := range p.Modules() {
			if mod.Name == HandlerLibName && mod.Contains(p.RIP()) {
				return true
			}
		}
	}
	return false
}

// AdoptFalseRemovals completes the §3.2.3 validation loop: every
// address the in-guest verifier healed is accepted as wanted code —
// dropped from the disabled bookkeeping so later EnableBlocks /
// DisableBlocks cycles treat it as never removed. The in-guest
// verifier state is reset to match: the false-removal log is cleared
// and the adopted addresses' vtable slots are compacted away, so a
// later adoption cycle cannot re-adopt stale addresses and the
// 256-entry table does not fill one-way across disable/adopt cycles.
// It returns the adopted addresses.
func (c *Customizer) AdoptFalseRemovals() ([]uint64, error) {
	healed, err := c.FalseRemovals()
	if err != nil {
		return nil, err
	}
	healedSet := make(map[uint64]bool, len(healed))
	for _, a := range healed {
		healedSet[a] = true
	}
	for name, blocks := range c.disabled {
		keep := blocks[:0:0]
		for _, b := range blocks {
			if healedSet[b.Addr] {
				delete(c.saved, b.Addr)
				continue
			}
			keep = append(keep, b)
		}
		if len(keep) == 0 {
			delete(c.disabled, name)
		} else {
			c.disabled[name] = keep
		}
	}
	if len(healed) > 0 {
		if err := c.resetGuestVerifier(healedSet); err != nil {
			return healed, fmt.Errorf("core: adopt: %w", err)
		}
		c.point("verifier.adopted", int64(len(healed)))
		// The verifier restored those blocks' bytes in live text: the
		// expected state moved, so the oracle must move with it.
		_ = c.resealOracle()
	}
	return healed, nil
}

// resetGuestVerifier clears the in-guest false-removal log and
// compacts adopted addresses out of the live vtable, restoring
// vtable_len (and the host-side slot cursor) so freed slots are
// reusable. The live guest's memory is authoritative here — the
// handler mutates these words at trap time — and the next checkpoint
// naturally carries the compacted table into the images.
func (c *Customizer) resetGuestVerifier(healedSet map[uint64]bool) error {
	p, err := c.machine.Process(c.pid)
	if err != nil {
		return err
	}
	mem := p.Mem()
	vlen, err := mem.ReadU64(c.handler.VTableLen)
	if err != nil {
		return err
	}
	if vlen > maxVerifierEntries {
		vlen = maxVerifierEntries
	}
	kept := uint64(0)
	for i := uint64(0); i < vlen; i++ {
		addr, err := mem.ReadU64(c.handler.VTable + 16*i)
		if err != nil {
			return err
		}
		if healedSet[addr] {
			continue
		}
		if kept != i {
			orig, err := mem.ReadU64(c.handler.VTable + 16*i + 8)
			if err != nil {
				return err
			}
			if err := mem.WriteU64(c.handler.VTable+16*kept, addr); err != nil {
				return err
			}
			if err := mem.WriteU64(c.handler.VTable+16*kept+8, orig); err != nil {
				return err
			}
		}
		kept++
	}
	// Zero the freed tail so stale entries cannot be matched by a
	// handler racing a partially-updated length (and so the compaction
	// is visible to tests and trace tooling).
	for i := kept; i < vlen; i++ {
		if err := mem.WriteU64(c.handler.VTable+16*i, 0); err != nil {
			return err
		}
		if err := mem.WriteU64(c.handler.VTable+16*i+8, 0); err != nil {
			return err
		}
	}
	if err := mem.WriteU64(c.handler.VTableLen, kept); err != nil {
		return err
	}
	if err := mem.WriteU64(c.handler.FLogLen, 0); err != nil {
		return err
	}
	c.verifierCount = int(kept)
	return nil
}

// splitPageCoverage partitions blocks into page ranges fully covered
// by them (safe to unmap) and leftover blocks (wiped instead).
//
// Coverage profiles routinely contain overlapping blocks (a function
// recorded both whole and as its inner basic blocks), so the covered
// bytes of each page are counted as the measure of the *union* of the
// block spans on it — summing raw lengths would double-count overlaps
// and could declare a partially-covered page full, unmapping live code.
func splitPageCoverage(blocks []coverage.AbsBlock) ([]pageRange, []coverage.AbsBlock) {
	type span struct{ lo, hi uint64 }
	spansOn := map[uint64][]span{} // page -> covered spans on it
	for _, b := range blocks {
		for a := b.Addr; a < b.Addr+b.Size; {
			pn := a / kernel.PageSize
			end := (pn + 1) * kernel.PageSize
			hi := b.Addr + b.Size
			if hi > end {
				hi = end
			}
			spansOn[pn] = append(spansOn[pn], span{lo: a, hi: hi})
			a = hi
		}
	}
	var full []pageRange
	fullSet := map[uint64]bool{}
	for pn, spans := range spansOn {
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		var union, hi uint64
		lo := spans[0].lo
		hi = spans[0].hi
		for _, s := range spans[1:] {
			if s.lo <= hi {
				if s.hi > hi {
					hi = s.hi
				}
				continue
			}
			union += hi - lo
			lo, hi = s.lo, s.hi
		}
		union += hi - lo
		if union >= kernel.PageSize {
			fullSet[pn] = true
		}
	}
	// Coalesce adjacent full pages.
	pns := make([]uint64, 0, len(fullSet))
	for pn := range fullSet {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for i := 0; i < len(pns); {
		j := i
		for j+1 < len(pns) && pns[j+1] == pns[j]+1 {
			j++
		}
		full = append(full, pageRange{
			start: pns[i] * kernel.PageSize,
			end:   (pns[j] + 1) * kernel.PageSize,
		})
		i = j + 1
	}
	var partial []coverage.AbsBlock
	for _, b := range blocks {
		// Keep the sub-spans not inside full pages.
		for a := b.Addr; a < b.Addr+b.Size; {
			pn := a / kernel.PageSize
			end := (pn + 1) * kernel.PageSize
			hi := b.Addr + b.Size
			if hi > end {
				hi = end
			}
			if !fullSet[pn] {
				partial = append(partial, coverage.AbsBlock{Addr: a, Size: hi - a})
			}
			a = hi
		}
	}
	return full, partial
}
