package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/obs"
)

// TestAttestCleanGuestAndRootEvolution: a freshly sealed oracle
// attests clean, the live root equals the oracle root, and committing
// a live patch moves the root (new page digests + new feature set)
// while staying clean.
func TestAttestCleanGuestAndRootEvolution(t *testing.T) {
	_, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9320}, Options{})

	att0, err := c.Attestation()
	if err != nil {
		t.Fatal(err)
	}
	if len(att0.Pages) == 0 {
		t.Fatal("oracle sealed with no text pages")
	}
	rep, err := c.Attest()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("pristine guest attests dirty: %+v", rep.Mismatches)
	}
	if rep.LiveRoot != att0.Root {
		t.Fatalf("live root %x != oracle root %x on a clean guest", rep.LiveRoot[:8], att0.Root[:8])
	}

	stats, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
	if err != nil || !stats.LivePatched {
		t.Fatalf("live disable: %v (stats %+v)", err, stats)
	}
	att1, err := c.Attestation()
	if err != nil {
		t.Fatal(err)
	}
	if att1.Root == att0.Root {
		t.Fatal("root did not move across a committed live patch")
	}
	if len(att1.Features) != 1 || att1.Features[0] != "webdav-write" {
		t.Fatalf("feature set = %v", att1.Features)
	}
	rep, err = c.Attest()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.LiveRoot != att1.Root {
		t.Fatalf("patched guest attests dirty: %d mismatches, live %x want %x",
			len(rep.Mismatches), rep.LiveRoot[:8], att1.Root[:8])
	}
}

// TestAttestDetectsForeignBitflipAndRepairs: a silent one-bit flip in
// a text page is invisible to every loud channel but must show up as
// exactly one foreign mismatch — and the in-place repair must heal it
// with zero downtime (no kill, no restore, PID unchanged).
func TestAttestDetectsForeignBitflipAndRepairs(t *testing.T) {
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9321}, Options{})
	_ = tb
	pidBefore := c.PID()
	p, err := c.machine.Process(c.pid)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the (idle) feature code, not the hot path.
	target := blocks[0].Addr
	if !p.Mem().FlipBits(target, 0x04) {
		t.Fatal("flip refused")
	}

	rep, err := c.Attest()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 1 || rep.Mismatches[0].Verdict != PageForeign {
		t.Fatalf("mismatches = %+v, want one foreign", rep.Mismatches)
	}
	if rep.Mismatches[0].Page != target/kernel.PageSize {
		t.Fatalf("mismatch page %#x, want %#x", rep.Mismatches[0].Page, target/kernel.PageSize)
	}

	// foreign=false leaves it alone.
	rs, err := c.Repair(rep, false)
	if err != nil || rs.Repaired != 0 || rs.Skipped != 1 {
		t.Fatalf("conservative repair: %+v, %v", rs, err)
	}
	// foreign=true heals it in place.
	rs, err = c.Repair(rep, true)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rs.Repaired != 1 {
		t.Fatalf("repaired = %d, want 1", rs.Repaired)
	}
	if c.PID() != pidBefore {
		t.Fatalf("repair changed root PID %d -> %d: a restore leaked in", pidBefore, c.PID())
	}
	rep2, err := c.Attest()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("still diverged after repair: %+v", rep2.Mismatches)
	}
}

// TestAttestClassifiesPriorVersionRepairable: text silently reverted
// to a version the oracle has seen (pristine bytes where a patch
// should be) is repairable, not foreign — the version chain knows it.
func TestAttestClassifiesPriorVersionRepairable(t *testing.T) {
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9322}, Options{})
	_ = tb
	stats, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
	if err != nil || !stats.LivePatched {
		t.Fatalf("live disable: %v (stats %+v)", err, stats)
	}
	// Silently undo every patch byte: the page content returns to its
	// pristine (known prior) version.
	p, err := c.machine.Process(c.pid)
	if err != nil {
		t.Fatal(err)
	}
	for addr, orig := range c.saved {
		if err := p.Mem().Write(addr, orig); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := c.Attest()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("silent un-patch not detected")
	}
	for _, mm := range rep.Mismatches {
		if mm.Verdict != PageRepairable {
			t.Fatalf("mismatch %+v classified %v, want repairable", mm.Page, mm.Verdict)
		}
	}
	// Repairable pages heal without the foreign escalation.
	rs, err := c.Repair(rep, false)
	if err != nil || rs.Repaired != len(rep.Mismatches) {
		t.Fatalf("repair: %+v, %v", rs, err)
	}
	rep2, err := c.Attest()
	if err != nil || !rep2.Clean() {
		t.Fatalf("post-repair attest: %v, %+v", err, rep2.Mismatches)
	}
	// And the feature is enforced again.
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after repair -> %q, want 403 (patch bytes not restored)", got)
	}
}

// TestAttestInjectedBitflipSiteIsSilent: the kernel.text.bitflip site
// corrupts without an error surfacing anywhere — only the sweep sees
// it — and the repair ladder then converges.
func TestAttestInjectedBitflipSiteIsSilent(t *testing.T) {
	tb, _, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9323}, Options{})
	inj := faultinject.New(7)
	inj.FailOnce(faultinject.SiteTextBitflip)
	tb.m.SetFaultHook(inj)
	defer tb.m.SetFaultHook(nil)

	rep, err := c.Attest()
	if err != nil {
		t.Fatalf("attest surfaced an error for a silent fault: %v", err)
	}
	if inj.Injected() == 0 {
		t.Fatal("armed bitflip never fired")
	}
	if rep.Clean() {
		t.Fatal("injected bitflip not detected by the sweep")
	}
	if _, err := c.Repair(rep, true); err != nil {
		t.Fatalf("repair: %v", err)
	}
	rep2, err := c.Attest()
	if err != nil || !rep2.Clean() {
		t.Fatalf("post-repair attest: %v, %+v", err, rep2.Mismatches)
	}
}

// TestRepairFaultUnwindsAndRetries: an injected repair fault fails the
// pass all-or-nothing; a later un-faulted pass heals.
func TestRepairFaultUnwindsAndRetries(t *testing.T) {
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9324}, Options{})
	p, err := c.machine.Process(c.pid)
	if err != nil {
		t.Fatal(err)
	}
	p.Mem().FlipBits(blocks[0].Addr, 0x10)

	inj := faultinject.New(3)
	inj.FailOnce(faultinject.SiteAttestRepair)
	tb.m.SetFaultHook(inj)
	defer tb.m.SetFaultHook(nil)

	rep, err := c.Attest()
	if err != nil || rep.Clean() {
		t.Fatalf("attest: %v clean=%v", err, rep.Clean())
	}
	rs, err := c.Repair(rep, true)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("repair error = %v, want injected", err)
	}
	if rs.Repaired != 0 {
		t.Fatalf("failed repair reported %d repaired pages", rs.Repaired)
	}
	// The fault is spent; the retry heals.
	if _, err := c.Repair(rep, true); err != nil {
		t.Fatalf("retry repair: %v", err)
	}
	rep2, err := c.Attest()
	if err != nil || !rep2.Clean() {
		t.Fatalf("post-retry attest: %v, %+v", err, rep2.Mismatches)
	}
}

// TestRepairSurvivesRottenExpectedBlob: when the store blob for the
// expected digest itself has rotted, repair falls back to a prior
// version re-overlaid with the recorded patched bytes — Materialize
// the pristine blob, re-apply the deltas, verify.
func TestRepairSurvivesRottenExpectedBlob(t *testing.T) {
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9325}, Options{})
	stats, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
	if err != nil || !stats.LivePatched {
		t.Fatalf("live disable: %v (stats %+v)", err, stats)
	}
	p, err := c.machine.Process(c.pid)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one patched page's live bytes.
	p.Mem().FlipBits(blocks[0].Addr, 0x20)

	// Rot the expected blob on its first read: repair's primary source
	// dies, the pristine+overlay fallback must carry it.
	inj := faultinject.New(11)
	inj.FailOnce(faultinject.SiteStoreRot)
	c.attestStore().SetFaultHook(inj)
	defer c.attestStore().SetFaultHook(nil)
	_ = tb

	rep, err := c.Attest()
	if err != nil || rep.Clean() {
		t.Fatalf("attest: %v clean=%v", err, rep.Clean())
	}
	rs, err := c.Repair(rep, true)
	if err != nil {
		t.Fatalf("repair through rotten expected blob: %v", err)
	}
	if rs.Repaired == 0 {
		t.Fatal("nothing repaired")
	}
	if inj.Injected() == 0 {
		t.Fatal("armed rot fault never fired")
	}
	rep2, err := c.Attest()
	if err != nil || !rep2.Clean() {
		t.Fatalf("post-repair attest: %v, %+v", err, rep2.Mismatches)
	}
}

// TestAttestObserverSpans: every sweep and repair decision lands in
// the observer stream.
func TestAttestObserverSpans(t *testing.T) {
	obsv := obs.New(0)
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9326}, Options{Observer: obsv})
	_ = tb
	p, err := c.machine.Process(c.pid)
	if err != nil {
		t.Fatal(err)
	}
	p.Mem().FlipBits(blocks[0].Addr, 0x08)
	rep, err := c.Attest()
	if err != nil || rep.Clean() {
		t.Fatalf("attest: %v clean=%v", err, rep.Clean())
	}
	if _, err := c.Repair(rep, true); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"attest": false, "attest.mismatch": false, "attest.repair": false, "attest.repair.page": false}
	for _, ev := range obsv.Events() {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %q event emitted", name)
		}
	}
}

// TestAttestLiveRootMatchesOracleAndReport: LiveRoot is the cheap
// probe a fleet sweep collects — it must equal the oracle root on a
// clean guest and the full report's LiveRoot always. The report's
// verdict counters and the verdict names ride along.
func TestAttestLiveRootMatchesOracleAndReport(t *testing.T) {
	tb, _, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9327}, Options{})

	att, err := c.Attestation()
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.LiveRoot()
	if err != nil {
		t.Fatal(err)
	}
	if lr != att.Root {
		t.Fatalf("clean guest: LiveRoot %x != oracle root %x", lr[:8], att.Root[:8])
	}

	// Flip a text bit by hand: LiveRoot moves, the report classifies
	// the page foreign, and the counters agree.
	var pn uint64
	for p := range att.Pages {
		pn = p
		break
	}
	proc, err := tb.m.Process(c.PID())
	if err != nil {
		t.Fatal(err)
	}
	if !proc.Mem().FlipBits(pn*kernel.PageSize+9, 0x20) {
		t.Fatal("FlipBits refused the oracle page")
	}
	lr2, err := c.LiveRoot()
	if err != nil {
		t.Fatal(err)
	}
	if lr2 == att.Root {
		t.Fatal("LiveRoot blind to a flipped text bit")
	}
	rep, err := c.Attest()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveRoot != lr2 {
		t.Fatal("Attest's LiveRoot disagrees with LiveRoot()")
	}
	if rep.Foreign() != 1 || rep.Repairable() != 0 || rep.Clean() {
		t.Fatalf("verdict counters: foreign=%d repairable=%d clean=%v, want 1/0/false",
			rep.Foreign(), rep.Repairable(), rep.Clean())
	}
	for _, m := range rep.Mismatches {
		if m.Verdict.String() != "foreign" {
			t.Fatalf("verdict name = %q, want foreign", m.Verdict.String())
		}
	}
	if PageClean.String() != "clean" || PageRepairable.String() != "repairable" {
		t.Fatal("PageVerdict names wrong")
	}
}
