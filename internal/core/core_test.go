package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/trace"
)

// testbed is a booted, traced web server with phase-separated
// coverage: the full §3.1 profiling workflow.
type testbed struct {
	m       *kernel.Machine
	app     *webserv.App
	proc    *kernel.Process
	col     *trace.Collector
	initLog *trace.Log
}

func newTestbed(t *testing.T, cfg webserv.Config) *testbed {
	t.Helper()
	return newTestbedExec(t, cfg, kernel.ModeInterpret)
}

// newTestbedExec boots the testbed under the chosen execution engine;
// the chaos suites run both interpreted and through the block cache.
func newTestbedExec(t *testing.T, cfg webserv.Config, mode kernel.ExecMode) *testbed {
	t.Helper()
	app, err := webserv.Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := kernel.NewMachine()
	m.SetExecMode(mode)
	col := trace.NewCollector(app.Config.Name)
	m.SetTracer(col)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	tb := &testbed{m: m, app: app, proc: p, col: col}
	m.SetNudgeFunc(func(pid int, arg uint64) {
		if tb.initLog == nil {
			pr, err := m.Process(pid)
			if err != nil {
				return
			}
			tb.initLog = col.SnapshotAndReset(pr.Modules(), "init")
		}
	})
	if !m.RunUntil(func() bool { return tb.initLog != nil }, 10_000_000) {
		t.Fatalf("boot: nudge never fired; exited=%v killed=%v", p.Exited(), p.KilledBy())
	}
	m.Run(10000)
	return tb
}

// request sends one request and returns the response.
func (tb *testbed) request(t *testing.T, req string) string {
	t.Helper()
	conn, err := tb.m.Dial(tb.app.Config.Port)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	tb.m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
	tb.m.Run(20000)
	return string(conn.ReadAll())
}

// snapshotPhase captures and clears the coverage of the requests
// driven since the last snapshot.
func (tb *testbed) snapshotPhase(t *testing.T, phase string) *coverage.Graph {
	t.Helper()
	procs := tb.m.Processes()
	if len(procs) == 0 {
		t.Fatal("no live processes")
	}
	return coverage.FromLog(tb.col.SnapshotAndReset(procs[0].Modules(), phase))
}

// profileFeatures drives wanted and undesired request sets and
// returns the identified feature-unique blocks.
func (tb *testbed) profileFeatures(t *testing.T, wanted, undesired []string) []coverage.AbsBlock {
	t.Helper()
	tb.col.Reset()
	for _, r := range wanted {
		tb.request(t, r)
	}
	covWanted := tb.snapshotPhase(t, "wanted")
	for _, r := range undesired {
		tb.request(t, r)
	}
	covUndesired := tb.snapshotPhase(t, "undesired")
	return IdentifyFeatureBlocks(covUndesired, covWanted, tb.app.Config.Name)
}

var (
	wantedReqs    = []string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"}
	undesiredReqs = []string{"PUT /f data\n", "DELETE /f\n"}
)

func (tb *testbed) errPathAddr(t *testing.T) uint64 {
	t.Helper()
	sym, err := tb.app.Exe.Symbol("resp_403")
	if err != nil {
		t.Fatal(err)
	}
	return sym.Value
}

// TestDisableFeatureRedirectsTo403 is the paper's headline flow
// (Figure 5): identify PUT/DELETE blocks by trace diff, block them
// with INT3 via process rewriting, redirect accidental access to the
// 403 responder, and keep serving GETs without restarting.
func TestDisableFeatureRedirectsTo403(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8080})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	if len(blocks) == 0 {
		t.Fatal("no feature blocks identified")
	}

	c, err := New(tb.m, tb.proc.PID(), Options{RedirectTo: tb.errPathAddr(t)})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatalf("disable: %v", err)
	}
	if stats.BlocksPatched != len(blocks) {
		t.Errorf("patched %d, want %d", stats.BlocksPatched, len(blocks))
	}
	if stats.ImageBytes == 0 || stats.Total() <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}

	// Blocked features now return 403 — and the server stays up.
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after disable -> %q, want 403", got)
	}
	if got := tb.request(t, "DELETE /f\n"); !strings.Contains(got, "403") {
		t.Fatalf("DELETE after disable -> %q, want 403", got)
	}
	// Wanted features unaffected.
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET after disable -> %q", got)
	}
	if got := tb.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("POST after disable -> %q", got)
	}
	hits, err := c.TrapHits()
	if err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Errorf("trap hits = %d, want 2", hits)
	}

	// Re-enable (the bidirectional transformation) and verify PUT works.
	if _, err := c.EnableBlocks("webdav-write"); err != nil {
		t.Fatalf("enable: %v", err)
	}
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT after re-enable -> %q, want 201", got)
	}
	if got := tb.request(t, "GET /f\n"); !strings.Contains(got, "data") {
		t.Fatalf("GET stored file -> %q", got)
	}
	if c.DisabledBlockCount() != 0 {
		t.Errorf("blocks still recorded as disabled: %v", c.Disabled())
	}
}

// TestInitCodeRemoval removes initialization-only blocks after boot
// and checks the serving path is untouched while re-running init code
// would trap.
func TestInitCodeRemoval(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8081, InitRoutines: 10})
	// Drive serving traffic to populate the post-init phase.
	for _, r := range wantedReqs {
		tb.request(t, r)
	}
	serving := tb.snapshotPhase(t, "serving")
	initBlocks := IdentifyInitBlocks(coverage.FromLog(tb.initLog), serving, "lighttpd")
	if len(initBlocks) == 0 {
		t.Fatal("no init-only blocks found")
	}

	c, err := New(tb.m, tb.proc.PID(), Options{RedirectTo: tb.errPathAddr(t)})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.DisableBlocks("init", initBlocks, PolicyWipeBlocks)
	if err != nil {
		t.Fatalf("remove init: %v", err)
	}
	if stats.BlocksPatched != len(initBlocks) {
		t.Errorf("wiped %d, want %d", stats.BlocksPatched, len(initBlocks))
	}
	// Serving continues.
	for _, r := range append(wantedReqs, undesiredReqs...) {
		if got := tb.request(t, r); got == "" {
			t.Fatalf("no response to %q after init removal", r)
		}
	}
	// The init chain's blocks really are gone: their bytes are INT3.
	p := tb.m.Processes()[0]
	sym, err := tb.app.Exe.Symbol("init_0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Mem().Read(sym.Value, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xCC {
		t.Errorf("init_0 first byte = %#x, want CC", b[0])
	}
	if c.DisabledBytes() == 0 {
		t.Error("DisabledBytes = 0")
	}
}

// TestUnmapPolicy removes init code at page granularity.
func TestUnmapPolicy(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8082, InitRoutines: 200})
	for _, r := range wantedReqs {
		tb.request(t, r)
	}
	serving := tb.snapshotPhase(t, "serving")
	initBlocks := IdentifyInitBlocks(coverage.FromLog(tb.initLog), serving, "lighttpd")
	c, err := New(tb.m, tb.proc.PID(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.DisableBlocks("init", initBlocks, PolicyUnmapPages)
	if err != nil {
		t.Fatalf("unmap: %v", err)
	}
	if stats.PagesUnmapped == 0 {
		t.Skip("init chain did not fully cover a page; nothing to unmap")
	}
	// Serving still works after whole pages vanished.
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET after unmap -> %q", got)
	}
}

// TestVerifierModeSelfHeals plants a false positive: a wanted block
// is disabled, verifier mode restores it in place on first access and
// logs the address (§3.2.3).
func TestVerifierModeSelfHeals(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8083})
	// Deliberately misclassify POST as undesired: profile without
	// POST in the wanted set.
	blocks := tb.profileFeatures(t,
		[]string{"GET /\n", "HEAD /\n"},
		[]string{"PUT /f x\n", "POST /\n"})
	c, err := New(tb.m, tb.proc.PID(), Options{
		RedirectTo: tb.errPathAddr(t),
		Verifier:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DisableBlocks("suspect", blocks, PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	// POST was falsely removed; under the verifier it must still
	// succeed (trap → restore byte → retry).
	if got := tb.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("POST under verifier -> %q, want 200", got)
	}
	false1, err := c.FalseRemovals()
	if err != nil {
		t.Fatal(err)
	}
	if len(false1) == 0 {
		t.Fatal("no false removals logged")
	}
	// A second POST must not trap again (the byte was restored).
	before, _ := c.TrapHits()
	if got := tb.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("second POST -> %q", got)
	}
	after, _ := c.TrapHits()
	if beforeHits, afterHits := before, after; afterHits != beforeHits {
		t.Errorf("second POST trapped again: hits %d -> %d", beforeHits, afterHits)
	}
	// The verifier never terminates the program: PUT also self-heals
	// and is logged, so the operator can see which removals were
	// exercised during validation (§3.2.3 restores the original
	// instructions for every trapped address).
	if got := tb.request(t, "PUT /f x\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT under verifier -> %q, want self-healed 201", got)
	}
	false2, err := c.FalseRemovals()
	if err != nil {
		t.Fatal(err)
	}
	if len(false2) <= len(false1) {
		t.Errorf("PUT access not logged: %d -> %d entries", len(false1), len(false2))
	}

	// Complete the validation loop: healed addresses get adopted into
	// the wanted set, so they no longer count as disabled.
	disabledBefore := c.DisabledBlockCount()
	adopted, err := c.AdoptFalseRemovals()
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != len(false2) {
		t.Errorf("adopted %d, logged %d", len(adopted), len(false2))
	}
	if after := c.DisabledBlockCount(); after >= disabledBefore {
		t.Errorf("disabled count %d -> %d after adoption", disabledBefore, after)
	}
}

// TestMultiProcessRewrite customizes an Nginx-style master/worker
// tree: the paper iterates through each process's memory space.
func TestMultiProcessRewrite(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "nginx", Port: 8084, Workers: 2})
	if len(tb.m.Processes()) != 3 {
		t.Fatalf("procs = %d, want master+2 workers", len(tb.m.Processes()))
	}
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	c, err := New(tb.m, tb.proc.PID(), Options{
		Tree:       true,
		RedirectTo: tb.errPathAddr(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry); err != nil {
		t.Fatalf("disable tree: %v", err)
	}
	if n := len(tb.m.Processes()); n != 3 {
		t.Fatalf("procs after rewrite = %d, want 3", n)
	}
	// Whichever worker picks up the request, PUT must be blocked.
	for i := 0; i < 4; i++ {
		if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
			t.Fatalf("PUT %d -> %q", i, got)
		}
		if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
			t.Fatalf("GET %d -> %q", i, got)
		}
	}
}

// TestRewriteKeepsLiveConnection: a connection opened before the
// rewrite keeps working afterwards (TCP repair through the cycle).
func TestRewriteKeepsLiveConnection(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8085})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)

	conn, err := tb.m.Dial(tb.app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	tb.m.Run(50000) // server accepts, blocks in read

	c, err := New(tb.m, tb.proc.PID(), Options{RedirectTo: tb.errPathAddr(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	// The pre-rewrite connection answers after the rewrite.
	if _, err := conn.Write([]byte("GET /\n")); err != nil {
		t.Fatal(err)
	}
	tb.m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 }, 2_000_000)
	if got := string(conn.ReadAll()); !strings.Contains(got, "200") {
		t.Fatalf("pre-rewrite connection -> %q", got)
	}
}

func TestCustomizerErrors(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8086})
	c, err := New(tb.m, tb.proc.PID(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DisableBlocks("empty", nil, PolicyBlockEntry); err == nil {
		t.Error("empty block list accepted")
	}
	if _, err := c.EnableBlocks("never-disabled"); err == nil {
		t.Error("enabling unknown feature succeeded")
	}
	if _, err := c.DisableBlocks("bad", []coverage.AbsBlock{{Addr: 0x400000, Size: 1}}, Policy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
	// Rewriting a dead process fails cleanly.
	if err := tb.m.Kill(c.PID()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DisableBlocks("late", []coverage.AbsBlock{{Addr: 0x400000, Size: 1}}, PolicyBlockEntry); err == nil {
		t.Error("rewrite of dead process succeeded")
	}
}

func TestServiceInterruptionChargesVirtualClock(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8087})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	c, err := New(tb.m, tb.proc.PID(), Options{
		RedirectTo:     tb.errPathAddr(t),
		TicksPerSecond: 100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := tb.m.Clock()
	if _, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	if tb.m.Clock() <= before {
		t.Error("virtual clock not charged for the rewrite window")
	}
}

// TestBeforeCommitAbortsWithGuestUntouched proves the fleet halt
// contract: a BeforeCommit veto stops the rewrite before anything is
// killed, the guest keeps serving its old code, and bookkeeping is
// back to the pre-rewrite snapshot so a later rewrite starts clean.
func TestBeforeCommitAbortsWithGuestUntouched(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8080})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)

	halted := true
	var outcomes []error
	c, err := New(tb.m, tb.proc.PID(), Options{
		RedirectTo: tb.errPathAddr(t),
		BeforeCommit: func(attempt int) error {
			if halted {
				return errors.New("rollout halted")
			}
			return nil
		},
		OnOutcome: func(s Stats, err error) { outcomes = append(outcomes, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	pidBefore := c.PID()

	_, err = c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("halted rewrite error = %v, want ErrAborted", err)
	}
	if c.PID() != pidBefore {
		t.Fatalf("abort changed the root PID: %d -> %d", pidBefore, c.PID())
	}
	// The guest was never touched: the undesired feature still works.
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT after aborted rewrite -> %q, want untouched 201", got)
	}

	// Lift the halt: the same customizer commits cleanly.
	halted = false
	stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatalf("rewrite after abort: %v", err)
	}
	if stats.BlocksPatched != len(blocks) {
		t.Errorf("patched %d blocks, want %d", stats.BlocksPatched, len(blocks))
	}
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after commit -> %q, want 403", got)
	}

	if len(outcomes) != 2 || !errors.Is(outcomes[0], ErrAborted) || outcomes[1] != nil {
		t.Fatalf("OnOutcome saw %v, want [ErrAborted nil]", outcomes)
	}
}
