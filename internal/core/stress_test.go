package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/coverage"
)

// TestStressLargeServerFullLifecycle runs the whole DynaCut lifecycle
// against a much larger guest: 40 extra features and 300 init
// routines, repeated enable/disable cycles, init removal, syscall
// restriction — the kind of sustained churn a long-lived deployment
// would see.
func TestStressLargeServerFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := newTestbed(t, webserv.Config{
		Name: "lighttpd", Port: 8099,
		ExtraFeatures: 40, InitRoutines: 300,
	})

	// Drive a broad wanted workload: core methods + half the features.
	wanted := append([]string{}, wantedReqs...)
	for i := 0; i < 20; i++ {
		wanted = append(wanted, fmt.Sprintf("X%d /\n", i))
	}
	blocks := tb.profileFeatures(t, wanted, undesiredReqs)
	if len(blocks) == 0 {
		t.Fatal("no feature blocks")
	}
	serving := tb.snapshotPhase(t, "post-profile")
	initOnly := IdentifyInitBlocks(coverage.FromLog(tb.initLog), serving, "lighttpd")
	if len(initOnly) < 250 {
		t.Fatalf("init blocks = %d, expected the 300-routine chain", len(initOnly))
	}

	c, err := New(tb.m, tb.proc.PID(), Options{RedirectTo: mustErrAddr(t, tb)})
	if err != nil {
		t.Fatal(err)
	}

	// Ten disable/enable churn cycles.
	for cycle := 0; cycle < 10; cycle++ {
		if _, err := c.DisableBlocks("webdav", blocks, PolicyBlockEntry); err != nil {
			t.Fatalf("cycle %d disable: %v", cycle, err)
		}
		if got := tb.request(t, "PUT /f x\n"); !strings.Contains(got, "403") {
			t.Fatalf("cycle %d: PUT -> %q", cycle, got)
		}
		if got := tb.request(t, fmt.Sprintf("X%d /\n", cycle)); !strings.Contains(got, "210") {
			t.Fatalf("cycle %d: feature -> %q", cycle, got)
		}
		if _, err := c.EnableBlocks("webdav"); err != nil {
			t.Fatalf("cycle %d enable: %v", cycle, err)
		}
		if got := tb.request(t, "PUT /f x\n"); !strings.Contains(got, "201") {
			t.Fatalf("cycle %d: PUT after enable -> %q", cycle, got)
		}
	}

	// Remove the big init chain.
	stats, err := c.DisableBlocks("init", initOnly, PolicyWipeBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksPatched != len(initOnly) {
		t.Errorf("wiped %d of %d", stats.BlocksPatched, len(initOnly))
	}

	// Then lock down the syscall surface.
	if _, err := c.RestrictSyscalls(ServingSyscalls); err != nil {
		t.Fatal(err)
	}

	// The fully customized server still serves everything wanted.
	for _, r := range wanted {
		if got := tb.request(t, r); got == "" || strings.Contains(got, "403") {
			t.Fatalf("post-lockdown %q -> %q", r, got)
		}
	}
	if len(tb.m.Processes()) == 0 {
		t.Fatal("server died during stress")
	}
}

func mustErrAddr(t *testing.T, tb *testbed) uint64 {
	t.Helper()
	sym, err := tb.app.Exe.Symbol("resp_403")
	if err != nil {
		t.Fatal(err)
	}
	return sym.Value
}
