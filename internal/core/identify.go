package core

import (
	"sort"

	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/disasm"
)

// Identification helpers (§3.1): pure set arithmetic over coverage
// graphs, resolved back to absolute target addresses.

// IdentifyFeatureBlocks computes the undesired feature's unique
// blocks: present in the undesired-request traces, absent from the
// wanted-request traces, and inside the program module (library
// blocks are filtered out, Figure 4).
func IdentifyFeatureBlocks(undesired, wanted *coverage.Graph, program string) []coverage.AbsBlock {
	d := coverage.Diff(undesired, wanted)
	d = d.FilterModules(func(m string) bool { return m == program })
	return d.Absolute()
}

// IdentifyInitBlocks computes the initialization-only blocks: covered
// before the nudge, never covered after it.
func IdentifyInitBlocks(initPhase, serving *coverage.Graph, program string) []coverage.AbsBlock {
	d := coverage.Diff(initPhase, serving)
	d = d.FilterModules(func(m string) bool { return m == program })
	return d.Absolute()
}

// IdentifyUnexecutedBlocks computes the statically known blocks that
// no trace ever covered (Figure 2's gray blocks) — what a static
// debloater removes. Static CFG addresses are the linked absolute
// addresses of the executable; coverage of the program module is
// matched byte-wise so dynamic blocks that span several static
// blocks (fall-through into a function label) still count.
func IdentifyUnexecutedBlocks(cfg *disasm.CFG, executed *coverage.Graph, program string) []coverage.AbsBlock {
	base, haveBase := executed.ModuleBase(program)
	type span struct{ lo, hi uint64 }
	var covered []span
	for _, b := range executed.Blocks() {
		if b.Module != program {
			continue
		}
		covered = append(covered, span{lo: b.Off, hi: b.Off + b.Size})
	}
	sort.Slice(covered, func(i, j int) bool { return covered[i].lo < covered[j].lo })
	isCovered := func(off uint64) bool {
		for _, s := range covered {
			if s.lo > off {
				return false
			}
			if off < s.hi {
				return true
			}
		}
		return false
	}
	var out []coverage.AbsBlock
	for _, b := range cfg.Sorted() {
		rel := b.Addr
		if haveBase {
			rel = b.Addr - base
		}
		if isCovered(rel) {
			continue
		}
		out = append(out, coverage.AbsBlock{Addr: b.Addr, Size: b.Size})
	}
	return out
}
