package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// TestVerifierTableExhaustionRecovers fills the in-guest verifier
// table to its 256-entry capacity, proves the next verifier-tracked
// disable is refused without touching the guest, then recovers: the
// guest self-heals a misclassified feature, adoption compacts the
// freed slots out of the live vtable, and DisableBlocks under the
// verifier succeeds again (regression: before AdoptFalseRemovals
// reset the guest state, slots filled one-way across disable/adopt
// cycles and the table eventually wedged).
func TestVerifierTableExhaustionRecovers(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8187})
	// POST is deliberately misclassified so it will trap and heal.
	postBlocks := tb.profileFeatures(t, []string{"GET /\n", "HEAD /\n"}, []string{"POST /\n"})
	if len(postBlocks) == 0 || len(postBlocks) >= maxVerifierEntries {
		t.Fatalf("unusable POST block count %d", len(postBlocks))
	}
	c, err := New(tb.m, tb.proc.PID(), Options{
		RedirectTo: tb.errPathAddr(t),
		Verifier:   true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fill the remaining capacity with 1-byte blocks inside the file
	// store: real, patchable guest memory that no test request
	// executes or reads, so the INT3s are inert.
	storeSym, err := tb.app.Exe.Symbol("filestore")
	if err != nil {
		t.Fatal(err)
	}
	filler := make([]coverage.AbsBlock, maxVerifierEntries-len(postBlocks))
	for i := range filler {
		filler[i] = coverage.AbsBlock{Addr: storeSym.Value + uint64(i), Size: 1}
	}
	if _, err := c.DisableBlocks("filler", filler, PolicyBlockEntry); err != nil {
		t.Fatalf("filler disable: %v", err)
	}
	if _, err := c.DisableBlocks("suspect", postBlocks, PolicyBlockEntry); err != nil {
		t.Fatalf("suspect disable: %v", err)
	}

	// The table is now full: one more tracked entry must be refused —
	// pre-commit, with the guest untouched and still serving.
	overflow := []coverage.AbsBlock{{Addr: storeSym.Value + uint64(len(filler)), Size: 1}}
	if _, err := c.DisableBlocks("overflow", overflow, PolicyBlockEntry); err == nil {
		t.Fatal("257th verifier entry accepted")
	} else if !strings.Contains(err.Error(), "verifier table full") {
		t.Fatalf("overflow error = %v, want verifier-table-full", err)
	}
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET after refused overflow -> %q, want 200", got)
	}

	// The misclassified POST self-heals; every healed address frees a
	// vtable slot at adoption.
	if got := tb.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("POST under verifier -> %q, want 200", got)
	}
	adopted, err := c.AdoptFalseRemovals()
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) == 0 {
		t.Fatal("nothing adopted")
	}

	// The live guest table must reflect the compaction exactly.
	p, err := tb.m.Process(c.PID())
	if err != nil {
		t.Fatal(err)
	}
	vlen, err := p.Mem().ReadU64(c.Handler().VTableLen)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(maxVerifierEntries - len(adopted)); vlen != want {
		t.Errorf("guest vtable_len = %d after adoption, want %d", vlen, want)
	}
	if flen, _ := p.Mem().ReadU64(c.Handler().FLogLen); flen != 0 {
		t.Errorf("guest flog_len = %d after adoption, want 0", flen)
	}

	// The freed slots are reusable: verifier-tracked disables work
	// again, and the guest still serves.
	if _, err := c.DisableBlocks("overflow", overflow, PolicyBlockEntry); err != nil {
		t.Fatalf("disable after adoption freed slots: %v", err)
	}
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET after recovery -> %q, want 200", got)
	}
	// And the adopted feature stays adopted: POST serves without a
	// fresh trap.
	before, _ := c.TrapHits()
	if got := tb.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("POST after adoption -> %q, want 200", got)
	}
	if after, _ := c.TrapHits(); after != before {
		t.Errorf("adopted POST trapped again: hits %d -> %d", before, after)
	}
}

// TestInjectHandlerUnwindsOnArmFailure: a fault between mapping the
// handler library and arming its sigaction must unwind the freshly
// inserted mapping from the image — a failed injection may not leave
// an orphaned, handle-less library behind — and a clean retry on the
// same editor must succeed.
func TestInjectHandlerUnwindsOnArmFailure(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8188})
	in := faultinject.New(1)
	in.FailOnce(faultinject.SiteInjectArm)
	tb.m.SetFaultHook(in)

	set, err := criu.Dump(tb.m, tb.proc.PID(), criu.DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	ed := crit.NewEditor(set, tb.m)
	lib, err := BuildHandlerLib()
	if err != nil {
		t.Fatal(err)
	}
	pid := tb.proc.PID()
	vmasBefore, err := ed.VMAs(pid)
	if err != nil {
		t.Fatal(err)
	}

	_, err = injectHandler(ed, pid, lib, 0)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("arm fault not surfaced: %v", err)
	}
	if strings.Contains(err.Error(), "leaked") {
		t.Fatalf("unwind reported a leak: %v", err)
	}
	if _, err := ed.FindModule(pid, HandlerLibName); err == nil {
		t.Fatal("handler module still in image after failed arm")
	}
	vmasAfter, err := ed.VMAs(pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(vmasAfter) != len(vmasBefore) {
		t.Fatalf("VMA count %d -> %d: failed injection leaked mappings",
			len(vmasBefore), len(vmasAfter))
	}
	for _, v := range vmasAfter {
		if strings.HasPrefix(v.Name, HandlerLibName+":") {
			t.Fatalf("leaked handler VMA %q [%#x,%#x)", v.Name, v.Start, v.End)
		}
	}
	// The sigaction must not have been armed on the half-injected
	// image either.
	pi, err := set.Proc(pid)
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range pi.Core.Sigs {
		if sig.Signo == 5 && sig.Handler != 0 {
			t.Fatalf("SIGTRAP sigaction armed (%#x) despite failed injection", sig.Handler)
		}
	}

	// The unwound image is healthy: a clean retry succeeds and every
	// export resolves.
	h, err := injectHandler(ed, pid, lib, 0)
	if err != nil {
		t.Fatalf("retry after unwind: %v", err)
	}
	for name, addr := range map[string]uint64{
		"handler": h.HandlerAddr, "restorer": h.RestorerAddr,
		"hits": h.HitsAddr, "vtable": h.VTable, "flog": h.FLog,
	} {
		if addr == 0 {
			t.Errorf("retry left export %q unresolved", name)
		}
	}
	if err := set.Validate(tb.m); err != nil {
		t.Fatalf("image set invalid after unwind+retry: %v", err)
	}
}

// TestDisableRetriesThroughArmFault: end-to-end, a transient arm
// fault inside DisableBlocks is retried by the rewrite transaction
// and commits with exactly one handler mapping — the unwind keeps
// attempt N's leak out of attempt N+1's images.
func TestDisableRetriesThroughArmFault(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8189})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	in := faultinject.New(2)
	in.FailOnce(faultinject.SiteInjectArm)
	tb.m.SetFaultHook(in)

	c, err := New(tb.m, tb.proc.PID(), Options{
		RedirectTo:  tb.errPathAddr(t),
		MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.DisableBlocks("webdav", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatalf("disable with transient arm fault: %v", err)
	}
	if stats.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (first arm faulted)", stats.Attempts)
	}
	if got := tb.request(t, "PUT /f x\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after disable -> %q, want 403", got)
	}
	tb.m.Run(1000)
	// Exactly one handler module in the committed guest.
	procs := tb.m.Processes()
	if len(procs) == 0 {
		t.Fatal("guest died")
	}
	n := 0
	for _, mod := range procs[0].Modules() {
		if mod.Name == HandlerLibName {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d handler modules mapped, want exactly 1", n)
	}
}

// TestChargeCapsSchedulingOutliers: the virtual-tick charge for a
// rewrite's downtime is measured wall time, so a descheduled host can
// inflate it arbitrarily; MaxChargeTicks bounds the damage and drops
// (not defers) the outlier's excess.
func TestChargeCapsSchedulingOutliers(t *testing.T) {
	m := kernel.NewMachine()
	c := &Customizer{machine: m, opts: Options{
		TicksPerSecond: 1_000_000,
		MaxChargeTicks: 500,
	}}
	before := m.Clock()
	c.charge(Stats{Downtime: 3 * time.Second}) // would be 3M ticks uncapped
	if got := m.Clock() - before; got != 500 {
		t.Fatalf("outlier charged %d ticks, want capped 500", got)
	}
	if c.tickCarry != 0 {
		t.Fatalf("capped charge deferred %v ticks of excess", c.tickCarry)
	}
	// Under the cap, charges are unaffected and sub-tick carry works.
	before = m.Clock()
	c.charge(Stats{Downtime: 100 * time.Microsecond})
	if got := m.Clock() - before; got != 100 {
		t.Fatalf("normal charge = %d ticks, want 100", got)
	}
}
