package core

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/coverage"
)

// TestLibraryCodeCustomization exercises the paper's §5 extension:
// customizing *shared library* code, not just the application binary.
// The libc-like library carries initialization-only code (libc_init,
// mirroring glibc's startup work); after boot it is dead weight and
// can be wiped from the process image like any other init code.
func TestLibraryCodeCustomization(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 8090})
	for _, r := range wantedReqs {
		tb.request(t, r)
	}
	serving := tb.snapshotPhase(t, "serving")

	// Same diff as always, but filtered to the library module.
	libBlocks := IdentifyInitBlocks(coverage.FromLog(tb.initLog), serving, "libc.so")
	if len(libBlocks) == 0 {
		t.Fatal("no init-only blocks found inside libc.so")
	}

	c, err := New(tb.m, tb.proc.PID(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.DisableBlocks("libc-init", libBlocks, PolicyWipeBlocks)
	if err != nil {
		t.Fatalf("wipe libc init: %v", err)
	}
	if stats.BlocksPatched != len(libBlocks) {
		t.Errorf("patched %d, want %d", stats.BlocksPatched, len(libBlocks))
	}

	// The serving path (which calls write/read/accept/... in the same
	// library) is untouched.
	for _, r := range wantedReqs {
		if got := tb.request(t, r); got == "" {
			t.Fatalf("no response to %q after libc customization", r)
		}
	}
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET -> %q", got)
	}

	// libc_init itself is now INT3 in the live process.
	p := tb.m.Processes()[0]
	mod, ok := p.ModuleAt(0x10000000)
	if !ok || mod.Name != "libc.so" {
		t.Fatalf("libc module lookup: %v %v", mod, ok)
	}
	lib := tb.app.Libc
	sym, err := lib.Symbol("libc_init")
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := lib.ImageSpan()
	addr := mod.Lo - lo + sym.Value
	b, err := p.Mem().Read(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xCC {
		t.Errorf("libc_init first byte = %#x, want CC", b[0])
	}
}

// TestIdentifyHelpers pins down the identification set arithmetic on
// hand-built graphs.
func TestIdentifyHelpers(t *testing.T) {
	mkLog := func(blocks ...coverage.Block) *coverage.Graph {
		g := coverage.NewGraph()
		for _, b := range blocks {
			g.Add(b)
		}
		return g
	}
	undesired := mkLog(
		coverage.Block{Module: "app", Off: 0x10, Size: 5},
		coverage.Block{Module: "app", Off: 0x20, Size: 5},
		coverage.Block{Module: "libc.so", Off: 0x30, Size: 5},
	)
	wanted := mkLog(coverage.Block{Module: "app", Off: 0x10, Size: 5})
	blocks := IdentifyFeatureBlocks(undesired, wanted, "app")
	// Only app:0x20 survives: 0x10 is shared, libc is filtered.
	if len(blocks) != 1 {
		t.Fatalf("feature blocks = %+v", blocks)
	}
	// Module base unknown for hand-built graphs: offsets pass through.
	if blocks[0].Addr != 0x20 {
		t.Errorf("block addr = %#x", blocks[0].Addr)
	}

	initG := mkLog(
		coverage.Block{Module: "app", Off: 0x100, Size: 3},
		coverage.Block{Module: "app", Off: 0x200, Size: 3},
	)
	servingG := mkLog(coverage.Block{Module: "app", Off: 0x200, Size: 3})
	initOnly := IdentifyInitBlocks(initG, servingG, "app")
	if len(initOnly) != 1 || initOnly[0].Addr != 0x100 {
		t.Fatalf("init blocks = %+v", initOnly)
	}
}
