package core

import (
	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/kernel"
)

// Temporal system-call specialization (§5, and the Ghavamnia et al.
// comparison in §6): after initialization a server no longer needs
// the boot-time system calls (socket, bind, fork, ...), so the
// process rewriter installs a seccomp-style allow list alongside the
// code customization. Unlike the code-removal policies, the filter
// acts even on code DynaCut could not identify — any reintroduced
// path to a denied syscall is fatal.

// ServingSyscalls is the post-initialization allow list for server
// guests: request handling only, no process creation, no new sockets.
var ServingSyscalls = []uint64{
	kernel.SysExit,
	kernel.SysWrite,
	kernel.SysRead,
	kernel.SysAccept,
	kernel.SysClose,
	kernel.SysGetPID,
	kernel.SysSigaction,
	kernel.SysSigreturn,
	kernel.SysClock,
	kernel.SysYield,
	kernel.SysNudge,
}

// MasterSyscalls is the allow list for a master process that only
// supervises workers (no I/O, no new sockets, but wait and fork if
// respawn is desired).
var MasterSyscalls = []uint64{
	kernel.SysExit,
	kernel.SysWait,
	kernel.SysYield,
	kernel.SysGetPID,
	kernel.SysSigreturn,
	kernel.SysClock,
}

// RestrictSyscalls installs the allow list on every process of the
// target through one rewrite cycle. nil removes the filter (the
// dynamic re-enable direction the paper's §5 highlights).
func (c *Customizer) RestrictSyscalls(allowed []uint64) (Stats, error) {
	return c.Rewrite(func(ed *crit.Editor, pids []int) error {
		for _, pid := range pids {
			if err := ed.SetSyscallFilter(pid, allowed); err != nil {
				return err
			}
		}
		return nil
	})
}
