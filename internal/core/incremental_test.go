package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// TestRewriteSnapshotNotAliased is the regression test for the
// snapshot-aliasing bug: the pre-attempt bookkeeping snapshot used to
// alias the live saved-bytes slices, so an edit that mutated saved
// bytes in place corrupted the rollback snapshot. After a failed
// rewrite the saved bytes must be exactly what they were before it.
func TestRewriteSnapshotNotAliased(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9200})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	c, err := New(tb.m, tb.proc.PID(), Options{RedirectTo: tb.errPathAddr(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	if len(c.saved) == 0 {
		t.Fatal("disable saved no original bytes")
	}
	var addr uint64
	for a := range c.saved {
		addr = a
		break
	}
	want := append([]byte(nil), c.saved[addr]...)

	_, err = c.Rewrite(func(ed *crit.Editor, pids []int) error {
		// A buggy edit mutating the saved original bytes in place —
		// then failing, so the transaction must restore the snapshot.
		c.saved[addr][0] ^= 0xFF
		return errors.New("edit failed after in-place mutation")
	})
	if err == nil {
		t.Fatal("failing edit did not surface an error")
	}
	if !bytes.Equal(c.saved[addr], want) {
		t.Fatalf("rollback snapshot was aliased by the live slice: saved %v, want %v",
			c.saved[addr], want)
	}

	// The intact bytes still restore the feature end to end.
	if _, err := c.EnableBlocks("webdav-write"); err != nil {
		t.Fatal(err)
	}
	if got := tb.request(t, "PUT /after x\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT after re-enable -> %q, want 201", got)
	}
}

// TestChargeRoundsAndCarriesSubTicks: the seconds→ticks conversion
// used to truncate, so any interruption under one tick charged zero
// virtual time. It must round to nearest and carry the remainder.
func TestChargeRoundsAndCarriesSubTicks(t *testing.T) {
	m := kernel.NewMachine()
	c := &Customizer{machine: m, opts: Options{TicksPerSecond: 10}}

	base := m.Clock()
	// 0.6 ticks: truncation charged 0; rounding charges 1.
	c.charge(Stats{Downtime: 60 * time.Millisecond})
	if got := m.Clock() - base; got != 1 {
		t.Fatalf("0.6-tick interruption charged %d ticks, want 1", got)
	}

	// Ten 0.4-tick interruptions are 4.0 ticks exactly; the carry must
	// keep the sum honest even though each rounds to 0 or 1.
	c.tickCarry = 0
	base = m.Clock()
	for i := 0; i < 10; i++ {
		c.charge(Stats{Downtime: 40 * time.Millisecond})
	}
	if got := m.Clock() - base; got != 4 {
		t.Fatalf("10 x 0.4-tick interruptions charged %d ticks, want 4", got)
	}

	// Zero interruption charges nothing and does not drift the carry.
	base = m.Clock()
	c.tickCarry = 0
	c.charge(Stats{})
	if got := m.Clock() - base; got != 0 || c.tickCarry != 0 {
		t.Fatalf("zero interruption charged %d ticks (carry %v)", got, c.tickCarry)
	}
}

// TestStatsInterruptionIsMeasuredDowntime: the interruption window is
// the measured kill→restored downtime, not the pre-commit segments —
// checkpoint and editing run while the guest still serves.
func TestStatsInterruptionIsMeasuredDowntime(t *testing.T) {
	s := Stats{
		Checkpoint:    5 * time.Second,
		CodeUpdate:    time.Second,
		InsertHandler: time.Second,
		Restore:       2 * time.Second,
		HealthCheck:   time.Second,
		Downtime:      2100 * time.Millisecond,
	}
	if got := s.Interruption(); got != 2100*time.Millisecond {
		t.Fatalf("Interruption() = %v, want the measured downtime", got)
	}
	if got := s.Total(); got != 10*time.Second {
		t.Fatalf("Total() = %v, want 10s", got)
	}
}

// TestRewriteReportsDowntime: a committed rewrite reports a positive
// downtime that is bounded by the whole cycle — the checkpoint segment
// (guest still serving) is not part of it.
func TestRewriteReportsDowntime(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9202})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	c, err := New(tb.m, tb.proc.PID(), Options{RedirectTo: tb.errPathAddr(t)})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Downtime <= 0 {
		t.Fatal("committed rewrite reports no downtime")
	}
	if stats.Downtime > stats.Total() {
		t.Fatalf("downtime %v exceeds the whole cycle %v", stats.Downtime, stats.Total())
	}
}

// TestIncrementalCheckpointAcrossRewrites: the customizer keeps the
// committed images as the parent of the next dump, so the second
// rewrite's checkpoint skips clean pages — and a rollback invalidates
// the parent, forcing the next checkpoint back to a full dump.
func TestIncrementalCheckpointAcrossRewrites(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9201})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	c, err := New(tb.m, tb.proc.PID(), Options{RedirectTo: tb.errPathAddr(t)})
	if err != nil {
		t.Fatal(err)
	}

	s1, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatal(err)
	}
	if s1.PagesSkipped != 0 || s1.PagesDumped == 0 {
		t.Fatalf("first rewrite: dumped=%d skipped=%d, want a full dump", s1.PagesDumped, s1.PagesSkipped)
	}

	s2, err := c.EnableBlocks("webdav-write")
	if err != nil {
		t.Fatal(err)
	}
	if s2.PagesSkipped == 0 {
		t.Fatal("second rewrite's checkpoint skipped no pages — parent not kept")
	}
	if s2.PagesDumped >= s1.PagesDumped {
		t.Fatalf("incremental dump wrote %d pages, full dump wrote %d", s2.PagesDumped, s1.PagesDumped)
	}
	if s2.ImageBytes >= s1.ImageBytes {
		t.Fatalf("delta blob (%d bytes) not smaller than full blob (%d bytes)", s2.ImageBytes, s1.ImageBytes)
	}

	// A rolled-back transaction invalidates the parent.
	in := faultinject.New(1)
	in.FailOnce(faultinject.SiteRestorePages)
	tb.m.SetFaultHook(in)
	_, err = c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	tb.m.SetFaultHook(nil)
	if !errors.Is(err, ErrRolledBack) {
		t.Fatalf("injected restore fault: err = %v, want ErrRolledBack", err)
	}

	s4, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatal(err)
	}
	if s4.PagesSkipped != 0 {
		t.Fatalf("dump after rollback skipped %d pages, want a full dump", s4.PagesSkipped)
	}
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after disable -> %q, want 403", got)
	}
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET after disable -> %q, want 200", got)
	}
}

// TestChaosParentChainSites puts the two parent-chain hook sites under
// the same single-fault invariant as the rest of the suite. Both sites
// only fire on incremental dumps, so each seed first commits a clean
// rewrite (establishing the parent images) and then injects the fault
// into the next, incremental, rewrite.
func TestChaosParentChainSites(t *testing.T) {
	const seedsPerSite = 20
	cases := []struct {
		name     string
		arm      func(in *faultinject.Injector)
		rollback bool
	}{
		{"dump-parent", func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteDumpParent) }, false},
		{"restore-parent", func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteRestoreParent) }, true},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: uint16(9210 + ci)})
			blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
			if len(blocks) == 0 {
				t.Fatal("no feature blocks identified")
			}
			errPath := tb.errPathAddr(t)

			for seed := int64(1); seed <= seedsPerSite; seed++ {
				c, err := New(tb.m, tb.currentRoot(t), Options{RedirectTo: errPath})
				if err != nil {
					t.Fatal(err)
				}
				// Prime: a committed rewrite makes the next dump incremental.
				if _, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry); err != nil {
					t.Fatalf("seed %d: priming disable: %v", seed, err)
				}

				in := faultinject.New(seed)
				tc.arm(in)
				tb.m.SetFaultHook(in)
				stats, err := c.EnableBlocks("webdav-write")
				tb.m.SetFaultHook(nil)

				if err == nil {
					t.Fatalf("seed %d: injected fault did not surface", seed)
				}
				if in.Injected() == 0 {
					t.Fatalf("seed %d: no fault actually fired (events: %v)", seed, in.Events())
				}
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("seed %d: error does not chain ErrInjected: %v", seed, err)
				}
				if stats.RolledBack != tc.rollback {
					t.Fatalf("seed %d: RolledBack = %v, want %v (err: %v)",
						seed, stats.RolledBack, tc.rollback, err)
				}
				if errors.Is(err, ErrRollbackFailed) {
					t.Fatalf("seed %d: rollback itself failed: %v", seed, err)
				}

				// Invariant: guest alive, feature still fully disabled.
				if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
					t.Fatalf("seed %d: GET -> %q, want 200", seed, got)
				}
				if got := tb.request(t, "PUT /chaos x\n"); !strings.Contains(got, "403") {
					t.Fatalf("seed %d: PUT -> %q, want 403 (feature must stay disabled)", seed, got)
				}

				// With the injector gone the re-enable commits cleanly.
				if _, err := c.EnableBlocks("webdav-write"); err != nil {
					t.Fatalf("seed %d: enable after chaos: %v", seed, err)
				}
				if got := tb.request(t, "PUT /chaos x\n"); !strings.Contains(got, "201") {
					t.Fatalf("seed %d: PUT after re-enable -> %q, want 201", seed, got)
				}
			}
		})
	}
}
