package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/obs"
)

// TestSplitPageCoverageOverlap: overlapping blocks on one page must
// not be double-counted into a "fully covered" verdict (regression:
// raw byte-length summation declared partially-covered pages full and
// unmapped live code).
func TestSplitPageCoverageOverlap(t *testing.T) {
	const ps = kernel.PageSize
	base := uint64(100 * ps)

	// Block A covers [base+512, base+ps+512) — it straddles into the
	// next page; block B re-covers [base+512, base+2048), a strict
	// subset of A's share of the first page. Raw sums: page 100 gets
	// (ps-512)+1536 = 5120 >= ps, wrongly "full"; the union is only
	// 3584 bytes.
	blocks := []coverage.AbsBlock{
		{Addr: base + 512, Size: ps},
		{Addr: base + 512, Size: 1536},
	}
	full, partial := splitPageCoverage(blocks)
	if len(full) != 0 {
		t.Fatalf("overlapping partial coverage reported full pages: %+v", full)
	}
	if len(partial) == 0 {
		t.Fatal("no partial blocks returned")
	}

	// Positive control: duplicated and adjacent blocks whose union does
	// cover a whole page must still unmap it.
	blocks = []coverage.AbsBlock{
		{Addr: base, Size: ps / 2},
		{Addr: base, Size: ps / 2}, // duplicate
		{Addr: base + ps/2, Size: ps / 2},
	}
	full, partial = splitPageCoverage(blocks)
	if len(full) != 1 || full[0].start != base || full[0].end != base+ps {
		t.Fatalf("fully covered page not detected: full=%+v partial=%+v", full, partial)
	}
	if len(partial) != 0 {
		t.Fatalf("leftover partial blocks on a fully covered page: %+v", partial)
	}
}

// TestVerifierFlogOverflowSurfaced: when the in-guest false-removal
// log overflows its 256-entry capacity, the handler must stop storing
// (not scribble past the buffer and die) while still counting, and
// the host API must surface the truncation (regression: the store was
// unbounded and the host read silently capped at a hardcoded 256).
func TestVerifierFlogOverflowSurfaced(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9170})
	blocks := tb.profileFeatures(t,
		[]string{"GET /\n", "HEAD /\n"},
		[]string{"PUT /f x\n", "POST /\n"})
	o := obs.New(0)
	c, err := New(tb.m, tb.currentRoot(t), Options{
		RedirectTo: tb.errPathAddr(t),
		Verifier:   true,
		Observer:   o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DisableBlocks("suspect", blocks, PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}

	// Simulate a validation run that already overflowed the log: push
	// the in-guest counter far past the flog capacity, then trap. The
	// old handler computed flog + 8*counter and stored into unmapped
	// memory — a double fault that killed the guest.
	p, err := tb.m.Process(c.PID())
	if err != nil {
		t.Fatal(err)
	}
	const seenBefore = 1 << 20
	if err := p.Mem().WriteU64(c.handler.FLogLen, seenBefore); err != nil {
		t.Fatal(err)
	}
	if got := tb.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("POST with overflowed flog -> %q, want self-healed 200", got)
	}

	addrs, seen, err := c.FalseRemovalsSeen()
	if err != nil {
		t.Fatal(err)
	}
	if seen <= seenBefore {
		t.Fatalf("seen = %d, want > %d (trap not counted)", seen, seenBefore)
	}
	if len(addrs) != maxVerifierEntries {
		t.Fatalf("len(addrs) = %d, want capacity %d", len(addrs), maxVerifierEntries)
	}
	// The lossy wrapper still works and agrees with the capped read.
	legacy, err := c.FalseRemovals()
	if err != nil || len(legacy) != len(addrs) {
		t.Fatalf("FalseRemovals -> %d addrs, %v", len(legacy), err)
	}
	// The truncation is visible in the trace.
	truncated := false
	for _, ev := range o.Events() {
		if ev.Kind == obs.KindPoint && ev.Name == "verifier.flog.truncated" && ev.N > 0 {
			truncated = true
		}
	}
	if !truncated {
		t.Fatal("no verifier.flog.truncated event emitted")
	}
	// And the guest is still serving.
	tb.assertServing(t)
}

// TestChaosObserverEventsMatchInjections sweeps 20 seeded fault
// cycles across the armed hook sites with one shared observer
// attached: every injected fault must land in the trace as a matching
// fault event, and the ring must stay bounded for the whole sweep.
func TestChaosObserverEventsMatchInjections(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9171})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	if len(blocks) == 0 {
		t.Fatal("no feature blocks identified")
	}
	errPath := tb.errPathAddr(t)

	arms := []func(in *faultinject.Injector){
		func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteDumpProc) },
		func(in *faultinject.Injector) { in.FailPageMap() },
		func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteEditWrite) },
		func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteRestoreProc) },
		func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteRestoreVMA) },
		func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteRestorePages) },
		func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteRestoreFiles) },
		func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteHealth) },
		func(in *faultinject.Injector) { in.CorruptImageByte(faultinject.SitePristine, -1) },
		func(in *faultinject.Injector) { in.TruncateBlob(faultinject.SitePristine, -1) },
	}

	// A deliberately small ring: the sweep emits far more events than
	// this, so staying within Cap proves the buffer is bounded.
	o := obs.New(128)

	for seed := int64(1); seed <= 20; seed++ {
		prevSeq := o.Seq()
		in := faultinject.New(seed)
		arms[int(seed)%len(arms)](in)
		tb.m.SetFaultHook(in)
		c, err := New(tb.m, tb.currentRoot(t), Options{
			RedirectTo: errPath,
			Observer:   o,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
		tb.m.SetFaultHook(nil)
		if err == nil {
			t.Fatalf("seed %d: injected fault did not surface", seed)
		}

		// Every injector decision that failed has a matching fault
		// event in the trace, in order.
		var wantSites []string
		for _, fe := range in.Events() {
			if fe.Fail {
				wantSites = append(wantSites, fe.Site)
			}
		}
		if len(wantSites) == 0 {
			t.Fatalf("seed %d: no fault actually fired", seed)
		}
		var gotSites []string
		for _, ev := range o.Events() {
			if ev.Kind == obs.KindFault && ev.Seq >= prevSeq {
				gotSites = append(gotSites, ev.Name)
			}
		}
		if len(gotSites) != len(wantSites) {
			t.Fatalf("seed %d: %d fault events for %d injections (%v vs %v)",
				seed, len(gotSites), len(wantSites), gotSites, wantSites)
		}
		for i := range wantSites {
			if gotSites[i] != wantSites[i] {
				t.Fatalf("seed %d: fault event %d = %q, want %q", seed, i, gotSites[i], wantSites[i])
			}
		}
		if o.Len() > o.Cap() {
			t.Fatalf("seed %d: ring grew past capacity: %d > %d", seed, o.Len(), o.Cap())
		}
		tb.assertServing(t)
	}
	if o.Dropped() == 0 {
		t.Error("sweep never overflowed the 128-slot ring; boundedness unexercised")
	}
}

// TestObserverTraceReconstructsTimeline is the acceptance test for
// the tracing pipeline: a rewrite under transient fault injection
// produces a JSONL trace that reconstructs the full phase timeline —
// failed restore, rollback, retry, commit — and two identical runs
// produce byte-identical traces thanks to the virtual clock (wall
// clock stubbed).
func TestObserverTraceReconstructsTimeline(t *testing.T) {
	run := func() (string, *obs.Observer) {
		tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9172})
		blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
		o := obs.New(0)
		o.SetWallClock(func() time.Time { return time.Unix(0, 0) })
		in := faultinject.New(42)
		in.FailTransient(faultinject.PrefixRestore, 1, 1)
		tb.m.SetFaultHook(in)
		defer tb.m.SetFaultHook(nil)
		c, err := New(tb.m, tb.currentRoot(t), Options{
			RedirectTo:  tb.errPathAddr(t),
			MaxAttempts: 2,
			Observer:    o,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
		if err != nil {
			t.Fatalf("transient fault not rescued: %v", err)
		}
		if stats.Attempts != 2 || stats.RolledBack {
			t.Fatalf("stats = %+v, want Attempts=2 RolledBack=false", stats)
		}
		// Post-rewrite traffic: the disabled feature traps and redirects,
		// feeding the kernel-side counters (ticks, syscalls, traps). It
		// emits no events, so the JSONL trace stays deterministic.
		if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
			t.Fatalf("PUT after commit -> %q, want 403", got)
		}
		var buf bytes.Buffer
		if err := o.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), o
	}

	trace1, o := run()
	trace2, _ := run()
	if trace1 != trace2 {
		t.Fatal("two identical runs produced different JSONL traces")
	}

	events, err := obs.ReadJSONL(strings.NewReader(trace1))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}

	// Virtual-clock timestamps are monotonic non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].VClock < events[i-1].VClock {
			t.Fatalf("vclock went backwards at seq %d: %d -> %d",
				events[i].Seq, events[i-1].VClock, events[i].VClock)
		}
	}

	// The timeline: restore fails on attempt 1 (with the fault visible
	// between its start and end), rollback runs clean, attempt 2
	// restores, passes health, and commits.
	find := func(kind obs.Kind, name string, attempt int) *obs.Event {
		for i := range events {
			ev := &events[i]
			if ev.Kind == kind && ev.Name == name && ev.Attempt == attempt {
				return ev
			}
		}
		return nil
	}
	for _, name := range []string{"checkpoint", "validate"} {
		if find(obs.KindPhaseStart, name, 0) == nil {
			t.Errorf("missing pre-loop phase %q", name)
		}
	}
	for attempt := 1; attempt <= 2; attempt++ {
		for _, name := range []string{"decode", "edit", "validate", "kill", "restore"} {
			if find(obs.KindPhaseStart, name, attempt) == nil {
				t.Errorf("missing phase %q attempt %d", name, attempt)
			}
		}
	}
	r1 := find(obs.KindPhaseEnd, "restore", 1)
	if r1 == nil || r1.Err == "" {
		t.Fatalf("restore attempt 1 end = %+v, want failed", r1)
	}
	r2 := find(obs.KindPhaseEnd, "restore", 2)
	if r2 == nil || r2.Err != "" {
		t.Fatalf("restore attempt 2 end = %+v, want success", r2)
	}
	rb := find(obs.KindPhaseEnd, "rollback", 1)
	if rb == nil || rb.Err != "" {
		t.Fatalf("rollback attempt 1 end = %+v, want clean", rb)
	}
	var fault *obs.Event
	for i := range events {
		if events[i].Kind == obs.KindFault {
			fault = &events[i]
		}
	}
	if fault == nil || !strings.HasPrefix(fault.Name, faultinject.PrefixRestore) {
		t.Fatalf("fault event = %+v, want a criu.restore.* site", fault)
	}
	if start := find(obs.KindPhaseStart, "restore", 1); fault.Seq < start.Seq || fault.Seq > r1.Seq {
		t.Errorf("fault (seq %d) outside restore attempt 1 span [%d, %d]",
			fault.Seq, start.Seq, r1.Seq)
	}
	commit := find(obs.KindPoint, "rewrite.commit", 0)
	if commit == nil || commit.N != 2 {
		t.Fatalf("commit point = %+v, want N=2", commit)
	}
	if h := find(obs.KindPhaseEnd, "health", 2); h == nil || h.Err != "" {
		t.Fatalf("health attempt 2 end = %+v, want clean", h)
	}

	// Summarize agrees: restore ran twice with one failure, nothing
	// dangling, and the injected fault is tallied.
	sum := obs.Summarize(events)
	var restoreStat *obs.PhaseStat
	for i := range sum.Phases {
		if sum.Phases[i].Name == "restore" {
			restoreStat = &sum.Phases[i]
		}
	}
	if restoreStat == nil || restoreStat.Count != 2 || restoreStat.Errors != 1 {
		t.Fatalf("restore summary = %+v, want Count=2 Errors=1", restoreStat)
	}
	if sum.Faults[fault.Name] == 0 {
		t.Errorf("fault site %q missing from summary: %v", fault.Name, sum.Faults)
	}

	// Metrics side: the machine fed the observer, and the commit and
	// rollback counters reflect the retry.
	if o.Counter("kernel.ticks") == 0 || o.Counter("kernel.syscalls") == 0 {
		t.Error("kernel metrics not collected")
	}
	if o.Counter("kernel.traps") == 0 {
		t.Error("redirected PUT produced no trap count")
	}
	if o.Counter("criu.dumps") == 0 || o.Counter("criu.restores") == 0 {
		t.Error("criu metrics not collected")
	}
	if o.Counter("core.commits") != 1 || o.Counter("core.rollbacks") != 1 {
		t.Errorf("commits=%d rollbacks=%d, want 1/1",
			o.Counter("core.commits"), o.Counter("core.rollbacks"))
	}
	if o.Counter("faults.injected") != 1 {
		t.Errorf("faults.injected = %d, want 1", o.Counter("faults.injected"))
	}
}
