package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// Attestation is the expected-state oracle's public snapshot: a
// Merkle-style root over the per-text-page expected digests plus the
// applied-feature set. Two replicas that applied the same features to
// the same binary have the same root; a replica whose live text hashes
// to anything else has diverged, silently or not.
type Attestation struct {
	// Root commits to Pages and Features: the digest a fleet sweep
	// compares across replicas.
	Root [sha256.Size]byte
	// Pages maps each text page number to its expected content digest.
	// Pristine pages carry their PageStore blob hash by construction:
	// the expected digest IS the content-addressed store key.
	Pages map[uint64][sha256.Size]byte
	// Features is the sorted set of currently-disabled feature names.
	Features []string
}

// PageVerdict classifies one attestation mismatch.
type PageVerdict int

const (
	// PageClean: live content matches the expected digest.
	PageClean PageVerdict = iota
	// PageRepairable: live content equals a known prior version of the
	// page (e.g. pristine text after a patch was silently undone) — the
	// expected bytes can be re-patched in place from the PageStore.
	PageRepairable
	// PageForeign: live content matches no version this customizer has
	// ever committed. A bit flip, a rogue write — unknown bytes.
	PageForeign
)

func (v PageVerdict) String() string {
	switch v {
	case PageClean:
		return "clean"
	case PageRepairable:
		return "repairable"
	case PageForeign:
		return "foreign"
	}
	return fmt.Sprintf("PageVerdict(%d)", int(v))
}

// PageMismatch is one diverged (process, page) pair found by Attest.
type PageMismatch struct {
	PID     int
	Page    uint64
	Want    [sha256.Size]byte
	Got     [sha256.Size]byte
	Verdict PageVerdict
}

// AttestReport is the result of one live attestation sweep.
type AttestReport struct {
	// Checked counts (process, page) pairs hashed.
	Checked int
	// Procs is how many live processes were swept.
	Procs int
	// Root is the oracle's expected root; LiveRoot is the root computed
	// from the root process's live text. Equal iff the root process's
	// text (and feature set) matches expectations exactly.
	Root     [sha256.Size]byte
	LiveRoot [sha256.Size]byte
	// Mismatches lists every diverged page, classified.
	Mismatches []PageMismatch
}

// Clean reports whether the sweep found no divergence.
func (r *AttestReport) Clean() bool { return len(r.Mismatches) == 0 }

// Repairable counts mismatches whose content is a known prior version.
func (r *AttestReport) Repairable() int {
	n := 0
	for _, m := range r.Mismatches {
		if m.Verdict == PageRepairable {
			n++
		}
	}
	return n
}

// Foreign counts mismatches with unknown bytes.
func (r *AttestReport) Foreign() int {
	n := 0
	for _, m := range r.Mismatches {
		if m.Verdict == PageForeign {
			n++
		}
	}
	return n
}

// RepairStats reports the cost of one anti-entropy repair pass.
type RepairStats struct {
	// Repaired is how many pages were re-patched in place.
	Repaired int
	// Skipped counts foreign mismatches left alone (foreign=false).
	Skipped int
	// Rounds is how many scheduler rounds the quiesce loop ran. Repair
	// never kills or restores a process: downtime is zero by the same
	// construction as the live-patch fast path.
	Rounds int
}

// pageOracle is the expected state of one text page: the current
// expected digest, every prior expected digest (the version chain that
// decides repairable-vs-foreign), and the patched-byte deltas relative
// to an earlier version — captured at commit so a repair can rebuild
// the expected content from any surviving prior blob.
type pageOracle struct {
	digest  [sha256.Size]byte
	history [][sha256.Size]byte // prior expected digests, oldest first
	overlay []overlayRun        // live patched bytes intersecting the page
}

// overlayRun is one span of patched bytes (INT3 fills, redirect jumps)
// as committed, keyed by guest address.
type overlayRun struct {
	addr  uint64
	bytes []byte
}

// attestStore returns the content-addressed store backing the oracle,
// creating a private one on first use if the caller didn't share one
// (fleets share theirs so N replicas' text deposits dedup to one).
func (c *Customizer) attestStore() *criu.PageStore {
	if c.attStore == nil {
		c.attStore = criu.NewPageStore()
	}
	return c.attStore
}

// ensureSealed seals the oracle from the live guest on first use.
func (c *Customizer) ensureSealed() error {
	if c.attSealed {
		return nil
	}
	return c.resealOracle()
}

// resealOracle recomputes the expected digest of every text page from
// the root process's live memory — the incremental commit step of the
// oracle. A page whose digest changed pushes its old digest onto the
// version history; every page's current content is deposited into the
// store so a later repair can materialize the expected bytes by key.
// Call only at commit points, when the live text IS the expected text.
func (c *Customizer) resealOracle() error {
	p, err := c.machine.Process(c.pid)
	if err != nil || p.Exited() {
		return ErrDead
	}
	mem := p.Mem()
	pns := mem.ExecPages()
	live := mem.HashPages(pns)
	store := c.attestStore()
	next := make(map[uint64]*pageOracle, len(pns))
	for _, pn := range pns {
		po := c.oracle[pn]
		if po == nil {
			po = &pageOracle{}
		} else if po.digest != live[pn] && !digestIn(po.history, po.digest) {
			po.history = append(po.history, po.digest)
		}
		po.digest = live[pn]
		po.overlay = c.overlayFor(mem, pn)
		if _, err := store.DepositPage(mem.PageData(pn)); err != nil {
			return fmt.Errorf("core: sealing oracle page %#x: %w", pn, err)
		}
		next[pn] = po
	}
	c.oracle = next
	c.attSealed = true
	return nil
}

// updateOraclePages incrementally reseals only the listed pages — the
// live-patch commit path, which touches a handful of pages and should
// not pay a full text hash.
func (c *Customizer) updateOraclePages(pns []uint64) error {
	if !c.attSealed {
		return c.resealOracle()
	}
	p, err := c.machine.Process(c.pid)
	if err != nil || p.Exited() {
		return ErrDead
	}
	mem := p.Mem()
	live := mem.HashPages(pns)
	store := c.attestStore()
	for _, pn := range pns {
		po := c.oracle[pn]
		if po == nil {
			po = &pageOracle{}
			c.oracle[pn] = po
		} else if po.digest != live[pn] && !digestIn(po.history, po.digest) {
			po.history = append(po.history, po.digest)
		}
		po.digest = live[pn]
		po.overlay = c.overlayFor(mem, pn)
		if _, err := store.DepositPage(mem.PageData(pn)); err != nil {
			return fmt.Errorf("core: sealing oracle page %#x: %w", pn, err)
		}
	}
	return nil
}

func digestIn(hs [][sha256.Size]byte, d [sha256.Size]byte) bool {
	for _, h := range hs {
		if h == d {
			return true
		}
	}
	return false
}

// overlayFor captures the currently-patched bytes intersecting page pn
// — every saved-block span read back from live memory. Together with a
// prior version's blob this reconstructs the expected content when the
// store has lost the expected blob itself.
func (c *Customizer) overlayFor(mem *kernel.Memory, pn uint64) []overlayRun {
	lo, hi := pn*kernel.PageSize, (pn+1)*kernel.PageSize
	var runs []overlayRun
	for addr, orig := range c.saved {
		if addr+uint64(len(orig)) <= lo || addr >= hi {
			continue
		}
		cur, err := mem.Read(addr, len(orig))
		if err != nil {
			continue
		}
		runs = append(runs, overlayRun{addr: addr, bytes: cur})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].addr < runs[j].addr })
	return runs
}

// oraclePageNumbers returns the oracle's page set, sorted.
func (c *Customizer) oraclePageNumbers() []uint64 {
	pns := make([]uint64, 0, len(c.oracle))
	for pn := range c.oracle {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	return pns
}

// features returns the sorted applied-feature set.
func (c *Customizer) features() []string {
	fs := make([]string, 0, len(c.disabled))
	for name := range c.disabled {
		fs = append(fs, name)
	}
	sort.Strings(fs)
	return fs
}

// attRoot folds per-page digests and the feature set into one
// Merkle-style root: each (page, digest) pair is hashed into a leaf,
// the leaves are folded in page order, and the feature-set hash is the
// final leaf. Page order is canonical, so equal state ⇒ equal root.
func attRoot(pages map[uint64][sha256.Size]byte, features []string) [sha256.Size]byte {
	pns := make([]uint64, 0, len(pages))
	for pn := range pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	h := sha256.New()
	var buf [8]byte
	for _, pn := range pns {
		d := pages[pn]
		binary.LittleEndian.PutUint64(buf[:], pn)
		leaf := sha256.Sum256(append(buf[:], d[:]...))
		h.Write(leaf[:])
	}
	fh := sha256.New()
	for _, f := range features {
		fh.Write([]byte(f))
		fh.Write([]byte{0})
	}
	h.Write(fh.Sum(nil))
	var root [sha256.Size]byte
	h.Sum(root[:0])
	return root
}

// Attestation returns the expected-state oracle: the per-page expected
// digests, the applied-feature set, and the root committing to both.
// It never reads live guest memory — this is what the state SHOULD be.
func (c *Customizer) Attestation() (Attestation, error) {
	if err := c.ensureSealed(); err != nil {
		return Attestation{}, err
	}
	pages := make(map[uint64][sha256.Size]byte, len(c.oracle))
	for pn, po := range c.oracle {
		pages[pn] = po.digest
	}
	fs := c.features()
	return Attestation{Root: attRoot(pages, fs), Pages: pages, Features: fs}, nil
}

// LiveRoot hashes the root process's live text pages and returns the
// attestation root they produce — the cheap divergence probe a fleet
// sweep collects from every replica before deciding whether to pay for
// a full Attest.
func (c *Customizer) LiveRoot() ([sha256.Size]byte, error) {
	if err := c.ensureSealed(); err != nil {
		return [sha256.Size]byte{}, err
	}
	c.injectBitflip()
	p, err := c.machine.Process(c.pid)
	if err != nil || p.Exited() {
		return [sha256.Size]byte{}, ErrDead
	}
	return attRoot(p.Mem().HashPages(c.oraclePageNumbers()), c.features()), nil
}

// injectBitflip consults the silent text-corruption fault site. When
// armed, one bit of one live text page is flipped — no error, no trap,
// no dirty bit; the flip is observable only by hashing — and the sweep
// continues as if nothing happened. The page and offset derive from
// the virtual clock, so a given (seed, schedule) corrupts the same
// byte every run.
func (c *Customizer) injectBitflip() {
	if len(c.oracle) == 0 {
		return
	}
	if ferr := c.machine.Fault(faultinject.SiteTextBitflip, c.pid); ferr == nil {
		return
	}
	p, err := c.machine.Process(c.pid)
	if err != nil || p.Exited() {
		return
	}
	pns := c.oraclePageNumbers()
	clock := c.machine.Clock()
	pn := pns[int(clock%uint64(len(pns)))]
	off := (clock*2654435761 + 12345) % kernel.PageSize
	if p.Mem().FlipBits(pn*kernel.PageSize+off, 0x80) {
		c.point("attest.bitflip", int64(pn))
	}
}

// Attest runs one live attestation sweep: every live target process's
// text pages are hashed and compared against the oracle, and each
// mismatch is classified repairable (content equals a known prior
// version in the chain) or foreign (unknown bytes). The sweep runs
// host-side between scheduler rounds — the same boundary the
// live-patch quiesce machinery establishes — so a page is never hashed
// mid-patch.
func (c *Customizer) Attest() (*AttestReport, error) {
	if err := c.ensureSealed(); err != nil {
		return nil, err
	}
	end := c.span("attest", 0)
	c.injectBitflip()
	targets := c.liveTargets()
	if len(targets) == 0 {
		end(ErrDead)
		return nil, ErrDead
	}
	pns := c.oraclePageNumbers()
	pages := make(map[uint64][sha256.Size]byte, len(c.oracle))
	for pn, po := range c.oracle {
		pages[pn] = po.digest
	}
	fs := c.features()
	rep := &AttestReport{Procs: len(targets), Root: attRoot(pages, fs)}
	for _, p := range targets {
		mem := p.Mem()
		check := make([]uint64, 0, len(pns))
		for _, pn := range pns {
			if _, ok := mem.VMAAt(pn * kernel.PageSize); ok {
				check = append(check, pn)
			}
		}
		live := mem.HashPages(check)
		for _, pn := range check {
			rep.Checked++
			want := c.oracle[pn].digest
			got := live[pn]
			if got == want {
				continue
			}
			verdict := PageForeign
			if digestIn(c.oracle[pn].history, got) {
				verdict = PageRepairable
			}
			rep.Mismatches = append(rep.Mismatches, PageMismatch{
				PID: p.PID(), Page: pn, Want: want, Got: got, Verdict: verdict,
			})
		}
		if p.PID() == c.pid {
			rep.LiveRoot = attRoot(live, fs)
		}
	}
	c.point("attest.pages", int64(rep.Checked))
	if n := len(rep.Mismatches); n > 0 {
		c.point("attest.mismatch", int64(n))
	}
	end(nil)
	return rep, nil
}

// Repair re-patches diverged pages in place from the content-addressed
// store: materialize the expected blob (or rebuild it from a prior
// version plus the recorded patched-byte deltas), quiesce like the
// live-patch fast path, write, verify the digest, commit. The guest is
// never killed or restored — zero downtime — and any failure unwinds
// every byte already written, same discipline as DisableBlocksLive.
// Foreign pages are repaired only when foreign is true (the supervisor
// scrub rung and the fleet repair ladder pass true; a cautious caller
// can restrict itself to known-prior-version pages).
//
// Repair is all-or-nothing: on error no page keeps repaired bytes.
func (c *Customizer) Repair(rep *AttestReport, foreign bool) (RepairStats, error) {
	var rs RepairStats
	if rep == nil || len(rep.Mismatches) == 0 {
		return rs, nil
	}
	end := c.span("attest.repair", 0)
	var fix []PageMismatch
	for _, mm := range rep.Mismatches {
		if mm.Verdict == PageForeign && !foreign {
			rs.Skipped++
			continue
		}
		fix = append(fix, mm)
	}
	if len(fix) == 0 {
		end(nil)
		return rs, nil
	}

	targets := c.liveTargets()
	if len(targets) == 0 {
		end(ErrDead)
		return rs, ErrDead
	}
	byPID := make(map[int]*kernel.Process, len(targets))
	for _, p := range targets {
		byPID[p.PID()] = p
	}

	// Source every expected blob up front and diff it against the live
	// page: only the diverged byte runs actually mutate (the rest of
	// the page is rewritten with identical values), so those runs — not
	// the whole page — are what the quiesce must clear. A whole-page
	// span would deadlock on any guest idling elsewhere in the page.
	blobs := make([][]byte, len(fix))
	var spans []blockSpan
	for i, mm := range fix {
		p := byPID[mm.PID]
		if p == nil || p.Exited() {
			err := fmt.Errorf("core: repair target pid %d gone", mm.PID)
			end(err)
			return rs, err
		}
		blob, err := c.expectedBlob(mm.Page, mm.Want)
		if err != nil {
			end(err)
			return rs, err
		}
		blobs[i] = blob
		lo := mm.Page * kernel.PageSize
		live, err := p.Mem().Read(lo, kernel.PageSize)
		if err != nil {
			end(err)
			return rs, err
		}
		for j := 0; j < kernel.PageSize; {
			if live[j] == blob[j] {
				j++
				continue
			}
			k := j
			for k < kernel.PageSize && live[k] != blob[k] {
				k++
			}
			spans = append(spans, blockSpan{lo: lo + uint64(j), hi: lo + uint64(k)})
			j = k
		}
	}

	// Quiesce: no target may be executing (or returning into) a byte
	// run about to change — the live-patch discipline.
	maxRounds := c.opts.LiveQuiesceRounds
	if maxRounds <= 0 {
		maxRounds = DefaultQuiesceRounds
	}
	for {
		conflict := liveConflict(targets, spans)
		if conflict == "" {
			break
		}
		if rs.Rounds >= maxRounds {
			err := fmt.Errorf("core: repair quiescence not reached in %d rounds: %s", maxRounds, conflict)
			end(err)
			return rs, err
		}
		if c.machine.RunRound() == 0 {
			err := fmt.Errorf("core: guest parked inside page under repair: %s", conflict)
			end(err)
			return rs, err
		}
		rs.Rounds++
		targets = c.liveTargets()
		if len(targets) == 0 {
			end(ErrDead)
			return rs, ErrDead
		}
	}

	// Forks during quiesce can add processes; re-key the live set.
	byPID = make(map[int]*kernel.Process, len(targets))
	for _, p := range targets {
		byPID[p.PID()] = p
	}
	type writeRec struct {
		mem  *kernel.Memory
		addr uint64
		orig []byte
	}
	var undo []writeRec
	unwind := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			_ = undo[i].mem.Write(undo[i].addr, undo[i].orig)
		}
		rs.Repaired = 0
	}
	fail := func(err error) (RepairStats, error) {
		unwind()
		end(err)
		return rs, err
	}
	for i, mm := range fix {
		p := byPID[mm.PID]
		if p == nil || p.Exited() {
			return fail(fmt.Errorf("core: repair target pid %d gone", mm.PID))
		}
		if ferr := c.machine.Fault(faultinject.SiteAttestRepair, mm.PID); ferr != nil {
			return fail(fmt.Errorf("core: repairing page %#x: %w", mm.Page, ferr))
		}
		blob := blobs[i]
		mem := p.Mem()
		lo := mm.Page * kernel.PageSize
		orig, err := mem.Read(lo, kernel.PageSize)
		if err != nil {
			return fail(fmt.Errorf("core: reading page %#x for repair: %w", mm.Page, err))
		}
		if err := mem.Write(lo, blob); err != nil {
			return fail(fmt.Errorf("core: repairing page %#x: %w", mm.Page, err))
		}
		undo = append(undo, writeRec{mem: mem, addr: lo, orig: orig})
		if got := mem.HashPages([]uint64{mm.Page})[mm.Page]; got != mm.Want {
			return fail(fmt.Errorf("core: page %#x still diverged after repair", mm.Page))
		}
		rs.Repaired++
		c.point("attest.repair.page", int64(mm.Page))
	}
	end(nil)
	return rs, nil
}

// expectedBlob sources the expected content of a page: first the store
// blob keyed by the expected digest itself, then — if the store lost
// or rotted that blob — any surviving prior version re-overlaid with
// the recorded patched bytes. Every candidate is digest-verified.
func (c *Customizer) expectedBlob(pn uint64, want [sha256.Size]byte) ([]byte, error) {
	store := c.attestStore()
	if blob, err := store.PageBlob(want); err == nil {
		return blob, nil
	}
	po := c.oracle[pn]
	if po == nil {
		return nil, fmt.Errorf("core: page %#x not in oracle", pn)
	}
	lo := pn * kernel.PageSize
	for i := len(po.history) - 1; i >= 0; i-- {
		blob, err := store.PageBlob(po.history[i])
		if err != nil {
			continue
		}
		cand := append([]byte(nil), blob...)
		for _, run := range po.overlay {
			for j, b := range run.bytes {
				if a := run.addr + uint64(j); a >= lo && a < lo+kernel.PageSize {
					cand[a-lo] = b
				}
			}
		}
		if sha256.Sum256(cand) == want {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("core: no source blob for page %#x digest %x", pn, want[:8])
}
