package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// liveTestbed boots a guest and pre-installs the SIGTRAP handler
// library (the transaction the live path cannot perform itself), the
// way a fleet template is prepared before cloning. It returns the
// testbed, the profiled feature blocks, and a customizer whose root
// PID is current after the injection rewrite.
func liveTestbed(t *testing.T, cfg webserv.Config, opts Options) (*testbed, []coverage.AbsBlock, *Customizer) {
	t.Helper()
	tb := newTestbed(t, cfg)
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	if len(blocks) == 0 {
		t.Fatal("no feature blocks identified")
	}
	if opts.RedirectTo == 0 {
		opts.RedirectTo = tb.errPathAddr(t)
	}
	c, err := New(tb.m, tb.proc.PID(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InstallHandler(); err != nil {
		t.Fatalf("install handler: %v", err)
	}
	return tb, blocks, c
}

// TestLivePatchZeroDowntime is the fast path's headline contract: an
// INT3-only policy on a handler-equipped guest commits without a kill,
// without a restore, and with zero measured downtime — and the feature
// is gone exactly as if the transaction had run.
func TestLivePatchZeroDowntime(t *testing.T) {
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9300}, Options{})
	pidBefore := c.PID()

	stats, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatalf("live disable: %v", err)
	}
	if !stats.LivePatched || stats.FellBack {
		t.Fatalf("fast path not taken: %+v (reason %q)", stats, stats.FallbackReason)
	}
	if stats.Downtime != 0 {
		t.Errorf("live patch reported downtime %v, want 0", stats.Downtime)
	}
	if stats.BlocksPatched != len(blocks) {
		t.Errorf("patched %d, want %d", stats.BlocksPatched, len(blocks))
	}
	if c.PID() != pidBefore {
		t.Errorf("live patch changed the root PID: %d -> %d (a kill/restore leaked in)", pidBefore, c.PID())
	}

	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after live patch -> %q, want 403", got)
	}
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET after live patch -> %q", got)
	}

	// The saved originals flow into the same bookkeeping the
	// transaction uses: EnableBlocks reverses a live patch.
	if _, err := c.EnableBlocks("webdav-write"); err != nil {
		t.Fatalf("enable after live patch: %v", err)
	}
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT after re-enable -> %q, want 201", got)
	}
}

// TestLivePatchDirtyPagesSurviveDeltaDump is the dirty-bitmap
// accounting regression test: an in-place text write must mark its
// page dirty, so an incremental checkpoint taken after a live patch
// carries the patched page. A restore of that delta chain into a fresh
// machine must show INT3 at every patched entry — if the write skipped
// the dirty bitmap, the restored guest would silently run the
// unpatched feature.
func TestLivePatchDirtyPagesSurviveDeltaDump(t *testing.T) {
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9301}, Options{})

	// Full checkpoint first: the delta parent predates the patch.
	if _, err := c.Checkpoint(); err != nil {
		t.Fatalf("baseline checkpoint: %v", err)
	}
	stats, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
	if err != nil || !stats.LivePatched {
		t.Fatalf("live disable: %v (stats %+v)", err, stats)
	}
	if c.parent == nil {
		t.Fatal("no parent set adopted: the second checkpoint would not be a delta dump")
	}
	flat, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("delta checkpoint: %v", err)
	}

	// Restore into a second machine (cloned for its on-disk binaries,
	// then emptied of processes) — the patched entries must come from
	// the delta dump, not from the source machine's live memory.
	m2 := tb.m.Clone()
	for _, p := range m2.Processes() {
		if err := m2.Kill(p.PID()); err != nil {
			t.Fatal(err)
		}
		m2.Remove(p.PID())
	}
	procs, _, err := criu.Restore(m2, flat)
	if err != nil {
		t.Fatalf("restore delta chain: %v", err)
	}
	if len(procs) == 0 {
		t.Fatal("restore produced no processes")
	}
	mem := procs[0].Mem()
	for _, b := range blocks {
		got, err := mem.Read(b.Addr, 1)
		if err != nil {
			t.Fatalf("reading restored entry %#x: %v", b.Addr, err)
		}
		if got[0] != 0xCC {
			t.Fatalf("restored entry %#x = %#x, want INT3: the live patch's page missed the delta dump", b.Addr, got[0])
		}
	}
}

// TestLivePatchForkedChildForcesFallback is the multi-process
// RIP-safety regression test: with Options.Tree, a forked worker
// parked inside a to-be-wiped block must veto the fast path even when
// the root process is safe. (The single-process scan would have
// patched under the child's feet.)
func TestLivePatchForkedChildForcesFallback(t *testing.T) {
	tb, _, c := liveTestbed(t, webserv.Config{Name: "nginx", Port: 9302, Workers: 2},
		Options{Tree: true, LiveQuiesceRounds: 3})

	procs := tb.m.Processes()
	if len(procs) < 3 {
		t.Fatalf("procs = %d, want master+2 workers", len(procs))
	}
	child := procs[len(procs)-1]
	if child.PID() == c.PID() {
		t.Fatal("no forked child found")
	}
	// Target exactly where the idle worker is parked: its RIP sits
	// inside this synthetic block, and since the whole fleet of
	// processes is blocked waiting for traffic, no number of scheduler
	// rounds can move it out.
	parked := []coverage.AbsBlock{{Addr: child.RIP() &^ 3, Size: 16}}

	stats, err := c.DisableBlocksLive("parked-block", parked, PolicyWipeBlocks)
	if err != nil {
		t.Fatalf("fallback transaction failed: %v", err)
	}
	if stats.LivePatched || !stats.FellBack {
		t.Fatalf("patched under a parked child: %+v", stats)
	}
	if !strings.Contains(stats.FallbackReason, "pid") || !strings.Contains(stats.FallbackReason, "in affected block") {
		t.Errorf("fallback reason %q does not name the parked conflict", stats.FallbackReason)
	}
}

// TestLivePatchStackReturnAddressForcesFallback: the quiesce scan must
// treat every word on the live stack — CALL return addresses and
// signal-frame saved RIPs alike — as a potential resume point. A
// planted address pointing into a feature block has to veto the fast
// path even though no RIP is anywhere near it.
func TestLivePatchStackReturnAddressForcesFallback(t *testing.T) {
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9303},
		Options{LiveQuiesceRounds: 2})

	root, err := tb.m.Process(c.PID())
	if err != nil {
		t.Fatal(err)
	}
	mem := root.Mem()
	vma, ok := mem.VMAAt(root.Reg(15 /* isa.SP */))
	if !ok {
		t.Fatal("root has no stack VMA")
	}
	// Plant a saved return address at the very top of the stack — the
	// initial-frame region a parked server never rewrites — pointing
	// into the first feature block.
	slot := vma.End - 8
	orig, err := mem.ReadU64(slot)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.WriteU64(slot, blocks[0].Addr); err != nil {
		t.Fatal(err)
	}

	stats, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatalf("fallback transaction failed: %v", err)
	}
	if stats.LivePatched || !stats.FellBack {
		t.Fatalf("patched with a live return address into the block: %+v", stats)
	}
	if !strings.Contains(stats.FallbackReason, "stack word") {
		t.Errorf("fallback reason %q, want a stack-word conflict", stats.FallbackReason)
	}

	// The fallback transaction still disabled the feature.
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after fallback -> %q, want 403", got)
	}

	// Clean the planted word off the (restored) guest's stack.
	procs := tb.m.Processes()
	if len(procs) > 0 {
		_ = procs[0].Mem().WriteU64(slot, orig)
	}
}

// TestLivePatchFallbackLadder sweeps every "cannot take the fast path"
// rung: ineligible policy, verifier mode, missing handler library, and
// injected faults at each core.livepatch.* site. Each rung must fall
// back to the transaction, succeed, and record why in Stats.
func TestLivePatchFallbackLadder(t *testing.T) {
	cases := []struct {
		name    string
		policy  Policy
		opts    Options // Tree/Verifier/LiveQuiesceRounds extras
		handler bool    // pre-install the handler library
		arm     func(in *faultinject.Injector)
		reason  string
	}{
		{"unmap-policy", PolicyUnmapPages, Options{}, true, nil, "requires the checkpoint transaction"},
		{"verifier-mode", PolicyBlockEntry, Options{Verifier: true}, true, nil, "verifier mode"},
		{"no-handler", PolicyBlockEntry, Options{}, false, nil, "handler library not mapped"},
		{"quiesce-fault", PolicyBlockEntry, Options{}, true,
			func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteLivePatchQuiesce) }, "quiesce fault"},
		{"patch-fault", PolicyBlockEntry, Options{}, true,
			func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteLivePatchPatch) }, "patch fault"},
		{"commit-fault", PolicyBlockEntry, Options{}, true,
			func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteLivePatchCommit) }, "commit fault"},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: uint16(9310 + ci)})
			blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
			if len(blocks) == 0 {
				t.Fatal("no feature blocks identified")
			}
			opts := tc.opts
			opts.RedirectTo = tb.errPathAddr(t)
			c, err := New(tb.m, tb.proc.PID(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if tc.handler {
				if _, err := c.InstallHandler(); err != nil {
					t.Fatal(err)
				}
			}
			if tc.arm != nil {
				in := faultinject.New(1)
				tc.arm(in)
				tb.m.SetFaultHook(in)
				defer tb.m.SetFaultHook(nil)
			}

			stats, err := c.DisableBlocksLive("webdav-write", blocks, tc.policy)
			if err != nil {
				t.Fatalf("fallback transaction failed: %v", err)
			}
			if stats.LivePatched {
				t.Fatalf("fast path taken on the %s rung: %+v", tc.name, stats)
			}
			if !stats.FellBack || !strings.Contains(stats.FallbackReason, tc.reason) {
				t.Fatalf("FellBack=%v reason=%q, want reason containing %q",
					stats.FellBack, stats.FallbackReason, tc.reason)
			}
			if c.DisabledBlockCount() == 0 {
				t.Fatal("fallback did not disable the blocks")
			}
			// Verifier mode self-heals trapped blocks by design, so the
			// 403 probe only applies to the plain block-entry rungs.
			if tc.policy == PolicyBlockEntry && !tc.opts.Verifier {
				if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
					t.Fatalf("PUT after fallback -> %q, want 403", got)
				}
			}
		})
	}
}

// TestLivePatchAbortUnwindsText: a BeforeCommit veto on the fast path
// is a hard ErrAborted, not a fallback — the fleet halt gate must stop
// both paths identically — and every INT3 byte already written must be
// unwound so the guest keeps its pristine text.
func TestLivePatchAbortUnwindsText(t *testing.T) {
	halted := true
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9320}, Options{})
	c.opts.BeforeCommit = func(attempt int) error {
		if halted {
			return errors.New("rollout halted")
		}
		return nil
	}

	_, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("halted live patch error = %v, want ErrAborted", err)
	}
	full, partial, err := c.CountPatched(c.FilterProtected(blocks), PolicyBlockEntry)
	if err != nil {
		t.Fatal(err)
	}
	if full != 0 || partial != 0 {
		t.Fatalf("aborted live patch left INT3 behind: full=%d partial=%d", full, partial)
	}
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT after aborted live patch -> %q, want untouched 201", got)
	}

	// Lift the halt: the same customizer live-patches cleanly.
	halted = false
	stats, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
	if err != nil || !stats.LivePatched {
		t.Fatalf("live patch after abort: %v (stats %+v)", err, stats)
	}
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after commit -> %q, want 403", got)
	}
}

// TestLivePatchChaosSeeds sweeps seeded single faults across the
// core.livepatch.* sites (quiesce, one per patch write, commit). The
// invariant: any injected fault unwinds the partial patch, falls back
// to the transaction, and ends with the feature disabled and the guest
// serving — never a half-patched text or a dead guest.
func TestLivePatchChaosSeeds(t *testing.T) {
	runLivePatchChaosSeeds(t, kernel.ModeInterpret, 9321)
}

// TestLivePatchChaosSeedsTranslate is the same sweep with the guest
// executing through the basic-block translation cache. Every INT3
// store, unwind write and fallback-transaction restore now races a
// cache full of pre-decoded blocks; the 403/200/201 probes prove a
// patched (or unwound) page never executes stale cached code.
func TestLivePatchChaosSeedsTranslate(t *testing.T) {
	runLivePatchChaosSeeds(t, kernel.ModeTranslate, 9324)
}

func runLivePatchChaosSeeds(t *testing.T, mode kernel.ExecMode, port uint16) {
	tb := newTestbedExec(t, webserv.Config{Name: "lighttpd", Port: port}, mode)
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	if len(blocks) == 0 {
		t.Fatal("no feature blocks identified")
	}
	errPath := tb.errPathAddr(t)
	// One quiesce consult + one per patched block + one commit consult.
	hitsPerRun := 1 + len(blocks) + 1

	for seed := int64(1); seed <= 20; seed++ {
		in := faultinject.New(seed)
		in.FailAt(faultinject.PrefixLivePatch, 1+int(seed-1)%hitsPerRun)
		tb.m.SetFaultHook(in)
		c, err := New(tb.m, tb.currentRoot(t), Options{RedirectTo: errPath})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.InstallHandler(); err != nil {
			t.Fatalf("seed %d: install handler: %v", seed, err)
		}
		stats, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
		tb.m.SetFaultHook(nil)
		if err != nil {
			t.Fatalf("seed %d: fallback transaction failed: %v", seed, err)
		}
		if in.Injected() == 0 {
			t.Fatalf("seed %d: no fault fired (events %v)", seed, in.Events())
		}
		if stats.LivePatched || !stats.FellBack {
			t.Fatalf("seed %d: fault did not force a fallback: %+v", seed, stats)
		}
		if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
			t.Fatalf("seed %d: PUT after fallback -> %q, want 403", seed, got)
		}
		if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
			t.Fatalf("seed %d: GET after fallback -> %q", seed, got)
		}
		// Reset for the next seed.
		if _, err := c.EnableBlocks("webdav-write"); err != nil {
			t.Fatalf("seed %d: enable: %v", seed, err)
		}
		if got := tb.request(t, "PUT /f x\n"); !strings.Contains(got, "201") {
			t.Fatalf("seed %d: PUT after re-enable -> %q, want 201", seed, got)
		}
	}
	if mode == kernel.ModeTranslate {
		// The sweep must actually have exercised the cache AND its
		// invalidation protocol: the guest served from cached blocks,
		// and the INT3 stores / unwinds flushed blocks on the patched
		// pages (had they not, the 403 probes above would have seen
		// stale code).
		st := tb.m.BlockCacheStats()
		if st.Hits == 0 {
			t.Fatalf("translate-mode chaos never hit the block cache: %+v", st)
		}
		if st.PageFlushes == 0 {
			t.Fatalf("no cached block was flushed by the patch writes: %+v", st)
		}
	}
}

// TestInstallHandlerIdempotent: a second InstallHandler on an already
// equipped guest is a no-op — no rewrite, no PID change, zero Stats.
func TestInstallHandlerIdempotent(t *testing.T) {
	_, _, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9322}, Options{})
	pid := c.PID()
	stats, err := c.InstallHandler()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 0 || c.PID() != pid {
		t.Fatalf("second InstallHandler was not a no-op: %+v (pid %d -> %d)", stats, pid, c.PID())
	}
}

// TestCountPatchedClassifiesTornText: CountPatched must distinguish a
// fully patched block set, an untouched one, and torn text (some
// blocks INT3, some pristine) — the classification a resumed rollout
// controller depends on to refuse blind re-patching.
func TestCountPatchedClassifiesTornText(t *testing.T) {
	tb, blocks, c := liveTestbed(t, webserv.Config{Name: "lighttpd", Port: 9323}, Options{})
	filtered := c.FilterProtected(blocks)
	if len(filtered) < 2 {
		t.Skipf("need >= 2 blocks to tear, got %d", len(filtered))
	}

	full, partial, err := c.CountPatched(filtered, PolicyBlockEntry)
	if err != nil || full != 0 || partial != 0 {
		t.Fatalf("pristine guest: full=%d partial=%d err=%v", full, partial, err)
	}

	// Simulate the torn window a crash mid-patch leaves: INT3 on the
	// first block only, no bookkeeping.
	root, err := tb.m.Process(c.PID())
	if err != nil {
		t.Fatal(err)
	}
	orig, err := root.Mem().Read(filtered[0].Addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Mem().Write(filtered[0].Addr, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	full, partial, err = c.CountPatched(filtered, PolicyBlockEntry)
	if err != nil || full != 1 || partial != 0 {
		t.Fatalf("torn guest: full=%d partial=%d err=%v, want full=1", full, partial, err)
	}
	if err := root.Mem().Write(filtered[0].Addr, orig); err != nil {
		t.Fatal(err)
	}

	stats, err := c.DisableBlocksLive("webdav-write", blocks, PolicyBlockEntry)
	if err != nil || !stats.LivePatched {
		t.Fatalf("live disable: %v (stats %+v)", err, stats)
	}
	full, partial, err = c.CountPatched(filtered, PolicyBlockEntry)
	if err != nil || full != len(filtered) || partial != 0 {
		t.Fatalf("patched guest: full=%d partial=%d err=%v, want full=%d",
			full, partial, err, len(filtered))
	}
}
