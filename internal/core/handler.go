package core

import (
	"fmt"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/faultinject"
)

// handlerLibSrc is the DynaCut signal-handler shared library injected
// into customized processes (§3.2.2/§3.2.3). On SIGTRAP it:
//
//  1. increments a hit counter,
//  2. consults the verifier table: if the fault address was patched in
//     verifier mode, the original byte is restored in place, the
//     address is appended to the false-removal log, and the saved RIP
//     is rewound so the instruction re-executes (§3.2.3);
//  3. otherwise redirects the saved RIP to the configured error path
//     (e.g. a web server's "403 Forbidden" responder), or terminates
//     if no redirect target is configured — the behaviour of prior
//     static debloaters.
//
// Handler ABI: r1 = signal number, r2 = fault address, r3 = signal
// frame pointer (saved RIP at [r3]). The restorer issues sigreturn.
const handlerLibSrc = `
.text
.global dynacut_handler
dynacut_handler:
	lea r9, hits
	load r10, [r9]
	add r10, 1
	store [r9], r10

	; verifier-table lookup: entries are (addr, origByte) quads
	lea r9, vtable_len
	load r10, [r9]
	lea r11, vtable
	mov r12, 0
vloop:
	cmp r12, r10
	jge vnotfound
	load r13, [r11]
	cmp r13, r2
	je vfound
	add r11, 16
	add r12, 1
	jmp vloop

vfound:
	load r13, [r11+8]
	storeb [r2], r13     ; restore the original first byte in place
	store [r3], r2       ; retry the restored instruction on sigreturn
	lea r9, flog_len
	load r10, [r9]
	cmp r10, 256         ; flog holds 256 entries; past that only count
	jge vlogfull
	lea r11, flog
	mov r13, r10
	shl r13, 3
	add r11, r13
	store [r11], r2      ; log the falsely-removed address
vlogfull:
	add r10, 1           ; flog_len counts every revert, stored or not
	store [r9], r10
	ret

vnotfound:
	lea r9, redirect_to
	load r5, [r9]
	cmp r5, 0
	je vexit
	store [r3], r5       ; jump to the application's error handler
	ret
vexit:
	mov r0, 1            ; exit(134): no error handler configured
	mov r1, 134
	syscall

.global dynacut_restorer
dynacut_restorer:
	mov r1, sp
	mov r0, 12           ; sigreturn
	syscall

.data
.global hits
hits: .quad 0
.global redirect_to
redirect_to: .quad 0
.global vtable_len
vtable_len: .quad 0
.global flog_len
flog_len: .quad 0

.bss
.align 8
.global vtable
vtable: .space 4096      ; 256 (addr, byte) entries
.global flog
flog: .space 2048        ; 256 logged addresses
`

// HandlerLibName is the soname of the injected library.
const HandlerLibName = "dynacut-handler.so"

// maxVerifierEntries bounds the in-guest verifier table.
const maxVerifierEntries = 256

// BuildHandlerLib assembles and links the signal-handler library.
func BuildHandlerLib() (*delf.File, error) {
	obj, err := asm.Assemble(handlerLibSrc)
	if err != nil {
		return nil, fmt.Errorf("assemble handler lib: %w", err)
	}
	lib, err := link.Library(HandlerLibName, []*asm.Object{obj})
	if err != nil {
		return nil, fmt.Errorf("link handler lib: %w", err)
	}
	return lib, nil
}

// Handler is the per-process view of an injected handler library.
type Handler struct {
	// Exported addresses inside the target process.
	HandlerAddr  uint64
	RestorerAddr uint64
	HitsAddr     uint64
	RedirectAddr uint64
	VTableLen    uint64
	VTable       uint64
	FLogLen      uint64
	FLog         uint64
}

// injectHandler inserts the handler library into pid's image and arms
// the SIGTRAP sigaction. redirectTo configures the error-path target
// (0 = terminate on unexpected traps).
//
// Injection is all-or-nothing: if arming fails after InsertLibrary
// succeeded (sigaction update, redirect-target write, or the
// SiteInjectArm fault window between them), the freshly mapped
// library is unwound from the image so a failed injection never
// leaves an orphaned, handle-less mapping behind. If even the unwind
// fails, the leaked mapping is surfaced in the returned error.
func injectHandler(ed *crit.Editor, pid int, lib *delf.File, redirectTo uint64) (*Handler, error) {
	exports, err := ed.InsertLibrary(pid, lib, 0)
	if err != nil {
		return nil, fmt.Errorf("inject handler: %w", err)
	}
	unwind := func(cause error) error {
		if uerr := ed.RemoveLibrary(pid, lib.Name); uerr != nil {
			return fmt.Errorf("arm handler: %w (unwind failed: %v; library %q leaked at %#x in pid %d image)",
				cause, uerr, lib.Name, exports["dynacut_handler"], pid)
		}
		return fmt.Errorf("arm handler: %w (injected library unwound)", cause)
	}
	h := &Handler{
		HandlerAddr:  exports["dynacut_handler"],
		RestorerAddr: exports["dynacut_restorer"],
		HitsAddr:     exports["hits"],
		RedirectAddr: exports["redirect_to"],
		VTableLen:    exports["vtable_len"],
		VTable:       exports["vtable"],
		FLogLen:      exports["flog_len"],
		FLog:         exports["flog"],
	}
	if h.HandlerAddr == 0 || h.RestorerAddr == 0 {
		return nil, unwind(fmt.Errorf("handler lib missing exports"))
	}
	if err := ed.Fault(faultinject.SiteInjectArm, pid); err != nil {
		return nil, unwind(err)
	}
	if err := ed.SetSigaction(pid, 5 /* SIGTRAP */, h.HandlerAddr, h.RestorerAddr); err != nil {
		return nil, unwind(err)
	}
	if redirectTo != 0 {
		if err := writeU64(ed, pid, h.RedirectAddr, redirectTo); err != nil {
			return nil, unwind(err)
		}
	}
	return h, nil
}

// handlerFromModule re-derives the per-process handler view from an
// already-mapped module entry: the injected base is the module's low
// address minus the library's image start, and every export is base +
// symbol value (exactly how InsertLibrary computed them).
func handlerFromModule(lib *delf.File, mod criu.ModuleEntry) *Handler {
	lo, _ := lib.ImageSpan()
	base := mod.Lo - lo
	at := func(name string) uint64 {
		sym, err := lib.Symbol(name)
		if err != nil {
			return 0
		}
		return base + sym.Value
	}
	return &Handler{
		HandlerAddr:  at("dynacut_handler"),
		RestorerAddr: at("dynacut_restorer"),
		HitsAddr:     at("hits"),
		RedirectAddr: at("redirect_to"),
		VTableLen:    at("vtable_len"),
		VTable:       at("vtable"),
		FLogLen:      at("flog_len"),
		FLog:         at("flog"),
	}
}

// addVerifierEntry appends (addr, origByte) to the in-guest table.
func addVerifierEntry(ed *crit.Editor, pid int, h *Handler, index int, addr uint64, orig byte) error {
	if index >= maxVerifierEntries {
		return fmt.Errorf("verifier table full (%d entries)", maxVerifierEntries)
	}
	entry := h.VTable + uint64(index)*16
	if err := writeU64(ed, pid, entry, addr); err != nil {
		return err
	}
	if err := writeU64(ed, pid, entry+8, uint64(orig)); err != nil {
		return err
	}
	return writeU64(ed, pid, h.VTableLen, uint64(index+1))
}

func writeU64(ed *crit.Editor, pid int, addr, v uint64) error {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return ed.WriteMem(pid, addr, b)
}
