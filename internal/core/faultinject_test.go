package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/crit"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// currentRoot finds the live root PID (it changes after every restore,
// including rollback restores).
func (tb *testbed) currentRoot(t *testing.T) int {
	t.Helper()
	procs := tb.m.Processes()
	if len(procs) == 0 {
		t.Fatal("guest died")
	}
	return procs[0].PID()
}

// assertServing checks the invariant every chaos case must preserve:
// the guest answers both wanted and (still-enabled) undesired traffic.
func (tb *testbed) assertServing(t *testing.T) {
	t.Helper()
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET -> %q, want 200", got)
	}
	if got := tb.request(t, "PUT /chaos x\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT -> %q, want 201 (feature must not be half-disabled)", got)
	}
}

// TestChaosSingleFaultInvariant sweeps every fault-hook site with 20
// fixed seeds each. The invariant: one injected fault anywhere in the
// checkpoint → edit → restore → health-check cycle leaves the guest
// alive and serving, with Stats.RolledBack reporting whether the
// recovery was a rollback (post-commit fault) or a refusal to start
// (pre-commit fault).
func TestChaosSingleFaultInvariant(t *testing.T) {
	const seedsPerSite = 20
	cases := []struct {
		name     string
		arm      func(in *faultinject.Injector)
		rollback bool // fault lands past the commit point
		injected bool // final error chains to faultinject.ErrInjected
	}{
		{"dump-proc", func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteDumpProc) }, false, true},
		{"dump-pagemap", func(in *faultinject.Injector) { in.FailPageMap() }, false, true},
		{"edit-write", func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteEditWrite) }, false, true},
		{"restore-proc", func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteRestoreProc) }, true, true},
		{"restore-vma", func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteRestoreVMA) }, true, true},
		{"restore-pages", func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteRestorePages) }, true, true},
		{"restore-files", func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteRestoreFiles) }, true, true},
		{"health", func(in *faultinject.Injector) { in.FailOnce(faultinject.SiteHealth) }, true, true},
		{"pristine-corrupt", func(in *faultinject.Injector) { in.CorruptImageByte(faultinject.SitePristine, -1) }, false, false},
		{"pristine-truncate", func(in *faultinject.Injector) { in.TruncateBlob(faultinject.SitePristine, -1) }, false, false},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: uint16(9100 + ci)})
			blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
			if len(blocks) == 0 {
				t.Fatal("no feature blocks identified")
			}
			errPath := tb.errPathAddr(t)

			for seed := int64(1); seed <= seedsPerSite; seed++ {
				in := faultinject.New(seed)
				tc.arm(in)
				tb.m.SetFaultHook(in)
				c, err := New(tb.m, tb.currentRoot(t), Options{RedirectTo: errPath})
				if err != nil {
					t.Fatal(err)
				}
				stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
				tb.m.SetFaultHook(nil)

				if err == nil {
					t.Fatalf("seed %d: injected fault did not surface", seed)
				}
				if in.Injected() == 0 {
					t.Fatalf("seed %d: no fault actually fired (events: %v)", seed, in.Events())
				}
				if stats.RolledBack != tc.rollback {
					t.Fatalf("seed %d: RolledBack = %v, want %v (err: %v)",
						seed, stats.RolledBack, tc.rollback, err)
				}
				if tc.rollback && !errors.Is(err, ErrRolledBack) {
					t.Fatalf("seed %d: error does not chain ErrRolledBack: %v", seed, err)
				}
				if tc.injected && !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("seed %d: error does not chain ErrInjected: %v", seed, err)
				}
				if errors.Is(err, ErrRollbackFailed) {
					t.Fatalf("seed %d: rollback itself failed: %v", seed, err)
				}
				// The guest survived and the feature is fully intact.
				tb.assertServing(t)
			}

			// With the injector gone the same customization commits.
			c, err := New(tb.m, tb.currentRoot(t), Options{RedirectTo: errPath})
			if err != nil {
				t.Fatal(err)
			}
			stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
			if err != nil {
				t.Fatalf("disable after chaos: %v", err)
			}
			if stats.RolledBack || stats.Attempts != 1 {
				t.Errorf("clean run stats: %+v", stats)
			}
			if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
				t.Fatalf("PUT after disable -> %q, want 403", got)
			}
			if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
				t.Fatalf("GET after disable -> %q", got)
			}
		})
	}
}

// TestChaosRestoreStepSweep walks a single fault through consecutive
// restore steps (the FailRestoreAtStep(n) knob): whichever step dies,
// the rollback restores service.
func TestChaosRestoreStepSweep(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9130})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	errPath := tb.errPathAddr(t)
	for step := 1; step <= 4; step++ {
		in := faultinject.New(int64(step))
		in.FailRestoreAtStep(step)
		tb.m.SetFaultHook(in)
		c, err := New(tb.m, tb.currentRoot(t), Options{RedirectTo: errPath})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
		tb.m.SetFaultHook(nil)
		if !errors.Is(err, ErrRolledBack) || !errors.Is(err, ErrRestoreFailed) {
			t.Fatalf("step %d: err = %v, want ErrRolledBack+ErrRestoreFailed", step, err)
		}
		if !stats.RolledBack {
			t.Fatalf("step %d: RolledBack not set", step)
		}
		tb.assertServing(t)
	}
}

// TestRollbackPreservesLiveConnectionPerPolicy: for every removal
// policy, a restore failure mid-rewrite must not cost the established
// client connection, and the customizer must remain fully usable
// (disable, then re-enable) afterwards.
func TestRollbackPreservesLiveConnectionPerPolicy(t *testing.T) {
	policies := []Policy{PolicyBlockEntry, PolicyWipeBlocks, PolicyUnmapPages}
	for i, pol := range policies {
		t.Run(pol.String(), func(t *testing.T) {
			tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: uint16(9140 + i)})
			blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
			errPath := tb.errPathAddr(t)

			// Open a connection before the rewrite; the server accepts
			// and blocks in read.
			conn, err := tb.m.Dial(tb.app.Config.Port)
			if err != nil {
				t.Fatal(err)
			}
			tb.m.Run(50000)

			in := faultinject.New(int64(1000 + i))
			in.FailRestoreAtStep(1)
			tb.m.SetFaultHook(in)
			c, err := New(tb.m, tb.proc.PID(), Options{RedirectTo: errPath})
			if err != nil {
				t.Fatal(err)
			}
			stats, err := c.DisableBlocks("webdav-write", blocks, pol)
			tb.m.SetFaultHook(nil)
			if !errors.Is(err, ErrRolledBack) {
				t.Fatalf("err = %v, want ErrRolledBack", err)
			}
			if !stats.RolledBack {
				t.Fatal("RolledBack not set")
			}

			// The pre-rewrite connection survived the failed rewrite.
			if _, err := conn.Write([]byte("GET /\n")); err != nil {
				t.Fatal(err)
			}
			tb.m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 }, 2_000_000)
			if got := string(conn.ReadAll()); !strings.Contains(got, "200") {
				t.Fatalf("rolled-back connection -> %q", got)
			}

			// The same customizer still disables...
			stats2, err := c.DisableBlocks("webdav-write", blocks, pol)
			if err != nil {
				t.Fatalf("disable after rollback: %v", err)
			}
			if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
				t.Fatalf("PUT after disable -> %q", got)
			}
			if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
				t.Fatalf("GET after disable -> %q", got)
			}
			// ...and re-enables (unmapped pages are one-way, so only
			// check byte-wise policies there).
			if stats2.PagesUnmapped == 0 {
				if _, err := c.EnableBlocks("webdav-write"); err != nil {
					t.Fatalf("enable after rollback: %v", err)
				}
				if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "201") {
					t.Fatalf("PUT after re-enable -> %q", got)
				}
			}
		})
	}
}

// TestTransientFaultRetriedToCommit: MaxAttempts lets a transient
// restore fault roll back once and then commit on the retry.
func TestTransientFaultRetriedToCommit(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9150})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	in := faultinject.New(7)
	in.FailTransient(faultinject.PrefixRestore, 1, 1) // first restore step only
	tb.m.SetFaultHook(in)
	defer tb.m.SetFaultHook(nil)
	c, err := New(tb.m, tb.proc.PID(), Options{
		RedirectTo:  tb.errPathAddr(t),
		MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatalf("retry did not rescue the transient fault: %v", err)
	}
	if stats.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", stats.Attempts)
	}
	if stats.RolledBack {
		t.Error("RolledBack set on a committed transaction")
	}
	if stats.BlocksPatched != len(blocks) {
		t.Errorf("patched %d, want %d (retry must not double-count)", stats.BlocksPatched, len(blocks))
	}
	if got := tb.request(t, "PUT /f data\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after committed retry -> %q, want 403", got)
	}
	if got := tb.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET after committed retry -> %q", got)
	}
}

// TestTransientHealthFaultRetried: same, with the fault in the
// post-restore health check.
func TestTransientHealthFaultRetried(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9151})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	in := faultinject.New(8)
	in.FailTransient(faultinject.SiteHealth, 1, 1)
	tb.m.SetFaultHook(in)
	defer tb.m.SetFaultHook(nil)
	c, err := New(tb.m, tb.proc.PID(), Options{
		RedirectTo:  tb.errPathAddr(t),
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	if err != nil {
		t.Fatalf("retry did not rescue the health fault: %v", err)
	}
	if stats.Attempts != 2 || stats.RolledBack {
		t.Errorf("stats = %+v, want Attempts=2 RolledBack=false", stats)
	}
	if stats.HealthCheck <= 0 {
		t.Error("HealthCheck duration not recorded")
	}
}

// TestUserHealthCheckFailureRollsBack: a failing Options.HealthCheck
// (the canary) vetoes the commit and the guest rolls back intact.
func TestUserHealthCheckFailureRollsBack(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9152})
	blocks := tb.profileFeatures(t, wantedReqs, undesiredReqs)
	probes := 0
	c, err := New(tb.m, tb.proc.PID(), Options{
		RedirectTo: tb.errPathAddr(t),
		HealthCheck: func(m *kernel.Machine, pid int) error {
			probes++
			if p, err := m.Process(pid); err != nil || p.Exited() {
				t.Errorf("probe saw dead root pid %d", pid)
			}
			return errors.New("canary says no")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.DisableBlocks("webdav-write", blocks, PolicyBlockEntry)
	if !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v, want ErrRolledBack", err)
	}
	if !stats.RolledBack || probes != 1 {
		t.Fatalf("stats = %+v, probes = %d", stats, probes)
	}
	tb.assertServing(t)
}

// TestEditedImagesRevalidatedBeforeKill: an edit that leaves the
// images unrestorable is rejected by Validate while the original
// processes are still alive — the guest is never killed.
func TestEditedImagesRevalidatedBeforeKill(t *testing.T) {
	tb := newTestbed(t, webserv.Config{Name: "lighttpd", Port: 9153})
	c, err := New(tb.m, tb.proc.PID(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pidBefore := tb.proc.PID()
	stats, err := c.Rewrite(func(ed *crit.Editor, pids []int) error {
		pi, err := ed.Set().Proc(pids[0])
		if err != nil {
			return err
		}
		pi.Core.RIP = 0xdead_beef_f000 // unmapped: restore would SIGSEGV
		return nil
	})
	if !errors.Is(err, criu.ErrInconsistentImage) {
		t.Fatalf("err = %v, want ErrInconsistentImage", err)
	}
	if stats.RolledBack {
		t.Error("RolledBack set for a pre-commit refusal")
	}
	// The original process was never touched: same PID, still serving.
	p, err := tb.m.Process(pidBefore)
	if err != nil || p.Exited() {
		t.Fatal("original process was killed by a rejected edit")
	}
	tb.assertServing(t)
}
