package loadgen

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestSchedulesDeterministic: every schedule — including the seeded
// stochastic ones — must materialize a byte-identical arrival sequence
// on every call, and every arrival must land inside the horizon in
// nondecreasing order. Reproducibility is the whole point of running
// load on a virtual clock.
func TestSchedulesDeterministic(t *testing.T) {
	const horizon = 1_000_000
	trace, err := ParseTraceCSV("3,GET a\n5,PING\n0\n2,SET b 1", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	schedules := []Schedule{
		NewConstant(7_000),
		NewStepRamp(2, 3, 90_000),
		NewPoisson(9_000, 1),
		NewPoisson(9_000, 424242),
		trace,
	}
	for _, s := range schedules {
		a1 := s.Arrivals(horizon)
		a2 := s.Arrivals(horizon)
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("%s: two materializations differ", s.Name())
		}
		if len(a1) == 0 {
			t.Errorf("%s: no arrivals", s.Name())
			continue
		}
		for i, a := range a1 {
			if a.At >= horizon {
				t.Errorf("%s: arrival %d at %d outside horizon %d", s.Name(), i, a.At, horizon)
			}
			if i > 0 && a.At < a1[i-1].At {
				t.Errorf("%s: arrival %d at %d before predecessor %d", s.Name(), i, a.At, a1[i-1].At)
			}
		}
	}
}

func TestConstantScheduleShape(t *testing.T) {
	got := NewConstant(10).Arrivals(100)
	if len(got) != 10 {
		t.Fatalf("arrivals = %d, want 10", len(got))
	}
	for i, a := range got {
		if a.At != uint64(i*10) {
			t.Fatalf("arrival %d at %d, want %d", i, a.At, i*10)
		}
	}
	// Zero interval falls back to the default instead of looping.
	if n := len(NewConstant(0).Arrivals(100_000)); n != 10 {
		t.Fatalf("default-interval arrivals = %d", n)
	}
}

func TestStepRampShape(t *testing.T) {
	s := NewStepRamp(2, 2, 100)
	got := s.Arrivals(300)
	// Slot 0: 2 arrivals, slot 1: 4, slot 2: 6.
	perSlot := map[int]int{}
	for _, a := range got {
		perSlot[int(a.At/100)]++
	}
	want := map[int]int{0: 2, 1: 4, 2: 6}
	if !reflect.DeepEqual(perSlot, want) {
		t.Fatalf("per-slot counts = %v, want %v", perSlot, want)
	}
	// A negative step ramps down and bottoms out at silence without
	// underflowing.
	down := NewStepRamp(2, -1, 100).Arrivals(500)
	perSlot = map[int]int{}
	for _, a := range down {
		perSlot[int(a.At/100)]++
	}
	if perSlot[0] != 2 || perSlot[1] != 1 || perSlot[2] != 0 || perSlot[3] != 0 {
		t.Fatalf("ramp-down per-slot = %v", perSlot)
	}
}

func TestPoissonSeedsAndRate(t *testing.T) {
	const horizon, mean = 1_000_000, 10_000
	a := NewPoisson(mean, 7).Arrivals(horizon)
	b := NewPoisson(mean, 8).Arrivals(horizon)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical sequences")
	}
	// The realized rate should be in the ballpark of horizon/mean
	// (loose 2x band — this is a smoke check, not a statistics test).
	want := horizon / mean
	if len(a) < want/2 || len(a) > want*2 {
		t.Fatalf("arrivals = %d, want within [%d, %d]", len(a), want/2, want*2)
	}
}

func TestParseTraceCSV(t *testing.T) {
	ts, err := ParseTraceCSV("invocations,payload\n2,GET a\n0\n3,PING", 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Slots() != 3 || ts.Ticks() != 3_000 {
		t.Fatalf("slots = %d, ticks = %d", ts.Slots(), ts.Ticks())
	}
	got := ts.Arrivals(10_000)
	if len(got) != 5 {
		t.Fatalf("arrivals = %d, want 5", len(got))
	}
	for _, a := range got[:2] {
		if a.Payload != "GET a" || a.At >= 1_000 {
			t.Fatalf("slot-0 arrival = %+v", a)
		}
	}
	for _, a := range got[2:] {
		if a.Payload != "PING" || a.At < 2_000 || a.At >= 3_000 {
			t.Fatalf("slot-2 arrival = %+v", a)
		}
	}
	// The horizon clips mid-trace.
	if n := len(ts.Arrivals(1_000)); n != 2 {
		t.Fatalf("clipped arrivals = %d, want 2", n)
	}

	for _, bad := range []string{"", "# only comments\n", "2\nnope,x", "-1"} {
		if _, err := ParseTraceCSV(bad, 0); !errors.Is(err, ErrBadTrace) {
			t.Errorf("ParseTraceCSV(%q) err = %v, want ErrBadTrace", bad, err)
		}
	}
	// Error messages carry the offending line.
	_, err = ParseTraceCSV("2\nnope,x", 0)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line number", err)
	}
}
