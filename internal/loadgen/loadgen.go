// Package loadgen is the host-side workload driver — the
// redis-benchmark analogue the paper uses to measure Figure 8. It
// fires request mixes at a guest server, tracks per-bucket throughput
// on the machine's deterministic virtual clock, and records request
// latency (in guest instructions) as a histogram with percentile
// queries.
package loadgen

import (
	"errors"
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/kernel"
)

// Request is one weighted entry of a workload mix.
type Request struct {
	Payload string
	Weight  int
}

// Mix is a deterministic request mix: requests are interleaved
// proportionally to weight (no randomness, so runs are reproducible).
type Mix struct {
	entries []Request
	seq     []int // expanded weighted round-robin schedule
	next    int
}

// NewMix builds a mix. Weights ≤ 0 default to 1.
func NewMix(reqs ...Request) *Mix {
	m := &Mix{entries: reqs}
	for i, r := range reqs {
		w := r.Weight
		if w <= 0 {
			w = 1
		}
		for j := 0; j < w; j++ {
			m.seq = append(m.seq, i)
		}
	}
	return m
}

// Next returns the next request payload in the schedule.
func (m *Mix) Next() string {
	if len(m.seq) == 0 {
		return ""
	}
	r := m.entries[m.seq[m.next%len(m.seq)]]
	m.next++
	return r.Payload
}

// Histogram tracks request latencies in guest instructions.
type Histogram struct {
	samples []uint64
	sorted  bool
}

// Add records one latency sample.
func (h *Histogram) Add(v uint64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Percentile returns the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) uint64 {
	if len(h.samples) == 0 || p <= 0 || p > 100 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	idx := int(p/100*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Mean returns the average latency.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range h.samples {
		sum += v
	}
	return float64(sum) / float64(len(h.samples))
}

// Bucket is one throughput sample on the virtual-time axis.
type Bucket struct {
	Index     int
	Responses int
}

// Result aggregates one driver run.
type Result struct {
	Buckets  []Bucket
	Latency  Histogram
	Errors   int
	Total    int
	Failures []string // first few failure descriptions
}

// Throughput returns responses in bucket i (0 outside the run).
func (r *Result) Throughput(i int) int {
	if i < 0 || i >= len(r.Buckets) {
		return 0
	}
	return r.Buckets[i].Responses
}

// Driver fires a mix at a guest port on one machine.
type Driver struct {
	Machine *kernel.Machine
	Port    uint16
	Mix     *Mix
	// BucketTicks sizes one throughput bucket in guest instructions.
	BucketTicks uint64
	// RequestBudget bounds the instructions spent waiting for one
	// response before it is counted as an error.
	RequestBudget uint64
	// Hook, when set, runs before each bucket (e.g. to trigger a
	// rewrite at a specific point in the timeline).
	Hook func(bucket int) error
}

// Driver errors.
var ErrNoMix = errors.New("loadgen: driver needs a mix")

// Run drives the workload for the given number of buckets.
func (d *Driver) Run(buckets int) (*Result, error) {
	if d.Mix == nil {
		return nil, ErrNoMix
	}
	if d.BucketTicks == 0 {
		d.BucketTicks = 100_000
	}
	if d.RequestBudget == 0 {
		d.RequestBudget = 2_000_000
	}
	res := &Result{}
	start := d.Machine.Clock()
	for b := 0; b < buckets; b++ {
		if d.Hook != nil {
			if err := d.Hook(b); err != nil {
				return nil, fmt.Errorf("bucket %d hook: %w", b, err)
			}
		}
		end := start + uint64(b+1)*d.BucketTicks
		count := 0
		for d.Machine.Clock() < end {
			lat, err := d.one()
			res.Total++
			if err != nil {
				res.Errors++
				if len(res.Failures) < 4 {
					res.Failures = append(res.Failures, err.Error())
				}
				break
			}
			res.Latency.Add(lat)
			count++
		}
		res.Buckets = append(res.Buckets, Bucket{Index: b, Responses: count})
	}
	return res, nil
}

// one issues a single request and returns its latency in guest
// instructions.
func (d *Driver) one() (uint64, error) {
	conn, err := d.Machine.Dial(d.Port)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	payload := d.Mix.Next()
	t0 := d.Machine.Clock()
	if _, err := conn.Write([]byte(payload)); err != nil {
		return 0, err
	}
	ok := d.Machine.RunUntil(func() bool {
		return len(conn.ReadAllPeek()) > 0 || conn.Closed()
	}, d.RequestBudget)
	if !ok || len(conn.ReadAllPeek()) == 0 {
		return 0, fmt.Errorf("no response to %q", payload)
	}
	return d.Machine.Clock() - t0, nil
}
