// Package loadgen is the host-side workload driver — the
// redis-benchmark / serverless-loader analogue the paper uses to
// measure Figure 8. It fires request mixes at a guest server, tracks
// per-bucket throughput on the machine's deterministic virtual clock,
// and records request latency (in guest instructions) as a histogram
// with percentile queries.
//
// Two drivers share the accounting types:
//
//   - Driver is closed-loop: one request in flight, the next fired as
//     soon as the previous resolves. It measures the guest's service
//     capacity (Figure 8's shape).
//   - OpenDriver (openloop.go) is open-loop: requests fire at the
//     vticks a Schedule (schedule.go) dictates, whether or not earlier
//     responses are outstanding, with a bounded in-flight window and
//     explicit drop accounting. It measures what traffic experiences —
//     queueing delay, drops and downtime included — which is the only
//     honest way to observe a rewrite under sustained load.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/obs"
)

// Request is one weighted entry of a workload mix.
type Request struct {
	Payload string
	Weight  int
}

// Mix is a deterministic request mix: requests are interleaved
// proportionally to weight (no randomness, so runs are reproducible).
type Mix struct {
	entries []Request
	seq     []int // expanded weighted round-robin schedule
	next    int
}

// NewMix builds a mix. Weights ≤ 0 default to 1.
func NewMix(reqs ...Request) *Mix {
	m := &Mix{entries: reqs}
	for i, r := range reqs {
		w := r.Weight
		if w <= 0 {
			w = 1
		}
		for j := 0; j < w; j++ {
			m.seq = append(m.seq, i)
		}
	}
	return m
}

// Clone returns an independent mix with its own schedule cursor —
// concurrent drivers must not share one cursor.
func (m *Mix) Clone() *Mix {
	if m == nil {
		return nil
	}
	return NewMix(m.entries...)
}

// Next returns the next request payload in the schedule.
func (m *Mix) Next() string {
	if len(m.seq) == 0 {
		return ""
	}
	r := m.entries[m.seq[m.next%len(m.seq)]]
	m.next++
	return r.Payload
}

// Histogram tracks request latencies in guest instructions.
type Histogram struct {
	samples []uint64
	sorted  bool
}

// Add records one latency sample.
func (h *Histogram) Add(v uint64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Samples returns a copy of the recorded latencies (insertion order is
// not preserved once a percentile query has sorted them).
func (h *Histogram) Samples() []uint64 {
	return append([]uint64(nil), h.samples...)
}

// Percentile returns the p-th percentile (0 < p <= 100) by the
// ceiling nearest-rank method: the smallest sample v such that at
// least ceil(p/100 * N) samples are <= v. The previous truncating
// formula returned rank floor(p/100*N) — e.g. p99 of 50 samples gave
// rank 49 instead of 50 — systematically underreporting tails.
func (h *Histogram) Percentile(p float64) uint64 {
	if len(h.samples) == 0 || p <= 0 || p > 100 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Mean returns the average latency.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range h.samples {
		sum += v
	}
	return float64(sum) / float64(len(h.samples))
}

// Bucket is one throughput sample on the virtual-time axis: the
// window [Index*BucketTicks, (Index+1)*BucketTicks) from the run's
// start. Responses counts completions in the window; for the
// open-loop driver, Offered counts requests the schedule fired in the
// window, Dropped the arrivals shed because the in-flight window was
// full, and Errors the requests that resolved as failures there. The
// closed-loop driver fills Offered and Errors too (Offered = attempts
// begun in the window) and never drops.
type Bucket struct {
	Index     int
	Responses int
	Offered   int
	Dropped   int
	Errors    int
}

// Result aggregates one driver run.
type Result struct {
	Buckets []Bucket
	Latency Histogram
	// Errors counts requests that resolved as failures (no response,
	// truncated response, timeout, dial failure). Dropped counts
	// open-loop arrivals that were never fired because the in-flight
	// window was full. Total counts every scheduled/attempted request:
	// Total = completions + Errors + Dropped.
	Errors   int
	Dropped  int
	Total    int
	Failures []string // first few failure descriptions
}

// Throughput returns responses in bucket i (0 outside the run).
func (r *Result) Throughput(i int) int {
	if i < 0 || i >= len(r.Buckets) {
		return 0
	}
	return r.Buckets[i].Responses
}

// Served counts completed requests (latency samples).
func (r *Result) Served() int { return r.Latency.Count() }

// bucketAt returns the bucket covering offset vticks from the run's
// start, growing the slice as needed (dense, Index == position).
func (r *Result) bucketAt(offset, bucketTicks uint64) *Bucket {
	i := int(offset / bucketTicks)
	for len(r.Buckets) <= i {
		r.Buckets = append(r.Buckets, Bucket{Index: len(r.Buckets)})
	}
	return &r.Buckets[i]
}

// Driver fires a mix at a guest port on one machine, closed-loop: the
// next request is sent as soon as the previous one resolves.
type Driver struct {
	Machine *kernel.Machine
	Port    uint16
	Mix     *Mix
	// BucketTicks sizes one throughput bucket in guest instructions.
	BucketTicks uint64
	// RequestBudget bounds the instructions spent waiting for one
	// response before it is counted as an error. A failed request is
	// charged its full unused budget — the virtual time a real client
	// would burn before timing out — so bucket windows stay aligned no
	// matter how cheaply a request fails.
	RequestBudget uint64
	// DrainTicks is the quiet window: once a response has bytes, the
	// driver keeps granting DrainTicks-sized windows as long as new
	// bytes keep arriving, and declares the response complete after a
	// full window with none (0 = 50_000, matching Session's drain).
	DrainTicks uint64
	// Observer, when non-nil, receives per-request trace points
	// (loadgen.request / loadgen.error) and the loadgen.latency
	// histogram, so a run lands on the same mergeable timeline as the
	// rewrite pipeline's own spans.
	Observer *obs.Observer
	// Hook, when set, runs before each bucket (e.g. to trigger a
	// rewrite at a specific point in the timeline).
	Hook func(bucket int) error
}

// Driver errors.
var (
	ErrNoMix = errors.New("loadgen: driver needs a mix")
	// ErrTruncated marks a response whose connection was still open and
	// still mid-write when the request budget ran out.
	ErrTruncated = errors.New("loadgen: response truncated by request budget")
)

// defaultDrainTicks matches Session.requestOnce's drain window.
const defaultDrainTicks = 50_000

// Run drives the workload for the given number of buckets.
func (d *Driver) Run(buckets int) (*Result, error) {
	if d.Mix == nil {
		return nil, ErrNoMix
	}
	if d.BucketTicks == 0 {
		d.BucketTicks = 100_000
	}
	if d.RequestBudget == 0 {
		d.RequestBudget = 2_000_000
	}
	res := &Result{}
	start := d.Machine.Clock()
	for b := 0; b < buckets; b++ {
		if d.Hook != nil {
			if err := d.Hook(b); err != nil {
				return nil, fmt.Errorf("bucket %d hook: %w", b, err)
			}
		}
		end := start + uint64(b+1)*d.BucketTicks
		count, offered, failed := 0, 0, 0
		for d.Machine.Clock() < end {
			t0 := d.Machine.Clock()
			lat, err := d.one()
			res.Total++
			offered++
			if err != nil {
				res.Errors++
				failed++
				if len(res.Failures) < 4 {
					res.Failures = append(res.Failures, err.Error())
				}
				if d.Observer != nil {
					d.Observer.Point("loadgen.error", int64(b))
				}
				// Charge the failed request the rest of its budget: a
				// cheap failure (refused dial, instant close) must not
				// let the loop spin, and the bucket must keep its
				// window instead of breaking out mid-bucket and letting
				// the next bucket silently absorb the remaining ticks.
				if spent := d.Machine.Clock() - t0; spent < d.RequestBudget {
					d.Machine.AdvanceClock(d.RequestBudget - spent)
				}
				continue
			}
			res.Latency.Add(lat)
			count++
			if d.Observer != nil {
				d.Observer.Point("loadgen.request", int64(lat))
				d.Observer.Observe("loadgen.latency", int64(lat))
			}
		}
		res.Buckets = append(res.Buckets, Bucket{
			Index: b, Responses: count, Offered: offered, Errors: failed,
		})
	}
	return res, nil
}

// one issues a single request and returns its latency in guest
// instructions, measured to the last response byte: the response is
// drained adaptively (like Session.requestOnce) so multi-segment
// responses are fully read instead of being scored at time-to-first-
// byte and closed with unread data.
func (d *Driver) one() (uint64, error) {
	conn, err := d.Machine.Dial(d.Port)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	payload := d.Mix.Next()
	t0 := d.Machine.Clock()
	if _, err := conn.Write([]byte(payload)); err != nil {
		return 0, err
	}
	drain := d.DrainTicks
	if drain == 0 {
		drain = defaultDrainTicks
	}
	budgetLeft := func() uint64 {
		used := d.Machine.Clock() - t0
		if used >= d.RequestBudget {
			return 0
		}
		return d.RequestBudget - used
	}
	// Drain response bytes as they arrive (ReadAll, not a peek): the
	// guest's close is only observable once the buffer is empty, and a
	// closing server is the fast path — completion at the close, no
	// quiet window paid.
	got := 0
	lastByte := t0
	collect := func() bool {
		b := conn.ReadAll()
		if len(b) == 0 {
			return false
		}
		got += len(b)
		lastByte = d.Machine.Clock()
		return true
	}
	d.Machine.RunUntil(func() bool {
		return len(conn.ReadAllPeek()) > 0 || conn.Closed()
	}, d.RequestBudget)
	collect()
	quiet := false // no more bytes are coming: the response is done
	for !conn.Closed() {
		left := budgetLeft()
		if left == 0 {
			break
		}
		window := drain
		if window > left {
			window = left
		}
		before := d.Machine.Clock()
		d.Machine.RunUntil(func() bool {
			return len(conn.ReadAllPeek()) > 0 || conn.Closed()
		}, window)
		if collect() {
			continue
		}
		// Quiet when a full drain window passed with no new bytes, or
		// when the machine went fully idle (no steps executed): a
		// blocked guest holding our only connection can never produce
		// another byte, so waiting longer — at any window size — is
		// pointless and would spin the loop with the clock frozen.
		if window == drain || d.Machine.Clock() == before {
			quiet = true
			break
		}
	}
	if got == 0 {
		return 0, fmt.Errorf("no response to %q", payload)
	}
	if !conn.Closed() && !quiet && budgetLeft() == 0 {
		return 0, fmt.Errorf("%w: %q got %d bytes in %d ticks", ErrTruncated, payload, got, d.RequestBudget)
	}
	return lastByte - t0, nil
}
