package loadgen

import (
	"errors"
	"fmt"

	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/obs"
)

// OpenDriver fires requests at the vticks a Schedule dictates, whether
// or not earlier responses are outstanding — the open-loop discipline
// of the serverless loaders. Unlike the closed-loop Driver, which
// politely waits and therefore hides downtime as a single slow
// request, the OpenDriver keeps offering traffic while the guest is
// away: queued arrivals pile into the bounded in-flight window and the
// overflow is shed and counted as drops. That makes a rewrite's
// downtime show up the way production traffic would see it — a gap in
// served-per-bucket, a latency spike for the requests that waited, and
// a drop count for the ones that never got a slot.
type OpenDriver struct {
	Machine *kernel.Machine
	Port    uint16
	// Schedule dictates arrival vticks (required).
	Schedule Schedule
	// Mix supplies payloads for arrivals that do not carry their own.
	// May be nil when the schedule is fully payload-carrying (traces).
	Mix *Mix
	// BucketTicks sizes one accounting bucket (0 = 100_000). Arrivals
	// are bucketed by scheduled time, completions by completion time —
	// that skew is exactly how a service gap becomes visible.
	BucketTicks uint64
	// RequestBudget bounds the vticks one request may wait before it is
	// failed (0 = 2_000_000).
	RequestBudget uint64
	// DrainTicks is the quiet window: a response with bytes and no new
	// ones for DrainTicks is complete (0 = 50_000).
	DrainTicks uint64
	// MaxInFlight bounds the in-flight window; arrivals beyond it are
	// dropped, not queued (0 = 8).
	MaxInFlight int
	// PollTicks is the clock-pumping quantum between in-flight polls
	// (0 = 10_000). Smaller = finer completion timestamps, more host
	// work.
	PollTicks uint64
	// Observer, when non-nil, receives loadgen.request/error/drop
	// points and the loadgen.latency histogram.
	Observer *obs.Observer
	// Hook, when set, runs at every arrival boundary (before the
	// arrival fires) with the arrival's scheduled offset. The slo
	// harness uses it to interleave rollout work onto the driver's
	// goroutine — the machine's owner — at deterministic points.
	Hook func(offset uint64) error
}

// ErrNoSchedule marks an OpenDriver run without a schedule.
var ErrNoSchedule = errors.New("loadgen: open driver needs a schedule")

// flight is one outstanding open-loop request.
type flight struct {
	conn     *kernel.HostConn
	payload  string
	at       uint64 // scheduled offset from run start
	t0       uint64 // fire vclock
	got      int
	lastByte uint64 // vclock of the most recent response byte
}

// Run drives the schedule over horizon vticks, then keeps the clock
// moving until every in-flight request resolves (so the tail can run
// at most one RequestBudget past the horizon). Buckets densely cover
// the horizon even where nothing happened — a zero-response bucket
// with Offered > 0 is a service gap, and must be visible as such.
func (d *OpenDriver) Run(horizon uint64) (*Result, error) {
	if d.Schedule == nil {
		return nil, ErrNoSchedule
	}
	if d.BucketTicks == 0 {
		d.BucketTicks = 100_000
	}
	if d.RequestBudget == 0 {
		d.RequestBudget = 2_000_000
	}
	if d.DrainTicks == 0 {
		d.DrainTicks = defaultDrainTicks
	}
	if d.MaxInFlight == 0 {
		d.MaxInFlight = 8
	}
	if d.PollTicks == 0 {
		d.PollTicks = 10_000
	}
	arrivals := d.Schedule.Arrivals(horizon)
	if d.Mix == nil {
		for _, a := range arrivals {
			if a.Payload == "" {
				return nil, ErrNoMix
			}
		}
	}
	res := &Result{}
	start := d.Machine.Clock()
	var pending []*flight
	for i := 0; i < len(arrivals); {
		a := arrivals[i]
		d.pumpTo(start+a.At, &pending, res, start)
		if d.Hook != nil {
			if err := d.Hook(a.At); err != nil {
				return nil, fmt.Errorf("arrival at %d hook: %w", a.At, err)
			}
		}
		// Fire every arrival now due — a hook or a guest-side clock
		// charge may have jumped the clock past several of them. They
		// are late through no fault of the schedule, but they still
		// arrive: open-loop means the offered load does not yield.
		now := d.Machine.Clock() - start
		for i < len(arrivals) && arrivals[i].At <= now {
			d.fire(arrivals[i], &pending, res, start)
			i++
		}
	}
	d.pumpTo(start+horizon, &pending, res, start)
	// Tail drain: every in-flight request resolves within its budget,
	// so this loop is bounded.
	for len(pending) > 0 {
		d.pumpTo(d.Machine.Clock()+d.PollTicks, &pending, res, start)
	}
	if horizon > 0 {
		res.bucketAt(horizon-1, d.BucketTicks)
	}
	return res, nil
}

// fire launches (or drops) one arrival.
func (d *OpenDriver) fire(a Arrival, pending *[]*flight, res *Result, start uint64) {
	res.Total++
	b := res.bucketAt(a.At, d.BucketTicks)
	b.Offered++
	if len(*pending) >= d.MaxInFlight {
		res.Dropped++
		b.Dropped++
		if d.Observer != nil {
			d.Observer.Point("loadgen.drop", int64(a.At))
		}
		return
	}
	payload := a.Payload
	if payload == "" {
		payload = d.Mix.Next()
	}
	conn, err := d.Machine.Dial(d.Port)
	if err == nil {
		_, err = conn.Write([]byte(payload))
	}
	if err != nil {
		d.fail(res, a.At, fmt.Errorf("fire %q: %w", payload, err))
		if conn != nil {
			conn.Close()
		}
		return
	}
	*pending = append(*pending, &flight{
		conn: conn, payload: payload, at: a.At,
		t0: d.Machine.Clock(), lastByte: d.Machine.Clock(),
	})
}

// fail records one failed request at the given offset.
func (d *OpenDriver) fail(res *Result, offset uint64, err error) {
	res.Errors++
	res.bucketAt(offset, d.BucketTicks).Errors++
	if len(res.Failures) < 4 {
		res.Failures = append(res.Failures, err.Error())
	}
	if d.Observer != nil {
		d.Observer.Point("loadgen.error", int64(offset))
	}
}

// pumpTo advances the virtual clock to target, executing the guest in
// PollTicks quanta and polling the in-flight window between them. When
// the guest has nothing runnable the clock is force-advanced — virtual
// time marches whether or not anyone is home, exactly like wall time.
func (d *OpenDriver) pumpTo(target uint64, pending *[]*flight, res *Result, start uint64) {
	d.poll(pending, res, start, false)
	for d.Machine.Clock() < target {
		step := target - d.Machine.Clock()
		if step > d.PollTicks {
			step = d.PollTicks
		}
		goal := d.Machine.Clock() + step
		ran := d.Machine.Run(step)
		if d.Machine.Clock() < goal {
			d.Machine.AdvanceClock(goal - d.Machine.Clock())
		}
		// A fully idle machine (zero steps retired) can never produce
		// another response byte until the host acts, so poll may
		// resolve byteful flights immediately instead of waiting out
		// their quiet window.
		d.poll(pending, res, start, ran == 0)
	}
}

// poll sweeps the in-flight window: collect newly arrived bytes,
// resolve completions (guest closed, quiet for a full drain window,
// or byteful while the machine is idle) and expire requests that
// outran their budget.
func (d *OpenDriver) poll(pending *[]*flight, res *Result, start uint64, idle bool) {
	now := d.Machine.Clock()
	kept := (*pending)[:0]
	for _, f := range *pending {
		if b := f.conn.ReadAll(); len(b) > 0 {
			f.got += len(b)
			f.lastByte = now
		}
		switch {
		case f.conn.Closed():
			if f.got == 0 {
				d.fail(res, now-start, fmt.Errorf("no response to %q", f.payload))
			} else {
				d.complete(f, res, start)
			}
		case f.got > 0 && (idle || now-f.lastByte >= d.DrainTicks):
			// Quiet for a full drain window — or the machine is idle,
			// which proves no more bytes are coming: the response is
			// done even though the guest kept the connection open.
			d.complete(f, res, start)
			f.conn.Close()
		case now-f.t0 >= d.RequestBudget:
			if f.got > 0 {
				d.fail(res, now-start, fmt.Errorf("%w: %q got %d bytes in %d ticks",
					ErrTruncated, f.payload, f.got, d.RequestBudget))
			} else {
				d.fail(res, now-start, fmt.Errorf("timeout: %q got no bytes in %d ticks",
					f.payload, d.RequestBudget))
			}
			f.conn.Close()
		default:
			kept = append(kept, f)
		}
	}
	*pending = kept
}

// complete books one served request: latency runs from the SCHEDULED
// arrival — not the fire instant — to the last response byte, so a
// request that sat waiting while the guest was away is charged its
// wait (the open-loop discipline; measuring from fire time would
// silently absorb downtime into nothing, the closed-loop lie again).
// The completion lands in the bucket its last byte arrived in.
func (d *OpenDriver) complete(f *flight, res *Result, start uint64) {
	lat := f.lastByte - (start + f.at)
	res.Latency.Add(lat)
	res.bucketAt(f.lastByte-start, d.BucketTicks).Responses++
	if d.Observer != nil {
		d.Observer.Point("loadgen.request", int64(lat))
		d.Observer.Observe("loadgen.latency", int64(lat))
	}
}
