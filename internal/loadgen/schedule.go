package loadgen

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// A Schedule dictates when requests arrive on the virtual-clock axis —
// the invocation side of a serverless-loader-style generator. All
// schedules are deterministic: the same parameters (and seed, for the
// stochastic ones) materialize byte-identical arrival sequences every
// time, so a load run is exactly reproducible and two replicas given
// the same schedule see the same traffic.
type Schedule interface {
	// Name identifies the schedule in results and traces.
	Name() string
	// Arrivals materializes the arrival sequence for a run of horizon
	// vticks: offsets in [0, horizon), nondecreasing.
	Arrivals(horizon uint64) []Arrival
}

// Arrival is one scheduled request.
type Arrival struct {
	// At is the arrival offset in vticks from the run's start.
	At uint64
	// Payload overrides the driver's Mix for this request when non-""
	// (trace-driven schedules carry per-slot payloads — the
	// invocation+duration mix of a real trace).
	Payload string
}

// Schedule errors.
var (
	ErrBadTrace = errors.New("loadgen: malformed trace CSV")
)

// --- constant rate ---------------------------------------------------------

// ConstantSchedule fires one request every Interval vticks — the
// fixed-RPS baseline.
type ConstantSchedule struct {
	// Interval is the inter-arrival gap in vticks (0 = 10_000).
	Interval uint64
}

// NewConstant builds a constant-rate schedule with the given
// inter-arrival gap in vticks.
func NewConstant(interval uint64) *ConstantSchedule {
	return &ConstantSchedule{Interval: interval}
}

func (s *ConstantSchedule) Name() string {
	return fmt.Sprintf("constant(interval=%d)", s.interval())
}

func (s *ConstantSchedule) interval() uint64 {
	if s.Interval == 0 {
		return 10_000
	}
	return s.Interval
}

func (s *ConstantSchedule) Arrivals(horizon uint64) []Arrival {
	iv := s.interval()
	out := make([]Arrival, 0, horizon/iv+1)
	for at := uint64(0); at < horizon; at += iv {
		out = append(out, Arrival{At: at})
	}
	return out
}

// --- step ramp (stress mode) -----------------------------------------------

// StepSchedule is the stress mode of the serverless loaders: the
// request rate starts at Start requests per slot and climbs by Step
// every SlotTicks, arrivals equidistant within each slot. It ramps
// until the horizon ends.
type StepSchedule struct {
	Start     int    // requests in the first slot (≤0 = 1)
	Step      int    // per-slot increment (may be 0 or negative)
	SlotTicks uint64 // slot length in vticks (0 = 100_000)
}

// NewStepRamp builds a stress-mode ramp: start requests in the first
// SlotTicks-sized slot, step more in each following slot.
func NewStepRamp(start, step int, slotTicks uint64) *StepSchedule {
	return &StepSchedule{Start: start, Step: step, SlotTicks: slotTicks}
}

func (s *StepSchedule) Name() string {
	return fmt.Sprintf("step(start=%d,step=%d,slot=%d)", s.start(), s.Step, s.slot())
}

func (s *StepSchedule) start() int {
	if s.Start <= 0 {
		return 1
	}
	return s.Start
}

func (s *StepSchedule) slot() uint64 {
	if s.SlotTicks == 0 {
		return 100_000
	}
	return s.SlotTicks
}

func (s *StepSchedule) Arrivals(horizon uint64) []Arrival {
	slot := s.slot()
	var out []Arrival
	rate := s.start()
	for lo := uint64(0); lo < horizon; lo += slot {
		n := rate
		rate += s.Step
		if n <= 0 {
			continue
		}
		out = append(out, equidistant(lo, slot, n, horizon)...)
	}
	return out
}

// equidistant spaces n arrivals evenly over [lo, lo+slot), clipped to
// the horizon.
func equidistant(lo, slot uint64, n int, horizon uint64) []Arrival {
	out := make([]Arrival, 0, n)
	for i := 0; i < n; i++ {
		at := lo + uint64(i)*slot/uint64(n)
		if at >= horizon {
			break
		}
		out = append(out, Arrival{At: at})
	}
	return out
}

// --- Poisson ---------------------------------------------------------------

// PoissonSchedule draws exponential inter-arrival gaps from a seeded
// splitmix64 PRNG — the open-loop arrival process of the serverless
// loaders' "exponential" IAT mode. Same seed, same sequence, always.
type PoissonSchedule struct {
	// MeanInterval is the mean inter-arrival gap in vticks (0 = 10_000).
	MeanInterval uint64
	// Seed selects the deterministic arrival sequence.
	Seed int64
}

// NewPoisson builds a seeded Poisson schedule with the given mean
// inter-arrival gap in vticks.
func NewPoisson(meanInterval uint64, seed int64) *PoissonSchedule {
	return &PoissonSchedule{MeanInterval: meanInterval, Seed: seed}
}

func (s *PoissonSchedule) Name() string {
	return fmt.Sprintf("poisson(mean=%d,seed=%d)", s.mean(), s.Seed)
}

func (s *PoissonSchedule) mean() uint64 {
	if s.MeanInterval == 0 {
		return 10_000
	}
	return s.MeanInterval
}

func (s *PoissonSchedule) Arrivals(horizon uint64) []Arrival {
	mean := float64(s.mean())
	rng := splitmix64(uint64(s.Seed))
	var out []Arrival
	at := float64(0)
	for {
		// Exponential inter-arrival via inverse transform; u is kept
		// away from 0 so the log stays finite.
		u := rng.float()
		at += -mean * math.Log(1-u)
		if uint64(at) >= horizon {
			return out
		}
		out = append(out, Arrival{At: uint64(at)})
	}
}

// splitmix64 is the PRNG behind the seeded schedules: tiny, fast and
// owned by this package, so arrival sequences cannot drift with a Go
// release the way math/rand streams could.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (s *splitmix64) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// --- CSV trace -------------------------------------------------------------

// TraceSchedule replays a recorded invocation trace: each CSV row is
// one SlotTicks-sized slot giving an invocation count and, optionally,
// the payload those invocations carry (the duration mix — different
// payloads exercise differently-priced guest paths). Invocations are
// equidistant within their slot. Past the last row the trace is
// silent.
type TraceSchedule struct {
	SlotTicks uint64
	slots     []traceSlot
}

type traceSlot struct {
	invocations int
	payload     string
}

// ParseTraceCSV parses an invocation trace. Each non-empty line is
// `invocations[,payload]`; a first line whose count column is not a
// number is treated as a header and skipped. slotTicks sizes the slot
// each row covers (0 = 100_000).
func ParseTraceCSV(data string, slotTicks uint64) (*TraceSchedule, error) {
	if slotTicks == 0 {
		slotTicks = 100_000
	}
	ts := &TraceSchedule{SlotTicks: slotTicks}
	for i, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		countCol, payload, _ := strings.Cut(line, ",")
		n, err := strconv.Atoi(strings.TrimSpace(countCol))
		if err != nil {
			if i == 0 && len(ts.slots) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("%w: line %d: bad invocation count %q", ErrBadTrace, i+1, countCol)
		}
		if n < 0 {
			return nil, fmt.Errorf("%w: line %d: negative invocation count %d", ErrBadTrace, i+1, n)
		}
		ts.slots = append(ts.slots, traceSlot{invocations: n, payload: strings.TrimSpace(payload)})
	}
	if len(ts.slots) == 0 {
		return nil, fmt.Errorf("%w: no slots", ErrBadTrace)
	}
	return ts, nil
}

// Slots returns how many trace rows the schedule carries.
func (s *TraceSchedule) Slots() int { return len(s.slots) }

// Ticks returns the trace's own length on the virtual-clock axis.
func (s *TraceSchedule) Ticks() uint64 { return uint64(len(s.slots)) * s.SlotTicks }

func (s *TraceSchedule) Name() string {
	return fmt.Sprintf("trace(slots=%d,slot=%d)", len(s.slots), s.SlotTicks)
}

func (s *TraceSchedule) Arrivals(horizon uint64) []Arrival {
	var out []Arrival
	for i, slot := range s.slots {
		lo := uint64(i) * s.SlotTicks
		if lo >= horizon {
			break
		}
		arr := equidistant(lo, s.SlotTicks, slot.invocations, horizon)
		for j := range arr {
			arr[j].Payload = slot.payload
		}
		out = append(out, arr...)
	}
	return out
}
