package loadgen

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/apps/kvstore"
	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/kernel"
)

func bootKV(t *testing.T) (*kernel.Machine, uint16) {
	t.Helper()
	app, err := kvstore.Build(kvstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := kernel.NewMachine()
	if _, err := m.Load(app.Exe, app.Libc); err != nil {
		t.Fatal(err)
	}
	nudged := false
	m.SetNudgeFunc(func(pid int, arg uint64) { nudged = true })
	if !m.RunUntil(func() bool { return nudged }, 10_000_000) {
		t.Fatal("kvstore boot failed")
	}
	return m, app.Config.Port
}

func TestMixWeightedSchedule(t *testing.T) {
	m := NewMix(
		Request{Payload: "A", Weight: 3},
		Request{Payload: "B", Weight: 1},
	)
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		counts[m.Next()]++
	}
	if counts["A"] != 30 || counts["B"] != 10 {
		t.Fatalf("schedule = %v", counts)
	}
	// Zero/negative weights default to 1.
	m2 := NewMix(Request{Payload: "X"}, Request{Payload: "Y", Weight: -5})
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		seen[m2.Next()] = true
	}
	if !seen["X"] || !seen["Y"] {
		t.Fatalf("defaults = %v", seen)
	}
	var empty Mix
	if empty.Next() != "" {
		t.Fatal("empty mix returned a payload")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(uint64(i))
	}
	if got := h.Percentile(50); got != 50 {
		t.Errorf("p50 = %d", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Errorf("p99 = %d", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %d", got)
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %f", h.Mean())
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	var empty Histogram
	if empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram nonzero")
	}
	if h.Percentile(0) != 0 || h.Percentile(101) != 0 {
		t.Error("out-of-range percentile accepted")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickHistogramMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		var lo, hi uint64 = 1 << 62, 0
		for _, v := range vals {
			h.Add(uint64(v))
			if uint64(v) < lo {
				lo = uint64(v)
			}
			if uint64(v) > hi {
				hi = uint64(v)
			}
		}
		prev := uint64(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			q := h.Percentile(p)
			if q < prev || q < lo && p > 1 || q > hi {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDriverAgainstKVStore(t *testing.T) {
	m, port := bootKV(t)
	d := &Driver{
		Machine: m,
		Port:    port,
		Mix: NewMix(
			Request{Payload: "GET a\n", Weight: 8},
			Request{Payload: "PING\n", Weight: 2},
		),
		BucketTicks: 50_000,
	}
	res, err := d.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) != 6 {
		t.Fatalf("buckets = %d", len(res.Buckets))
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d: %v", res.Errors, res.Failures)
	}
	if res.Total == 0 || res.Latency.Count() != res.Total {
		t.Fatalf("total = %d, samples = %d", res.Total, res.Latency.Count())
	}
	for _, b := range res.Buckets {
		if b.Responses == 0 {
			t.Errorf("bucket %d empty", b.Index)
		}
	}
	if res.Latency.Percentile(99) == 0 {
		t.Error("no latency data")
	}
	if res.Throughput(0) == 0 || res.Throughput(99) != 0 {
		t.Error("Throughput accessor wrong")
	}
}

func TestDriverHookRuns(t *testing.T) {
	m, port := bootKV(t)
	var hooks []int
	d := &Driver{
		Machine:     m,
		Port:        port,
		Mix:         NewMix(Request{Payload: "PING\n"}),
		BucketTicks: 20_000,
		Hook: func(b int) error {
			hooks = append(hooks, b)
			return nil
		},
	}
	if _, err := d.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(hooks) != 3 || hooks[0] != 0 || hooks[2] != 2 {
		t.Fatalf("hooks = %v", hooks)
	}
	// Hook errors abort the run.
	d.Hook = func(b int) error { return errors.New("boom") }
	if _, err := d.Run(1); err == nil {
		t.Fatal("hook error swallowed")
	}
}

func TestDriverErrorsOnDeadServer(t *testing.T) {
	m, port := bootKV(t)
	for _, p := range m.Processes() {
		if err := m.Kill(p.PID()); err != nil {
			t.Fatal(err)
		}
	}
	d := &Driver{
		Machine: m, Port: port,
		Mix: NewMix(Request{Payload: "PING\n"}),
	}
	res, err := d.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("dead server produced no errors")
	}
}

func TestDriverNeedsMix(t *testing.T) {
	m, port := bootKV(t)
	d := &Driver{Machine: m, Port: port}
	if _, err := d.Run(1); !errors.Is(err, ErrNoMix) {
		t.Fatalf("err = %v", err)
	}
}

// TestHistogramPercentileEdges pins the ceiling nearest-rank fix.
// The old truncating formula int(p/100*N)-1 failed exactly these:
// p99 of 50 samples took rank 49 (index 48), and p just above a rank
// boundary rounded down a full rank.
func TestHistogramPercentileEdges(t *testing.T) {
	mk := func(n int) *Histogram {
		var h Histogram
		for i := 1; i <= n; i++ {
			h.Add(uint64(i * 10))
		}
		return &h
	}
	cases := []struct {
		name string
		n    int
		p    float64
		want uint64
	}{
		{"one sample, tiny p", 1, 0.1, 10},
		{"one sample, p50", 1, 50, 10},
		{"one sample, p100", 1, 100, 10},
		{"p99 of 50 takes the max", 50, 99, 500},
		{"p98 of 50 is rank 49", 50, 98, 490},
		{"tiny p is rank 1", 200, 0.1, 10},
		{"p50 of 200 is rank 100", 200, 50, 1000},
		{"p999 of 200 takes the max", 200, 99.9, 2000},
		{"p33.4 of 3 rounds up to rank 2", 3, 33.4, 20},
	}
	for _, tc := range cases {
		if got := mk(tc.n).Percentile(tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v) of %d samples = %d, want %d",
				tc.name, tc.p, tc.n, got, tc.want)
		}
	}
}

// TestDriverChargesFailedBudget pins the bucket-alignment fix: a
// request that fails instantly (refused dial on a dead server) must be
// charged its full RequestBudget so the virtual clock stays aligned to
// the bucket grid. Pre-fix, the inner loop broke out of the bucket on
// the first error with the clock unmoved, so each bucket recorded one
// error and zero elapsed time.
func TestDriverChargesFailedBudget(t *testing.T) {
	m, port := bootKV(t)
	for _, p := range m.Processes() {
		if err := m.Kill(p.PID()); err != nil {
			t.Fatal(err)
		}
	}
	d := &Driver{
		Machine: m, Port: port,
		Mix:           NewMix(Request{Payload: "PING\n"}),
		BucketTicks:   40_000,
		RequestBudget: 10_000,
	}
	start := m.Clock()
	res, err := d.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	// Budget divides the bucket evenly and failures cost zero guest
	// ticks, so the alignment must be exact.
	if got := m.Clock() - start; got != 80_000 {
		t.Fatalf("clock advanced %d ticks, want exactly 80000", got)
	}
	if res.Errors != 8 || res.Total != 8 {
		t.Fatalf("Errors = %d, Total = %d, want 8/8", res.Errors, res.Total)
	}
	for _, b := range res.Buckets {
		if b.Errors != 4 || b.Offered != 4 || b.Responses != 0 {
			t.Errorf("bucket %d = %+v, want 4 offered, 4 errors", b.Index, b)
		}
	}
}

// TestDriverMidBucketFailureKeepsBucket: when the server dies mid-run,
// every bucket from that point on must keep offering (and charging)
// requests for its whole window instead of abandoning the bucket on
// the first error and letting the next bucket absorb the leftover
// ticks.
func TestDriverMidBucketFailureKeepsBucket(t *testing.T) {
	m, port := bootKV(t)
	d := &Driver{
		Machine: m, Port: port,
		Mix:           NewMix(Request{Payload: "PING\n"}),
		BucketTicks:   40_000,
		RequestBudget: 10_000,
		Hook: func(b int) error {
			if b != 1 {
				return nil
			}
			for _, p := range m.Processes() {
				if err := m.Kill(p.PID()); err != nil {
					return err
				}
			}
			return nil
		},
	}
	start := m.Clock()
	res, err := d.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets[0].Responses == 0 || res.Buckets[0].Errors != 0 {
		t.Fatalf("healthy bucket 0 = %+v", res.Buckets[0])
	}
	// Post-kill buckets: >1 error each (the old break gave exactly 1)
	// and the run's clock still covers all three bucket windows.
	for _, b := range res.Buckets[1:] {
		if b.Errors < 2 {
			t.Errorf("bucket %d errors = %d, want >= 2 (bucket abandoned?)", b.Index, b.Errors)
		}
	}
	if got := m.Clock() - start; got < 3*40_000 {
		t.Fatalf("clock advanced %d ticks, want >= %d", got, 3*40_000)
	}
	offered := 0
	for _, b := range res.Buckets {
		offered += b.Offered
	}
	if offered != res.Total {
		t.Fatalf("sum(Offered) = %d, Total = %d", offered, res.Total)
	}
}

// segmentedSrc is a guest that answers each request with three bytes
// spaced ~36k ticks apart (inside the 50k drain window), then closes
// and loops back to accept. A driver that scores latency at the first
// response byte reports ~1/20th of the true figure and abandons two
// thirds of the body.
const segmentedSrc = `
.text
.global _start
_start:
	mov r0, 4
	syscall
	mov r8, r0
	mov r0, 5
	mov r1, r8
	mov r2, 7171
	syscall
	mov r0, 15
	mov r1, 0
	syscall
accept:
	mov r0, 7
	mov r1, r8
	syscall
	mov r9, r0
	mov r0, 3
	mov r1, r9
	mov r2, =buf
	mov r3, 16
	syscall
	mov r11, 0
seg:
	mov r0, 2
	mov r1, r9
	lea r2, dot
	mov r3, 1
	syscall
	add r11, 1
	cmp r11, 3
	jge done
	mov r10, 0
spin:
	add r10, 1
	cmp r10, 12000
	jl spin
	jmp seg
done:
	mov r0, 8
	mov r1, r9
	syscall
	jmp accept
.rodata
dot: .ascii "."
.bss
buf: .space 16
`

func bootSegmented(t *testing.T) (*kernel.Machine, uint16) {
	t.Helper()
	obj, err := asm.Assemble(segmentedSrc)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := link.Executable("segd", []*asm.Object{obj})
	if err != nil {
		t.Fatal(err)
	}
	m := kernel.NewMachine()
	if _, err := m.Load(exe); err != nil {
		t.Fatal(err)
	}
	nudged := false
	m.SetNudgeFunc(func(pid int, arg uint64) { nudged = true })
	if !m.RunUntil(func() bool { return nudged }, 10_000_000) {
		t.Fatal("segmented guest boot failed")
	}
	return m, 7171
}

// TestDriverLatencyCoversFullResponse pins the TTFB fix: latency must
// be measured to the LAST response byte, with the multi-segment body
// fully drained, not scored at time-to-first-byte and closed with
// unread data. The guest's two ~36k-tick inter-segment gaps put the
// true latency above 70k ticks; the pre-fix driver reported the
// first-byte time (well under 20k).
func TestDriverLatencyCoversFullResponse(t *testing.T) {
	m, port := bootSegmented(t)
	d := &Driver{
		Machine:     m,
		Port:        port,
		Mix:         NewMix(Request{Payload: "ping\n"}),
		BucketTicks: 200_000,
	}
	res, err := d.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d: %v", res.Errors, res.Failures)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no completions")
	}
	for _, lat := range res.Latency.Samples() {
		if lat < 60_000 {
			t.Fatalf("latency %d < 60000: scored at first byte, not last", lat)
		}
	}
}
