package loadgen

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/apps/kvstore"
	"github.com/dynacut/dynacut/internal/kernel"
)

func bootKV(t *testing.T) (*kernel.Machine, uint16) {
	t.Helper()
	app, err := kvstore.Build(kvstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := kernel.NewMachine()
	if _, err := m.Load(app.Exe, app.Libc); err != nil {
		t.Fatal(err)
	}
	nudged := false
	m.SetNudgeFunc(func(pid int, arg uint64) { nudged = true })
	if !m.RunUntil(func() bool { return nudged }, 10_000_000) {
		t.Fatal("kvstore boot failed")
	}
	return m, app.Config.Port
}

func TestMixWeightedSchedule(t *testing.T) {
	m := NewMix(
		Request{Payload: "A", Weight: 3},
		Request{Payload: "B", Weight: 1},
	)
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		counts[m.Next()]++
	}
	if counts["A"] != 30 || counts["B"] != 10 {
		t.Fatalf("schedule = %v", counts)
	}
	// Zero/negative weights default to 1.
	m2 := NewMix(Request{Payload: "X"}, Request{Payload: "Y", Weight: -5})
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		seen[m2.Next()] = true
	}
	if !seen["X"] || !seen["Y"] {
		t.Fatalf("defaults = %v", seen)
	}
	var empty Mix
	if empty.Next() != "" {
		t.Fatal("empty mix returned a payload")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(uint64(i))
	}
	if got := h.Percentile(50); got != 50 {
		t.Errorf("p50 = %d", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Errorf("p99 = %d", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %d", got)
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %f", h.Mean())
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	var empty Histogram
	if empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram nonzero")
	}
	if h.Percentile(0) != 0 || h.Percentile(101) != 0 {
		t.Error("out-of-range percentile accepted")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickHistogramMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		var lo, hi uint64 = 1 << 62, 0
		for _, v := range vals {
			h.Add(uint64(v))
			if uint64(v) < lo {
				lo = uint64(v)
			}
			if uint64(v) > hi {
				hi = uint64(v)
			}
		}
		prev := uint64(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			q := h.Percentile(p)
			if q < prev || q < lo && p > 1 || q > hi {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDriverAgainstKVStore(t *testing.T) {
	m, port := bootKV(t)
	d := &Driver{
		Machine: m,
		Port:    port,
		Mix: NewMix(
			Request{Payload: "GET a\n", Weight: 8},
			Request{Payload: "PING\n", Weight: 2},
		),
		BucketTicks: 50_000,
	}
	res, err := d.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) != 6 {
		t.Fatalf("buckets = %d", len(res.Buckets))
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d: %v", res.Errors, res.Failures)
	}
	if res.Total == 0 || res.Latency.Count() != res.Total {
		t.Fatalf("total = %d, samples = %d", res.Total, res.Latency.Count())
	}
	for _, b := range res.Buckets {
		if b.Responses == 0 {
			t.Errorf("bucket %d empty", b.Index)
		}
	}
	if res.Latency.Percentile(99) == 0 {
		t.Error("no latency data")
	}
	if res.Throughput(0) == 0 || res.Throughput(99) != 0 {
		t.Error("Throughput accessor wrong")
	}
}

func TestDriverHookRuns(t *testing.T) {
	m, port := bootKV(t)
	var hooks []int
	d := &Driver{
		Machine:     m,
		Port:        port,
		Mix:         NewMix(Request{Payload: "PING\n"}),
		BucketTicks: 20_000,
		Hook: func(b int) error {
			hooks = append(hooks, b)
			return nil
		},
	}
	if _, err := d.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(hooks) != 3 || hooks[0] != 0 || hooks[2] != 2 {
		t.Fatalf("hooks = %v", hooks)
	}
	// Hook errors abort the run.
	d.Hook = func(b int) error { return errors.New("boom") }
	if _, err := d.Run(1); err == nil {
		t.Fatal("hook error swallowed")
	}
}

func TestDriverErrorsOnDeadServer(t *testing.T) {
	m, port := bootKV(t)
	for _, p := range m.Processes() {
		if err := m.Kill(p.PID()); err != nil {
			t.Fatal(err)
		}
	}
	d := &Driver{
		Machine: m, Port: port,
		Mix: NewMix(Request{Payload: "PING\n"}),
	}
	res, err := d.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("dead server produced no errors")
	}
}

func TestDriverNeedsMix(t *testing.T) {
	m, port := bootKV(t)
	d := &Driver{Machine: m, Port: port}
	if _, err := d.Run(1); !errors.Is(err, ErrNoMix) {
		t.Fatalf("err = %v", err)
	}
}
