package loadgen

import (
	"errors"
	"fmt"
	"sync"
)

// Pool drives per-replica workloads across a fleet: one Driver per
// replica machine, run concurrently under a bounded worker count.
// Machines are fully independent (each replica has its own virtual
// clock and network), so drivers never contend on guest state — the
// bound only models a load-generation host with finite parallelism.
type Pool struct {
	Drivers []*Driver
	// Workers bounds how many drivers run concurrently (0 = all).
	Workers int
}

// Run drives every driver for the given number of buckets and returns
// the per-replica results in driver order. A driver failure leaves a
// nil slot; the other replicas still complete, and the returned error
// joins every per-replica failure (each wrapped with its replica
// index), so errors.Is/As see all of them, not just the first.
func (p *Pool) Run(buckets int) ([]*Result, error) {
	return runPool(len(p.Drivers), p.Workers, func(i int) (*Result, error) {
		return p.Drivers[i].Run(buckets)
	})
}

// OpenPool is Pool for open-loop drivers: every replica is driven by
// its own schedule-following OpenDriver over the same horizon.
type OpenPool struct {
	Drivers []*OpenDriver
	// Workers bounds how many drivers run concurrently (0 = all).
	Workers int
}

// Run drives every open-loop driver for horizon vticks. Same contract
// as Pool.Run: per-replica results in driver order, nil slots and a
// joined error for failures.
func (p *OpenPool) Run(horizon uint64) ([]*Result, error) {
	return runPool(len(p.Drivers), p.Workers, func(i int) (*Result, error) {
		return p.Drivers[i].Run(horizon)
	})
}

// runPool fans one run function out over n drivers under a bounded
// worker count and joins the per-replica failures.
func runPool(n, workers int, run func(i int) (*Result, error)) ([]*Result, error) {
	results := make([]*Result, n)
	errs := make([]error, n)
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := run(i)
			if err != nil {
				err = fmt.Errorf("loadgen: replica %d: %w", i, err)
			}
			results[i], errs[i] = res, err
		}(i)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// Merge folds per-replica results into one fleet-level result: bucket
// throughput, offered, dropped and error counts summed by index,
// latency samples pooled, request totals added. nil results (failed
// replicas) are skipped. Invariants preserved (see the property
// test): Total, Errors, Dropped, Served and every per-bucket field
// are the exact sums of the inputs'.
func Merge(results ...*Result) *Result {
	out := &Result{}
	maxBuckets := 0
	for _, r := range results {
		if r != nil && len(r.Buckets) > maxBuckets {
			maxBuckets = len(r.Buckets)
		}
	}
	sums := make([]Bucket, maxBuckets)
	for _, r := range results {
		if r == nil {
			continue
		}
		for _, b := range r.Buckets {
			s := &sums[b.Index]
			s.Responses += b.Responses
			s.Offered += b.Offered
			s.Dropped += b.Dropped
			s.Errors += b.Errors
		}
		for _, v := range r.Latency.samples {
			out.Latency.Add(v)
		}
		out.Errors += r.Errors
		out.Dropped += r.Dropped
		out.Total += r.Total
		for _, f := range r.Failures {
			if len(out.Failures) < 4 {
				out.Failures = append(out.Failures, f)
			}
		}
	}
	for i, s := range sums {
		s.Index = i
		out.Buckets = append(out.Buckets, s)
	}
	return out
}
