package loadgen

import (
	"fmt"
	"sync"
)

// Pool drives per-replica workloads across a fleet: one Driver per
// replica machine, run concurrently under a bounded worker count.
// Machines are fully independent (each replica has its own virtual
// clock and network), so drivers never contend on guest state — the
// bound only models a load-generation host with finite parallelism.
type Pool struct {
	Drivers []*Driver
	// Workers bounds how many drivers run concurrently (0 = all).
	Workers int
}

// Run drives every driver for the given number of buckets and returns
// the per-replica results in driver order. A driver failure leaves a
// nil slot and is reported in the joined error; the other replicas
// still complete.
func (p *Pool) Run(buckets int) ([]*Result, error) {
	results := make([]*Result, len(p.Drivers))
	errs := make([]error, len(p.Drivers))
	workers := p.Workers
	if workers <= 0 || workers > len(p.Drivers) {
		workers = len(p.Drivers)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, d := range p.Drivers {
		wg.Add(1)
		go func(i int, d *Driver) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := d.Run(buckets)
			results[i], errs[i] = res, err
		}(i, d)
	}
	wg.Wait()
	var firstErr error
	for i, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("loadgen: replica %d: %w", i, err)
		}
	}
	return results, firstErr
}

// Merge folds per-replica results into one fleet-level result:
// bucket throughput summed by index, latency samples pooled, error
// and request totals added. nil results (failed replicas) are skipped.
func Merge(results ...*Result) *Result {
	out := &Result{}
	maxBuckets := 0
	for _, r := range results {
		if r != nil && len(r.Buckets) > maxBuckets {
			maxBuckets = len(r.Buckets)
		}
	}
	sums := make([]int, maxBuckets)
	for _, r := range results {
		if r == nil {
			continue
		}
		for _, b := range r.Buckets {
			sums[b.Index] += b.Responses
		}
		for _, v := range r.Latency.samples {
			out.Latency.Add(v)
		}
		out.Errors += r.Errors
		out.Total += r.Total
		for _, f := range r.Failures {
			if len(out.Failures) < 4 {
				out.Failures = append(out.Failures, f)
			}
		}
	}
	for i, n := range sums {
		out.Buckets = append(out.Buckets, Bucket{Index: i, Responses: n})
	}
	return out
}
