package loadgen

import (
	"errors"
	"testing"
)

// TestOpenDriverAgainstKVStore: open-loop constant-rate traffic into a
// healthy guest. Everything scheduled must be accounted for exactly
// once — served, errored or dropped — and the bucket grid must densely
// cover the horizon with offered counts summing to the schedule.
func TestOpenDriverAgainstKVStore(t *testing.T) {
	m, port := bootKV(t)
	d := &OpenDriver{
		Machine:     m,
		Port:        port,
		Schedule:    NewConstant(10_000),
		Mix:         NewMix(Request{Payload: "GET a\n", Weight: 4}, Request{Payload: "PING\n"}),
		BucketTicks: 100_000,
	}
	const horizon = 400_000
	res, err := d.Run(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 40 {
		t.Fatalf("total = %d, want 40 scheduled", res.Total)
	}
	if got := res.Served() + res.Errors + res.Dropped; got != res.Total {
		t.Fatalf("served %d + errors %d + dropped %d = %d, want Total %d",
			res.Served(), res.Errors, res.Dropped, got, res.Total)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d: %v", res.Errors, res.Failures)
	}
	if res.Served() == 0 || res.Latency.Percentile(99) == 0 {
		t.Fatal("no latency data")
	}
	if len(res.Buckets) < int(horizon/d.BucketTicks) {
		t.Fatalf("buckets = %d, want >= %d (dense horizon coverage)", len(res.Buckets), horizon/d.BucketTicks)
	}
	offered := 0
	for i, b := range res.Buckets {
		if b.Index != i {
			t.Fatalf("bucket %d has index %d", i, b.Index)
		}
		offered += b.Offered
	}
	if offered != res.Total {
		t.Fatalf("sum(Offered) = %d, want %d", offered, res.Total)
	}
}

// TestOpenDriverClockJumpShedsLoad is the downtime shape the open loop
// exists to expose: a mid-run virtual-clock jump (what a rewrite's
// charged downtime looks like) must produce a visible service gap —
// buckets with offered arrivals but no completions — and shed the
// backlog beyond the in-flight window as counted drops. A closed-loop
// driver would hide all of this inside one slow request.
func TestOpenDriverClockJumpShedsLoad(t *testing.T) {
	m, port := bootKV(t)
	jumped := false
	d := &OpenDriver{
		Machine:     m,
		Port:        port,
		Schedule:    NewConstant(5_000),
		Mix:         NewMix(Request{Payload: "PING\n"}),
		BucketTicks: 100_000,
		MaxInFlight: 4,
		Hook: func(offset uint64) error {
			if offset == 200_000 && !jumped {
				jumped = true
				m.AdvanceClock(100_000)
			}
			return nil
		},
	}
	res, err := d.Run(400_000)
	if err != nil {
		t.Fatal(err)
	}
	if !jumped {
		t.Fatal("hook never saw offset 200000")
	}
	if got := res.Served() + res.Errors + res.Dropped; got != res.Total {
		t.Fatalf("served %d + errors %d + dropped %d = %d, want Total %d",
			res.Served(), res.Errors, res.Dropped, got, res.Total)
	}
	// The arrivals scheduled inside the jumped-over window all become
	// due at once: the in-flight window takes 4, the rest are shed.
	if res.Dropped == 0 {
		t.Fatal("clock jump shed no load")
	}
	// Bucket 2 covers [200k, 300k): its arrivals were offered but the
	// guest never executed inside it, so it must read as a gap.
	gap := res.Buckets[2]
	if gap.Offered < 15 {
		t.Fatalf("gap bucket offered = %d, want >= 15", gap.Offered)
	}
	if gap.Responses > 1 {
		t.Fatalf("gap bucket responses = %d, want <= 1 (service gap invisible)", gap.Responses)
	}
	// Steady-state buckets on either side kept serving.
	if res.Buckets[0].Responses == 0 || res.Buckets[3].Responses == 0 {
		t.Fatalf("steady buckets empty: %+v / %+v", res.Buckets[0], res.Buckets[3])
	}
}

// TestOpenDriverTracePayloads: a payload-carrying trace needs no Mix —
// each arrival's request comes from its trace slot.
func TestOpenDriverTracePayloads(t *testing.T) {
	m, port := bootKV(t)
	trace, err := ParseTraceCSV("4,PING\n2,GET a\n4,PING", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	d := &OpenDriver{Machine: m, Port: port, Schedule: trace}
	res, err := d.Run(trace.Ticks())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 10 {
		t.Fatalf("total = %d, want 10", res.Total)
	}
	if res.Errors != 0 || res.Served() == 0 {
		t.Fatalf("errors = %d (%v), served = %d", res.Errors, res.Failures, res.Served())
	}
}

// TestOpenDriverDeterministicRuns: the same schedule against two
// clones of the same booted machine produces identical accounting.
func TestOpenDriverDeterministicRuns(t *testing.T) {
	m, port := bootKV(t)
	run := func() *Result {
		d := &OpenDriver{
			Machine:  m.Clone(),
			Port:     port,
			Schedule: NewPoisson(8_000, 99),
			Mix:      NewMix(Request{Payload: "PING\n"}),
		}
		res, err := d.Run(300_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Total != b.Total || a.Served() != b.Served() || a.Dropped != b.Dropped || a.Errors != b.Errors {
		t.Fatalf("runs diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Total, a.Served(), a.Dropped, a.Errors,
			b.Total, b.Served(), b.Dropped, b.Errors)
	}
	as, bs := a.Latency.Samples(), b.Latency.Samples()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("latency sample %d: %d vs %d", i, as[i], bs[i])
		}
	}
}

func TestOpenDriverValidation(t *testing.T) {
	m, port := bootKV(t)
	d := &OpenDriver{Machine: m, Port: port}
	if _, err := d.Run(100_000); !errors.Is(err, ErrNoSchedule) {
		t.Fatalf("err = %v, want ErrNoSchedule", err)
	}
	d.Schedule = NewConstant(10_000) // no payloads, no mix
	if _, err := d.Run(100_000); !errors.Is(err, ErrNoMix) {
		t.Fatalf("err = %v, want ErrNoMix", err)
	}
}
