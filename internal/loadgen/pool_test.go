package loadgen

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/kernel"
)

// TestPoolDrivesClonedReplicas is the fleet traffic shape: one booted
// template cloned into N replicas, each driven by its own Driver under
// a bounded worker count, results merged into one fleet view.
func TestPoolDrivesClonedReplicas(t *testing.T) {
	m, port := bootKV(t)
	const replicas = 4
	mkDriver := func(rm *kernel.Machine) *Driver {
		return &Driver{
			Machine:     rm,
			Port:        port,
			Mix:         NewMix(Request{Payload: "PING\n"}),
			BucketTicks: 50_000,
		}
	}
	pool := &Pool{Workers: 2}
	for i := 0; i < replicas; i++ {
		pool.Drivers = append(pool.Drivers, mkDriver(m.Clone()))
	}

	results, err := pool.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != replicas {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r == nil || r.Errors != 0 || r.Total == 0 {
			t.Fatalf("replica %d result = %+v", i, r)
		}
	}

	merged := Merge(results...)
	wantTotal := 0
	for _, r := range results {
		wantTotal += r.Total
	}
	if merged.Total != wantTotal || merged.Latency.Count() != wantTotal {
		t.Fatalf("merged total = %d (samples %d), want %d", merged.Total, merged.Latency.Count(), wantTotal)
	}
	if len(merged.Buckets) != 3 {
		t.Fatalf("merged buckets = %d", len(merged.Buckets))
	}
	for b := 0; b < 3; b++ {
		sum := 0
		for _, r := range results {
			sum += r.Throughput(b)
		}
		if merged.Throughput(b) != sum {
			t.Errorf("bucket %d: merged %d, want %d", b, merged.Throughput(b), sum)
		}
	}
	// The template machine was not driven: its clock never moved past
	// boot while the clones each advanced independently.
	for i, d := range pool.Drivers {
		if d.Machine.Clock() <= m.Clock() {
			t.Errorf("replica %d clock %d did not advance past template %d", i, d.Machine.Clock(), m.Clock())
		}
	}
}

func TestPoolReportsPerReplicaFailure(t *testing.T) {
	m, port := bootKV(t)
	good := &Driver{Machine: m.Clone(), Port: port, Mix: NewMix(Request{Payload: "PING\n"}), BucketTicks: 50_000}
	bad := &Driver{Machine: m.Clone(), Port: port} // no mix
	pool := &Pool{Drivers: []*Driver{good, bad}}
	results, err := pool.Run(2)
	if err == nil {
		t.Fatal("pool swallowed a driver failure")
	}
	if results[0] == nil || results[0].Total == 0 {
		t.Fatal("healthy replica did not complete")
	}
	if results[1] != nil {
		t.Fatal("failed replica produced a result")
	}
	if merged := Merge(results...); merged.Total != results[0].Total {
		t.Fatalf("merge over nil slot = %+v", merged)
	}
}

// TestPoolJoinsAllFailures pins the errors.Join fix: the doc always
// promised a joined error, but the old code returned only the first
// failing replica's error, hiding the rest of a multi-replica outage.
func TestPoolJoinsAllFailures(t *testing.T) {
	m, port := bootKV(t)
	mix := NewMix(Request{Payload: "PING\n"})
	pool := &Pool{Drivers: []*Driver{
		{Machine: m.Clone(), Port: port},           // replica 0: no mix
		{Machine: m.Clone(), Port: port, Mix: mix}, // replica 1: healthy
		{Machine: m.Clone(), Port: port},           // replica 2: no mix
	}}
	results, err := pool.Run(2)
	if err == nil {
		t.Fatal("pool swallowed failures")
	}
	if !errors.Is(err, ErrNoMix) {
		t.Fatalf("err = %v, want ErrNoMix reachable via errors.Is", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "replica 0") || !strings.Contains(msg, "replica 2") {
		t.Fatalf("joined error missing a replica: %q", msg)
	}
	if strings.Contains(msg, "replica 1") {
		t.Fatalf("healthy replica blamed: %q", msg)
	}
	if results[1] == nil || results[1].Total == 0 {
		t.Fatal("healthy replica did not complete")
	}
}

// TestOpenPoolDrivesReplicas: the open-loop pool gives every replica
// the same schedule and merges cleanly, and failures join like Pool's.
func TestOpenPoolDrivesReplicas(t *testing.T) {
	m, port := bootKV(t)
	mix := NewMix(Request{Payload: "PING\n"})
	sched := NewConstant(20_000)
	pool := &OpenPool{Workers: 2}
	for i := 0; i < 3; i++ {
		pool.Drivers = append(pool.Drivers, &OpenDriver{
			Machine: m.Clone(), Port: port, Schedule: sched, Mix: mix,
		})
	}
	results, err := pool.Run(200_000)
	if err != nil {
		t.Fatal(err)
	}
	merged := Merge(results...)
	if merged.Total != 30 {
		t.Fatalf("merged total = %d, want 30", merged.Total)
	}
	if got := merged.Served() + merged.Errors + merged.Dropped; got != merged.Total {
		t.Fatalf("merged conservation broken: %d != %d", got, merged.Total)
	}

	pool.Drivers[1].Schedule = nil
	_, err = pool.Run(200_000)
	if err == nil || !errors.Is(err, ErrNoSchedule) || !strings.Contains(err.Error(), "replica 1") {
		t.Fatalf("open pool failure = %v, want replica-1 ErrNoSchedule", err)
	}
}

// TestQuickMergePreservesTotals: for arbitrary per-replica results —
// sparse bucket shapes, different bucket counts, nil slots — Merge
// must preserve every total and every per-bucket sum exactly.
func TestQuickMergePreservesTotals(t *testing.T) {
	f := func(replicas [][]uint16, nilMask uint64) bool {
		var results []*Result
		wantBuckets := map[int]Bucket{}
		wantTotal, wantErrors, wantDropped, wantSamples := 0, 0, 0, 0
		for ri, vals := range replicas {
			if nilMask&(1<<(uint(ri)%64)) != 0 {
				results = append(results, nil)
				continue
			}
			r := &Result{}
			for i, v := range vals {
				// Spread values over buckets sparsely: replica shapes
				// differ and some buckets stay zero.
				b := r.bucketAt(uint64(i)*uint64(1+v%97), 100)
				b.Responses += int(v % 5)
				b.Offered += int(v % 7)
				b.Dropped += int(v % 3)
				b.Errors += int(v % 2)
				r.Latency.Add(uint64(v))
				r.Total++
				r.Errors += int(v % 2)
				r.Dropped += int(v % 3)
			}
			for _, b := range r.Buckets {
				w := wantBuckets[b.Index]
				w.Index = b.Index
				w.Responses += b.Responses
				w.Offered += b.Offered
				w.Dropped += b.Dropped
				w.Errors += b.Errors
				wantBuckets[b.Index] = w
			}
			wantTotal += r.Total
			wantErrors += r.Errors
			wantDropped += r.Dropped
			wantSamples += r.Latency.Count()
			results = append(results, r)
		}
		m := Merge(results...)
		if m.Total != wantTotal || m.Errors != wantErrors || m.Dropped != wantDropped || m.Latency.Count() != wantSamples {
			return false
		}
		for _, b := range m.Buckets {
			if b != wantBuckets[b.Index] && (Bucket{Index: b.Index}) != b {
				return false
			}
		}
		for i, w := range wantBuckets {
			if i >= len(m.Buckets) || m.Buckets[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
