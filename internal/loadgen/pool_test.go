package loadgen

import (
	"testing"

	"github.com/dynacut/dynacut/internal/kernel"
)

// TestPoolDrivesClonedReplicas is the fleet traffic shape: one booted
// template cloned into N replicas, each driven by its own Driver under
// a bounded worker count, results merged into one fleet view.
func TestPoolDrivesClonedReplicas(t *testing.T) {
	m, port := bootKV(t)
	const replicas = 4
	mkDriver := func(rm *kernel.Machine) *Driver {
		return &Driver{
			Machine:     rm,
			Port:        port,
			Mix:         NewMix(Request{Payload: "PING\n"}),
			BucketTicks: 50_000,
		}
	}
	pool := &Pool{Workers: 2}
	for i := 0; i < replicas; i++ {
		pool.Drivers = append(pool.Drivers, mkDriver(m.Clone()))
	}

	results, err := pool.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != replicas {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r == nil || r.Errors != 0 || r.Total == 0 {
			t.Fatalf("replica %d result = %+v", i, r)
		}
	}

	merged := Merge(results...)
	wantTotal := 0
	for _, r := range results {
		wantTotal += r.Total
	}
	if merged.Total != wantTotal || merged.Latency.Count() != wantTotal {
		t.Fatalf("merged total = %d (samples %d), want %d", merged.Total, merged.Latency.Count(), wantTotal)
	}
	if len(merged.Buckets) != 3 {
		t.Fatalf("merged buckets = %d", len(merged.Buckets))
	}
	for b := 0; b < 3; b++ {
		sum := 0
		for _, r := range results {
			sum += r.Throughput(b)
		}
		if merged.Throughput(b) != sum {
			t.Errorf("bucket %d: merged %d, want %d", b, merged.Throughput(b), sum)
		}
	}
	// The template machine was not driven: its clock never moved past
	// boot while the clones each advanced independently.
	for i, d := range pool.Drivers {
		if d.Machine.Clock() <= m.Clock() {
			t.Errorf("replica %d clock %d did not advance past template %d", i, d.Machine.Clock(), m.Clock())
		}
	}
}

func TestPoolReportsPerReplicaFailure(t *testing.T) {
	m, port := bootKV(t)
	good := &Driver{Machine: m.Clone(), Port: port, Mix: NewMix(Request{Payload: "PING\n"}), BucketTicks: 50_000}
	bad := &Driver{Machine: m.Clone(), Port: port} // no mix
	pool := &Pool{Drivers: []*Driver{good, bad}}
	results, err := pool.Run(2)
	if err == nil {
		t.Fatal("pool swallowed a driver failure")
	}
	if results[0] == nil || results[0].Total == 0 {
		t.Fatal("healthy replica did not complete")
	}
	if results[1] != nil {
		t.Fatal("failed replica produced a result")
	}
	if merged := Merge(results...); merged.Total != results[0].Total {
		t.Fatalf("merge over nil slot = %+v", merged)
	}
}
