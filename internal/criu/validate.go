package criu

import (
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/kernel"
)

// FileStore provides the "on-disk" binaries referenced by the images;
// *kernel.Machine implements it. Validate uses it to check that every
// backing file a restore would re-read actually exists and parses.
type FileStore interface {
	ReadFile(name string) ([]byte, error)
}

// Validate cross-checks the internal consistency of the image set
// before any live process is touched: it is the transaction guard
// that lets Customizer.Rewrite refuse a bad edit while the guest is
// still running. store may be nil to skip the disk checks (e.g. when
// validating a blob shipped without its binaries).
//
// Checked invariants:
//   - every PID has core/mm/pagemap/files images, exactly once;
//   - VMAs are page-aligned, well-formed (Start < End, perms within
//     R|W|X) and non-overlapping;
//   - the pages blob covers the pagemap exactly, with no duplicate
//     page numbers, and every dumped page lies inside a VMA;
//   - the saved RIP is mapped executable, and its page is either in
//     the image or re-materializable from a backing file;
//   - signal handlers point into executable memory;
//   - descriptors have known kinds and unique FD numbers;
//   - with a store: every backing file restore would read exists,
//     parses as DELF, and contains the referenced section.
//
// Violations are reported wrapping ErrInconsistentImage.
func (s *ImageSet) Validate(store FileStore) error {
	if len(s.PIDs) == 0 {
		return fmt.Errorf("%w: empty image set", ErrInconsistentImage)
	}
	if len(s.PIDs) != len(s.Procs) {
		return fmt.Errorf("%w: %d pids but %d proc images", ErrInconsistentImage, len(s.PIDs), len(s.Procs))
	}
	seen := make(map[int]int, len(s.PIDs)) // pid -> index in restore order
	for i, pid := range s.PIDs {
		if _, dup := seen[pid]; dup {
			return fmt.Errorf("%w: pid %d listed twice", ErrInconsistentImage, pid)
		}
		seen[pid] = i
		if _, ok := s.Procs[pid]; !ok {
			return fmt.Errorf("%w: pid %d has no images", ErrInconsistentImage, pid)
		}
	}
	binaries := map[string]*delf.File{} // backing-file parse cache
	for i, pid := range s.PIDs {
		pi := s.Procs[pid]
		if err := validateProc(pid, pi, store, binaries); err != nil {
			return err
		}
		// Parents must restore before children, or the restored tree
		// loses its ancestry (pidMap lookups would miss).
		if j, ok := seen[pi.Core.Parent]; ok && j > i {
			return fmt.Errorf("%w: pid %d restores before its parent %d",
				ErrInconsistentImage, pid, pi.Core.Parent)
		}
	}
	return nil
}

func validateProc(pid int, pi *ProcImage, store FileStore, binaries map[string]*delf.File) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: pid %d: %s", ErrInconsistentImage, pid, fmt.Sprintf(format, args...))
	}
	if pi.Core.PID != pid {
		return fail("core image belongs to pid %d", pi.Core.PID)
	}
	if pi.Core.Name == "" {
		return fail("core image has no process name")
	}

	// Parent chain: a delta image is only restorable with its ancestry
	// bound and bounded.
	if pi.Delta {
		if pi.parent == nil {
			return fail("delta image has no bound parent (call BindParent after Unmarshal)")
		}
		if d := pi.Depth(); d > MaxParentDepth {
			return fail("parent chain depth %d exceeds limit %d", d, MaxParentDepth)
		}
	} else if len(pi.Holes) > 0 {
		return fail("holes punched in a non-delta image")
	}

	// VMA table: well-formed, aligned, non-overlapping.
	vmas := append([]VMAEntry(nil), pi.MM.VMAs...)
	sort.Slice(vmas, func(i, j int) bool { return vmas[i].Start < vmas[j].Start })
	for i, v := range vmas {
		if v.End <= v.Start {
			return fail("VMA %s has bounds %#x-%#x", v.Name, v.Start, v.End)
		}
		if v.Start%kernel.PageSize != 0 || v.End%kernel.PageSize != 0 {
			return fail("VMA %s is not page aligned (%#x-%#x)", v.Name, v.Start, v.End)
		}
		if perm := delf.Perm(v.Perm); perm&^(delf.PermR|delf.PermW|delf.PermX) != 0 {
			return fail("VMA %s has malformed permissions %#x", v.Name, v.Perm)
		}
		if i > 0 && vmas[i-1].End > v.Start {
			return fail("VMA %s overlaps %s", v.Name, vmas[i-1].Name)
		}
	}

	// Pagemap vs pages blob vs VMA coverage.
	if len(pi.Pages) != kernel.PageSize*len(pi.PageMap.PageNumbers) {
		return fail("pages blob is %d bytes for %d pagemap entries",
			len(pi.Pages), len(pi.PageMap.PageNumbers))
	}
	pageSeen := make(map[uint64]bool, len(pi.PageMap.PageNumbers))
	for _, pn := range pi.PageMap.PageNumbers {
		if pageSeen[pn] {
			return fail("page %d dumped twice", pn)
		}
		pageSeen[pn] = true
		if _, ok := vmaAt(vmas, pn*kernel.PageSize); !ok {
			return fail("dumped page %d lies outside every VMA", pn)
		}
	}

	// A hole says "the parent's page is gone"; carrying the same page
	// in this image too would contradict it.
	for _, h := range pi.Holes {
		if pageSeen[h] {
			return fail("page %d is both dumped and punched as a hole", h)
		}
	}

	// The saved instruction pointer must land on executable, restorable
	// memory — otherwise the restored process dies on its first fetch.
	if !pi.Core.ExitedOK {
		v, ok := vmaAt(vmas, pi.Core.RIP)
		if !ok {
			return fail("RIP %#x is not mapped", pi.Core.RIP)
		}
		if delf.Perm(v.Perm)&delf.PermX == 0 {
			return fail("RIP %#x lies in non-executable VMA %s", pi.Core.RIP, v.Name)
		}
		ripPn := pi.Core.RIP / kernel.PageSize
		ripPresent := pageSeen[ripPn]
		if !ripPresent && pi.Delta {
			// The page may live anywhere up the parent chain.
			if _, err := pi.Page(ripPn); err == nil {
				ripPresent = true
			}
		}
		if !ripPresent && (v.Anon || v.Backing == "" || v.BackSection == "") {
			return fail("RIP %#x page is neither dumped nor file-backed", pi.Core.RIP)
		}
	}

	// Signal handlers must point into executable memory.
	for _, sg := range pi.Core.Sigs {
		if sg.Handler == 0 {
			continue
		}
		v, ok := vmaAt(vmas, sg.Handler)
		if !ok || delf.Perm(v.Perm)&delf.PermX == 0 {
			return fail("signal %d handler %#x is not mapped executable", sg.Signo, sg.Handler)
		}
	}

	// Descriptors: known kinds, unique FD numbers.
	fdSeen := make(map[int]bool, len(pi.Files.Files))
	for _, fe := range pi.Files.Files {
		if fe.FD < 0 {
			return fail("negative fd %d", fe.FD)
		}
		if fdSeen[fe.FD] {
			return fail("fd %d dumped twice", fe.FD)
		}
		fdSeen[fe.FD] = true
		switch kernel.FDKind(fe.Kind) {
		case kernel.FDStdio, kernel.FDListener, kernel.FDConn:
		default:
			return fail("fd %d has unknown kind %d", fe.FD, fe.Kind)
		}
	}

	// Disk checks: everything a restore would re-read must exist.
	if store != nil {
		for _, v := range pi.MM.VMAs {
			if v.Anon || v.Backing == "" || v.BackSection == "" {
				continue
			}
			file, ok := binaries[v.Backing]
			if !ok {
				data, err := store.ReadFile(v.Backing)
				if err != nil {
					return fail("VMA %s: backing file: %v", v.Name, err)
				}
				file, err = delf.Unmarshal(data)
				if err != nil {
					return fail("VMA %s: backing file %s: %v", v.Name, v.Backing, err)
				}
				binaries[v.Backing] = file
			}
			if _, err := file.Section(v.BackSection); err != nil {
				return fail("VMA %s: backing section: %v", v.Name, err)
			}
		}
	}
	return nil
}

// vmaAt finds the (sorted or unsorted) VMA entry containing addr.
func vmaAt(vmas []VMAEntry, addr uint64) (VMAEntry, bool) {
	for _, v := range vmas {
		if addr >= v.Start && addr < v.End {
			return v, true
		}
	}
	return VMAEntry{}, false
}
