package pbuf

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	var e Encoder
	e.Uint(1, 0)
	e.Uint(2, 127)
	e.Uint(3, 128)
	e.Uint(4, math.MaxUint64)
	e.Int(5, -1)
	e.Int(6, math.MinInt64)
	e.Int(7, math.MaxInt64)
	e.Bool(8, true)
	e.Bool(9, false)
	e.Fixed64(10, 0xdeadbeefcafef00d)
	e.Bytes(11, []byte{1, 2, 3})
	e.String(12, "hello")
	e.Bytes(13, nil)

	d := NewDecoder(e.Finish())
	want := []struct {
		field int
		check func() bool
	}{
		{1, func() bool { return d.Uint() == 0 }},
		{2, func() bool { return d.Uint() == 127 }},
		{3, func() bool { return d.Uint() == 128 }},
		{4, func() bool { return d.Uint() == math.MaxUint64 }},
		{5, func() bool { return d.Int() == -1 }},
		{6, func() bool { return d.Int() == math.MinInt64 }},
		{7, func() bool { return d.Int() == math.MaxInt64 }},
		{8, func() bool { return d.Bool() }},
		{9, func() bool { return !d.Bool() }},
		{10, func() bool { return d.Fixed64() == 0xdeadbeefcafef00d }},
		{11, func() bool { return bytes.Equal(d.Bytes(), []byte{1, 2, 3}) }},
		{12, func() bool { return d.String() == "hello" }},
		{13, func() bool { return len(d.Bytes()) == 0 }},
	}
	for _, w := range want {
		if !d.Next() {
			t.Fatalf("Next failed before field %d: %v", w.field, d.Err())
		}
		if d.Field() != w.field {
			t.Fatalf("field = %d, want %d", d.Field(), w.field)
		}
		if !w.check() {
			t.Fatalf("field %d value mismatch (err: %v)", w.field, d.Err())
		}
	}
	if d.Next() {
		t.Fatal("extra field after end")
	}
	if d.Err() != nil {
		t.Fatalf("Err = %v", d.Err())
	}
}

func TestNestedMessages(t *testing.T) {
	var e Encoder
	e.Msg(1, func(inner *Encoder) {
		inner.Uint(1, 42)
		inner.Msg(2, func(deep *Encoder) {
			deep.String(1, "deep")
		})
	})
	e.Uint(2, 7)

	d := NewDecoder(e.Finish())
	var got uint64
	var deep string
	for d.Next() {
		switch d.Field() {
		case 1:
			d.Msg(func(inner *Decoder) error {
				for inner.Next() {
					switch inner.Field() {
					case 1:
						got = inner.Uint()
					case 2:
						inner.Msg(func(dd *Decoder) error {
							for dd.Next() {
								deep = dd.String()
							}
							return nil
						})
					}
				}
				return nil
			})
		case 2:
			if d.Uint() != 7 {
				t.Error("outer field wrong")
			}
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if got != 42 || deep != "deep" {
		t.Fatalf("nested decode = %d, %q", got, deep)
	}
}

func TestSkipUnknownFields(t *testing.T) {
	var e Encoder
	e.Uint(1, 5)
	e.Bytes(2, []byte("ignored"))
	e.Fixed64(3, 9)
	e.Uint(4, 6)
	d := NewDecoder(e.Finish())
	var first, last uint64
	for d.Next() {
		switch d.Field() {
		case 1:
			first = d.Uint()
		case 4:
			last = d.Uint()
		default:
			d.Skip()
		}
	}
	if d.Err() != nil || first != 5 || last != 6 {
		t.Fatalf("skip walk: %d %d %v", first, last, d.Err())
	}
}

func TestImplicitSkip(t *testing.T) {
	// Not reading a value before calling Next again must still work.
	var e Encoder
	e.Uint(1, 5)
	e.Uint(2, 6)
	d := NewDecoder(e.Finish())
	if !d.Next() || !d.Next() {
		t.Fatalf("implicit skip failed: %v", d.Err())
	}
	if d.Field() != 2 || d.Uint() != 6 {
		t.Fatal("landed on wrong field")
	}
}

func TestTruncationErrors(t *testing.T) {
	var e Encoder
	e.Uint(1, 300)
	e.Bytes(2, bytes.Repeat([]byte{7}, 100))
	e.Fixed64(3, 1)
	full := e.Finish()
	for n := 1; n < len(full); n++ {
		d := NewDecoder(full[:n])
		for d.Next() {
			switch d.Wire() {
			case WireVarint:
				d.Uint()
			case WireBytes:
				d.Bytes()
			case WireFixed64:
				d.Fixed64()
			}
		}
		// Either cleanly ended early at a field boundary or errored;
		// must never panic. Field-boundary truncations are allowed to
		// look like clean EOF at tag level; decode of values must not
		// over-read.
		_ = d.Err()
	}
}

func TestWireTypeMismatch(t *testing.T) {
	var e Encoder
	e.Uint(1, 5)
	d := NewDecoder(e.Finish())
	if !d.Next() {
		t.Fatal("Next failed")
	}
	if d.Bytes() != nil || d.Err() == nil {
		t.Fatal("Bytes on varint field did not error")
	}
}

func TestBadTagRejected(t *testing.T) {
	// Field 0 is invalid.
	d := NewDecoder([]byte{0x00})
	if d.Next() {
		t.Fatal("field 0 accepted")
	}
	if d.Err() == nil {
		t.Fatal("no error for field 0")
	}
	// Wire type 5 is invalid here.
	d = NewDecoder([]byte{0x0D})
	if d.Next() || d.Err() == nil {
		t.Fatal("wire type 5 accepted")
	}
}

func TestVarintOverflow(t *testing.T) {
	d := NewDecoder(bytes.Repeat([]byte{0xFF}, 11))
	if d.Next() {
		d.Uint()
	}
	if d.Err() == nil {
		t.Fatal("11-byte varint accepted")
	}
}

// Property: Uint/Int/Bytes round-trip through encode+decode.
func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, b []byte, s string) bool {
		var e Encoder
		e.Uint(1, u)
		e.Int(2, i)
		e.Bytes(3, b)
		e.String(4, s)
		e.Fixed64(5, u)
		d := NewDecoder(e.Finish())
		ok := d.Next() && d.Uint() == u &&
			d.Next() && d.Int() == i &&
			d.Next() && bytes.Equal(d.Bytes(), b) &&
			d.Next() && d.String() == s &&
			d.Next() && d.Fixed64() == u &&
			!d.Next() && d.Err() == nil
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the decoder never panics on arbitrary input.
func TestQuickDecodeRobust(t *testing.T) {
	f := func(raw []byte) bool {
		d := NewDecoder(raw)
		for i := 0; d.Next() && i < 1000; i++ {
			switch d.Wire() {
			case WireVarint:
				d.Uint()
			case WireFixed64:
				d.Fixed64()
			case WireBytes:
				d.Bytes()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
