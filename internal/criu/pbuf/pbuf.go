// Package pbuf implements the protocol-buffers wire format (varint,
// fixed64 and length-delimited fields) used to serialize CRIU-style
// process images. Real CRIU stores its images as protobuf messages
// and its CRIT tool decodes/re-encodes them; this package plays the
// same role for the simulated checkpoint/restore stack.
package pbuf

import (
	"errors"
	"fmt"
	"math"
)

// WireType tags the encoding of a field.
type WireType uint8

// Wire types (protobuf-compatible values).
const (
	WireVarint  WireType = 0
	WireFixed64 WireType = 1
	WireBytes   WireType = 2
)

// Codec errors.
var (
	ErrTruncatedMsg = errors.New("pbuf: truncated message")
	ErrBadTag       = errors.New("pbuf: malformed field tag")
	ErrWireType     = errors.New("pbuf: unexpected wire type")
	ErrOverflow     = errors.New("pbuf: varint overflow")
)

// Encoder builds a message. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

func (e *Encoder) tag(field int, wt WireType) {
	e.varint(uint64(field)<<3 | uint64(wt))
}

func (e *Encoder) varint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// Uint emits an unsigned varint field.
func (e *Encoder) Uint(field int, v uint64) {
	e.tag(field, WireVarint)
	e.varint(v)
}

// Int emits a signed field using zigzag encoding.
func (e *Encoder) Int(field int, v int64) {
	e.Uint(field, uint64(v)<<1^uint64(v>>63))
}

// Bool emits a boolean varint field.
func (e *Encoder) Bool(field int, v bool) {
	if v {
		e.Uint(field, 1)
	} else {
		e.Uint(field, 0)
	}
}

// Fixed64 emits an 8-byte little-endian field.
func (e *Encoder) Fixed64(field int, v uint64) {
	e.tag(field, WireFixed64)
	for i := 0; i < 8; i++ {
		e.buf = append(e.buf, byte(v>>(8*i)))
	}
}

// Bytes emits a length-delimited field.
func (e *Encoder) Bytes(field int, b []byte) {
	e.tag(field, WireBytes)
	e.varint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String emits a length-delimited string field.
func (e *Encoder) String(field int, s string) {
	e.tag(field, WireBytes)
	e.varint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Msg emits a nested message built by fn.
func (e *Encoder) Msg(field int, fn func(*Encoder)) {
	var sub Encoder
	fn(&sub)
	e.Bytes(field, sub.buf)
}

// Raw appends pre-encoded fields verbatim (e.g. a message body that
// was encoded separately so it could be checksummed).
func (e *Encoder) Raw(b []byte) {
	e.buf = append(e.buf, b...)
}

// Finish returns the encoded message.
func (e *Encoder) Finish() []byte {
	return e.buf
}

// Decoder iterates the fields of an encoded message.
//
//	d := pbuf.NewDecoder(data)
//	for d.Next() {
//	    switch d.Field() {
//	    case 1: v = d.Uint()
//	    case 2: s = d.String()
//	    default: d.Skip()
//	    }
//	}
//	if err := d.Err(); err != nil { ... }
//
// Each Next must be followed by exactly one value accessor (or Skip).
type Decoder struct {
	buf      []byte
	off      int
	field    int
	wt       WireType
	consumed bool
	err      error
}

// NewDecoder wraps data for decoding.
func NewDecoder(data []byte) *Decoder {
	return &Decoder{buf: data, consumed: true}
}

// Err returns the first decode error encountered.
func (d *Decoder) Err() error { return d.err }

// Field returns the current field number.
func (d *Decoder) Field() int { return d.field }

// Wire returns the current wire type.
func (d *Decoder) Wire() WireType { return d.wt }

// Next advances to the next field, returning false at end of input or
// on error.
func (d *Decoder) Next() bool {
	if d.err != nil {
		return false
	}
	if !d.consumed {
		d.Skip()
		if d.err != nil {
			return false
		}
	}
	if d.off >= len(d.buf) {
		return false
	}
	tag, ok := d.readVarint()
	if !ok {
		return false
	}
	d.field = int(tag >> 3)
	d.wt = WireType(tag & 7)
	if d.field == 0 || (d.wt != WireVarint && d.wt != WireFixed64 && d.wt != WireBytes) {
		d.err = fmt.Errorf("%w: field %d wire %d", ErrBadTag, d.field, d.wt)
		return false
	}
	d.consumed = false
	return true
}

func (d *Decoder) readVarint() (uint64, bool) {
	var v uint64
	for shift := 0; ; shift += 7 {
		if shift > 63 {
			d.err = ErrOverflow
			return 0, false
		}
		if d.off >= len(d.buf) {
			d.err = ErrTruncatedMsg
			return 0, false
		}
		b := d.buf[d.off]
		d.off++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, true
		}
	}
}

// Uint reads the current varint field.
func (d *Decoder) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	if d.wt != WireVarint {
		d.err = fmt.Errorf("%w: field %d: want varint, got %d", ErrWireType, d.field, d.wt)
		return 0
	}
	d.consumed = true
	v, _ := d.readVarint()
	return v
}

// Int reads the current zigzag-encoded signed field.
func (d *Decoder) Int() int64 {
	v := d.Uint()
	return int64(v>>1) ^ -int64(v&1)
}

// Bool reads the current boolean field.
func (d *Decoder) Bool() bool {
	return d.Uint() != 0
}

// Fixed64 reads the current fixed64 field.
func (d *Decoder) Fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.wt != WireFixed64 {
		d.err = fmt.Errorf("%w: field %d: want fixed64, got %d", ErrWireType, d.field, d.wt)
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err = ErrTruncatedMsg
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(d.buf[d.off+i]) << (8 * i)
	}
	d.off += 8
	d.consumed = true
	return v
}

// Bytes reads the current length-delimited field. The returned slice
// aliases the input buffer.
func (d *Decoder) Bytes() []byte {
	if d.err != nil {
		return nil
	}
	if d.wt != WireBytes {
		d.err = fmt.Errorf("%w: field %d: want bytes, got %d", ErrWireType, d.field, d.wt)
		return nil
	}
	n, ok := d.readVarint()
	if !ok {
		return nil
	}
	if n > math.MaxInt32 || d.off+int(n) > len(d.buf) {
		d.err = ErrTruncatedMsg
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	d.consumed = true
	return b
}

// String reads the current length-delimited field as a string.
func (d *Decoder) String() string {
	return string(d.Bytes())
}

// Msg decodes the current length-delimited field as a nested message.
func (d *Decoder) Msg(fn func(*Decoder) error) {
	b := d.Bytes()
	if d.err != nil {
		return
	}
	sub := NewDecoder(b)
	if err := fn(sub); err != nil {
		d.err = err
		return
	}
	if sub.err != nil {
		d.err = sub.err
	}
}

// Skip discards the current field's value.
func (d *Decoder) Skip() {
	if d.err != nil {
		return
	}
	switch d.wt {
	case WireVarint:
		d.readVarint()
	case WireFixed64:
		if d.off+8 > len(d.buf) {
			d.err = ErrTruncatedMsg
			return
		}
		d.off += 8
	case WireBytes:
		n, ok := d.readVarint()
		if !ok {
			return
		}
		if n > math.MaxInt32 || d.off+int(n) > len(d.buf) {
			d.err = ErrTruncatedMsg
			return
		}
		d.off += int(n)
	}
	d.consumed = true
}
