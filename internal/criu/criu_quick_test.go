package criu

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/kernel"
)

// Property: SetPage/Page round-trips for arbitrary page numbers and
// contents, and Marshal/Unmarshal preserves them.
func TestQuickPageRoundTrip(t *testing.T) {
	f := func(pages map[uint16][]byte) bool {
		pi := &ProcImage{Core: CoreImage{Name: "q", PID: 1}}
		want := map[uint64][]byte{}
		for pn16, data := range pages {
			pn := uint64(pn16)
			page := make([]byte, kernel.PageSize)
			copy(page, data)
			if err := pi.SetPage(pn, page); err != nil {
				return false
			}
			want[pn] = page
		}
		set := &ImageSet{PIDs: []int{1}, Procs: map[int]*ProcImage{1: pi}}
		got, err := Unmarshal(set.Marshal())
		if err != nil {
			return false
		}
		gpi, err := got.Proc(1)
		if err != nil {
			return false
		}
		for pn, page := range want {
			gp, err := gpi.Page(pn)
			if err != nil || !bytes.Equal(gp, page) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: overwriting a page twice keeps the last contents, and
// DropPages of a disjoint range never disturbs others.
func TestQuickPageOverwriteAndDrop(t *testing.T) {
	f := func(pn uint16, a, b byte) bool {
		pi := &ProcImage{}
		p1 := bytes.Repeat([]byte{a}, kernel.PageSize)
		p2 := bytes.Repeat([]byte{b}, kernel.PageSize)
		if pi.SetPage(uint64(pn), p1) != nil {
			return false
		}
		if pi.SetPage(uint64(pn), p2) != nil {
			return false
		}
		got, err := pi.Page(uint64(pn))
		if err != nil || got[0] != b {
			return false
		}
		// Dropping a disjoint range leaves the page alone.
		pi.DropPages(uint64(pn)+10, uint64(pn)+20)
		if _, err := pi.Page(uint64(pn)); err != nil {
			return false
		}
		// Dropping the page itself removes it.
		pi.DropPages(uint64(pn), uint64(pn)+1)
		_, err = pi.Page(uint64(pn))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestImageSetTotalBytes(t *testing.T) {
	pi := &ProcImage{}
	if err := pi.SetPage(1, make([]byte, kernel.PageSize)); err != nil {
		t.Fatal(err)
	}
	pi.MM.VMAs = append(pi.MM.VMAs, VMAEntry{Start: 0, End: kernel.PageSize})
	set := &ImageSet{PIDs: []int{1}, Procs: map[int]*ProcImage{1: pi}}
	if set.TotalBytes() <= kernel.PageSize {
		t.Errorf("TotalBytes = %d", set.TotalBytes())
	}
}

func TestProcMissing(t *testing.T) {
	set := &ImageSet{Procs: map[int]*ProcImage{}}
	if _, err := set.Proc(7); err == nil {
		t.Error("missing pid returned an image")
	}
}
