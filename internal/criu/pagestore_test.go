package criu

import (
	"bytes"
	"sync"
	"testing"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/kernel"
)

func TestPageStoreDepositMaterializeRoundTrip(t *testing.T) {
	m, p := loadCounter(t)
	store := NewPageStore()

	set, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ident := set.Ident()
	if !store.Contains(ident) {
		t.Fatal("dump with Store did not deposit the set")
	}

	got, err := store.Materialize(ident)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), set.Marshal()) {
		t.Fatal("materialized set is not byte-identical to the deposited one")
	}
	if got.Ident() != ident {
		t.Fatalf("materialized ident %#x, want %#x", got.Ident(), ident)
	}

	// The materialized copy is private: editing it must not corrupt a
	// second materialization.
	pi := got.Procs[got.PIDs[0]]
	if len(pi.PageMap.PageNumbers) == 0 {
		t.Fatal("no pages in image")
	}
	junk := make([]byte, kernel.PageSize)
	if err := pi.SetPage(pi.PageMap.PageNumbers[0], junk); err != nil {
		t.Fatal(err)
	}
	again, err := store.Materialize(ident)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Marshal(), set.Marshal()) {
		t.Fatal("editing a materialized set leaked into the store")
	}
}

func TestPageStoreDeltaChainRoundTrip(t *testing.T) {
	m, p := loadCounter(t)
	store := NewPageStore()

	full, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(500)
	delta, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Parent: full, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Delta() {
		t.Fatal("expected a delta dump")
	}
	// Depositing the delta must have pulled its ancestor in too.
	if !store.Contains(full.Ident()) {
		t.Fatal("delta deposit did not deposit the parent chain")
	}

	got, err := store.Materialize(delta.Ident())
	if err != nil {
		t.Fatal(err)
	}
	wantEff, err := delta.Procs[p.PID()].EffectivePages()
	if err != nil {
		t.Fatal(err)
	}
	gotEff, err := got.Procs[p.PID()].EffectivePages()
	if err != nil {
		t.Fatalf("materialized delta chain does not resolve: %v", err)
	}
	if len(gotEff) != len(wantEff) {
		t.Fatalf("effective pages: got %d, want %d", len(gotEff), len(wantEff))
	}
	for pn, want := range wantEff {
		if !bytes.Equal(gotEff[pn], want) {
			t.Fatalf("page %d differs after materialize", pn)
		}
	}

	// And the materialized chain restores into a live guest.
	if err := m.Kill(p.PID()); err != nil {
		t.Fatal(err)
	}
	procs, _, err := RestoreFromStore(m, store, delta.Ident())
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 || procs[0].Exited() {
		t.Fatalf("restore from store: procs=%v", procs)
	}
	if n := m.Run(500); n == 0 {
		t.Fatal("restored guest does not execute")
	}
}

// TestPageStoreDedupSubLinearGrowth is the fleet storage claim: the
// pristine checkpoints of N replicas cloned from one template dedup to
// ~1 guest of page blobs. Stored bytes must grow sub-linearly in N —
// here, adding 15 more replicas is not allowed to even double the
// single-guest footprint.
func TestPageStoreDedupSubLinearGrowth(t *testing.T) {
	m, p := loadCounter(t)
	store := NewPageStore()

	// Give the template a realistic footprint: 64 pages of distinct
	// content that replicas inherit but never touch. The counter's own
	// data pages diverge per replica; these stay pristine and shared.
	const ballastPages = 64
	const ballastBase = uint64(0x4000_0000)
	if err := p.Mem().Map(kernel.VMA{
		Start: ballastBase, End: ballastBase + ballastPages*kernel.PageSize,
		Perm: delf.PermR | delf.PermW, Name: "ballast", Anon: true,
	}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, kernel.PageSize)
	for i := 0; i < ballastPages; i++ {
		for j := range buf {
			buf[j] = byte(i) ^ byte(j)
		}
		if err := p.Mem().Write(ballastBase+uint64(i)*kernel.PageSize, buf); err != nil {
			t.Fatal(err)
		}
	}

	var oneGuest int
	replicas := make([]*kernel.Machine, 0, 16)
	for i := 0; i < 16; i++ {
		replicas = append(replicas, m.Clone())
	}
	for i, rm := range replicas {
		// Each replica diverges slightly before its checkpoint, like a
		// fleet member serving its own traffic.
		rm.Run(uint64(100 * i))
		rp, err := rm.Process(p.PID())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Dump(rm, rp.PID(), DumpOpts{ExecPages: true, Store: store}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			oneGuest = store.Stats().StoredBytes
		}
	}
	st := store.Stats()
	if st.DedupHits == 0 {
		t.Fatal("no page was deduplicated across 16 replica checkpoints")
	}
	if oneGuest == 0 {
		t.Fatal("first checkpoint stored nothing")
	}
	if st.StoredBytes >= 2*oneGuest {
		t.Fatalf("store grew linearly: 16 replicas cost %d bytes, 1 replica %d (want < 2x)",
			st.StoredBytes, oneGuest)
	}
	t.Logf("1 replica: %d bytes; 16 replicas: %d bytes; interned %d pages, %d dedup hits",
		oneGuest, st.StoredBytes, st.PagesInterned, st.DedupHits)
}

// TestPageStoreConcurrentDepositMaterialize is the sharding race test:
// depositors racing each other (including on the *same* set, so the
// dedup fast path and the double-checked set insert both fire) while
// readers Materialize, Contains and Stats concurrently. Run under
// -race this pins down the shard-lock discipline; the final checks pin
// down that no deposit was lost or mangled by the races.
func TestPageStoreConcurrentDepositMaterialize(t *testing.T) {
	m, p := loadCounter(t)
	store := NewPageStore()

	// Eight divergent clone checkpoints: heavy page overlap (dedup
	// contention on shared keys) plus per-replica divergence.
	const nsets = 8
	sets := make([]*ImageSet, nsets)
	for i := range sets {
		rm := m.Clone()
		rm.Run(uint64(50 * i))
		rp, err := rm.Process(p.PID())
		if err != nil {
			t.Fatal(err)
		}
		set, err := Dump(rm, rp.PID(), DumpOpts{ExecPages: true})
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = set
	}

	// Seed one set so the reader goroutines always have a target.
	ident0, err := store.Deposit(sets[0])
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, s := range sets {
				if _, err := store.Deposit(s); err != nil {
					t.Errorf("concurrent deposit: %v", err)
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				got, err := store.Materialize(ident0)
				if err != nil {
					t.Errorf("concurrent materialize: %v", err)
					return
				}
				if got.Ident() != ident0 {
					t.Errorf("materialize under load: ident %#x, want %#x", got.Ident(), ident0)
				}
				if !store.Contains(ident0) {
					t.Error("seeded set vanished from the store")
				}
				_ = store.Stats()
			}
		}()
	}
	wg.Wait()

	// Every set survived the races, byte-identical.
	for i, s := range sets {
		got, err := store.Materialize(s.Ident())
		if err != nil {
			t.Fatalf("set %d after races: %v", i, err)
		}
		if !bytes.Equal(got.Marshal(), s.Marshal()) {
			t.Fatalf("set %d corrupted by concurrent deposits", i)
		}
	}
	// Intern accounting balances: every offered page either hit an
	// existing blob or became a unique one.
	st := store.Stats()
	if st.PagesInterned != st.DedupHits+uint64(st.UniquePages) {
		t.Fatalf("intern accounting torn by races: interned %d != hits %d + unique %d",
			st.PagesInterned, st.DedupHits, st.UniquePages)
	}
	if st.Sets != nsets {
		t.Fatalf("store holds %d sets, deposited %d", st.Sets, nsets)
	}
}
