package criu

import (
	"bytes"
	"testing"

	"github.com/dynacut/dynacut/internal/kernel"
)

// fuzzSeedSet builds a small hand-rolled image set so the fuzz corpus
// contains real Marshal output without booting a guest.
func fuzzSeedSet() *ImageSet {
	page := bytes.Repeat([]byte{0x90}, kernel.PageSize)
	return &ImageSet{
		PIDs: []int{1},
		Procs: map[int]*ProcImage{
			1: {
				Core: CoreImage{
					Name: "guest", PID: 1, RIP: 0x400000,
					Sigs: []SigEntry{{Signo: 5, Handler: 0x400010, Restorer: 0x400020}},
				},
				MM: MMImage{
					VMAs: []VMAEntry{
						{Start: 0x400000, End: 0x401000, Perm: 0x5, Name: "text", Anon: true},
						{Start: 0x7ff000, End: 0x800000, Perm: 0x3, Name: "stack", Anon: true},
					},
					Modules: []ModuleEntry{{Name: "guest", Lo: 0x400000, Hi: 0x401000}},
				},
				PageMap: PageMapImage{PageNumbers: []uint64{0x400}},
				Pages:   page,
				Files: FilesImage{Files: []FileEntry{
					{FD: 0, Kind: uint8(kernel.FDStdio)},
					{FD: 3, Kind: uint8(kernel.FDListener), Port: 8080},
				}},
			},
		},
	}
}

// FuzzUnmarshalImages drives arbitrary byte blobs through the image
// decoder. The contract under fuzz: Unmarshal must return an error or
// a usable set — never panic, and never return a set that then panics
// Validate or Marshal. Corruption of real images must be rejected.
func FuzzUnmarshalImages(f *testing.F) {
	blob := fuzzSeedSet().Marshal()
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:len(blob)-1])
	f.Add([]byte{})
	f.Add([]byte{0x0A, 0x00})
	mutated := append([]byte(nil), blob...)
	mutated[len(mutated)/3] ^= 0x40
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := Unmarshal(data)
		if err != nil {
			if set != nil {
				t.Fatal("Unmarshal returned both a set and an error")
			}
			return
		}
		// Whatever decoded must be safe to inspect and re-encode.
		_ = set.Validate(nil)
		reblob := set.Marshal()
		if _, err := Unmarshal(reblob); err != nil {
			t.Fatalf("re-marshaled set does not decode: %v", err)
		}
	})
}
