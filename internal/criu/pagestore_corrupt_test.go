package criu

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// The store's integrity contract: a content key IS the checksum of its
// blob, every read re-hashes, and any divergence surfaces as a typed
// ErrStoreCorrupt naming the set and pid — never as silently wrong
// restored bytes.

// TestPageStoreCorruptMutatedShard: mutating a stored blob in place
// (simulated disk rot with no fault machinery at all) makes the next
// Materialize of every set referencing it fail loudly with
// ErrStoreCorrupt, carrying the set ident and pid in its message.
func TestPageStoreCorruptMutatedShard(t *testing.T) {
	m, p := loadCounter(t)
	store := NewPageStore()
	set, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ident := set.Ident()

	// Rot one blob directly in the shard map.
	var rotted bool
	for i := range store.shards {
		sh := &store.shards[i]
		sh.mu.Lock()
		for key, pg := range sh.pages {
			pg[17] ^= 0x01
			_ = key
			rotted = true
			break
		}
		sh.mu.Unlock()
		if rotted {
			break
		}
	}
	if !rotted {
		t.Fatal("store held no blobs to rot")
	}

	_, err = store.Materialize(ident)
	if !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("Materialize over a rotted blob: %v, want ErrStoreCorrupt", err)
	}
	if msg := err.Error(); !strings.Contains(msg, fmt.Sprintf("%#x", ident)) ||
		!strings.Contains(msg, fmt.Sprintf("pid %d", p.PID())) {
		t.Fatalf("corruption error lacks set/pid context: %q", msg)
	}
}

// TestPageStoreCorruptRotFaultSite: the SiteStoreRot fault silently
// flips a bit of the stored slice during a read — the fault itself
// returns no error anywhere — and the same read's re-hash is what turns
// it loud. The rot is persistent: the blob stays rotten after the hook
// is removed, exactly like real bit decay on an image store.
func TestPageStoreCorruptRotFaultSite(t *testing.T) {
	m, p := loadCounter(t)
	store := NewPageStore()
	set, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ident := set.Ident()

	// Clean read first: the deposited set materializes byte-identically.
	clean, err := store.Materialize(ident)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean.Procs[p.PID()].Pages, set.Procs[p.PID()].Pages) {
		t.Fatal("clean materialize diverged from the deposited set")
	}

	inj := faultinject.New(1)
	inj.FailOnce(faultinject.SiteStoreRot)
	store.SetFaultHook(inj)
	if _, err := store.Materialize(ident); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("Materialize under rot fault: %v, want ErrStoreCorrupt", err)
	}
	if inj.Injected() == 0 {
		t.Fatal("rot fault never fired")
	}

	// Hook gone, rot stays: the corruption lives in the store, not the
	// fault machinery.
	store.SetFaultHook(nil)
	if _, err := store.Materialize(ident); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("Materialize after rot persisted: %v, want ErrStoreCorrupt", err)
	}

	// RestoreFromStore refuses the rotted set the same way — corrupt
	// bytes never reach a guest.
	if _, _, err := RestoreFromStore(m, store, ident); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("RestoreFromStore over rot: %v, want ErrStoreCorrupt", err)
	}
}

// TestPageStoreCorruptPageBlobVerified: the single-page repair path
// (DepositPage / PageBlob) enforces the same contract — verified reads,
// private copies, typed errors for bad input and missing keys.
func TestPageStoreCorruptPageBlobVerified(t *testing.T) {
	store := NewPageStore()
	pg := make([]byte, kernel.PageSize)
	for i := range pg {
		pg[i] = byte(i * 7)
	}
	key, err := store.DepositPage(pg)
	if err != nil {
		t.Fatal(err)
	}
	if key != sha256.Sum256(pg) {
		t.Fatal("DepositPage key is not the content hash")
	}

	got, err := store.PageBlob(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pg) {
		t.Fatal("PageBlob returned different bytes")
	}
	// Private copy: scribbling on the returned slice must not rot the
	// store.
	got[0] ^= 0xff
	again, err := store.PageBlob(key)
	if err != nil {
		t.Fatalf("PageBlob after caller scribble: %v", err)
	}
	if !bytes.Equal(again, pg) {
		t.Fatal("caller mutation leaked into the store")
	}

	if _, err := store.DepositPage(pg[:kernel.PageSize-1]); !errors.Is(err, ErrBadImage) {
		t.Fatalf("short DepositPage: %v, want ErrBadImage", err)
	}
	var missing [sha256.Size]byte
	if _, err := store.PageBlob(missing); !errors.Is(err, ErrNoImage) {
		t.Fatalf("PageBlob of unknown key: %v, want ErrNoImage", err)
	}

	// Rot the interned blob in place: PageBlob's re-hash catches it.
	sh := store.shard(key)
	sh.mu.Lock()
	sh.pages[key][100] ^= 0x08
	sh.mu.Unlock()
	if _, err := store.PageBlob(key); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("PageBlob over rotted blob: %v, want ErrStoreCorrupt", err)
	}
}
