package criu

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/kernel"
)

// benchCloneSets builds n divergent clone checkpoints of the counter
// guest, ballasted with extra distinct pages so each deposit interns a
// realistic page count. The sets share most content — the fleet
// deposit workload the sharded page map exists for.
func benchCloneSets(b *testing.B, n int) []*ImageSet {
	b.Helper()
	m, p := loadCounter(b)

	const ballastPages = 64
	const ballastBase = uint64(0x4000_0000)
	if err := p.Mem().Map(kernel.VMA{
		Start: ballastBase, End: ballastBase + ballastPages*kernel.PageSize,
		Perm: delf.PermR | delf.PermW, Name: "ballast", Anon: true,
	}); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, kernel.PageSize)
	for i := 0; i < ballastPages; i++ {
		for j := range buf {
			buf[j] = byte(i) ^ byte(j)
		}
		if err := p.Mem().Write(ballastBase+uint64(i)*kernel.PageSize, buf); err != nil {
			b.Fatal(err)
		}
	}

	sets := make([]*ImageSet, n)
	for i := range sets {
		rm := m.Clone()
		rm.Run(uint64(100 * i))
		rp, err := rm.Process(p.PID())
		if err != nil {
			b.Fatal(err)
		}
		set, err := Dump(rm, rp.PID(), DumpOpts{ExecPages: true})
		if err != nil {
			b.Fatal(err)
		}
		set.Ident() // pre-compute outside the timed region
		sets[i] = set
	}
	return sets
}

// hotShardFrac computes the contention proxy the sharding exists to
// shrink: the fraction of page interns that land on the single
// busiest bucket lock. 1.0 means every intern fights over one mutex
// (the pre-sharding layout); ~1/shards means an even spread. Unlike
// ns/op this is deterministic and machine-independent — on a
// single-CPU runner the wall-clock columns collapse to parity because
// goroutines never truly contend, but the spread still tells the
// story.
func hotShardFrac(sets []*ImageSet, shards int) float64 {
	counts := make([]int, shards)
	total := 0
	for _, s := range sets {
		for _, pi := range s.Procs {
			for i := range pi.PageMap.PageNumbers {
				key := sha256.Sum256(pi.Pages[i*kernel.PageSize : (i+1)*kernel.PageSize])
				counts[int(key[0])&(shards-1)]++
				total++
			}
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(total)
}

// BenchmarkPageStoreParallelDeposit measures one fleet checkpoint
// deposit — every replica's set deposited concurrently into a fresh
// store — in three lock regimes: "coarse" emulates the pre-sharding
// store, whose single mutex was held across the whole deposit (every
// page hash included), fully serializing depositors; "shards=1" is
// the refactored store collapsed to one page-map bucket (hashing
// already outside the lock); "shards=64" is the shipped layout. Same
// work in each, different contention.
func BenchmarkPageStoreParallelDeposit(b *testing.B) {
	sets := benchCloneSets(b, 32)
	run := func(b *testing.B, shards int, coarse *sync.Mutex) {
		b.ReportMetric(hotShardFrac(sets, shards), "hot-shard-frac")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store := newPageStoreShards(shards)
			var wg sync.WaitGroup
			for _, set := range sets {
				wg.Add(1)
				go func(s *ImageSet) {
					defer wg.Done()
					if coarse != nil {
						coarse.Lock()
						defer coarse.Unlock()
					}
					if _, err := store.Deposit(s); err != nil {
						b.Error(err)
					}
				}(set)
			}
			wg.Wait()
		}
	}
	b.Run("coarse", func(b *testing.B) { run(b, 1, new(sync.Mutex)) })
	for _, shards := range []int{1, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { run(b, shards, nil) })
	}
}

// BenchmarkPageStoreParallelMaterialize measures the read side: many
// workers re-materializing deposited checkpoints at once, the pristine
// rollback path when a halted wave restores replicas in parallel.
func BenchmarkPageStoreParallelMaterialize(b *testing.B) {
	sets := benchCloneSets(b, 32)
	for _, shards := range []int{1, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := newPageStoreShards(shards)
			idents := make([]uint32, len(sets))
			for i, set := range sets {
				id, err := store.Deposit(set)
				if err != nil {
					b.Fatal(err)
				}
				idents[i] = id
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := store.Materialize(idents[i%len(idents)]); err != nil {
						b.Error(err)
					}
					i++
				}
			})
		})
	}
}
