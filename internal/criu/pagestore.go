package criu

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// ErrStoreCorrupt reports a content-addressed blob whose bytes no
// longer hash to its key: the store rotted underneath us. Every blob
// read re-hashes (the key IS the checksum), so rot is caught at the
// first read instead of being silently restored into a live guest.
var ErrStoreCorrupt = errors.New("criu: page store blob corrupt")

// PageStore is a content-addressed blob store for checkpoint images:
// every page is keyed by the SHA-256 of its contents, so identical
// pages — e.g. the pristine checkpoints of N replicas cloned from one
// template guest — are stored once however many image sets reference
// them. It is the fleet layer's shared storage backend: depositing N
// clone checkpoints costs ~1 guest of page blobs plus per-set
// metadata, and any deposited set (delta chains included) can be
// re-materialized for restore.
//
// All methods are safe for concurrent use. The page map is sharded by
// hash prefix (the first key byte picks the bucket), so a rollout
// controller's worker pool — hundreds of concurrent Deposit and
// Materialize calls at fleet scale — contends on independent bucket
// locks instead of serializing on one map.
type PageStore struct {
	shards []pageShard

	setMu sync.RWMutex
	sets  map[uint32]*storedSet

	hookMu sync.Mutex
	hook   kernel.FaultHook // consulted at SiteStoreRot on blob reads

	interned atomic.Uint64 // pages presented to the store
	hits     atomic.Uint64 // pages already present (dedup wins)
}

// pageShard is one hash-prefix bucket of the page map.
type pageShard struct {
	mu    sync.Mutex
	pages map[[sha256.Size]byte][]byte
}

// defaultPageShards is the bucket count — a power of two so the
// prefix mask is a single AND. 64 buckets keep 1000+ workers' expected
// lock collisions low while costing ~nothing for small stores.
const defaultPageShards = 64

// storedSet is one deposited image set: per-proc metadata with the
// page payload replaced by content keys, plus the parent identity for
// delta chains.
type storedSet struct {
	pids      []int
	shells    map[int]*ProcImage // Pages nil; everything else deep-copied
	keys      map[int][][sha256.Size]byte
	parentID  uint32
	hasParent bool
}

// StoreStats is a snapshot of the store's dedup accounting.
type StoreStats struct {
	// Sets is how many image sets the store holds.
	Sets int
	// UniquePages / StoredBytes measure what the store actually keeps.
	UniquePages int
	StoredBytes int
	// PagesInterned / DedupHits measure what was offered: every page of
	// every deposit, and how many of those were already present.
	PagesInterned uint64
	DedupHits     uint64
}

// NewPageStore creates an empty content-addressed page store.
func NewPageStore() *PageStore { return newPageStoreShards(defaultPageShards) }

// newPageStoreShards sizes the hash-prefix bucket count explicitly —
// the sharding benchmark's before/after lever. n is rounded down to a
// power of two, minimum 1 (the pre-sharding single-lock behavior).
func newPageStoreShards(n int) *PageStore {
	shards := 1
	for shards*2 <= n {
		shards *= 2
	}
	s := &PageStore{
		shards: make([]pageShard, shards),
		sets:   map[uint32]*storedSet{},
	}
	for i := range s.shards {
		s.shards[i].pages = map[[sha256.Size]byte][]byte{}
	}
	return s
}

// shard picks the bucket owning a content key by hash prefix.
func (s *PageStore) shard(key [sha256.Size]byte) *pageShard {
	return &s.shards[int(key[0])&(len(s.shards)-1)]
}

// SetFaultHook installs a fault hook consulted on every blob read
// (SiteStoreRot). A fired fault rots the stored blob in place — the
// rot is persistent, exactly like bit decay on a real image store —
// and the read continues as if nothing happened; the re-hash check is
// what turns it into a loud ErrStoreCorrupt.
func (s *PageStore) SetFaultHook(h kernel.FaultHook) {
	s.hookMu.Lock()
	s.hook = h
	s.hookMu.Unlock()
}

// readBlob fetches one page blob, applies any armed silent-rot fault,
// and re-hashes the bytes against the content key. The key is the
// checksum: any divergence is corruption by definition.
func (s *PageStore) readBlob(key [sha256.Size]byte) ([]byte, error) {
	s.hookMu.Lock()
	hook := s.hook
	s.hookMu.Unlock()
	sh := s.shard(key)
	sh.mu.Lock()
	pg, ok := sh.pages[key]
	if ok && hook != nil {
		if ferr := hook.Fault(faultinject.SiteStoreRot, int(key[0])); ferr != nil {
			// Silent rot: flip one bit of the *stored* slice. Future
			// reads of this blob see the same rotten bytes.
			pg[len(pg)/2] ^= 0x40
		}
	}
	sh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no blob for key %x", ErrNoImage, key[:8])
	}
	if sha256.Sum256(pg) != key {
		return nil, fmt.Errorf("%w: key %x", ErrStoreCorrupt, key[:8])
	}
	return pg, nil
}

// PageBlob returns a private copy of one page blob by content key,
// re-hash-verified like every store read. This is the anti-entropy
// repair path's source of truth: an attestation oracle's expected
// page digest is a store key, so the expected bytes are one lookup
// away.
func (s *PageStore) PageBlob(key [sha256.Size]byte) ([]byte, error) {
	pg, err := s.readBlob(key)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), pg...), nil
}

// DepositPage interns a single page outside any image set and returns
// its content key. The attestation oracle deposits each text page's
// expected content at commit time so a later repair can materialize
// it by digest.
func (s *PageStore) DepositPage(pg []byte) ([sha256.Size]byte, error) {
	if len(pg) != kernel.PageSize {
		return [sha256.Size]byte{}, fmt.Errorf("%w: page blob is %d bytes, want %d", ErrBadImage, len(pg), kernel.PageSize)
	}
	return s.internPage(pg), nil
}

// internPage stores one page under its content key (or finds it
// already present) and returns the key.
func (s *PageStore) internPage(pg []byte) [sha256.Size]byte {
	key := sha256.Sum256(pg)
	s.interned.Add(1)
	sh := s.shard(key)
	sh.mu.Lock()
	if _, ok := sh.pages[key]; ok {
		s.hits.Add(1)
	} else {
		sh.pages[key] = append([]byte(nil), pg...)
	}
	sh.mu.Unlock()
	return key
}

// cloneProcShell deep-copies a proc image's metadata, leaving Pages
// nil: the store keeps page payloads only under their content keys.
func cloneProcShell(pi *ProcImage) *ProcImage {
	c := &ProcImage{
		Core:  pi.Core,
		Files: FilesImage{Files: append([]FileEntry(nil), pi.Files.Files...)},
		Delta: pi.Delta,
		Holes: append([]uint64(nil), pi.Holes...),
	}
	c.Core.Sigs = append([]SigEntry(nil), pi.Core.Sigs...)
	c.Core.SysFilter = append([]uint64(nil), pi.Core.SysFilter...)
	c.MM.VMAs = append([]VMAEntry(nil), pi.MM.VMAs...)
	c.MM.Modules = append([]ModuleEntry(nil), pi.MM.Modules...)
	c.PageMap.PageNumbers = append([]uint64(nil), pi.PageMap.PageNumbers...)
	return c
}

// Deposit interns an image set: every page is stored under its content
// hash (duplicates shared, not copied) and the set's structure is
// recorded under its Ident. A delta set's ancestors are deposited
// first, so materializing the set later can rebuild the whole chain.
// Depositing a set that is already present is a cheap no-op. Returns
// the set's identity.
func (s *PageStore) Deposit(set *ImageSet) (uint32, error) {
	if set == nil {
		return 0, fmt.Errorf("%w: nil image set", ErrBadImage)
	}
	if set.Parent != nil {
		if _, err := s.Deposit(set.Parent); err != nil {
			return 0, err
		}
	}
	ident := set.Ident()

	s.setMu.RLock()
	_, ok := s.sets[ident]
	s.setMu.RUnlock()
	if ok {
		return ident, nil
	}

	// Validate before interning so a bad set deposits nothing.
	for pid, pi := range set.Procs {
		if len(pi.Pages) != len(pi.PageMap.PageNumbers)*kernel.PageSize {
			return 0, fmt.Errorf("%w: pid %d pages/pagemap mismatch", ErrBadImage, pid)
		}
	}

	st := &storedSet{
		pids:   append([]int(nil), set.PIDs...),
		shells: make(map[int]*ProcImage, len(set.Procs)),
		keys:   make(map[int][][sha256.Size]byte, len(set.Procs)),
	}
	if set.Parent != nil {
		st.parentID = set.Parent.Ident()
		st.hasParent = true
	} else if pid, ok := set.ParentRef(); ok {
		// Decoded-but-unbound delta: keep the recorded reference so a
		// later materialize can still find the chain if it is deposited.
		st.parentID = pid
		st.hasParent = true
	}
	for pid, pi := range set.Procs {
		keys := make([][sha256.Size]byte, len(pi.PageMap.PageNumbers))
		for i := range pi.PageMap.PageNumbers {
			keys[i] = s.internPage(pi.Pages[i*kernel.PageSize : (i+1)*kernel.PageSize])
		}
		st.shells[pid] = cloneProcShell(pi)
		st.keys[pid] = keys
	}

	s.setMu.Lock()
	if _, ok := s.sets[ident]; !ok {
		s.sets[ident] = st
	}
	s.setMu.Unlock()
	return ident, nil
}

// Contains reports whether the store holds a set with this identity.
func (s *PageStore) Contains(ident uint32) bool {
	s.setMu.RLock()
	defer s.setMu.RUnlock()
	_, ok := s.sets[ident]
	return ok
}

// Materialize rebuilds a deposited image set, re-assembling page
// payloads from the shared blobs and re-binding delta chains through
// their deposited ancestors. The returned set is private to the
// caller: mutating it (crit edits) does not touch the store.
func (s *PageStore) Materialize(ident uint32) (*ImageSet, error) {
	s.setMu.RLock()
	st, ok := s.sets[ident]
	s.setMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: set %#x not in page store", ErrNoImage, ident)
	}
	set := &ImageSet{
		PIDs:  append([]int(nil), st.pids...),
		Procs: make(map[int]*ProcImage, len(st.shells)),
	}
	for pid, shell := range st.shells {
		pi := cloneProcShell(shell)
		keys := st.keys[pid]
		pi.Pages = make([]byte, 0, len(keys)*kernel.PageSize)
		for _, key := range keys {
			pg, err := s.readBlob(key)
			switch {
			case errors.Is(err, ErrStoreCorrupt):
				return nil, fmt.Errorf("set %#x pid %d: %w", ident, pid, err)
			case err != nil:
				return nil, fmt.Errorf("%w: page blob missing for set %#x pid %d", ErrCorruptImage, ident, pid)
			}
			pi.Pages = append(pi.Pages, pg...)
		}
		set.Procs[pid] = pi
	}
	if st.hasParent {
		parent, err := s.Materialize(st.parentID)
		if err != nil {
			return nil, fmt.Errorf("materializing parent of %#x: %w", ident, err)
		}
		set.parentID = st.parentID
		set.hasPByRef = true
		if err := set.BindParent(parent); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Stats returns a snapshot of the store's dedup accounting.
func (s *PageStore) Stats() StoreStats {
	stats := StoreStats{
		PagesInterned: s.interned.Load(),
		DedupHits:     s.hits.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		stats.UniquePages += len(sh.pages)
		for _, pg := range sh.pages {
			stats.StoredBytes += len(pg)
		}
		sh.mu.Unlock()
	}
	s.setMu.RLock()
	stats.Sets = len(s.sets)
	s.setMu.RUnlock()
	return stats
}

// RestoreFromStore materializes a deposited image set and restores it
// into the machine — the fleet's pristine-rollback path: N replicas
// share one deposited pristine checkpoint and each can be rebuilt from
// it independently.
func RestoreFromStore(m *kernel.Machine, store *PageStore, ident uint32) ([]*kernel.Process, map[int]int, error) {
	set, err := store.Materialize(ident)
	if err != nil {
		return nil, nil, err
	}
	return Restore(m, set)
}
