package criu

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/dynacut/dynacut/internal/criu/pbuf"
	"github.com/dynacut/dynacut/internal/kernel"
)

// marshalProcEntryWithoutChecksum encodes one proc entry the way a
// pre-integrity writer would have: content only, no checksum field.
func marshalProcEntryWithoutChecksum(pid int, pi *ProcImage) []byte {
	var e pbuf.Encoder
	body := marshalProcBody(pid, pi)
	e.Msg(1, func(pe *pbuf.Encoder) { pe.Raw(body) })
	return e.Finish()
}

// dumpCounter boots the counter guest and dumps it with exec pages
// (the rewrite-flow shape).
func dumpCounter(t *testing.T) (*kernel.Machine, *kernel.Process, *ImageSet) {
	t.Helper()
	m := kernel.NewMachine()
	exe := buildExe(t, "counter", counterSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(3000)
	set, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	return m, p, set
}

func TestMarshalChecksumRoundTrip(t *testing.T) {
	m, p, set := dumpCounter(t)
	want, err := set.Checksum(p.PID())
	if err != nil {
		t.Fatal(err)
	}
	blob := set.Marshal()
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("unmarshal pristine blob: %v", err)
	}
	sum, err := got.Checksum(p.PID())
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Errorf("checksum drifted across roundtrip: %#x -> %#x", want, sum)
	}
	if err := got.Validate(m); err != nil {
		t.Errorf("roundtripped set fails validation: %v", err)
	}
}

// TestChecksumTracksContent: editing a decoded image changes its
// checksum (the checksum is a property of the content, recomputed at
// Marshal time — in-memory edits never invalidate a set).
func TestChecksumTracksContent(t *testing.T) {
	_, p, set := dumpCounter(t)
	before, _ := set.Checksum(p.PID())
	set.Procs[p.PID()].Core.Regs[1] ^= 0xFFFF
	after, _ := set.Checksum(p.PID())
	if before == after {
		t.Error("checksum ignored a register edit")
	}
	// The re-marshaled blob still decodes: the checksum is rewritten.
	if _, err := Unmarshal(set.Marshal()); err != nil {
		t.Errorf("re-marshal after edit: %v", err)
	}
}

// TestEveryBitFlipIsRejected is the integrity property behind the
// transactional rewrite: no single-bit corruption of a serialized
// image set may decode successfully. One seeded-random bit is flipped
// at every byte offset.
func TestEveryBitFlipIsRejected(t *testing.T) {
	_, _, set := dumpCounter(t)
	// Keep the blob small but representative: the counter guest dumps
	// code, data and stack pages.
	blob := set.Marshal()
	rng := rand.New(rand.NewSource(1))
	for off := 0; off < len(blob); off++ {
		mutated := append([]byte(nil), blob...)
		mutated[off] ^= byte(1 << rng.Intn(8))
		if _, err := Unmarshal(mutated); err == nil {
			t.Fatalf("bit flip at offset %d/%d decoded successfully", off, len(blob))
		}
	}
}

func TestEveryTruncationIsRejected(t *testing.T) {
	_, _, set := dumpCounter(t)
	blob := set.Marshal()
	for n := 0; n < len(blob); n += 7 { // stride keeps the test fast
		if _, err := Unmarshal(blob[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(blob))
		}
	}
}

func TestUnmarshalRejectsMissingChecksum(t *testing.T) {
	_, p, set := dumpCounter(t)
	// Encode the proc entry without its checksum field, as a pre-
	// integrity writer would have.
	blob := marshalProcEntryWithoutChecksum(p.PID(), set.Procs[p.PID()])
	_, err := Unmarshal(blob)
	if !errors.Is(err, ErrCorruptImage) {
		t.Fatalf("missing checksum -> %v, want ErrCorruptImage", err)
	}
}

func TestValidateCatchesInconsistencies(t *testing.T) {
	corrupt := func(t *testing.T, f func(t *testing.T, set *ImageSet, pid int)) error {
		t.Helper()
		m, p, set := dumpCounter(t)
		f(t, set, p.PID())
		return set.Validate(m)
	}
	cases := []struct {
		name string
		f    func(t *testing.T, set *ImageSet, pid int)
	}{
		{"rip unmapped", func(t *testing.T, set *ImageSet, pid int) {
			set.Procs[pid].Core.RIP = 0xdead_beef_f000
		}},
		{"vma not page aligned", func(t *testing.T, set *ImageSet, pid int) {
			set.Procs[pid].MM.VMAs[0].Start += 3
		}},
		{"vma inverted", func(t *testing.T, set *ImageSet, pid int) {
			v := &set.Procs[pid].MM.VMAs[0]
			v.Start, v.End = v.End, v.Start
		}},
		{"vma bad perm bits", func(t *testing.T, set *ImageSet, pid int) {
			set.Procs[pid].MM.VMAs[0].Perm = 0xF8
		}},
		{"vmas overlap", func(t *testing.T, set *ImageSet, pid int) {
			mm := &set.Procs[pid].MM
			mm.VMAs = append(mm.VMAs, mm.VMAs[0])
		}},
		{"pages blob short", func(t *testing.T, set *ImageSet, pid int) {
			pi := set.Procs[pid]
			pi.Pages = pi.Pages[:len(pi.Pages)-1]
		}},
		{"duplicate page number", func(t *testing.T, set *ImageSet, pid int) {
			pm := &set.Procs[pid].PageMap
			if len(pm.PageNumbers) < 2 {
				t.Skip("single-page dump")
			}
			pm.PageNumbers[1] = pm.PageNumbers[0]
		}},
		{"dumped page outside vmas", func(t *testing.T, set *ImageSet, pid int) {
			pi := set.Procs[pid]
			pi.PageMap.PageNumbers[0] = 0xdead_beef
		}},
		{"pid mismatch", func(t *testing.T, set *ImageSet, pid int) {
			set.Procs[pid].Core.PID = pid + 99
		}},
		{"duplicate pid entry", func(t *testing.T, set *ImageSet, pid int) {
			set.PIDs = append(set.PIDs, pid)
		}},
		{"missing proc image", func(t *testing.T, set *ImageSet, pid int) {
			delete(set.Procs, pid)
		}},
		{"negative fd", func(t *testing.T, set *ImageSet, pid int) {
			pi := set.Procs[pid]
			pi.Files.Files = append(pi.Files.Files, FileEntry{FD: -1, Kind: uint8(kernel.FDStdio)})
		}},
		{"unknown fd kind", func(t *testing.T, set *ImageSet, pid int) {
			pi := set.Procs[pid]
			pi.Files.Files = append(pi.Files.Files, FileEntry{FD: 9, Kind: 200})
		}},
		{"unreadable backing file", func(t *testing.T, set *ImageSet, pid int) {
			for i := range set.Procs[pid].MM.VMAs {
				v := &set.Procs[pid].MM.VMAs[i]
				if !v.Anon && v.Backing != "" && v.BackSection != "" {
					v.Backing = "no-such-binary"
					return
				}
			}
			t.Skip("no file-backed VMA in dump")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := corrupt(t, tc.f)
			if !errors.Is(err, ErrInconsistentImage) {
				t.Fatalf("got %v, want ErrInconsistentImage", err)
			}
		})
	}

	// And the untouched set must pass.
	m, _, set := dumpCounter(t)
	if err := set.Validate(m); err != nil {
		t.Fatalf("pristine set rejected: %v", err)
	}
	// Without a store, disk-backed checks are skipped but structural
	// ones still run.
	if err := set.Validate(nil); err != nil {
		t.Fatalf("pristine set rejected without store: %v", err)
	}
}
