package criu

import (
	"testing"

	"github.com/dynacut/dynacut/internal/kernel"
)

// TestMigrationToFreshMachine exercises CRIU's original purpose —
// live process migration: dump on machine A, ship the serialized
// images plus the binaries ("disk"), restore on machine B, and keep
// running. Code patches in the image must survive because the dump
// used ExecPages.
func TestMigrationToFreshMachine(t *testing.T) {
	src := kernel.NewMachine()
	exe := buildExe(t, "counter", counterSrc)
	p, err := src.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	src.Run(5000)
	counterSym, err := exe.Symbol("counter")
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Mem().ReadU64(counterSym.Value)
	if err != nil {
		t.Fatal(err)
	}

	set, err := Dump(src, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	blob := set.Marshal()

	// "Ship" images and binaries to the destination machine.
	dst := kernel.NewMachine()
	for _, name := range []string{"counter"} {
		data, err := src.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		dst.WriteFile(name, data)
	}
	shipped, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := Restore(dst, shipped)
	if err != nil {
		t.Fatal(err)
	}
	rp := restored[0]
	after, err := rp.Mem().ReadU64(counterSym.Value)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("migrated counter = %d, want %d", after, before)
	}
	dst.Run(5000)
	later, _ := rp.Mem().ReadU64(counterSym.Value)
	if later <= after {
		t.Fatal("migrated process not running on the destination")
	}
	// The source's copy is independent.
	src.Run(1000)
	if p.Exited() {
		t.Fatal("source process died")
	}
}

// TestMigrationMissingBinaryFails: restoring file-backed memory
// without the binary on the destination disk must fail cleanly.
func TestMigrationMissingBinaryFails(t *testing.T) {
	src := kernel.NewMachine()
	exe := buildExe(t, "counter", counterSrc)
	p, err := src.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	src.Run(100)
	set, err := Dump(src, p.PID(), DumpOpts{}) // vanilla: code not in image
	if err != nil {
		t.Fatal(err)
	}
	dst := kernel.NewMachine() // empty disk
	if _, _, err := Restore(dst, set); err == nil {
		t.Fatal("restore without binaries succeeded")
	}
}
