// Package criu implements checkpoint/restore in userspace for the
// simulated kernel, mirroring the CRIU workflow DynaCut builds on:
// a running process (tree) is frozen into a set of protobuf-encoded
// images (core, mm, pagemap, pages, files), the images can be
// rewritten offline (internal/crit), and a process can be restored
// from them with its TCP connections re-attached (TCP repair).
//
// Vanilla CRIU dumps only anonymous memory: file-backed pages are
// re-materialized from the binaries on disk at restore time. That is
// fatal for a process rewriter — byte patches to code pages would be
// silently undone — so, like the paper's modified CRIU, Dump accepts
// an option to also dump private executable file-backed pages.
package criu

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"github.com/dynacut/dynacut/internal/criu/pbuf"
	"github.com/dynacut/dynacut/internal/kernel"
)

// Image file names within an ImageSet, per PID (mirroring CRIU's
// core-<pid>.img etc.).
const (
	CoreImg    = "core"
	MMImg      = "mm"
	PageMapImg = "pagemap"
	PagesImg   = "pages"
	FilesImg   = "files"
)

// Package errors.
var (
	ErrBadImage   = errors.New("criu: malformed image")
	ErrNoImage    = errors.New("criu: missing image")
	ErrPageAbsent = errors.New("criu: page not present in image")
	// ErrCorruptImage flags a serialized image whose checksum does not
	// match its content (bit flips, truncation inside an entry).
	ErrCorruptImage = errors.New("criu: corrupt image")
	// ErrInconsistentImage flags an image set whose parts contradict
	// each other (pagemap not covered by pages, RIP unmapped, ...).
	ErrInconsistentImage = errors.New("criu: inconsistent image set")
	// ErrNoParent flags a delta image whose page lookups need a parent
	// image set that is not bound (BindParent after Unmarshal) or whose
	// chain exceeds MaxParentDepth.
	ErrNoParent = errors.New("criu: parent image not bound")
)

// MaxParentDepth bounds the incremental-image ancestry: page lookups
// resolve through at most this many parent links, and Dump falls back
// to a full dump rather than growing a deeper chain (mirroring how
// real CRIU bounds --track-mem parent directories before consolidating).
const MaxParentDepth = 8

// SigEntry is one registered signal handler in a core image.
type SigEntry struct {
	Signo    int    `json:"signo"`
	Handler  uint64 `json:"handler"`
	Restorer uint64 `json:"restorer"`
}

// CoreImage mirrors CRIU's core.img: identity, registers, and signal
// dispositions.
type CoreImage struct {
	Name     string     `json:"name"`
	PID      int        `json:"pid"`
	Parent   int        `json:"parent"`
	RIP      uint64     `json:"rip"`
	Flags    uint64     `json:"flags"`
	Regs     [16]uint64 `json:"regs"`
	Sigs     []SigEntry `json:"sigactions,omitempty"`
	ExitedOK bool       `json:"exitedOk,omitempty"` // dumped after clean exit (diagnostics only)
	// SysFilter is the seccomp-style syscall allow list; HasFilter
	// distinguishes "no filter" from an empty (deny-all) filter.
	HasFilter bool     `json:"hasFilter,omitempty"`
	SysFilter []uint64 `json:"sysFilter,omitempty"`
}

// VMAEntry is one VMA in an mm image.
type VMAEntry struct {
	Start       uint64 `json:"start"`
	End         uint64 `json:"end"`
	Perm        uint8  `json:"perm"`
	Name        string `json:"name"`
	Backing     string `json:"backing,omitempty"`
	BackSection string `json:"backSection,omitempty"`
	Anon        bool   `json:"anon"`
}

// ModuleEntry records a mapped binary (for tracing and rewriting).
type ModuleEntry struct {
	Name string `json:"name"`
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
}

// MMImage mirrors CRIU's mm.img: the full VMA table plus the module
// list.
type MMImage struct {
	VMAs    []VMAEntry    `json:"vmas"`
	Modules []ModuleEntry `json:"modules"`
}

// PageMapImage lists which pages are present in the pages image, in
// order.
type PageMapImage struct {
	PageNumbers []uint64
}

// FileEntry describes one open descriptor.
type FileEntry struct {
	FD     int    `json:"fd"`
	Kind   uint8  `json:"kind"`
	StdNo  int    `json:"stdNo,omitempty"`
	Port   uint16 `json:"port,omitempty"`
	ConnID uint64 `json:"connId,omitempty"`
	SideA  bool   `json:"sideA,omitempty"`
}

// FilesImage mirrors CRIU's files.img/tcp images.
type FilesImage struct {
	Files []FileEntry
}

// ProcImage aggregates the images of one process. A Delta proc image
// holds only the pages dirtied since its parent checkpoint; page
// lookups fall through to the parent chain (bound via Dump or
// BindParent), and Holes records pages the parent has but this image
// explicitly lacks (unmapped since the parent was taken).
type ProcImage struct {
	Core    CoreImage
	MM      MMImage
	PageMap PageMapImage
	Pages   []byte // concatenated page data, PageMap order
	Files   FilesImage
	// Delta marks an incremental image: absent pages resolve through
	// the parent chain instead of being errors.
	Delta bool
	// Holes lists pages absent from this image even though an
	// ancestor holds them (punched by UnmapRange edits).
	Holes []uint64

	// parent is the same-PID image in the parent set (nil until bound).
	parent *ProcImage
}

// ParentImage returns the bound parent proc image (nil for a full
// image or an unbound delta).
func (pi *ProcImage) ParentImage() *ProcImage { return pi.parent }

// ownPage returns the page data held by this image itself, without
// consulting the parent chain.
func (pi *ProcImage) ownPage(pn uint64) ([]byte, bool, error) {
	for i, n := range pi.PageMap.PageNumbers {
		if n == pn {
			off := i * kernel.PageSize
			if off+kernel.PageSize > len(pi.Pages) {
				return nil, false, fmt.Errorf("%w: pages image truncated", ErrBadImage)
			}
			return pi.Pages[off : off+kernel.PageSize], true, nil
		}
	}
	return nil, false, nil
}

func (pi *ProcImage) hasHole(pn uint64) bool {
	for _, h := range pi.Holes {
		if h == pn {
			return true
		}
	}
	return false
}

// Page returns the dumped contents of page pn, resolving delta images
// through the (bounded-depth) parent chain. The returned slice may
// alias an ancestor image: callers must copy before mutating (SetPage
// materializes a private copy automatically).
func (pi *ProcImage) Page(pn uint64) ([]byte, error) {
	for cur, depth := pi, 0; ; {
		data, ok, err := cur.ownPage(pn)
		if err != nil {
			return nil, err
		}
		if ok {
			return data, nil
		}
		if cur.hasHole(pn) || !cur.Delta {
			return nil, fmt.Errorf("%w: page %d", ErrPageAbsent, pn)
		}
		if cur.parent == nil {
			return nil, fmt.Errorf("%w: page %d needs a parent image", ErrNoParent, pn)
		}
		depth++
		if depth > MaxParentDepth {
			return nil, fmt.Errorf("%w: parent chain deeper than %d", ErrNoParent, MaxParentDepth)
		}
		cur = cur.parent
	}
}

// SetPage overwrites the dumped contents of page pn, or appends the
// page if this image does not hold it itself — which is also how a
// parented page is materialized before mutation: the full new
// contents land in this image, and the parent copy is shadowed.
func (pi *ProcImage) SetPage(pn uint64, data []byte) error {
	if len(data) != kernel.PageSize {
		return fmt.Errorf("%w: page data must be %d bytes", ErrBadImage, kernel.PageSize)
	}
	for i, n := range pi.PageMap.PageNumbers {
		if n == pn {
			copy(pi.Pages[i*kernel.PageSize:], data)
			return nil
		}
	}
	pi.PageMap.PageNumbers = append(pi.PageMap.PageNumbers, pn)
	pi.Pages = append(pi.Pages, data...)
	// The page exists again: un-punch any hole shadowing it.
	if pi.hasHole(pn) {
		keep := pi.Holes[:0]
		for _, h := range pi.Holes {
			if h != pn {
				keep = append(keep, h)
			}
		}
		pi.Holes = keep
	}
	return nil
}

// DropPages removes the dumped pages in [startPN, endPN). On a delta
// image the range is also punched as holes, so ancestor copies of
// those pages cannot resurface through the chain.
func (pi *ProcImage) DropPages(startPN, endPN uint64) {
	var keepNums []uint64
	var keepData []byte
	for i, n := range pi.PageMap.PageNumbers {
		if n >= startPN && n < endPN {
			continue
		}
		keepNums = append(keepNums, n)
		keepData = append(keepData, pi.Pages[i*kernel.PageSize:(i+1)*kernel.PageSize]...)
	}
	pi.PageMap.PageNumbers = keepNums
	pi.Pages = keepData
	if pi.Delta {
		for pn := startPN; pn < endPN; pn++ {
			if !pi.hasHole(pn) {
				pi.Holes = append(pi.Holes, pn)
			}
		}
		sort.Slice(pi.Holes, func(i, j int) bool { return pi.Holes[i] < pi.Holes[j] })
	}
}

// EffectivePages resolves the complete page view of this image
// through its parent chain: page number → contents, with descendant
// images shadowing ancestors and holes masking inherited pages. The
// slices may alias the images; callers must not mutate them.
func (pi *ProcImage) EffectivePages() (map[uint64][]byte, error) {
	var chain []*ProcImage
	for cur := pi; ; {
		chain = append(chain, cur)
		if !cur.Delta {
			break
		}
		if cur.parent == nil {
			return nil, fmt.Errorf("%w: delta image has no bound parent", ErrNoParent)
		}
		if len(chain) > MaxParentDepth+1 {
			return nil, fmt.Errorf("%w: parent chain deeper than %d", ErrNoParent, MaxParentDepth)
		}
		cur = cur.parent
	}
	out := map[uint64][]byte{}
	for i := len(chain) - 1; i >= 0; i-- {
		lvl := chain[i]
		for _, h := range lvl.Holes {
			delete(out, h)
		}
		for j, pn := range lvl.PageMap.PageNumbers {
			off := j * kernel.PageSize
			if off+kernel.PageSize > len(lvl.Pages) {
				return nil, fmt.Errorf("%w: pages image truncated", ErrBadImage)
			}
			out[pn] = lvl.Pages[off : off+kernel.PageSize]
		}
	}
	return out, nil
}

// Depth returns the length of the parent chain below this image (0
// for a full image).
func (pi *ProcImage) Depth() int {
	d := 0
	for cur := pi; cur.Delta && cur.parent != nil; cur = cur.parent {
		d++
		if d > MaxParentDepth+1 {
			break // corrupt/cyclic chain; Validate reports it
		}
	}
	return d
}

// ImageSet is a dumped process tree: one ProcImage per PID, plus the
// inventory order (parents before children). An incremental set
// additionally points at the checkpoint it was dumped against.
type ImageSet struct {
	PIDs  []int
	Procs map[int]*ProcImage

	// Parent is the image set this one is a delta against (nil for a
	// full dump). Serialization records Parent.Ident(); Unmarshal
	// leaves the link detached until BindParent re-attaches it.
	Parent *ImageSet

	// PagesDumped/PagesSkipped report the incremental win of the Dump
	// that produced this set (transient; not serialized).
	PagesDumped  int
	PagesSkipped int

	ident     uint32    // cached Ident(); computed under identOnce
	identOnce sync.Once // concurrent depositors may all ask for Ident
	parentID  uint32    // parent identity recorded in the blob
	hasPByRef bool      // blob carried a parent reference
}

// Delta reports whether any proc image in the set is incremental.
func (s *ImageSet) Delta() bool {
	for _, pi := range s.Procs {
		if pi.Delta {
			return true
		}
	}
	return false
}

// Depth returns the ancestry depth of the set (0 for a full dump).
func (s *ImageSet) Depth() int {
	d := 0
	for cur := s.Parent; cur != nil; cur = cur.Parent {
		d++
		if d > MaxParentDepth+1 {
			break
		}
	}
	return d
}

// Ident returns the set's identity: the CRC-32C of its serialized
// form. Children record it so BindParent can refuse to graft a delta
// onto the wrong (or corrupted) ancestor. Computed once and cached
// (safe for concurrent callers — fleet workers deposit the shared
// pristine set from many goroutines) — do not mutate a set after
// using it as a dump parent.
func (s *ImageSet) Ident() uint32 {
	s.identOnce.Do(func() {
		s.ident = crc32.Checksum(s.Marshal(), crcTable)
	})
	return s.ident
}

// ParentRef returns the parent identity recorded in the blob this set
// was decoded from, if any.
func (s *ImageSet) ParentRef() (uint32, bool) { return s.parentID, s.hasPByRef }

// BindParent re-attaches a deserialized delta set to its parent: the
// parent's identity must match the reference recorded in the blob,
// and every delta proc must exist in the parent. Binding a
// self-contained set is a no-op.
func (s *ImageSet) BindParent(parent *ImageSet) error {
	if !s.hasPByRef && !s.Delta() {
		return nil
	}
	if parent == nil {
		return fmt.Errorf("%w: delta set offered no parent", ErrNoParent)
	}
	if s.hasPByRef && parent.Ident() != s.parentID {
		return fmt.Errorf("%w: parent identity %#x, delta expects %#x",
			ErrCorruptImage, parent.Ident(), s.parentID)
	}
	for pid, pi := range s.Procs {
		if !pi.Delta {
			continue
		}
		pp, ok := parent.Procs[pid]
		if !ok {
			return fmt.Errorf("%w: delta pid %d missing from parent", ErrInconsistentImage, pid)
		}
		pi.parent = pp
	}
	s.Parent = parent
	return nil
}

// Flatten materializes a self-contained copy of the set: every proc's
// pages are resolved through the parent chain into a full image. The
// originals are not modified.
func (s *ImageSet) Flatten() (*ImageSet, error) {
	out := &ImageSet{
		PIDs:  append([]int(nil), s.PIDs...),
		Procs: make(map[int]*ProcImage, len(s.Procs)),
	}
	for pid, pi := range s.Procs {
		eff, err := pi.EffectivePages()
		if err != nil {
			return nil, fmt.Errorf("flatten pid %d: %w", pid, err)
		}
		pns := make([]uint64, 0, len(eff))
		for pn := range eff {
			pns = append(pns, pn)
		}
		sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
		flat := &ProcImage{
			Core:  pi.Core,
			Files: pi.Files,
		}
		flat.MM.VMAs = append([]VMAEntry(nil), pi.MM.VMAs...)
		flat.MM.Modules = append([]ModuleEntry(nil), pi.MM.Modules...)
		flat.Core.Sigs = append([]SigEntry(nil), pi.Core.Sigs...)
		flat.Core.SysFilter = append([]uint64(nil), pi.Core.SysFilter...)
		flat.PageMap.PageNumbers = pns
		flat.Pages = make([]byte, 0, len(pns)*kernel.PageSize)
		for _, pn := range pns {
			flat.Pages = append(flat.Pages, eff[pn]...)
		}
		out.Procs[pid] = flat
	}
	return out, nil
}

// RemapPIDs re-keys the set onto new process IDs (oldPID → newPID, as
// returned by Restore): the restored tree has fresh PIDs, and the set
// must be addressed by them to serve as the parent of the next
// incremental dump. Page data and parent links are shared with the
// original; only identity and ancestry bookkeeping are rewritten.
func (s *ImageSet) RemapPIDs(pidMap map[int]int) *ImageSet {
	mapped := func(pid int) int {
		if np, ok := pidMap[pid]; ok {
			return np
		}
		return pid
	}
	out := &ImageSet{
		PIDs:   make([]int, len(s.PIDs)),
		Procs:  make(map[int]*ProcImage, len(s.Procs)),
		Parent: s.Parent,
	}
	for i, pid := range s.PIDs {
		np := mapped(pid)
		out.PIDs[i] = np
		pi := s.Procs[pid]
		clone := *pi
		clone.Core.PID = np
		if pi.Core.Parent != 0 {
			clone.Core.Parent = mapped(pi.Core.Parent)
		}
		out.Procs[np] = &clone
	}
	return out
}

// Proc returns the image of one PID.
func (s *ImageSet) Proc(pid int) (*ProcImage, error) {
	pi, ok := s.Procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: pid %d", ErrNoImage, pid)
	}
	return pi, nil
}

// TotalBytes reports the aggregate image size — the "image size" rows
// of Figure 7.
func (s *ImageSet) TotalBytes() int {
	n := 0
	for _, pi := range s.Procs {
		n += len(pi.Pages)
		n += 64 * len(pi.MM.VMAs)
		n += 8 * len(pi.PageMap.PageNumbers)
	}
	return n
}

// Serialization -----------------------------------------------------

// crcTable is the Castagnoli polynomial table used for per-image
// checksums (same polynomial SSE4.2 crc32c uses).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksumField is the proc-entry field carrying the CRC of the
// entry's own body (every other field); it is always written last.
const checksumField = 7

// parentRefField is the top-level field carrying the parent set's
// identity for incremental blobs.
const parentRefField = 2

// marshalProcBody encodes the checksummed portion of one proc entry.
// It must stay deterministic: the parallel pipeline relies on
// per-proc bodies being byte-identical run to run so the assembled
// blob (and its CRCs) never wobbles.
func marshalProcBody(pid int, pi *ProcImage) []byte {
	var e pbuf.Encoder
	e.Uint(1, uint64(pid))
	e.Bytes(2, marshalCore(&pi.Core))
	e.Bytes(3, marshalMM(&pi.MM))
	e.Bytes(4, marshalPageMap(&pi.PageMap))
	e.Bytes(5, pi.Pages)
	e.Bytes(6, marshalFiles(&pi.Files))
	if pi.Delta {
		e.Bool(8, true)
	}
	for _, h := range pi.Holes {
		e.Uint(9, h)
	}
	return e.Finish()
}

// Checksum returns the integrity checksum of one proc image as it
// would be written by Marshal.
func (s *ImageSet) Checksum(pid int) (uint32, error) {
	pi, err := s.Proc(pid)
	if err != nil {
		return 0, err
	}
	return crc32.Checksum(marshalProcBody(pid, pi), crcTable), nil
}

// Marshal encodes the image set into a single blob (the "tmpfs
// directory" of the paper's setup). Every proc entry carries a CRC32C
// checksum of its content; Unmarshal refuses blobs that fail it.
// Incremental sets additionally record the parent set's identity so
// BindParent can refuse the wrong ancestor.
//
// Per-proc bodies are marshaled in parallel and assembled in PID
// order, so the output is byte-identical run to run regardless of
// goroutine scheduling.
func (s *ImageSet) Marshal() []byte {
	bodies := make([][]byte, len(s.PIDs))
	var wg sync.WaitGroup
	for i, pid := range s.PIDs {
		wg.Add(1)
		go func(i, pid int) {
			defer wg.Done()
			bodies[i] = marshalProcBody(pid, s.Procs[pid])
		}(i, pid)
	}
	wg.Wait()

	var e pbuf.Encoder
	if s.Delta() {
		// The ref must precede the proc entries so a streaming decoder
		// knows the set is incremental before it sees delta procs.
		ref := s.parentID
		if s.Parent != nil {
			ref = s.Parent.Ident()
		}
		e.Msg(parentRefField, func(pe *pbuf.Encoder) {
			pe.Uint(1, uint64(ref))
		})
	}
	for _, body := range bodies {
		body := body
		e.Msg(1, func(pe *pbuf.Encoder) {
			pe.Raw(body)
			pe.Uint(checksumField, uint64(crc32.Checksum(body, crcTable)))
		})
	}
	return e.Finish()
}

// unmarshalProcEntry decodes and checksum-verifies one raw proc
// entry. It is pure (no shared state), so the pipeline can fan
// entries out across goroutines.
func unmarshalProcEntry(raw []byte) (int, *ProcImage, error) {
	pi := &ProcImage{}
	pid := -1
	wantCRC := uint64(0)
	hasCRC := false
	pd := pbuf.NewDecoder(raw)
	var decodeErr error
	for decodeErr == nil && pd.Next() {
		switch pd.Field() {
		case 1:
			pid = int(pd.Uint())
		case 2:
			c, err := unmarshalCore(pd.Bytes())
			if err != nil {
				decodeErr = err
				break
			}
			pi.Core = *c
		case 3:
			mm, err := unmarshalMM(pd.Bytes())
			if err != nil {
				decodeErr = err
				break
			}
			pi.MM = *mm
		case 4:
			pm, err := unmarshalPageMap(pd.Bytes())
			if err != nil {
				decodeErr = err
				break
			}
			pi.PageMap = *pm
		case 5:
			pi.Pages = append([]byte(nil), pd.Bytes()...)
		case 6:
			f, err := unmarshalFiles(pd.Bytes())
			if err != nil {
				decodeErr = err
				break
			}
			pi.Files = *f
		case checksumField:
			wantCRC = pd.Uint()
			hasCRC = true
		case 8:
			pi.Delta = pd.Bool()
		case 9:
			pi.Holes = append(pi.Holes, pd.Uint())
		default:
			pd.Skip()
		}
	}
	if decodeErr == nil {
		decodeErr = pd.Err()
	}
	if decodeErr != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadImage, decodeErr)
	}
	if pid < 0 {
		return 0, nil, fmt.Errorf("%w: proc entry without pid", ErrBadImage)
	}
	if !hasCRC {
		return 0, nil, fmt.Errorf("%w: proc entry for pid %d lacks a checksum", ErrCorruptImage, pid)
	}
	// The checksum field is always written last, so the checksummed
	// body is everything before its encoding. Verifying over the raw
	// received bytes — not re-encoded content — rejects even
	// semantically neutral bit flips.
	var se pbuf.Encoder
	se.Uint(checksumField, wantCRC)
	suffix := se.Finish()
	if !bytes.HasSuffix(raw, suffix) {
		return 0, nil, fmt.Errorf("%w: pid %d checksum is not the final field", ErrCorruptImage, pid)
	}
	body := raw[:len(raw)-len(suffix)]
	if got := crc32.Checksum(body, crcTable); uint64(got) != wantCRC {
		return 0, nil, fmt.Errorf("%w: pid %d checksum %#x, image says %#x",
			ErrCorruptImage, pid, got, wantCRC)
	}
	if len(pi.Pages) != kernel.PageSize*len(pi.PageMap.PageNumbers) {
		return 0, nil, fmt.Errorf("%w: pages/pagemap size mismatch for pid %d", ErrBadImage, pid)
	}
	return pid, pi, nil
}

// Unmarshal decodes an image set blob, verifying every proc entry's
// checksum. Corruption — truncation, bit flips, a missing checksum —
// yields an error wrapping ErrCorruptImage or ErrBadImage; no partial
// set is ever returned. Proc entries are decoded in parallel and
// reassembled in blob order. A delta blob comes back detached: call
// BindParent before restoring or editing it.
func Unmarshal(data []byte) (*ImageSet, error) {
	s := &ImageSet{Procs: map[int]*ProcImage{}}

	// Phase 1 (serial): split the blob into raw proc entries and pick
	// up the parent reference.
	var raws [][]byte
	d := pbuf.NewDecoder(data)
	for d.Next() {
		switch d.Field() {
		case 1:
			raw := d.Bytes() // the whole proc entry, for byte-exact CRC
			if d.Err() != nil {
				break
			}
			raws = append(raws, raw)
		case parentRefField:
			d.Msg(func(rd *pbuf.Decoder) error {
				for rd.Next() {
					if rd.Field() == 1 {
						s.parentID = uint32(rd.Uint())
						s.hasPByRef = true
					} else {
						rd.Skip()
					}
				}
				return nil
			})
		default:
			d.Skip()
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}

	// Phase 2 (parallel): decode and verify each entry.
	type result struct {
		pid int
		pi  *ProcImage
		err error
	}
	results := make([]result, len(raws))
	var wg sync.WaitGroup
	for i, raw := range raws {
		wg.Add(1)
		go func(i int, raw []byte) {
			defer wg.Done()
			pid, pi, err := unmarshalProcEntry(raw)
			results[i] = result{pid: pid, pi: pi, err: err}
		}(i, raw)
	}
	wg.Wait()

	// Phase 3 (serial): assemble in blob order, first error wins.
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if _, dup := s.Procs[r.pid]; dup {
			return nil, fmt.Errorf("%w: duplicate proc entry for pid %d", ErrBadImage, r.pid)
		}
		s.PIDs = append(s.PIDs, r.pid)
		s.Procs[r.pid] = r.pi
	}
	if len(s.PIDs) == 0 {
		return nil, fmt.Errorf("%w: empty image set", ErrBadImage)
	}
	if s.Delta() && !s.hasPByRef {
		return nil, fmt.Errorf("%w: delta proc entries without a parent reference", ErrBadImage)
	}
	return s, nil
}

func marshalCore(c *CoreImage) []byte {
	var e pbuf.Encoder
	e.String(1, c.Name)
	e.Uint(2, uint64(c.PID))
	e.Uint(3, uint64(c.Parent))
	e.Fixed64(4, c.RIP)
	e.Uint(5, c.Flags)
	for _, r := range c.Regs {
		e.Fixed64(6, r)
	}
	for _, sg := range c.Sigs {
		e.Msg(7, func(se *pbuf.Encoder) {
			se.Uint(1, uint64(sg.Signo))
			se.Fixed64(2, sg.Handler)
			se.Fixed64(3, sg.Restorer)
		})
	}
	e.Bool(8, c.ExitedOK)
	e.Bool(9, c.HasFilter)
	for _, nr := range c.SysFilter {
		e.Uint(10, nr)
	}
	return e.Finish()
}

func unmarshalCore(data []byte) (*CoreImage, error) {
	c := &CoreImage{}
	d := pbuf.NewDecoder(data)
	regIdx := 0
	for d.Next() {
		switch d.Field() {
		case 1:
			c.Name = d.String()
		case 2:
			c.PID = int(d.Uint())
		case 3:
			c.Parent = int(d.Uint())
		case 4:
			c.RIP = d.Fixed64()
		case 5:
			c.Flags = d.Uint()
		case 6:
			if regIdx >= len(c.Regs) {
				return nil, fmt.Errorf("%w: too many registers", ErrBadImage)
			}
			c.Regs[regIdx] = d.Fixed64()
			regIdx++
		case 7:
			var sg SigEntry
			d.Msg(func(sd *pbuf.Decoder) error {
				for sd.Next() {
					switch sd.Field() {
					case 1:
						sg.Signo = int(sd.Uint())
					case 2:
						sg.Handler = sd.Fixed64()
					case 3:
						sg.Restorer = sd.Fixed64()
					default:
						sd.Skip()
					}
				}
				return nil
			})
			c.Sigs = append(c.Sigs, sg)
		case 8:
			c.ExitedOK = d.Bool()
		case 9:
			c.HasFilter = d.Bool()
		case 10:
			c.SysFilter = append(c.SysFilter, d.Uint())
		default:
			d.Skip()
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: core: %v", ErrBadImage, err)
	}
	return c, nil
}

func marshalMM(mm *MMImage) []byte {
	var e pbuf.Encoder
	for _, v := range mm.VMAs {
		e.Msg(1, func(ve *pbuf.Encoder) {
			ve.Fixed64(1, v.Start)
			ve.Fixed64(2, v.End)
			ve.Uint(3, uint64(v.Perm))
			ve.String(4, v.Name)
			ve.String(5, v.Backing)
			ve.String(6, v.BackSection)
			ve.Bool(7, v.Anon)
		})
	}
	for _, mod := range mm.Modules {
		e.Msg(2, func(me *pbuf.Encoder) {
			me.String(1, mod.Name)
			me.Fixed64(2, mod.Lo)
			me.Fixed64(3, mod.Hi)
		})
	}
	return e.Finish()
}

func unmarshalMM(data []byte) (*MMImage, error) {
	mm := &MMImage{}
	d := pbuf.NewDecoder(data)
	for d.Next() {
		switch d.Field() {
		case 1:
			var v VMAEntry
			d.Msg(func(vd *pbuf.Decoder) error {
				for vd.Next() {
					switch vd.Field() {
					case 1:
						v.Start = vd.Fixed64()
					case 2:
						v.End = vd.Fixed64()
					case 3:
						v.Perm = uint8(vd.Uint())
					case 4:
						v.Name = vd.String()
					case 5:
						v.Backing = vd.String()
					case 6:
						v.BackSection = vd.String()
					case 7:
						v.Anon = vd.Bool()
					default:
						vd.Skip()
					}
				}
				return nil
			})
			mm.VMAs = append(mm.VMAs, v)
		case 2:
			var mod ModuleEntry
			d.Msg(func(md *pbuf.Decoder) error {
				for md.Next() {
					switch md.Field() {
					case 1:
						mod.Name = md.String()
					case 2:
						mod.Lo = md.Fixed64()
					case 3:
						mod.Hi = md.Fixed64()
					default:
						md.Skip()
					}
				}
				return nil
			})
			mm.Modules = append(mm.Modules, mod)
		default:
			d.Skip()
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: mm: %v", ErrBadImage, err)
	}
	return mm, nil
}

func marshalPageMap(pm *PageMapImage) []byte {
	var e pbuf.Encoder
	for _, pn := range pm.PageNumbers {
		e.Uint(1, pn)
	}
	return e.Finish()
}

func unmarshalPageMap(data []byte) (*PageMapImage, error) {
	pm := &PageMapImage{}
	d := pbuf.NewDecoder(data)
	for d.Next() {
		if d.Field() == 1 {
			pm.PageNumbers = append(pm.PageNumbers, d.Uint())
		} else {
			d.Skip()
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: pagemap: %v", ErrBadImage, err)
	}
	return pm, nil
}

func marshalFiles(f *FilesImage) []byte {
	var e pbuf.Encoder
	for _, fe := range f.Files {
		e.Msg(1, func(fe2 *pbuf.Encoder) {
			fe2.Uint(1, uint64(fe.FD))
			fe2.Uint(2, uint64(fe.Kind))
			fe2.Uint(3, uint64(fe.StdNo))
			fe2.Uint(4, uint64(fe.Port))
			fe2.Uint(5, fe.ConnID)
			fe2.Bool(6, fe.SideA)
		})
	}
	return e.Finish()
}

func unmarshalFiles(data []byte) (*FilesImage, error) {
	f := &FilesImage{}
	d := pbuf.NewDecoder(data)
	for d.Next() {
		if d.Field() != 1 {
			d.Skip()
			continue
		}
		var fe FileEntry
		d.Msg(func(fd *pbuf.Decoder) error {
			for fd.Next() {
				switch fd.Field() {
				case 1:
					fe.FD = int(fd.Uint())
				case 2:
					fe.Kind = uint8(fd.Uint())
				case 3:
					fe.StdNo = int(fd.Uint())
				case 4:
					fe.Port = uint16(fd.Uint())
				case 5:
					fe.ConnID = fd.Uint()
				case 6:
					fe.SideA = fd.Bool()
				default:
					fd.Skip()
				}
			}
			return nil
		})
		f.Files = append(f.Files, fe)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: files: %v", ErrBadImage, err)
	}
	return f, nil
}

// sortPIDsParentFirst orders pids so that parents restore before
// children.
func sortPIDsParentFirst(pids []int, parent map[int]int) {
	sort.Slice(pids, func(i, j int) bool {
		// Walk ancestry depth.
		depth := func(pid int) int {
			d := 0
			for p := parent[pid]; p != 0; p = parent[p] {
				d++
				if d > len(pids) {
					break
				}
			}
			return d
		}
		di, dj := depth(pids[i]), depth(pids[j])
		if di != dj {
			return di < dj
		}
		return pids[i] < pids[j]
	})
}
