// Package criu implements checkpoint/restore in userspace for the
// simulated kernel, mirroring the CRIU workflow DynaCut builds on:
// a running process (tree) is frozen into a set of protobuf-encoded
// images (core, mm, pagemap, pages, files), the images can be
// rewritten offline (internal/crit), and a process can be restored
// from them with its TCP connections re-attached (TCP repair).
//
// Vanilla CRIU dumps only anonymous memory: file-backed pages are
// re-materialized from the binaries on disk at restore time. That is
// fatal for a process rewriter — byte patches to code pages would be
// silently undone — so, like the paper's modified CRIU, Dump accepts
// an option to also dump private executable file-backed pages.
package criu

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/dynacut/dynacut/internal/criu/pbuf"
	"github.com/dynacut/dynacut/internal/kernel"
)

// Image file names within an ImageSet, per PID (mirroring CRIU's
// core-<pid>.img etc.).
const (
	CoreImg    = "core"
	MMImg      = "mm"
	PageMapImg = "pagemap"
	PagesImg   = "pages"
	FilesImg   = "files"
)

// Package errors.
var (
	ErrBadImage   = errors.New("criu: malformed image")
	ErrNoImage    = errors.New("criu: missing image")
	ErrPageAbsent = errors.New("criu: page not present in image")
	// ErrCorruptImage flags a serialized image whose checksum does not
	// match its content (bit flips, truncation inside an entry).
	ErrCorruptImage = errors.New("criu: corrupt image")
	// ErrInconsistentImage flags an image set whose parts contradict
	// each other (pagemap not covered by pages, RIP unmapped, ...).
	ErrInconsistentImage = errors.New("criu: inconsistent image set")
)

// SigEntry is one registered signal handler in a core image.
type SigEntry struct {
	Signo    int    `json:"signo"`
	Handler  uint64 `json:"handler"`
	Restorer uint64 `json:"restorer"`
}

// CoreImage mirrors CRIU's core.img: identity, registers, and signal
// dispositions.
type CoreImage struct {
	Name     string     `json:"name"`
	PID      int        `json:"pid"`
	Parent   int        `json:"parent"`
	RIP      uint64     `json:"rip"`
	Flags    uint64     `json:"flags"`
	Regs     [16]uint64 `json:"regs"`
	Sigs     []SigEntry `json:"sigactions,omitempty"`
	ExitedOK bool       `json:"exitedOk,omitempty"` // dumped after clean exit (diagnostics only)
	// SysFilter is the seccomp-style syscall allow list; HasFilter
	// distinguishes "no filter" from an empty (deny-all) filter.
	HasFilter bool     `json:"hasFilter,omitempty"`
	SysFilter []uint64 `json:"sysFilter,omitempty"`
}

// VMAEntry is one VMA in an mm image.
type VMAEntry struct {
	Start       uint64 `json:"start"`
	End         uint64 `json:"end"`
	Perm        uint8  `json:"perm"`
	Name        string `json:"name"`
	Backing     string `json:"backing,omitempty"`
	BackSection string `json:"backSection,omitempty"`
	Anon        bool   `json:"anon"`
}

// ModuleEntry records a mapped binary (for tracing and rewriting).
type ModuleEntry struct {
	Name string `json:"name"`
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
}

// MMImage mirrors CRIU's mm.img: the full VMA table plus the module
// list.
type MMImage struct {
	VMAs    []VMAEntry    `json:"vmas"`
	Modules []ModuleEntry `json:"modules"`
}

// PageMapImage lists which pages are present in the pages image, in
// order.
type PageMapImage struct {
	PageNumbers []uint64
}

// FileEntry describes one open descriptor.
type FileEntry struct {
	FD     int    `json:"fd"`
	Kind   uint8  `json:"kind"`
	StdNo  int    `json:"stdNo,omitempty"`
	Port   uint16 `json:"port,omitempty"`
	ConnID uint64 `json:"connId,omitempty"`
	SideA  bool   `json:"sideA,omitempty"`
}

// FilesImage mirrors CRIU's files.img/tcp images.
type FilesImage struct {
	Files []FileEntry
}

// ProcImage aggregates the images of one process.
type ProcImage struct {
	Core    CoreImage
	MM      MMImage
	PageMap PageMapImage
	Pages   []byte // concatenated page data, PageMap order
	Files   FilesImage
}

// Page returns the dumped contents of page pn.
func (pi *ProcImage) Page(pn uint64) ([]byte, error) {
	for i, n := range pi.PageMap.PageNumbers {
		if n == pn {
			off := i * kernel.PageSize
			if off+kernel.PageSize > len(pi.Pages) {
				return nil, fmt.Errorf("%w: pages image truncated", ErrBadImage)
			}
			return pi.Pages[off : off+kernel.PageSize], nil
		}
	}
	return nil, fmt.Errorf("%w: page %d", ErrPageAbsent, pn)
}

// SetPage overwrites the dumped contents of page pn, or appends the
// page if absent.
func (pi *ProcImage) SetPage(pn uint64, data []byte) error {
	if len(data) != kernel.PageSize {
		return fmt.Errorf("%w: page data must be %d bytes", ErrBadImage, kernel.PageSize)
	}
	for i, n := range pi.PageMap.PageNumbers {
		if n == pn {
			copy(pi.Pages[i*kernel.PageSize:], data)
			return nil
		}
	}
	pi.PageMap.PageNumbers = append(pi.PageMap.PageNumbers, pn)
	pi.Pages = append(pi.Pages, data...)
	return nil
}

// DropPages removes the dumped pages in [startPN, endPN).
func (pi *ProcImage) DropPages(startPN, endPN uint64) {
	var keepNums []uint64
	var keepData []byte
	for i, n := range pi.PageMap.PageNumbers {
		if n >= startPN && n < endPN {
			continue
		}
		keepNums = append(keepNums, n)
		keepData = append(keepData, pi.Pages[i*kernel.PageSize:(i+1)*kernel.PageSize]...)
	}
	pi.PageMap.PageNumbers = keepNums
	pi.Pages = keepData
}

// ImageSet is a dumped process tree: one ProcImage per PID, plus the
// inventory order (parents before children).
type ImageSet struct {
	PIDs  []int
	Procs map[int]*ProcImage
}

// Proc returns the image of one PID.
func (s *ImageSet) Proc(pid int) (*ProcImage, error) {
	pi, ok := s.Procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: pid %d", ErrNoImage, pid)
	}
	return pi, nil
}

// TotalBytes reports the aggregate image size — the "image size" rows
// of Figure 7.
func (s *ImageSet) TotalBytes() int {
	n := 0
	for _, pi := range s.Procs {
		n += len(pi.Pages)
		n += 64 * len(pi.MM.VMAs)
		n += 8 * len(pi.PageMap.PageNumbers)
	}
	return n
}

// Serialization -----------------------------------------------------

// crcTable is the Castagnoli polynomial table used for per-image
// checksums (same polynomial SSE4.2 crc32c uses).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksumField is the proc-entry field carrying the CRC of the
// entry's own body (fields 1-6); it is always written last.
const checksumField = 7

// marshalProcBody encodes the checksummed portion of one proc entry.
// It must stay deterministic and decode/re-encode idempotent: the
// checksum is verified by re-encoding the decoded entry.
func marshalProcBody(pid int, pi *ProcImage) []byte {
	var e pbuf.Encoder
	e.Uint(1, uint64(pid))
	e.Bytes(2, marshalCore(&pi.Core))
	e.Bytes(3, marshalMM(&pi.MM))
	e.Bytes(4, marshalPageMap(&pi.PageMap))
	e.Bytes(5, pi.Pages)
	e.Bytes(6, marshalFiles(&pi.Files))
	return e.Finish()
}

// Checksum returns the integrity checksum of one proc image as it
// would be written by Marshal.
func (s *ImageSet) Checksum(pid int) (uint32, error) {
	pi, err := s.Proc(pid)
	if err != nil {
		return 0, err
	}
	return crc32.Checksum(marshalProcBody(pid, pi), crcTable), nil
}

// Marshal encodes the image set into a single blob (the "tmpfs
// directory" of the paper's setup). Every proc entry carries a CRC32C
// checksum of its content; Unmarshal refuses blobs that fail it.
func (s *ImageSet) Marshal() []byte {
	var e pbuf.Encoder
	for _, pid := range s.PIDs {
		pi := s.Procs[pid]
		body := marshalProcBody(pid, pi)
		e.Msg(1, func(pe *pbuf.Encoder) {
			pe.Raw(body)
			pe.Uint(checksumField, uint64(crc32.Checksum(body, crcTable)))
		})
	}
	return e.Finish()
}

// Unmarshal decodes an image set blob, verifying every proc entry's
// checksum. Corruption — truncation, bit flips, a missing checksum —
// yields an error wrapping ErrCorruptImage or ErrBadImage; no partial
// set is ever returned.
func Unmarshal(data []byte) (*ImageSet, error) {
	s := &ImageSet{Procs: map[int]*ProcImage{}}
	d := pbuf.NewDecoder(data)
	for d.Next() {
		if d.Field() != 1 {
			d.Skip()
			continue
		}
		raw := d.Bytes() // the whole proc entry, for byte-exact CRC
		if d.Err() != nil {
			break
		}
		pi := &ProcImage{}
		pid := -1
		wantCRC := uint64(0)
		hasCRC := false
		pd := pbuf.NewDecoder(raw)
		var decodeErr error
		for decodeErr == nil && pd.Next() {
			switch pd.Field() {
			case 1:
				pid = int(pd.Uint())
			case 2:
				c, err := unmarshalCore(pd.Bytes())
				if err != nil {
					decodeErr = err
					break
				}
				pi.Core = *c
			case 3:
				mm, err := unmarshalMM(pd.Bytes())
				if err != nil {
					decodeErr = err
					break
				}
				pi.MM = *mm
			case 4:
				pm, err := unmarshalPageMap(pd.Bytes())
				if err != nil {
					decodeErr = err
					break
				}
				pi.PageMap = *pm
			case 5:
				pi.Pages = append([]byte(nil), pd.Bytes()...)
			case 6:
				f, err := unmarshalFiles(pd.Bytes())
				if err != nil {
					decodeErr = err
					break
				}
				pi.Files = *f
			case checksumField:
				wantCRC = pd.Uint()
				hasCRC = true
			default:
				pd.Skip()
			}
		}
		if decodeErr == nil {
			decodeErr = pd.Err()
		}
		if decodeErr != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadImage, decodeErr)
		}
		if pid < 0 {
			return nil, fmt.Errorf("%w: proc entry without pid", ErrBadImage)
		}
		if !hasCRC {
			return nil, fmt.Errorf("%w: proc entry for pid %d lacks a checksum", ErrCorruptImage, pid)
		}
		// The checksum field is always written last, so the checksummed
		// body is everything before its encoding. Verifying over the raw
		// received bytes — not re-encoded content — rejects even
		// semantically neutral bit flips.
		var se pbuf.Encoder
		se.Uint(checksumField, wantCRC)
		suffix := se.Finish()
		if !bytes.HasSuffix(raw, suffix) {
			return nil, fmt.Errorf("%w: pid %d checksum is not the final field", ErrCorruptImage, pid)
		}
		body := raw[:len(raw)-len(suffix)]
		if got := crc32.Checksum(body, crcTable); uint64(got) != wantCRC {
			return nil, fmt.Errorf("%w: pid %d checksum %#x, image says %#x",
				ErrCorruptImage, pid, got, wantCRC)
		}
		if len(pi.Pages) != kernel.PageSize*len(pi.PageMap.PageNumbers) {
			return nil, fmt.Errorf("%w: pages/pagemap size mismatch for pid %d", ErrBadImage, pid)
		}
		if _, dup := s.Procs[pid]; dup {
			return nil, fmt.Errorf("%w: duplicate proc entry for pid %d", ErrBadImage, pid)
		}
		s.PIDs = append(s.PIDs, pid)
		s.Procs[pid] = pi
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if len(s.PIDs) == 0 {
		return nil, fmt.Errorf("%w: empty image set", ErrBadImage)
	}
	return s, nil
}

func marshalCore(c *CoreImage) []byte {
	var e pbuf.Encoder
	e.String(1, c.Name)
	e.Uint(2, uint64(c.PID))
	e.Uint(3, uint64(c.Parent))
	e.Fixed64(4, c.RIP)
	e.Uint(5, c.Flags)
	for _, r := range c.Regs {
		e.Fixed64(6, r)
	}
	for _, sg := range c.Sigs {
		e.Msg(7, func(se *pbuf.Encoder) {
			se.Uint(1, uint64(sg.Signo))
			se.Fixed64(2, sg.Handler)
			se.Fixed64(3, sg.Restorer)
		})
	}
	e.Bool(8, c.ExitedOK)
	e.Bool(9, c.HasFilter)
	for _, nr := range c.SysFilter {
		e.Uint(10, nr)
	}
	return e.Finish()
}

func unmarshalCore(data []byte) (*CoreImage, error) {
	c := &CoreImage{}
	d := pbuf.NewDecoder(data)
	regIdx := 0
	for d.Next() {
		switch d.Field() {
		case 1:
			c.Name = d.String()
		case 2:
			c.PID = int(d.Uint())
		case 3:
			c.Parent = int(d.Uint())
		case 4:
			c.RIP = d.Fixed64()
		case 5:
			c.Flags = d.Uint()
		case 6:
			if regIdx >= len(c.Regs) {
				return nil, fmt.Errorf("%w: too many registers", ErrBadImage)
			}
			c.Regs[regIdx] = d.Fixed64()
			regIdx++
		case 7:
			var sg SigEntry
			d.Msg(func(sd *pbuf.Decoder) error {
				for sd.Next() {
					switch sd.Field() {
					case 1:
						sg.Signo = int(sd.Uint())
					case 2:
						sg.Handler = sd.Fixed64()
					case 3:
						sg.Restorer = sd.Fixed64()
					default:
						sd.Skip()
					}
				}
				return nil
			})
			c.Sigs = append(c.Sigs, sg)
		case 8:
			c.ExitedOK = d.Bool()
		case 9:
			c.HasFilter = d.Bool()
		case 10:
			c.SysFilter = append(c.SysFilter, d.Uint())
		default:
			d.Skip()
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: core: %v", ErrBadImage, err)
	}
	return c, nil
}

func marshalMM(mm *MMImage) []byte {
	var e pbuf.Encoder
	for _, v := range mm.VMAs {
		e.Msg(1, func(ve *pbuf.Encoder) {
			ve.Fixed64(1, v.Start)
			ve.Fixed64(2, v.End)
			ve.Uint(3, uint64(v.Perm))
			ve.String(4, v.Name)
			ve.String(5, v.Backing)
			ve.String(6, v.BackSection)
			ve.Bool(7, v.Anon)
		})
	}
	for _, mod := range mm.Modules {
		e.Msg(2, func(me *pbuf.Encoder) {
			me.String(1, mod.Name)
			me.Fixed64(2, mod.Lo)
			me.Fixed64(3, mod.Hi)
		})
	}
	return e.Finish()
}

func unmarshalMM(data []byte) (*MMImage, error) {
	mm := &MMImage{}
	d := pbuf.NewDecoder(data)
	for d.Next() {
		switch d.Field() {
		case 1:
			var v VMAEntry
			d.Msg(func(vd *pbuf.Decoder) error {
				for vd.Next() {
					switch vd.Field() {
					case 1:
						v.Start = vd.Fixed64()
					case 2:
						v.End = vd.Fixed64()
					case 3:
						v.Perm = uint8(vd.Uint())
					case 4:
						v.Name = vd.String()
					case 5:
						v.Backing = vd.String()
					case 6:
						v.BackSection = vd.String()
					case 7:
						v.Anon = vd.Bool()
					default:
						vd.Skip()
					}
				}
				return nil
			})
			mm.VMAs = append(mm.VMAs, v)
		case 2:
			var mod ModuleEntry
			d.Msg(func(md *pbuf.Decoder) error {
				for md.Next() {
					switch md.Field() {
					case 1:
						mod.Name = md.String()
					case 2:
						mod.Lo = md.Fixed64()
					case 3:
						mod.Hi = md.Fixed64()
					default:
						md.Skip()
					}
				}
				return nil
			})
			mm.Modules = append(mm.Modules, mod)
		default:
			d.Skip()
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: mm: %v", ErrBadImage, err)
	}
	return mm, nil
}

func marshalPageMap(pm *PageMapImage) []byte {
	var e pbuf.Encoder
	for _, pn := range pm.PageNumbers {
		e.Uint(1, pn)
	}
	return e.Finish()
}

func unmarshalPageMap(data []byte) (*PageMapImage, error) {
	pm := &PageMapImage{}
	d := pbuf.NewDecoder(data)
	for d.Next() {
		if d.Field() == 1 {
			pm.PageNumbers = append(pm.PageNumbers, d.Uint())
		} else {
			d.Skip()
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: pagemap: %v", ErrBadImage, err)
	}
	return pm, nil
}

func marshalFiles(f *FilesImage) []byte {
	var e pbuf.Encoder
	for _, fe := range f.Files {
		e.Msg(1, func(fe2 *pbuf.Encoder) {
			fe2.Uint(1, uint64(fe.FD))
			fe2.Uint(2, uint64(fe.Kind))
			fe2.Uint(3, uint64(fe.StdNo))
			fe2.Uint(4, uint64(fe.Port))
			fe2.Uint(5, fe.ConnID)
			fe2.Bool(6, fe.SideA)
		})
	}
	return e.Finish()
}

func unmarshalFiles(data []byte) (*FilesImage, error) {
	f := &FilesImage{}
	d := pbuf.NewDecoder(data)
	for d.Next() {
		if d.Field() != 1 {
			d.Skip()
			continue
		}
		var fe FileEntry
		d.Msg(func(fd *pbuf.Decoder) error {
			for fd.Next() {
				switch fd.Field() {
				case 1:
					fe.FD = int(fd.Uint())
				case 2:
					fe.Kind = uint8(fd.Uint())
				case 3:
					fe.StdNo = int(fd.Uint())
				case 4:
					fe.Port = uint16(fd.Uint())
				case 5:
					fe.ConnID = fd.Uint()
				case 6:
					fe.SideA = fd.Bool()
				default:
					fd.Skip()
				}
			}
			return nil
		})
		f.Files = append(f.Files, fe)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: files: %v", ErrBadImage, err)
	}
	return f, nil
}

// sortPIDsParentFirst orders pids so that parents restore before
// children.
func sortPIDsParentFirst(pids []int, parent map[int]int) {
	sort.Slice(pids, func(i, j int) bool {
		// Walk ancestry depth.
		depth := func(pid int) int {
			d := 0
			for p := parent[pid]; p != 0; p = parent[p] {
				d++
				if d > len(pids) {
					break
				}
			}
			return d
		}
		di, dj := depth(pids[i]), depth(pids[j])
		if di != dj {
			return di < dj
		}
		return pids[i] < pids[j]
	})
}
