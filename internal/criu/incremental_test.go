package criu

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/dynacut/dynacut/internal/kernel"
)

// loadCounter boots the counter guest and returns the machine and
// process, with some initial progress so memory is non-trivial.
func loadCounter(t testing.TB) (*kernel.Machine, *kernel.Process) {
	t.Helper()
	m := kernel.NewMachine()
	exe := buildExe(t, "counter", counterSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2000)
	return m, p
}

func pageBytes(s *ImageSet) int {
	n := 0
	for _, pi := range s.Procs {
		n += len(pi.Pages)
	}
	return n
}

func TestIncrementalDumpSkipsCleanPages(t *testing.T) {
	m, p := loadCounter(t)

	full, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Delta() {
		t.Fatal("first dump is a delta")
	}
	if full.PagesDumped == 0 || full.PagesSkipped != 0 {
		t.Fatalf("full dump: dumped=%d skipped=%d", full.PagesDumped, full.PagesSkipped)
	}

	// Run briefly: the guest only touches its counter page.
	m.Run(500)

	delta, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Parent: full})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Delta() {
		t.Fatal("second dump with a parent is not a delta")
	}
	if delta.PagesSkipped == 0 {
		t.Fatal("delta dump skipped no pages")
	}
	if delta.PagesDumped >= full.PagesDumped {
		t.Fatalf("delta dumped %d pages, full dumped %d", delta.PagesDumped, full.PagesDumped)
	}
	if db, fb := pageBytes(delta), pageBytes(full); db*2 > fb {
		t.Fatalf("delta carries %d page bytes of %d — not incremental", db, fb)
	}

	// An immediately repeated delta of the idle guest transfers nothing.
	idle, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Parent: delta})
	if err != nil {
		t.Fatal(err)
	}
	if idle.PagesDumped != 0 {
		t.Fatalf("idle delta dumped %d pages", idle.PagesDumped)
	}
}

// TestFullVsDeltaRestoreEquivalence is the property test: after an
// arbitrary mix of guest execution and direct memory writes, restoring
// parent+delta must equal restoring a full dump — same registers, same
// memory, same descriptors.
func TestFullVsDeltaRestoreEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, p := loadCounter(t)

		parent, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
		if err != nil {
			t.Fatal(err)
		}

		// Randomized write pattern: guest execution plus direct writes
		// scattered across the mapped address space.
		m.Run(uint64(rng.Intn(3000)))
		vmas := p.Mem().VMAs()
		for i := 0; i < 1+rng.Intn(20); i++ {
			v := vmas[rng.Intn(len(vmas))]
			span := v.End - v.Start
			addr := v.Start + uint64(rng.Int63n(int64(span)))
			buf := make([]byte, 1+rng.Intn(32))
			rng.Read(buf)
			if addr+uint64(len(buf)) > v.End {
				buf = buf[:v.End-addr]
			}
			if err := p.Mem().Write(addr, buf); err != nil {
				t.Fatalf("seed %d: write %#x: %v", seed, addr, err)
			}
		}

		delta, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Parent: parent})
		if err != nil {
			t.Fatal(err)
		}
		fullNow, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
		if err != nil {
			t.Fatal(err)
		}

		// The flattened delta must be page-for-page the full dump.
		flat, err := delta.Flatten()
		if err != nil {
			t.Fatalf("seed %d: flatten: %v", seed, err)
		}
		for _, pid := range fullNow.PIDs {
			fp, dp := fullNow.Procs[pid], flat.Procs[pid]
			if dp == nil {
				t.Fatalf("seed %d: pid %d missing from flattened delta", seed, pid)
			}
			if len(fp.PageMap.PageNumbers) != len(dp.PageMap.PageNumbers) {
				t.Fatalf("seed %d: pid %d pagemap %d vs %d pages", seed, pid,
					len(dp.PageMap.PageNumbers), len(fp.PageMap.PageNumbers))
			}
			for i, pn := range fp.PageMap.PageNumbers {
				if dp.PageMap.PageNumbers[i] != pn {
					t.Fatalf("seed %d: pid %d pagemap[%d] = %d, want %d", seed, pid,
						i, dp.PageMap.PageNumbers[i], pn)
				}
			}
			if !bytes.Equal(fp.Pages, dp.Pages) {
				t.Fatalf("seed %d: pid %d page contents diverge", seed, pid)
			}
			if fp.Core.Regs != dp.Core.Regs || fp.Core.RIP != dp.Core.RIP {
				t.Fatalf("seed %d: pid %d register state diverges", seed, pid)
			}
			if len(fp.Files.Files) != len(dp.Files.Files) {
				t.Fatalf("seed %d: pid %d descriptors diverge", seed, pid)
			}
		}

		// And the restored machines agree byte for byte.
		if err := m.Kill(p.PID()); err != nil {
			t.Fatal(err)
		}
		fromDelta, _, err := Restore(m, delta)
		if err != nil {
			t.Fatalf("seed %d: restore delta: %v", seed, err)
		}
		fromFull, _, err := Restore(m, fullNow)
		if err != nil {
			t.Fatalf("seed %d: restore full: %v", seed, err)
		}
		dm, fm := fromDelta[0].Mem(), fromFull[0].Mem()
		dPages, fPages := dm.PopulatedPages(), fm.PopulatedPages()
		if len(dPages) != len(fPages) {
			t.Fatalf("seed %d: restored page counts %d vs %d", seed, len(dPages), len(fPages))
		}
		for i, pn := range fPages {
			if dPages[i] != pn {
				t.Fatalf("seed %d: restored page sets diverge at %d", seed, i)
			}
			if !bytes.Equal(dm.PageData(pn), fm.PageData(pn)) {
				t.Fatalf("seed %d: restored page %d contents diverge", seed, pn)
			}
		}
		if fromDelta[0].RIP() != fromFull[0].RIP() {
			t.Fatalf("seed %d: restored RIPs diverge", seed)
		}
	}
}

// TestParallelMarshalDeterministic: the fan-out marshal/unmarshal must
// keep the blob byte-identical — across repeated Marshal calls and
// across independent dumps of the same machine state.
func TestParallelMarshalDeterministic(t *testing.T) {
	m, p := loadCounter(t)

	a, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Marshal(), a.Marshal()) {
		t.Fatal("repeated Marshal of one set differs")
	}
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Fatal("independent dumps of the same machine marshal differently")
	}

	// Delta blobs are deterministic too.
	m.Run(500)
	d1, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Parent: a})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Marshal(), d1.Marshal()) {
		t.Fatal("repeated Marshal of a delta set differs")
	}

	// Round trip: the re-decoded set re-marshals to the same bytes.
	blob := d1.Marshal()
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, back.Marshal()) {
		t.Fatal("unmarshal/marshal round trip not byte-identical")
	}
}

func TestDeltaBlobBindParent(t *testing.T) {
	m, p := loadCounter(t)
	parent, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(500)
	delta, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Parent: parent})
	if err != nil {
		t.Fatal(err)
	}

	back, err := Unmarshal(delta.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if ref, ok := back.ParentRef(); !ok || ref != parent.Ident() {
		t.Fatalf("parent ref = %#x, %v; want %#x", ref, ok, parent.Ident())
	}

	// Unbound: validation refuses, page lookups refuse.
	if err := back.Validate(m); err == nil {
		t.Fatal("unbound delta validated")
	}
	if _, err := back.Procs[p.PID()].Page(0); !errors.Is(err, ErrNoParent) && !errors.Is(err, ErrPageAbsent) {
		if err == nil {
			t.Fatal("unbound delta resolved a page")
		}
	}

	// Binding to the wrong parent is corruption.
	m2, p2 := loadCounter(t)
	wrong, err := Dump(m2, p2.PID(), DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := back.BindParent(wrong); !errors.Is(err, ErrCorruptImage) {
		t.Fatalf("bind to wrong parent: %v", err)
	}
	if err := back.BindParent(nil); !errors.Is(err, ErrNoParent) {
		t.Fatalf("bind to nil parent: %v", err)
	}

	// Bound to the right parent it validates and restores.
	if err := back.BindParent(parent); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(m); err != nil {
		t.Fatal(err)
	}
	counter := counterAddr(t)
	want, err := p.Mem().ReadU64(counter)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kill(p.PID()); err != nil {
		t.Fatal(err)
	}
	restored, _, err := Restore(m, back)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored[0].Mem().ReadU64(counter)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored counter = %d, want %d", got, want)
	}
}

func counterAddr(t *testing.T) uint64 {
	t.Helper()
	exe := buildExe(t, "counter", counterSrc)
	sym, err := exe.Symbol("counter")
	if err != nil {
		t.Fatal(err)
	}
	return sym.Value
}

// TestParentDepthBound: once the chain reaches MaxParentDepth, the next
// dump silently falls back to a full dump instead of growing it.
func TestParentDepthBound(t *testing.T) {
	m, p := loadCounter(t)
	set, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxParentDepth; i++ {
		m.Run(200)
		next, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Parent: set})
		if err != nil {
			t.Fatal(err)
		}
		if !next.Delta() {
			t.Fatalf("dump %d with depth-%d parent is not a delta", i+1, set.Depth())
		}
		set = next
	}
	if set.Depth() != MaxParentDepth {
		t.Fatalf("chain depth = %d, want %d", set.Depth(), MaxParentDepth)
	}
	m.Run(200)
	full, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Parent: set})
	if err != nil {
		t.Fatal(err)
	}
	if full.Delta() {
		t.Fatal("dump beyond MaxParentDepth still chained")
	}
	if full.Depth() != 0 {
		t.Fatalf("fallback full dump has depth %d", full.Depth())
	}
}

// TestDeltaHolesDropUnmappedPages: pages the guest unmaps between
// parent and delta must not resurrect through the chain on restore.
func TestDeltaHolesDropUnmappedPages(t *testing.T) {
	m, p := loadCounter(t)
	parent, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}

	// Unmap the guest's data VMA (it holds the counter).
	counter := counterAddr(t)
	v, ok := p.Mem().VMAAt(counter)
	if !ok {
		t.Fatal("counter not mapped")
	}
	if err := p.Mem().Unmap(v.Start, v.End); err != nil {
		t.Fatal(err)
	}

	delta, err := Dump(m, p.PID(), DumpOpts{ExecPages: true, Parent: parent})
	if err != nil {
		t.Fatal(err)
	}
	pi := delta.Procs[p.PID()]
	if len(pi.Holes) == 0 {
		t.Fatal("unmapped pages punched no holes")
	}
	if _, err := pi.Page(counter / kernel.PageSize); !errors.Is(err, ErrPageAbsent) {
		t.Fatalf("holed page resolves: %v", err)
	}
	eff, err := pi.EffectivePages()
	if err != nil {
		t.Fatal(err)
	}
	if _, present := eff[counter/kernel.PageSize]; present {
		t.Fatal("holed page present in effective view")
	}
}
