package criu

import (
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/isa"
	"github.com/dynacut/dynacut/internal/kernel"
)

// Restore materializes the image set into fresh processes on m and
// returns them in image order (parents first), plus the old→new PID
// mapping. Listener ports must be free (kill the original processes
// before restoring); established connections are re-attached by ID so
// live host clients continue transparently (TCP repair).
//
// File-backed pages absent from the image are re-read from the
// machine's disk, faithfully reproducing vanilla CRIU's page-fault
// reconstruction — and therefore reverting any code patches unless
// the dump used ExecPages.
//
// Restore is atomic with respect to the machine's process table: if
// restoring any process fails, every process this call created is
// torn down (descriptors released, ports unbound) before the error is
// returned. It deliberately does not call (*ImageSet).Validate — that
// is transaction policy, applied by core.Customizer.Rewrite while the
// guest is still alive; Restore is the mechanism and will materialize
// whatever self-consistent-enough set it is given.
func Restore(m *kernel.Machine, set *ImageSet) ([]*kernel.Process, map[int]int, error) {
	pidMap := map[int]int{}
	var out []*kernel.Process
	boundHere := map[uint16]bool{} // listeners (re)bound by this restore
	undo := func(failed *kernel.Process, oldPID int, err error) ([]*kernel.Process, map[int]int, error) {
		if failed != nil {
			out = append(out, failed)
		}
		for i := len(out) - 1; i >= 0; i-- {
			m.Kill(out[i].PID()) // releases descriptors and bound ports
			m.Remove(out[i].PID())
		}
		return nil, nil, fmt.Errorf("restore pid %d: %w", oldPID, err)
	}
	for _, oldPID := range set.PIDs {
		if err := m.Fault(faultinject.SiteRestoreProc, oldPID); err != nil {
			return undo(nil, oldPID, err)
		}
		pi := set.Procs[oldPID]
		parent := pidMap[pi.Core.Parent] // 0 when the parent wasn't dumped
		p := m.NewRawProcess(pi.Core.Name, parent)
		if err := restoreOne(m, p, pi, boundHere); err != nil {
			return undo(p, oldPID, err)
		}
		pidMap[oldPID] = p.PID()
		out = append(out, p)
	}
	if o := m.Observer(); o != nil {
		o.Add("criu.restores", 1)
		o.Add("criu.procs.restored", int64(len(out)))
	}
	return out, pidMap, nil
}

func restoreOne(m *kernel.Machine, p *kernel.Process, pi *ProcImage, boundHere map[uint16]bool) error {
	// VMAs.
	if err := m.Fault(faultinject.SiteRestoreVMA, p.PID()); err != nil {
		return err
	}
	for _, v := range pi.MM.VMAs {
		if err := p.Mem().Map(kernel.VMA{
			Start: v.Start, End: v.End, Perm: delf.Perm(v.Perm),
			Name: v.Name, Backing: v.Backing, BackSection: v.BackSection,
			Anon: v.Anon,
		}); err != nil {
			return err
		}
	}

	// File-backed contents from disk first (vanilla CRIU page-fault
	// reconstruction), then dumped pages on top (they take priority).
	// A VMA may be a fragment of its section (the rewriter unmaps
	// pages), so only the slice the VMA still covers is written.
	for _, v := range pi.MM.VMAs {
		if v.Anon || v.Backing == "" || v.BackSection == "" {
			continue
		}
		data, err := m.ReadFile(v.Backing)
		if err != nil {
			return fmt.Errorf("rematerialize %s: %w", v.Name, err)
		}
		file, err := delf.Unmarshal(data)
		if err != nil {
			return fmt.Errorf("rematerialize %s: %w", v.Name, err)
		}
		sec, err := file.Section(v.BackSection)
		if err != nil {
			return fmt.Errorf("rematerialize %s: %w", v.Name, err)
		}
		secStart, ok := sectionStart(pi, v.Backing, file, sec.Addr)
		if !ok || v.Start < secStart {
			continue
		}
		off := v.Start - secStart
		if off >= uint64(len(sec.Data)) {
			continue
		}
		slice := sec.Data[off:]
		if max := v.End - v.Start; uint64(len(slice)) > max {
			slice = slice[:max]
		}
		if len(slice) > 0 {
			if err := p.Mem().Write(v.Start, slice); err != nil {
				return fmt.Errorf("rematerialize %s: %w", v.Name, err)
			}
		}
	}
	if pi.Delta {
		if err := m.Fault(faultinject.SiteRestoreParent, p.PID()); err != nil {
			return err
		}
	}
	if err := m.Fault(faultinject.SiteRestorePages, p.PID()); err != nil {
		return err
	}
	if pi.Delta {
		// Resolve the page view through the parent chain: holes drop
		// ancestor pages, own pages win. Own pages are written
		// unconditionally (same as a full image); inherited pages only
		// where the restored VMA layout still covers them — the delta's
		// MM is authoritative about what the guest currently maps.
		eff, err := pi.EffectivePages()
		if err != nil {
			return err
		}
		own := map[uint64]struct{}{}
		for _, pn := range pi.PageMap.PageNumbers {
			own[pn] = struct{}{}
		}
		pns := make([]uint64, 0, len(eff))
		for pn := range eff {
			pns = append(pns, pn)
		}
		sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
		for _, pn := range pns {
			if _, mine := own[pn]; !mine {
				if _, ok := p.Mem().VMAAt(pn * kernel.PageSize); !ok {
					continue
				}
			}
			if err := p.Mem().SetPage(pn, eff[pn]); err != nil {
				return err
			}
		}
	} else {
		for i, pn := range pi.PageMap.PageNumbers {
			page := pi.Pages[i*kernel.PageSize : (i+1)*kernel.PageSize]
			if err := p.Mem().SetPage(pn, page); err != nil {
				return err
			}
		}
	}

	// Registers, flags, signal dispositions.
	for i := 0; i < isa.NumRegisters; i++ {
		p.SetReg(isa.Register(i), pi.Core.Regs[i])
	}
	p.SetFlags(pi.Core.Flags)
	p.SetRIP(pi.Core.RIP)
	for _, sg := range pi.Core.Sigs {
		p.SetSigaction(kernel.Signal(sg.Signo), kernel.Sigaction{
			Handler: sg.Handler, Restorer: sg.Restorer,
		})
	}
	if pi.Core.HasFilter {
		filter := pi.Core.SysFilter
		if filter == nil {
			filter = []uint64{} // deny-all
		}
		p.SetSyscallFilter(filter)
	}

	// Modules.
	for _, mod := range pi.MM.Modules {
		p.AddModule(kernel.Module{Name: mod.Name, Lo: mod.Lo, Hi: mod.Hi})
	}

	// Descriptors.
	if err := m.Fault(faultinject.SiteRestoreFiles, p.PID()); err != nil {
		return err
	}
	for _, fe := range pi.Files.Files {
		switch kernel.FDKind(fe.Kind) {
		case kernel.FDStdio:
			m.AttachStdio(p, fe.FD, fe.StdNo)
		case kernel.FDListener:
			if fe.Port == 0 {
				continue // socket dumped before bind: nothing to re-attach
			}
			if boundHere[fe.Port] {
				// Shared across fork within this restored tree.
				if err := m.ShareListener(p, fe.FD, fe.Port); err != nil {
					return fmt.Errorf("share port %d: %w", fe.Port, err)
				}
				continue
			}
			if err := m.AttachListener(p, fe.FD, fe.Port); err != nil {
				return fmt.Errorf("rebind port %d: %w", fe.Port, err)
			}
			boundHere[fe.Port] = true
		case kernel.FDConn:
			m.AttachConn(p, fe.FD, fe.ConnID, fe.Port, fe.SideA)
		default:
			return fmt.Errorf("%w: fd %d has unknown kind %d", ErrBadImage, fe.FD, fe.Kind)
		}
	}

	// The restored memory now mirrors the image set exactly, so that
	// set is a valid incremental-dump parent: start dirty tracking from
	// this point, not from the restore's own writes.
	p.Mem().ClearDirty()
	return nil
}

// sectionStart computes the runtime start address of a section of the
// named module within the dumped process: the module's recorded load
// range pins its base.
func sectionStart(pi *ProcImage, moduleName string, file *delf.File, secAddr uint64) (uint64, bool) {
	fileLo, _ := file.ImageSpan()
	for _, mod := range pi.MM.Modules {
		if mod.Name == moduleName {
			return mod.Lo - fileLo + secAddr, true
		}
	}
	return 0, false
}
