package criu

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/kernel"
)

func buildExe(t testing.TB, name, src string) *delf.File {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	exe, err := link.Executable(name, []*asm.Object{obj})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return exe
}

// counterSrc increments a counter forever, writing progress markers.
const counterSrc = `
.text
.global _start
_start:
	mov r8, =counter
loop:
	load r1, [r8]
	add r1, 1
	store [r8], r1
	jmp loop
.data
counter: .quad 0
`

func TestDumpRestoreRoundTrip(t *testing.T) {
	m := kernel.NewMachine()
	exe := buildExe(t, "counter", counterSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(5000)
	counterSym, err := exe.Symbol("counter")
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Mem().ReadU64(counterSym.Value)
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatal("counter did not advance")
	}

	set, err := Dump(m, p.PID(), DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kill(p.PID()); err != nil {
		t.Fatal(err)
	}

	restored, pidMap, err := Restore(m, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 {
		t.Fatalf("restored %d procs", len(restored))
	}
	rp := restored[0]
	if pidMap[p.PID()] != rp.PID() {
		t.Error("pid map wrong")
	}
	after, err := rp.Mem().ReadU64(counterSym.Value)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("counter after restore = %d, want %d", after, before)
	}
	// The restored process continues from where the original stopped.
	m.Run(5000)
	later, _ := rp.Mem().ReadU64(counterSym.Value)
	if later <= after {
		t.Fatalf("restored process not running: %d -> %d", after, later)
	}
}

// TestVanillaCRIUDropsCodePatches captures the design point of the
// paper's CRIU modification: without the exec-pages dump option, a
// code patch applied to the dumped image set is lost on restore
// because file-backed pages are re-read from disk.
func TestVanillaCRIUDropsCodePatches(t *testing.T) {
	for _, execPages := range []bool{false, true} {
		m := kernel.NewMachine()
		exe := buildExe(t, "counter", counterSrc)
		p, err := m.Load(exe)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(1000)
		set, err := Dump(m, p.PID(), DumpOpts{ExecPages: execPages})
		if err != nil {
			t.Fatal(err)
		}

		// Patch the first byte of _start in the image to INT3.
		start, _ := exe.Symbol("_start")
		pi := set.Procs[p.PID()]
		pn := start.Value / kernel.PageSize
		page, err := pi.Page(pn)
		if execPages {
			if err != nil {
				t.Fatalf("ExecPages dump lacks code page: %v", err)
			}
			patched := append([]byte(nil), page...)
			patched[start.Value%kernel.PageSize] = 0xCC
			if err := pi.SetPage(pn, patched); err != nil {
				t.Fatal(err)
			}
		} else {
			if err == nil {
				t.Fatal("vanilla dump unexpectedly contains code pages")
			}
			// Patch anyway via SetPage to simulate a naive rewriter: the
			// restore will still re-read disk under pages absent from the
			// image, so write the page from scratch.
			patched := make([]byte, kernel.PageSize)
			patched[start.Value%kernel.PageSize] = 0xCC
			_ = patched
			// Without the code page in the image there is nothing a
			// byte-level rewriter can patch: exactly the limitation.
		}

		if err := m.Kill(p.PID()); err != nil {
			t.Fatal(err)
		}
		restored, _, err := Restore(m, set)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored[0].Mem().Read(start.Value, 1)
		if err != nil {
			t.Fatal(err)
		}
		if execPages && got[0] != 0xCC {
			t.Errorf("ExecPages: patch lost on restore (byte=%#x)", got[0])
		}
		if !execPages && got[0] == 0xCC {
			t.Errorf("vanilla: code page unexpectedly patched")
		}
	}
}

func TestImageSetMarshalRoundTrip(t *testing.T) {
	m := kernel.NewMachine()
	exe := buildExe(t, "counter", counterSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(500)
	set, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	blob := set.Marshal()
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	pi, gi := set.Procs[p.PID()], got.Procs[p.PID()]
	if gi == nil {
		t.Fatal("pid missing after round trip")
	}
	if pi.Core.Name != gi.Core.Name || pi.Core.PID != gi.Core.PID ||
		pi.Core.Parent != gi.Core.Parent || pi.Core.RIP != gi.Core.RIP ||
		pi.Core.Flags != gi.Core.Flags || pi.Core.Regs != gi.Core.Regs ||
		len(pi.Core.Sigs) != len(gi.Core.Sigs) {
		t.Errorf("core mismatch:\n%+v\n%+v", pi.Core, gi.Core)
	}
	if len(pi.MM.VMAs) != len(gi.MM.VMAs) {
		t.Fatalf("vma count %d != %d", len(pi.MM.VMAs), len(gi.MM.VMAs))
	}
	for i := range pi.MM.VMAs {
		if pi.MM.VMAs[i] != gi.MM.VMAs[i] {
			t.Errorf("vma %d mismatch", i)
		}
	}
	if len(pi.Pages) != len(gi.Pages) {
		t.Errorf("pages %d != %d", len(pi.Pages), len(gi.Pages))
	}
	if len(pi.Files.Files) != len(gi.Files.Files) {
		t.Errorf("files mismatch")
	}
}

func coreNoSigs(c CoreImage) CoreImage {
	c.Sigs = nil
	return c
}

func TestUnmarshalRejectsCorruptImages(t *testing.T) {
	m := kernel.NewMachine()
	exe := buildExe(t, "counter", counterSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	set, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	blob := set.Marshal()
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty blob accepted")
	}
	// Truncations must fail or decode to an inconsistent set, never panic.
	for _, n := range []int{1, 10, len(blob) / 3, len(blob) - 3} {
		if _, err := Unmarshal(blob[:n]); err == nil {
			t.Errorf("truncated blob (%d bytes) accepted", n)
		}
	}
}

// Property: arbitrary byte blobs never panic Unmarshal.
func TestQuickUnmarshalRobust(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Unmarshal(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

const trivialServerSrc = `
.text
.global _start
_start:
	mov r0, 4
	syscall
	mov r8, r0
	mov r0, 5
	mov r1, r8
	mov r2, 8080
	syscall
loop:
	mov r0, 7
	mov r1, r8
	syscall
	mov r9, r0
	mov r0, 3            ; read request
	mov r1, r9
	mov r2, =buf
	mov r3, 16
	syscall
	mov r0, 2            ; respond
	mov r1, r9
	lea r2, resp
	mov r3, 3
	syscall
	mov r0, 8
	mov r1, r9
	syscall
	jmp loop
.rodata
resp: .ascii "ok\n"
.bss
buf: .space 16
`

// TestTCPRepair: a live host connection must survive
// dump → kill → restore, the TCP_REPAIR property the paper depends on
// for zero-downtime rewriting.
func TestTCPRepair(t *testing.T) {
	m := kernel.NewMachine()
	exe := buildExe(t, "srv", trivialServerSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10000) // boot, block in accept

	// Open a connection and let the server accept it, but don't send
	// the request yet: the connection must survive the snapshot.
	conn, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(5000) // server accepts, blocks in read

	set, err := Dump(m, p.PID(), DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kill(p.PID()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restore(m, set); err != nil {
		t.Fatal(err)
	}

	// The pre-snapshot connection still works end to end.
	if _, err := conn.Write([]byte("GET /")); err != nil {
		t.Fatal(err)
	}
	ok := m.RunUntil(func() bool { return len(conn.ReadAllPeek()) >= 3 }, 100000)
	if !ok {
		t.Fatal("no response on repaired connection")
	}
	if got := string(conn.ReadAll()); got != "ok\n" {
		t.Fatalf("response = %q", got)
	}

	// And new connections to the re-bound listener work too.
	conn2, err := m.Dial(8080)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write([]byte("GET /")); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(func() bool { return len(conn2.ReadAllPeek()) >= 3 }, 100000)
	if got := string(conn2.ReadAll()); got != "ok\n" {
		t.Fatalf("second response = %q", got)
	}
}

func TestRestoreFailsOnBusyPort(t *testing.T) {
	m := kernel.NewMachine()
	exe := buildExe(t, "srv", trivialServerSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10000)
	set, err := Dump(m, p.PID(), DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Original still alive and bound: restore must fail cleanly.
	if _, _, err := Restore(m, set); err == nil || !strings.Contains(err.Error(), "rebind") {
		t.Fatalf("restore over live port: err = %v", err)
	}
}

func TestDumpTree(t *testing.T) {
	m := kernel.NewMachine()
	exe := buildExe(t, "forker", `
.text
.global _start
_start:
	mov r0, 9            ; fork
	syscall
	cmp r0, 0
	je child
parent_loop:
	mov r0, 14           ; yield
	syscall
	jmp parent_loop
child:
	mov r8, =spin
child_loop:
	load r1, [r8]
	add r1, 1
	store [r8], r1
	jmp child_loop
.data
spin: .quad 0
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2000)
	if len(m.Processes()) != 2 {
		t.Fatalf("procs = %d, want master+worker", len(m.Processes()))
	}
	set, err := Dump(m, p.PID(), DumpOpts{Tree: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.PIDs) != 2 {
		t.Fatalf("dumped %d procs, want 2", len(set.PIDs))
	}
	// Parent must come first for restore ordering.
	if set.Procs[set.PIDs[0]].Core.Parent != 0 {
		t.Error("parent not first in image order")
	}
	// Kill tree and restore both.
	for _, pr := range m.Processes() {
		if err := m.Kill(pr.PID()); err != nil {
			t.Fatal(err)
		}
	}
	restored, pidMap, err := Restore(m, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 2 {
		t.Fatalf("restored %d", len(restored))
	}
	// Parent-child relationship is preserved under new PIDs.
	if restored[1].Parent() != restored[0].PID() {
		t.Errorf("child parent = %d, want %d", restored[1].Parent(), restored[0].PID())
	}
	if len(pidMap) != 2 {
		t.Errorf("pidMap = %v", pidMap)
	}
	// Both keep running.
	m.Run(2000)
	if restored[0].Exited() || restored[1].Exited() {
		t.Error("restored tree died")
	}
}

func TestProcImagePageOps(t *testing.T) {
	pi := &ProcImage{}
	page := make([]byte, kernel.PageSize)
	page[0] = 1
	if err := pi.SetPage(5, page); err != nil {
		t.Fatal(err)
	}
	if err := pi.SetPage(9, page); err != nil {
		t.Fatal(err)
	}
	got, err := pi.Page(5)
	if err != nil || got[0] != 1 {
		t.Fatalf("Page(5) = %v, %v", got[0], err)
	}
	if _, err := pi.Page(6); err == nil {
		t.Error("absent page returned")
	}
	if err := pi.SetPage(5, make([]byte, 3)); err == nil {
		t.Error("short page accepted")
	}
	pi.DropPages(5, 6)
	if _, err := pi.Page(5); err == nil {
		t.Error("dropped page still present")
	}
	if _, err := pi.Page(9); err != nil {
		t.Error("unrelated page dropped")
	}
}
