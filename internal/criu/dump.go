package criu

import (
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/isa"
	"github.com/dynacut/dynacut/internal/kernel"
)

// DumpOpts controls which memory is checkpointed.
type DumpOpts struct {
	// ExecPages dumps private file-backed executable (and read-only)
	// pages in addition to anonymous memory. Vanilla CRIU leaves them
	// out because the page-fault handler reconstructs file-backed
	// memory from disk — which would silently revert DynaCut's code
	// patches on restore. This is the paper's criu/mem.c change.
	ExecPages bool
	// Tree also dumps all live descendants of the target (Nginx-style
	// master/worker applications).
	Tree bool
}

// Dump checkpoints a process (or its whole tree) into an ImageSet.
// The process is left running; callers that want the
// checkpoint-kill-rewrite-restore flow use Machine.Kill afterwards.
func Dump(m *kernel.Machine, pid int, opts DumpOpts) (*ImageSet, error) {
	root, err := m.Process(pid)
	if err != nil {
		return nil, err
	}
	procs := []*kernel.Process{root}
	if opts.Tree {
		procs = append(procs, descendants(m, pid)...)
	}
	set := &ImageSet{Procs: map[int]*ProcImage{}}
	parent := map[int]int{}
	for _, p := range procs {
		if err := m.Fault(faultinject.SiteDumpProc, p.PID()); err != nil {
			return nil, fmt.Errorf("dump pid %d: %w", p.PID(), err)
		}
		pi, err := dumpOne(m, p, opts)
		if err != nil {
			return nil, fmt.Errorf("dump pid %d: %w", p.PID(), err)
		}
		set.PIDs = append(set.PIDs, p.PID())
		set.Procs[p.PID()] = pi
		parent[p.PID()] = p.Parent()
	}
	sortPIDsParentFirst(set.PIDs, parent)
	return set, nil
}

func descendants(m *kernel.Machine, pid int) []*kernel.Process {
	var out []*kernel.Process
	for _, c := range m.Children(pid) {
		out = append(out, c)
		out = append(out, descendants(m, c.PID())...)
	}
	return out
}

func dumpOne(m *kernel.Machine, p *kernel.Process, opts DumpOpts) (*ProcImage, error) {
	pi := &ProcImage{}

	// core
	pi.Core = CoreImage{
		Name:   p.Name(),
		PID:    p.PID(),
		Parent: p.Parent(),
		RIP:    p.RIP(),
		Flags:  p.Flags(),
	}
	for i := 0; i < isa.NumRegisters; i++ {
		pi.Core.Regs[i] = p.Reg(isa.Register(i))
	}
	for signo, act := range p.Sigactions() {
		pi.Core.Sigs = append(pi.Core.Sigs, SigEntry{
			Signo: int(signo), Handler: act.Handler, Restorer: act.Restorer,
		})
	}
	sortSigs(pi.Core.Sigs)
	if filter := p.SyscallFilter(); filter != nil {
		pi.Core.HasFilter = true
		pi.Core.SysFilter = filter
	}

	// mm
	vmas := p.Mem().VMAs()
	for _, v := range vmas {
		pi.MM.VMAs = append(pi.MM.VMAs, VMAEntry{
			Start: v.Start, End: v.End, Perm: uint8(v.Perm),
			Name: v.Name, Backing: v.Backing, BackSection: v.BackSection,
			Anon: v.Anon,
		})
	}
	for _, mod := range p.Modules() {
		pi.MM.Modules = append(pi.MM.Modules, ModuleEntry{Name: mod.Name, Lo: mod.Lo, Hi: mod.Hi})
	}

	// pagemap + pages: anonymous always; file-backed only with
	// ExecPages.
	if err := m.Fault(faultinject.SiteDumpPageMap, p.PID()); err != nil {
		return nil, err
	}
	for _, pn := range p.Mem().PopulatedPages() {
		addr := pn * kernel.PageSize
		v, ok := p.Mem().VMAAt(addr)
		if !ok {
			continue // stale page outside any VMA
		}
		if !v.Anon && !opts.ExecPages {
			continue
		}
		data := p.Mem().PageData(pn)
		pi.PageMap.PageNumbers = append(pi.PageMap.PageNumbers, pn)
		pi.Pages = append(pi.Pages, data...)
	}

	// files (including TCP state for repair)
	for _, fd := range p.FDs() {
		pi.Files.Files = append(pi.Files.Files, FileEntry{
			FD: fd.FD, Kind: uint8(fd.Kind), StdNo: fd.StdNo,
			Port: fd.Port, ConnID: fd.ConnID, SideA: fd.SideA,
		})
	}
	return pi, nil
}

func sortSigs(sigs []SigEntry) {
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].Signo < sigs[j].Signo })
}
