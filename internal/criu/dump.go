package criu

import (
	"fmt"
	"sort"
	"sync"

	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/isa"
	"github.com/dynacut/dynacut/internal/kernel"
)

// DumpOpts controls which memory is checkpointed.
type DumpOpts struct {
	// ExecPages dumps private file-backed executable (and read-only)
	// pages in addition to anonymous memory. Vanilla CRIU leaves them
	// out because the page-fault handler reconstructs file-backed
	// memory from disk — which would silently revert DynaCut's code
	// patches on restore. This is the paper's criu/mem.c change.
	ExecPages bool
	// Tree also dumps all live descendants of the target (Nginx-style
	// master/worker applications).
	Tree bool
	// Parent, when non-nil, makes the dump incremental (CRIU's
	// --track-mem): a process already present in Parent emits only its
	// dirty pages plus holes for pages the guest has since unmapped,
	// and the resulting set records Parent as its ancestor. Processes
	// absent from Parent, and any dump whose chain would exceed
	// MaxParentDepth, fall back to a full dump.
	Parent *ImageSet
	// Store, when non-nil, deposits the finished set (ancestors
	// included) into a content-addressed page store: pages identical
	// across dumps — N fleet replicas cloned from one template — are
	// stored once. The set itself is returned unchanged.
	Store *PageStore
}

// Dump checkpoints a process (or its whole tree) into an ImageSet.
// The process is left running; callers that want the
// checkpoint-kill-rewrite-restore flow use Machine.Kill afterwards.
//
// All fault hooks and parent-chain resolution run in a serial prepass
// before any per-process serialization starts — so a failed Dump never
// clears dirty-page bitmaps, and the subsequent per-process fan-out is
// infallible and free to run in parallel.
func Dump(m *kernel.Machine, pid int, opts DumpOpts) (*ImageSet, error) {
	root, err := m.Process(pid)
	if err != nil {
		return nil, err
	}
	procs := []*kernel.Process{root}
	if opts.Tree {
		procs = append(procs, descendants(m, pid)...)
	}

	parentOK := opts.Parent != nil && opts.Parent.Depth() < MaxParentDepth

	// Serial prepass: fault hooks fire in deterministic order
	// (proc, pagemap, [parent] per process) and every parent chain is
	// resolved up front, before any SnapshotDirty can discard state.
	parentPis := make([]*ProcImage, len(procs))
	parentEffs := make([]map[uint64][]byte, len(procs))
	for i, p := range procs {
		if err := m.Fault(faultinject.SiteDumpProc, p.PID()); err != nil {
			return nil, fmt.Errorf("dump pid %d: %w", p.PID(), err)
		}
		if err := m.Fault(faultinject.SiteDumpPageMap, p.PID()); err != nil {
			return nil, fmt.Errorf("dump pid %d: %w", p.PID(), err)
		}
		if !parentOK {
			continue
		}
		ppi, ok := opts.Parent.Procs[p.PID()]
		if !ok {
			continue // process born since the parent dump: full dump
		}
		if err := m.Fault(faultinject.SiteDumpParent, p.PID()); err != nil {
			return nil, fmt.Errorf("dump pid %d: %w", p.PID(), err)
		}
		eff, err := ppi.EffectivePages()
		if err != nil {
			return nil, fmt.Errorf("dump pid %d: resolving parent chain: %w", p.PID(), err)
		}
		parentPis[i] = ppi
		parentEffs[i] = eff
	}

	// Parallel phase: pure per-process serialization, one goroutine
	// per process, results assembled back in traversal order.
	type out struct {
		pi              *ProcImage
		dumped, skipped int
	}
	outs := make([]out, len(procs))
	var wg sync.WaitGroup
	for i, p := range procs {
		wg.Add(1)
		go func(i int, p *kernel.Process) {
			defer wg.Done()
			pi, dumped, skipped := dumpOne(p, opts, parentPis[i], parentEffs[i])
			outs[i] = out{pi: pi, dumped: dumped, skipped: skipped}
		}(i, p)
	}
	wg.Wait()

	set := &ImageSet{Procs: map[int]*ProcImage{}}
	parent := map[int]int{}
	delta := false
	for i, p := range procs {
		set.PIDs = append(set.PIDs, p.PID())
		set.Procs[p.PID()] = outs[i].pi
		set.PagesDumped += outs[i].dumped
		set.PagesSkipped += outs[i].skipped
		if outs[i].pi.Delta {
			delta = true
		}
		parent[p.PID()] = p.Parent()
	}
	if delta {
		set.Parent = opts.Parent
	}
	sortPIDsParentFirst(set.PIDs, parent)
	if opts.Store != nil {
		before := opts.Store.Stats()
		if _, err := opts.Store.Deposit(set); err != nil {
			return nil, fmt.Errorf("dump: depositing into page store: %w", err)
		}
		if o := m.Observer(); o != nil {
			after := opts.Store.Stats()
			o.Add("criu.store.pages.new", int64(after.UniquePages-before.UniquePages))
			o.Add("criu.store.dedup.hits", int64(after.DedupHits-before.DedupHits))
			o.SetGauge("criu.store.bytes", int64(after.StoredBytes))
		}
	}
	if o := m.Observer(); o != nil {
		o.Add("criu.dumps", 1)
		o.Add("criu.pages.dumped", int64(set.PagesDumped))
		o.Add("criu.pages.skipped", int64(set.PagesSkipped))
		o.SetGauge("criu.parent.depth", int64(set.Depth()))
		o.Observe("criu.dump.pages", int64(set.PagesDumped))
	}
	return set, nil
}

func descendants(m *kernel.Machine, pid int) []*kernel.Process {
	var out []*kernel.Process
	for _, c := range m.Children(pid) {
		out = append(out, c)
		out = append(out, descendants(m, c.PID())...)
	}
	return out
}

// dumpEligible reports whether a populated page belongs in the image:
// anonymous always, file-backed only with ExecPages, stale pages
// outside any VMA never.
func dumpEligible(mem *kernel.Memory, pn uint64, opts DumpOpts) bool {
	v, ok := mem.VMAAt(pn * kernel.PageSize)
	if !ok {
		return false
	}
	return v.Anon || opts.ExecPages
}

// dumpOne serializes one process. It is infallible by design: every
// fault hook and parent lookup already ran in Dump's prepass, so this
// can execute on a goroutine with nothing shared but its own process.
func dumpOne(p *kernel.Process, opts DumpOpts, parentPi *ProcImage, parentEff map[uint64][]byte) (pi *ProcImage, dumped, skipped int) {
	pi = &ProcImage{}

	// core
	pi.Core = CoreImage{
		Name:   p.Name(),
		PID:    p.PID(),
		Parent: p.Parent(),
		RIP:    p.RIP(),
		Flags:  p.Flags(),
	}
	for i := 0; i < isa.NumRegisters; i++ {
		pi.Core.Regs[i] = p.Reg(isa.Register(i))
	}
	for signo, act := range p.Sigactions() {
		pi.Core.Sigs = append(pi.Core.Sigs, SigEntry{
			Signo: int(signo), Handler: act.Handler, Restorer: act.Restorer,
		})
	}
	sortSigs(pi.Core.Sigs)
	if filter := p.SyscallFilter(); filter != nil {
		pi.Core.HasFilter = true
		pi.Core.SysFilter = filter
	}

	// mm
	mem := p.Mem()
	vmas := mem.VMAs()
	for _, v := range vmas {
		pi.MM.VMAs = append(pi.MM.VMAs, VMAEntry{
			Start: v.Start, End: v.End, Perm: uint8(v.Perm),
			Name: v.Name, Backing: v.Backing, BackSection: v.BackSection,
			Anon: v.Anon,
		})
	}
	for _, mod := range p.Modules() {
		pi.MM.Modules = append(pi.MM.Modules, ModuleEntry{Name: mod.Name, Lo: mod.Lo, Hi: mod.Hi})
	}

	// pagemap + pages
	if parentPi == nil {
		// Full dump. Afterwards the image mirrors every eligible page
		// exactly, so it can serve as a parent — restart dirty tracking.
		mem.ClearDirty()
		for _, pn := range mem.PopulatedPages() {
			if !dumpEligible(mem, pn, opts) {
				continue
			}
			pi.PageMap.PageNumbers = append(pi.PageMap.PageNumbers, pn)
			pi.Pages = append(pi.Pages, mem.PageDataUnsafe(pn)...)
			dumped++
		}
	} else {
		// Incremental dump: emit pages that are dirty since the parent
		// or missing from the parent chain entirely; punch holes for
		// chain pages the guest no longer maps.
		pi.Delta = true
		pi.parent = parentPi
		dirty := map[uint64]struct{}{}
		for _, pn := range mem.SnapshotDirty() {
			dirty[pn] = struct{}{}
		}
		current := map[uint64]struct{}{}
		for _, pn := range mem.PopulatedPages() {
			if !dumpEligible(mem, pn, opts) {
				continue
			}
			current[pn] = struct{}{}
			_, dirtied := dirty[pn]
			_, inParent := parentEff[pn]
			if dirtied || !inParent {
				pi.PageMap.PageNumbers = append(pi.PageMap.PageNumbers, pn)
				pi.Pages = append(pi.Pages, mem.PageDataUnsafe(pn)...)
				dumped++
			} else {
				skipped++
			}
		}
		for pn := range parentEff {
			if _, ok := current[pn]; !ok {
				pi.Holes = append(pi.Holes, pn)
			}
		}
		sort.Slice(pi.Holes, func(i, j int) bool { return pi.Holes[i] < pi.Holes[j] })
	}

	// files (including TCP state for repair)
	for _, fd := range p.FDs() {
		pi.Files.Files = append(pi.Files.Files, FileEntry{
			FD: fd.FD, Kind: uint8(fd.Kind), StdNo: fd.StdNo,
			Port: fd.Port, ConnID: fd.ConnID, SideA: fd.SideA,
		})
	}
	return pi, dumped, skipped
}

func sortSigs(sigs []SigEntry) {
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].Signo < sigs[j].Signo })
}
