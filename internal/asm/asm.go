// Package asm implements a two-pass assembler for the virtual ISA.
//
// The assembler consumes a textual source file and produces an Object:
// sections of raw bytes plus symbol definitions and relocation
// requests, which internal/delf/link turns into DELF executables or
// shared libraries. Guest applications (the simulated web server,
// key-value store, and SPEC-like benchmarks) are authored in this
// assembly, either by hand or by Go generators.
//
// Syntax, one statement per line; ';' and '#' start comments:
//
//	.text | .rodata | .data | .bss      select the current section
//	.global NAME                        export NAME
//	.extern NAME                        declare an imported symbol
//	.ascii "s" | .asciz "s"             string data ('\n','\t','\0','\\','\"' escapes)
//	.byte  e, e, ...                    8-bit values
//	.quad  e, e, ...                    64-bit values; e may be a label
//	.space N                            N zero bytes
//	.align N                            pad to N-byte boundary
//	label:                              define label at current position
//
// Labels beginning with '.' are local (do not terminate the enclosing
// function symbol). A non-local label in .text starts a function; its
// size extends to the next non-local label or the end of the section.
//
// Instruction operands: registers r0..r15 (sp = r15), immediates
// (decimal, 0x hex, 'c'), memory [reg], [reg+imm], [reg-imm], labels,
// `name@plt` for calls through the PLT, and `=label` for a 64-bit
// absolute address immediate.
package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/isa"
)

// Object is the assembler's output: relocatable sections plus symbol
// and relocation tables, all section-relative.
type Object struct {
	Sections map[string]*Section
	Symbols  []SymDef
	Relocs   []Reloc
	Externs  []string
}

// Section is an object-file section under construction.
type Section struct {
	Name string
	Data []byte
	// Size covers .bss, which has Size > 0 and no Data.
	Size uint64
}

// SymDef defines a symbol at an offset within a section.
type SymDef struct {
	Name    string
	Section string
	Off     uint64
	Size    uint64
	Kind    delf.SymKind
	Global  bool
}

// Reloc asks the linker to patch a field inside a section.
type Reloc struct {
	Section string
	Off     uint64
	Kind    delf.RelKind
	Symbol  string
	Addend  int64
}

// SyntaxError reports an assembly failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

var errNotReg = errors.New("not a register")

// Assemble assembles one source file.
func Assemble(src string) (*Object, error) {
	a := &assembler{
		obj: &Object{Sections: map[string]*Section{}},
	}
	// Pass 1: lay out bytes, record label offsets and relocation sites.
	if err := a.run(src); err != nil {
		return nil, err
	}
	// Pass 2 is implicit: all label references were emitted as
	// relocations; the linker resolves local ones too. Compute
	// function symbol sizes now that section sizes are final.
	a.finishFuncSizes()
	return a.obj, nil
}

type assembler struct {
	obj     *Object
	cur     *Section
	line    int
	globals map[string]bool
	externs map[string]bool
	// funcOrder tracks non-local .text labels in definition order so
	// function sizes can be computed.
	funcOrder []int // indices into obj.Symbols
}

func (a *assembler) errf(format string, args ...any) error {
	return &SyntaxError{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) run(src string) error {
	a.globals = map[string]bool{}
	a.externs = map[string]bool{}
	defined := map[string]bool{}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// One or more labels may prefix a statement.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 || strings.ContainsAny(line[:idx], " \t\"'[,") {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !validIdent(name) {
				return a.errf("invalid label %q", name)
			}
			if defined[name] {
				return a.errf("label %q redefined", name)
			}
			defined[name] = true
			if err := a.defineLabel(name); err != nil {
				return err
			}
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		var err error
		if strings.HasPrefix(line, ".") {
			err = a.directive(line)
		} else {
			err = a.instruction(line)
		}
		if err != nil {
			return err
		}
	}
	// Mark globals/externs.
	for i := range a.obj.Symbols {
		if a.globals[a.obj.Symbols[i].Name] {
			a.obj.Symbols[i].Global = true
		}
	}
	for name := range a.globals {
		if !defined[name] {
			return &SyntaxError{Line: 0, Msg: fmt.Sprintf(".global %q never defined", name)}
		}
	}
	for name := range a.externs {
		a.obj.Externs = append(a.obj.Externs, name)
	}
	return nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case ';', '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) section(name string) *Section {
	s, ok := a.obj.Sections[name]
	if !ok {
		s = &Section{Name: name}
		a.obj.Sections[name] = s
	}
	return s
}

func (a *assembler) need() (*Section, error) {
	if a.cur == nil {
		return nil, a.errf("no current section (missing .text/.data?)")
	}
	return a.cur, nil
}

func (a *assembler) defineLabel(name string) error {
	s, err := a.need()
	if err != nil {
		return err
	}
	kind := delf.SymObject
	if s.Name == delf.SecText {
		kind = delf.SymFunc
	}
	sym := SymDef{Name: name, Section: s.Name, Off: s.Size, Kind: kind}
	a.obj.Symbols = append(a.obj.Symbols, sym)
	if kind == delf.SymFunc && !strings.HasPrefix(name, ".") {
		a.funcOrder = append(a.funcOrder, len(a.obj.Symbols)-1)
	}
	return nil
}

// finishFuncSizes sets each non-local .text function's size to the
// distance to the next non-local .text label (or the section end).
func (a *assembler) finishFuncSizes() {
	text, ok := a.obj.Sections[delf.SecText]
	if !ok {
		return
	}
	for i, symIdx := range a.funcOrder {
		end := text.Size
		if i+1 < len(a.funcOrder) {
			end = a.obj.Symbols[a.funcOrder[i+1]].Off
		}
		a.obj.Symbols[symIdx].Size = end - a.obj.Symbols[symIdx].Off
	}
}

func (a *assembler) emit(b ...byte) error {
	s, err := a.need()
	if err != nil {
		return err
	}
	if s.Name == delf.SecBSS {
		return a.errf("cannot emit data into .bss")
	}
	s.Data = append(s.Data, b...)
	s.Size = uint64(len(s.Data))
	return nil
}

func (a *assembler) emitInst(in isa.Inst) error {
	s, err := a.need()
	if err != nil {
		return err
	}
	if s.Name != delf.SecText {
		return a.errf("instruction outside .text")
	}
	enc, err := isa.Encode(nil, in)
	if err != nil {
		return a.errf("%v", err)
	}
	return a.emit(enc...)
}

// addReloc records a relocation at the given offset in the current section.
func (a *assembler) addReloc(off uint64, kind delf.RelKind, symbol string, addend int64) {
	a.obj.Relocs = append(a.obj.Relocs, Reloc{
		Section: a.cur.Name, Off: off, Kind: kind, Symbol: symbol, Addend: addend,
	})
}

func (a *assembler) directive(line string) error {
	fields := strings.SplitN(line, " ", 2)
	dir := strings.TrimSpace(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text", ".rodata", ".data", ".bss":
		a.cur = a.section(dir)
		return nil
	case ".global", ".globl":
		if !validIdent(rest) {
			return a.errf(".global needs a symbol name")
		}
		a.globals[rest] = true
		return nil
	case ".extern":
		if !validIdent(rest) {
			return a.errf(".extern needs a symbol name")
		}
		a.externs[rest] = true
		return nil
	case ".ascii", ".asciz":
		s, err := parseString(rest)
		if err != nil {
			return a.errf("%v", err)
		}
		if dir == ".asciz" {
			s = append(s, 0)
		}
		return a.emit(s...)
	case ".byte":
		for _, tok := range splitOperands(rest) {
			v, err := parseImm(tok)
			if err != nil {
				return a.errf("bad .byte value %q: %v", tok, err)
			}
			if v < -128 || v > 255 {
				return a.errf(".byte value %d out of range", v)
			}
			if err := a.emit(byte(v)); err != nil {
				return err
			}
		}
		return nil
	case ".quad":
		for _, tok := range splitOperands(rest) {
			if v, err := parseImm(tok); err == nil {
				var buf [8]byte
				putU64(buf[:], uint64(v))
				if err := a.emit(buf[:]...); err != nil {
					return err
				}
				continue
			}
			if !validIdent(tok) {
				return a.errf("bad .quad value %q", tok)
			}
			s, err := a.need()
			if err != nil {
				return err
			}
			a.addReloc(s.Size, delf.RelAbs64, tok, 0)
			if err := a.emit(make([]byte, 8)...); err != nil {
				return err
			}
		}
		return nil
	case ".space":
		n, err := parseImm(rest)
		if err != nil || n < 0 {
			return a.errf("bad .space size %q", rest)
		}
		s, serr := a.need()
		if serr != nil {
			return serr
		}
		if s.Name == delf.SecBSS {
			s.Size += uint64(n)
			return nil
		}
		return a.emit(make([]byte, n)...)
	case ".align":
		n, err := parseImm(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return a.errf("bad .align %q (need power of two)", rest)
		}
		s, serr := a.need()
		if serr != nil {
			return serr
		}
		pad := (uint64(n) - s.Size%uint64(n)) % uint64(n)
		if s.Name == delf.SecBSS {
			s.Size += pad
			return nil
		}
		fill := byte(0)
		if s.Name == delf.SecText {
			fill = byte(isa.OpNOP)
		}
		padBytes := make([]byte, pad)
		for i := range padBytes {
			padBytes[i] = fill
		}
		return a.emit(padBytes...)
	default:
		return a.errf("unknown directive %q", dir)
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func parseString(tok string) ([]byte, error) {
	if len(tok) < 2 || tok[0] != '"' || tok[len(tok)-1] != '"' {
		return nil, fmt.Errorf("expected quoted string, got %q", tok)
	}
	body := tok[1 : len(tok)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, errors.New("trailing backslash in string")
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case 'r':
			out = append(out, '\r')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" {
		out = append(out, tail)
	}
	return out
}

func parseReg(tok string) (isa.Register, error) {
	tok = strings.ToLower(strings.TrimSpace(tok))
	if tok == "sp" {
		return isa.SP, nil
	}
	if !strings.HasPrefix(tok, "r") {
		return 0, errNotReg
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= isa.NumRegisters {
		return 0, errNotReg
	}
	return isa.Register(n), nil
}

func parseImm(tok string) (int64, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) >= 3 && tok[0] == '\'' && tok[len(tok)-1] == '\'' {
		body := tok[1 : len(tok)-1]
		if len(body) == 1 {
			return int64(body[0]), nil
		}
		if len(body) == 2 && body[0] == '\\' {
			switch body[1] {
			case 'n':
				return '\n', nil
			case 't':
				return '\t', nil
			case '0':
				return 0, nil
			case 'r':
				return '\r', nil
			case '\\':
				return '\\', nil
			}
		}
		return 0, fmt.Errorf("bad char literal %q", tok)
	}
	return strconv.ParseInt(tok, 0, 64)
}

// memOperand parses "[reg]", "[reg+imm]", "[reg-imm]".
func parseMem(tok string) (isa.Register, int64, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 3 || tok[0] != '[' || tok[len(tok)-1] != ']' {
		return 0, 0, fmt.Errorf("expected memory operand, got %q", tok)
	}
	body := tok[1 : len(tok)-1]
	sign := int64(1)
	idx := strings.IndexAny(body, "+-")
	regPart, immPart := body, ""
	if idx > 0 {
		regPart, immPart = body[:idx], body[idx+1:]
		if body[idx] == '-' {
			sign = -1
		}
	}
	reg, err := parseReg(regPart)
	if err != nil {
		return 0, 0, fmt.Errorf("bad base register in %q", tok)
	}
	var disp int64
	if immPart != "" {
		disp, err = parseImm(immPart)
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement in %q", tok)
		}
	}
	return reg, sign * disp, nil
}

func (a *assembler) instruction(line string) error {
	sp := strings.IndexAny(line, " \t")
	mnem := line
	rest := ""
	if sp > 0 {
		mnem = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	mnem = strings.ToLower(mnem)
	ops := splitOperands(rest)

	switch mnem {
	case "nop":
		return a.emitInst(isa.Inst{Op: isa.OpNOP})
	case "ret":
		return a.emitInst(isa.Inst{Op: isa.OpRET})
	case "int3":
		return a.emitInst(isa.Inst{Op: isa.OpINT3})
	case "hlt":
		return a.emitInst(isa.Inst{Op: isa.OpHLT})
	case "syscall":
		return a.emitInst(isa.Inst{Op: isa.OpSYS})
	case "push", "pop":
		if len(ops) != 1 {
			return a.errf("%s needs one register", mnem)
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		op := isa.OpPUSH
		if mnem == "pop" {
			op = isa.OpPOP
		}
		return a.emitInst(isa.Inst{Op: op, A: r})
	case "mov":
		return a.asmMov(ops)
	case "lea":
		if len(ops) != 2 {
			return a.errf("lea needs two operands")
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return a.errf("lea: %v", err)
		}
		if !validIdent(ops[1]) {
			return a.errf("lea: expected label, got %q", ops[1])
		}
		s, serr := a.need()
		if serr != nil {
			return serr
		}
		// rel32 field is at +2 in the LEA encoding.
		a.addReloc(s.Size+2, delf.RelPC32, ops[1], 0)
		return a.emitInst(isa.Inst{Op: isa.OpLEA, A: r})
	case "load", "loadb":
		if len(ops) != 2 {
			return a.errf("%s needs two operands", mnem)
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		base, disp, err := parseMem(ops[1])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		op := isa.OpLOAD
		if mnem == "loadb" {
			op = isa.OpLOADB
		}
		return a.emitInst(isa.Inst{Op: op, A: r, B: base, Imm: disp})
	case "store", "storeb":
		if len(ops) != 2 {
			return a.errf("%s needs two operands", mnem)
		}
		base, disp, err := parseMem(ops[0])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		r, err := parseReg(ops[1])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		op := isa.OpSTORE
		if mnem == "storeb" {
			op = isa.OpSTOREB
		}
		return a.emitInst(isa.Inst{Op: op, A: r, B: base, Imm: disp})
	case "add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr", "cmp":
		return a.asmALU(mnem, ops)
	case "jmp", "je", "jne", "jl", "jg", "jle", "jge":
		return a.asmJump(mnem, ops)
	case "call":
		return a.asmCall(ops)
	default:
		return a.errf("unknown mnemonic %q", mnem)
	}
}

func (a *assembler) asmMov(ops []string) error {
	if len(ops) != 2 {
		return a.errf("mov needs two operands")
	}
	dst, err := parseReg(ops[0])
	if err != nil {
		return a.errf("mov: bad destination %q", ops[0])
	}
	if src, err := parseReg(ops[1]); err == nil {
		return a.emitInst(isa.Inst{Op: isa.OpMOVrr, A: dst, B: src})
	}
	if strings.HasPrefix(ops[1], "=") {
		sym := strings.TrimPrefix(ops[1], "=")
		if !validIdent(sym) {
			return a.errf("mov: bad address literal %q", ops[1])
		}
		s, serr := a.need()
		if serr != nil {
			return serr
		}
		// imm64 field is at +2 in the MOVri encoding.
		a.addReloc(s.Size+2, delf.RelAbs64, sym, 0)
		return a.emitInst(isa.Inst{Op: isa.OpMOVri, A: dst})
	}
	imm, err := parseImm(ops[1])
	if err != nil {
		return a.errf("mov: bad source %q", ops[1])
	}
	return a.emitInst(isa.Inst{Op: isa.OpMOVri, A: dst, Imm: imm})
}

var aluRR = map[string]isa.Opcode{
	"add": isa.OpADDrr, "sub": isa.OpSUBrr, "mul": isa.OpMULrr,
	"div": isa.OpDIVrr, "and": isa.OpANDrr, "or": isa.OpORrr,
	"xor": isa.OpXORrr, "shl": isa.OpSHLrr, "shr": isa.OpSHRrr,
	"cmp": isa.OpCMPrr,
}

var aluRI = map[string]isa.Opcode{
	"add": isa.OpADDri, "sub": isa.OpSUBri, "mul": isa.OpMULri,
	"and": isa.OpANDri, "or": isa.OpORri, "xor": isa.OpXORri,
	"shl": isa.OpSHLri, "shr": isa.OpSHRri, "cmp": isa.OpCMPri,
}

func (a *assembler) asmALU(mnem string, ops []string) error {
	if len(ops) != 2 {
		return a.errf("%s needs two operands", mnem)
	}
	dst, err := parseReg(ops[0])
	if err != nil {
		return a.errf("%s: bad register %q", mnem, ops[0])
	}
	if src, err := parseReg(ops[1]); err == nil {
		return a.emitInst(isa.Inst{Op: aluRR[mnem], A: dst, B: src})
	}
	imm, err := parseImm(ops[1])
	if err != nil {
		return a.errf("%s: bad operand %q", mnem, ops[1])
	}
	op, ok := aluRI[mnem]
	if !ok {
		return a.errf("%s does not take an immediate", mnem)
	}
	return a.emitInst(isa.Inst{Op: op, A: dst, Imm: imm})
}

var jumps = map[string]isa.Opcode{
	"jmp": isa.OpJMP, "je": isa.OpJE, "jne": isa.OpJNE,
	"jl": isa.OpJL, "jg": isa.OpJG, "jle": isa.OpJLE, "jge": isa.OpJGE,
}

func (a *assembler) asmJump(mnem string, ops []string) error {
	if len(ops) != 1 {
		return a.errf("%s needs one operand", mnem)
	}
	if mnem == "jmp" {
		if r, err := parseReg(ops[0]); err == nil {
			return a.emitInst(isa.Inst{Op: isa.OpJMPr, A: r})
		}
	}
	if !validIdent(ops[0]) {
		return a.errf("%s: bad target %q", mnem, ops[0])
	}
	s, serr := a.need()
	if serr != nil {
		return serr
	}
	// rel32 field is at +1 in direct branch encodings.
	a.addReloc(s.Size+1, delf.RelPC32, ops[0], 0)
	return a.emitInst(isa.Inst{Op: jumps[mnem]})
}

func (a *assembler) asmCall(ops []string) error {
	if len(ops) != 1 {
		return a.errf("call needs one operand")
	}
	if r, err := parseReg(ops[0]); err == nil {
		return a.emitInst(isa.Inst{Op: isa.OpCALLr, A: r})
	}
	target := ops[0]
	kind := delf.RelPC32
	if strings.HasSuffix(target, "@plt") {
		target = strings.TrimSuffix(target, "@plt")
		kind = delf.RelPLT32
		a.externs[target] = true
	}
	if !validIdent(target) {
		return a.errf("call: bad target %q", ops[0])
	}
	s, serr := a.need()
	if serr != nil {
		return serr
	}
	a.addReloc(s.Size+1, kind, target, 0)
	return a.emitInst(isa.Inst{Op: isa.OpCALL})
}
