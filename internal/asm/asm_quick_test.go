package asm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/isa"
)

// genSource builds a structurally valid assembly source from a random
// seed: labeled blocks of arithmetic with occasional branches between
// them.
func genSource(seed []byte) string {
	var b strings.Builder
	b.WriteString(".text\n.global _start\n_start:\n")
	nLabels := len(seed)/8 + 1
	for i, v := range seed {
		switch v % 6 {
		case 0:
			fmt.Fprintf(&b, "\tmov r%d, %d\n", v%14, int(v)*3)
		case 1:
			fmt.Fprintf(&b, "\tadd r%d, %d\n", v%14, v)
		case 2:
			fmt.Fprintf(&b, "\tcmp r%d, r%d\n", v%14, (v+1)%14)
		case 3:
			fmt.Fprintf(&b, "\tjne lbl_%d\n", int(v)%nLabels)
		case 4:
			fmt.Fprintf(&b, "\tpush r%d\n\tpop r%d\n", v%14, v%14)
		case 5:
			fmt.Fprintf(&b, "\tlea r%d, data_word\n", v%14)
		}
		if i%8 == 7 {
			fmt.Fprintf(&b, "lbl_%d:\n", i/8)
		}
	}
	// Define any remaining referenced labels.
	for i := 0; i < nLabels; i++ {
		fmt.Fprintf(&b, "lbl_%d_guard:\n", i)
	}
	for i := len(seed) / 8; i < nLabels; i++ {
		fmt.Fprintf(&b, "lbl_%d:\n", i)
	}
	b.WriteString("\tret\n.data\ndata_word: .quad 7\n")
	return b.String()
}

// Property: generated sources assemble, and the emitted text decodes
// as a valid instruction stream of the same byte length.
func TestQuickAssembleDecodes(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) > 150 {
			seed = seed[:150]
		}
		src := genSource(seed)
		obj, err := Assemble(src)
		if err != nil {
			t.Logf("assemble failed:\n%s\n%v", src, err)
			return false
		}
		text := obj.Sections[delf.SecText]
		off := 0
		for off < len(text.Data) {
			in, err := isa.Decode(text.Data[off:])
			if err != nil {
				return false
			}
			off += in.Size
		}
		return off == len(text.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: every relocation site recorded by the assembler lies
// within its section.
func TestQuickRelocBounds(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) > 100 {
			seed = seed[:100]
		}
		obj, err := Assemble(genSource(seed))
		if err != nil {
			return false
		}
		for _, rel := range obj.Relocs {
			sec, ok := obj.Sections[rel.Section]
			if !ok {
				return false
			}
			if rel.Off+4 > sec.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
