package asm

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Object {
	t.Helper()
	obj, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return obj
}

func TestAssembleBasicProgram(t *testing.T) {
	obj := mustAssemble(t, `
.text
.global _start
_start:
	mov r0, 60        ; exit
	mov r1, 7
	syscall
`)
	text := obj.Sections[delf.SecText]
	if text == nil {
		t.Fatal("no .text section")
	}
	insts, _ := isa.Disassemble(text.Data, 0)
	if len(insts) != 3 {
		t.Fatalf("got %d instructions, want 3", len(insts))
	}
	if insts[0].Op != isa.OpMOVri || insts[0].Imm != 60 {
		t.Errorf("inst 0 = %v", insts[0])
	}
	if insts[2].Op != isa.OpSYS {
		t.Errorf("inst 2 = %v", insts[2])
	}
	if len(obj.Symbols) != 1 || obj.Symbols[0].Name != "_start" || !obj.Symbols[0].Global {
		t.Errorf("symbols = %+v", obj.Symbols)
	}
	if obj.Symbols[0].Size != text.Size {
		t.Errorf("_start size = %d, want %d", obj.Symbols[0].Size, text.Size)
	}
}

func TestAssembleAllForms(t *testing.T) {
	obj := mustAssemble(t, `
.text
f:
	mov r1, r2
	mov r3, -0x10
	mov r4, =greeting
	lea r5, greeting
	load r6, [r1+8]
	loadb r6, [r1-1]
	store [sp-16], r6
	storeb [sp], r6
	add r1, r2
	add r1, 5
	sub r1, 1
	mul r2, r3
	div r2, r3
	and r1, 0xff
	or r1, r2
	xor r1, r1
	shl r1, 3
	shr r1, r2
	cmp r1, 10
	cmp r1, r2
	push r1
	pop r2
	jmp .loop
.loop:
	je f
	jne f
	jl f
	jg f
	jle f
	jge f
	jmp r9
	call f
	call helper
	call write@plt
	int3
	nop
	hlt
	ret
helper:
	ret

.rodata
greeting: .asciz "hi\n"

.data
.align 8
counter: .quad 0
table: .quad f, greeting, 0x1234

.bss
buf: .space 128
.align 4096
big: .space 4096
`)
	text := obj.Sections[delf.SecText]
	insts, _ := isa.Disassemble(text.Data, 0)
	if len(insts) != 38 {
		t.Fatalf("decoded %d instructions, want 38", len(insts))
	}
	// Externs gathered from @plt.
	foundWrite := false
	for _, e := range obj.Externs {
		if e == "write" {
			foundWrite = true
		}
	}
	if !foundWrite {
		t.Errorf("externs = %v, want write", obj.Externs)
	}
	// Function sizes: f extends to helper; .loop is local and doesn't cut it.
	var fDef, helperDef *SymDef
	for i := range obj.Symbols {
		switch obj.Symbols[i].Name {
		case "f":
			fDef = &obj.Symbols[i]
		case "helper":
			helperDef = &obj.Symbols[i]
		}
	}
	if fDef == nil || helperDef == nil {
		t.Fatal("missing function symbols")
	}
	if fDef.Off+fDef.Size != helperDef.Off {
		t.Errorf("f size %d does not reach helper at %d", fDef.Size, helperDef.Off)
	}
	// BSS sizing: 128 + pad to 4096 + 4096.
	bss := obj.Sections[delf.SecBSS]
	if bss.Size != 8192 {
		t.Errorf("bss size = %d, want 8192", bss.Size)
	}
	if len(bss.Data) != 0 {
		t.Error("bss has data bytes")
	}
	// Data relocations for .quad f, greeting.
	var quadRelocs int
	for _, r := range obj.Relocs {
		if r.Section == delf.SecData && r.Kind == delf.RelAbs64 {
			quadRelocs++
		}
	}
	if quadRelocs != 2 {
		t.Errorf("data ABS64 relocs = %d, want 2", quadRelocs)
	}
	// rodata contents.
	ro := obj.Sections[delf.SecROData]
	if string(ro.Data) != "hi\n\x00" {
		t.Errorf("rodata = %q", ro.Data)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"no section", "mov r1, 2", "no current section"},
		{"data in bss", ".bss\n.byte 1", "cannot emit data"},
		{"inst in data", ".data\nmov r1, 2", "instruction outside .text"},
		{"bad mnemonic", ".text\nfrobnicate r1", "unknown mnemonic"},
		{"bad register", ".text\nmov r16, 1", "bad destination"},
		{"bad label char", ".text\nfoo-bar:", "invalid label"},
		{"dup label", ".text\nx:\nx:", "redefined"},
		{"undefined global", ".text\n.global nope\nf: ret", "never defined"},
		{"bad directive", ".wat 3", "unknown directive"},
		{"bad align", ".data\n.align 3", "power of two"},
		{"byte range", ".data\n.byte 300", "out of range"},
		{"bad string", `.data
.ascii hello`, "quoted string"},
		{"jump to number", ".text\njmp 42", "bad target"},
		{"shift range", ".text\nshl r1, 64", "isa"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(tt.src)
			if err == nil {
				t.Fatalf("Assemble succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %v, want substring %q", err, tt.want)
			}
		})
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	obj := mustAssemble(t, `
; full line comment
# hash comment
.text
f:   ret   ; trailing
.rodata
s: .ascii "a;b#c"  ; separators inside strings survive
`)
	if string(obj.Sections[delf.SecROData].Data) != "a;b#c" {
		t.Errorf("rodata = %q", obj.Sections[delf.SecROData].Data)
	}
	if obj.Sections[delf.SecText].Size != 1 {
		t.Errorf("text size = %d", obj.Sections[delf.SecText].Size)
	}
}

func TestLabelOnSameLineAsInstruction(t *testing.T) {
	obj := mustAssemble(t, ".text\nstart: mov r1, 1\nnext: ret\n")
	if len(obj.Symbols) != 2 {
		t.Fatalf("symbols = %+v", obj.Symbols)
	}
	if obj.Symbols[1].Off != 10 {
		t.Errorf("next at %d, want 10", obj.Symbols[1].Off)
	}
}

func TestCharImmediates(t *testing.T) {
	obj := mustAssemble(t, ".text\nf: mov r1, 'A'\ncmp r1, '\\n'\nret\n")
	insts, _ := isa.Disassemble(obj.Sections[delf.SecText].Data, 0)
	if insts[0].Imm != 'A' {
		t.Errorf("char imm = %d", insts[0].Imm)
	}
	if insts[1].Imm != '\n' {
		t.Errorf("escape imm = %d", insts[1].Imm)
	}
}

func TestRelocationOffsets(t *testing.T) {
	obj := mustAssemble(t, `
.text
f:
	call g        ; reloc at +1
	lea r1, g     ; reloc at 5+2
	mov r2, =g    ; reloc at 11+2
	ret
g:	ret
`)
	want := map[uint64]delf.RelKind{1: delf.RelPC32, 7: delf.RelPC32, 13: delf.RelAbs64}
	if len(obj.Relocs) != len(want) {
		t.Fatalf("relocs = %+v", obj.Relocs)
	}
	for _, r := range obj.Relocs {
		if want[r.Off] != r.Kind {
			t.Errorf("reloc at %d kind %v, want %v", r.Off, r.Kind, want[r.Off])
		}
		if r.Symbol != "g" {
			t.Errorf("reloc symbol %q", r.Symbol)
		}
	}
}
