package fleet

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
)

// Old-version encoders, test-only: DecodeJournal must keep reading
// every journal this package has ever written.

// encodeRecordV1 serializes a record at the v1 wire layout: 39-byte
// header, no Mode byte, note length at offset 37.
func encodeRecordV1(r Record) []byte {
	note := []byte(r.Note)
	buf := make([]byte, 0, recHeaderLenV1+len(note))
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Replica))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Wave))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Attempt))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Outcome))
	buf = binary.LittleEndian.AppendUint64(buf, r.Ticks)
	buf = binary.LittleEndian.AppendUint32(buf, r.Ident)
	buf = binary.LittleEndian.AppendUint64(buf, r.VClock)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(note)))
	return append(buf, note...)
}

// encodeJournalAt builds journal bytes at an arbitrary magic with the
// given per-record encoder.
func encodeJournalAt(magic uint32, recs []Record, enc func(Record) []byte) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, magic)
	for _, r := range recs {
		payload := enc(r)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
		buf = append(buf, payload...)
	}
	return buf
}

// TestJournalDecodesV1: a v1 journal (pre-Mode record layout) decodes
// to the same records with Mode zero.
func TestJournalDecodesV1(t *testing.T) {
	want := sampleRecords()
	for i := range want {
		want[i].Mode = 0 // v1 cannot carry a mode
	}
	data := encodeJournalAt(journalMagicV1, want, encodeRecordV1)
	got, err := DecodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 decode:\n got %+v\nwant %+v", got, want)
	}
	// Torn v1 tail is still a torn tail.
	got, err = DecodeJournal(data[:len(data)-3])
	if err != nil || len(got) != len(want)-1 {
		t.Fatalf("torn v1 tail: %d records, err %v", len(got), err)
	}
}

// TestJournalDecodesV2: a v2 journal (current record layout, old
// magic) decodes unchanged — including Mode.
func TestJournalDecodesV2(t *testing.T) {
	want := sampleRecords()
	want[1].Mode = ModeLivePatch
	data := encodeJournalAt(journalMagicV2, want, encodeRecord)
	got, err := DecodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v2 decode:\n got %+v\nwant %+v", got, want)
	}
}

// TestJournalV3KindsRejectedInOldVersions: an attestation record kind
// inside a v1/v2 journal is corruption, not a feature — those versions
// never wrote one.
func TestJournalV3KindsRejectedInOldVersions(t *testing.T) {
	recs := []Record{
		{Kind: RecStart, Replica: 2},
		{Kind: RecAttest, Replica: 1, Attempt: int32(VerdictClean)},
		{Kind: RecDone},
	}
	for _, tc := range []struct {
		magic uint32
		enc   func(Record) []byte
	}{
		{journalMagicV1, encodeRecordV1},
		{journalMagicV2, encodeRecord},
	} {
		data := encodeJournalAt(tc.magic, recs, tc.enc)
		if _, err := DecodeJournal(data); !errors.Is(err, ErrJournalCorrupt) {
			t.Errorf("magic %#x with RecAttest -> %v, want ErrJournalCorrupt", tc.magic, err)
		}
	}
	// The same kinds in a v3 journal are fine.
	data := encodeJournalAt(journalMagicV3, recs, encodeRecord)
	got, err := DecodeJournal(data)
	if err != nil || len(got) != 3 {
		t.Fatalf("v3 attest kinds: %d records, err %v", len(got), err)
	}
}

// TestJournalAttestKindsRoundTrip: the v3 record kinds and every
// attestation verdict survive encode/decode through a live Journal.
func TestJournalAttestKindsRoundTrip(t *testing.T) {
	j := NewJournal()
	want := []Record{
		{Kind: RecStart, Replica: 64, Wave: 2, Attempt: 8},
		{Kind: RecAttest, Replica: 7, Wave: 0, Attempt: int32(VerdictClean), Ident: 0xaabbccdd, Ticks: 12, VClock: 5},
		{Kind: RecRepair, Replica: 7, Wave: 0, Attempt: 1, Ticks: 2, VClock: 6},
		{Kind: RecAttest, Replica: 7, Wave: 0, Attempt: int32(VerdictForeign), Ticks: 2, VClock: 7},
		{Kind: RecQuarantine, Replica: 9, Wave: 1, Attempt: 3, VClock: 8, Note: "budget exhausted"},
		{Kind: RecAttest, Replica: 9, Wave: -1, Attempt: int32(VerdictReadmit), VClock: 9, Note: "readmitted on resume"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeJournal(j.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	// journalFrom over a v3 decode is byte-identical — the resume
	// determinism anchor.
	if j2 := journalFrom(got); !reflect.DeepEqual(j2.Bytes(), j.Bytes()) {
		t.Fatal("v3 -> v3 journalFrom re-encode not byte-identical")
	}
}

// TestJournalUpgradesOldVersionsOnResume: journalFrom re-encodes a
// v1/v2 decode at the current version, so a resumed controller always
// appends to a v3 log.
func TestJournalUpgradesOldVersionsOnResume(t *testing.T) {
	want := sampleRecords()
	for i := range want {
		want[i].Mode = 0
	}
	data := encodeJournalAt(journalMagicV1, want, encodeRecordV1)
	recs, err := DecodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	j := journalFrom(recs)
	if magic := binary.LittleEndian.Uint32(j.Bytes()); magic != journalMagicV3 {
		t.Fatalf("resumed journal magic %#x, want v3", magic)
	}
	if err := j.Append(Record{Kind: RecAttest, Replica: 1, Attempt: int32(VerdictClean)}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJournal(j.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)+1 || !reflect.DeepEqual(got[:len(want)], want) {
		t.Fatalf("upgraded journal lost records:\n got %+v", got)
	}
}

// FuzzDecodeJournal: arbitrary bytes, and valid journals of every
// version with injected truncation and corruption, must never panic or
// mis-parse — torn tails drop cleanly, decodable journals round-trip
// through the v3 re-encode bit for bit (record-wise).
func FuzzDecodeJournal(f *testing.F) {
	samples := sampleRecords()
	v1 := encodeJournalAt(journalMagicV1, samples[:3], encodeRecordV1)
	v2 := encodeJournalAt(journalMagicV2, samples, encodeRecord)
	v3recs := append(append([]Record(nil), samples...),
		Record{Kind: RecAttest, Replica: 1, Attempt: int32(VerdictRepaired), Ticks: 3},
		Record{Kind: RecQuarantine, Replica: 2, Attempt: 3, Note: "q"})
	v3 := encodeJournalAt(journalMagicV3, v3recs, encodeRecord)
	f.Add(v1)
	f.Add(v2)
	f.Add(v3)
	f.Add(v3[:len(v3)-5])                 // torn tail
	f.Add(v2[:7])                         // torn first frame header
	f.Add([]byte("DJL3"))                 // wrong byte order for the magic
	f.Add([]byte{0x33, 0x4c, 0x4a, 0x44}) // bare v3 magic, no frames
	dam := append([]byte(nil), v3...)
	dam[12] ^= 0xff // interior corruption
	f.Add(dam)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeJournal(data)
		if err != nil {
			if len(recs) != 0 {
				t.Fatalf("error %v returned %d records", err, len(recs))
			}
			return
		}
		// Whatever decoded must re-encode and decode to the same
		// records: the resume path depends on it.
		j := journalFrom(recs)
		again, err := DecodeJournal(j.Bytes())
		if err != nil {
			t.Fatalf("re-encode of a valid decode failed: %v", err)
		}
		if !reflect.DeepEqual(again, recs) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", again, recs)
		}
	})
}

// TestJournalAttestNamesStable: the journal kinds and sweep verdicts
// render stable names — these strings land in demo output and logs.
func TestJournalAttestNamesStable(t *testing.T) {
	for want, got := range map[string]string{
		"attest":     RecAttest.String(),
		"repair":     RecRepair.String(),
		"quarantine": RecQuarantine.String(),
		"start":      RecStart.String(),
		"intent":     RecIntent.String(),
		"outcome":    RecOutcome.String(),
		"wave-done":  RecWaveDone.String(),
		"halt":       RecHalt.String(),
		"resume":     RecResume.String(),
		"done":       RecDone.String(),
		"clean":      VerdictClean.String(),
		"repaired":   VerdictRepaired.String(),
		"skew":       VerdictSkew.String(),
		"foreign":    VerdictForeign.String(),
		"readmit":    VerdictReadmit.String(),
	} {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if got := RecKind(99).String(); got == "" {
		t.Error("unknown RecKind renders empty")
	}
	if got := AttestVerdict(99).String(); got == "" {
		t.Error("unknown AttestVerdict renders empty")
	}
}
