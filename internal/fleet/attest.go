package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/dynacut/dynacut/internal/faultinject"
)

// The attestation sweep is the fleet's anti-entropy loop. Per-replica
// rollback and journaled resume defend against faults that announce
// themselves; the sweep defends against the ones that don't — a bit
// flip in a text page, a rotted store blob, a collection channel that
// reports the wrong root. Each sweep collects every active replica's
// live text root (cheap: one hash pass, no classification), compares
// it against that replica's own expected-state oracle, and pays for
// the authoritative page-by-page attestation only where they disagree.
// Diverged pages are repaired in place from the content-addressed
// store — zero downtime, same unwind discipline as the live-patch fast
// path — and a replica that exhausts its repair budget is quarantined:
// drained from subsequent waves, journaled, and re-attested before any
// resumed controller readmits it. The invariant the sweep maintains:
// every replica is attested-correct or journaled-quarantined; none is
// silently wrong.

// defaultRepairBudget bounds in-place repair attempts per replica per
// sweep before the sweep quarantines the replica.
const defaultRepairBudget = 3

// ReplicaAttest is one replica's result in one attestation sweep.
type ReplicaAttest struct {
	Index int
	// Verdict classifies what the sweep found and did: clean, repaired
	// (known prior-version bytes), foreign (unknown bytes, still
	// repaired from the store), or skew (the collected root lied; the
	// text itself attested clean).
	Verdict AttestVerdict
	// Checked counts (process, page) pairs the authoritative
	// attestation hashed (zero on the cheap clean path).
	Checked int
	// Repaired counts pages re-patched in place; Tries how many repair
	// attempts ran.
	Repaired int
	Tries    int
	// Err is the terminal failure. It is nil whenever the replica ended
	// attested-correct — even when earlier repair tries failed; see
	// RepairErrs for that history.
	Err error
	// RepairErrs is the retry history of the repair ladder: one error
	// per failed try. A replica repaired on the first try has none.
	RepairErrs []error
}

// SweepResult summarizes one fleet attestation sweep.
type SweepResult struct {
	Wave     int
	Replicas []ReplicaAttest
	// Repaired / Skews / Quarantined count replicas by sweep outcome.
	Repaired    int
	Skews       int
	Quarantined int
	// Quorum is the size of the largest set of identical collected
	// roots; Divergent counts replicas outside it. The vote is advisory
	// only — mid-rollout a fleet legitimately holds two root
	// populations, and a skewed channel can outvote the truth — so
	// repair decisions come from each replica's own oracle, never from
	// the quorum.
	Quorum    int
	Divergent int
}

// rootIdent is the journaled fingerprint of an attestation root: its
// first four bytes, little-endian.
func rootIdent(root [sha256.Size]byte) uint32 {
	return binary.LittleEndian.Uint32(root[:4])
}

// AttestSweep runs one fleet-wide attestation sweep: collect each
// active replica's live root, flag divergence from the quorum
// (advisory) and from the replica's own oracle (authoritative), repair
// diverged text in place, quarantine replicas whose repair budget is
// exhausted. Every verdict is journaled (RecAttest / RecRepair /
// RecQuarantine), so a controller crash mid-sweep resumes with the
// quarantine set intact. Quarantined replicas are skipped — readmission
// happens only through the resume path's re-attestation.
func (c *Controller) AttestSweep(wave int) *SweepResult {
	f := c.f
	sw := &SweepResult{Wave: wave}
	f.obs.PhaseStart("fleet.attest", wave)
	now := c.laneMax()

	type collected struct {
		r    *Replica
		want [sha256.Size]byte
		got  [sha256.Size]byte
		err  error
	}
	var cols []collected
	tally := map[[sha256.Size]byte]int{}
	for _, r := range f.replicas {
		if r.Quarantined() {
			continue
		}
		col := collected{r: r}
		if att, err := r.Cust.Attestation(); err != nil {
			col.err = err
		} else {
			col.want = att.Root
		}
		if col.err == nil {
			root, err := r.Cust.LiveRoot()
			col.got, col.err = root, err
		}
		// The collection channel itself can lie: an injected
		// fleet.attest.skew fault corrupts the collected root in
		// flight, silently. The oracle comparison below flags it and
		// the authoritative re-attestation then proves the text clean.
		if col.err == nil {
			if err := r.Machine.Fault(faultinject.SiteAttestSkew, r.Index); err != nil {
				col.got[0] ^= 0xff
			}
			tally[col.got]++
		}
		cols = append(cols, col)
	}

	// Advisory quorum: the modal collected root (first-seen wins ties,
	// keeping the sweep deterministic).
	var modal [sha256.Size]byte
	for _, col := range cols {
		if col.err == nil && tally[col.got] > sw.Quorum {
			modal, sw.Quorum = col.got, tally[col.got]
		}
	}
	for _, col := range cols {
		if col.err == nil && col.got != modal {
			sw.Divergent++
			f.obs.Point("fleet.attest.diverged", int64(col.r.Index))
		}
	}

	for _, col := range cols {
		if c.isCrashed() {
			break
		}
		ra := c.sweepReplica(col.r, col.want, col.got, col.err, wave, now)
		sw.Replicas = append(sw.Replicas, ra)
		if ra.Verdict == VerdictSkew {
			sw.Skews++
		}
		if ra.Repaired > 0 {
			sw.Repaired++
		}
		if col.r.Quarantined() {
			sw.Quarantined++
		}
	}
	f.obs.PhaseEnd("fleet.attest", wave, nil)
	return sw
}

// sweepReplica resolves one replica's sweep verdict: the cheap root
// compare, then (only on divergence) the authoritative attestation and
// the repair ladder, then quarantine if the budget runs dry.
func (c *Controller) sweepReplica(r *Replica, want, got [sha256.Size]byte, collErr error, wave int, now uint64) ReplicaAttest {
	f := c.f
	ra := ReplicaAttest{Index: r.Index, Verdict: VerdictClean}
	if collErr != nil {
		ra.Err = collErr
		c.quarantine(r, &ra, 0, wave, now)
		return ra
	}
	if got == want {
		c.append(Record{Kind: RecAttest, Replica: int32(r.Index), Wave: int32(wave),
			Attempt: int32(VerdictClean), Ident: rootIdent(got), VClock: now})
		return ra
	}

	// Collected root diverged from the oracle: pay for the page-by-page
	// attestation. The oracle decides — the collected root only
	// selected this replica for scrutiny.
	rep, err := r.Cust.Attest()
	if err != nil {
		ra.Err = err
		c.quarantine(r, &ra, 0, wave, now)
		return ra
	}
	ra.Checked = rep.Checked
	if rep.Clean() {
		// The text is fine; the collected root was wrong. Nothing to
		// repair — journal the skew so the channel fault is visible.
		ra.Verdict = VerdictSkew
		f.obs.Point("fleet.attest.skew", int64(r.Index))
		c.append(Record{Kind: RecAttest, Replica: int32(r.Index), Wave: int32(wave),
			Attempt: int32(VerdictSkew), Ident: rootIdent(rep.Root),
			Ticks: uint64(rep.Checked), VClock: now})
		return ra
	}

	foreign := rep.Foreign() > 0
	budget := f.cfg.RepairBudget
	if budget <= 0 {
		budget = defaultRepairBudget
	}
	for try := 1; try <= budget; try++ {
		ra.Tries = try
		rs, rerr := r.Cust.Repair(rep, true)
		if !c.append(Record{Kind: RecRepair, Replica: int32(r.Index), Wave: int32(wave),
			Attempt: int32(try), Ticks: uint64(rs.Repaired), VClock: now}) {
			return ra
		}
		if rerr != nil {
			ra.Err = rerr
			ra.RepairErrs = append(ra.RepairErrs, rerr)
			continue
		}
		rep2, aerr := r.Cust.Attest()
		if aerr != nil {
			ra.Err = aerr
			ra.RepairErrs = append(ra.RepairErrs, aerr)
			continue
		}
		if !rep2.Clean() {
			// Fresh divergence landed between the repair and its
			// re-check (a corruption storm); spend another try on it.
			aerr = fmt.Errorf("fleet: replica %d still diverged after repair (%d mismatches)",
				r.Index, len(rep2.Mismatches))
			ra.Err = aerr
			ra.RepairErrs = append(ra.RepairErrs, aerr)
			rep = rep2
			continue
		}
		// Attested-correct. Success clears Err even after failed tries —
		// a repaired replica is healthy — while the tries' errors stay
		// in RepairErrs: history, not health.
		ra.Err = nil
		ra.Repaired += rs.Repaired
		ra.Verdict = VerdictRepaired
		if foreign {
			ra.Verdict = VerdictForeign
		}
		f.obs.Point("fleet.attest.repaired", int64(r.Index))
		c.append(Record{Kind: RecAttest, Replica: int32(r.Index), Wave: int32(wave),
			Attempt: int32(ra.Verdict), Ident: rootIdent(rep2.Root),
			Ticks: uint64(rs.Repaired), VClock: now})
		return ra
	}
	c.quarantine(r, &ra, ra.Tries, wave, now)
	return ra
}

// quarantine drains a replica whose text cannot be attested correct:
// the flag drops it from subsequent waves and sweeps, the journal
// record survives a controller crash, and only the resume path's
// re-attestation can readmit it.
func (c *Controller) quarantine(r *Replica, ra *ReplicaAttest, tries, wave int, now uint64) {
	r.quarantined.Store(true)
	if ra.Err == nil {
		ra.Err = fmt.Errorf("fleet: replica %d quarantined", r.Index)
	} else {
		ra.Err = fmt.Errorf("fleet: replica %d quarantined after %d repair tries: %w",
			r.Index, tries, ra.Err)
	}
	c.f.obs.Point("fleet.quarantine", int64(r.Index))
	c.emit(StepEvent{Kind: "quarantine", Replica: r.Index, Wave: wave, Attempt: tries, VClock: now})
	c.append(Record{Kind: RecQuarantine, Replica: int32(r.Index), Wave: int32(wave),
		Attempt: int32(tries), VClock: now, Note: ra.Err.Error()})
}

// readmitQuarantined re-attests every quarantined replica on resume: a
// replica whose text attests clean (or repairs clean) rejoins the
// fleet with a journaled VerdictReadmit; anything else stays drained.
// Quarantine is a statement about the text, not the replica — if the
// bytes are provably right again, the drain has no reason to persist.
func (c *Controller) readmitQuarantined() {
	for _, r := range c.f.replicas {
		if !r.Quarantined() || c.isCrashed() {
			continue
		}
		rep, err := r.Cust.Attest()
		if err != nil {
			continue // stays quarantined
		}
		if !rep.Clean() {
			if _, rerr := r.Cust.Repair(rep, true); rerr != nil {
				continue
			}
			rep2, aerr := r.Cust.Attest()
			if aerr != nil || !rep2.Clean() {
				continue
			}
			rep = rep2
		}
		r.quarantined.Store(false)
		c.f.obs.Point("fleet.attest.readmit", int64(r.Index))
		c.emit(StepEvent{Kind: "readmit", Replica: r.Index, VClock: c.laneMax()})
		if !c.append(Record{Kind: RecAttest, Replica: int32(r.Index), Wave: -1,
			Attempt: int32(VerdictReadmit), Ident: rootIdent(rep.Root),
			Ticks: uint64(rep.Checked), VClock: c.laneMax(), Note: "readmitted on resume"}) {
			return
		}
	}
}
