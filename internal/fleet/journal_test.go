package fleet

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/dynacut/dynacut/internal/faultinject"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: RecStart, Replica: 6, Wave: 4, Attempt: 2},
		{Kind: RecIntent, Replica: 0, Wave: 0, Attempt: 1, VClock: 10},
		{Kind: RecOutcome, Replica: 0, Wave: 0, Attempt: 1, Outcome: OutcomeCommitted, Ticks: 65, Ident: 0xdeadbeef, VClock: 75},
		{Kind: RecWaveDone, Wave: 0, VClock: 75},
		{Kind: RecOutcome, Replica: 1, Wave: 1, Attempt: 2, Outcome: OutcomeFailed, Ticks: 3, VClock: 90,
			Note: "lease retry budget exhausted"},
		{Kind: RecDone, Replica: 5, VClock: 99},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	j := NewJournal()
	want := sampleRecords()
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", j.Len(), len(want))
	}
	got, err := DecodeJournal(j.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decode mismatch:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(j.Records(), want) {
		t.Fatal("Records() disagrees with appended records")
	}
}

func TestJournalRejectsForeignBytes(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("txt"), []byte("this is not a journal")} {
		if _, err := DecodeJournal(data); !errors.Is(err, ErrJournalMagic) {
			t.Fatalf("DecodeJournal(%q) = %v, want ErrJournalMagic", data, err)
		}
	}
}

// TestJournalTornTailTolerated: a crash can only damage the final
// frame (short header, short payload, or a half-written frame whose
// CRC cannot match). Every such cut must decode to the clean prefix,
// silently.
func TestJournalTornTailTolerated(t *testing.T) {
	j := NewJournal()
	want := sampleRecords()
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	full := j.Bytes()
	lastFrame := 8 + len(encodeRecord(want[len(want)-1]))
	for cut := len(full) - 1; cut > len(full)-lastFrame; cut-- {
		got, err := DecodeJournal(full[:cut])
		if err != nil {
			t.Fatalf("cut at %d (of %d): %v", cut, len(full), err)
		}
		if len(got) != len(want)-1 {
			t.Fatalf("cut at %d: decoded %d records, want %d", cut, len(got), len(want)-1)
		}
	}
	// Corrupting the final frame's payload is the same story: its CRC
	// fails, and since it is the tail it is dropped, not fatal.
	dam := append([]byte(nil), full...)
	dam[len(dam)-1] ^= 0xff
	got, err := DecodeJournal(dam)
	if err != nil {
		t.Fatalf("tail corruption should be tolerated: %v", err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("tail corruption: decoded %d records, want %d", len(got), len(want)-1)
	}
}

// TestJournalInteriorCorruptionFatal: the same one-byte damage
// anywhere before the final frame is not a crash signature — an
// append-only log cannot lose interior bytes — so decode must refuse.
func TestJournalInteriorCorruptionFatal(t *testing.T) {
	j := NewJournal()
	want := sampleRecords()
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	full := j.Bytes()
	lastFrame := 8 + len(encodeRecord(want[len(want)-1]))
	// Flip one byte in every interior frame's payload (skip the 8-byte
	// frame headers: damaging a length field can masquerade as a torn
	// tail, which is fine for crash tolerance but not what this test
	// pins down).
	off := 4
	for i := 0; i < len(want)-1; i++ {
		payloadStart := off + 8
		dam := append([]byte(nil), full...)
		dam[payloadStart] ^= 0x01
		if _, err := DecodeJournal(dam); !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("record %d payload corruption -> %v, want ErrJournalCorrupt", i, err)
		}
		off = payloadStart + len(encodeRecord(want[i]))
	}
	if off != len(full)-lastFrame {
		t.Fatalf("frame walk ended at %d, want %d", off, len(full)-lastFrame)
	}
}

// TestJournalTornAppendFault: an injected fleet.journal.append fault
// must leave exactly the damage a crashed write would — half a frame —
// and the record uncommitted, so decode yields the clean prefix.
func TestJournalTornAppendFault(t *testing.T) {
	inj := faultinject.New(7)
	inj.FailAt(faultinject.SiteFleetJournalAppend, 2)
	j := NewJournal()
	j.SetFaultHook(inj)
	recs := sampleRecords()
	if err := j.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	err := j.Append(recs[1])
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn append = %v, want injected fault", err)
	}
	if j.Len() != 1 {
		t.Fatalf("torn record counted as committed: Len = %d", j.Len())
	}
	data := j.Bytes()
	wholeFrame := 8 + len(encodeRecord(recs[1]))
	clean := NewJournal()
	if err := clean.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if len(data) != len(clean.Bytes())+wholeFrame/2 {
		t.Fatalf("torn write left %d bytes, want clean prefix %d + half frame %d",
			len(data), len(clean.Bytes()), wholeFrame/2)
	}
	got, err := DecodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], recs[0]) {
		t.Fatalf("decode after torn append: %+v", got)
	}
}

// TestJournalResumeContinuesLog: journalFrom must trim the torn tail
// and keep appending on a clean frame boundary — the resumed
// controller writes into the same log it decoded.
func TestJournalResumeContinuesLog(t *testing.T) {
	j := NewJournal()
	recs := sampleRecords()
	for _, r := range recs[:3] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a torn tail after the third record.
	data := append(j.Bytes(), 0x42, 0x42, 0x42)
	decoded, err := DecodeJournal(data)
	if err != nil || len(decoded) != 3 {
		t.Fatalf("decode: %d records, err %v", len(decoded), err)
	}
	j2 := journalFrom(decoded)
	if err := j2.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJournal(j2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[:4]) {
		t.Fatalf("resumed log:\n got %+v\nwant %+v", got, recs[:4])
	}
	if !bytes.HasPrefix(j2.Bytes(), j.Bytes()) {
		t.Fatal("resumed log does not extend the clean prefix")
	}
}
