package fleet

import (
	"encoding/binary"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/faultinject"
)

// applyLive is the live-patch rollout payload the sweep tests use.
func applyLive(tpl *template) func(r *Replica) (core.Stats, error) {
	return func(r *Replica) (core.Stats, error) {
		return r.Cust.DisableBlocksLive("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	}
}

// recKinds tallies a journal's records by kind.
func recKinds(recs []Record) map[RecKind]int {
	out := map[RecKind]int{}
	for _, r := range recs {
		out[r.Kind]++
	}
	return out
}

// TestFleetScrubCleanRollout: a Scrub rollout over a healthy fleet
// journals a clean attestation per replica per wave, repairs nothing,
// quarantines nobody — and the mid-rollout quorum split (committed vs
// not-yet-committed roots) stays advisory.
func TestFleetScrubCleanRollout(t *testing.T) {
	tpl := bootLiveTemplate(t)
	cfg := liveConfig(tpl, 6, 2, 1, 3)
	cfg.Scrub = true
	f, err := New(tpl.m, tpl.pid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(f, nil)
	res, err := ctl.Run(applyLive(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed() != 6 {
		t.Fatalf("committed = %d/6: %+v", res.Committed(), res.Outcomes)
	}
	if len(res.Sweeps) != len(res.Waves) {
		t.Fatalf("%d sweeps for %d waves", len(res.Sweeps), len(res.Waves))
	}
	for _, sw := range res.Sweeps {
		if sw.Repaired != 0 || sw.Quarantined != 0 || sw.Skews != 0 {
			t.Fatalf("healthy fleet sweep did work: %+v", sw)
		}
		for _, ra := range sw.Replicas {
			if ra.Verdict != VerdictClean || ra.Err != nil {
				t.Fatalf("replica %d sweep verdict %v err %v", ra.Index, ra.Verdict, ra.Err)
			}
		}
	}
	// After wave 0 only the canary carries the patched root: it is the
	// 1-vs-5 minority in the advisory quorum, and nothing happens to it.
	if sw := res.Sweeps[0]; sw.Quorum != 5 || sw.Divergent != 1 {
		t.Errorf("canary-wave sweep quorum %d divergent %d, want 5/1", sw.Quorum, sw.Divergent)
	}
	// After the last wave every replica holds the same root.
	if sw := res.Sweeps[len(res.Sweeps)-1]; sw.Quorum != 6 || sw.Divergent != 0 {
		t.Errorf("final sweep quorum %d divergent %d, want 6/0", sw.Quorum, sw.Divergent)
	}
	// Journal: v3 magic, one clean attest record per replica per wave.
	data := ctl.Journal().Bytes()
	if binary.LittleEndian.Uint32(data) != journalMagicV3 {
		t.Fatalf("journal magic %#x, want v3", binary.LittleEndian.Uint32(data))
	}
	kinds := recKinds(ctl.Journal().Records())
	if kinds[RecAttest] != 6*len(res.Waves) {
		t.Errorf("RecAttest count = %d, want %d", kinds[RecAttest], 6*len(res.Waves))
	}
	if kinds[RecRepair] != 0 || kinds[RecQuarantine] != 0 {
		t.Errorf("clean rollout journaled repairs/quarantines: %v", kinds)
	}
}

// TestFleetScrubRepairsBitflipStorm: silent bit flips injected during
// the sweeps are detected and repaired in place — zero restore
// downtime, PIDs unchanged, no halt — and the repairs are journaled.
func TestFleetScrubRepairsBitflipStorm(t *testing.T) {
	tpl := bootLiveTemplate(t)
	inj := faultinject.New(5)
	inj.FailTransient(faultinject.SiteTextBitflip, 1, 3)
	cfg := liveConfig(tpl, 6, 2, 1, 3)
	cfg.Scrub = true
	cfg.FaultHook = inj
	f, err := New(tpl.m, tpl.pid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pids := make([]int, 6)
	for _, r := range f.Replicas() {
		pids[r.Index] = r.Cust.PID()
	}
	ctl := NewController(f, nil)
	res, err := ctl.Run(applyLive(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if inj.Injected() == 0 {
		t.Fatal("armed bitflips never fired")
	}
	if res.Committed() != 6 || res.Halted {
		t.Fatalf("rollout: committed %d halted %v", res.Committed(), res.Halted)
	}
	repaired := 0
	for _, sw := range res.Sweeps {
		repaired += sw.Repaired
		if sw.Quarantined != 0 {
			t.Fatalf("repairable storm quarantined a replica: %+v", sw)
		}
	}
	if repaired == 0 {
		t.Fatal("no replica repaired despite fired bitflips")
	}
	kinds := recKinds(ctl.Journal().Records())
	if kinds[RecRepair] == 0 {
		t.Error("no RecRepair journaled")
	}
	// Zero-downtime accounting, both ledgers: the journal holds no
	// restore outcomes, and no replica's root PID moved.
	for _, rec := range ctl.Journal().Records() {
		if rec.Kind == RecOutcome && rec.Outcome == OutcomeRestored {
			t.Errorf("sweep repair paid a restore: %+v", rec)
		}
	}
	for _, r := range f.Replicas() {
		if r.Cust.PID() != pids[r.Index] {
			t.Errorf("replica %d PID %d -> %d: a restore leaked into the repair path",
				r.Index, pids[r.Index], r.Cust.PID())
		}
		r.Machine.SetFaultHook(nil)
		rep, err := r.Cust.Attest()
		if err != nil || !rep.Clean() {
			t.Errorf("replica %d post-rollout attest: %v clean=%v", r.Index, err, rep.Clean())
		}
		if got := request(r.Machine, 8080, "PUT /f data\n"); !strings.Contains(got, "403") {
			t.Errorf("replica %d PUT -> %q, want 403", r.Index, got)
		}
	}
}

// TestFleetScrubSkewIsAdvisory: a corrupted collection channel (the
// fleet.attest.skew site) must trigger the authoritative re-attestation
// and nothing else — no repair, no quarantine, verdict journaled skew.
func TestFleetScrubSkewIsAdvisory(t *testing.T) {
	tpl := bootLiveTemplate(t)
	inj := faultinject.New(9)
	inj.FailTransient(faultinject.SiteAttestSkew, 2, 2)
	cfg := liveConfig(tpl, 4, 2, 1, 3)
	cfg.Scrub = true
	cfg.FaultHook = inj
	f, err := New(tpl.m, tpl.pid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(f, nil)
	res, err := ctl.Run(applyLive(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if inj.Injected() == 0 {
		t.Fatal("armed skew fault never fired")
	}
	if res.Committed() != 4 {
		t.Fatalf("committed = %d/4", res.Committed())
	}
	skews, repaired, quarantined := 0, 0, 0
	for _, sw := range res.Sweeps {
		skews += sw.Skews
		repaired += sw.Repaired
		quarantined += sw.Quarantined
	}
	if skews == 0 {
		t.Fatal("skewed collection never detected")
	}
	if repaired != 0 || quarantined != 0 {
		t.Fatalf("skew caused repairs (%d) or quarantine (%d): channel noise must not touch text", repaired, quarantined)
	}
	found := false
	for _, rec := range ctl.Journal().Records() {
		if rec.Kind == RecAttest && AttestVerdict(rec.Attempt) == VerdictSkew {
			found = true
		}
	}
	if !found {
		t.Error("no VerdictSkew attest record journaled")
	}
}

// TestFleetScrubRepairSuccessClearsErrKeepsHistory: the stale-state
// regression for the repair ladder — a repair that succeeds on its
// final budgeted try must report the replica healthy (Err nil) while
// keeping every failed try's error in RepairErrs.
func TestFleetScrubRepairSuccessClearsErrKeepsHistory(t *testing.T) {
	tpl := bootLiveTemplate(t)
	inj := faultinject.New(3)
	inj.FailTransient(faultinject.SiteAttestRepair, 1, 2) // tries 1 and 2 fail, 3 heals
	cfg := liveConfig(tpl, 1, 1, 1, 1)
	cfg.Scrub = true
	cfg.FaultHook = inj
	cfg.RepairBudget = 3
	f, err := New(tpl.m, tpl.pid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := f.Replicas()[0]
	p, err := r.Machine.Process(r.Cust.PID())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Mem().FlipBits(tpl.blocks[0].Addr, 0x04) {
		t.Fatal("flip refused")
	}
	ctl := NewController(f, nil)
	sw := ctl.AttestSweep(0)
	if len(sw.Replicas) != 1 {
		t.Fatalf("sweep covered %d replicas", len(sw.Replicas))
	}
	ra := sw.Replicas[0]
	if ra.Err != nil {
		t.Fatalf("repair succeeded on try %d but Err = %v (stale failure state)", ra.Tries, ra.Err)
	}
	if ra.Tries != 3 || len(ra.RepairErrs) != 2 {
		t.Fatalf("tries = %d, repair history = %d errors, want 3 tries / 2 errors", ra.Tries, len(ra.RepairErrs))
	}
	if ra.Verdict != VerdictForeign || ra.Repaired == 0 {
		t.Fatalf("verdict %v repaired %d, want foreign repair", ra.Verdict, ra.Repaired)
	}
	if r.Quarantined() {
		t.Fatal("healed replica left quarantined")
	}
	kinds := recKinds(ctl.Journal().Records())
	if kinds[RecRepair] != 3 || kinds[RecQuarantine] != 0 {
		t.Fatalf("journal kinds %v, want 3 repairs and no quarantine", kinds)
	}
}

// TestFleetScrubQuarantineAndResumeReadmit: a replica whose repairs
// exhaust the budget is quarantined — journaled, drained from
// Fleet.Active — and a resumed controller re-attests it before
// readmission: once the repair path works again, the replica heals and
// rejoins with a journaled VerdictReadmit.
func TestFleetScrubQuarantineAndResumeReadmit(t *testing.T) {
	tpl := bootLiveTemplate(t)
	inj := faultinject.New(7)
	inj.FailTransient(faultinject.SiteTextBitflip, 1, 1)   // one silent flip, first sweep
	inj.FailTransient(faultinject.SiteAttestRepair, 1, -1) // every repair hard-fails
	cfg := liveConfig(tpl, 4, 2, 1, 3)
	cfg.Scrub = true
	cfg.FaultHook = inj
	cfg.RepairBudget = 2
	f, err := New(tpl.m, tpl.pid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(f, nil)
	res, err := ctl.Run(applyLive(tpl))
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for _, r := range f.Replicas() {
		if r.Quarantined() {
			if victim >= 0 {
				t.Fatalf("replicas %d and %d both quarantined, one flip armed", victim, r.Index)
			}
			victim = r.Index
		}
	}
	if victim < 0 {
		t.Fatalf("budget-exhausted replica not quarantined: sweeps %+v", res.Sweeps)
	}
	if got := len(f.Active()); got != 3 {
		t.Fatalf("Active() = %d replicas, want 3 (quarantine must drain)", got)
	}
	kinds := recKinds(ctl.Journal().Records())
	if kinds[RecQuarantine] == 0 {
		t.Fatal("quarantine not journaled")
	}
	var quarantineErrs []error
	for _, sw := range res.Sweeps {
		for _, ra := range sw.Replicas {
			if ra.Index == victim && ra.Err != nil {
				quarantineErrs = append(quarantineErrs, ra.Err)
				if len(ra.RepairErrs) != 2 {
					t.Errorf("repair history = %d errors, want the full budget of 2", len(ra.RepairErrs))
				}
			}
		}
	}
	if len(quarantineErrs) == 0 {
		t.Fatal("quarantined replica reported no error")
	}

	// Resume with the repair path healthy again: the journal replays the
	// quarantine, the re-attestation finds the (still corrupt) text,
	// repairs it, and readmits.
	for _, r := range f.Replicas() {
		r.Machine.SetFaultHook(nil)
	}
	ctl2, err := ResumeController(f, ctl.Journal().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl2.Run(applyLive(tpl)); err != nil {
		t.Fatal(err)
	}
	if f.Replicas()[victim].Quarantined() {
		t.Fatal("healed replica not readmitted on resume")
	}
	if got := len(f.Active()); got != 4 {
		t.Fatalf("Active() = %d after readmit, want 4", got)
	}
	readmitted := false
	for _, rec := range ctl2.Journal().Records() {
		if rec.Kind == RecAttest && AttestVerdict(rec.Attempt) == VerdictReadmit && int(rec.Replica) == victim {
			readmitted = true
		}
	}
	if !readmitted {
		t.Fatal("readmission not journaled")
	}
	rep, err := f.Replicas()[victim].Cust.Attest()
	if err != nil || !rep.Clean() {
		t.Fatalf("readmitted replica attests dirty: %v clean=%v", err, rep.Clean())
	}
}
