package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/faultinject"
)

// countingApply wraps the standard rollout payload with a per-replica
// invocation counter — the instrument behind the acceptance invariant
// "resume never repeats a committed rewrite": across a crash and its
// resume, every replica's payload must run exactly once.
func countingApply(tpl *template, counts []atomic.Int32) func(r *Replica) (core.Stats, error) {
	return func(r *Replica) (core.Stats, error) {
		counts[r.Index].Add(1)
		return r.Cust.DisableBlocks("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	}
}

// TestControllerCrashResumeSkipsCommitted: kill the controller at a
// journal record boundary mid-rollout, resume from the journal bytes,
// and prove the resumed controller finishes the fleet without ever
// re-running a committed replica's rewrite.
func TestControllerCrashResumeSkipsCommitted(t *testing.T) {
	tpl := bootTemplate(t)
	inj := faultinject.New(1)
	// 8 replicas -> 21 records -> 42 crash boundaries; 20 lands midway.
	inj.FailAt(faultinject.SiteFleetControllerCrash, 20)
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 8, Workers: 2, CanaryShards: 1, WaveSize: 4,
		Core: coreOpts(tpl), FaultHook: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]atomic.Int32, 8)
	apply := countingApply(tpl, counts)

	c := NewController(f, nil)
	res1, err := c.Run(apply)
	if !errors.Is(err, ErrControllerCrashed) {
		t.Fatalf("armed crash: err = %v, want ErrControllerCrashed", err)
	}
	if res1.Committed() == 8 || res1.Committed() == 0 {
		t.Fatalf("crash landed at the rollout edge (committed=%d); pick a better boundary", res1.Committed())
	}

	c2, err := ResumeController(f, c.Journal().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Run(apply)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("result does not report the resume")
	}
	if res2.Committed() != 8 {
		t.Fatalf("resumed rollout committed %d/8: %+v", res2.Committed(), res2.Outcomes)
	}
	if res2.SkippedCommitted < res1.Committed() {
		t.Fatalf("resume skipped %d replicas, journal proved at least %d committed",
			res2.SkippedCommitted, res1.Committed())
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("replica %d rewritten %d times across crash+resume, want exactly 1", i, n)
		}
	}
	// The resumed journal is a closed, decodable log: it extends the
	// crashed journal's clean prefix and ends with the done record.
	recs, err := DecodeJournal(c2.Journal().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if recs[len(recs)-1].Kind != RecDone {
		t.Fatalf("resumed journal ends with %s, want done", recs[len(recs)-1].Kind)
	}
	var sawResume bool
	for _, r := range recs {
		if r.Kind == RecResume {
			sawResume = true
			if int(r.Replica) != res2.SkippedCommitted {
				t.Fatalf("resume record counts %d skips, result says %d", r.Replica, res2.SkippedCommitted)
			}
		}
	}
	if !sawResume {
		t.Fatal("resumed journal has no resume record")
	}
	assertConverged(t, f, res2)
}

// TestControllerTornAppendResume: the fleet.journal.append fault tears
// a frame mid-write and kills the controller; resume must drop the
// torn tail, re-verify the replica whose outcome record died with the
// controller, and still never re-run a committed rewrite.
func TestControllerTornAppendResume(t *testing.T) {
	tpl := bootTemplate(t)
	inj := faultinject.New(2)
	// Appends run start, intents, outcomes, wave summaries; tearing the
	// 7th lands on a mid-rollout outcome record.
	inj.FailAt(faultinject.SiteFleetJournalAppend, 7)
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 8, Workers: 2, CanaryShards: 1, WaveSize: 4,
		Core: coreOpts(tpl), FaultHook: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]atomic.Int32, 8)
	apply := countingApply(tpl, counts)

	c := NewController(f, nil)
	if _, err := c.Run(apply); !errors.Is(err, ErrControllerCrashed) {
		t.Fatalf("torn append: err = %v, want ErrControllerCrashed", err)
	}
	data := c.Journal().Bytes()
	if _, err := DecodeJournal(data); err != nil {
		t.Fatalf("torn journal must decode to its clean prefix: %v", err)
	}

	res2, err := f.ResumeRollout(data, apply)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Committed() != 8 {
		t.Fatalf("resumed rollout committed %d/8", res2.Committed())
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("replica %d rewritten %d times across torn append+resume, want 1", i, n)
		}
	}
	assertConverged(t, f, res2)
}

// TestJournalResumeDeterminism is the byte-determinism acceptance
// test: two identical fleets driven with the same seed and the same
// crash point must journal byte-identical logs — through the crash
// AND through the resume. Virtual clocks, deterministic dispatch and
// content-addressed idents leave nothing wall-clock-shaped to diverge.
func TestJournalResumeDeterminism(t *testing.T) {
	tpl := bootTemplate(t)
	runOnce := func() ([]byte, *RolloutResult, []int32) {
		inj := faultinject.New(5)
		inj.FailAt(faultinject.SiteFleetControllerCrash, 30)
		f, err := New(tpl.m, tpl.pid, Config{
			Replicas: 8, Workers: 2, CanaryShards: 1, WaveSize: 4,
			Core: coreOpts(tpl), FaultHook: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]atomic.Int32, 8)
		apply := countingApply(tpl, counts)
		c := NewController(f, nil)
		if _, err := c.Run(apply); !errors.Is(err, ErrControllerCrashed) {
			t.Fatalf("armed crash: %v", err)
		}
		crashBytes := c.Journal().Bytes()
		c2, err := ResumeController(f, crashBytes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c2.Run(apply)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(c2.Journal().Bytes(), crashBytes) {
			t.Fatal("resumed journal does not extend the crashed journal")
		}
		flat := make([]int32, 8)
		for i := range counts {
			flat[i] = counts[i].Load()
		}
		return c2.Journal().Bytes(), res, flat
	}

	j1, res1, n1 := runOnce()
	j2, res2, n2 := runOnce()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same seed + crash point journaled different bytes: %d vs %d", len(j1), len(j2))
	}
	if res1.Committed() != 8 || res2.Committed() != 8 {
		t.Fatalf("committed %d / %d, want 8 / 8", res1.Committed(), res2.Committed())
	}
	if res1.SkippedCommitted != res2.SkippedCommitted {
		t.Fatalf("skip counts diverged: %d vs %d", res1.SkippedCommitted, res2.SkippedCommitted)
	}
	for i := range n1 {
		if n1[i] != 1 || n2[i] != 1 {
			t.Fatalf("replica %d attempts: %d vs %d, want exactly 1 in both runs", i, n1[i], n2[i])
		}
	}
}

// TestFleetChaosLeaseExpiry: a worker dies mid-lease (seed-varied
// victim); the lease expires on the virtual clock, the step requeues
// with backoff, and the retry commits the replica — the whole fleet
// still converges with exactly one payload run per replica.
func TestFleetChaosLeaseExpiry(t *testing.T) {
	tpl := bootTemplate(t)
	for seed := int64(0); seed < chaosSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed)
			inj.FailAt(faultinject.SiteFleetLeaseExpire, 1+int(seed)%6)
			f, err := New(tpl.m, tpl.pid, Config{
				Replicas: 6, Workers: 2, CanaryShards: 1, WaveSize: 2,
				Core: coreOpts(tpl), FaultHook: inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			counts := make([]atomic.Int32, 6)
			res, err := f.Rollout(countingApply(tpl, counts))
			if err != nil {
				t.Fatal(err)
			}
			if res.LeaseExpiries != 1 || res.Requeues != 1 {
				t.Fatalf("expiries=%d requeues=%d, want 1/1", res.LeaseExpiries, res.Requeues)
			}
			if res.Committed() != 6 {
				t.Fatalf("committed %d/6 after lease recovery: %+v", res.Committed(), res.Outcomes)
			}
			for i := range counts {
				if n := counts[i].Load(); n != 1 {
					t.Fatalf("replica %d applied %d times (dead lease must not run the payload)", i, n)
				}
			}
			if inj.Injected() == 0 {
				t.Fatal("armed lease fault never fired")
			}
			assertConverged(t, f, res)
		})
	}
}

// TestFleetLeaseBudgetExhausted: every lease on one step dies; after
// RetryBudget expiries the controller fails the step for good instead
// of spinning, and the zero-threshold wave halts the rollout with the
// replica untouched on the old version.
func TestFleetLeaseBudgetExhausted(t *testing.T) {
	tpl := bootTemplate(t)
	inj := faultinject.New(9)
	// Hit 1 is the canary's lease (survives); hits 2-4 kill all three
	// leases of replica 1's step.
	inj.FailTransient(faultinject.SiteFleetLeaseExpire, 2, 3)
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 2, Workers: 2, CanaryShards: 1, WaveSize: 1,
		Core: coreOpts(tpl), FaultHook: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]atomic.Int32, 2)
	res, err := f.Rollout(countingApply(tpl, counts))
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaseExpiries != 3 || res.Requeues != 2 {
		t.Fatalf("expiries=%d requeues=%d, want 3/2", res.LeaseExpiries, res.Requeues)
	}
	out := res.Outcomes[1]
	if out.Outcome != OutcomeFailed || !strings.Contains(out.Err.Error(), "retry budget exhausted") {
		t.Fatalf("replica 1 = %v (%v), want failed with exhausted budget", out.Outcome, out.Err)
	}
	if counts[1].Load() != 0 {
		t.Fatal("payload ran on a replica whose every lease died")
	}
	if !res.Halted || res.HaltedWave != 1 {
		t.Fatalf("exhausted step did not halt its zero-threshold wave: %+v", res)
	}
	if res.Outcomes[0].Outcome != OutcomeCommitted {
		t.Fatalf("canary = %v, want committed (its wave was healthy)", res.Outcomes[0].Outcome)
	}
	// The failed step's lanes paid the lease windows and backoff waits.
	if res.FleetTicks == 0 {
		t.Fatal("degenerate makespan")
	}
	assertConverged(t, f, res)
}

// TestFleetChaosControllerCrash is the fleet-scale acceptance sweep:
// 256 replicas, 20 seeds, the controller killed at a seed-varied
// journal record boundary (even seeds) or by a torn journal append
// (odd seeds). Every seed must resume from the journal to a fully
// converged fleet — every replica on the new version or pristine,
// never torn — with zero re-rewrites of committed replicas.
func TestFleetChaosControllerCrash(t *testing.T) {
	tpl := bootTemplate(t)
	const replicas = 256
	for seed := int64(0); seed < chaosSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed)
			// A full 256-replica rollout consults the crash site ~1060
			// times and the append site ~530 times; the armed hits below
			// stay inside those ranges so the kill always lands.
			if seed%2 == 0 {
				inj.FailAt(faultinject.SiteFleetControllerCrash, 1+int(seed*53)%1000)
			} else {
				inj.FailAt(faultinject.SiteFleetJournalAppend, 1+int(seed*37)%500)
			}
			f, err := New(tpl.m, tpl.pid, Config{
				Replicas: replicas, Workers: 8, CanaryShards: 4, WaveSize: 16,
				Core: coreOpts(tpl), FaultHook: inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			counts := make([]atomic.Int32, replicas)
			apply := countingApply(tpl, counts)

			c := NewController(f, nil)
			res1, err := c.Run(apply)
			if !errors.Is(err, ErrControllerCrashed) {
				t.Fatalf("armed kill never landed: err=%v committed=%d", err, res1.Committed())
			}
			if inj.Injected() == 0 {
				t.Fatal("no fault fired")
			}

			res2, err := f.ResumeRollout(c.Journal().Bytes(), apply)
			if err != nil {
				t.Fatal(err)
			}
			if !res2.Resumed {
				t.Fatal("result does not report the resume")
			}
			if res2.Committed() != replicas {
				t.Fatalf("resumed rollout committed %d/%d", res2.Committed(), replicas)
			}
			if res2.SkippedCommitted < res1.Committed() {
				t.Fatalf("skipped %d < journal-proven %d", res2.SkippedCommitted, res1.Committed())
			}
			for i := range counts {
				if n := counts[i].Load(); n != 1 {
					t.Fatalf("replica %d rewritten %d times across crash+resume, want exactly 1", i, n)
				}
			}
			assertConverged(t, f, res2)
		})
	}
}
