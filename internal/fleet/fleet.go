// Package fleet scales dynamic customization from one guest to N: a
// Fleet owns N replica machines spawned by copy-on-write cloning of a
// single booted template, shares their pristine checkpoints through a
// content-addressed page store (so N replicas cost ~1 guest of blob
// storage), and applies a rewrite across the fleet as a staged
// rollout — canary shards first, then waves — halting and restoring
// pristine state when a wave's failure rate crosses the threshold.
//
// The invariant the rollout maintains is per-replica atomicity lifted
// to the fleet: every replica ends a rollout either committed to the
// new version or running its pristine checkpoint. There is no torn
// state in between — core.Rewrite's transaction guarantees it per
// replica, and the halt path restores from the shared store whatever
// a replica's own rollback could not recover.
package fleet

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/obs"
	"github.com/dynacut/dynacut/internal/supervise"
)

// Fleet errors.
var (
	// ErrHalted aborts in-flight rewrites once the rollout has halted;
	// it surfaces wrapped in core.ErrAborted.
	ErrHalted = errors.New("fleet: rollout halted")
	// ErrNoReplicas rejects a config without replicas.
	ErrNoReplicas = errors.New("fleet: config needs at least one replica")
)

// rollbackTries bounds how often the halt path retries a pristine
// restore per replica before declaring the replica lost.
const rollbackTries = 3

// Config sizes and tunes a fleet.
type Config struct {
	// Replicas is the fleet size (required, >= 1).
	Replicas int
	// Workers bounds how many rewrites run concurrently within a wave
	// and sets the lane count of the virtual-time makespan model
	// (0 = 4). Workers 1 is the serial baseline.
	Workers int
	// CanaryShards is the size of the first wave (0 = 1, clamped to
	// Replicas). The canary wave must be fully healthy before the
	// remaining waves run: any canary failure halts the rollout.
	CanaryShards int
	// WaveSize is the batch size of the post-canary waves (0 = 4).
	WaveSize int
	// FailureThreshold is the fraction of a post-canary wave that may
	// fail without halting the rollout. 0 = any failure halts.
	FailureThreshold float64
	// Core is the per-replica customizer option template. Observer is
	// replaced with a per-replica observer; BeforeCommit is chained
	// after the fleet's halt check.
	Core core.Options
	// FaultHook, when non-nil, is installed on every replica machine
	// and consulted at the fleet.* sites — the chaos-testing harness.
	FaultHook kernel.FaultHook
	// Observer, when non-nil, receives the fleet-level timeline (wave
	// spans, halt/rollback points). nil allocates a private one.
	Observer *obs.Observer

	// Controller tuning (zero = defaults). LeaseTicks is the
	// virtual-clock lease a worker holds on a step before the
	// controller declares it dead and requeues; RetryBudget bounds
	// lease attempts per step; BackoffBase/BackoffCap shape the capped
	// exponential requeue backoff.
	LeaseTicks  uint64
	RetryBudget int
	BackoffBase uint64
	BackoffCap  uint64
	// Verify classifies a replica whose journal entry is torn (a
	// controller crash between lease and outcome): it must report
	// whether the rollout's rewrite committed on this replica. nil
	// asks the customizer whether any blocks are disabled — correct
	// for DisableBlocks payloads (with LivePatch set, the byte-wise
	// text check below is used instead); custom payloads should probe
	// the guest directly.
	Verify func(r *Replica) (bool, error)
	// LivePatch declares the rollout's steps request the live-patch
	// fast path for these blocks. Step intents are journaled with
	// ModeLivePatch, outcomes with the mode that actually ran, and —
	// critically for resume — a torn journal window is classified
	// byte-wise against the replica's live text (core.CountPatched)
	// instead of by disabled-block count: in-memory bookkeeping dies
	// with a crashed controller, but the text bytes cannot lie, and a
	// partially patched replica is surfaced as an error rather than
	// blindly re-patched. The apply closure should use
	// Customizer.DisableBlocksLive with the same blocks and policy.
	LivePatch *LivePatchSpec
	// OnStep, when non-nil, receives every scheduling event (lease,
	// expiry, requeue, outcome, skip, halt, crash) as the controller
	// dispatches — the incremental status stream.
	OnStep func(StepEvent)
	// Scrub enables the anti-entropy attestation sweep after every
	// wave: each active replica's live text root is collected and
	// compared against its expected-state oracle, diverged pages are
	// repaired in place, and replicas that exhaust RepairBudget are
	// quarantined (drained from later waves, journaled, re-attested on
	// resume before readmission).
	Scrub bool
	// RepairBudget bounds in-place repair attempts per replica per
	// sweep before quarantine (0 = 3).
	RepairBudget int
}

// LivePatchSpec names the block set a live-patch rollout applies, so
// the controller can verify replicas byte-wise on resume.
type LivePatchSpec struct {
	Blocks []coverage.AbsBlock
	Policy core.Policy
}

// StepMode is the rewrite path of one rollout step, journaled on
// intent and outcome records.
type StepMode uint8

const (
	// ModeTransaction: the full checkpoint → edit → restore cycle.
	ModeTransaction StepMode = iota
	// ModeLivePatch: the zero-downtime live-patch fast path (on an
	// intent record: requested; on an outcome record: taken).
	ModeLivePatch
	// ModeFellBack (outcome records only): the step requested a live
	// patch but fell back to the checkpoint transaction.
	ModeFellBack
)

func (m StepMode) String() string {
	switch m {
	case ModeTransaction:
		return "transaction"
	case ModeLivePatch:
		return "live-patch"
	case ModeFellBack:
		return "fell-back"
	default:
		return fmt.Sprintf("StepMode(%d)", int(m))
	}
}

// requestedMode is the mode journaled on intent records.
func (c Config) requestedMode() StepMode {
	if c.LivePatch != nil {
		return ModeLivePatch
	}
	return ModeTransaction
}

// outcomeMode derives the journaled outcome mode from the rewrite's
// stats: what the step actually did, not what was requested.
func (c Config) outcomeMode(s core.Stats) StepMode {
	switch {
	case s.LivePatched:
		return ModeLivePatch
	case s.FellBack:
		return ModeFellBack
	default:
		return ModeTransaction
	}
}

// Replica is one fleet member: an independent machine cloned from the
// template, its customizer, its observer, and its pristine anchor in
// the shared page store.
type Replica struct {
	Index   int
	Machine *kernel.Machine
	Cust    *core.Customizer
	Obs     *obs.Observer
	// PristineID is the replica's pristine checkpoint in the fleet's
	// shared page store — the rollback anchor of the staged rollout.
	PristineID uint32

	pristineRoot int
	// quarantined drains the replica from waves and sweeps after its
	// repair budget was exhausted; set and cleared only through the
	// journaled quarantine/readmit protocol.
	quarantined atomic.Bool
}

// Quarantined reports whether the replica is drained from the fleet
// pending re-attestation.
func (r *Replica) Quarantined() bool { return r.quarantined.Load() }

// Outcome classifies where a replica ended up after a rollout.
type Outcome int

const (
	// OutcomePending: the replica's wave never ran (halt upstream);
	// the guest is untouched on the old version.
	OutcomePending Outcome = iota
	// OutcomeCommitted: the rewrite committed; new version.
	OutcomeCommitted
	// OutcomeAborted: the rewrite stopped pre-commit (halt arrived or
	// the wave fault site fired); the guest is untouched.
	OutcomeAborted
	// OutcomeFailed: the rewrite failed before its commit point (bad
	// dump, corrupt image, failed edit); the guest is untouched.
	OutcomeFailed
	// OutcomeRolledBack: the rewrite failed past the commit point and
	// core restored the pre-edit images; old version, connections kept.
	OutcomeRolledBack
	// OutcomeRestored: the fleet restored the replica's pristine
	// checkpoint from the shared store (halt path, or recovery of a
	// replica whose own rollback failed).
	OutcomeRestored
	// OutcomeLost: unrecoverable — both core's rollback and the
	// store-based restore failed.
	OutcomeLost
)

func (o Outcome) String() string {
	switch o {
	case OutcomePending:
		return "pending"
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	case OutcomeFailed:
		return "failed"
	case OutcomeRolledBack:
		return "rolled-back"
	case OutcomeRestored:
		return "restored"
	case OutcomeLost:
		return "lost"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// OldVersion reports whether the outcome leaves the replica running
// its pre-rollout code. Exactly one of OldVersion, the committed new
// version, and OutcomeLost holds for every final outcome.
func (o Outcome) OldVersion() bool {
	switch o {
	case OutcomePending, OutcomeAborted, OutcomeFailed, OutcomeRolledBack, OutcomeRestored:
		return true
	default:
		return false
	}
}

// ReplicaOutcome is one replica's rollout result.
type ReplicaOutcome struct {
	Index   int
	Outcome Outcome
	// Stats is the core rewrite cost (zero if the rewrite never ran).
	Stats core.Stats
	// Ticks is the virtual time the replica's machine spent in the
	// rollout (floored at 1 for an attempted replica, so makespan
	// math never degenerates).
	Ticks uint64
	// Err is the rewrite or recovery failure. It is nil whenever the
	// replica ended healthy — committed, or successfully restored to
	// pristine (even when earlier restore tries failed; see
	// RestoreErrs for that history).
	Err error
	// Attempts counts how many times the rollout payload actually ran
	// on this replica under this controller — the counter the resume
	// tests use to prove committed replicas are never re-rewritten.
	Attempts int
	// RestoreErrs is the retry history of the pristine-restore path:
	// one error per failed try that a later try recovered from. A
	// replica restored on the first try has none.
	RestoreErrs []error
}

// WaveResult summarizes one wave.
type WaveResult struct {
	Index    int
	Canary   bool
	Replicas []int
	Failures int
}

// RolloutResult is the fleet-level outcome of one staged rollout.
type RolloutResult struct {
	Waves    []WaveResult
	Outcomes []ReplicaOutcome
	// Halted reports that a wave crossed the failure threshold:
	// its committed replicas were restored to pristine and all later
	// waves were cancelled. HaltedWave is that wave's index.
	Halted     bool
	HaltedWave int
	// SerialTicks is the summed virtual-time cost of the attempted
	// rewrites — the makespan a one-lane rollout would pay.
	// FleetTicks is the makespan the controller's worker lanes paid
	// on the fleet's shared virtual-time axis: list scheduling over
	// the lanes, wave barriers, lease expiries and backoff waits
	// included.
	SerialTicks uint64
	FleetTicks  uint64
	// Resumed reports this result came from a journal-resumed
	// controller; SkippedCommitted is how many replicas it skipped
	// because the journal proved them committed.
	Resumed          bool
	SkippedCommitted int
	// LeaseExpiries / Requeues count worker leases that expired on
	// the virtual clock and the steps requeued with backoff.
	LeaseExpiries int
	Requeues      int
	// Sweeps holds the per-wave attestation sweep results (Config.Scrub
	// rollouts only), in wave order.
	Sweeps []SweepResult
}

// Committed counts replicas that ended on the new version.
func (r *RolloutResult) Committed() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Outcome == OutcomeCommitted {
			n++
		}
	}
	return n
}

// Fleet is a set of replica guests rewritten as one unit.
type Fleet struct {
	cfg      Config
	store    *criu.PageStore
	replicas []*Replica
	obs      *obs.Observer
	halted   atomic.Bool
	sups     []*supervise.Supervisor
}

// New clones the template machine into cfg.Replicas independent
// replicas and deposits each replica's pristine checkpoint into one
// shared content-addressed page store. The template must hold a
// booted guest rooted at rootPID; it is left untouched and is not
// part of the fleet. Host-side instrumentation is per-replica: each
// clone gets its own observer and customizer, plus cfg.FaultHook if
// set.
func New(template *kernel.Machine, rootPID int, cfg Config) (*Fleet, error) {
	if cfg.Replicas < 1 {
		return nil, ErrNoReplicas
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.CanaryShards <= 0 {
		cfg.CanaryShards = 1
	}
	if cfg.CanaryShards > cfg.Replicas {
		cfg.CanaryShards = cfg.Replicas
	}
	if cfg.WaveSize <= 0 {
		cfg.WaveSize = 4
	}
	f := &Fleet{cfg: cfg, store: criu.NewPageStore(), obs: cfg.Observer}
	if f.obs == nil {
		f.obs = obs.New(obs.DefaultCapacity)
	}
	if cfg.FaultHook != nil {
		// The shared store participates in chaos runs too: the
		// criu.store.rot site silently corrupts a blob in place on read.
		f.store.SetFaultHook(cfg.FaultHook)
	}

	f.obs.PhaseStart("fleet.spawn", 0)
	for i := 0; i < cfg.Replicas; i++ {
		if cfg.FaultHook != nil {
			if err := cfg.FaultHook.Fault(faultinject.SiteFleetClone, i); err != nil {
				err = fmt.Errorf("fleet: cloning replica %d: %w", i, err)
				f.obs.PhaseEnd("fleet.spawn", 0, err)
				return nil, err
			}
		}
		m := template.Clone()
		if cfg.FaultHook != nil {
			m.SetFaultHook(cfg.FaultHook)
		}
		ro := obs.New(obs.DefaultCapacity)
		m.SetObserver(ro)

		opts := cfg.Core
		opts.Observer = ro
		// All replicas seal their attestation oracles into the fleet's
		// shared content-addressed store: N identical guests' text
		// deposits dedup to one, and any replica's repair can source
		// expected bytes another replica deposited.
		opts.AttestStore = f.store
		userBC := cfg.Core.BeforeCommit
		opts.BeforeCommit = func(attempt int) error {
			if f.halted.Load() {
				return ErrHalted
			}
			if userBC != nil {
				return userBC(attempt)
			}
			return nil
		}
		cust, err := core.New(m, rootPID, opts)
		if err != nil {
			f.obs.PhaseEnd("fleet.spawn", 0, err)
			return nil, fmt.Errorf("fleet: replica %d customizer: %w", i, err)
		}
		pristine, err := cust.Checkpoint()
		if err != nil {
			f.obs.PhaseEnd("fleet.spawn", 0, err)
			return nil, fmt.Errorf("fleet: replica %d pristine checkpoint: %w", i, err)
		}
		ident, err := f.store.Deposit(pristine)
		if err != nil {
			f.obs.PhaseEnd("fleet.spawn", 0, err)
			return nil, fmt.Errorf("fleet: replica %d deposit: %w", i, err)
		}
		f.replicas = append(f.replicas, &Replica{
			Index: i, Machine: m, Cust: cust, Obs: ro,
			PristineID: ident, pristineRoot: cust.PID(),
		})
	}
	f.obs.PhaseEnd("fleet.spawn", 0, nil)
	st := f.store.Stats()
	f.obs.Add("fleet.replicas", int64(len(f.replicas)))
	f.obs.SetGauge("fleet.store.bytes", int64(st.StoredBytes))
	f.obs.SetGauge("fleet.store.pages", int64(st.UniquePages))
	return f, nil
}

// Replicas returns the fleet members in index order.
func (f *Fleet) Replicas() []*Replica { return append([]*Replica(nil), f.replicas...) }

// Active returns the fleet members currently serving — every replica
// not quarantined by the attestation sweep. This is the set a load
// balancer should route to.
func (f *Fleet) Active() []*Replica {
	var out []*Replica
	for _, r := range f.replicas {
		if !r.Quarantined() {
			out = append(out, r)
		}
	}
	return out
}

// Store returns the shared content-addressed page store.
func (f *Fleet) Store() *criu.PageStore { return f.store }

// Halt stops the rollout: waves that have not started are cancelled
// and in-flight rewrites abort at their next pre-commit check.
func (f *Fleet) Halt() { f.halted.Store(true) }

// Halted reports whether the fleet is in the halted state.
func (f *Fleet) Halted() bool { return f.halted.Load() }

// Resume clears the halted state so a new rollout can run.
func (f *Fleet) Resume() { f.halted.Store(false) }

// waves slices the replica indices into the canary wave followed by
// batches of WaveSize.
func (f *Fleet) waves() [][]int {
	var out [][]int
	idx := make([]int, len(f.replicas))
	for i := range idx {
		idx[i] = i
	}
	c := f.cfg.CanaryShards
	out = append(out, idx[:c])
	for lo := c; lo < len(idx); lo += f.cfg.WaveSize {
		hi := lo + f.cfg.WaveSize
		if hi > len(idx) {
			hi = len(idx)
		}
		out = append(out, idx[lo:hi])
	}
	return out
}

// Rollout applies one rewrite across the fleet as a staged rollout:
// the canary wave first, then the remaining replicas in waves, each
// wave's steps leased to concurrent worker lanes by the rollout
// controller. A wave whose failure rate crosses the threshold (any
// failure, for the canary) halts the rollout: the failed wave's
// committed replicas are restored to their pristine checkpoints from
// the shared store, in-flight rewrites abort at the pre-commit gate,
// and later waves never start. Replicas whose own rollback failed are
// restored from the store even when the rollout is not halting — the
// fleet's second-chance recovery. apply runs once per leased attempt
// per replica and must touch only that replica's state.
//
// Rollout is sugar for NewController(f, nil).Run(apply): every
// rollout is journaled, and on an injected controller crash the
// returned error is ErrControllerCrashed. Use NewController directly
// to keep the journal for ResumeController.
func (f *Fleet) Rollout(apply func(r *Replica) (core.Stats, error)) (*RolloutResult, error) {
	return NewController(f, nil).Run(apply)
}

// ResumeRollout finishes a rollout whose controller died, from its
// journal bytes: committed replicas are skipped, torn journal windows
// are re-verified against the live replicas, and an interrupted halt
// protocol is completed. Sugar for ResumeController + Run.
func (f *Fleet) ResumeRollout(journal []byte, apply func(r *Replica) (core.Stats, error)) (*RolloutResult, error) {
	c, err := ResumeController(f, journal)
	if err != nil {
		return nil, err
	}
	return c.Run(apply)
}

// restorePristine rebuilds a replica from its pristine checkpoint in
// the shared store, with bounded retries against injected faults. On
// success the replica's customizer is rebound to the restored root,
// Err is cleared (a restored replica is healthy), and the failed
// tries' errors are kept in RestoreErrs.
func (f *Fleet) restorePristine(out *ReplicaOutcome) {
	r := f.replicas[out.Index]
	out.RestoreErrs = nil
	for try := 1; try <= rollbackTries; try++ {
		if err := r.Machine.Fault(faultinject.SiteFleetRollback, r.Index); err != nil {
			out.RestoreErrs = append(out.RestoreErrs, err)
			continue
		}
		// Tear down whatever tree is live (children before parents).
		procs := r.Machine.Processes()
		for i := len(procs) - 1; i >= 0; i-- {
			r.Machine.Kill(procs[i].PID())
			r.Machine.Remove(procs[i].PID())
		}
		procs2, pidMap, err := criu.RestoreFromStore(r.Machine, f.store, r.PristineID)
		if err != nil {
			out.RestoreErrs = append(out.RestoreErrs, err)
			continue
		}
		newRoot := pidMap[r.pristineRoot]
		if newRoot == 0 && len(procs2) > 0 {
			newRoot = procs2[0].PID()
		}
		r.Cust.Rebind(newRoot)
		out.Outcome = OutcomeRestored
		out.Err = nil
		f.obs.Point("fleet.rollback", int64(out.Index))
		return
	}
	out.Outcome = OutcomeLost
	var lastErr error
	if n := len(out.RestoreErrs); n > 0 {
		lastErr = out.RestoreErrs[n-1]
	}
	out.Err = fmt.Errorf("fleet: replica %d pristine restore failed after %d tries: %w",
		out.Index, rollbackTries, lastErr)
}

// AttachSupervisors puts one supervisor on every replica. mk builds
// the per-replica config (canary probes must target that replica's
// machine). Supervisors observe through the replica's own observer
// unless mk says otherwise.
func (f *Fleet) AttachSupervisors(mk func(r *Replica) supervise.Config) error {
	for _, r := range f.replicas {
		cfg := mk(r)
		if cfg.Observer == nil {
			cfg.Observer = r.Obs
		}
		s := supervise.New(r.Machine, r.Cust, cfg)
		if err := s.Attach(); err != nil {
			return fmt.Errorf("fleet: attaching supervisor to replica %d: %w", r.Index, err)
		}
		f.sups = append(f.sups, s)
	}
	return nil
}

// Supervisors returns the attached per-replica supervisors (empty
// before AttachSupervisors).
func (f *Fleet) Supervisors() []*supervise.Supervisor {
	return append([]*supervise.Supervisor(nil), f.sups...)
}

// Status aggregates the per-replica supervisor snapshots into one
// fleet-level status. Before AttachSupervisors it reports zero
// instances.
type Status struct {
	Replicas  []supervise.Status
	Aggregate supervise.AggregateStatus
}

// Status snapshots every attached supervisor and folds the snapshots
// into a fleet-level aggregate.
func (f *Fleet) Status() Status {
	var st Status
	for _, s := range f.sups {
		st.Replicas = append(st.Replicas, s.Status())
	}
	st.Aggregate = supervise.Aggregate(st.Replicas...)
	return st
}

// Timeline merges the fleet-level event stream with every replica's,
// each replica's events tagged "r<i>/", ordered on the shared virtual
// clock. This is the one-pane-of-glass view of a rollout: wave spans
// interleaved with each replica's checkpoint/edit/restore phases.
func (f *Fleet) Timeline() []obs.Event {
	streams := [][]obs.Event{f.obs.Events()}
	for _, r := range f.replicas {
		streams = append(streams, obs.Tag(r.Obs.Events(), fmt.Sprintf("r%d/", r.Index)))
	}
	return obs.MergeTimelines(streams...)
}

// Observer returns the fleet-level observer.
func (f *Fleet) Observer() *obs.Observer { return f.obs }
