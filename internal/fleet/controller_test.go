package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/supervise"
)

// TestControllerJournalShape: a clean rollout journals a start record,
// one intent and one outcome per replica, one summary per wave, and a
// done record — and the serialized bytes decode back to exactly the
// records the controller committed.
func TestControllerJournalShape(t *testing.T) {
	tpl := bootTemplate(t)
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 6, Workers: 2, CanaryShards: 1, WaveSize: 2,
		Core: coreOpts(tpl),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(f, nil)
	res, err := c.Run(disableWebdav(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed() != 6 {
		t.Fatalf("committed = %d/6", res.Committed())
	}

	recs := c.Journal().Records()
	if recs[0].Kind != RecStart || recs[0].Replica != 6 || recs[0].Attempt != 2 {
		t.Fatalf("first record = %+v, want start{replicas:6, lanes:2}", recs[0])
	}
	last := recs[len(recs)-1]
	if last.Kind != RecDone || last.Replica != 6 {
		t.Fatalf("last record = %+v, want done{committed:6}", last)
	}
	counts := map[RecKind]int{}
	for _, r := range recs {
		counts[r.Kind]++
		if r.Kind == RecOutcome {
			if r.Outcome != OutcomeCommitted {
				t.Fatalf("outcome record %+v in a clean rollout", r)
			}
			// Every commit is anchored in the shared store: the recorded
			// checkpoint ident must be materializable.
			if r.Ident == 0 || !f.Store().Contains(r.Ident) {
				t.Fatalf("outcome record %+v: post-commit ident not in store", r)
			}
		}
	}
	// Waves: canary of 1, then 2+2+1.
	want := map[RecKind]int{RecStart: 1, RecIntent: 6, RecOutcome: 6, RecWaveDone: 4, RecDone: 1}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("journal has %d %s records, want %d (all: %v)", counts[k], k, n, counts)
		}
	}

	decoded, err := DecodeJournal(c.Journal().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, recs) {
		t.Fatal("serialized journal does not decode to the committed records")
	}

	// One attempt per replica — no step ever ran twice.
	for i, o := range res.Outcomes {
		if o.Attempts != 1 {
			t.Fatalf("replica %d: %d attempts, want 1", i, o.Attempts)
		}
	}
}

// TestRestorePristineRetryClearsErr is the regression test for the
// stale-lastErr bug: a pristine restore that fails once and then
// succeeds used to report the replica healthy (OutcomeRestored) while
// still carrying the first try's error in Err. A restored replica must
// have Err nil; the retry history lives in RestoreErrs.
func TestRestorePristineRetryClearsErr(t *testing.T) {
	tpl := bootTemplate(t)
	inj := faultinject.New(3)
	inj.FailOnce(faultinject.SiteFleetRollback)
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 3, Workers: 1, CanaryShards: 1, WaveSize: 2,
		Core: coreOpts(tpl), FaultHook: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Canary commits; in wave 1 replica 1 commits and replica 2 fails,
	// halting the wave and forcing replica 1 through the faulted
	// restore path: try 1 is injected to fail, try 2 succeeds.
	res, err := f.Rollout(func(r *Replica) (core.Stats, error) {
		if r.Index == 2 {
			return core.Stats{}, fmt.Errorf("payload failure on replica %d", r.Index)
		}
		return r.Cust.DisableBlocks("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[1]
	if out.Outcome != OutcomeRestored {
		t.Fatalf("replica 1 = %v, want restored", out.Outcome)
	}
	if out.Err != nil {
		t.Fatalf("restored replica still carries an error: %v", out.Err)
	}
	if len(out.RestoreErrs) != 1 || !errors.Is(out.RestoreErrs[0], faultinject.ErrInjected) {
		t.Fatalf("retry history = %v, want the one injected failure", out.RestoreErrs)
	}
	assertConverged(t, f, res)
}

// TestMidWaveHaltAbortsInFlight: Halt() landing while a wave's
// rewrites are in flight must stop them at the pre-commit gate — the
// BeforeCommit hook — with every in-flight guest untouched, and cancel
// all later waves. The two wave replicas coordinate through a channel
// so the halt provably lands mid-wave, not between waves.
func TestMidWaveHaltAbortsInFlight(t *testing.T) {
	tpl := bootTemplate(t)
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 5, Workers: 2, CanaryShards: 1, WaveSize: 2,
		Core: coreOpts(tpl),
	})
	if err != nil {
		t.Fatal(err)
	}
	halted := make(chan struct{})
	res, err := f.Rollout(func(r *Replica) (core.Stats, error) {
		switch r.Index {
		case 1:
			// First wave-1 worker: pull the brake mid-wave, then try to
			// finish its own rewrite — which must now refuse to commit.
			f.Halt()
			close(halted)
		case 2:
			// Sibling worker: provably still in flight when the halt
			// lands.
			<-halted
		}
		return r.Cust.DisableBlocks("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.HaltedWave != 1 {
		t.Fatalf("mid-wave halt not honored: %+v", res)
	}
	// The canary committed in its own healthy wave and keeps the new
	// version; both in-flight rewrites aborted pre-commit; the last
	// wave never started.
	if res.Outcomes[0].Outcome != OutcomeCommitted {
		t.Fatalf("canary = %v, want committed", res.Outcomes[0].Outcome)
	}
	for _, i := range []int{1, 2} {
		o := res.Outcomes[i]
		if o.Outcome != OutcomeAborted {
			t.Fatalf("in-flight replica %d = %v (%v), want aborted at pre-commit", i, o.Outcome, o.Err)
		}
		if !errors.Is(o.Err, core.ErrAborted) || !strings.Contains(o.Err.Error(), ErrHalted.Error()) {
			t.Fatalf("replica %d abort error = %v, want core.ErrAborted wrapping the halt", i, o.Err)
		}
	}
	for _, i := range []int{3, 4} {
		if o := res.Outcomes[i].Outcome; o != OutcomePending {
			t.Fatalf("cancelled replica %d = %v, want pending", i, o)
		}
	}
	assertConverged(t, f, res)
}

// TestControllerStepStreamAndStatus: the controller streams every
// scheduling event through Config.OnStep, and Status() snapshots taken
// mid-rollout show monotone progress with the per-replica supervisors
// folded in through supervise.Aggregate.
func TestControllerStepStreamAndStatus(t *testing.T) {
	tpl := bootTemplate(t)
	var c *Controller
	var events []StepEvent
	var snaps []ControllerStatus
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 6, Workers: 2, CanaryShards: 1, WaveSize: 2,
		Core: coreOpts(tpl),
		OnStep: func(ev StepEvent) {
			events = append(events, ev)
			if ev.Kind == "outcome" {
				snaps = append(snaps, c.Status())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = f.AttachSupervisors(func(r *Replica) supervise.Config {
		rm := r.Machine
		return supervise.Config{Canary: func() error { return healthProbe(rm, 0) }}
	})
	if err != nil {
		t.Fatal(err)
	}
	c = NewController(f, nil)
	res, err := c.Run(disableWebdav(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed() != 6 {
		t.Fatalf("committed = %d/6", res.Committed())
	}

	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds["lease"] != 6 || kinds["outcome"] != 6 {
		t.Fatalf("event stream = %v, want 6 leases and 6 outcomes", kinds)
	}
	if kinds["expire"] != 0 || kinds["requeue"] != 0 || kinds["crash"] != 0 {
		t.Fatalf("clean rollout streamed failure events: %v", kinds)
	}

	// Progress is monotone and ends complete; the supervise fold sees
	// the whole fleet at every snapshot.
	if len(snaps) != 6 {
		t.Fatalf("%d status snapshots, want 6", len(snaps))
	}
	for i, st := range snaps {
		if i > 0 && st.Done < snaps[i-1].Done {
			t.Fatalf("Done regressed: %d -> %d", snaps[i-1].Done, st.Done)
		}
		if st.Supervise.Instances != 6 || st.Supervise.Attached != 6 {
			t.Fatalf("snapshot %d supervise fold = %+v, want 6 attached instances", i, st.Supervise)
		}
		if st.Crashed || st.Halted || st.Resumed {
			t.Fatalf("snapshot %d reports crash/halt/resume in a clean rollout: %+v", i, st)
		}
	}
	final := snaps[len(snaps)-1]
	if final.Done != 6 {
		t.Fatalf("final snapshot Done = %d, want 6", final.Done)
	}
	mid := snaps[2]
	if mid.Done == 0 || mid.Done == 6 {
		t.Fatalf("mid-rollout snapshot should show partial progress, got Done=%d", mid.Done)
	}
}
