package fleet

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/faultinject"
)

// bootLiveTemplate boots the standard template and pre-installs the
// SIGTRAP handler library via one transaction — the fleet-template
// preparation that lets every CoW clone qualify for the live-patch
// fast path. The returned template's pid is the post-injection root.
func bootLiveTemplate(t *testing.T) *template {
	t.Helper()
	tpl := bootTemplate(t)
	c, err := core.New(tpl.m, tpl.pid, core.Options{RedirectTo: tpl.redirect})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InstallHandler(); err != nil {
		t.Fatalf("install handler: %v", err)
	}
	tpl.pid = c.PID()
	return tpl
}

// liveConfig is the standard live-patch fleet config.
func liveConfig(tpl *template, replicas, workers, canary, wave int) Config {
	return Config{
		Replicas: replicas, Workers: workers, CanaryShards: canary, WaveSize: wave,
		Core:      coreOpts(tpl),
		LivePatch: &LivePatchSpec{Blocks: tpl.blocks, Policy: core.PolicyBlockEntry},
	}
}

// countingApplyLive is countingApply on the fast path.
func countingApplyLive(tpl *template, counts []atomic.Int32) func(r *Replica) (core.Stats, error) {
	return func(r *Replica) (core.Stats, error) {
		counts[r.Index].Add(1)
		return r.Cust.DisableBlocksLive("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	}
}

// TestJournalModeRoundTrip: the v2 record format must carry the step
// mode through encode/decode for every kind and mode.
func TestJournalModeRoundTrip(t *testing.T) {
	for _, mode := range []StepMode{ModeTransaction, ModeLivePatch, ModeFellBack} {
		r := Record{Kind: RecIntent, Replica: 3, Wave: 1, Attempt: 2,
			Outcome: OutcomeCommitted, Ticks: 77, Ident: 5, VClock: 123, Mode: mode, Note: "x"}
		got, err := decodeRecord(encodeRecord(r), journalMagic)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if got != r {
			t.Fatalf("round trip lost data:\n got %+v\nwant %+v", got, r)
		}
	}
}

// TestFleetLivePatchRollout: a staged rollout over the fast path
// converges the whole fleet with zero fallbacks, and the journal
// records ModeLivePatch on both the intents and the outcomes.
func TestFleetLivePatchRollout(t *testing.T) {
	tpl := bootLiveTemplate(t)
	f, err := New(tpl.m, tpl.pid, liveConfig(tpl, 6, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(f, nil)
	res, err := c.Run(func(r *Replica) (core.Stats, error) {
		return r.Cust.DisableBlocksLive("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed() != 6 {
		t.Fatalf("committed %d/6: %+v", res.Committed(), res.Outcomes)
	}
	for _, o := range res.Outcomes {
		if !o.Stats.LivePatched || o.Stats.FellBack {
			t.Fatalf("replica %d not live-patched: %+v (reason %q)",
				o.Index, o.Stats, o.Stats.FallbackReason)
		}
		if o.Stats.Downtime != 0 {
			t.Errorf("replica %d live patch downtime %v, want 0", o.Index, o.Stats.Downtime)
		}
	}
	recs, err := DecodeJournal(c.Journal().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	intents, outcomes := 0, 0
	for _, r := range recs {
		switch r.Kind {
		case RecIntent:
			intents++
			if r.Mode != ModeLivePatch {
				t.Fatalf("intent for replica %d journaled mode %v, want live-patch", r.Replica, r.Mode)
			}
		case RecOutcome:
			outcomes++
			if r.Mode != ModeLivePatch {
				t.Fatalf("outcome for replica %d journaled mode %v, want live-patch", r.Replica, r.Mode)
			}
		}
	}
	if intents != 6 || outcomes != 6 {
		t.Fatalf("journal has %d intents / %d outcomes, want 6/6", intents, outcomes)
	}
	assertConverged(t, f, res)
}

// TestFleetLivePatchFallbackJournalsMode: a replica that cannot take
// the fast path (its apply uses a policy the live path refuses) still
// commits via the transaction, and its outcome record says so:
// ModeFellBack, distinguishable from both clean paths.
func TestFleetLivePatchFallbackJournalsMode(t *testing.T) {
	tpl := bootLiveTemplate(t)
	cfg := liveConfig(tpl, 2, 1, 1, 1)
	cfg.LivePatch = &LivePatchSpec{Blocks: tpl.blocks, Policy: core.PolicyUnmapPages}
	f, err := New(tpl.m, tpl.pid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(f, nil)
	res, err := c.Run(func(r *Replica) (core.Stats, error) {
		return r.Cust.DisableBlocksLive("webdav-write", tpl.blocks, core.PolicyUnmapPages)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed() != 2 {
		t.Fatalf("committed %d/2: %+v", res.Committed(), res.Outcomes)
	}
	for _, o := range res.Outcomes {
		if o.Stats.LivePatched || !o.Stats.FellBack {
			t.Fatalf("replica %d stats %+v, want a fallback", o.Index, o.Stats)
		}
	}
	recs, err := DecodeJournal(c.Journal().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		switch r.Kind {
		case RecIntent:
			if r.Mode != ModeLivePatch {
				t.Fatalf("intent mode %v, want the requested live-patch", r.Mode)
			}
		case RecOutcome:
			if r.Mode != ModeFellBack {
				t.Fatalf("outcome mode %v, want fell-back", r.Mode)
			}
		}
	}
}

// TestFleetLivePatchTornAppendResume is the resume double-apply
// regression test: the controller dies after a live patch committed
// but before its outcome record survived. Resume must classify the
// replica byte-wise (all blocks INT3 -> committed), skip it, and never
// run the payload again — a second live patch would record INT3 as the
// "original" bytes and poison every later EnableBlocks.
func TestFleetLivePatchTornAppendResume(t *testing.T) {
	tpl := bootLiveTemplate(t)
	inj := faultinject.New(2)
	// The 7th append is a mid-rollout outcome record (start, canary
	// intent+outcome, wave-done, then wave intents/outcomes).
	inj.FailAt(faultinject.SiteFleetJournalAppend, 7)
	cfg := liveConfig(tpl, 8, 2, 1, 4)
	cfg.FaultHook = inj
	f, err := New(tpl.m, tpl.pid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]atomic.Int32, 8)
	apply := countingApplyLive(tpl, counts)

	c := NewController(f, nil)
	if _, err := c.Run(apply); !errors.Is(err, ErrControllerCrashed) {
		t.Fatalf("torn append: err = %v, want ErrControllerCrashed", err)
	}

	res2, err := f.ResumeRollout(c.Journal().Bytes(), apply)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Committed() != 8 {
		t.Fatalf("resumed rollout committed %d/8", res2.Committed())
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("replica %d live-patched %d times across crash+resume, want exactly 1", i, n)
		}
	}
	assertConverged(t, f, res2)
}

// TestFleetLivePatchTornTextRefusesResume: a journal with an open
// live-patch intent over a replica whose text is only partially INT3
// is unclassifiable — neither committed nor pristine. Resume must
// refuse with a torn-window error instead of re-patching (or worse,
// trusting DisabledBlockCount's lost in-memory bookkeeping).
func TestFleetLivePatchTornTextRefusesResume(t *testing.T) {
	tpl := bootLiveTemplate(t)
	f, err := New(tpl.m, tpl.pid, liveConfig(tpl, 2, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	victim := f.Replicas()[0]
	filtered := victim.Cust.FilterProtected(tpl.blocks)
	if len(filtered) < 2 {
		t.Skipf("need >= 2 blocks to tear, got %d", len(filtered))
	}

	// The torn window a crash mid-patch leaves behind: one block's
	// entry is INT3, the rest are pristine, and the journal holds an
	// intent with no outcome.
	procs := victim.Machine.Processes()
	if len(procs) == 0 {
		t.Fatal("victim replica has no processes")
	}
	if err := procs[0].Mem().Write(filtered[0].Addr, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	j := NewJournal()
	for _, r := range []Record{
		{Kind: RecStart, Replica: 2, Wave: 2, Attempt: 1},
		{Kind: RecIntent, Replica: 0, Wave: 0, Attempt: 1, Mode: ModeLivePatch},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	_, err = f.ResumeRollout(j.Bytes(), countingApplyLive(tpl, make([]atomic.Int32, 2)))
	if err == nil {
		t.Fatal("resume classified a half-patched replica")
	}
	if !strings.Contains(err.Error(), "cannot classify") || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("error %q does not name the torn window", err)
	}
}

// TestFleetChaosControllerCrashLivePatch extends the controller-crash
// chaos sweep with live-patch crash points: a fleet on the fast path,
// the controller killed at a seed-varied record boundary (even seeds)
// or by a torn journal append (odd seeds). Every seed must resume to
// a fully converged fleet with exactly one live patch per replica —
// byte-wise verification, never a blind re-patch.
func TestFleetChaosControllerCrashLivePatch(t *testing.T) {
	tpl := bootLiveTemplate(t)
	const replicas = 64
	for seed := int64(0); seed < chaosSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed)
			// A 64-replica rollout consults the crash site ~270 times
			// and the append site ~135 times.
			if seed%2 == 0 {
				inj.FailAt(faultinject.SiteFleetControllerCrash, 1+int(seed*53)%250)
			} else {
				inj.FailAt(faultinject.SiteFleetJournalAppend, 1+int(seed*37)%130)
			}
			cfg := liveConfig(tpl, replicas, 4, 2, 8)
			cfg.FaultHook = inj
			f, err := New(tpl.m, tpl.pid, cfg)
			if err != nil {
				t.Fatal(err)
			}
			counts := make([]atomic.Int32, replicas)
			apply := countingApplyLive(tpl, counts)

			c := NewController(f, nil)
			res1, err := c.Run(apply)
			if !errors.Is(err, ErrControllerCrashed) {
				t.Fatalf("armed kill never landed: err=%v committed=%d", err, res1.Committed())
			}
			if inj.Injected() == 0 {
				t.Fatal("no fault fired")
			}

			res2, err := f.ResumeRollout(c.Journal().Bytes(), apply)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Committed() != replicas {
				t.Fatalf("resumed rollout committed %d/%d", res2.Committed(), replicas)
			}
			for i := range counts {
				if n := counts[i].Load(); n != 1 {
					t.Fatalf("replica %d live-patched %d times across crash+resume, want exactly 1", i, n)
				}
			}
			// No replica fell back: the template's handler made every
			// clone eligible, and crash recovery must not degrade that.
			for _, o := range res2.Outcomes {
				if o.Stats.Attempts > 0 && !o.Stats.LivePatched {
					t.Fatalf("replica %d degraded to %v (reason %q)",
						o.Index, o.Outcome, o.Stats.FallbackReason)
				}
			}
			assertConverged(t, f, res2)
		})
	}
}
