package fleet

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/supervise"
	"github.com/dynacut/dynacut/internal/trace"
)

// template is a booted, profiled web server ready to be cloned into a
// fleet: the machine, its root PID, the feature blocks to disable and
// the in-guest 403 responder to redirect them to.
type template struct {
	m        *kernel.Machine
	pid      int
	port     uint16
	blocks   []coverage.AbsBlock
	redirect uint64
}

var (
	wantedReqs    = []string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"}
	undesiredReqs = []string{"PUT /f data\n", "DELETE /f\n"}
)

// request sends one request to a machine's guest and returns the
// response (empty on timeout).
func request(m *kernel.Machine, port uint16, req string) string {
	conn, err := m.Dial(port)
	if err != nil {
		return ""
	}
	if _, err := conn.Write([]byte(req)); err != nil {
		return ""
	}
	m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
	m.Run(20000)
	return string(conn.ReadAll())
}

// healthProbe is the per-replica rewrite health check: the restored
// guest must answer a wanted request end to end.
func healthProbe(m *kernel.Machine, pid int) error {
	if got := request(m, 8080, "GET /\n"); !strings.Contains(got, "200") {
		return fmt.Errorf("health probe got %q", got)
	}
	return nil
}

func bootTemplate(t *testing.T) *template {
	t.Helper()
	app, err := webserv.Build(webserv.Config{Name: "lighttpd", Port: 8080})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := kernel.NewMachine()
	col := trace.NewCollector(app.Config.Name)
	m.SetTracer(col)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	booted := false
	m.SetNudgeFunc(func(pid int, arg uint64) { booted = true })
	if !m.RunUntil(func() bool { return booted }, 10_000_000) {
		t.Fatal("boot: nudge never fired")
	}
	m.Run(10000)

	// Profile: wanted vs undesired coverage -> feature-unique blocks.
	col.Reset()
	for _, r := range wantedReqs {
		request(m, app.Config.Port, r)
	}
	covWanted := coverage.FromLog(col.SnapshotAndReset(p.Modules(), "wanted"))
	for _, r := range undesiredReqs {
		request(m, app.Config.Port, r)
	}
	covUndesired := coverage.FromLog(col.SnapshotAndReset(p.Modules(), "undesired"))
	blocks := core.IdentifyFeatureBlocks(covUndesired, covWanted, app.Config.Name)
	if len(blocks) == 0 {
		t.Fatal("no feature blocks identified")
	}
	sym, err := app.Exe.Symbol("resp_403")
	if err != nil {
		t.Fatal(err)
	}
	m.SetTracer(nil) // replicas run untraced
	return &template{m: m, pid: p.PID(), port: app.Config.Port, blocks: blocks, redirect: sym.Value}
}

// disableWebdav is the rollout payload every test applies.
func disableWebdav(tpl *template) func(r *Replica) (core.Stats, error) {
	return func(r *Replica) (core.Stats, error) {
		return r.Cust.DisableBlocks("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	}
}

func coreOpts(tpl *template) core.Options {
	return core.Options{RedirectTo: tpl.redirect, HealthCheck: healthProbe}
}

// assertConverged enforces the fleet invariant: every replica is
// either on the new version (undesired feature returns 403) or on its
// pristine checkpoint (feature still works, 201) — and serving wanted
// requests either way. A dead or torn replica fails.
func assertConverged(t *testing.T, f *Fleet, res *RolloutResult) {
	t.Helper()
	for _, r := range f.Replicas() {
		o := res.Outcomes[r.Index]
		if o.Outcome == OutcomeLost {
			t.Fatalf("replica %d lost: %v", r.Index, o.Err)
		}
		put := request(r.Machine, 8080, "PUT /f data\n")
		get := request(r.Machine, 8080, "GET /\n")
		if !strings.Contains(get, "200") {
			t.Fatalf("replica %d (%v) not serving: GET -> %q", r.Index, o.Outcome, get)
		}
		switch {
		case o.Outcome == OutcomeCommitted:
			if !strings.Contains(put, "403") {
				t.Fatalf("replica %d committed but PUT -> %q, want 403", r.Index, put)
			}
		case o.Outcome.OldVersion():
			if !strings.Contains(put, "201") {
				t.Fatalf("replica %d (%v) should be pristine but PUT -> %q, want 201", r.Index, o.Outcome, put)
			}
		default:
			t.Fatalf("replica %d unclassified outcome %v", r.Index, o.Outcome)
		}
	}
}

func TestFleetRolloutCommitsAllReplicas(t *testing.T) {
	tpl := bootTemplate(t)
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 4, Workers: 2, CanaryShards: 1, WaveSize: 2,
		Core: coreOpts(tpl),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Rollout(disableWebdav(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatalf("rollout halted: %+v", res)
	}
	if res.Committed() != 4 {
		t.Fatalf("committed = %d, want 4 (outcomes %+v)", res.Committed(), res.Outcomes)
	}
	// Wave structure: canary of 1, then 2, then the remaining 1.
	if len(res.Waves) != 3 || !res.Waves[0].Canary || len(res.Waves[0].Replicas) != 1 ||
		len(res.Waves[1].Replicas) != 2 || len(res.Waves[2].Replicas) != 1 {
		t.Fatalf("waves = %+v", res.Waves)
	}
	assertConverged(t, f, res)

	// The template guest was never part of the rollout.
	if got := request(tpl.m, tpl.port, "PUT /f data\n"); !strings.Contains(got, "201") {
		t.Fatalf("template mutated by rollout: PUT -> %q", got)
	}

	// Dedup: 4 pristine checkpoints of identical clones cost ~1 guest.
	st := f.Store().Stats()
	if st.DedupHits == 0 && st.Sets != 1 {
		t.Errorf("no dedup across replica checkpoints: %+v", st)
	}

	// The merged timeline interleaves fleet waves with tagged
	// per-replica rewrite phases.
	tagged, waves := 0, 0
	for _, ev := range f.Timeline() {
		if strings.HasPrefix(ev.Name, "r2/") {
			tagged++
		}
		if ev.Name == "fleet.wave" {
			waves++
		}
	}
	if tagged == 0 || waves != 6 {
		t.Errorf("timeline: %d r2-tagged events, %d wave span events (want >0, 6)", tagged, waves)
	}
}

func TestFleetCanaryFailureHaltsRollout(t *testing.T) {
	tpl := bootTemplate(t)
	// The canary's health check fails every attempt: core rolls the
	// canary back, the fleet halts, and no later wave ever starts.
	failCanary := true
	opts := coreOpts(tpl)
	opts.HealthCheck = func(m *kernel.Machine, pid int) error {
		if failCanary {
			return errors.New("canary regression")
		}
		return healthProbe(m, pid)
	}
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 4, Workers: 2, CanaryShards: 1, WaveSize: 3,
		Core: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Rollout(disableWebdav(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.HaltedWave != 0 {
		t.Fatalf("canary failure did not halt: %+v", res)
	}
	if res.Committed() != 0 {
		t.Fatalf("committed past a failed canary: %+v", res.Outcomes)
	}
	if got := res.Outcomes[0].Outcome; got != OutcomeRolledBack {
		t.Fatalf("canary outcome = %v, want rolled-back", got)
	}
	for i := 1; i < 4; i++ {
		if got := res.Outcomes[i].Outcome; got != OutcomePending {
			t.Fatalf("replica %d outcome = %v, want pending", i, got)
		}
	}
	assertConverged(t, f, res)

	// Resume lifts the halt; the same fleet then rolls out cleanly.
	failCanary = false
	f.Resume()
	res2, err := f.Rollout(disableWebdav(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Halted || res2.Committed() != 4 {
		t.Fatalf("resumed rollout: %+v", res2)
	}
	assertConverged(t, f, res2)
}

func TestFleetWaveFailureRestoresCommitted(t *testing.T) {
	tpl := bootTemplate(t)
	// Canary (replica 0) passes; in the next wave replica 2's rewrite
	// fails pre-commit, so the wave crosses the zero threshold and its
	// committed sibling must be restored to pristine.
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 3, Workers: 1, CanaryShards: 1, WaveSize: 2,
		Core: coreOpts(tpl),
	})
	if err != nil {
		t.Fatal(err)
	}
	apply := func(r *Replica) (core.Stats, error) {
		if r.Index == 2 {
			return core.Stats{}, fmt.Errorf("replica %d rewrite failed", r.Index)
		}
		return r.Cust.DisableBlocks("webdav-write", tpl.blocks, core.PolicyBlockEntry)
	}
	res, err := f.Rollout(apply)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.HaltedWave != 1 {
		t.Fatalf("wave failure did not halt: %+v", res)
	}
	// The canary committed in an earlier healthy wave: it keeps the
	// new version. The failed wave's committed replica was restored.
	if res.Outcomes[0].Outcome != OutcomeCommitted {
		t.Fatalf("canary = %v, want committed", res.Outcomes[0].Outcome)
	}
	if res.Outcomes[1].Outcome != OutcomeRestored {
		t.Fatalf("wave sibling = %v, want restored", res.Outcomes[1].Outcome)
	}
	if res.Outcomes[2].Outcome != OutcomeFailed {
		t.Fatalf("failing replica = %v, want failed", res.Outcomes[2].Outcome)
	}
	assertConverged(t, f, res)
}

// TestFleetRolloutPooledSpeedup is the BENCH_pr5 acceptance claim in
// unit-test form: on the fleet's virtual-time axis, a 16-replica
// rollout through 8 worker lanes must beat the one-lane serial
// makespan by at least 3x.
func TestFleetRolloutPooledSpeedup(t *testing.T) {
	tpl := bootTemplate(t)
	f, err := New(tpl.m, tpl.pid, Config{
		Replicas: 16, Workers: 8, CanaryShards: 1, WaveSize: 15,
		Core: coreOpts(tpl),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Rollout(disableWebdav(tpl))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed() != 16 {
		t.Fatalf("committed = %d/16: %+v", res.Committed(), res.Outcomes)
	}
	if res.SerialTicks == 0 || res.FleetTicks == 0 {
		t.Fatalf("degenerate makespan: serial=%d fleet=%d", res.SerialTicks, res.FleetTicks)
	}
	if res.FleetTicks*3 > res.SerialTicks {
		t.Fatalf("pooled makespan %d not 3x better than serial %d", res.FleetTicks, res.SerialTicks)
	}
	t.Logf("16 replicas: serial %d vticks, 8-lane makespan %d vticks (%.1fx)",
		res.SerialTicks, res.FleetTicks, float64(res.SerialTicks)/float64(res.FleetTicks))
}

func TestFleetSupervisorsAggregate(t *testing.T) {
	tpl := bootTemplate(t)
	f, err := New(tpl.m, tpl.pid, Config{Replicas: 2, Workers: 2, Core: coreOpts(tpl)})
	if err != nil {
		t.Fatal(err)
	}
	err = f.AttachSupervisors(func(r *Replica) supervise.Config {
		rm := r.Machine
		return supervise.Config{
			Canary: func() error { return healthProbe(rm, 0) },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if st.Aggregate.Instances != 2 || st.Aggregate.Attached != 2 {
		t.Fatalf("aggregate = %+v", st.Aggregate)
	}
	if !st.Aggregate.Healthy() {
		t.Fatalf("fresh fleet unhealthy: %+v", st.Aggregate)
	}
	if len(f.Supervisors()) != 2 {
		t.Fatalf("supervisors = %d", len(f.Supervisors()))
	}
}

func TestFleetConfigValidation(t *testing.T) {
	tpl := bootTemplate(t)
	if _, err := New(tpl.m, tpl.pid, Config{}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("zero replicas -> %v", err)
	}
	// CanaryShards clamps to the fleet size.
	f, err := New(tpl.m, tpl.pid, Config{Replicas: 2, CanaryShards: 5, Core: coreOpts(tpl)})
	if err != nil {
		t.Fatal(err)
	}
	if w := f.waves(); len(w) != 1 || len(w[0]) != 2 {
		t.Fatalf("clamped waves = %v", w)
	}
}
