package fleet

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/faultinject"
)

// chaosSeeds is the per-site seed sweep width. Every (site, seed)
// combination must leave the fleet converged: each replica on the new
// version or on its pristine checkpoint, never torn, never dead.
const chaosSeeds = 20

// TestFleetChaosCloneFaults: an injected fault while spawning a
// replica fails fleet construction outright — and must leave the
// template guest untouched and serving.
func TestFleetChaosCloneFaults(t *testing.T) {
	tpl := bootTemplate(t)
	for seed := int64(0); seed < chaosSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed)
			inj.FailAt(faultinject.SiteFleetClone, 1+int(seed)%4)
			_, err := New(tpl.m, tpl.pid, Config{
				Replicas: 4, Workers: 2, Core: coreOpts(tpl), FaultHook: inj,
			})
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("want injected clone failure, got %v", err)
			}
			if got := request(tpl.m, tpl.port, "PUT /f data\n"); !strings.Contains(got, "201") {
				t.Fatalf("template damaged by failed spawn: PUT -> %q", got)
			}
			if got := request(tpl.m, tpl.port, "GET /\n"); !strings.Contains(got, "200") {
				t.Fatalf("template not serving after failed spawn: %q", got)
			}
		})
	}
}

// TestFleetChaosWaveFaults: a fault at the wave site aborts one
// replica's rewrite before it starts. Depending on where the fault
// lands (seed-varied hit), the rollout halts at the canary or at a
// later wave — either way every replica must converge.
func TestFleetChaosWaveFaults(t *testing.T) {
	tpl := bootTemplate(t)
	for seed := int64(0); seed < chaosSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed)
			inj.FailAt(faultinject.SiteFleetWave, 1+int(seed)%6)
			f, err := New(tpl.m, tpl.pid, Config{
				Replicas: 6, Workers: 2, CanaryShards: 1, WaveSize: 2,
				Core: coreOpts(tpl), FaultHook: inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Rollout(disableWebdav(tpl))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Halted {
				t.Fatalf("an aborted replica must halt a zero-threshold rollout: %+v", res.Outcomes)
			}
			if inj.Injected() == 0 {
				t.Fatal("armed wave fault never fired")
			}
			assertConverged(t, f, res)
		})
	}
}

// TestFleetChaosRollbackFaults: the halt path's pristine restore is
// itself broken once by injection; the bounded retry must recover the
// replica, and the fleet must still converge with no torn replica.
func TestFleetChaosRollbackFaults(t *testing.T) {
	tpl := bootTemplate(t)
	for seed := int64(0); seed < chaosSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed)
			inj.FailOnce(faultinject.SiteFleetRollback)
			f, err := New(tpl.m, tpl.pid, Config{
				Replicas: 6, Workers: 1, CanaryShards: 1, WaveSize: 2,
				Core: coreOpts(tpl), FaultHook: inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			// The canary and wave-1's first replica commit; wave-1's
			// second replica fails pre-commit, halting the rollout and
			// forcing the committed sibling through the faulted
			// rollback path.
			victim := 2
			res, err := f.Rollout(func(r *Replica) (core.Stats, error) {
				if r.Index == victim {
					return core.Stats{}, fmt.Errorf("injected payload failure on replica %d", r.Index)
				}
				return r.Cust.DisableBlocks("webdav-write", tpl.blocks, core.PolicyBlockEntry)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Halted || res.HaltedWave != 1 {
				t.Fatalf("rollout did not halt at wave 1: %+v", res)
			}
			if got := res.Outcomes[1].Outcome; got != OutcomeRestored {
				t.Fatalf("committed sibling = %v, want restored through faulted rollback", got)
			}
			if inj.Injected() == 0 {
				t.Fatal("armed rollback fault never fired")
			}
			assertConverged(t, f, res)
		})
	}
}
