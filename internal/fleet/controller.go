package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/supervise"
)

// Controller is the event-driven rollout engine: a work queue of
// per-replica rollout steps, worker lanes that lease steps against a
// virtual-clock deadline, and an append-only CRC-checked journal of
// every intent and outcome. Fleet.Rollout is a thin wrapper that runs
// a fresh controller; ResumeController rebuilds one from a dead
// controller's journal and finishes the rollout without re-rewriting
// replicas the journal proves committed.
//
// Scheduling is deterministic by construction. Each dispatch round
// leases at most one step per worker lane, chosen by (not-before
// time, replica index); the leased rewrites then run concurrently for
// real, but their outcomes are journaled in lane order, so the same
// fleet, payload and fault seed always produce byte-identical
// journals — the property the resume path's tests stand on. A lease
// whose worker dies (the fleet.lease.expire fault site) is recovered
// at its virtual-clock deadline and requeued with capped exponential
// backoff until the step's retry budget runs out.
//
// Crash coverage: the fleet.controller.crash site is consulted at
// every journal record boundary (before and after each append), and a
// failed append itself (fleet.journal.append, a torn write) also
// kills the controller. Either way Run stops scheduling, returns
// ErrControllerCrashed, and leaves Journal() behind for resume.

// ErrControllerCrashed reports an injected controller death; the
// journal survives for ResumeController.
var ErrControllerCrashed = errors.New("fleet: rollout controller crashed")

// Crash boundary identifiers: the detail argument the controller
// passes to the fleet.controller.crash site. crashBefore* fires with
// the record unwritten; crashAfter* fires with it committed.
const (
	crashBeforeRecord = iota + 1
	crashAfterRecord
)

// Controller scheduling defaults.
const (
	// defaultLeaseTicks is the lease duration on the controller's
	// virtual clock — comfortably above a typical rewrite cost (~65
	// vticks on the webserv guest), so healthy workers never expire.
	defaultLeaseTicks = 1024
	// defaultRetryBudget bounds lease attempts per step.
	defaultRetryBudget = 3
	// defaultBackoffBase / defaultBackoffCap shape the capped
	// exponential requeue backoff after a lease expires.
	defaultBackoffBase = 64
	defaultBackoffCap  = 1024
)

// StepEvent is one increment of rollout progress, streamed to
// Config.OnStep as the controller dispatches. Kind is one of "lease",
// "expire", "requeue", "budget-exhausted", "outcome", "skip",
// "resume", "halt" or "crash".
type StepEvent struct {
	Kind    string
	Replica int
	Wave    int
	Attempt int
	Outcome Outcome
	// Mode is the step's rewrite path: the requested mode on "lease"
	// events, the mode actually taken on "outcome" events.
	Mode   StepMode
	VClock uint64
}

// ControllerStatus is an incremental snapshot of a rollout in flight:
// per-replica outcomes so far, queue/lease accounting, and the
// supervise.Aggregate fold of any attached per-replica supervisors —
// one struct answering "how is the rollout doing" mid-wave.
type ControllerStatus struct {
	VClock        uint64
	Wave          int
	Done          int
	Skipped       int
	LeaseExpiries int
	Requeues      int
	Halted        bool
	Crashed       bool
	Resumed       bool
	Outcomes      []Outcome
	Attempts      []int
	Supervise     supervise.AggregateStatus
}

// step is one unit of rollout work: rewrite one replica, attempt n.
type step struct {
	replica   int
	wave      int
	attempt   int
	notBefore uint64 // virtual-clock gate set by requeue backoff
}

// lease is a step granted to a worker lane for one dispatch round.
type lease struct {
	step     *step
	lane     int
	start    uint64
	deadline uint64
	died     bool // fleet.lease.expire fired: the worker never ran
	ident    uint32
	out      ReplicaOutcome
}

// Controller runs one rollout over a fleet. Construct with
// NewController or ResumeController; drive with Run.
type Controller struct {
	f     *Fleet
	j     *Journal
	lanes []uint64

	prior    []Record // journal records from a dead predecessor
	hasStart bool

	mu            sync.Mutex
	vclock        uint64
	wave          int
	done          int
	skipped       int
	leaseExpiries int
	requeues      int
	crashed       bool
	resumed       bool
	outcomes      []Outcome
	attempts      []int
}

// NewController builds a fresh controller over the fleet with an
// empty journal (or the one provided, for callers that keep journal
// bytes elsewhere).
func NewController(f *Fleet, j *Journal) *Controller {
	if j == nil {
		j = NewJournal()
	}
	if f.cfg.FaultHook != nil {
		j.SetFaultHook(f.cfg.FaultHook)
	}
	return &Controller{
		f:        f,
		j:        j,
		lanes:    make([]uint64, f.cfg.Workers),
		outcomes: make([]Outcome, len(f.replicas)),
		attempts: make([]int, len(f.replicas)),
	}
}

// ResumeController rebuilds a controller from a dead controller's
// journal bytes. The journal's torn tail (a crash mid-append) is
// dropped; interior corruption is rejected. The fleet must be the one
// the journal describes — replica count is cross-checked.
func ResumeController(f *Fleet, journal []byte) (*Controller, error) {
	recs, err := DecodeJournal(journal)
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 {
		if recs[0].Kind != RecStart {
			return nil, fmt.Errorf("%w: first record is %s, want start", ErrJournalCorrupt, recs[0].Kind)
		}
		if int(recs[0].Replica) != len(f.replicas) {
			return nil, fmt.Errorf("fleet: journal describes %d replicas, fleet has %d",
				recs[0].Replica, len(f.replicas))
		}
	}
	c := NewController(f, journalFrom(recs))
	c.prior = recs
	c.resumed = true
	return c, nil
}

// Journal returns the controller's journal (live: it keeps growing
// while Run is in flight).
func (c *Controller) Journal() *Journal { return c.j }

// Status snapshots the rollout's incremental progress, folding any
// attached per-replica supervisors through supervise.Aggregate.
func (c *Controller) Status() ControllerStatus {
	c.mu.Lock()
	st := ControllerStatus{
		VClock:        c.vclock,
		Wave:          c.wave,
		Done:          c.done,
		Skipped:       c.skipped,
		LeaseExpiries: c.leaseExpiries,
		Requeues:      c.requeues,
		Halted:        c.f.halted.Load(),
		Crashed:       c.crashed,
		Resumed:       c.resumed,
		Outcomes:      append([]Outcome(nil), c.outcomes...),
		Attempts:      append([]int(nil), c.attempts...),
	}
	c.mu.Unlock()
	var sups []supervise.Status
	for _, s := range c.f.sups {
		sups = append(sups, s.Status())
	}
	st.Supervise = supervise.Aggregate(sups...)
	return st
}

// emit streams one step event to the configured callback.
func (c *Controller) emit(ev StepEvent) {
	if c.f.cfg.OnStep != nil {
		c.f.cfg.OnStep(ev)
	}
}

// note records a replica's current outcome for Status snapshots.
func (c *Controller) note(replica int, o Outcome, skipped bool) {
	c.mu.Lock()
	c.outcomes[replica] = o
	if skipped {
		c.skipped++
	} else {
		c.done++
	}
	c.mu.Unlock()
}

// setClock advances the published virtual clock (monotonic).
func (c *Controller) setClock(v uint64) {
	c.mu.Lock()
	if v > c.vclock {
		c.vclock = v
	}
	c.mu.Unlock()
}

// crashPoint consults the fleet.controller.crash site at a journal
// record boundary; an injected fault flips the controller into the
// crashed state, after which nothing more is scheduled or journaled.
func (c *Controller) crashPoint(detail int) bool {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return true
	}
	h := c.f.cfg.FaultHook
	if h == nil {
		return false
	}
	if err := h.Fault(faultinject.SiteFleetControllerCrash, detail); err != nil {
		c.die("crash site")
		return true
	}
	return false
}

// die marks the controller crashed.
func (c *Controller) die(why string) {
	c.mu.Lock()
	already := c.crashed
	c.crashed = true
	v := c.vclock
	c.mu.Unlock()
	if !already {
		c.f.obs.Point("fleet.controller.crash", int64(v))
		c.emit(StepEvent{Kind: "crash", Replica: -1, VClock: v})
		_ = why
	}
}

// append journals one record with crash boundaries on both sides.
// Returns false when the controller died at either boundary or the
// append itself tore (fleet.journal.append fault).
func (c *Controller) append(r Record) bool {
	if c.crashPoint(crashBeforeRecord) {
		return false
	}
	if err := c.j.Append(r); err != nil {
		c.die("journal append")
		return false
	}
	c.f.obs.Point("fleet.journal.append", int64(r.Kind))
	if c.crashPoint(crashAfterRecord) {
		return false
	}
	return true
}

// isCrashed reports the crashed flag.
func (c *Controller) isCrashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// priorState is the per-replica resolution recovered from a journal.
type priorState struct {
	resolved   bool // an outcome record exists
	outcome    ReplicaOutcome
	openIntent bool // an intent with no outcome: the torn window
	wave       int
}

// replay folds the predecessor's journal records into per-replica
// state plus rollout-level markers.
func (c *Controller) replay(res *RolloutResult) (states []priorState, waveFails map[int]int, haltedAt int, finished bool) {
	states = make([]priorState, len(c.f.replicas))
	waveFails = map[int]int{}
	haltedAt = -1
	var last uint64
	for _, r := range c.prior {
		if r.VClock > last {
			last = r.VClock
		}
		switch r.Kind {
		case RecStart:
			c.hasStart = true
		case RecIntent:
			st := &states[r.Replica]
			st.openIntent = true
			st.wave = int(r.Wave)
		case RecOutcome:
			st := &states[r.Replica]
			st.openIntent = false
			st.resolved = true
			st.wave = int(r.Wave)
			st.outcome = ReplicaOutcome{
				Index:   int(r.Replica),
				Outcome: r.Outcome,
				Ticks:   r.Ticks,
			}
			if r.Note != "" {
				st.outcome.Err = fmt.Errorf("fleet: journaled failure: %s", r.Note)
			}
			if r.Outcome == OutcomeCommitted {
				st.outcome.Err = nil
			}
		case RecWaveDone:
			waveFails[int(r.Wave)] = int(r.Attempt)
		case RecHalt:
			haltedAt = int(r.Wave)
			c.f.halted.Store(true)
		case RecDone:
			finished = true
		case RecQuarantine:
			if i := int(r.Replica); i >= 0 && i < len(c.f.replicas) {
				c.f.replicas[i].quarantined.Store(true)
			}
		case RecAttest:
			// The only attest verdict that changes replayed state is a
			// readmission lifting an earlier quarantine.
			if i := int(r.Replica); AttestVerdict(r.Attempt) == VerdictReadmit &&
				i >= 0 && i < len(c.f.replicas) {
				c.f.replicas[i].quarantined.Store(false)
			}
		}
	}
	// Resume picks the clock up where the journal left off: every
	// lane starts at the last journaled instant, so FleetTicks keeps
	// counting across the crash.
	for i := range c.lanes {
		c.lanes[i] = last
	}
	c.setClock(last)
	return states, waveFails, haltedAt, finished
}

// verifyCommitted classifies a torn-window replica: the journal shows
// a leased intent but no outcome, so the predecessor died between the
// lease and the outcome record — the rewrite may or may not have
// committed. Config.Verify decides from the live replica. Without it,
// a live-patch rollout (Config.LivePatch) is verified byte-wise
// against the replica's text — the customizer's in-memory bookkeeping
// does not survive a controller crash, and a crash can land mid-patch,
// so only the bytes themselves are trustworthy; any other rollout
// falls back to asking the customizer whether blocks are disabled.
func (c *Controller) verifyCommitted(r *Replica) (bool, error) {
	if v := c.f.cfg.Verify; v != nil {
		return v(r)
	}
	if lp := c.f.cfg.LivePatch; lp != nil {
		return verifyLiveBlocks(r, lp)
	}
	return r.Cust.DisabledBlockCount() > 0, nil
}

// verifyLiveBlocks classifies a torn live-patch window from the
// replica's text bytes. All blocks INT3 → committed (skip). No block
// touched → not committed (safe to re-run; the fast path saves
// originals before writing, so a clean re-patch is exactly-once in
// effect). Anything in between is torn text: the crash interrupted
// the patch loop, and re-running apply would record INT3 bytes as
// "originals" — so it is surfaced as an error (the resume fails with
// "cannot classify") for the operator to restore the replica from its
// pristine checkpoint instead.
func verifyLiveBlocks(r *Replica, lp *LivePatchSpec) (bool, error) {
	blocks := r.Cust.FilterProtected(lp.Blocks)
	full, partial, err := r.Cust.CountPatched(blocks, lp.Policy)
	if err != nil {
		return false, err
	}
	if partial > 0 || (full > 0 && full < len(blocks)) {
		return false, fmt.Errorf("fleet: torn live patch on replica %d: %d/%d blocks fully patched, %d partially — refusing to re-patch; restore the replica from its pristine checkpoint",
			r.Index, full, len(blocks), partial)
	}
	return full == len(blocks) && full > 0, nil
}

// Run executes the rollout (or, after ResumeController, whatever of
// it the journal shows unfinished). The apply function is invoked at
// most once per leased attempt per replica and never for a replica
// the journal already proves committed. On an injected controller
// crash Run returns ErrControllerCrashed with the partial result; the
// journal is left for the next ResumeController.
func (c *Controller) Run(apply func(r *Replica) (core.Stats, error)) (*RolloutResult, error) {
	f := c.f
	res := &RolloutResult{Outcomes: make([]ReplicaOutcome, len(f.replicas))}
	for i := range res.Outcomes {
		res.Outcomes[i].Index = i
	}
	res.Resumed = c.resumed

	waves := f.waves()
	waveFails := map[int]int{}
	haltedAt := -1
	finished := false
	var states []priorState

	if c.resumed {
		states, waveFails, haltedAt, finished = c.replay(res)
	}
	if !c.hasStart {
		if !c.append(Record{Kind: RecStart, Replica: int32(len(f.replicas)),
			Wave: int32(len(waves)), Attempt: int32(f.cfg.Workers)}) {
			return c.finish(res)
		}
		c.hasStart = true
	}

	if c.resumed {
		// Committed replicas are skipped outright — the acceptance
		// invariant "resume never repeats a committed rewrite". Their
		// post-commit checkpoints are content-addressed in the shared
		// store; a recorded ident that the store no longer holds means
		// the journal and the store disagree, and the replica is
		// re-verified like a torn window instead of trusted.
		for i := range states {
			st := &states[i]
			if st.resolved {
				res.Outcomes[i] = st.outcome
				res.Outcomes[i].Index = i
				c.note(i, st.outcome.Outcome, st.outcome.Outcome == OutcomeCommitted)
				if st.outcome.Outcome == OutcomeCommitted {
					res.SkippedCommitted++
					f.obs.Point("fleet.resume.skip", int64(i))
					c.emit(StepEvent{Kind: "skip", Replica: i, Wave: st.wave, Outcome: OutcomeCommitted, VClock: c.lanes[0]})
				}
				continue
			}
			if st.openIntent {
				committed, err := c.verifyCommitted(f.replicas[i])
				if err != nil {
					return res, fmt.Errorf("fleet: resume cannot classify replica %d (torn journal window): %w", i, err)
				}
				if committed {
					// The rewrite committed but its outcome record died
					// with the controller: journal it now so the next
					// resume does not have to re-verify.
					res.Outcomes[i].Outcome = OutcomeCommitted
					res.Outcomes[i].Ticks = 1
					res.SkippedCommitted++
					c.note(i, OutcomeCommitted, true)
					f.obs.Point("fleet.resume.skip", int64(i))
					c.emit(StepEvent{Kind: "skip", Replica: i, Wave: st.wave, Outcome: OutcomeCommitted, VClock: c.lanes[0]})
					if !c.append(Record{Kind: RecOutcome, Replica: int32(i), Wave: int32(st.wave),
						Outcome: OutcomeCommitted, Ticks: 1, VClock: c.lanes[0],
						Mode: c.f.cfg.requestedMode(), Note: "verified-after-crash"}) {
						return c.finish(res)
					}
				}
				// Not committed: core's transaction left the replica
				// untouched (or rolled back); the step simply re-runs.
			}
		}
		if !c.append(Record{Kind: RecResume, Replica: int32(res.SkippedCommitted), VClock: c.lanes[0]}) {
			return c.finish(res)
		}
		c.emit(StepEvent{Kind: "resume", Replica: -1, VClock: c.lanes[0]})
		f.obs.Point("fleet.resume", int64(res.SkippedCommitted))
		// Replicas the journal shows quarantined are re-attested before
		// the resumed rollout proceeds: clean (or repaired-clean) text
		// readmits them, anything else stays drained.
		c.readmitQuarantined()
		if c.isCrashed() {
			return c.finish(res)
		}
	}

	if finished {
		// The predecessor completed the rollout and died after its
		// done record: nothing to run, reconstruct and return.
		return c.reconstruct(res, waves, waveFails, haltedAt)
	}

	if haltedAt >= 0 {
		// The predecessor died inside the halt protocol: finish it —
		// every committed replica of the halted wave restores to
		// pristine — and close the journal. Waves completed before the
		// halt are reconstructed from their journal summaries.
		for wi := 0; wi < haltedAt && wi < len(waves); wi++ {
			if fails, ok := waveFails[wi]; ok {
				res.Waves = append(res.Waves, WaveResult{
					Index: wi, Canary: wi == 0,
					Replicas: append([]int(nil), waves[wi]...),
					Failures: fails,
				})
			}
		}
		c.completeHalt(res, waves[haltedAt], haltedAt)
		res.Halted, res.HaltedWave = true, haltedAt
		return c.finish(res)
	}

	for wi, wave := range waves {
		c.mu.Lock()
		c.wave = wi
		c.mu.Unlock()
		if fails, ok := waveFails[wi]; ok {
			// Wave fully resolved before the crash.
			res.Waves = append(res.Waves, WaveResult{
				Index: wi, Canary: wi == 0,
				Replicas: append([]int(nil), wave...),
				Failures: fails,
			})
			continue
		}
		if f.halted.Load() || c.isCrashed() {
			break
		}
		f.obs.PhaseStart("fleet.wave", wi)
		c.runWave(wi, wave, res, apply)
		if c.isCrashed() {
			f.obs.PhaseEnd("fleet.wave", wi, ErrControllerCrashed)
			break
		}

		fails := 0
		for _, ri := range wave {
			o := res.Outcomes[ri].Outcome
			if o != OutcomeCommitted && o != OutcomePending {
				fails++
			}
		}
		wr := WaveResult{Index: wi, Canary: wi == 0, Replicas: append([]int(nil), wave...), Failures: fails}
		res.Waves = append(res.Waves, wr)
		failRate := float64(fails) / float64(len(wave))
		threshold := f.cfg.FailureThreshold
		if wi == 0 {
			threshold = 0 // any canary failure halts
		}
		halt := fails > 0 && failRate > threshold

		// Second-chance recovery: a replica whose own rollback failed
		// is dead, but its pristine checkpoint survives in the store.
		for _, ri := range wave {
			if res.Outcomes[ri].Outcome == OutcomeLost {
				c.restoreJournaled(&res.Outcomes[ri], wi)
			}
		}

		if halt {
			f.halted.Store(true)
			res.Halted = true
			res.HaltedWave = wi
			f.obs.Point("fleet.halt", int64(wi))
			c.emit(StepEvent{Kind: "halt", Replica: -1, Wave: wi, VClock: c.laneMax()})
			if !c.append(Record{Kind: RecHalt, Wave: int32(wi), VClock: c.laneMax()}) {
				f.obs.PhaseEnd("fleet.wave", wi, ErrControllerCrashed)
				break
			}
			// Un-commit the failed wave: a wave that crossed the
			// threshold does not stay half-deployed.
			c.completeHalt(res, wave, wi)
			f.obs.PhaseEnd("fleet.wave", wi, fmt.Errorf("wave %d: %d/%d failed, rollout halted", wi, fails, len(wave)))
			break
		}
		if !c.append(Record{Kind: RecWaveDone, Wave: int32(wi), Attempt: int32(fails), VClock: c.laneMax()}) {
			f.obs.PhaseEnd("fleet.wave", wi, ErrControllerCrashed)
			break
		}
		// Wave barrier: the next wave starts after the slowest lane.
		c.syncLanes()
		f.obs.PhaseEnd("fleet.wave", wi, nil)

		if f.cfg.Scrub {
			// Anti-entropy boundary: sweep the whole active fleet, not
			// just this wave — silent corruption does not wait its turn.
			sw := c.AttestSweep(wi)
			res.Sweeps = append(res.Sweeps, *sw)
			if c.isCrashed() {
				break
			}
		}
	}

	return c.finish(res)
}

// runWave drains one wave's step queue through the worker lanes.
func (c *Controller) runWave(wi int, wave []int, res *RolloutResult, apply func(r *Replica) (core.Stats, error)) {
	f := c.f
	leaseTicks := f.cfg.LeaseTicks
	if leaseTicks == 0 {
		leaseTicks = defaultLeaseTicks
	}
	budget := f.cfg.RetryBudget
	if budget <= 0 {
		budget = defaultRetryBudget
	}
	backoffBase := f.cfg.BackoffBase
	if backoffBase == 0 {
		backoffBase = defaultBackoffBase
	}
	backoffCap := f.cfg.BackoffCap
	if backoffCap == 0 {
		backoffCap = defaultBackoffCap
	}

	var pending []*step
	for _, ri := range wave {
		if res.Outcomes[ri].Outcome != OutcomePending {
			continue
		}
		if f.replicas[ri].Quarantined() {
			// Drained by an earlier sweep: the replica takes no rollout
			// steps until re-attestation readmits it.
			f.obs.Point("fleet.step.skip.quarantined", int64(ri))
			continue
		}
		pending = append(pending, &step{replica: ri, wave: wi, attempt: 1})
	}

	for len(pending) > 0 && !c.isCrashed() && !f.halted.Load() {
		// Lease one step per lane, earliest-free lane first — list
		// scheduling over the virtual-time lanes. Steps are ordered by
		// (backoff gate, replica index) so dispatch is deterministic.
		sort.SliceStable(pending, func(i, j int) bool {
			if pending[i].notBefore != pending[j].notBefore {
				return pending[i].notBefore < pending[j].notBefore
			}
			return pending[i].replica < pending[j].replica
		})
		laneOrder := make([]int, len(c.lanes))
		for i := range laneOrder {
			laneOrder[i] = i
		}
		sort.SliceStable(laneOrder, func(i, j int) bool {
			return c.lanes[laneOrder[i]] < c.lanes[laneOrder[j]]
		})
		var round []*lease
		for _, li := range laneOrder {
			if len(pending) == 0 {
				break
			}
			st := pending[0]
			pending = pending[1:]
			start := c.lanes[li]
			if st.notBefore > start {
				start = st.notBefore // the lane idles until the backoff gate opens
			}
			round = append(round, &lease{step: st, lane: li, start: start, deadline: start + leaseTicks})
		}

		// Journal the round's intents in lane order, then decide which
		// workers die at the fleet.lease.expire site — both in the
		// dispatch thread, so order and journal bytes stay
		// deterministic under concurrency.
		for _, l := range round {
			if !c.append(Record{Kind: RecIntent, Replica: int32(l.step.replica), Wave: int32(wi),
				Attempt: int32(l.step.attempt), VClock: l.start, Mode: f.cfg.requestedMode()}) {
				return
			}
			f.obs.Point("fleet.step.lease", int64(l.step.replica))
			c.emit(StepEvent{Kind: "lease", Replica: l.step.replica, Wave: wi, Attempt: l.step.attempt,
				Mode: f.cfg.requestedMode(), VClock: l.start})
		}
		if h := f.cfg.FaultHook; h != nil {
			for _, l := range round {
				if err := h.Fault(faultinject.SiteFleetLeaseExpire, l.step.replica); err != nil {
					l.died = true
				}
			}
		}

		// Run the surviving leases concurrently for real.
		var wg sync.WaitGroup
		for _, l := range round {
			if l.died {
				continue
			}
			wg.Add(1)
			go func(l *lease) {
				defer wg.Done()
				c.execute(l, apply)
			}(l)
		}
		wg.Wait()

		// Commit the round in lane order.
		for _, l := range round {
			ri := l.step.replica
			if l.died {
				// The worker never reported back; its lease expires at
				// the deadline and the step requeues with backoff —
				// or fails for good once the budget is spent.
				c.lanes[l.lane] = l.deadline
				c.setClock(l.deadline)
				c.mu.Lock()
				c.leaseExpiries++
				c.mu.Unlock()
				res.LeaseExpiries++
				f.obs.Point("fleet.lease.expired", int64(ri))
				c.emit(StepEvent{Kind: "expire", Replica: ri, Wave: wi, Attempt: l.step.attempt, VClock: l.deadline})
				if l.step.attempt >= budget {
					out := &res.Outcomes[ri]
					out.Outcome = OutcomeFailed
					out.Err = fmt.Errorf("fleet: replica %d lease expired %d times, retry budget exhausted", ri, l.step.attempt)
					out.Ticks = 1
					c.note(ri, OutcomeFailed, false)
					c.emit(StepEvent{Kind: "budget-exhausted", Replica: ri, Wave: wi, Attempt: l.step.attempt, VClock: l.deadline})
					if !c.append(Record{Kind: RecOutcome, Replica: int32(ri), Wave: int32(wi), Attempt: int32(l.step.attempt),
						Outcome: OutcomeFailed, Ticks: 1, VClock: l.deadline,
						Mode: f.cfg.requestedMode(), Note: "lease retry budget exhausted"}) {
						return
					}
					continue
				}
				backoff := backoffBase << (l.step.attempt - 1)
				if backoff > backoffCap {
					backoff = backoffCap
				}
				l.step.attempt++
				l.step.notBefore = l.deadline + backoff
				pending = append(pending, l.step)
				c.mu.Lock()
				c.requeues++
				c.mu.Unlock()
				res.Requeues++
				f.obs.Point("fleet.step.requeue", int64(ri))
				c.emit(StepEvent{Kind: "requeue", Replica: ri, Wave: wi, Attempt: l.step.attempt, VClock: l.step.notBefore})
				continue
			}

			res.Outcomes[ri] = l.out
			c.lanes[l.lane] = l.start + l.out.Ticks
			c.setClock(c.lanes[l.lane])
			c.note(ri, l.out.Outcome, false)
			f.obs.Point("fleet.step.outcome", int64(ri))
			mode := f.cfg.outcomeMode(l.out.Stats)
			c.emit(StepEvent{Kind: "outcome", Replica: ri, Wave: wi, Attempt: l.step.attempt,
				Outcome: l.out.Outcome, Mode: mode, VClock: c.lanes[l.lane]})
			note := ""
			if l.out.Err != nil {
				note = l.out.Err.Error()
			}
			if !c.append(Record{Kind: RecOutcome, Replica: int32(ri), Wave: int32(wi), Attempt: int32(l.step.attempt),
				Outcome: l.out.Outcome, Ticks: l.out.Ticks, Ident: l.ident, VClock: c.lanes[l.lane],
				Mode: mode, Note: note}) {
				return
			}
		}
	}
}

// execute runs one leased rewrite on its replica (worker side). Only
// this lease's own fields and the replica's private state are
// touched; the dispatcher reads them back after the round barrier.
func (c *Controller) execute(l *lease, apply func(r *Replica) (core.Stats, error)) {
	r := c.f.replicas[l.step.replica]
	out := &l.out
	out.Index = r.Index
	before := r.Machine.Clock()
	var err error
	if err = r.Machine.Fault(faultinject.SiteFleetWave, r.Index); err != nil {
		out.Outcome, out.Err = OutcomeAborted, err
	} else {
		c.mu.Lock()
		c.attempts[r.Index]++
		c.mu.Unlock()
		out.Stats, err = apply(r)
		out.Err = err
		switch {
		case err == nil:
			out.Outcome = OutcomeCommitted
		case errors.Is(err, core.ErrAborted):
			out.Outcome = OutcomeAborted
		case errors.Is(err, core.ErrRollbackFailed):
			out.Outcome = OutcomeLost
		case errors.Is(err, core.ErrRolledBack):
			out.Outcome = OutcomeRolledBack
		default:
			out.Outcome = OutcomeFailed
		}
	}
	if out.Outcome == OutcomeCommitted {
		// Anchor the commit in the content-addressed store: the
		// journal's outcome record carries this ident, so a resumed
		// controller can check convergence without touching the guest.
		if flat, cerr := r.Cust.Checkpoint(); cerr == nil {
			if id, derr := c.f.store.Deposit(flat); derr == nil {
				l.ident = id
			}
		}
	}
	out.Ticks = r.Machine.Clock() - before
	if out.Ticks == 0 {
		out.Ticks = 1
	}
}

// restoreJournaled restores a replica to pristine and journals the
// result, so a crash between restores is resumable.
func (c *Controller) restoreJournaled(out *ReplicaOutcome, wave int) {
	c.f.restorePristine(out)
	c.note(out.Index, out.Outcome, false)
	note := ""
	if out.Err != nil {
		note = out.Err.Error()
	}
	c.append(Record{Kind: RecOutcome, Replica: int32(out.Index), Wave: int32(wave),
		Outcome: out.Outcome, Ticks: out.Ticks, VClock: c.laneMax(), Note: note})
}

// completeHalt runs (or, on resume, finishes) the halt protocol for
// the halted wave: every replica the journal or this run shows
// committed is restored to its pristine checkpoint.
func (c *Controller) completeHalt(res *RolloutResult, wave []int, wi int) {
	for _, ri := range wave {
		if c.isCrashed() {
			return
		}
		if res.Outcomes[ri].Outcome == OutcomeCommitted {
			c.restoreJournaled(&res.Outcomes[ri], wi)
		}
	}
}

// laneMax returns the latest lane time — the rollout's makespan so far.
func (c *Controller) laneMax() uint64 {
	var m uint64
	for _, l := range c.lanes {
		if l > m {
			m = l
		}
	}
	return m
}

// syncLanes applies a wave barrier: every lane advances to the
// slowest lane's time before the next wave leases.
func (c *Controller) syncLanes() {
	m := c.laneMax()
	for i := range c.lanes {
		c.lanes[i] = m
	}
}

// finish computes the rollout's cost model and closes the journal.
// SerialTicks sums every attempted step's virtual cost (the one-lane
// makespan); FleetTicks is the latest lane time — what the leased
// worker lanes actually paid, wave barriers, lease expiries and
// backoff waits included.
func (c *Controller) finish(res *RolloutResult) (*RolloutResult, error) {
	c.mu.Lock()
	for i := range res.Outcomes {
		res.Outcomes[i].Attempts = c.attempts[i]
		if res.Outcomes[i].Outcome != OutcomePending {
			res.SerialTicks += res.Outcomes[i].Ticks
		}
	}
	c.mu.Unlock()
	res.FleetTicks = c.laneMax()
	if c.isCrashed() {
		return res, ErrControllerCrashed
	}
	c.f.obs.Point("fleet.rollout.done", int64(res.Committed()))
	c.append(Record{Kind: RecDone, Replica: int32(res.Committed()), VClock: res.FleetTicks})
	return res, nil
}

// reconstruct rebuilds a finished rollout's result from its journal
// (the predecessor died after writing its done record).
func (c *Controller) reconstruct(res *RolloutResult, waves [][]int, waveFails map[int]int, haltedAt int) (*RolloutResult, error) {
	for wi, wave := range waves {
		fails, ok := waveFails[wi]
		if !ok {
			if wi == haltedAt || (haltedAt >= 0 && wi > haltedAt) {
				break
			}
			continue
		}
		res.Waves = append(res.Waves, WaveResult{
			Index: wi, Canary: wi == 0,
			Replicas: append([]int(nil), wave...),
			Failures: fails,
		})
	}
	if haltedAt >= 0 {
		res.Halted, res.HaltedWave = true, haltedAt
	}
	for i := range res.Outcomes {
		if res.Outcomes[i].Outcome != OutcomePending {
			res.SerialTicks += res.Outcomes[i].Ticks
		}
	}
	res.FleetTicks = c.laneMax()
	return res, nil
}
