package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// The rollout journal is the controller's crash-safety mechanism: an
// append-only, CRC-checked record stream of everything the controller
// decided — step intents, step outcomes, wave summaries, halts. A
// controller that dies mid-rollout leaves the journal behind, and
// ResumeController rebuilds the rollout's exact progress from it:
// committed replicas are never rewritten again, torn intent windows
// are re-verified against the live replica, and the halt protocol is
// completed if the crash interrupted it.
//
// The format is deliberately dumb: a magic word, then length-prefixed
// frames, each frame carrying a CRC-32C over its payload. A crash (or
// an injected fleet.journal.append fault) can tear the final frame;
// DecodeJournal tolerates exactly that — a short or corrupt *tail* is
// dropped, while corruption anywhere earlier is an error.

// Journal errors.
var (
	// ErrJournalCorrupt reports CRC or framing damage before the
	// final record — damage a torn tail write cannot explain.
	ErrJournalCorrupt = errors.New("fleet: journal corrupt")
	// ErrJournalMagic reports bytes that are not a rollout journal.
	ErrJournalMagic = errors.New("fleet: not a rollout journal")
)

// Journal format versions. New journals are written at the current
// version; DecodeJournal reads every version it has ever written.
//
//	DJL1: original format — 39-byte record header, no Mode byte.
//	DJL2: added the per-record step Mode byte for live-patch rollouts.
//	DJL3: added the attestation record kinds (RecAttest, RecRepair,
//	      RecQuarantine); wire layout identical to v2.
const (
	journalMagicV1 uint32 = 0x444a_4c31
	journalMagicV2 uint32 = 0x444a_4c32
	journalMagicV3 uint32 = 0x444a_4c33
	// journalMagic is the version new journals are written at.
	journalMagic = journalMagicV3
)

// RecKind enumerates journal record types.
type RecKind uint8

const (
	// RecStart opens a rollout: Replica holds the fleet size, Wave the
	// wave count, Attempt the worker-lane count.
	RecStart RecKind = iota + 1
	// RecIntent is appended when a step is leased, before its rewrite
	// runs. An intent with no later outcome for the same replica is a
	// torn window: the controller died after leasing, and resume must
	// verify the replica instead of trusting the journal.
	RecIntent
	// RecOutcome resolves a step: Outcome, Ticks and (for commits) the
	// post-commit checkpoint Ident deposited in the shared page store.
	RecOutcome
	// RecWaveDone closes a wave: Wave is the index, Attempt the
	// failure count.
	RecWaveDone
	// RecHalt marks the rollout halted at wave Wave. Outcome records
	// for the halted wave's pristine restores follow it; a crash in
	// between leaves restores for resume to finish.
	RecHalt
	// RecResume marks a controller restart: Replica holds how many
	// replicas the resumed controller skipped as already committed.
	RecResume
	// RecDone closes the rollout: Replica holds the committed count.
	RecDone
	// RecAttest records one replica's attestation verdict (journal v3).
	// Attempt holds the AttestVerdict, Ident the first four bytes of
	// the attested root, Ticks the pages checked.
	RecAttest
	// RecRepair records an in-place anti-entropy repair attempt
	// (journal v3): Attempt is the try number, Ticks the pages
	// repaired, Outcome the step outcome after the repair.
	RecRepair
	// RecQuarantine records a replica drained from the fleet after its
	// repair budget was exhausted (journal v3): Attempt holds the
	// failed try count. A later RecAttest with VerdictReadmit lifts it.
	RecQuarantine
)

func (k RecKind) String() string {
	switch k {
	case RecStart:
		return "start"
	case RecIntent:
		return "intent"
	case RecOutcome:
		return "outcome"
	case RecWaveDone:
		return "wave-done"
	case RecHalt:
		return "halt"
	case RecResume:
		return "resume"
	case RecDone:
		return "done"
	case RecAttest:
		return "attest"
	case RecRepair:
		return "repair"
	case RecQuarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("RecKind(%d)", int(k))
	}
}

// AttestVerdict is the per-replica result of one attestation sweep,
// journaled in a RecAttest record's Attempt field.
type AttestVerdict int32

const (
	// VerdictClean: live text matched the oracle root.
	VerdictClean AttestVerdict = iota
	// VerdictRepaired: text had diverged and was repaired in place.
	VerdictRepaired
	// VerdictSkew: the cheap collected root diverged but the
	// authoritative page-by-page attestation found the text clean —
	// the collection channel, not the text, was wrong.
	VerdictSkew
	// VerdictForeign: text held bytes outside the oracle's version
	// chain (still repaired from the store, but worth distinguishing).
	VerdictForeign
	// VerdictReadmit: a quarantined replica re-attested clean on
	// resume and rejoined the fleet.
	VerdictReadmit
)

func (v AttestVerdict) String() string {
	switch v {
	case VerdictClean:
		return "clean"
	case VerdictRepaired:
		return "repaired"
	case VerdictSkew:
		return "skew"
	case VerdictForeign:
		return "foreign"
	case VerdictReadmit:
		return "readmit"
	default:
		return fmt.Sprintf("AttestVerdict(%d)", int32(v))
	}
}

// Record is one journal entry. Field meaning varies by Kind (see the
// RecKind constants); unused fields are zero. VClock stamps the
// controller's virtual clock at append time — never wall time, so
// identical rollouts journal identical bytes.
type Record struct {
	Kind    RecKind
	Replica int32
	Wave    int32
	Attempt int32
	Outcome Outcome
	Ticks   uint64
	Ident   uint32
	VClock  uint64
	// Mode records the step's rewrite path. On an intent record it is
	// the requested mode (ModeLivePatch when Config.LivePatch is set);
	// on an outcome record it is what actually happened — a requested
	// live patch that took the transaction instead is journaled as
	// ModeFellBack. Resume uses the intent mode to pick the right
	// torn-window verification (byte-wise for live patches).
	Mode StepMode
	Note string
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord serializes one record payload (no frame header).
func encodeRecord(r Record) []byte {
	note := []byte(r.Note)
	if len(note) > 0xffff {
		note = note[:0xffff]
	}
	buf := make([]byte, 0, recHeaderLen+len(note))
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Replica))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Wave))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Attempt))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Outcome))
	buf = binary.LittleEndian.AppendUint64(buf, r.Ticks)
	buf = binary.LittleEndian.AppendUint32(buf, r.Ident)
	buf = binary.LittleEndian.AppendUint64(buf, r.VClock)
	buf = append(buf, byte(r.Mode))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(note)))
	buf = append(buf, note...)
	return buf
}

// recHeaderLen is the fixed prefix of an encoded record since v2:
// kind (1), replica/wave/attempt/outcome/ident (4 each), ticks/vclock
// (8 each), mode (1), note length (2). v1 records had no Mode byte.
const (
	recHeaderLen   = 40
	recHeaderLenV1 = 39
)

// decodeRecord parses one record payload at the given journal version.
func decodeRecord(p []byte, version uint32) (Record, error) {
	hdr := recHeaderLen
	if version == journalMagicV1 {
		hdr = recHeaderLenV1
	}
	if len(p) < hdr {
		return Record{}, fmt.Errorf("%w: short record payload (%d bytes)", ErrJournalCorrupt, len(p))
	}
	r := Record{
		Kind:    RecKind(p[0]),
		Replica: int32(binary.LittleEndian.Uint32(p[1:])),
		Wave:    int32(binary.LittleEndian.Uint32(p[5:])),
		Attempt: int32(binary.LittleEndian.Uint32(p[9:])),
		Outcome: Outcome(binary.LittleEndian.Uint32(p[13:])),
		Ticks:   binary.LittleEndian.Uint64(p[17:]),
		Ident:   binary.LittleEndian.Uint32(p[25:]),
		VClock:  binary.LittleEndian.Uint64(p[29:]),
	}
	noteOff := 37
	if version != journalMagicV1 {
		r.Mode = StepMode(p[37])
		noteOff = 38
	}
	if version != journalMagicV3 && r.Kind >= RecAttest {
		return Record{}, fmt.Errorf("%w: record kind %d not valid before journal v3", ErrJournalCorrupt, r.Kind)
	}
	n := int(binary.LittleEndian.Uint16(p[noteOff:]))
	if len(p) != hdr+n {
		return Record{}, fmt.Errorf("%w: record payload length %d, note claims %d", ErrJournalCorrupt, len(p), n)
	}
	r.Note = string(p[hdr:])
	return r, nil
}

// Journal is the append-only rollout log. Appends are CRC-framed and
// fault-injectable (faultinject.SiteFleetJournalAppend); a failed
// append leaves a torn half-frame behind, exactly what a crashed
// write would. Safe for concurrent use, though the controller appends
// only from its dispatch loop to keep record order deterministic.
type Journal struct {
	mu   sync.Mutex
	buf  []byte
	recs []Record
	hook kernel.FaultHook
}

// NewJournal creates an empty journal.
func NewJournal() *Journal {
	return &Journal{buf: binary.LittleEndian.AppendUint32(nil, journalMagic)}
}

// SetFaultHook installs the fault hook consulted on every append.
func (j *Journal) SetFaultHook(h kernel.FaultHook) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.hook = h
}

// Append frames, checksums and appends one record. An injected fault
// at fleet.journal.append tears the write: half the frame lands in
// the journal, the record is not committed, and the error is
// returned — the controller treats it as its own death.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	payload := encodeRecord(r)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	if j.hook != nil {
		if err := j.hook.Fault(faultinject.SiteFleetJournalAppend, int(r.Kind)); err != nil {
			j.buf = append(j.buf, frame[:len(frame)/2]...)
			return fmt.Errorf("fleet: journal append (%s record) torn: %w", r.Kind, err)
		}
	}
	j.buf = append(j.buf, frame...)
	j.recs = append(j.recs, r)
	return nil
}

// Bytes returns a copy of the serialized journal.
func (j *Journal) Bytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]byte(nil), j.buf...)
}

// Records returns the committed records in append order. Torn appends
// are not included.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.recs...)
}

// Len returns the committed record count.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// DecodeJournal parses a serialized journal at any version this
// package has ever written (v1, v2 or v3). A truncated or CRC-damaged
// final frame — the signature of a crash mid-append — is dropped
// silently; the same damage anywhere before the tail returns
// ErrJournalCorrupt, because an append-only log cannot lose interior
// records without foul play.
func DecodeJournal(data []byte) ([]Record, error) {
	if len(data) < 4 {
		return nil, ErrJournalMagic
	}
	version := binary.LittleEndian.Uint32(data)
	switch version {
	case journalMagicV1, journalMagicV2, journalMagicV3:
	default:
		return nil, ErrJournalMagic
	}
	var recs []Record
	off := 4
	for off < len(data) {
		if len(data)-off < 8 {
			break // torn tail: frame header incomplete
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if len(data)-off-8 < n {
			break // torn tail: payload incomplete
		}
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			if off+8+n == len(data) {
				break // torn tail: final frame fails its CRC
			}
			return nil, fmt.Errorf("%w: CRC mismatch at offset %d (record %d)", ErrJournalCorrupt, off, len(recs))
		}
		rec, err := decodeRecord(payload, version)
		if err != nil {
			if off+8+n == len(data) {
				break
			}
			return nil, err
		}
		recs = append(recs, rec)
		off += 8 + n
	}
	return recs, nil
}

// journalFrom rebuilds an appendable journal over previously decoded
// records: resume continues the same log. The committed records are
// re-encoded into a fresh current-version buffer rather than sliced
// out of the old bytes — a v3 journal round-trips byte-identically
// (resume determinism is preserved), while a v1/v2 journal is
// upgraded to v3 on resume, and any torn tail is dropped either way.
func journalFrom(recs []Record) *Journal {
	j := NewJournal()
	j.recs = append([]Record(nil), recs...)
	for _, r := range recs {
		payload := encodeRecord(r)
		j.buf = binary.LittleEndian.AppendUint32(j.buf, uint32(len(payload)))
		j.buf = binary.LittleEndian.AppendUint32(j.buf, crc32.Checksum(payload, crcTable))
		j.buf = append(j.buf, payload...)
	}
	return j
}
