package fleet

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// The silent-corruption chaos suite. Unlike every other chaos site,
// these faults return no error anywhere: text bits flip, store blobs
// rot, collected roots skew — and the run continues as if nothing
// happened. The invariant under test is therefore not "the error is
// handled" but "the corruption cannot stay silent": after a Scrub
// rollout, every replica is either attested-correct (live text proven
// equal to its oracle) or journaled-quarantined. Never silently wrong.
//
// Dual zero-downtime accounting rides along: in-place repairs must
// never show up as restores in the journal, never move a root PID, and
// never emit a fleet.rollback observation.

// attestChaosFleet builds the standard 64-replica Scrub fleet.
func attestChaosFleet(t *testing.T, tpl *template, inj *faultinject.Injector) *Fleet {
	t.Helper()
	cfg := liveConfig(tpl, 64, 8, 8, 56)
	cfg.Scrub = true
	cfg.FaultHook = inj
	f, err := New(tpl.m, tpl.pid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// assertAttestedOrQuarantined enforces the silent-corruption invariant
// and the dual zero-downtime ledger after a Scrub rollout.
func assertAttestedOrQuarantined(t *testing.T, f *Fleet, ctl *Controller, res *RolloutResult, pids []int) {
	t.Helper()
	// Fold the journal into the quarantine set it proves.
	journaled := map[int]bool{}
	for _, rec := range ctl.Journal().Records() {
		switch rec.Kind {
		case RecQuarantine:
			journaled[int(rec.Replica)] = true
		case RecAttest:
			if AttestVerdict(rec.Attempt) == VerdictReadmit {
				delete(journaled, int(rec.Replica))
			}
		case RecOutcome:
			if rec.Outcome == OutcomeRestored {
				t.Errorf("journal shows a restore during a repair-only run: %+v", rec)
			}
		}
	}
	// Disarm every silent fault before verifying: the verification
	// attest must observe, not inject.
	for _, r := range f.Replicas() {
		r.Machine.SetFaultHook(nil)
	}
	f.Store().SetFaultHook(nil)

	if res.Halted {
		t.Errorf("silent corruption halted the rollout: %+v", res.Waves)
	}
	for _, r := range f.Replicas() {
		if r.Quarantined() {
			if !journaled[r.Index] {
				t.Errorf("replica %d quarantined in memory but not in the journal", r.Index)
			}
			continue
		}
		if journaled[r.Index] {
			t.Errorf("replica %d journaled quarantined but serving", r.Index)
		}
		if o := res.Outcomes[r.Index].Outcome; o == OutcomeRestored || o == OutcomeLost {
			t.Errorf("replica %d outcome %v: repair must not restore", r.Index, o)
		}
		if r.Cust.PID() != pids[r.Index] {
			t.Errorf("replica %d PID %d -> %d: zero-downtime repair moved the root",
				r.Index, pids[r.Index], r.Cust.PID())
		}
		rep, err := r.Cust.Attest()
		if err != nil {
			t.Errorf("replica %d verification attest: %v", r.Index, err)
			continue
		}
		if !rep.Clean() {
			t.Errorf("replica %d SILENTLY DIVERGED past the sweep: %d mismatches",
				r.Index, len(rep.Mismatches))
		}
		if got := request(r.Machine, 8080, "GET /\n"); !strings.Contains(got, "200") {
			t.Errorf("replica %d attested clean but not serving: %q", r.Index, got)
		}
	}
	for _, ev := range f.Observer().Events() {
		if ev.Name == "fleet.rollback" {
			t.Errorf("fleet.rollback observed during a repair-only run")
		}
	}
}

// runAttestChaos drives the seed sweep for one silent fault site.
func runAttestChaos(t *testing.T, arm func(inj *faultinject.Injector, seed int64)) {
	runAttestChaosMode(t, kernel.ModeInterpret, arm)
}

// runAttestChaosMode is runAttestChaos under a chosen execution
// engine: the mode is set on the template machine, and every CoW
// replica inherits it through Machine.Clone.
func runAttestChaosMode(t *testing.T, mode kernel.ExecMode, arm func(inj *faultinject.Injector, seed int64)) {
	tpl := bootLiveTemplate(t)
	tpl.m.SetExecMode(mode)
	for seed := int64(0); seed < chaosSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed)
			arm(inj, seed)
			f := attestChaosFleet(t, tpl, inj)
			pids := make([]int, 64)
			for _, r := range f.Replicas() {
				pids[r.Index] = r.Cust.PID()
			}
			ctl := NewController(f, nil)
			res, err := ctl.Run(applyLive(tpl))
			if err != nil {
				t.Fatal(err)
			}
			if inj.Injected() == 0 {
				t.Fatal("armed faults never fired")
			}
			assertAttestedOrQuarantined(t, f, ctl, res, pids)
			if mode != kernel.ModeInterpret {
				var st kernel.BlockCacheStats
				for _, r := range f.Replicas() {
					st.Add(r.Machine.BlockCacheStats())
				}
				if st.Hits == 0 {
					t.Errorf("translate-mode fleet never hit the block cache: %+v", st)
				}
			}
		})
	}
}

// TestFleetChaosAttestBitflip: silent text bit flips during the sweeps.
// Every flip is either repaired in place or the victim is quarantined.
func TestFleetChaosAttestBitflip(t *testing.T) {
	runAttestChaos(t, func(inj *faultinject.Injector, seed int64) {
		inj.FailTransient(faultinject.SiteTextBitflip, 1+int(seed)%29, 1+int(seed)%4)
	})
}

// TestFleetChaosAttestBitflipTranslate is the bitflip sweep with every
// replica executing through the block cache: flips land on pages whose
// decodes are cached (caught only by the generation check — FlipBits
// bypasses the dirty bitmap and the eager flush), and each repair is a
// loud write that must flush the pre-repair blocks. The verification
// attest plus the serving probe prove no repaired page ever executes
// stale cached code.
func TestFleetChaosAttestBitflipTranslate(t *testing.T) {
	runAttestChaosMode(t, kernel.ModeTranslate, func(inj *faultinject.Injector, seed int64) {
		inj.FailTransient(faultinject.SiteTextBitflip, 1+int(seed)%29, 1+int(seed)%4)
	})
}

// TestFleetChaosStoreRot: a store blob silently rots in place on read,
// killing the repair's primary source for every replica that shares it
// (the store is content-addressed and deduplicated). Flips force the
// repairs that read the store; replicas whose expected bytes cannot be
// reconstructed from any surviving version are quarantined.
func TestFleetChaosStoreRot(t *testing.T) {
	runAttestChaos(t, func(inj *faultinject.Injector, seed int64) {
		inj.FailTransient(faultinject.SiteTextBitflip, 1+int(seed)%17, 1+int(seed)%3)
		inj.FailTransient(faultinject.SiteStoreRot, 1+int(seed)%3, 1+int(seed)%2)
	})
}

// TestFleetChaosAttestSkew: the collection channel lies about replica
// roots. The authoritative oracle comparison absorbs every skew — no
// repair, no quarantine, no text ever touched.
func TestFleetChaosAttestSkew(t *testing.T) {
	runAttestChaos(t, func(inj *faultinject.Injector, seed int64) {
		inj.FailTransient(faultinject.SiteAttestSkew, 1+int(seed)%61, 1+int(seed)%5)
	})
}
