package supervise

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/faultinject"
)

// TestStormLadderScrubRepairsCorruptText: a storm whose deeper rungs
// are unavailable reaches rung 4 — attest and scrub — and when the
// guest's text really has silently diverged, the scrub repairs it in
// place and the ladder STOPS there: no pristine restore, no downtime,
// the disabled feature stays disabled.
func TestStormLadderScrubRepairsCorruptText(t *testing.T) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9210})
	blocks := b.profile(t,
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"})
	in := faultinject.New(7)
	in.FailTransient(faultinject.SiteSuperviseReenable, 1, -1) // hard faults
	in.FailTransient(faultinject.SiteSuperviseDisarm, 1, -1)
	b.m.SetFaultHook(in)
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t)})
	if err != nil {
		t.Fatal(err)
	}
	sup := New(b.m, cust, Config{
		PollEvery:      neverPoll,
		StormThreshold: 3,
		StormWindow:    1 << 40,
	})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}

	// Silent corruption inside the disabled block's body (never
	// executed — the entry INT3 fires first — so it manifests only as
	// diverged text, exactly the failure the scrub rung exists for).
	p, err := b.m.Process(cust.PID())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Mem().FlipBits(blocks[0].Addr+2, 0x40) {
		t.Fatal("flip refused")
	}

	for i := 0; i < 4; i++ {
		b.request(t, "PUT /f x\n")
	}
	sup.Step(b.m.Clock())

	if lvl := sup.Level(); lvl != 4 {
		t.Fatalf("ladder level %d, want 4 (scrub)", lvl)
	}
	if sup.Restored() {
		t.Fatal("scrub rung escalated to a pristine restore anyway")
	}
	rep, err := cust.Attest()
	if err != nil || !rep.Clean() {
		t.Fatalf("text still diverged after scrub: %v %+v", err, rep)
	}
	// The feature stayed disabled (no pristine rollback happened) and
	// the guest is serving.
	if got := b.request(t, "PUT /f x\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after scrub -> %q, want 403 (feature lost)", got)
	}
	b.assertGET(t)
}

// TestStormLadderScrubFallsThroughOnCleanText: the same starved
// ladder with NO text divergence must not stop at the scrub rung — a
// clean attestation is not an answer to a storm, so the ladder
// proceeds to the pristine restore.
func TestStormLadderScrubFallsThroughOnCleanText(t *testing.T) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9211})
	blocks := b.profile(t,
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"})
	in := faultinject.New(7)
	in.FailTransient(faultinject.SiteSuperviseReenable, 1, -1)
	in.FailTransient(faultinject.SiteSuperviseDisarm, 1, -1)
	b.m.SetFaultHook(in)
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t)})
	if err != nil {
		t.Fatal(err)
	}
	sup := New(b.m, cust, Config{
		PollEvery:      neverPoll,
		StormThreshold: 3,
		StormWindow:    1 << 40,
	})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b.request(t, "PUT /f x\n")
	}
	sup.Step(b.m.Clock())

	if !sup.Restored() || !sup.Disarmed() {
		t.Fatalf("clean-text storm: restored=%v disarmed=%v, want both (scrub must not absorb it)",
			sup.Restored(), sup.Disarmed())
	}
}

// TestScrubRungFaultFallsThrough: an injected supervise.scrub fault
// starves rung 4 even with corrupt text; the ladder answers with the
// pristine restore, which also heals the corruption.
func TestScrubRungFaultFallsThrough(t *testing.T) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9212})
	blocks := b.profile(t,
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"})
	in := faultinject.New(7)
	in.FailTransient(faultinject.SiteSuperviseReenable, 1, -1)
	in.FailTransient(faultinject.SiteSuperviseDisarm, 1, -1)
	in.FailTransient(faultinject.SiteSuperviseScrub, 1, -1)
	b.m.SetFaultHook(in)
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t)})
	if err != nil {
		t.Fatal(err)
	}
	sup := New(b.m, cust, Config{
		PollEvery:      neverPoll,
		StormThreshold: 3,
		StormWindow:    1 << 40,
	})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	p, err := b.m.Process(cust.PID())
	if err != nil {
		t.Fatal(err)
	}
	p.Mem().FlipBits(blocks[0].Addr+2, 0x40)
	for i := 0; i < 4; i++ {
		b.request(t, "PUT /f x\n")
	}
	sup.Step(b.m.Clock())

	if !sup.Restored() {
		t.Fatal("faulted scrub rung did not fall through to restore")
	}
	// The restore rebound the customizer to pristine text; its fresh
	// oracle must attest clean.
	rep, err := cust.Attest()
	if err != nil || !rep.Clean() {
		t.Fatalf("restored guest attests dirty: %v %+v", err, rep)
	}
	b.assertGET(t)
}
