package supervise

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/obs"
	"github.com/dynacut/dynacut/internal/trace"
)

// neverPoll parks the tick watchdog far in the future so unit tests
// drive Supervisor.Step by hand, deterministically.
const neverPoll = 1 << 60

// bed is a booted, traced web-server guest (the same harness shape as
// internal/core's testbed, rebuilt here to keep the package test
// surface self-contained).
type bed struct {
	m       *kernel.Machine
	app     *webserv.App
	root    int
	col     *trace.Collector
	initLog *trace.Log
}

func boot(t *testing.T, cfg webserv.Config) *bed {
	t.Helper()
	app, err := webserv.Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := kernel.NewMachine()
	col := trace.NewCollector(app.Config.Name)
	m.SetTracer(col)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	b := &bed{m: m, app: app, root: p.PID(), col: col}
	m.SetNudgeFunc(func(pid int, arg uint64) {
		if b.initLog == nil {
			pr, err := m.Process(pid)
			if err != nil {
				return
			}
			b.initLog = col.SnapshotAndReset(pr.Modules(), "init")
		}
	})
	if !m.RunUntil(func() bool { return b.initLog != nil }, 10_000_000) {
		t.Fatalf("boot: nudge never fired; exited=%v killed=%v", p.Exited(), p.KilledBy())
	}
	m.Run(10000)
	return b
}

func (b *bed) request(t *testing.T, req string) string {
	t.Helper()
	conn, err := b.m.Dial(b.app.Config.Port)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	b.m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
	b.m.Run(20000)
	return string(conn.ReadAll())
}

func (b *bed) profile(t *testing.T, wanted, undesired []string) []coverage.AbsBlock {
	t.Helper()
	b.col.Reset()
	for _, r := range wanted {
		b.request(t, r)
	}
	covW := b.snapshot(t, "wanted")
	for _, r := range undesired {
		b.request(t, r)
	}
	covU := b.snapshot(t, "undesired")
	return core.IdentifyFeatureBlocks(covU, covW, b.app.Config.Name)
}

func (b *bed) snapshot(t *testing.T, phase string) *coverage.Graph {
	t.Helper()
	procs := b.m.Processes()
	if len(procs) == 0 {
		t.Fatal("no live processes")
	}
	return coverage.FromLog(b.col.SnapshotAndReset(procs[0].Modules(), phase))
}

func (b *bed) errPath(t *testing.T) uint64 {
	t.Helper()
	sym, err := b.app.Exe.Symbol("resp_403")
	if err != nil {
		t.Fatal(err)
	}
	return sym.Value
}

func (b *bed) assertGET(t *testing.T) {
	t.Helper()
	if got := b.request(t, "GET /\n"); !strings.Contains(got, "200") {
		t.Fatalf("GET -> %q, want 200", got)
	}
}

// canary returns an end-to-end probe against the bed's server.
func (b *bed) canary() func() error {
	return func() error {
		conn, err := b.m.Dial(b.app.Config.Port)
		if err != nil {
			return err
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("GET /\n")); err != nil {
			return err
		}
		if !b.m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000) {
			return errors.New("canary: no response")
		}
		b.m.Run(20000)
		if got := string(conn.ReadAll()); !strings.Contains(got, "200") {
			return fmt.Errorf("canary: got %q", got)
		}
		return nil
	}
}

// TestSupervisorAdoptsAndStrikes: a falsely-removed feature self-heals
// in-guest (§3.2.3); the supervisor's next step adopts the reverted
// addresses, clears the guest log, and charges the owning feature's
// breaker.
func TestSupervisorAdoptsAndStrikes(t *testing.T) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9200})
	blocks := b.profile(t, []string{"GET /\n", "HEAD /\n"}, []string{"POST /\n"})
	if len(blocks) == 0 {
		t.Fatal("no blocks identified")
	}
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t), Verifier: true})
	if err != nil {
		t.Fatal(err)
	}
	sup := New(b.m, cust, Config{PollEvery: neverPoll, StormThreshold: neverPoll})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("post", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	before := cust.DisabledBlockCount()

	// The misclassified POST self-heals under the verifier.
	if got := b.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("POST under verifier -> %q, want 200", got)
	}
	if fl, err := cust.FalseRemovals(); err != nil || len(fl) == 0 {
		t.Fatalf("no false removals logged (err=%v)", err)
	}

	sup.Step(b.m.Clock())

	if fl, err := cust.FalseRemovals(); err != nil || len(fl) != 0 {
		t.Fatalf("false-removal log not adopted: %d entries (err=%v)", len(fl), err)
	}
	if after := cust.DisabledBlockCount(); after >= before {
		t.Errorf("disabled count %d -> %d, want a drop from adoption", before, after)
	}
	br, ok := sup.FeatureBreaker("post")
	if !ok || br.Strikes == 0 {
		t.Errorf("adoption did not strike the owning feature: %+v (ok=%v)", br, ok)
	}
	b.assertGET(t)
}

// TestBreakerOpensQuarantinesAndRecloses walks the full circuit:
// canary failures strike the most recent feature until its breaker
// opens; DisableFeature is refused during probation, admitted as a
// half-open trial after it, closed after a calm trial — and the next
// trip doubles the probation.
func TestBreakerOpensQuarantinesAndRecloses(t *testing.T) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9201})
	blocks := b.profile(t,
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"})
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t)})
	if err != nil {
		t.Fatal(err)
	}
	fail := false
	probe := func() error {
		if fail {
			return errors.New("synthetic canary failure")
		}
		return nil
	}
	const probation = 10_000
	sup := New(b.m, cust, Config{
		PollEvery:        neverPoll,
		StormThreshold:   neverPoll,
		Canary:           probe,
		CanaryEvery:      1,
		CanaryBackoff:    1,
		CanaryBackoffMax: 1,
		BreakerThreshold: 2,
		Probation:        probation,
		ProbationMax:     8 * probation,
		CalmWindow:       5_000,
	})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}

	// Two failing canaries: threshold reached, breaker opens.
	fail = true
	for i := 0; i < 2; i++ {
		b.m.AdvanceClock(10)
		sup.Step(b.m.Clock())
	}
	br, _ := sup.FeatureBreaker("webdav")
	if br.State != BreakerOpen || br.Trips != 1 {
		t.Fatalf("breaker after 2 strikes: %+v, want open/1 trip", br)
	}
	if br.Probation != probation {
		t.Fatalf("first-trip probation %d, want %d", br.Probation, probation)
	}

	// Quarantined while probation runs.
	if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("DisableFeature under probation: err=%v, want ErrQuarantined", err)
	}

	// Past probation the breaker half-opens; a calm trial closes it.
	fail = false
	b.m.AdvanceClock(probation)
	sup.Step(b.m.Clock())
	if br, _ = sup.FeatureBreaker("webdav"); br.State != BreakerHalfOpen {
		t.Fatalf("breaker after probation: %v, want half-open", br.State)
	}
	b.m.AdvanceClock(5_000)
	sup.Step(b.m.Clock())
	if br, _ = sup.FeatureBreaker("webdav"); br.State != BreakerClosed {
		t.Fatalf("breaker after calm trial: %v, want closed", br.State)
	}

	// The next trip doubles the probation (bounded exponential).
	fail = true
	for i := 0; i < 2; i++ {
		b.m.AdvanceClock(10)
		sup.Step(b.m.Clock())
	}
	br, _ = sup.FeatureBreaker("webdav")
	if br.State != BreakerOpen || br.Trips != 2 {
		t.Fatalf("breaker after retrip: %+v, want open/2 trips", br)
	}
	if br.Probation != 2*probation {
		t.Errorf("second-trip probation %d, want doubled %d", br.Probation, 2*probation)
	}
	b.assertGET(t)
}

// TestTrapStormReenablesOffendingFeature: hammering a blocked feature
// past the storm threshold makes the ladder force re-enable it (rung
// 2) and trip its breaker — the guest converges to full service.
func TestTrapStormReenablesOffendingFeature(t *testing.T) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9202})
	blocks := b.profile(t,
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"})
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t)})
	if err != nil {
		t.Fatal(err)
	}
	sup := New(b.m, cust, Config{
		PollEvery:      neverPoll,
		StormThreshold: 3,
		StormWindow:    1 << 40,
	})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := b.request(t, "PUT /f x\n"); !strings.Contains(got, "403") {
			t.Fatalf("blocked PUT -> %q, want 403", got)
		}
	}

	sup.Step(b.m.Clock())

	if lvl := sup.Level(); lvl != 2 {
		t.Fatalf("ladder level %d, want 2 (re-enable)", lvl)
	}
	br, _ := sup.FeatureBreaker("webdav")
	if br.State != BreakerOpen {
		t.Fatalf("offending feature's breaker %v, want open", br.State)
	}
	if n := cust.DisabledBlockCount(); n != 0 {
		t.Fatalf("%d blocks still disabled after forced re-enable", n)
	}
	if got := b.request(t, "PUT /f x\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT after forced re-enable -> %q, want 201", got)
	}
	if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("re-disable of tripped feature: err=%v, want ErrQuarantined", err)
	}
	b.assertGET(t)
}

// TestStormLadderFallsBackToPristine: with re-enable and disarm both
// hard-faulted, a storm walks the ladder to its final rung — the
// last-good pristine images are restored, patching is disarmed, and
// Rearm brings the supervisor back into service.
func TestStormLadderFallsBackToPristine(t *testing.T) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9203})
	blocks := b.profile(t,
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"})
	in := faultinject.New(7)
	in.FailTransient(faultinject.SiteSuperviseReenable, 1, -1) // hard faults
	in.FailTransient(faultinject.SiteSuperviseDisarm, 1, -1)
	b.m.SetFaultHook(in)
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t)})
	if err != nil {
		t.Fatal(err)
	}
	sup := New(b.m, cust, Config{
		PollEvery:      neverPoll,
		StormThreshold: 3,
		StormWindow:    1 << 40,
	})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b.request(t, "PUT /f x\n")
	}

	sup.Step(b.m.Clock())

	if !sup.Restored() || !sup.Disarmed() {
		t.Fatalf("ladder end state restored=%v disarmed=%v, want both", sup.Restored(), sup.Disarmed())
	}
	if err := sup.Err(); err != nil {
		t.Fatalf("guest lost: %v", err)
	}
	// Pristine fallback: everything re-enabled, full service.
	if got := b.request(t, "PUT /f x\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT after pristine restore -> %q, want 201", got)
	}
	b.assertGET(t)
	if _, err := sup.DisableFeature("other", blocks, core.PolicyBlockEntry); !errors.Is(err, ErrDisarmed) {
		t.Fatalf("DisableFeature while disarmed: err=%v, want ErrDisarmed", err)
	}

	// Rearm resumes supervised patching from the new last-good state.
	if err := sup.Rearm(); err != nil {
		t.Fatalf("rearm: %v", err)
	}
	if _, err := sup.DisableFeature("webdav2", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatalf("disable after rearm: %v", err)
	}
	if got := b.request(t, "PUT /f x\n"); !strings.Contains(got, "403") {
		t.Fatalf("PUT after rearmed disable -> %q, want 403", got)
	}
	b.assertGET(t)
}

// TestWatchdogDrivesSupervisor: with a real poll cadence the kernel
// tick watchdog — not a test harness — runs the loop: guest traffic
// alone is enough for the supervisor to adopt a false removal.
func TestWatchdogDrivesSupervisor(t *testing.T) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9204})
	blocks := b.profile(t, []string{"GET /\n", "HEAD /\n"}, []string{"POST /\n"})
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t), Verifier: true})
	if err != nil {
		t.Fatal(err)
	}
	sup := New(b.m, cust, Config{PollEvery: 50, StormThreshold: neverPoll})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("post", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	if got := b.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("POST -> %q", got)
	}
	// More traffic: the watchdog fires during these runs and the
	// supervisor adopts the healed addresses without any manual Step.
	for i := 0; i < 3; i++ {
		b.assertGET(t)
	}
	if fl, err := cust.FalseRemovals(); err != nil || len(fl) != 0 {
		t.Fatalf("watchdog-driven adoption missing: %d entries (err=%v)", len(fl), err)
	}
	if br, ok := sup.FeatureBreaker("post"); !ok || br.Strikes == 0 {
		t.Errorf("no strike recorded by watchdog-driven heal: %+v ok=%v", br, ok)
	}
}

// --- chaos -----------------------------------------------------------

// healChaosScenario: verifier-mode guest with a misclassified POST;
// transient faults at the heal/canary sites must only delay — never
// prevent — convergence to full service with an adopted (empty)
// false-removal log.
func healChaosScenario(t *testing.T, site string, seed int64) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9300})
	in := faultinject.New(seed)
	in.FailTransient(site, 1+int(seed%2), 1)
	b.m.SetFaultHook(in)
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t), Verifier: true, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	blocks := b.profile(t, []string{"GET /\n", "HEAD /\n"}, []string{"POST /\n"})
	sup := New(b.m, cust, Config{
		PollEvery:      neverPoll,
		StormThreshold: neverPoll,
		Canary:         b.canary(),
		CanaryEvery:    10,
		CanaryBackoff:  10,
	})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("post", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	if got := b.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("POST under verifier -> %q", got)
	}
	// Pump the loop; a transient fault costs one round, no more.
	for i := 0; i < 6; i++ {
		b.m.AdvanceClock(100)
		sup.Step(b.m.Clock())
	}
	assertConverged(t, b, sup, cust)
	if fl, err := cust.FalseRemovals(); err != nil || len(fl) != 0 {
		t.Fatalf("false removals never adopted: %d (err=%v)", len(fl), err)
	}
	if got := b.request(t, "POST /\n"); !strings.Contains(got, "200") {
		t.Fatalf("POST after convergence -> %q", got)
	}
}

// stormChaosScenario: redirect-mode guest under a trap storm; faults
// on the ladder rungs (re-enable / disarm / restore) push it down to
// harsher rungs, but it must always converge to full service or the
// clean pristine fallback — never a wedged guest.
func stormChaosScenario(t *testing.T, site string, seed int64) {
	b := boot(t, webserv.Config{Name: "lighttpd", Port: 9301})
	in := faultinject.New(seed)
	switch site {
	case faultinject.SiteSuperviseDisarm:
		// Rung 3 only runs after rung 2 failed.
		in.FailTransient(faultinject.SiteSuperviseReenable, 1, -1)
	case faultinject.SiteSuperviseRestore:
		// Rung 4 only runs after rungs 2 and 3 failed.
		in.FailTransient(faultinject.SiteSuperviseReenable, 1, -1)
		in.FailTransient(faultinject.SiteSuperviseDisarm, 1, -1)
	}
	in.FailTransient(site, 1+int(seed%2), 1)
	b.m.SetFaultHook(in)
	cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t), MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	blocks := b.profile(t,
		[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"},
		[]string{"PUT /f data\n", "DELETE /f\n"})
	sup := New(b.m, cust, Config{
		PollEvery:      neverPoll,
		StormThreshold: 3,
		StormWindow:    1 << 40,
	})
	if err := sup.Attach(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b.request(t, "PUT /f x\n")
	}
	for i := 0; i < 6; i++ {
		sup.Step(b.m.Clock())
		if sup.Err() != nil {
			break
		}
		b.m.AdvanceClock(100)
	}
	assertConverged(t, b, sup, cust)
	// The ladder answered the storm: whatever rung it reached, the
	// blocked feature is back in service.
	if got := b.request(t, "PUT /f x\n"); !strings.Contains(got, "201") {
		t.Fatalf("PUT after ladder -> %q, want full service back", got)
	}
}

// assertConverged checks the chaos invariant: the guest is never
// wedged — it serves, the supervisor holds no fatal error, and the
// breaker ledger is internally consistent.
func assertConverged(t *testing.T, b *bed, sup *Supervisor, cust *core.Customizer) {
	t.Helper()
	if err := sup.Err(); err != nil {
		t.Fatalf("guest lost under transient faults: %v", err)
	}
	if len(b.m.Processes()) == 0 {
		t.Fatal("no live guest processes")
	}
	b.assertGET(t)
	st := sup.Status()
	if st.Restored && !st.Disarmed {
		t.Errorf("restored guest must be disarmed: %+v", st)
	}
	for name, br := range st.Breakers {
		switch br.State {
		case BreakerClosed, BreakerOpen, BreakerHalfOpen:
		default:
			t.Errorf("breaker %q in impossible state %d", name, br.State)
		}
		if br.State == BreakerOpen && br.Trips == 0 {
			t.Errorf("breaker %q open without a recorded trip", name)
		}
		if br.Probation > 8*DefaultProbation && br.Probation > sup.cfg.ProbationMax {
			t.Errorf("breaker %q probation %d exceeds cap", name, br.Probation)
		}
	}
}

// TestChaosSupervisorConverges sweeps every supervise fault site with
// 20 fixed seeds each: a transiently-faulted supervisor action must
// leave the guest either serving at full capacity or restored to the
// clean pristine fallback — never wedged.
func TestChaosSupervisorConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short")
	}
	const seedsPerSite = 20
	healSites := []string{faultinject.SiteSuperviseHeal, faultinject.SiteSuperviseCanary}
	stormSites := []string{
		faultinject.SiteSuperviseReenable,
		faultinject.SiteSuperviseDisarm,
		faultinject.SiteSuperviseRestore,
	}
	for _, site := range healSites {
		for seed := int64(0); seed < seedsPerSite; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", site, seed), func(t *testing.T) {
				healChaosScenario(t, site, seed)
			})
		}
	}
	for _, site := range stormSites {
		for seed := int64(0); seed < seedsPerSite; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", site, seed), func(t *testing.T) {
				stormChaosScenario(t, site, seed)
			})
		}
	}
}

// TestSupervisorBreakerDeterministicAcrossSeeds: the breaker ledger
// after a faulted storm scenario is a pure function of (seed, plan) —
// replaying any seed yields the identical ledger, and all seeds that
// share a plan shape agree on the transition outcome.
func TestSupervisorBreakerDeterministicAcrossSeeds(t *testing.T) {
	run := func(seed int64) map[string]Breaker {
		b := boot(t, webserv.Config{Name: "lighttpd", Port: 9302})
		in := faultinject.New(seed)
		in.FailTransient(faultinject.SiteSuperviseReenable, 1, 1)
		b.m.SetFaultHook(in)
		cust, err := core.New(b.m, b.root, core.Options{RedirectTo: b.errPath(t), MaxAttempts: 3})
		if err != nil {
			t.Fatal(err)
		}
		blocks := b.profile(t,
			[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"},
			[]string{"PUT /f data\n", "DELETE /f\n"})
		sup := New(b.m, cust, Config{PollEvery: neverPoll, StormThreshold: 3, StormWindow: 1 << 40})
		if err := sup.Attach(); err != nil {
			t.Fatal(err)
		}
		if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			b.request(t, "PUT /f x\n")
		}
		for i := 0; i < 4; i++ {
			sup.Step(b.m.Clock())
			b.m.AdvanceClock(100)
		}
		assertConverged(t, b, sup, cust)
		return sup.Status().Breakers
	}
	want := run(0)
	for seed := int64(1); seed < 20; seed++ {
		got := run(seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d breakers, seed 0 had %d", seed, len(got), len(want))
		}
		for name, w := range want {
			g, ok := got[name]
			if !ok {
				t.Fatalf("seed %d: breaker %q missing", seed, name)
			}
			if g.State != w.State || g.Trips != w.Trips || g.Strikes != w.Strikes {
				t.Errorf("seed %d: breaker %q = %+v, seed 0 = %+v (transitions must be seed-independent)",
					seed, name, g, w)
			}
		}
	}
}

// TestSupervisorTraceReplaysByteIdentical: two identical supervised
// chaos runs (same seed, same plan, virtual clocks, stubbed wall
// clock) must serialize byte-identical observability traces — the
// closed loop adds no hidden nondeterminism.
func TestSupervisorTraceReplaysByteIdentical(t *testing.T) {
	run := func() []byte {
		b := boot(t, webserv.Config{Name: "lighttpd", Port: 9303})
		in := faultinject.New(11)
		in.FailTransient(faultinject.SiteSuperviseReenable, 1, 1)
		b.m.SetFaultHook(in)
		o := obs.New(8192)
		o.SetWallClock(func() time.Time { return time.Unix(0, 0) })
		cust, err := core.New(b.m, b.root, core.Options{
			RedirectTo: b.errPath(t), MaxAttempts: 3, Observer: o,
		})
		if err != nil {
			t.Fatal(err)
		}
		blocks := b.profile(t,
			[]string{"GET /\n", "HEAD /\n", "OPTIONS /\n", "POST /\n", "MKCOL /x\n", "BREW /\n"},
			[]string{"PUT /f data\n", "DELETE /f\n"})
		sup := New(b.m, cust, Config{
			PollEvery: neverPoll, StormThreshold: 3, StormWindow: 1 << 40, Observer: o,
		})
		if err := sup.Attach(); err != nil {
			t.Fatal(err)
		}
		if _, err := sup.DisableFeature("webdav", blocks, core.PolicyBlockEntry); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			b.request(t, "PUT /f x\n")
		}
		for i := 0; i < 4; i++ {
			sup.Step(b.m.Clock())
			b.m.AdvanceClock(100)
		}
		var buf bytes.Buffer
		if err := o.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, c := run(), run()
	if !bytes.Equal(a, c) {
		t.Fatalf("supervised chaos trace not reproducible: %d vs %d bytes", len(a), len(c))
	}
	if !bytes.Contains(a, []byte("supervise.storm")) {
		t.Error("trace missing supervise.storm event")
	}
	// The faulted re-enable rung fell through to the disarm rung; both
	// the injected fault and the rung decision must be in the trace.
	if !bytes.Contains(a, []byte(faultinject.SiteSuperviseReenable)) {
		t.Error("trace missing the injected supervise.reenable fault")
	}
	if !bytes.Contains(a, []byte("supervise.degrade.disarm")) {
		t.Error("trace missing supervise.degrade.disarm event")
	}
}
