package supervise

import (
	"errors"
	"testing"
)

func TestAggregateCountsAndWorstLevel(t *testing.T) {
	lost := errors.New("guest lost")
	agg := Aggregate(
		Status{Attached: true, Level: 0},
		Status{Attached: true, Level: 2, Disarmed: true, CanaryFails: 3, WindowHits: 7},
		Status{Attached: true, Level: 3, Restored: true, Err: lost, CanaryFails: 1},
	)
	if agg.Instances != 3 || agg.Attached != 3 {
		t.Fatalf("instances/attached = %d/%d", agg.Instances, agg.Attached)
	}
	if agg.MaxLevel != 3 {
		t.Errorf("MaxLevel = %d, want 3", agg.MaxLevel)
	}
	wantByLevel := []int{1, 0, 1, 1}
	if len(agg.ByLevel) != len(wantByLevel) {
		t.Fatalf("ByLevel = %v, want %v", agg.ByLevel, wantByLevel)
	}
	for i, n := range wantByLevel {
		if agg.ByLevel[i] != n {
			t.Errorf("ByLevel[%d] = %d, want %d", i, agg.ByLevel[i], n)
		}
	}
	if agg.Disarmed != 1 || agg.Restored != 1 || agg.Lost != 1 {
		t.Errorf("disarmed/restored/lost = %d/%d/%d", agg.Disarmed, agg.Restored, agg.Lost)
	}
	if agg.CanaryFails != 4 || agg.WindowHits != 7 {
		t.Errorf("canary/window = %d/%d", agg.CanaryFails, agg.WindowHits)
	}
	if len(agg.Errs) != 1 || !errors.Is(agg.Errs[0], lost) {
		t.Errorf("Errs = %v", agg.Errs)
	}
	if agg.Healthy() {
		t.Error("degraded fleet reported healthy")
	}
	if !Aggregate(Status{Attached: true}).Healthy() {
		t.Error("single normal replica reported unhealthy")
	}
}

func TestAggregateBreakersWorstStateMerge(t *testing.T) {
	agg := Aggregate(
		Status{Breakers: map[string]Breaker{
			"webdav": {State: BreakerClosed, Strikes: 1},
			"cgi":    {State: BreakerOpen, Trips: 1, Strikes: 2, Probation: 100},
		}},
		Status{Breakers: map[string]Breaker{
			"webdav": {State: BreakerHalfOpen, Trips: 2, Strikes: 1},
			"cgi":    {State: BreakerOpen, Trips: 3, Strikes: 1, Probation: 400},
		}},
	)
	wd := agg.Breakers["webdav"]
	if wd.State != BreakerHalfOpen || wd.Strikes != 2 || wd.Trips != 2 {
		t.Errorf("webdav merge = %+v", wd)
	}
	cgi := agg.Breakers["cgi"]
	// Same state: more trips wins the ledger; strikes still summed.
	if cgi.Trips != 3 || cgi.Probation != 400 || cgi.Strikes != 3 {
		t.Errorf("cgi merge = %+v", cgi)
	}
}

func TestAggregateEmpty(t *testing.T) {
	agg := Aggregate()
	if agg.Instances != 0 || !agg.Healthy() || agg.Breakers != nil {
		t.Errorf("empty aggregate = %+v", agg)
	}
}
