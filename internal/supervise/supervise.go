// Package supervise closes DynaCut's adaptation loop (§3.3): a
// deterministic, virtual-clock-driven controller that owns a
// core.Customizer and keeps a customized guest healthy without an
// operator watching. Attached to a kernel.Machine via the tick
// watchdog, the supervisor wakes between scheduler rounds and:
//
//   - polls the injected handler's trap counter and false-removal log,
//     adopting addresses the in-guest verifier healed (§3.2.3) and
//     charging them as strikes against the feature that owned them;
//   - runs a canary probe on a configurable cadence with a virtual-time
//     deadline and bounded exponential backoff after failures;
//   - keeps a per-feature circuit breaker (closed → open → half-open):
//     a feature whose removal keeps misfiring is force re-enabled and
//     quarantined from DisableFeature until its probation — doubling
//     with every trip — expires;
//   - detects trap storms (trap rate over a sliding virtual-time
//     window) and walks a graceful-degradation ladder: heal individual
//     addresses → re-enable the worst feature → re-enable everything
//     and disarm patching → attest and scrub diverged text in place →
//     restore the last-good pristine images.
//
// Everything is driven by the machine's virtual clock and the
// deterministic fault injector, so a supervised chaos run replays
// byte-identically from (seed, plan).
package supervise

import (
	"errors"
	"fmt"

	"github.com/dynacut/dynacut/internal/core"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/obs"
)

// Supervisor errors.
var (
	// ErrDisarmed: the degradation ladder reached rung 3 (or beyond)
	// and switched patching off; DisableFeature refuses until Rearm.
	ErrDisarmed = errors.New("supervise: patching disarmed by degradation ladder")
	// ErrQuarantined: the feature's breaker is open and its probation
	// has not expired yet.
	ErrQuarantined = errors.New("supervise: feature quarantined by open circuit breaker")
	// ErrGuestLost: the final rung — restoring the last-good images —
	// failed RestoreAttempts times in a row; the guest is gone.
	ErrGuestLost = errors.New("supervise: guest lost (pristine restore failed)")
	// ErrNotAttached: the supervisor has no last-good snapshot yet.
	ErrNotAttached = errors.New("supervise: supervisor not attached")
)

// BreakerState is the per-feature circuit-breaker state.
type BreakerState int

// Breaker states. Closed admits DisableFeature; Open quarantines the
// feature until probation expires; HalfOpen admits one trial
// re-disable whose failure reopens the breaker with doubled probation.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is one feature's circuit-breaker ledger.
type Breaker struct {
	State BreakerState
	// Strikes counts failures charged since the breaker last left the
	// open state (verifier reverts, canary failures, failed disables).
	Strikes int
	// Trips counts how many times the breaker has opened; it drives
	// the exponential probation.
	Trips int
	// OpenedAt is the virtual-clock instant of the last trip.
	OpenedAt uint64
	// Probation is how many virtual ticks the feature stays
	// quarantined after OpenedAt (doubles per trip, capped).
	Probation uint64

	trialAt uint64 // when half-open: virtual instant the trial began
}

// Config tunes the supervisor. The zero value of every field selects
// a sensible default; only Canary has no default (nil = no probing).
type Config struct {
	// PollEvery is the supervisor's wake-up cadence in virtual ticks
	// (the tick-watchdog period).
	PollEvery uint64
	// Canary, when non-nil, is the end-to-end health probe (Session's
	// Canary helper wires a request/response check through it).
	Canary func() error
	// CanaryEvery is the probe cadence in virtual ticks.
	CanaryEvery uint64
	// CanaryDeadline bounds the virtual time one probe may consume;
	// a slower probe counts as a failure even if it succeeds.
	CanaryDeadline uint64
	// CanaryBackoff is the first retry delay after a failed probe;
	// it doubles per consecutive failure up to CanaryBackoffMax.
	CanaryBackoff    uint64
	CanaryBackoffMax uint64
	// BreakerThreshold is how many strikes open a closed breaker.
	BreakerThreshold int
	// Probation is the first quarantine length after a breaker trip;
	// it doubles with every further trip up to ProbationMax.
	Probation    uint64
	ProbationMax uint64
	// StormWindow and StormThreshold define a trap storm: at least
	// StormThreshold handler hits within the last StormWindow ticks.
	StormWindow    uint64
	StormThreshold uint64
	// CalmWindow is how long the guest must stay trap-free before the
	// degradation level decays back to normal and half-open breakers
	// close. 0 = StormWindow.
	CalmWindow uint64
	// RestoreAttempts bounds the final rung's pristine-restore retries
	// within one step. A failed restore leaves zero live processes, so
	// the virtual clock freezes and no later watchdog tick would come:
	// the retries must happen here or never.
	RestoreAttempts int
	// Observer receives supervise.* spans and points. nil = silent.
	Observer *obs.Observer
}

// Defaults for Config zero values. The scales match the simulated
// guests, where booting a server costs ~2k virtual ticks and serving
// one request costs ~100: the supervisor wakes about once per
// scheduler round, probes every few hundred ticks, and storms are
// judged over windows a handful of requests wide.
const (
	DefaultPollEvery        = 64
	DefaultCanaryEvery      = 512
	DefaultCanaryDeadline   = 10_000
	DefaultBreakerThreshold = 3
	DefaultProbation        = 2_048
	DefaultStormWindow      = 512
	DefaultStormThreshold   = 8
	DefaultRestoreAttempts  = 5
)

func (c *Config) fillDefaults() {
	if c.PollEvery == 0 {
		c.PollEvery = DefaultPollEvery
	}
	if c.CanaryEvery == 0 {
		c.CanaryEvery = DefaultCanaryEvery
	}
	if c.CanaryDeadline == 0 {
		c.CanaryDeadline = DefaultCanaryDeadline
	}
	if c.CanaryBackoff == 0 {
		c.CanaryBackoff = c.CanaryEvery
	}
	if c.CanaryBackoffMax == 0 {
		c.CanaryBackoffMax = 8 * c.CanaryBackoff
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.Probation == 0 {
		c.Probation = DefaultProbation
	}
	if c.ProbationMax == 0 {
		c.ProbationMax = 8 * c.Probation
	}
	if c.StormWindow == 0 {
		c.StormWindow = DefaultStormWindow
	}
	if c.StormThreshold == 0 {
		c.StormThreshold = DefaultStormThreshold
	}
	if c.CalmWindow == 0 {
		c.CalmWindow = c.StormWindow
	}
	if c.RestoreAttempts == 0 {
		c.RestoreAttempts = DefaultRestoreAttempts
	}
}

// sample is one poll's trap delta at a virtual instant.
type sample struct{ at, hits uint64 }

// Supervisor is the closed-loop controller. Not safe for concurrent
// use: like the machine it supervises, it is single-threaded by
// design (determinism is the point).
type Supervisor struct {
	m    *kernel.Machine
	cust *core.Customizer
	cfg  Config

	attached bool
	busy     bool // a step is running; suppress reentrant steps
	rootAt   int  // root PID recorded when lastGood was taken

	// lastGood is the serialized, self-contained (flattened) pristine
	// image set taken at Attach (or the last Rearm) — the degradation
	// ladder's final anchor.
	lastGood []byte

	breakers map[string]*Breaker
	order    []string // features in first-disable order, for blame

	lastHits uint64
	samples  []sample // sliding trap-rate window

	level     int // current degradation rung reached (0 = normal)
	calmSince uint64

	disarmed bool
	restored bool
	fatal    error

	nextCanaryAt uint64
	canaryFails  int
}

// Status is a point-in-time snapshot of the supervisor's ledger.
type Status struct {
	Attached    bool
	Level       int
	Disarmed    bool
	Restored    bool
	CanaryFails int
	// WindowHits is the trap count inside the current storm window.
	WindowHits uint64
	Breakers   map[string]Breaker
	// Err is non-nil only in the unrecoverable guest-lost state.
	Err error
}

// New builds a supervisor for the customizer's guest. Call Attach to
// snapshot the last-good images and start the closed loop.
func New(m *kernel.Machine, cust *core.Customizer, cfg Config) *Supervisor {
	cfg.fillDefaults()
	if cfg.Observer != nil && m.Observer() == nil {
		m.SetObserver(cfg.Observer)
	}
	return &Supervisor{
		m:        m,
		cust:     cust,
		cfg:      cfg,
		breakers: map[string]*Breaker{},
	}
}

// Attach snapshots the guest's current state as the last-good images
// and installs the supervisor on the machine's tick watchdog. The
// snapshot goes through Customizer.Checkpoint, so the customizer's
// incremental-dump parent chain stays coherent. Attach before the
// first DisableFeature: the last-good anchor should be the full,
// known-healthy service.
func (s *Supervisor) Attach() error {
	if s.attached {
		return nil
	}
	set, err := s.cust.Checkpoint()
	if err != nil {
		return fmt.Errorf("supervise: attach: %w", err)
	}
	s.lastGood = set.Marshal()
	s.rootAt = s.cust.PID()
	now := s.m.Clock()
	s.calmSince = now
	s.nextCanaryAt = now + s.cfg.CanaryEvery
	s.m.SetTickWatchdog(s.cfg.PollEvery, s.Step)
	s.attached = true
	s.point("supervise.attach", int64(len(s.lastGood)))
	return nil
}

// Detach removes the supervisor from the machine's watchdog. The
// ledger (breakers, level, last-good images) is kept.
func (s *Supervisor) Detach() {
	if !s.attached {
		return
	}
	s.m.SetTickWatchdog(0, nil)
	s.attached = false
}

// Step runs one supervision round at virtual instant now. It is the
// tick-watchdog callback, exported so tests and demos can drive the
// loop by hand. Reentrant invocations (the step itself runs the
// machine: canary probes, rewrites, restores) are suppressed.
func (s *Supervisor) Step(now uint64) {
	if !s.attached || s.busy || s.fatal != nil {
		return
	}
	s.busy = true
	defer func() { s.busy = false }()

	delta := s.pollTraps(now)
	healed := s.healOnce(now)
	s.tendBreakers(now)
	s.runCanary(now)

	if delta == 0 && !healed {
		if s.level > 0 && !s.disarmed && !s.restored && now-s.calmSince >= s.cfg.CalmWindow {
			// A full calm window at a recoverable rung: back to normal.
			s.level = 0
			s.point("supervise.degrade.reset", 0)
		}
	} else {
		s.calmSince = now
	}

	if win := s.windowHits(now); win >= s.cfg.StormThreshold {
		s.samples = nil // the window restarts after the response
		s.point("supervise.storm", int64(win))
		if healed && s.level == 0 {
			// Healing is the ladder's first rung, and it just ran: give
			// adoption a chance to end the storm before escalating.
			s.level = 1
			s.point("supervise.degrade.heal", 0)
		} else {
			s.escalate(now)
		}
	}
}

// pollTraps reads the handler hit counter and appends the delta to
// the sliding window. Before any handler is injected there is nothing
// to poll.
func (s *Supervisor) pollTraps(now uint64) uint64 {
	hits, err := s.cust.TrapHits()
	if err != nil {
		return 0
	}
	var delta uint64
	if hits >= s.lastHits {
		delta = hits - s.lastHits
	} else {
		// The counter went backwards: a restore rewound guest memory.
		// Count the post-restore hits only.
		delta = hits
	}
	s.lastHits = hits
	if delta > 0 {
		s.samples = append(s.samples, sample{at: now, hits: delta})
	}
	s.evict(now)
	return delta
}

func (s *Supervisor) evict(now uint64) {
	keep := s.samples[:0]
	for _, sm := range s.samples {
		if now-sm.at <= s.cfg.StormWindow {
			keep = append(keep, sm)
		}
	}
	s.samples = keep
}

func (s *Supervisor) windowHits(now uint64) uint64 {
	var n uint64
	for _, sm := range s.samples {
		if now-sm.at <= s.cfg.StormWindow {
			n += sm.hits
		}
	}
	return n
}

// healOnce adopts the guest's false-removal log if it is non-empty:
// each healed address is accepted as wanted code and charged as a
// strike against the feature that owned it. A fault or error here
// leaves the log intact, so the next step retries.
func (s *Supervisor) healOnce(now uint64) bool {
	_, seen, err := s.cust.FalseRemovalsSeen()
	if err != nil || seen == 0 {
		return false
	}
	if s.cust.InHandler() {
		// A guest process is mid-SIGTRAP-handler: adoption would
		// compact the vtable under its in-progress scan. Defer to the
		// next step; the log persists.
		s.point("supervise.heal.defer", int64(seen))
		return false
	}
	if err := s.m.Fault(faultinject.SiteSuperviseHeal, int(seen)); err != nil {
		s.point("supervise.heal.fail", int64(seen))
		return false
	}
	// Ownership must be read before adoption drops the addresses from
	// the disabled bookkeeping.
	owned := s.cust.Disabled()
	end := s.span("supervise.heal")
	healed, err := s.cust.AdoptFalseRemovals()
	end(err)
	if err != nil {
		s.point("supervise.heal.fail", int64(seen))
		return false
	}
	for _, addr := range healed {
		if name, ok := featureOf(owned, addr); ok {
			s.strike(name, now)
		}
	}
	s.point("supervise.heal", int64(len(healed)))
	return len(healed) > 0
}

// featureOf finds the disabled feature whose block span contains addr.
func featureOf(disabled map[string][]coverage.AbsBlock, addr uint64) (string, bool) {
	for name, blocks := range disabled {
		for _, b := range blocks {
			if addr >= b.Addr && addr < b.Addr+b.Size {
				return name, true
			}
		}
	}
	return "", false
}

// tendBreakers advances breaker timers: open breakers past probation
// go half-open (the next DisableFeature is the trial), and half-open
// breakers whose trial survived a calm window close.
func (s *Supervisor) tendBreakers(now uint64) {
	for _, name := range s.order {
		br := s.breakers[name]
		switch br.State {
		case BreakerOpen:
			if now-br.OpenedAt >= br.Probation {
				br.State = BreakerHalfOpen
				br.trialAt = now
				br.Strikes = 0
				s.point("supervise.breaker.halfopen", int64(br.Trips))
			}
		case BreakerHalfOpen:
			if br.Strikes == 0 && now-br.trialAt >= s.cfg.CalmWindow {
				br.State = BreakerClosed
				s.point("supervise.breaker.close", int64(br.Trips))
			}
		}
	}
}

// runCanary runs the end-to-end probe when due. Failures back off
// exponentially (bounded) and strike the most recently disabled
// feature — or escalate the ladder when nothing is disabled, since a
// failing probe with no customization applied means the service
// itself is broken.
func (s *Supervisor) runCanary(now uint64) {
	if s.cfg.Canary == nil || now < s.nextCanaryAt {
		return
	}
	err := s.m.Fault(faultinject.SiteSuperviseCanary, s.canaryFails)
	if err == nil {
		before := s.m.Clock()
		end := s.span("supervise.canary")
		err = s.cfg.Canary()
		if elapsed := s.m.Clock() - before; err == nil && elapsed > s.cfg.CanaryDeadline {
			err = fmt.Errorf("supervise: canary exceeded deadline (%d > %d ticks)",
				elapsed, s.cfg.CanaryDeadline)
		}
		end(err)
	}
	after := s.m.Clock() // the probe itself consumed virtual time
	if err == nil {
		s.canaryFails = 0
		s.nextCanaryAt = after + s.cfg.CanaryEvery
		s.point("supervise.canary.ok", 0)
		return
	}
	s.canaryFails++
	backoff := shiftClamp(s.cfg.CanaryBackoff, s.canaryFails-1, s.cfg.CanaryBackoffMax)
	s.nextCanaryAt = after + backoff
	s.point("supervise.canary.fail", int64(s.canaryFails))
	if name, ok := s.latestDisabled(); ok {
		s.strike(name, now)
	} else if !s.restored {
		s.escalate(now)
	}
}

// latestDisabled returns the most recently disabled feature that is
// still disabled.
func (s *Supervisor) latestDisabled() (string, bool) {
	disabled := s.cust.Disabled()
	for i := len(s.order) - 1; i >= 0; i-- {
		if _, ok := disabled[s.order[i]]; ok {
			return s.order[i], true
		}
	}
	return "", false
}

// shiftClamp returns base << n clamped to [base, max], overflow-safe.
func shiftClamp(base uint64, n int, max uint64) uint64 {
	v := base
	for i := 0; i < n; i++ {
		v <<= 1
		if v > max || v < base {
			return max
		}
	}
	if v > max {
		return max
	}
	return v
}

// escalate walks the degradation ladder from the current level until
// a rung succeeds. Rung failures (injected or real) fall through to
// the next, harsher rung within the same step — a storm is not left
// unanswered.
func (s *Supervisor) escalate(now uint64) {
	for s.level < 5 {
		s.level++
		s.point("supervise.degrade.level", int64(s.level))
		switch s.level {
		case 1:
			if s.healOnce(now) {
				s.point("supervise.degrade.heal", 0)
				return
			}
		case 2:
			if s.reenableWorst(now) {
				return
			}
		case 3:
			if s.disarmAll(now) {
				return
			}
		case 4:
			if s.scrubText(now) {
				return
			}
		case 5:
			s.restorePristine(now)
			return
		}
	}
}

// scrubText is the ladder rung between "everything disarmed" and the
// last-resort pristine restore: attest the live text against the
// expected-state oracle and repair any diverged page in place. If the
// storm was caused by silent text corruption (a bit flip turning sound
// code into trap-raising garbage), this heals it with zero downtime —
// the restore rung below would pay a full kill/restore for the same
// outcome. A clean attestation means the storm is NOT a text problem,
// so the rung reports failure and the ladder falls through.
func (s *Supervisor) scrubText(now uint64) bool {
	if err := s.m.Fault(faultinject.SiteSuperviseScrub, 0); err != nil {
		s.point("supervise.degrade.scrub.fail", 0)
		return false
	}
	end := s.span("supervise.scrub")
	rep, err := s.cust.Attest()
	if err != nil {
		end(err)
		return false
	}
	if rep.Clean() {
		// Nothing to heal here; the harsher rung must answer the storm.
		end(nil)
		return false
	}
	rs, err := s.cust.Repair(rep, true)
	if err != nil {
		end(err)
		return false
	}
	rep2, err := s.cust.Attest()
	if err != nil || !rep2.Clean() {
		end(fmt.Errorf("supervise: text still diverged after scrub: %v", err))
		return false
	}
	s.point("supervise.degrade.scrub.repaired", int64(rs.Repaired))
	end(nil)
	return true
}

// reenableWorst force re-enables the most-struck (ties: most recently
// disabled) feature and trips its breaker open.
func (s *Supervisor) reenableWorst(now uint64) bool {
	disabled := s.cust.Disabled()
	blame, best := "", -1
	for _, name := range s.order {
		if _, ok := disabled[name]; !ok {
			continue
		}
		if st := s.breakers[name].Strikes; st >= best {
			best, blame = st, name
		}
	}
	if blame == "" {
		return false
	}
	if err := s.m.Fault(faultinject.SiteSuperviseReenable, 0); err != nil {
		s.point("supervise.degrade.reenable.fail", 0)
		return false
	}
	end := s.span("supervise.reenable")
	_, err := s.cust.EnableBlocks(blame)
	end(err)
	if err != nil {
		s.point("supervise.degrade.reenable.fail", 0)
		return false
	}
	s.open(s.breakers[blame], now)
	s.point("supervise.degrade.reenable", 1)
	return true
}

// disarmAll re-enables every disabled feature in one rewrite and
// switches patching off until Rearm.
func (s *Supervisor) disarmAll(now uint64) bool {
	if err := s.m.Fault(faultinject.SiteSuperviseDisarm, 0); err != nil {
		s.point("supervise.degrade.disarm.fail", 0)
		return false
	}
	end := s.span("supervise.disarm")
	_, err := s.cust.EnableAll()
	end(err)
	if err != nil {
		s.point("supervise.degrade.disarm.fail", 0)
		return false
	}
	s.disarmed = true
	s.point("supervise.degrade.disarm", 1)
	return true
}

// restorePristine is the final rung: kill whatever is left of the
// guest and materialize the last-good images. Retries are bounded and
// must happen within this step — a failed restore leaves no live
// process, so the virtual clock freezes and no later watchdog tick
// would arrive. Exhausting the attempts is the one unrecoverable
// outcome (ErrGuestLost).
func (s *Supervisor) restorePristine(now uint64) bool {
	end := s.span("supervise.restore")
	var lastErr error
	for attempt := 1; attempt <= s.cfg.RestoreAttempts; attempt++ {
		if err := s.m.Fault(faultinject.SiteSuperviseRestore, attempt); err != nil {
			lastErr = err
			continue
		}
		set, err := criu.Unmarshal(s.lastGood)
		if err != nil {
			lastErr = err
			continue
		}
		for _, p := range s.m.Processes() {
			s.m.Kill(p.PID())
			s.m.Remove(p.PID())
		}
		procs, pidMap, err := criu.Restore(s.m, set)
		if err != nil {
			lastErr = err
			continue
		}
		root := pidMap[s.rootAt]
		if root == 0 && len(procs) > 0 {
			root = procs[0].PID()
		}
		s.cust.Rebind(root)
		s.restored = true
		s.disarmed = true // pristine images predate all edits; stay off until Rearm
		s.lastHits = 0
		s.samples = nil
		end(nil)
		s.point("supervise.degrade.restore", int64(attempt))
		return true
	}
	s.fatal = fmt.Errorf("%w after %d attempts: %v", ErrGuestLost, s.cfg.RestoreAttempts, lastErr)
	end(s.fatal)
	s.point("supervise.degrade.lost", int64(s.cfg.RestoreAttempts))
	return false
}

// DisableFeature applies a feature removal through the supervisor's
// safety gates: refused while patching is disarmed, refused while the
// feature's breaker is open and under probation, and — past probation
// — admitted as a half-open trial whose failure reopens the breaker
// with doubled probation.
func (s *Supervisor) DisableFeature(name string, blocks []coverage.AbsBlock, policy core.Policy) (core.Stats, error) {
	if s.fatal != nil {
		return core.Stats{}, s.fatal
	}
	if !s.attached {
		return core.Stats{}, ErrNotAttached
	}
	if s.disarmed {
		return core.Stats{}, fmt.Errorf("%w (feature %q)", ErrDisarmed, name)
	}
	now := s.m.Clock()
	br := s.breaker(name)
	if br.State == BreakerOpen {
		if now-br.OpenedAt < br.Probation {
			left := br.Probation - (now - br.OpenedAt)
			return core.Stats{}, fmt.Errorf("%w: %q for another %d ticks", ErrQuarantined, name, left)
		}
		br.State = BreakerHalfOpen
		br.trialAt = now
		br.Strikes = 0
		s.point("supervise.breaker.halfopen", int64(br.Trips))
	}
	stats, err := s.cust.DisableBlocks(name, blocks, policy)
	if err != nil {
		s.strike(name, s.m.Clock())
		return stats, err
	}
	s.noteDisabled(name)
	return stats, nil
}

// Rearm re-enables supervised patching after the ladder disarmed it
// (rung 3) or restored pristine images (rung 5): the current guest
// state is snapshotted as the new last-good anchor and the ladder
// resets to normal. Breaker ledgers survive — quarantines outlive the
// incident that caused them.
func (s *Supervisor) Rearm() error {
	if s.fatal != nil {
		return s.fatal
	}
	if !s.attached {
		return ErrNotAttached
	}
	set, err := s.cust.Checkpoint()
	if err != nil {
		return fmt.Errorf("supervise: rearm: %w", err)
	}
	s.lastGood = set.Marshal()
	s.rootAt = s.cust.PID()
	s.disarmed = false
	s.restored = false
	s.level = 0
	s.calmSince = s.m.Clock()
	s.point("supervise.rearm", int64(len(s.lastGood)))
	return nil
}

// breaker returns (creating if needed) the feature's breaker and
// registers the feature in blame order.
func (s *Supervisor) breaker(name string) *Breaker {
	br, ok := s.breakers[name]
	if !ok {
		br = &Breaker{}
		s.breakers[name] = br
		s.order = append(s.order, name)
	}
	return br
}

// noteDisabled moves name to the end of the blame order (most recent
// disable is blamed first for canary failures).
func (s *Supervisor) noteDisabled(name string) {
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.order = append(s.order, name)
}

// strike charges one failure against the feature's breaker. A closed
// breaker opens at the configured threshold; a half-open breaker's
// trial fails immediately — straight back open with doubled probation.
func (s *Supervisor) strike(name string, now uint64) {
	br := s.breaker(name)
	br.Strikes++
	s.point("supervise.breaker.strike", int64(br.Strikes))
	switch br.State {
	case BreakerHalfOpen:
		s.open(br, now)
	case BreakerClosed:
		if br.Strikes >= s.cfg.BreakerThreshold {
			s.open(br, now)
		}
	}
}

func (s *Supervisor) open(br *Breaker, now uint64) {
	br.State = BreakerOpen
	br.Trips++
	br.OpenedAt = now
	br.Probation = shiftClamp(s.cfg.Probation, br.Trips-1, s.cfg.ProbationMax)
	br.Strikes = 0
	s.point("supervise.breaker.open", int64(br.Trips))
}

// Status snapshots the supervisor's ledger.
func (s *Supervisor) Status() Status {
	brs := make(map[string]Breaker, len(s.breakers))
	for name, br := range s.breakers {
		brs[name] = *br
	}
	return Status{
		Attached:    s.attached,
		Level:       s.level,
		Disarmed:    s.disarmed,
		Restored:    s.restored,
		CanaryFails: s.canaryFails,
		WindowHits:  s.windowHits(s.m.Clock()),
		Breakers:    brs,
		Err:         s.fatal,
	}
}

// Breaker state accessors (for tests and demos).

// FeatureBreaker returns a copy of the feature's breaker ledger.
func (s *Supervisor) FeatureBreaker(name string) (Breaker, bool) {
	br, ok := s.breakers[name]
	if !ok {
		return Breaker{}, false
	}
	return *br, true
}

// Level returns the degradation rung currently reached (0 = normal).
func (s *Supervisor) Level() int { return s.level }

// Disarmed reports whether the ladder switched patching off.
func (s *Supervisor) Disarmed() bool { return s.disarmed }

// Restored reports whether the ladder restored the last-good images.
func (s *Supervisor) Restored() bool { return s.restored }

// Err returns the unrecoverable error, if the guest was lost.
func (s *Supervisor) Err() error { return s.fatal }

func (s *Supervisor) span(name string) func(error) {
	o := s.cfg.Observer
	if o == nil {
		return noopSpanEnd
	}
	o.PhaseStart(name, 0)
	return func(err error) { o.PhaseEnd(name, 0, err) }
}

func noopSpanEnd(error) {}

func (s *Supervisor) point(name string, n int64) {
	if o := s.cfg.Observer; o != nil {
		o.Point(name, n)
	}
}
