package supervise

// Fleet aggregation: a fleet runs one supervisor per replica, and the
// operator wants a single answer to "how is the fleet doing". Aggregate
// folds N per-replica Status snapshots into one ledger — counts by
// degradation level, summed canary/storm pressure, and a worst-state
// merge of the per-feature breakers.

// AggregateStatus is the fleet-level roll-up of per-replica
// supervisor snapshots.
type AggregateStatus struct {
	// Instances is how many statuses were aggregated.
	Instances int
	// Attached / Disarmed / Restored / Lost count replicas in each
	// state (Lost = unrecoverable, Status.Err non-nil).
	Attached int
	Disarmed int
	Restored int
	Lost     int
	// MaxLevel is the worst degradation rung across the fleet, and
	// ByLevel the replica count per rung (index = level).
	MaxLevel int
	ByLevel  []int
	// CanaryFails / WindowHits are summed across replicas.
	CanaryFails int
	WindowHits  uint64
	// Breakers merges the per-feature breakers across replicas by
	// worst state: open beats half-open beats closed, and within a
	// state the ledger with more trips wins. Strikes are summed, so
	// the fleet view shows total pressure on each feature.
	Breakers map[string]Breaker
	// Errs collects the errors of lost replicas, in input order.
	Errs []error
}

// breakerRank orders states by severity for the worst-state merge.
func breakerRank(s BreakerState) int {
	switch s {
	case BreakerOpen:
		return 2
	case BreakerHalfOpen:
		return 1
	default:
		return 0
	}
}

// Aggregate folds per-replica supervisor snapshots into one
// fleet-level status. Aggregating zero statuses yields a zero value;
// the input order only matters for Errs.
func Aggregate(sts ...Status) AggregateStatus {
	agg := AggregateStatus{Instances: len(sts)}
	for _, st := range sts {
		if st.Attached {
			agg.Attached++
		}
		if st.Disarmed {
			agg.Disarmed++
		}
		if st.Restored {
			agg.Restored++
		}
		if st.Err != nil {
			agg.Lost++
			agg.Errs = append(agg.Errs, st.Err)
		}
		if st.Level > agg.MaxLevel {
			agg.MaxLevel = st.Level
		}
		for len(agg.ByLevel) <= st.Level {
			agg.ByLevel = append(agg.ByLevel, 0)
		}
		agg.ByLevel[st.Level]++
		agg.CanaryFails += st.CanaryFails
		agg.WindowHits += st.WindowHits
		for name, br := range st.Breakers {
			if agg.Breakers == nil {
				agg.Breakers = map[string]Breaker{}
			}
			cur, ok := agg.Breakers[name]
			if !ok {
				agg.Breakers[name] = br
				continue
			}
			strikes := cur.Strikes + br.Strikes
			worse := br
			if breakerRank(cur.State) > breakerRank(br.State) ||
				(breakerRank(cur.State) == breakerRank(br.State) && cur.Trips >= br.Trips) {
				worse = cur
			}
			worse.Strikes = strikes
			agg.Breakers[name] = worse
		}
	}
	return agg
}

// Healthy reports whether the whole fleet is in its normal state: no
// replica degraded, disarmed, restored-to-pristine, or lost.
func (a AggregateStatus) Healthy() bool {
	return a.Lost == 0 && a.MaxLevel == 0 && a.Disarmed == 0 && a.Restored == 0
}
