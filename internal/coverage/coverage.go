// Package coverage builds code-coverage graphs from execution-trace
// logs and implements DynaCut's differential analysis (the paper's
// tracediff.py): merging traces of wanted requests, diffing against
// traces of undesired requests, filtering out library blocks, and
// splitting initialization-phase from serving-phase coverage.
//
// The central set property (§3.1): an undesired block blk satisfies
//
//	blk ∈ CovG_undesired ∧ blk ∉ CovG_wanted
//
// and an initialization-only block satisfies
//
//	blk ∈ CovG_init ∧ blk ∉ CovG_serving.
package coverage

import (
	"sort"

	"github.com/dynacut/dynacut/internal/trace"
)

// Block is one basic block keyed by module-relative position, so that
// graphs built from different runs (with libraries at different
// bases) still compare correctly.
type Block struct {
	Module string
	Off    uint64
	Size   uint64
}

// key identifies a block; size participates so that differing decode
// extents are distinct blocks, like drcov.
type key struct {
	module string
	off    uint64
	size   uint64
}

// Graph is a set of covered basic blocks (a code coverage graph).
type Graph struct {
	blocks map[key]struct{}
	// moduleBase remembers the lowest-seen base per module so
	// Absolute can reconstruct addresses for single-machine flows.
	moduleBase map[string]uint64
}

// NewGraph returns an empty coverage graph.
func NewGraph() *Graph {
	return &Graph{blocks: map[key]struct{}{}, moduleBase: map[string]uint64{}}
}

// FromLog builds a graph from one trace log. Blocks outside any
// module are keyed under module "" with absolute offsets.
func FromLog(l *trace.Log) *Graph {
	g := NewGraph()
	g.AddLog(l)
	return g
}

// AddLog merges a trace log into the graph.
func (g *Graph) AddLog(l *trace.Log) {
	for _, m := range l.Modules {
		g.moduleBase[m.Name] = m.Lo
	}
	for _, b := range l.Blocks {
		if m, ok := l.ModuleOf(b.Addr); ok {
			g.blocks[key{module: m.Name, off: b.Addr - m.Lo, size: b.Size}] = struct{}{}
		} else {
			g.blocks[key{module: "", off: b.Addr, size: b.Size}] = struct{}{}
		}
	}
}

// Add inserts a single block.
func (g *Graph) Add(b Block) {
	g.blocks[key{module: b.Module, off: b.Off, size: b.Size}] = struct{}{}
}

// Contains reports whether the block (by module+offset, any size) is
// covered.
func (g *Graph) Contains(module string, off uint64) bool {
	for k := range g.blocks {
		if k.module == module && k.off == off {
			return true
		}
	}
	return false
}

// Count returns the number of distinct blocks.
func (g *Graph) Count() int { return len(g.blocks) }

// TotalBytes returns the summed size of all blocks — the "code size
// removed" figures of the paper.
func (g *Graph) TotalBytes() uint64 {
	var n uint64
	for k := range g.blocks {
		n += k.size
	}
	return n
}

// Blocks lists the covered blocks sorted by (module, offset, size).
func (g *Graph) Blocks() []Block {
	out := make([]Block, 0, len(g.blocks))
	for k := range g.blocks {
		out = append(out, Block{Module: k.module, Off: k.off, Size: k.size})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		if out[i].Off != out[j].Off {
			return out[i].Off < out[j].Off
		}
		return out[i].Size < out[j].Size
	})
	return out
}

// Merge unions any number of graphs into a new one (merging multiple
// trace files of different wanted requests).
func Merge(graphs ...*Graph) *Graph {
	out := NewGraph()
	for _, g := range graphs {
		if g == nil {
			continue
		}
		for k := range g.blocks {
			out.blocks[k] = struct{}{}
		}
		for name, base := range g.moduleBase {
			out.moduleBase[name] = base
		}
	}
	return out
}

// Diff returns the blocks in a that are absent from b:
// Diff(undesired, wanted) yields the feature blocks unique to the
// undesired requests; Diff(init, serving) yields the blocks that are
// dead after initialization.
func Diff(a, b *Graph) *Graph {
	out := NewGraph()
	for name, base := range a.moduleBase {
		out.moduleBase[name] = base
	}
	// Absence is judged by (module, off): a block re-observed with a
	// different size (e.g. truncated by a mid-block signal) still
	// counts as covered in b.
	bOffs := make(map[struct {
		m string
		o uint64
	}]struct{}, len(b.blocks))
	for k := range b.blocks {
		bOffs[struct {
			m string
			o uint64
		}{k.module, k.off}] = struct{}{}
	}
	for k := range a.blocks {
		if _, ok := bOffs[struct {
			m string
			o uint64
		}{k.module, k.off}]; !ok {
			out.blocks[k] = struct{}{}
		}
	}
	return out
}

// Intersect returns the blocks present in both graphs.
func Intersect(a, b *Graph) *Graph {
	out := NewGraph()
	for name, base := range a.moduleBase {
		out.moduleBase[name] = base
	}
	for k := range a.blocks {
		if _, ok := b.blocks[k]; ok {
			out.blocks[k] = struct{}{}
		}
	}
	return out
}

// FilterModules keeps only blocks whose module name satisfies keep.
// DynaCut uses it to drop library blocks (libc.so et al.) from the
// feature diff (§3.1, Figure 4).
func (g *Graph) FilterModules(keep func(module string) bool) *Graph {
	out := NewGraph()
	for name, base := range g.moduleBase {
		out.moduleBase[name] = base
	}
	for k := range g.blocks {
		if keep(k.module) {
			out.blocks[k] = struct{}{}
		}
	}
	return out
}

// ModuleBase returns the recorded load base for a module name.
func (g *Graph) ModuleBase(module string) (uint64, bool) {
	b, ok := g.moduleBase[module]
	return b, ok
}

// AbsBlock is a block resolved back to absolute addresses.
type AbsBlock struct {
	Addr uint64
	Size uint64
}

// Absolute resolves the graph's blocks to absolute addresses using
// the recorded module bases. Blocks from modules without a recorded
// base (hand-built graphs) pass through with base 0, i.e. their
// offsets are treated as absolute.
func (g *Graph) Absolute() []AbsBlock {
	var out []AbsBlock
	for _, b := range g.Blocks() {
		base := g.moduleBase[b.Module] // 0 when unknown
		out = append(out, AbsBlock{Addr: base + b.Off, Size: b.Size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
