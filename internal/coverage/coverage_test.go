package coverage

import (
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/trace"
)

func logWith(blocks ...trace.RawBlock) *trace.Log {
	return &trace.Log{
		Program: "p",
		Modules: []trace.ModuleInfo{
			{ID: 0, Lo: 0x400000, Hi: 0x500000, Name: "prog"},
			{ID: 1, Lo: 0x10000000, Hi: 0x10100000, Name: "libc.so"},
		},
		Blocks: blocks,
	}
}

func TestFromLogModuleRelative(t *testing.T) {
	g := FromLog(logWith(
		trace.RawBlock{Addr: 0x400010, Size: 15},
		trace.RawBlock{Addr: 0x10000020, Size: 5},
	))
	if g.Count() != 2 {
		t.Fatalf("Count = %d", g.Count())
	}
	if !g.Contains("prog", 0x10) {
		t.Error("prog block missing")
	}
	if !g.Contains("libc.so", 0x20) {
		t.Error("libc block missing")
	}
	if g.Contains("prog", 0x20) {
		t.Error("phantom block")
	}
	if base, ok := g.ModuleBase("prog"); !ok || base != 0x400000 {
		t.Errorf("ModuleBase = %#x/%v", base, ok)
	}
}

func TestDiffProperty(t *testing.T) {
	undesired := FromLog(logWith(
		trace.RawBlock{Addr: 0x400010, Size: 15}, // shared
		trace.RawBlock{Addr: 0x400030, Size: 5},  // unique to undesired
		trace.RawBlock{Addr: 0x10000020, Size: 5},
	))
	wanted := FromLog(logWith(
		trace.RawBlock{Addr: 0x400010, Size: 15},
		trace.RawBlock{Addr: 0x400050, Size: 8},
		trace.RawBlock{Addr: 0x10000020, Size: 5},
	))
	d := Diff(undesired, wanted)
	if d.Count() != 1 || !d.Contains("prog", 0x30) {
		t.Fatalf("Diff = %+v", d.Blocks())
	}
	// The feature-discovery pipeline then filters libraries.
	f := d.FilterModules(func(m string) bool { return m == "prog" })
	if f.Count() != 1 {
		t.Fatalf("filtered diff = %d", f.Count())
	}
}

func TestDiffIgnoresSizeVariation(t *testing.T) {
	// A block seen truncated in one trace (signal interruption) must
	// still count as covered.
	a := NewGraph()
	a.Add(Block{Module: "m", Off: 0x10, Size: 15})
	b := NewGraph()
	b.Add(Block{Module: "m", Off: 0x10, Size: 7})
	if Diff(a, b).Count() != 0 {
		t.Error("size variation produced a spurious diff")
	}
}

func TestMerge(t *testing.T) {
	g1 := NewGraph()
	g1.Add(Block{Module: "m", Off: 1, Size: 2})
	g2 := NewGraph()
	g2.Add(Block{Module: "m", Off: 1, Size: 2})
	g2.Add(Block{Module: "m", Off: 5, Size: 3})
	merged := Merge(g1, g2, nil)
	if merged.Count() != 2 {
		t.Fatalf("Merge count = %d", merged.Count())
	}
}

func TestIntersect(t *testing.T) {
	g1 := NewGraph()
	g1.Add(Block{Module: "m", Off: 1, Size: 2})
	g1.Add(Block{Module: "m", Off: 5, Size: 3})
	g2 := NewGraph()
	g2.Add(Block{Module: "m", Off: 5, Size: 3})
	in := Intersect(g1, g2)
	if in.Count() != 1 || !in.Contains("m", 5) {
		t.Fatalf("Intersect = %+v", in.Blocks())
	}
}

func TestTotalBytesAndBlocksSorted(t *testing.T) {
	g := NewGraph()
	g.Add(Block{Module: "b", Off: 10, Size: 4})
	g.Add(Block{Module: "a", Off: 20, Size: 6})
	g.Add(Block{Module: "a", Off: 5, Size: 1})
	if g.TotalBytes() != 11 {
		t.Errorf("TotalBytes = %d", g.TotalBytes())
	}
	bs := g.Blocks()
	if bs[0].Module != "a" || bs[0].Off != 5 || bs[2].Module != "b" {
		t.Errorf("Blocks order = %+v", bs)
	}
}

func TestAbsolute(t *testing.T) {
	g := FromLog(logWith(
		trace.RawBlock{Addr: 0x400010, Size: 15},
		trace.RawBlock{Addr: 0x99999999, Size: 7}, // orphan: absolute key
	))
	abs := g.Absolute()
	if len(abs) != 2 {
		t.Fatalf("Absolute = %+v", abs)
	}
	if abs[0].Addr != 0x400010 || abs[1].Addr != 0x99999999 {
		t.Errorf("Absolute addrs = %+v", abs)
	}
}

// Property: set algebra laws — Diff(a,a) empty; Diff(a,empty)==a;
// Merge idempotent; Intersect(a,a)==a.
func TestQuickSetAlgebra(t *testing.T) {
	mk := func(offs []uint16) *Graph {
		g := NewGraph()
		for _, o := range offs {
			g.Add(Block{Module: "m", Off: uint64(o), Size: 1})
		}
		return g
	}
	f := func(offs []uint16) bool {
		g := mk(offs)
		if Diff(g, g).Count() != 0 {
			return false
		}
		if Diff(g, NewGraph()).Count() != g.Count() {
			return false
		}
		if Merge(g, g).Count() != g.Count() {
			return false
		}
		if Intersect(g, g).Count() != g.Count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Diff and Intersect partition a: |Diff(a,b)| + |a ∩ b-offsets|
// equals |a| when all sizes are equal.
func TestQuickDiffPartition(t *testing.T) {
	mk := func(offs []uint8) *Graph {
		g := NewGraph()
		for _, o := range offs {
			g.Add(Block{Module: "m", Off: uint64(o), Size: 1})
		}
		return g
	}
	f := func(aOffs, bOffs []uint8) bool {
		a, b := mk(aOffs), mk(bOffs)
		return Diff(a, b).Count()+Intersect(a, b).Count() == a.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
