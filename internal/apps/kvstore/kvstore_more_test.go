package kvstore

import (
	"strings"
	"testing"
)

func TestIncrMultiDigit(t *testing.T) {
	m, app, _ := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	if got := c.cmd("SET n 98"); !strings.Contains(got, "+OK") {
		t.Fatalf("SET -> %q", got)
	}
	for i, want := range []string{":99", ":100", ":101"} {
		if got := c.cmd("INCR n"); !strings.Contains(got, want) {
			t.Fatalf("INCR %d -> %q, want %q", i, got, want)
		}
	}
	if got := c.cmd("GET n"); !strings.Contains(got, "101") {
		t.Fatalf("GET after INCR -> %q", got)
	}
}

func TestIncrOnUnsetKeyStartsAtOne(t *testing.T) {
	m, app, _ := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	if got := c.cmd("INCR z"); !strings.Contains(got, ":1") {
		t.Fatalf("INCR unset -> %q", got)
	}
}

func TestGetrangeBoundsChecked(t *testing.T) {
	m, app, p := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	if got := c.cmd("GETRANGE a 0 4"); !strings.Contains(got, "+OK") {
		t.Fatalf("GETRANGE -> %q", got)
	}
	// Unlike SETRANGE, the read-only sibling never corrupts memory.
	if got := c.cmd("GETRANGE z 99999 5"); !strings.Contains(got, "+OK") {
		t.Fatalf("big GETRANGE -> %q", got)
	}
	if p.Exited() {
		t.Fatal("GETRANGE crashed the server")
	}
	if v := guard(t, m, app, "slots_guard"); v != GuardMagic {
		t.Fatal("GETRANGE corrupted the guard")
	}
}

func TestKeysAreIndependentSlots(t *testing.T) {
	m, app, _ := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	c.cmd("SET a alpha")
	c.cmd("SET b beta")
	c.cmd("SET z omega")
	if got := c.cmd("GET a"); !strings.Contains(got, "alpha") {
		t.Fatalf("GET a -> %q", got)
	}
	if got := c.cmd("GET b"); !strings.Contains(got, "beta") {
		t.Fatalf("GET b -> %q", got)
	}
	if got := c.cmd("GET z"); !strings.Contains(got, "omega") {
		t.Fatalf("GET z -> %q", got)
	}
	c.cmd("DEL b")
	if got := c.cmd("GET b"); !strings.Contains(got, "$-1") {
		t.Fatalf("GET deleted -> %q", got)
	}
	if got := c.cmd("GET a"); !strings.Contains(got, "alpha") {
		t.Fatalf("GET a after DEL b -> %q", got)
	}
}

func TestSetrangeInBoundsIsSafe(t *testing.T) {
	m, app, p := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	c.cmd("SET a AAAAAAAA")
	if got := c.cmd("SETRANGE a 2 xx"); !strings.Contains(got, "+OK") {
		t.Fatalf("SETRANGE -> %q", got)
	}
	if got := c.cmd("GET a"); !strings.Contains(got, "AAxxAAAA") {
		t.Fatalf("GET after in-bounds SETRANGE -> %q", got)
	}
	if p.Exited() {
		t.Fatal("server died")
	}
	if v := guard(t, m, app, "slots_guard"); v != GuardMagic {
		t.Fatal("in-bounds SETRANGE touched the guard")
	}
}

func TestAppendAndStrlen(t *testing.T) {
	m, app, p := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	c.cmd("SET a hello")
	if got := c.cmd("STRLEN a"); !strings.Contains(got, ":5") {
		t.Fatalf("STRLEN -> %q", got)
	}
	if got := c.cmd("APPEND a -world"); !strings.Contains(got, "+OK") {
		t.Fatalf("APPEND -> %q", got)
	}
	if got := c.cmd("GET a"); !strings.Contains(got, "hello-world") {
		t.Fatalf("GET after APPEND -> %q", got)
	}
	if got := c.cmd("STRLEN a"); !strings.Contains(got, ":11") {
		t.Fatalf("STRLEN after APPEND -> %q", got)
	}
	// APPEND is bounds-checked: flooding the slot clamps, never smashes.
	huge := strings.Repeat("Q", 100)
	c.cmd("APPEND a " + huge)
	if p.Exited() {
		t.Fatal("APPEND crashed the server")
	}
	if v := guard(t, m, app, "slots_guard"); v != GuardMagic {
		t.Fatal("APPEND corrupted the guard: bounds check missing")
	}
	// A full slot refuses further appends.
	if got := c.cmd("APPEND a more"); !strings.Contains(got, "-ERR") {
		t.Fatalf("APPEND to full slot -> %q", got)
	}
	if got := c.cmd("STRLEN z"); !strings.Contains(got, ":0") {
		t.Fatalf("STRLEN unset -> %q", got)
	}
}

func TestEmptyAndMalformedRequests(t *testing.T) {
	m, app, p := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	for _, cmd := range []string{"", "   ", "SET", "GET", "INCR", "X"} {
		got := c.cmd(cmd)
		if got == "" && !p.Exited() {
			t.Fatalf("no response to %q", cmd)
		}
		if p.Exited() {
			t.Fatalf("malformed request %q killed the server (%v)", cmd, p.KilledBy())
		}
	}
	// Still healthy afterwards.
	if got := c.cmd("PING"); !strings.Contains(got, "+PONG") {
		t.Fatalf("PING after garbage -> %q", got)
	}
}
