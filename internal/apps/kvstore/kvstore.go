// Package kvstore generates the Redis-like key-value server guest.
// It speaks a line protocol (PING/GET/SET/DEL/EXISTS/INCR/SETRANGE/
// STRALGO/CONFIG) dispatched through a switch-case chain, and carries
// deliberately planted memory-safety bugs mirroring the CVEs of the
// paper's Table 1:
//
//   - STRALGO LCS — unchecked copy into a small scratch buffer
//     (CVE-2021-32625 / CVE-2021-29477, integer overflow in LCS),
//   - SETRANGE    — attacker-controlled offset without bounds check
//     (CVE-2019-10192/10193, buffer overflows),
//   - CONFIG SET  — unchecked copy into a fixed config buffer
//     (CVE-2016-8339).
//
// Guard words placed after each vulnerable buffer let the host-side
// exploit clients detect successful corruption; oversized payloads
// run off the mapping and crash the server. DynaCut's feature
// blocking at the dispatcher prevents all three exploits while GET
// traffic continues uninterrupted.
package kvstore

import (
	"fmt"
	"strings"

	applibc "github.com/dynacut/dynacut/internal/apps/libc"
	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
)

// Commands the dispatcher understands, in match order (longer
// prefixes first where one command is a prefix of another).
var Commands = []string{
	"PING", "GETRANGE", "GET", "SETRANGE", "SET", "DEL",
	"EXISTS", "INCR", "APPEND", "STRLEN", "STRALGO", "CONFIG",
}

// GuardMagic is the sentinel stored in the guard words; exploits that
// smash a buffer overwrite it.
const GuardMagic = 0x5ec0de5ec0de

// Config shapes the generated server.
type Config struct {
	Name string
	Port uint16
	// InitRoutines sizes the boot-time-only code chain.
	InitRoutines int
}

// App is the generated guest.
type App struct {
	Config Config
	Exe    *delf.File
	Libc   *delf.File
	Source string
}

// Build generates, assembles and links the server.
func Build(cfg Config) (*App, error) {
	if cfg.Name == "" {
		cfg.Name = "kvstore"
	}
	if cfg.Port == 0 {
		cfg.Port = 6379
	}
	if cfg.InitRoutines <= 0 {
		cfg.InitRoutines = 6
	}
	lc, err := applibc.Build()
	if err != nil {
		return nil, err
	}
	src := generate(cfg)
	obj, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("kvstore assemble: %w", err)
	}
	exe, err := link.Executable(cfg.Name, []*asm.Object{obj}, lc)
	if err != nil {
		return nil, fmt.Errorf("kvstore link: %w", err)
	}
	return &App{Config: cfg, Exe: exe, Libc: lc, Source: src}, nil
}

func generate(cfg Config) string {
	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}

	w(".text")
	w(".global _start")
	w("_start:")
	w("\tcall libc_init@plt")
	w("\tcall kv_init_0")
	w("\tcall socket@plt")
	w("\tmov r10, r0")
	w("\tmov r1, r10")
	w("\tmov r2, %d", cfg.Port)
	w("\tcall bind@plt")
	w("\tcmp r0, 0")
	w("\tjne kfatal")
	w("\tmov r1, r10")
	w("\tcall listen@plt")
	w("\tmov r1, 1")
	w("\tcall nudge@plt       ; initialization finished")
	w("\tjmp kv_main_loop")
	w("kfatal:")
	w("\tmov r1, 1")
	w("\tcall exit@plt")

	w("kv_main_loop:")
	w("\tmov r1, r10")
	w("\tcall accept@plt")
	w("\tmov r11, r0")
	w("\tcmp r11, -1")
	w("\tje kv_main_loop")
	w("kv_next_req:")
	w("\tmov r1, r11")
	w("\tmov r2, =reqbuf")
	w("\tmov r3, 255")
	w("\tcall read@plt")
	w("\tcmp r0, 0")
	w("\tjle kv_close")
	w("\tmov r12, r0")
	w("\tmov r4, =reqbuf")
	w("\tadd r4, r12")
	w("\tmov r5, 0")
	w("\tstoreb [r4], r5")
	w("\t; strip the trailing newline if present")
	w("\tsub r4, 1")
	w("\tloadb r5, [r4]")
	w("\tcmp r5, '\\n'")
	w("\tjne kv_dispatch")
	w("\tmov r5, 0")
	w("\tstoreb [r4], r5")
	w("\tsub r12, 1")

	// Dispatcher: the big switch-case of §3.1.
	w("kv_dispatch:")
	w("\tmov r13, =reqbuf")
	for _, c := range Commands {
		emitMatch(w, c, "cmd_"+strings.ToLower(c))
	}
	w("\tjmp resp_err         ; unknown command")

	// ---- PING
	w("cmd_ping:")
	w("\tlea r2, rpong")
	w("\tmov r3, %d", len("+PONG\n"))
	w("\tjmp kv_respond")

	// ---- GET k : "GET a"
	w("cmd_get:")
	w("\tloadb r7, [r13+4]")
	w("\tcall slot_of         ; r7 char -> r8 slot addr, r9 len addr")
	w("\tcmp r0, 0")
	w("\tjne resp_err")
	w("\tload r3, [r9]")
	w("\tcmp r3, 0")
	w("\tje resp_nil")
	w("\tmov r1, r11")
	w("\tmov r2, r8")
	w("\tcall write@plt")
	w("\tlea r2, rnl")
	w("\tmov r3, 1")
	w("\tjmp kv_respond")

	// ---- GETRANGE k off n : bounds-checked (the fixed sibling)
	w("cmd_getrange:")
	w("\tloadb r7, [r13+9]")
	w("\tcall slot_of")
	w("\tcmp r0, 0")
	w("\tjne resp_err")
	w("\tjmp resp_ok")

	// ---- SET k v : "SET a hello"
	w("cmd_set:")
	w("\tloadb r7, [r13+4]")
	w("\tcall slot_of")
	w("\tcmp r0, 0")
	w("\tjne resp_err")
	w("\tmov r1, r8")
	w("\tmov r2, =reqbuf")
	w("\tadd r2, 6")
	w("\tmov r3, r12")
	w("\tsub r3, 6")
	w("\tcmp r3, 0")
	w("\tjle resp_err")
	w("\tcmp r3, 63")
	w("\tjle set_copy")
	w("\tmov r3, 63           ; SET is bounds-checked (not vulnerable)")
	w("set_copy:")
	w("\tpush r3")
	w("\tcall memcpy@plt")
	w("\tpop r3")
	w("\tstore [r9], r3")
	w("\tjmp resp_ok")

	// ---- DEL k
	w("cmd_del:")
	w("\tloadb r7, [r13+4]")
	w("\tcall slot_of")
	w("\tcmp r0, 0")
	w("\tjne resp_err")
	w("\tmov r7, 0")
	w("\tstore [r9], r7")
	w("\tjmp resp_ok")

	// ---- EXISTS k
	w("cmd_exists:")
	w("\tloadb r7, [r13+7]")
	w("\tcall slot_of")
	w("\tcmp r0, 0")
	w("\tjne resp_err")
	w("\tload r3, [r9]")
	w("\tcmp r3, 0")
	w("\tje resp_zero")
	w("\tlea r2, rone")
	w("\tmov r3, %d", len(":1\n"))
	w("\tjmp kv_respond")
	w("resp_zero:")
	w("\tlea r2, rzero")
	w("\tmov r3, %d", len(":0\n"))
	w("\tjmp kv_respond")

	// ---- INCR k : parse the stored decimal, +1, store back
	w("cmd_incr:")
	w("\tloadb r7, [r13+5]")
	w("\tcall slot_of")
	w("\tcmp r0, 0")
	w("\tjne resp_err")
	w("\tmov r1, r8")
	w("\tcall atoi@plt")
	w("\tadd r0, 1")
	w("\tmov r1, r0")
	w("\tmov r2, r8")
	w("\tcall itoa@plt")
	w("\tstore [r9], r0")
	w("\t; respond :<n>\\n")
	w("\tmov r1, r11")
	w("\tlea r2, rcolon")
	w("\tmov r3, 1")
	w("\tcall write@plt")
	w("\tmov r1, r11")
	w("\tmov r2, r8")
	w("\tload r3, [r9]")
	w("\tcall write@plt")
	w("\tlea r2, rnl")
	w("\tmov r3, 1")
	w("\tjmp kv_respond")

	// ---- APPEND k v : bounds-checked concatenation
	w("cmd_append:")
	w("\tloadb r7, [r13+7]")
	w("\tcall slot_of")
	w("\tcmp r0, 0")
	w("\tjne resp_err")
	w("\tload r6, [r9]        ; current length")
	w("\tmov r1, r8")
	w("\tadd r1, r6           ; append position")
	w("\tmov r2, =reqbuf")
	w("\tadd r2, 9")
	w("\tmov r3, r12")
	w("\tsub r3, 9            ; value length")
	w("\tcmp r3, 0")
	w("\tjle resp_err")
	w("\tmov r5, 63")
	w("\tsub r5, r6           ; remaining capacity")
	w("\tcmp r5, 0")
	w("\tjle resp_err         ; slot full")
	w("\tcmp r3, r5")
	w("\tjle ap_copy")
	w("\tmov r3, r5           ; clamp (the bounds check)")
	w("ap_copy:")
	w("\tpush r3")
	w("\tpush r6")
	w("\tcall memcpy@plt")
	w("\tpop r6")
	w("\tpop r3")
	w("\tadd r6, r3")
	w("\tstore [r9], r6")
	w("\tjmp resp_ok")

	// ---- STRLEN k : respond :<len>
	w("cmd_strlen:")
	w("\tloadb r7, [r13+7]")
	w("\tcall slot_of")
	w("\tcmp r0, 0")
	w("\tjne resp_err")
	w("\tload r1, [r9]")
	w("\tmov r2, =respbuf")
	w("\tcall itoa@plt")
	w("\tmov r3, r0")
	w("\tmov r1, r11")
	w("\tlea r2, rcolon")
	w("\tpush r3")
	w("\tmov r3, 1")
	w("\tcall write@plt")
	w("\tpop r3")
	w("\tmov r1, r11")
	w("\tmov r2, =respbuf")
	w("\tcall write@plt")
	w("\tlea r2, rnl")
	w("\tmov r3, 1")
	w("\tjmp kv_respond")

	// ---- SETRANGE k off v  (VULNERABLE: CVE-2019-10192/10193)
	// "SETRANGE a 4 xyz": the offset is used unchecked, so a large
	// offset writes far past the slot (and past the guard word).
	w("cmd_setrange:")
	w("\tloadb r7, [r13+9]")
	w("\tcall slot_of")
	w("\tcmp r0, 0")
	w("\tjne resp_err")
	w("\tmov r1, =reqbuf")
	w("\tadd r1, 11")
	w("\tcall atoi@plt")
	w("\tmov r6, r0           ; offset — NEVER validated (the bug)")
	w("\t; find the value after the offset token")
	w("\tmov r2, =reqbuf")
	w("\tadd r2, 11")
	w("sr_skip:")
	w("\tloadb r4, [r2]")
	w("\tcmp r4, ' '")
	w("\tje sr_found")
	w("\tcmp r4, 0")
	w("\tje resp_err")
	w("\tadd r2, 1")
	w("\tjmp sr_skip")
	w("sr_found:")
	w("\tadd r2, 1")
	w("\tmov r1, r8")
	w("\tadd r1, r6           ; slot + unchecked offset")
	w("\tmov r3, =reqbuf")
	w("\tadd r3, r12")
	w("\tsub r3, r2           ; value length")
	w("\tcmp r3, 0")
	w("\tjle resp_err")
	w("\tcall memcpy@plt")
	w("\tjmp resp_ok")

	// ---- STRALGO LCS a b  (VULNERABLE: CVE-2021-32625/29477)
	// The "LCS" scratch buffer is 32 bytes but the copy length is the
	// whole remaining request — an unchecked (integer-overflow-style)
	// length.
	w("cmd_stralgo:")
	w("\tmov r1, =lcs_scratch")
	w("\tmov r2, =reqbuf")
	w("\tadd r2, 8")
	w("\tmov r3, r12")
	w("\tsub r3, 8            ; unchecked length (the bug)")
	w("\tcmp r3, 0")
	w("\tjle resp_err")
	w("\tcall memcpy@plt")
	w("\tjmp resp_ok")

	// ---- CONFIG SET p v  (VULNERABLE: CVE-2016-8339)
	w("cmd_config:")
	w("\tmov r1, =cfgbuf")
	w("\tmov r2, =reqbuf")
	w("\tadd r2, 11")
	w("\tmov r3, r12")
	w("\tsub r3, 11           ; unchecked length (the bug)")
	w("\tcmp r3, 0")
	w("\tjle resp_err")
	w("\tcall memcpy@plt")
	w("\tjmp resp_ok")

	// Shared responders; resp_err doubles as the default error
	// handler redirect target for blocked commands.
	w("resp_ok:")
	w("\tlea r2, rok")
	w("\tmov r3, %d", len("+OK\n"))
	w("\tjmp kv_respond")
	w("resp_nil:")
	w("\tlea r2, rnil")
	w("\tmov r3, %d", len("$-1\n"))
	w("\tjmp kv_respond")
	w("resp_err:")
	w("\tlea r2, rerr")
	w("\tmov r3, %d", len("-ERR\n"))
	w("\tjmp kv_respond")
	w("kv_respond:")
	w("\tmov r1, r11")
	w("\tcall write@plt")
	w("\tjmp kv_next_req      ; keep the connection open (pipelining)")
	w("kv_close:")
	w("\tmov r1, r11")
	w("\tcall close@plt")
	w("\tjmp kv_main_loop")

	// slot_of: r7 = key char; returns r0=0 ok, r8=value addr, r9=len addr.
	w("slot_of:")
	w("\tcmp r7, 'a'")
	w("\tjl slot_bad")
	w("\tcmp r7, 'z'")
	w("\tjg slot_bad")
	w("\tsub r7, 'a'")
	w("\tmov r8, r7")
	w("\tshl r8, 6            ; 64-byte slots")
	w("\tmov r9, =slots")
	w("\tadd r8, r9")
	w("\tmov r9, r7")
	w("\tshl r9, 3")
	w("\tmov r6, =slot_lens")
	w("\tadd r9, r6")
	w("\tmov r0, 0")
	w("\tret")
	w("slot_bad:")
	w("\tmov r0, 1")
	w("\tret")

	// Init chain.
	for i := 0; i < cfg.InitRoutines; i++ {
		w("kv_init_%d:", i)
		w("\tmov r7, %d", i*13+1)
		w("\tmul r7, %d", i+3)
		w("\tmov r8, =kv_init_state")
		w("\tload r6, [r8]")
		w("\txor r6, r7")
		w("\tstore [r8], r6")
		if i+1 < cfg.InitRoutines {
			w("\tcall kv_init_%d", i+1)
		}
		w("\tret")
	}

	// Data. Guard words sit immediately after each vulnerable buffer.
	w(".data")
	w(".align 8")
	w("kv_init_state: .quad 0")
	w("lcs_scratch: .space 32")
	w(".global lcs_guard")
	w("lcs_guard: .quad %d", uint64(GuardMagic))
	w("cfgbuf: .space 16")
	w(".global cfg_guard")
	w("cfg_guard: .quad %d", uint64(GuardMagic))
	w("slot_lens: .space 208          ; 26 quads")
	w("slots: .space 1664             ; 26 x 64-byte values")
	w(".global slots_guard")
	w("slots_guard: .quad %d", uint64(GuardMagic))
	w(".bss")
	w(".align 8")
	w("reqbuf: .space 256")
	w("respbuf: .space 32")
	w(".rodata")
	w("rok: .ascii \"+OK\\n\"")
	w("rerr: .ascii \"-ERR\\n\"")
	w("rpong: .ascii \"+PONG\\n\"")
	w("rnil: .ascii \"$-1\\n\"")
	w("rone: .ascii \":1\\n\"")
	w("rzero: .ascii \":0\\n\"")
	w("rcolon: .ascii \":\"")
	w("rnl: .ascii \"\\n\"")

	return b.String()
}

func emitMatch(w func(string, ...any), cmd, target string) {
	next := "kno_" + strings.ToLower(cmd)
	for i := 0; i < len(cmd); i++ {
		w("\tloadb r4, [r13+%d]", i)
		w("\tcmp r4, '%c'", cmd[i])
		w("\tjne %s", next)
	}
	w("\tjmp %s", target)
	w("%s:", next)
}
