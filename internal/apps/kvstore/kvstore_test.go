package kvstore

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/kernel"
)

func boot(t *testing.T, cfg Config) (*kernel.Machine, *App, *kernel.Process) {
	t.Helper()
	app, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := kernel.NewMachine()
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	nudged := false
	m.SetNudgeFunc(func(pid int, arg uint64) { nudged = true })
	if !m.RunUntil(func() bool { return nudged }, 5_000_000) {
		t.Fatalf("kvstore never finished init: exited=%v killed=%v", p.Exited(), p.KilledBy())
	}
	m.Run(10000)
	return m, app, p
}

// client is a persistent connection speaking the line protocol.
type client struct {
	t    *testing.T
	m    *kernel.Machine
	conn *kernel.HostConn
}

func dial(t *testing.T, m *kernel.Machine, port uint16) *client {
	t.Helper()
	conn, err := m.Dial(port)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return &client{t: t, m: m, conn: conn}
}

func (c *client) cmd(line string) string {
	c.t.Helper()
	if _, err := c.conn.Write([]byte(line + "\n")); err != nil {
		c.t.Fatalf("write %q: %v", line, err)
	}
	c.m.RunUntil(func() bool {
		return len(c.conn.ReadAllPeek()) > 0 || c.conn.Closed()
	}, 2_000_000)
	c.m.Run(20000)
	return string(c.conn.ReadAll())
}

func TestBasicCommands(t *testing.T) {
	m, app, p := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	tests := []struct {
		cmd  string
		want string
	}{
		{"PING", "+PONG"},
		{"GET a", "$-1"},
		{"SET a hello", "+OK"},
		{"GET a", "hello"},
		{"EXISTS a", ":1"},
		{"EXISTS b", ":0"},
		{"SET n 5", "+OK"},
		{"INCR n", ":6"},
		{"INCR n", ":7"},
		{"DEL a", "+OK"},
		{"GET a", "$-1"},
		{"WHAT", "-ERR"},
		{"GET !", "-ERR"},
	}
	for _, tt := range tests {
		got := c.cmd(tt.cmd)
		if !strings.Contains(got, tt.want) {
			t.Errorf("%q -> %q, want %q", tt.cmd, got, tt.want)
		}
	}
	if p.Exited() {
		t.Fatalf("server died: %v", p.KilledBy())
	}
}

func TestSetIsBoundsChecked(t *testing.T) {
	m, app, p := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	huge := strings.Repeat("A", 200)
	if got := c.cmd("SET a " + huge); !strings.Contains(got, "+OK") {
		t.Fatalf("big SET -> %q", got)
	}
	if p.Exited() {
		t.Fatal("bounds-checked SET crashed the server")
	}
	if got := guard(t, m, app, "slots_guard"); got != GuardMagic {
		t.Fatalf("slots_guard corrupted by bounds-checked SET: %#x", got)
	}
}

func guard(t *testing.T, m *kernel.Machine, app *App, name string) uint64 {
	t.Helper()
	sym, err := app.Exe.Symbol(name)
	if err != nil {
		t.Fatal(err)
	}
	procs := m.Processes()
	if len(procs) == 0 {
		t.Fatal("no live process to read guard from")
	}
	v, err := procs[0].Mem().ReadU64(sym.Value)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// The planted CVEs: each exploit must corrupt its guard word on the
// vanilla server (Table 1's vulnerable baseline).
func TestCVEStralgoOverflow(t *testing.T) {
	m, app, p := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	payload := "STRALGO LCS " + strings.Repeat("B", 60)
	got := c.cmd(payload)
	if !strings.Contains(got, "+OK") {
		t.Fatalf("exploit response = %q", got)
	}
	if v := guard(t, m, app, "lcs_guard"); v == GuardMagic {
		t.Fatal("lcs_guard intact: STRALGO overflow did not fire")
	}
	if p.Exited() {
		t.Log("server crashed outright (also a successful trigger)")
	}
}

func TestCVESetrangeOverflow(t *testing.T) {
	m, app, _ := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	// Key 'z' is the last slot; an offset past its 64 bytes lands on
	// slots_guard.
	got := c.cmd("SETRANGE z 64 XXXXXXXX")
	if !strings.Contains(got, "+OK") {
		t.Fatalf("exploit response = %q", got)
	}
	if v := guard(t, m, app, "slots_guard"); v == GuardMagic {
		t.Fatal("slots_guard intact: SETRANGE overflow did not fire")
	}
}

func TestCVEConfigSetOverflow(t *testing.T) {
	m, app, _ := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	got := c.cmd("CONFIG SET " + strings.Repeat("C", 40))
	if !strings.Contains(got, "+OK") {
		t.Fatalf("exploit response = %q", got)
	}
	if v := guard(t, m, app, "cfg_guard"); v == GuardMagic {
		t.Fatal("cfg_guard intact: CONFIG SET overflow did not fire")
	}
}

func TestHugePayloadCrashesVanilla(t *testing.T) {
	m, app, p := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	// An enormous SETRANGE offset writes outside the mapping.
	c.cmd("SETRANGE a 99999999 X")
	m.Run(100000)
	if !p.Exited() || p.KilledBy() != kernel.SIGSEGV {
		t.Fatalf("wild write: exited=%v killed=%v, want SIGSEGV", p.Exited(), p.KilledBy())
	}
	_ = app
}

func TestPipelinedCommandsOneConnection(t *testing.T) {
	m, app, _ := boot(t, Config{})
	c := dial(t, m, app.Config.Port)
	for i := 0; i < 20; i++ {
		if got := c.cmd("PING"); !strings.Contains(got, "+PONG") {
			t.Fatalf("iteration %d: %q", i, got)
		}
	}
	_ = app
}
