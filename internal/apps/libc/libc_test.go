package libc

import (
	"testing"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/kernel"
)

func TestBuildExportsExpectedSymbols(t *testing.T) {
	lib, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if lib.Type != delf.TypeDyn || lib.Name != SoName {
		t.Fatalf("lib = %s/%v", lib.Name, lib.Type)
	}
	for _, name := range []string{
		"libc_init", "exit", "write", "read", "socket", "bind", "listen",
		"accept", "close", "fork", "getpid", "sigaction", "clock",
		"yield", "nudge", "waitpid", "strlen", "strcmp", "memcpy",
		"memset", "atoi", "itoa",
	} {
		sym, err := lib.Symbol(name)
		if err != nil {
			t.Errorf("missing symbol %s", name)
			continue
		}
		if !sym.Global || sym.Kind != delf.SymFunc {
			t.Errorf("symbol %s not a global function", name)
		}
	}
}

// runLibcProg links a test program against libc and runs it.
func runLibcProg(t *testing.T, src string) *kernel.Process {
	t.Helper()
	lib, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	exe, err := link.Executable("libctest", []*asm.Object{obj}, lib)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := kernel.NewMachine()
	p, err := m.Load(exe, lib)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10_000_000)
	if !p.Exited() {
		t.Fatalf("did not exit; killed=%v rip=%#x", p.KilledBy(), p.RIP())
	}
	return p
}

func TestStringFunctions(t *testing.T) {
	p := runLibcProg(t, `
.text
.global _start
_start:
	call libc_init@plt
	mov r1, =s1
	call strlen@plt
	cmp r0, 5
	jne bad
	mov r1, =s1
	mov r2, =s1b
	call strcmp@plt
	cmp r0, 0
	jne bad
	mov r1, =s1
	mov r2, =s2
	call strcmp@plt
	cmp r0, 0
	je bad
	; memcpy then compare
	mov r1, =buf
	mov r2, =s2
	mov r3, 6
	call memcpy@plt
	mov r1, =buf
	mov r2, =s2
	call strcmp@plt
	cmp r0, 0
	jne bad
	; memset
	mov r1, =buf
	mov r2, 0
	mov r3, 16
	call memset@plt
	mov r1, =buf
	call strlen@plt
	cmp r0, 0
	jne bad
	mov r1, 0
	call exit@plt
bad:
	mov r1, 1
	call exit@plt
.rodata
s1: .asciz "hello"
s1b: .asciz "hello"
s2: .asciz "world"
.bss
buf: .space 32
`)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

func TestAtoiItoa(t *testing.T) {
	p := runLibcProg(t, `
.text
.global _start
_start:
	mov r1, =num
	call atoi@plt
	cmp r0, 4923
	jne bad
	; itoa(307) then atoi back
	mov r1, 307
	mov r2, =buf
	call itoa@plt
	cmp r0, 3
	jne bad
	mov r1, =buf
	call atoi@plt
	cmp r0, 307
	jne bad
	; zero round-trips too
	mov r1, 0
	mov r2, =buf
	call itoa@plt
	cmp r0, 1
	jne bad
	mov r1, 0
	call exit@plt
bad:
	mov r1, 1
	call exit@plt
.rodata
num: .asciz "4923x"
.bss
buf: .space 32
`)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}

func TestLibcInitSetsState(t *testing.T) {
	lib, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	sym, err := lib.Symbol("libc_init")
	if err != nil {
		t.Fatal(err)
	}
	if sym.Size == 0 {
		t.Error("libc_init has zero size")
	}
	p := runLibcProg(t, `
.text
.global _start
_start:
	call libc_init@plt
	mov r1, 0
	call exit@plt
`)
	if p.ExitCode() != 0 {
		t.Fatalf("exit = %d", p.ExitCode())
	}
}
