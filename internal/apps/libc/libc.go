// Package libc builds the shared C-library analogue every guest
// application links against. It gives the guests what the paper's
// PLT/GOT experiments need: all syscalls are reached through libc
// wrapper functions called via PLT trampolines, so removing executed
// PLT entries (ret2plt, §4.2) and disabling the fork path (BROP) are
// faithful reproductions. The library also carries initialization-
// only code (libc_init), mirroring glibc's startup work.
package libc

import (
	"fmt"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
)

// SoName is the library's soname.
const SoName = "libc.so"

// Source is the library's assembly. Exposed for inspection/tests.
const Source = `
; libc.so — syscall wrappers and string/memory helpers.
; Convention: arguments arrive in r1..r5 (already the kernel ABI),
; result in r0. Wrappers only load the syscall number.
.text

.global libc_init
libc_init:
	; Initialization-only work: locale tables, allocator warm-up,
	; auxv parsing stand-in. Runs once from every guest's _start.
	push r1
	push r2
	lea r1, init_table
	mov r2, 0
.li_loop:
	cmp r2, 64
	jge .li_done
	load r3, [r1]
	mul r3, 1103515245
	add r3, 12345
	store [r1], r3
	add r1, 8
	add r2, 1
	jmp .li_loop
.li_done:
	lea r1, init_done
	mov r2, 1
	store [r1], r2
	pop r2
	pop r1
	ret

.global exit
exit:
	mov r0, 1
	syscall
	hlt                  ; unreachable

.global write
write:
	mov r0, 2
	syscall
	ret

.global read
read:
	mov r0, 3
	syscall
	ret

.global socket
socket:
	mov r0, 4
	syscall
	ret

.global bind
bind:
	mov r0, 5
	syscall
	ret

.global listen
listen:
	mov r0, 6
	syscall
	ret

.global accept
accept:
	mov r0, 7
	syscall
	ret

.global close
close:
	mov r0, 8
	syscall
	ret

.global fork
fork:
	mov r0, 9
	syscall
	ret

.global getpid
getpid:
	mov r0, 10
	syscall
	ret

.global sigaction
sigaction:
	mov r0, 11
	syscall
	ret

.global clock
clock:
	mov r0, 13
	syscall
	ret

.global yield
yield:
	mov r0, 14
	syscall
	ret

.global nudge
nudge:
	mov r0, 15
	syscall
	ret

.global waitpid
waitpid:
	mov r0, 16
	syscall
	ret

; strlen(r1 ptr) -> r0
.global strlen
strlen:
	push r2
	push r3
	mov r0, 0
.sl_loop:
	mov r2, r1
	add r2, r0
	loadb r3, [r2]
	cmp r3, 0
	je .sl_done
	add r0, 1
	jmp .sl_loop
.sl_done:
	pop r3
	pop r2
	ret

; strcmp(r1 a, r2 b) -> r0 (0 when equal, 1 otherwise)
.global strcmp
strcmp:
	push r3
	push r4
.sc_loop:
	loadb r3, [r1]
	loadb r4, [r2]
	cmp r3, r4
	jne .sc_diff
	cmp r3, 0
	je .sc_eq
	add r1, 1
	add r2, 1
	jmp .sc_loop
.sc_eq:
	mov r0, 0
	pop r4
	pop r3
	ret
.sc_diff:
	mov r0, 1
	pop r4
	pop r3
	ret

; memcpy(r1 dst, r2 src, r3 n) -> r0 dst
.global memcpy
memcpy:
	push r4
	push r5
	mov r0, r1
	mov r4, 0
.mc_loop:
	cmp r4, r3
	jge .mc_done
	loadb r5, [r2]
	storeb [r1], r5
	add r1, 1
	add r2, 1
	add r4, 1
	jmp .mc_loop
.mc_done:
	pop r5
	pop r4
	ret

; memset(r1 dst, r2 byte, r3 n) -> r0 dst
.global memset
memset:
	push r4
	mov r0, r1
	mov r4, 0
.ms_loop:
	cmp r4, r3
	jge .ms_done
	storeb [r1], r2
	add r1, 1
	add r4, 1
	jmp .ms_loop
.ms_done:
	pop r4
	ret

; atoi(r1 ptr) -> r0 value; stops at the first non-digit
.global atoi
atoi:
	push r2
	push r3
	mov r0, 0
.at_loop:
	loadb r2, [r1]
	cmp r2, '0'
	jl .at_done
	cmp r2, '9'
	jg .at_done
	mul r0, 10
	mov r3, r2
	sub r3, '0'
	add r0, r3
	add r1, 1
	jmp .at_loop
.at_done:
	pop r3
	pop r2
	ret

; itoa(r1 value, r2 buf) -> r0 length; decimal, no sign
.global itoa
itoa:
	push r3
	push r4
	push r5
	push r6
	cmp r1, 0
	jne .it_nonzero
	mov r3, '0'
	storeb [r2], r3
	mov r0, 1
	jmp .it_done
.it_nonzero:
	mov r0, 0
	mov r5, r2
.it_count:
	cmp r1, 0
	je .it_rev
	mov r3, r1
	mov r4, 10
	div r3, r4          ; r3 = r1/10
	mov r6, r3
	mul r6, 10
	mov r4, r1
	sub r4, r6          ; r4 = r1 % 10
	add r4, '0'
	storeb [r5], r4
	add r5, 1
	add r0, 1
	mov r1, r3
	jmp .it_count
.it_rev:
	; reverse buf[0..r0)
	mov r3, r2          ; left
	mov r4, r5
	sub r4, 1           ; right
.it_revloop:
	cmp r3, r4
	jge .it_done
	loadb r5, [r3]
	loadb r6, [r4]
	storeb [r3], r6
	storeb [r4], r5
	add r3, 1
	sub r4, 1
	jmp .it_revloop
.it_done:
	pop r6
	pop r5
	pop r4
	pop r3
	ret

.data
.align 8
init_done: .quad 0
init_table:
	.space 512

.rodata
libc_version: .asciz "dynacut-libc 1.0"
`

// Build assembles and links the library.
func Build() (*delf.File, error) {
	obj, err := asm.Assemble(Source)
	if err != nil {
		return nil, fmt.Errorf("libc assemble: %w", err)
	}
	lib, err := link.Library(SoName, []*asm.Object{obj})
	if err != nil {
		return nil, fmt.Errorf("libc link: %w", err)
	}
	return lib, nil
}
