// Package webserv generates the web-server guest used throughout the
// evaluation: a Lighttpd-like single-process event server or an
// Nginx-like master/worker server (fork-based, optional worker
// respawn). The server has the structural features DynaCut exploits:
//
//   - a big dispatcher that switches on the request method
//     (GET/HEAD/PUT/DELETE/OPTIONS/MKCOL/POST plus synthetic extras),
//   - a default error handler (the 403 responder) in the same
//     function as the dispatch targets, so trapped features can be
//     redirected to it (§3.2.2, Listing 1),
//   - a clearly bounded initialization phase (config parsing, a chain
//     of init routines, socket setup, worker forking) terminated by a
//     nudge,
//   - libc usage exclusively through PLT entries, so PLT-removal and
//     fork-disabling (ret2plt/BROP, §4.2) are measurable.
package webserv

import (
	"fmt"
	"strings"

	applibc "github.com/dynacut/dynacut/internal/apps/libc"
	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
)

// Method names the dispatchable request methods.
var Methods = []string{"GET", "HEAD", "PUT", "DELETE", "OPTIONS", "MKCOL", "POST"}

// Config sizes and shapes the generated server.
type Config struct {
	// Name is the program name ("lighttpd", "nginx", ...).
	Name string
	// Port is the listening port.
	Port uint16
	// Workers: 0 = single-process event loop (Lighttpd style);
	// N > 0 = master forks N workers (Nginx style).
	Workers int
	// RespawnWorkers makes the master re-fork dead workers (the BROP
	// precondition).
	RespawnWorkers bool
	// ExtraFeatures adds synthetic request handlers ("X0".."Xn"),
	// inflating the dispatcher and code size.
	ExtraFeatures int
	// InitRoutines sizes the initialization chain (distinct basic
	// blocks executed exactly once at boot).
	InitRoutines int
	// CrashCommand adds a "STACKBUG" request whose handler
	// dereferences a wild pointer, crashing the worker — the attack
	// primitive for the BROP experiment.
	CrashCommand bool
}

// App is a generated guest: the executable plus its libraries.
type App struct {
	Config Config
	Exe    *delf.File
	Libc   *delf.File
	Source string
}

// Responses the server emits, for host-side assertions.
const (
	Resp200   = "200 OK\n"
	Resp201   = "201 Created\n"
	Resp204   = "204 No Content\n"
	Resp210   = "210 Feature\n"
	Resp400   = "400 Bad Request\n"
	Resp403   = "403 Forbidden\n"
	RespAllow = "200 Allow: all\n"
)

// Build generates, assembles and links the server.
func Build(cfg Config) (*App, error) {
	if cfg.Name == "" {
		cfg.Name = "webserv"
	}
	if cfg.Port == 0 {
		cfg.Port = 8080
	}
	if cfg.InitRoutines <= 0 {
		cfg.InitRoutines = 8
	}
	lc, err := applibc.Build()
	if err != nil {
		return nil, err
	}
	src := generate(cfg)
	obj, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("webserv assemble: %w", err)
	}
	exe, err := link.Executable(cfg.Name, []*asm.Object{obj}, lc)
	if err != nil {
		return nil, fmt.Errorf("webserv link: %w", err)
	}
	return &App{Config: cfg, Exe: exe, Libc: lc, Source: src}, nil
}

// generate emits the server's assembly source.
func generate(cfg Config) string {
	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}

	w(".text")
	w(".global _start")
	w("_start:")
	w("\tcall libc_init@plt")
	w("\tcall parse_config")
	w("\tcall init_0")
	// Socket setup (init phase).
	w("\tcall socket@plt")
	w("\tmov r10, r0          ; listener fd")
	w("\tmov r1, r10")
	w("\tmov r2, %d", cfg.Port)
	w("\tcall bind@plt")
	w("\tcmp r0, 0")
	w("\tjne fatal")
	w("\tmov r1, r10")
	w("\tcall listen@plt")

	if cfg.Workers > 0 {
		w("\tmov r9, 0            ; forked workers")
		w("fork_workers:")
		w("\tcmp r9, %d", cfg.Workers)
		w("\tjge master_loop")
		w("\tcall fork@plt")
		w("\tcmp r0, 0")
		w("\tje worker_entry")
		w("\tadd r9, 1")
		w("\tjmp fork_workers")
		w("master_loop:")
		w("\tcall waitpid@plt")
		w("\tcmp r0, -1")
		w("\tje master_idle")
		if cfg.RespawnWorkers {
			w("\t; a worker died: respawn it")
			w("\tmov r8, =respawns")
			w("\tload r7, [r8]")
			w("\tadd r7, 1")
			w("\tstore [r8], r7")
			w("\tcall fork@plt")
			w("\tcmp r0, 0")
			w("\tje worker_entry")
		}
		w("\tjmp master_loop")
		w("master_idle:")
		w("\tcall yield@plt")
		w("\tjmp master_loop")
	} else {
		w("\tjmp worker_entry")
	}

	w("fatal:")
	w("\tmov r1, 1")
	w("\tcall exit@plt")

	// Worker: end of initialization, then the accept loop.
	w("worker_entry:")
	w("\tmov r1, 1")
	w("\tcall nudge@plt        ; initialization finished")
	w("server_main_loop:")
	w("\tmov r1, r10")
	w("\tcall accept@plt")
	w("\tmov r11, r0          ; connection fd")
	w("\tcmp r11, -1")
	w("\tje server_main_loop")
	w("\tmov r1, r11")
	w("\tmov r2, =reqbuf")
	w("\tmov r3, 255")
	w("\tcall read@plt")
	w("\tcmp r0, 0")
	w("\tjle close_conn")
	w("\tmov r12, r0          ; request length")
	w("\tmov r4, =reqbuf")
	w("\tadd r4, r12")
	w("\tmov r5, 0")
	w("\tstoreb [r4], r5      ; NUL-terminate")
	w("\tjmp dispatch")

	// The dispatcher: Listing 1's switch-case over methods.
	w("dispatch:")
	w("\tmov r13, =reqbuf")
	for _, m := range Methods {
		emitMatch(w, m, "handle_"+strings.ToLower(m))
	}
	for i := 0; i < cfg.ExtraFeatures; i++ {
		emitMatch(w, fmt.Sprintf("X%d", i), fmt.Sprintf("handle_x%d", i))
	}
	if cfg.CrashCommand {
		emitMatch(w, "STACKBUG", "handle_stackbug")
	}
	w("\tjmp resp_400         ; unknown method")

	// Handlers. Each responds and loops. resp_403 is the default
	// error handler the rewriter redirects blocked methods to; it
	// lives in the same dispatch function, as §3.2.2 requires.
	w("handle_get:")
	w("\tmov r8, =filelen")
	w("\tload r7, [r8]")
	w("\tcmp r7, 0")
	w("\tje get_default")
	w("\tmov r1, r11")
	w("\tmov r2, =filestore")
	w("\tmov r3, r7")
	w("\tcall write@plt")
	w("\tjmp respond_200")
	w("get_default:")
	w("\tjmp respond_200")

	w("handle_head:")
	w("\tjmp respond_200")

	w("handle_put:")
	w("\t; copy body (after \"PUT \") into the file store")
	w("\tmov r1, =filestore")
	w("\tmov r2, =reqbuf")
	w("\tadd r2, 4")
	w("\tmov r3, r12")
	w("\tsub r3, 4")
	w("\tcmp r3, 0")
	w("\tjle put_empty")
	w("\tcmp r3, 200")
	w("\tjle put_copy")
	w("\tmov r3, 200")
	w("put_copy:")
	w("\tpush r3")
	w("\tcall memcpy@plt")
	w("\tpop r3")
	w("\tmov r8, =filelen")
	w("\tstore [r8], r3")
	w("\tjmp respond_201")
	w("put_empty:")
	w("\tjmp respond_400")

	w("handle_delete:")
	w("\tmov r8, =filelen")
	w("\tmov r7, 0")
	w("\tstore [r8], r7")
	w("\tlea r2, r204")
	w("\tmov r3, %d", len(Resp204))
	w("\tjmp respond")

	w("handle_options:")
	w("\tlea r2, rallow")
	w("\tmov r3, %d", len(RespAllow))
	w("\tjmp respond")

	w("handle_mkcol:")
	w("\tjmp respond_201")

	w("handle_post:")
	w("\tjmp respond_200")

	for i := 0; i < cfg.ExtraFeatures; i++ {
		w("handle_x%d:", i)
		w("\tmov r7, %d", i+1)
		w("\tmul r7, 3")
		w("\tadd r7, %d", i)
		w("\tmov r8, =xstate")
		w("\tstore [r8], r7")
		w("\tlea r2, r210")
		w("\tmov r3, %d", len(Resp210))
		w("\tjmp respond")
	}

	if cfg.CrashCommand {
		w("handle_stackbug:")
		w("\t; the planted memory-safety bug: wild store, instant SIGSEGV")
		w("\tmov r7, 0x6861636b         ; attacker-controlled pointer")
		w("\tmov r8, 1")
		w("\tstore [r7], r8")
		w("\tjmp respond_200            ; never reached")
	}

	w("respond_200:")
	w("\tlea r2, r200")
	w("\tmov r3, %d", len(Resp200))
	w("\tjmp respond")
	w("respond_201:")
	w("\tlea r2, r201")
	w("\tmov r3, %d", len(Resp201))
	w("\tjmp respond")
	w("respond_400:")
	w("resp_400:")
	w("\tlea r2, r400")
	w("\tmov r3, %d", len(Resp400))
	w("\tjmp respond")
	w("resp_403:")
	w("\tlea r2, r403")
	w("\tmov r3, %d", len(Resp403))
	w("\tjmp respond")
	w("respond:")
	w("\tmov r1, r11")
	w("\tcall write@plt")
	w("close_conn:")
	w("\tmov r1, r11")
	w("\tcall close@plt")
	w("\tjmp server_main_loop")

	// Initialization chain: InitRoutines small routines, each a
	// distinct set of blocks executed exactly once at boot.
	w("parse_config:")
	w("\tpush r1")
	w("\tpush r2")
	w("\tpush r3")
	w("\tmov r1, =config_blob")
	w("\tmov r2, 0")
	w("\tmov r3, 0")
	w("pc_loop:")
	w("\tcmp r2, %d", 128)
	w("\tjge pc_done")
	w("\tloadb r4, [r1]")
	w("\tadd r3, r4")
	w("\tadd r1, 1")
	w("\tadd r2, 1")
	w("\tjmp pc_loop")
	w("pc_done:")
	w("\tmov r8, =config_sum")
	w("\tstore [r8], r3")
	w("\tpop r3")
	w("\tpop r2")
	w("\tpop r1")
	w("\tret")

	for i := 0; i < cfg.InitRoutines; i++ {
		w("init_%d:", i)
		w("\tmov r7, %d", i*7+3)
		w("\tmul r7, %d", i+2)
		w("\txor r7, %d", 0x5a5a)
		w("\tmov r8, =init_state")
		w("\tload r6, [r8]")
		w("\tadd r6, r7")
		w("\tstore [r8], r6")
		if i+1 < cfg.InitRoutines {
			w("\tcall init_%d", i+1)
		}
		w("\tret")
	}

	// Data.
	w(".data")
	w(".align 8")
	w("filelen: .quad 0")
	w("config_sum: .quad 0")
	w("init_state: .quad 0")
	w("xstate: .quad 0")
	w("respawns: .quad 0")
	w(".bss")
	w(".align 8")
	w("reqbuf: .space 256")
	w("filestore: .space 256")
	w(".rodata")
	w("r200: .ascii %q", Resp200)
	w("r201: .ascii %q", Resp201)
	w("r204: .ascii %q", Resp204)
	w("r210: .ascii %q", Resp210)
	w("r400: .ascii %q", Resp400)
	w("r403: .ascii %q", Resp403)
	w("rallow: .ascii %q", RespAllow)
	w("config_blob:")
	w("\t.ascii \"server.port=%d workers=%d keepalive=on doc-root=/srv/www modules=dav,auth,rewrite padpadpadpadpadpadpadpadpadpadpadpadpadpad\"", cfg.Port, cfg.Workers)

	return b.String()
}

// emitMatch generates the character-compare chain for one dispatcher
// case. r13 holds the request buffer pointer.
func emitMatch(w func(string, ...any), method, target string) {
	label := "try_" + strings.ToLower(method)
	next := "no_" + strings.ToLower(method)
	w("%s:", label)
	for i := 0; i < len(method); i++ {
		w("\tloadb r4, [r13+%d]", i)
		w("\tcmp r4, '%c'", method[i])
		w("\tjne %s", next)
	}
	w("\tjmp %s", target)
	w("%s:", next)
}
