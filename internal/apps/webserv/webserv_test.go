package webserv

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/kernel"
)

// boot loads the app into a fresh machine and runs it past init.
func boot(t *testing.T, cfg Config) (*kernel.Machine, *App, *kernel.Process) {
	t.Helper()
	app, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := kernel.NewMachine()
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	nudged := false
	m.SetNudgeFunc(func(pid int, arg uint64) { nudged = true })
	if !m.RunUntil(func() bool { return nudged }, 5_000_000) {
		t.Fatalf("server never finished init; exited=%v code=%d killed=%v stdout=%q",
			p.Exited(), p.ExitCode(), p.KilledBy(), p.Stdout())
	}
	m.Run(10000) // settle into accept
	return m, app, p
}

// request sends one request and returns the full response.
func request(t *testing.T, m *kernel.Machine, port uint16, req string) string {
	t.Helper()
	conn, err := m.Dial(port)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
	m.Run(20000) // drain trailing bytes
	return string(conn.ReadAll())
}

func TestLighttpdStyleServesMethods(t *testing.T) {
	m, app, p := boot(t, Config{Name: "lighttpd", Port: 8080})
	tests := []struct {
		req  string
		want string
	}{
		{"GET /index.html\n", Resp200},
		{"HEAD /\n", Resp200},
		{"PUT /file hello-world\n", Resp201},
		{"GET /file\n", "hello-world"},
		{"DELETE /file\n", Resp204},
		{"GET /file\n", Resp200},
		{"OPTIONS /\n", RespAllow},
		{"MKCOL /dir\n", Resp201},
		{"POST /form\n", Resp200},
		{"BREW /coffee\n", Resp400},
	}
	for _, tt := range tests {
		got := request(t, m, app.Config.Port, tt.req)
		if !strings.Contains(got, strings.TrimSuffix(tt.want, "\n")) {
			t.Errorf("request %q -> %q, want %q", tt.req, got, tt.want)
		}
	}
	if p.Exited() {
		t.Fatalf("server died: %v", p.KilledBy())
	}
}

func TestExtraFeatures(t *testing.T) {
	m, app, _ := boot(t, Config{Port: 8081, ExtraFeatures: 3})
	for _, req := range []string{"X0 /\n", "X1 /\n", "X2 /\n"} {
		got := request(t, m, app.Config.Port, req)
		if !strings.Contains(got, "210") {
			t.Errorf("%q -> %q, want 210", req, got)
		}
	}
	if got := request(t, m, app.Config.Port, "X9 /\n"); !strings.Contains(got, "400") {
		t.Errorf("undefined feature -> %q", got)
	}
}

func TestNginxStyleMasterWorker(t *testing.T) {
	m, app, p := boot(t, Config{Name: "nginx", Port: 8082, Workers: 1})
	// Two processes: master + one worker.
	if n := len(m.Processes()); n != 2 {
		t.Fatalf("processes = %d, want 2", n)
	}
	got := request(t, m, app.Config.Port, "GET /\n")
	if !strings.Contains(got, "200") {
		t.Fatalf("GET through worker -> %q", got)
	}
	if p.Exited() {
		t.Fatal("master died")
	}
}

func TestWorkerRespawn(t *testing.T) {
	m, app, _ := boot(t, Config{
		Name: "nginx", Port: 8083, Workers: 1,
		RespawnWorkers: true, CrashCommand: true,
	})
	// Crash the worker.
	conn, err := m.Dial(app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("STACKBUG /\n")); err != nil {
		t.Fatal(err)
	}
	m.Run(2_000_000)
	// The master must have respawned a worker: service is back.
	respawns, err := m.Processes()[0].Mem().ReadU64(symAddr(t, app, "respawns"))
	if err != nil {
		t.Fatal(err)
	}
	if respawns < 1 {
		t.Fatalf("respawns = %d, want >= 1", respawns)
	}
	got := request(t, m, app.Config.Port, "GET /\n")
	if !strings.Contains(got, "200") {
		t.Fatalf("GET after respawn -> %q", got)
	}
}

func symAddr(t *testing.T, app *App, name string) uint64 {
	t.Helper()
	sym, err := app.Exe.Symbol(name)
	if err != nil {
		t.Fatalf("symbol %s: %v", name, err)
	}
	return sym.Value
}

func TestInitRoutinesRunOnce(t *testing.T) {
	m, app, _ := boot(t, Config{Port: 8084, InitRoutines: 5})
	p := m.Processes()[0]
	v, err := p.Mem().ReadU64(symAddr(t, app, "init_state"))
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Fatal("init chain did not run")
	}
	cs, err := p.Mem().ReadU64(symAddr(t, app, "config_sum"))
	if err != nil {
		t.Fatal(err)
	}
	if cs == 0 {
		t.Fatal("config parse did not run")
	}
}

func TestBuildValidation(t *testing.T) {
	app, err := Build(Config{})
	if err != nil {
		t.Fatalf("default Build: %v", err)
	}
	if app.Config.Port == 0 || app.Config.Name == "" {
		t.Error("defaults not applied")
	}
	if app.Exe.TextSize() == 0 {
		t.Error("empty text")
	}
}
