package webserv

import (
	"strings"
	"testing"
)

func TestLargePUTIsTruncatedSafely(t *testing.T) {
	m, app, p := boot(t, Config{Port: 8180})
	// The request buffer is 256 bytes and the file store caps at 200;
	// an oversized body must be truncated, never overflow.
	body := strings.Repeat("Z", 400)
	got := request(t, m, app.Config.Port, "PUT /big "+body+"\n")
	if !strings.Contains(got, "201") {
		t.Fatalf("big PUT -> %q", got)
	}
	if p.Exited() {
		t.Fatalf("server died: %v", p.KilledBy())
	}
	got = request(t, m, app.Config.Port, "GET /big\n")
	if len(got) == 0 || len(got) > 250+len(Resp200) {
		t.Fatalf("stored content length suspicious: %d bytes", len(got))
	}
}

func TestEmptyPUTRejected(t *testing.T) {
	m, app, _ := boot(t, Config{Port: 8181})
	if got := request(t, m, app.Config.Port, "PUT\n"); !strings.Contains(got, "400") {
		t.Fatalf("empty PUT -> %q", got)
	}
}

func TestNginxStyleWithExtraFeatures(t *testing.T) {
	m, app, _ := boot(t, Config{Name: "nginx", Port: 8182, Workers: 2, ExtraFeatures: 4})
	if len(m.Processes()) != 3 {
		t.Fatalf("procs = %d", len(m.Processes()))
	}
	// Features work through whichever worker accepts.
	for i := 0; i < 4; i++ {
		if got := request(t, m, app.Config.Port, "X2 /\n"); !strings.Contains(got, "210") {
			t.Fatalf("X2 round %d -> %q", i, got)
		}
	}
}

func TestRequestSmallerThanMethodName(t *testing.T) {
	m, app, p := boot(t, Config{Port: 8183})
	// One-byte request: every match chain must fail on the NUL without
	// reading out of bounds.
	if got := request(t, m, app.Config.Port, "G"); !strings.Contains(got, "400") {
		t.Fatalf("tiny request -> %q", got)
	}
	if p.Exited() {
		t.Fatal("tiny request killed the server")
	}
}

func TestSourceExposedForInspection(t *testing.T) {
	app, err := Build(Config{Port: 8184, ExtraFeatures: 2, CrashCommand: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"server_main_loop", "resp_403", "handle_put", "handle_x1",
		"handle_stackbug", "parse_config",
	} {
		if !strings.Contains(app.Source, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	// Respawn code only with the option.
	if strings.Contains(app.Source, "respawn it") {
		t.Error("respawn path generated without RespawnWorkers")
	}
	app2, err := Build(Config{Port: 8185, Workers: 1, RespawnWorkers: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(app2.Source, "respawn it") {
		t.Error("respawn path missing with RespawnWorkers")
	}
}

func TestMethodsListMatchesDispatcher(t *testing.T) {
	m, app, _ := boot(t, Config{Port: 8186})
	for _, method := range Methods {
		got := request(t, m, app.Config.Port, method+" /\n")
		if strings.Contains(got, "400") {
			t.Errorf("declared method %s got 400", method)
		}
		if got == "" {
			t.Errorf("declared method %s got no response", method)
		}
	}
}
