// Package specgen generates synthetic CPU-bound guests standing in
// for the SPEC INT2017 speed benchmarks of the paper's evaluation.
// The real suite is proprietary; what the experiments actually
// consume is the *shape* of each program — total basic blocks, the
// fraction executed, the fraction executed only during
// initialization, and code size — so each profile reproduces those
// ratios at 1:10 scale (recorded in EXPERIMENTS.md).
//
// A generated benchmark runs: libc init → an initialization pass over
// the first InitFuncs entries of a function table → nudge → LoopIters
// serving-phase passes over the remaining executed functions → exit.
// Functions beyond ExecFuncs exist in the binary but never run (the
// gray blocks of Figure 2).
package specgen

import (
	"fmt"
	"strings"

	applibc "github.com/dynacut/dynacut/internal/apps/libc"
	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
)

// Profile shapes one synthetic benchmark.
type Profile struct {
	Name string
	// TotalFuncs is the number of generated functions (≈ static BBs).
	TotalFuncs int
	// ExecFuncs of them execute at least once (ExecFuncs ≤ TotalFuncs).
	ExecFuncs int
	// InitFuncs of the executed ones run only during initialization
	// (InitFuncs ≤ ExecFuncs).
	InitFuncs int
	// LoopIters is the number of serving-phase passes.
	LoopIters int
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("specgen: profile needs a name")
	}
	if p.TotalFuncs < 1 || p.ExecFuncs < 1 || p.ExecFuncs > p.TotalFuncs ||
		p.InitFuncs < 0 || p.InitFuncs > p.ExecFuncs {
		return fmt.Errorf("specgen: inconsistent profile %+v", p)
	}
	if p.LoopIters < 1 {
		return fmt.Errorf("specgen: LoopIters must be >= 1")
	}
	return nil
}

// Profiles mirrors the paper's seven SPEC INTSpeed C/C++ benchmarks
// at roughly 1:10 scale, with init-only fractions chosen to land the
// removal percentages of Figure 9 (8.4%–41.4%, perlbench highest).
var Profiles = []Profile{
	{Name: "600.perlbench_s", TotalFuncs: 3600, ExecFuncs: 2600, InitFuncs: 1080, LoopIters: 40},
	{Name: "605.mcf_s", TotalFuncs: 118, ExecFuncs: 90, InitFuncs: 18, LoopIters: 400},
	{Name: "620.omnetpp_s", TotalFuncs: 3000, ExecFuncs: 1700, InitFuncs: 430, LoopIters: 40},
	{Name: "623.xalancbmk_s", TotalFuncs: 5200, ExecFuncs: 2100, InitFuncs: 650, LoopIters: 40},
	{Name: "625.x264_s", TotalFuncs: 2200, ExecFuncs: 1300, InitFuncs: 260, LoopIters: 40},
	{Name: "631.deepsjeng_s", TotalFuncs: 500, ExecFuncs: 360, InitFuncs: 50, LoopIters: 100},
	{Name: "641.leela_s", TotalFuncs: 1060, ExecFuncs: 640, InitFuncs: 54, LoopIters: 60},
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// App is a generated benchmark guest.
type App struct {
	Profile Profile
	Exe     *delf.File
	Libc    *delf.File
}

// Build generates, assembles and links a benchmark.
func Build(p Profile) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lc, err := applibc.Build()
	if err != nil {
		return nil, err
	}
	src := generate(p)
	obj, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("specgen assemble %s: %w", p.Name, err)
	}
	exe, err := link.Executable(p.Name, []*asm.Object{obj}, lc)
	if err != nil {
		return nil, fmt.Errorf("specgen link %s: %w", p.Name, err)
	}
	return &App{Profile: p, Exe: exe, Libc: lc}, nil
}

func generate(p Profile) string {
	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}

	w(".text")
	w(".global _start")
	w("_start:")
	w("\tcall libc_init@plt")
	// Initialization pass: call table entries [0, InitFuncs).
	w("\tmov r9, =call_table")
	w("\tmov r8, 0")
	w("spec_init_loop:")
	w("\tcmp r8, %d", p.InitFuncs)
	w("\tjge spec_init_done")
	w("\tload r7, [r9]")
	w("\tcall r7")
	w("\tadd r9, 8")
	w("\tadd r8, 1")
	w("\tjmp spec_init_loop")
	w("spec_init_done:")
	w("\tmov r1, 1")
	w("\tcall nudge@plt")
	// Serving phase: LoopIters passes over [InitFuncs, ExecFuncs).
	w("\tmov r12, 0")
	w("spec_outer:")
	w("\tcmp r12, %d", p.LoopIters)
	w("\tjge spec_finish")
	w("\tmov r9, =call_table")
	w("\tadd r9, %d", p.InitFuncs*8)
	w("\tmov r8, %d", p.InitFuncs)
	w("spec_inner:")
	w("\tcmp r8, %d", p.ExecFuncs)
	w("\tjge spec_inext")
	w("\tload r7, [r9]")
	w("\tcall r7")
	w("\tadd r9, 8")
	w("\tadd r8, 1")
	w("\tjmp spec_inner")
	w("spec_inext:")
	w("\tadd r12, 1")
	w("\tjmp spec_outer")
	w("spec_finish:")
	w("\tmov r1, 0")
	w("\tcall exit@plt")

	// The function population. fn_0..fn_{InitFuncs-1} are init-only,
	// the next run in the serving loop, the rest never execute.
	for i := 0; i < p.TotalFuncs; i++ {
		w("fn_%d:", i)
		w("\tmov r7, %d", i*2654435761%1000003+1)
		w("\txor r7, %d", (i*40503)&0xffff)
		w("\tmov r6, =acc")
		w("\tload r5, [r6]")
		w("\tadd r5, r7")
		w("\tstore [r6], r5")
		w("\tret")
	}

	w(".data")
	w(".align 8")
	w("acc: .quad 0")
	w("call_table:")
	for i := 0; i < p.ExecFuncs; i++ {
		w("\t.quad fn_%d", i)
	}

	return b.String()
}
