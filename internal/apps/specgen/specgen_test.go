package specgen

import (
	"testing"

	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/trace"
)

func TestValidate(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", TotalFuncs: 0, ExecFuncs: 1, LoopIters: 1},
		{Name: "x", TotalFuncs: 5, ExecFuncs: 6, LoopIters: 1},
		{Name: "x", TotalFuncs: 5, ExecFuncs: 3, InitFuncs: 4, LoopIters: 1},
		{Name: "x", TotalFuncs: 5, ExecFuncs: 3, InitFuncs: 1, LoopIters: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d validated: %+v", i, p)
		}
	}
	for _, p := range Profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("605.mcf_s"); !ok {
		t.Error("mcf profile missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("phantom profile")
	}
}

// TestMcfRunsToCompletion runs the smallest profile end to end under
// the tracer and checks the init/serving split.
func TestMcfRunsToCompletion(t *testing.T) {
	prof, _ := ProfileByName("605.mcf_s")
	app, err := Build(prof)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := kernel.NewMachine()
	col := trace.NewCollector(prof.Name)
	m.SetTracer(col)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatal(err)
	}
	var initLog *trace.Log
	m.SetNudgeFunc(func(pid int, arg uint64) {
		initLog = col.SnapshotAndReset(p.Modules(), "init")
	})
	m.Run(50_000_000)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("exit = %v/%d killed=%v", p.Exited(), p.ExitCode(), p.KilledBy())
	}
	if initLog == nil {
		t.Fatal("nudge never fired")
	}
	servingLog := col.Snapshot(p.Modules(), "serving")
	if len(initLog.Blocks) == 0 || len(servingLog.Blocks) == 0 {
		t.Fatalf("phase logs empty: init=%d serving=%d",
			len(initLog.Blocks), len(servingLog.Blocks))
	}
	// Init-only functions must appear only in the init log.
	initSym, err := app.Exe.Symbol("fn_0")
	if err != nil {
		t.Fatal(err)
	}
	hotSym, err := app.Exe.Symbol(fnName(prof.InitFuncs))
	if err != nil {
		t.Fatal(err)
	}
	if !hasBlockAt(initLog, initSym.Value) {
		t.Error("fn_0 missing from init coverage")
	}
	if hasBlockAt(servingLog, initSym.Value) {
		t.Error("init-only fn_0 executed during serving phase")
	}
	if !hasBlockAt(servingLog, hotSym.Value) {
		t.Error("hot function missing from serving coverage")
	}
	// Never-executed functions appear in neither.
	deadSym, err := app.Exe.Symbol(fnName(prof.ExecFuncs))
	if err != nil {
		t.Fatal(err)
	}
	if hasBlockAt(initLog, deadSym.Value) || hasBlockAt(servingLog, deadSym.Value) {
		t.Error("never-executed function traced")
	}
}

func fnName(i int) string {
	return "fn_" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func hasBlockAt(l *trace.Log, addr uint64) bool {
	for _, b := range l.Blocks {
		if b.Addr == addr {
			return true
		}
	}
	return false
}

func TestBuildAllProfilesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, prof := range Profiles {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			app, err := Build(prof)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if app.Exe.TextSize() == 0 {
				t.Fatal("empty text")
			}
		})
	}
}
