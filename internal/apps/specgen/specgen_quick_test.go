package specgen

import (
	"testing"
	"testing/quick"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/disasm"
)

// Property: any consistent profile builds a binary whose static CFG
// contains at least one block per generated function, and whose call
// table holds exactly ExecFuncs entries.
func TestQuickProfilesBuild(t *testing.T) {
	f := func(total, exec, init uint8, iters uint8) bool {
		p := Profile{
			Name:       "q",
			TotalFuncs: int(total%40) + 2,
			LoopIters:  int(iters%5) + 1,
		}
		p.ExecFuncs = int(exec)%p.TotalFuncs + 1
		p.InitFuncs = int(init) % (p.ExecFuncs + 1)
		if p.Validate() != nil {
			return true // inconsistent draw: skip
		}
		app, err := Build(p)
		if err != nil {
			return false
		}
		cfg := disasm.Analyze(app.Exe)
		if cfg.Count() < p.TotalFuncs {
			return false
		}
		// The call table is ExecFuncs quads.
		sym, err := app.Exe.Symbol("call_table")
		if err != nil {
			return false
		}
		_ = sym
		data, err := app.Exe.Section(delf.SecData)
		if err != nil {
			return false
		}
		return data.Size >= uint64(8*p.ExecFuncs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: generated function addresses are distinct and strictly
// increasing in index order.
func TestFunctionLayoutMonotone(t *testing.T) {
	app, err := Build(Profile{Name: "m", TotalFuncs: 30, ExecFuncs: 20, InitFuncs: 5, LoopIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i := 0; i < 30; i++ {
		sym, err := app.Exe.Symbol(fnName(i))
		if err != nil {
			t.Fatalf("missing %s", fnName(i))
		}
		if sym.Value <= prev {
			t.Fatalf("%s at %#x not after %#x", fnName(i), sym.Value, prev)
		}
		prev = sym.Value
	}
}
