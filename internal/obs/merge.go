package obs

import "sort"

// Fleet-level timeline assembly: each replica carries its own
// Observer, and the fleet view is the per-replica event streams tagged
// with the replica's name and merged into one ordered trace. Tagging
// matters beyond display — Summarize pairs phase-start/phase-end spans
// by (name, attempt), so merging untagged streams from N replicas
// running the same phases would cross-match spans between replicas.

// Tag returns a copy of events with prefix prepended to every Name
// (e.g. "replica3/checkpoint"). The input is not modified.
func Tag(events []Event, prefix string) []Event {
	out := make([]Event, len(events))
	for i, ev := range events {
		ev.Name = prefix + ev.Name
		out[i] = ev
	}
	return out
}

// MergeTimelines interleaves several event streams into one timeline
// ordered by virtual clock, breaking ties by wall clock and then by
// sequence number. Each input stream must itself be ordered (as
// Observer.Events returns it); the inputs are not modified. The
// virtual clock leads because it is the deterministic axis: replicas
// of a deterministic workload merge identically across reruns, with
// wall time only arbitrating events from different machines whose
// virtual clocks happen to agree.
func MergeTimelines(streams ...[]Event) []Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Event, 0, total)
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.VClock != b.VClock {
			return a.VClock < b.VClock
		}
		if a.WallNS != b.WallNS {
			return a.WallNS < b.WallNS
		}
		return a.Seq < b.Seq
	})
	return out
}
