package obs

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestSummarizeGolden locks the operator-facing summary format: a
// fully deterministic trace (stubbed wall and virtual clocks) rendered
// by Summary() must match the checked-in golden byte-for-byte. Run
// with -update after an intentional format change.
func TestSummarizeGolden(t *testing.T) {
	o := New(64)
	now := int64(0)
	o.SetWallClock(func() time.Time { now += 1_000_000; return time.Unix(0, now) })
	vc := uint64(0)
	o.SetClock(func() uint64 { vc += 500; return vc })

	// One committed rewrite with a retried edit, a fault, and metrics —
	// every branch of the summary renderer.
	o.PhaseStart("checkpoint", 0)
	o.PhaseEnd("checkpoint", 0, nil)
	o.PhaseStart("edit", 1)
	o.PhaseEnd("edit", 1, errors.New("injected"))
	o.Fault("crit.edit.write", 1)
	o.PhaseStart("edit", 2)
	o.PhaseEnd("edit", 2, nil)
	o.PhaseStart("restore", 2)
	o.PhaseEnd("restore", 2, nil)
	o.Point("rewrite.commit", 2)
	o.Add("core.commits", 1)
	o.SetGauge("criu.parent.depth", 3)
	o.PhaseStart("dangling", 2) // crash mid-phase: counts as an error

	got := o.Summary()
	golden := filepath.Join("testdata", "summary.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Summary() drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
