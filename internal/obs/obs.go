// Package obs is the observability layer of the rewrite pipeline: a
// structured, allocation-light event and metrics sink that the kernel,
// the criu image pipeline, the fault injector and core.Customizer all
// emit into while they run (the role CRIU's --display-stats and
// DynamoRIO's drcov runtime counters play in the original stack).
//
// An Observer holds a bounded ring buffer of typed events — each
// stamped with both the wall clock and the machine's virtual clock, so
// traces are deterministic under test — plus named counters, gauges
// and log2-bucketed histograms. Exporters (jsonl.go) turn the ring
// into a JSONL trace or a human-readable phase summary.
//
// A nil *Observer is the off switch: every emit site checks for nil
// before doing any work, so an unobserved rewrite pays nothing.
package obs

import (
	"math/bits"
	"sync"
	"time"
)

// Kind classifies an event. String-typed so JSONL traces are
// self-describing without an enum table.
type Kind string

// Event kinds.
const (
	// KindPhaseStart / KindPhaseEnd bracket one rewrite phase
	// (checkpoint, edit, validate, kill, restore, health, rollback).
	KindPhaseStart Kind = "phase-start"
	KindPhaseEnd   Kind = "phase-end"
	// KindFault marks an injected fault (site in Name, hit count in N).
	KindFault Kind = "fault"
	// KindPoint is a single instantaneous event (commit, truncation...).
	KindPoint Kind = "point"
)

// Event is one trace record. Fields are fixed-width and flat so
// emitting one costs a ring slot, not an allocation.
type Event struct {
	// Seq is the observer-wide sequence number (monotonic, never
	// reused; survives ring overwrites so drops are detectable).
	Seq uint64 `json:"seq"`
	// WallNS is the wall-clock timestamp in Unix nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// VClock is the machine's virtual clock (retired instructions) at
	// emit time — identical across reruns of a deterministic workload.
	VClock uint64 `json:"vclock"`
	Kind   Kind   `json:"kind"`
	// Name is the phase (spans), fault site (faults), or event name
	// (points).
	Name string `json:"name"`
	// Attempt is the rewrite attempt the event belongs to (0 = outside
	// the retry loop).
	Attempt int `json:"attempt,omitempty"`
	PID     int `json:"pid,omitempty"`
	// N is a generic numeric payload (pages, hit count, bytes...).
	N int64 `json:"n,omitempty"`
	// Err carries the failure of a phase-end event ("" = success).
	Err string `json:"err,omitempty"`
}

// DefaultCapacity is the ring size used when New is given 0.
const DefaultCapacity = 4096

// histBuckets is the number of log2 latency buckets (bucket i holds
// values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i)).
const histBuckets = 64

// Hist is a snapshot of one log2-bucketed histogram.
type Hist struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets [histBuckets]int64
}

type spanKey struct {
	name    string
	attempt int
}

type spanStart struct {
	wall   int64
	vclock uint64
}

// Observer is the sink. All methods are safe for concurrent use; the
// zero value is not usable — construct with New. Callers hold a
// *Observer that may be nil, and nil checks at the emit sites are the
// zero-overhead off switch.
type Observer struct {
	mu    sync.Mutex
	clock func() uint64
	wall  func() time.Time

	seq     uint64
	ring    []Event
	head    int // index of the oldest event
	n       int // events currently held
	dropped uint64

	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Hist
	open     map[spanKey]spanStart
}

// New creates an observer with a bounded event ring of the given
// capacity (0 = DefaultCapacity). Until SetClock is called, events
// carry VClock 0.
func New(capacity int) *Observer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Observer{
		ring:     make([]Event, capacity),
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		hists:    map[string]*Hist{},
		open:     map[spanKey]spanStart{},
	}
}

// SetClock installs the virtual-clock source (kernel.Machine wires its
// tick counter here via SetObserver).
func (o *Observer) SetClock(f func() uint64) {
	o.mu.Lock()
	o.clock = f
	o.mu.Unlock()
}

// SetWallClock overrides the wall-clock source (tests stub it for
// byte-identical JSONL traces). nil restores time.Now.
func (o *Observer) SetWallClock(f func() time.Time) {
	o.mu.Lock()
	o.wall = f
	o.mu.Unlock()
}

// stamp fills the clock fields and sequence number. Caller holds o.mu.
func (o *Observer) stamp(ev *Event) {
	ev.Seq = o.seq
	o.seq++
	if o.wall != nil {
		ev.WallNS = o.wall().UnixNano()
	} else {
		ev.WallNS = time.Now().UnixNano()
	}
	if o.clock != nil {
		ev.VClock = o.clock()
	}
}

// push appends one stamped event to the ring, overwriting the oldest
// when full. Caller holds o.mu.
func (o *Observer) push(ev Event) {
	if o.n == len(o.ring) {
		o.ring[o.head] = ev
		o.head = (o.head + 1) % len(o.ring)
		o.dropped++
		return
	}
	o.ring[(o.head+o.n)%len(o.ring)] = ev
	o.n++
}

// Emit records one event, stamping Seq, WallNS and VClock.
func (o *Observer) Emit(ev Event) {
	o.mu.Lock()
	o.stamp(&ev)
	o.push(ev)
	o.mu.Unlock()
}

// PhaseStart opens a span for one rewrite phase. Matching PhaseEnd
// (same name and attempt) closes it and feeds the wall-clock duration
// into the "phase.<name>" histogram.
func (o *Observer) PhaseStart(name string, attempt int) {
	o.mu.Lock()
	ev := Event{Kind: KindPhaseStart, Name: name, Attempt: attempt}
	o.stamp(&ev)
	o.push(ev)
	o.open[spanKey{name, attempt}] = spanStart{wall: ev.WallNS, vclock: ev.VClock}
	o.mu.Unlock()
}

// PhaseEnd closes a span; err ("" on success) is recorded on the
// event, so failed phases are visible in the trace.
func (o *Observer) PhaseEnd(name string, attempt int, err error) {
	o.mu.Lock()
	ev := Event{Kind: KindPhaseEnd, Name: name, Attempt: attempt}
	if err != nil {
		ev.Err = err.Error()
	}
	o.stamp(&ev)
	if st, ok := o.open[spanKey{name, attempt}]; ok {
		delete(o.open, spanKey{name, attempt})
		o.observeLocked("phase."+name, ev.WallNS-st.wall)
	}
	o.push(ev)
	o.mu.Unlock()
}

// Point records an instantaneous named event with a numeric payload.
func (o *Observer) Point(name string, n int64) {
	o.Emit(Event{Kind: KindPoint, Name: name, N: n})
}

// Fault records an injected fault at a hook site.
func (o *Observer) Fault(site string, hit int) {
	o.mu.Lock()
	o.counters["faults.injected"]++
	ev := Event{Kind: KindFault, Name: site, N: int64(hit)}
	o.stamp(&ev)
	o.push(ev)
	o.mu.Unlock()
}

// Add increments a named counter and returns the new value.
func (o *Observer) Add(name string, delta int64) int64 {
	o.mu.Lock()
	o.counters[name] += delta
	v := o.counters[name]
	o.mu.Unlock()
	return v
}

// Counter reads a counter (0 if never written).
func (o *Observer) Counter(name string) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.counters[name]
}

// Counters returns a copy of all counters.
func (o *Observer) Counters() map[string]int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int64, len(o.counters))
	for k, v := range o.counters {
		out[k] = v
	}
	return out
}

// SetGauge records the current value of a named gauge.
func (o *Observer) SetGauge(name string, v int64) {
	o.mu.Lock()
	o.gauges[name] = v
	o.mu.Unlock()
}

// Gauge reads a gauge (0 if never set).
func (o *Observer) Gauge(name string) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.gauges[name]
}

// Gauges returns a copy of all gauges.
func (o *Observer) Gauges() map[string]int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int64, len(o.gauges))
	for k, v := range o.gauges {
		out[k] = v
	}
	return out
}

// Observe feeds one value into a named histogram.
func (o *Observer) Observe(name string, v int64) {
	o.mu.Lock()
	o.observeLocked(name, v)
	o.mu.Unlock()
}

func (o *Observer) observeLocked(name string, v int64) {
	h, ok := o.hists[name]
	if !ok {
		h = &Hist{}
		o.hists[name] = h
	}
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(uint64(v))]++
}

// Histogram returns a snapshot of one histogram and whether it exists.
func (o *Observer) Histogram(name string) (Hist, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.hists[name]
	if !ok {
		return Hist{}, false
	}
	return *h, true
}

// Events returns the buffered events, oldest first.
func (o *Observer) Events() []Event {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Event, o.n)
	for i := 0; i < o.n; i++ {
		out[i] = o.ring[(o.head+i)%len(o.ring)]
	}
	return out
}

// Len returns how many events the ring currently holds.
func (o *Observer) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

// Cap returns the ring capacity.
func (o *Observer) Cap() int { return len(o.ring) }

// Dropped returns how many events were overwritten by ring overflow.
func (o *Observer) Dropped() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.dropped
}

// Seq returns the next sequence number (== total events ever emitted).
func (o *Observer) Seq() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.seq
}
