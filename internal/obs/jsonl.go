package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteJSONL writes the buffered events as one JSON object per line —
// the machine-readable trace export (criu-image-tool style). The ring
// is snapshotted once, so a concurrently emitting observer stays
// consistent line-to-line.
func (o *Observer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range o.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into events (benchjson's -trace
// input). Blank lines are skipped; a malformed line is an error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("obs: bad trace line %q: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// PhaseStat aggregates the spans of one phase across a trace.
type PhaseStat struct {
	Name string `json:"name"`
	// Count is how many spans of this phase completed.
	Count int `json:"count"`
	// Errors is how many of them ended with a non-empty Err.
	Errors int `json:"errors,omitempty"`
	// WallNS / VTicks are the summed span durations on each clock.
	WallNS int64  `json:"wall_ns"`
	VTicks uint64 `json:"vticks"`
}

// TraceSummary is the aggregate view of one trace: per-phase span
// totals in first-start order, plus fault and point tallies.
type TraceSummary struct {
	Events int            `json:"events"`
	Phases []PhaseStat    `json:"phases"`
	Faults map[string]int `json:"faults,omitempty"`
	Points map[string]int `json:"points,omitempty"`
}

// Summarize reconstructs the phase timeline from a flat event list:
// phase-start/phase-end pairs are matched by (name, attempt), nesting
// and retries included. Unmatched starts (a crash mid-phase) count as
// errors with zero duration.
func Summarize(events []Event) *TraceSummary {
	s := &TraceSummary{Events: len(events)}
	idx := map[string]int{} // phase name -> index into s.Phases
	stat := func(name string) *PhaseStat {
		i, ok := idx[name]
		if !ok {
			i = len(s.Phases)
			idx[name] = i
			s.Phases = append(s.Phases, PhaseStat{Name: name})
		}
		return &s.Phases[i]
	}
	open := map[spanKey]spanStart{}
	for _, ev := range events {
		switch ev.Kind {
		case KindPhaseStart:
			stat(ev.Name) // register in first-start order
			open[spanKey{ev.Name, ev.Attempt}] = spanStart{wall: ev.WallNS, vclock: ev.VClock}
		case KindPhaseEnd:
			ps := stat(ev.Name)
			ps.Count++
			if ev.Err != "" {
				ps.Errors++
			}
			if st, ok := open[spanKey{ev.Name, ev.Attempt}]; ok {
				delete(open, spanKey{ev.Name, ev.Attempt})
				ps.WallNS += ev.WallNS - st.wall
				ps.VTicks += ev.VClock - st.vclock
			}
		case KindFault:
			if s.Faults == nil {
				s.Faults = map[string]int{}
			}
			s.Faults[ev.Name]++
		case KindPoint:
			if s.Points == nil {
				s.Points = map[string]int{}
			}
			s.Points[ev.Name]++
		}
	}
	for k := range open { // dangling spans: phase never completed
		stat(k.name).Errors++
	}
	return s
}

// Summary renders a human-readable phase summary of the current ring
// plus the metric registries — the operator-facing counterpart of
// WriteJSONL.
func (o *Observer) Summary() string {
	sum := Summarize(o.Events())
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events (%d dropped)\n", sum.Events, o.Dropped())
	if len(sum.Phases) > 0 {
		fmt.Fprintf(&b, "%-14s %6s %6s %12s %12s\n", "phase", "count", "errors", "wall", "vticks")
		for _, ps := range sum.Phases {
			fmt.Fprintf(&b, "%-14s %6d %6d %12v %12d\n",
				ps.Name, ps.Count, ps.Errors, time.Duration(ps.WallNS), ps.VTicks)
		}
	}
	writeTally := func(label string, m map[string]int) {
		if len(m) == 0 {
			return
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s:", label)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s×%d", k, m[k])
		}
		b.WriteByte('\n')
	}
	writeTally("faults", sum.Faults)
	writeTally("points", sum.Points)
	counters, gauges := o.Counters(), o.Gauges()
	writeKV := func(label string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s:", label)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, m[k])
		}
		b.WriteByte('\n')
	}
	writeKV("counters", counters)
	writeKV("gauges", gauges)
	return b.String()
}
