package obs

import (
	"errors"
	"testing"
	"time"
)

func TestTagPrefixesNamesWithoutMutating(t *testing.T) {
	in := []Event{
		{Kind: KindPhaseStart, Name: "checkpoint"},
		{Kind: KindPoint, Name: "rewrite.commit"},
	}
	out := Tag(in, "replica3/")
	if out[0].Name != "replica3/checkpoint" || out[1].Name != "replica3/rewrite.commit" {
		t.Fatalf("tagged names = %q, %q", out[0].Name, out[1].Name)
	}
	if in[0].Name != "checkpoint" {
		t.Fatal("Tag mutated its input")
	}
}

func TestMergeTimelinesOrdersByVClockThenWallThenSeq(t *testing.T) {
	a := []Event{
		{Seq: 1, VClock: 10, WallNS: 100, Name: "a1"},
		{Seq: 2, VClock: 30, WallNS: 300, Name: "a2"},
	}
	b := []Event{
		{Seq: 1, VClock: 10, WallNS: 50, Name: "b1"},  // same vclock, earlier wall
		{Seq: 2, VClock: 20, WallNS: 400, Name: "b2"}, // vclock wins over wall
	}
	got := MergeTimelines(a, b)
	want := []string{"b1", "a1", "b2", "a2"}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("merged[%d] = %s, want %s (full: %+v)", i, got[i].Name, name, got)
		}
	}
	// Determinism: merging in the other order gives the same timeline.
	again := MergeTimelines(b, a)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("merge is input-order sensitive at %d: %+v vs %+v", i, got[i], again[i])
		}
	}
}

// TestMergeTaggedStreamsSummarize is why Tag exists: two replicas run
// the same phases with the same attempt numbers, and only the tagged
// merge keeps their spans from cross-matching in Summarize.
func TestMergeTaggedStreamsSummarize(t *testing.T) {
	mkReplica := func(base int64, fail bool) []Event {
		o := New(64)
		now := base
		o.SetWallClock(func() time.Time { now += 1000; return time.Unix(0, now) })
		vc := uint64(base)
		o.SetClock(func() uint64 { vc += 10; return vc })
		o.PhaseStart("rewrite", 1)
		if fail {
			o.PhaseEnd("rewrite", 1, errors.New("boom"))
		} else {
			o.PhaseEnd("rewrite", 1, nil)
		}
		return o.Events()
	}
	merged := MergeTimelines(
		Tag(mkReplica(0, false), "r0/"),
		Tag(mkReplica(5000, true), "r1/"),
	)
	sum := Summarize(merged)
	if len(sum.Phases) != 2 {
		t.Fatalf("phases = %+v, want one per replica", sum.Phases)
	}
	byName := map[string]PhaseStat{}
	for _, ps := range sum.Phases {
		byName[ps.Name] = ps
	}
	if ps := byName["r0/rewrite"]; ps.Count != 1 || ps.Errors != 0 {
		t.Errorf("r0 span: %+v", ps)
	}
	if ps := byName["r1/rewrite"]; ps.Count != 1 || ps.Errors != 1 {
		t.Errorf("r1 span: %+v", ps)
	}
}
