package obs

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingBounded: the ring never holds more than its capacity, drops
// are counted, and the survivors are the newest events in order.
func TestObserverRingBounded(t *testing.T) {
	o := New(4)
	for i := 0; i < 10; i++ {
		o.Point("p", int64(i))
	}
	if o.Len() != 4 || o.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", o.Len(), o.Cap())
	}
	if o.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", o.Dropped())
	}
	evs := o.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.N != want || ev.Seq != uint64(want) {
			t.Fatalf("event %d = %+v, want N=Seq=%d", i, ev, want)
		}
	}
}

// TestClockStamping: events carry the installed virtual clock and the
// (stubbed) wall clock.
func TestClockStamping(t *testing.T) {
	o := New(0)
	var ticks uint64
	o.SetClock(func() uint64 { return ticks })
	o.SetWallClock(func() time.Time { return time.Unix(7, 42) })
	ticks = 123
	o.Point("a", 0)
	ticks = 456
	o.Point("b", 0)
	evs := o.Events()
	if evs[0].VClock != 123 || evs[1].VClock != 456 {
		t.Fatalf("vclocks = %d, %d", evs[0].VClock, evs[1].VClock)
	}
	if evs[0].WallNS != time.Unix(7, 42).UnixNano() {
		t.Fatalf("wall = %d", evs[0].WallNS)
	}
}

// TestCountersGaugesHistograms exercises the metric registries.
func TestCountersGaugesHistograms(t *testing.T) {
	o := New(0)
	o.Add("c", 2)
	if got := o.Add("c", 3); got != 5 || o.Counter("c") != 5 {
		t.Fatalf("counter = %d / %d", got, o.Counter("c"))
	}
	o.SetGauge("g", -7)
	if o.Gauge("g") != -7 {
		t.Fatalf("gauge = %d", o.Gauge("g"))
	}
	for _, v := range []int64{1, 2, 3, 1000} {
		o.Observe("h", v)
	}
	h, ok := o.Histogram("h")
	if !ok || h.Count != 4 || h.Sum != 1006 || h.Min != 1 || h.Max != 1000 {
		t.Fatalf("hist = %+v ok=%v", h, ok)
	}
	if _, ok := o.Histogram("absent"); ok {
		t.Fatal("phantom histogram")
	}
}

// TestPhaseSpansFeedHistogram: PhaseEnd closes the span opened by
// PhaseStart and records the duration in phase.<name>.
func TestPhaseSpansFeedHistogram(t *testing.T) {
	o := New(0)
	now := time.Unix(0, 0)
	o.SetWallClock(func() time.Time { return now })
	o.PhaseStart("checkpoint", 1)
	now = now.Add(5 * time.Millisecond)
	o.PhaseEnd("checkpoint", 1, nil)
	h, ok := o.Histogram("phase.checkpoint")
	if !ok || h.Count != 1 || h.Sum != int64(5*time.Millisecond) {
		t.Fatalf("hist = %+v ok=%v", h, ok)
	}
}

// TestJSONLRoundTripAndSummarize: export → parse → summarize
// reconstructs the phase timeline, including a failed attempt and a
// rollback.
func TestJSONLRoundTripAndSummarize(t *testing.T) {
	o := New(0)
	o.SetWallClock(func() time.Time { return time.Unix(1, 0) })
	o.PhaseStart("checkpoint", 0)
	o.PhaseEnd("checkpoint", 0, nil)
	o.PhaseStart("restore", 1)
	o.Fault("criu.restore.proc", 1)
	o.PhaseEnd("restore", 1, errors.New("injected"))
	o.PhaseStart("rollback", 1)
	o.PhaseEnd("rollback", 1, nil)
	o.PhaseStart("restore", 2)
	o.PhaseEnd("restore", 2, nil)
	o.Point("commit", 1)

	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != o.Len() {
		t.Fatalf("parsed %d events, ring holds %d", len(evs), o.Len())
	}
	sum := Summarize(evs)
	byName := map[string]PhaseStat{}
	for _, ps := range sum.Phases {
		byName[ps.Name] = ps
	}
	if ps := byName["restore"]; ps.Count != 2 || ps.Errors != 1 {
		t.Fatalf("restore stat = %+v", ps)
	}
	if ps := byName["rollback"]; ps.Count != 1 || ps.Errors != 0 {
		t.Fatalf("rollback stat = %+v", ps)
	}
	if sum.Faults["criu.restore.proc"] != 1 {
		t.Fatalf("faults = %v", sum.Faults)
	}
	if sum.Points["commit"] != 1 {
		t.Fatalf("points = %v", sum.Points)
	}
	// First-start order: checkpoint before restore before rollback.
	if sum.Phases[0].Name != "checkpoint" || sum.Phases[1].Name != "restore" {
		t.Fatalf("phase order = %v", sum.Phases)
	}
}

// TestSummaryText: the human-readable export mentions phases, faults
// and counters.
func TestSummaryText(t *testing.T) {
	o := New(0)
	o.PhaseStart("edit", 1)
	o.PhaseEnd("edit", 1, nil)
	o.Fault("core.health", 2)
	o.Add("kernel.syscalls", 9)
	s := o.Summary()
	for _, want := range []string{"edit", "core.health×1", "kernel.syscalls=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestConcurrentEmit: racing emitters never corrupt the ring (run
// under -race by the chaos gate).
func TestObserverConcurrentEmit(t *testing.T) {
	o := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o.Point("p", int64(i))
				o.Add("c", 1)
			}
		}()
	}
	wg.Wait()
	if o.Len() != 64 || o.Counter("c") != 800 || o.Seq() != 800 {
		t.Fatalf("len=%d c=%d seq=%d", o.Len(), o.Counter("c"), o.Seq())
	}
}

// TestSummarizeDanglingSpan: a start without an end counts as an
// error (the process died mid-phase).
func TestSummarizeDanglingSpan(t *testing.T) {
	sum := Summarize([]Event{{Kind: KindPhaseStart, Name: "restore", Attempt: 1}})
	if len(sum.Phases) != 1 || sum.Phases[0].Errors != 1 || sum.Phases[0].Count != 0 {
		t.Fatalf("summary = %+v", sum.Phases)
	}
}
