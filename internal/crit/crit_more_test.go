package crit

import (
	"testing"

	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/kernel"
)

func TestInsertLibraryAtExplicitBase(t *testing.T) {
	w := setup(t)
	lib := buildLib(t, "explicit.so", `
.text
.global entry
entry:
	ret
`)
	const base = 0x6000_0000_0000
	exports, err := w.ed.InsertLibrary(w.p.PID(), lib, base)
	if err != nil {
		t.Fatal(err)
	}
	if exports["entry"] != base {
		t.Fatalf("entry at %#x, want %#x", exports["entry"], base)
	}
	mod, err := w.ed.FindModule(w.p.PID(), "explicit.so")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Lo != base {
		t.Errorf("module lo = %#x", mod.Lo)
	}
	// Unaligned base rejected.
	lib2 := buildLib(t, "unaligned.so", ".text\n.global f\nf: ret\n")
	if _, err := w.ed.InsertLibrary(w.p.PID(), lib2, 0x1234); err == nil {
		t.Fatal("unaligned base accepted")
	}
	// Executables rejected.
	if _, err := w.ed.InsertLibrary(w.p.PID(), w.exe, 0); err == nil {
		t.Fatal("executable injected as library")
	}
}

func TestFindFreeRangeSkipsExistingInjections(t *testing.T) {
	w := setup(t)
	lib1 := buildLib(t, "one.so", ".text\n.global f1\nf1: ret\n")
	lib2 := buildLib(t, "two.so", ".text\n.global f2\nf2: ret\n")
	e1, err := w.ed.InsertLibrary(w.p.PID(), lib1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := w.ed.InsertLibrary(w.p.PID(), lib2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e1["f1"] == e2["f2"] {
		t.Fatal("two injections landed on the same address")
	}
	m1, _ := w.ed.FindModule(w.p.PID(), "one.so")
	m2, _ := w.ed.FindModule(w.p.PID(), "two.so")
	if m1.Lo < m2.Hi && m2.Lo < m1.Hi {
		t.Fatalf("modules overlap: %+v %+v", m1, m2)
	}
}

func TestGrowVMA(t *testing.T) {
	w := setup(t)
	pid := w.p.PID()
	vmas, err := w.ed.VMAs(pid)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the stack VMA downward is not supported (fixed start);
	// grow the bss region instead — find a VMA with free space after.
	var target criu.VMAEntry
	for _, v := range vmas {
		if v.Name == "featured:.data" {
			target = v
		}
	}
	if target.Start == 0 {
		t.Fatal("no data VMA")
	}
	newEnd := target.End + 2*kernel.PageSize
	if err := w.ed.GrowVMA(pid, target.Start, newEnd); err != nil {
		t.Fatalf("grow: %v", err)
	}
	// New range is writable in the image after supplying pages.
	if err := w.ed.WriteMem(pid, target.End+8, []byte{1, 2, 3}); err == nil {
		t.Log("write into grown-but-unbacked page succeeded via SetPage materialization")
	}
	vmas, _ = w.ed.VMAs(pid)
	found := false
	for _, v := range vmas {
		if v.Start == target.Start && v.End == newEnd {
			found = true
		}
	}
	if !found {
		t.Fatal("grown VMA not recorded")
	}
	// Restore accepts the grown layout.
	if err := w.m.Kill(pid); err != nil {
		t.Fatal(err)
	}
	if _, _, err := criu.Restore(w.m, w.set); err != nil {
		t.Fatalf("restore with grown VMA: %v", err)
	}
	// Errors: shrink, unknown start, collision, misalignment.
	if err := w.ed.GrowVMA(pid, target.Start, target.Start+kernel.PageSize); err == nil {
		t.Error("shrink accepted")
	}
	if err := w.ed.GrowVMA(pid, 0xdead000, newEnd); err == nil {
		t.Error("unknown VMA accepted")
	}
	if err := w.ed.GrowVMA(pid, target.Start, newEnd+7); err == nil {
		t.Error("unaligned growth accepted")
	}
	text, err := w.exe.Section(delf.SecText)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ed.GrowVMA(pid, text.Addr, text.Addr+0x100000); err == nil {
		t.Error("collision with next VMA accepted")
	}
}

func TestSyscallFilterImageEdit(t *testing.T) {
	w := setup(t)
	pid := w.p.PID()
	// No filter initially.
	f, err := w.ed.SyscallFilter(pid)
	if err != nil || f != nil {
		t.Fatalf("initial filter = %v, %v", f, err)
	}
	if err := w.ed.SetSyscallFilter(pid, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f, err = w.ed.SyscallFilter(pid)
	if err != nil || len(f) != 3 {
		t.Fatalf("filter = %v, %v", f, err)
	}
	// Round-trips through serialization.
	blob := w.set.Marshal()
	got, err := criu.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := got.Proc(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !pi.Core.HasFilter || len(pi.Core.SysFilter) != 3 {
		t.Fatalf("serialized filter = %+v", pi.Core)
	}
	// Removing it works.
	if err := w.ed.SetSyscallFilter(pid, nil); err != nil {
		t.Fatal(err)
	}
	f, _ = w.ed.SyscallFilter(pid)
	if f != nil {
		t.Fatal("filter not removed")
	}
}

func TestDenyAllFilterDistinctFromNone(t *testing.T) {
	w := setup(t)
	pid := w.p.PID()
	if err := w.ed.SetSyscallFilter(pid, []uint64{}); err != nil {
		t.Fatal(err)
	}
	blob := w.set.Marshal()
	got, err := criu.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := got.Proc(pid)
	if !pi.Core.HasFilter {
		t.Fatal("deny-all filter lost in serialization")
	}
	// Restore applies it: the process dies at its first syscall.
	if err := w.m.Kill(pid); err != nil {
		t.Fatal(err)
	}
	procs, _, err := criu.Restore(w.m, got)
	if err != nil {
		t.Fatal(err)
	}
	state, _ := w.exe.Symbol("state")
	if err := procs[0].Mem().WriteU64(state.Value, 1); err != nil {
		t.Fatal(err)
	}
	w.m.Run(100000)
	if procs[0].KilledBy() != kernel.SIGSYS {
		t.Fatalf("killed by %v, want SIGSYS under deny-all", procs[0].KilledBy())
	}
}
