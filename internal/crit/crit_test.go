package crit

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/asm"
	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/kernel"
)

func build(t *testing.T, name, src string, libs ...*delf.File) *delf.File {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	exe, err := link.Executable(name, []*asm.Object{obj}, libs...)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return exe
}

func buildLib(t *testing.T, name, src string) *delf.File {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	lib, err := link.Library(name, []*asm.Object{obj})
	if err != nil {
		t.Fatalf("link lib: %v", err)
	}
	return lib
}

// featureSrc has two "features" dispatched on r1, and an error path.
const featureSrc = `
.text
.global _start
_start:
	mov r8, =state
spin:
	load r1, [r8]        ; poll the request word
	cmp r1, 0
	je spin
	cmp r1, 1
	je feature_a
	cmp r1, 2
	je feature_b
	jmp errpath
feature_a:
	mov r2, 100
	jmp done
feature_b:
	mov r2, 200
	jmp done
errpath:
	mov r2, 255
done:
	mov r9, =result
	store [r9], r2
	mov r0, 1
	mov r1, 0
	syscall
.data
state: .quad 0
result: .quad 0
`

type world struct {
	m   *kernel.Machine
	p   *kernel.Process
	exe *delf.File
	set *criu.ImageSet
	ed  *Editor
}

func setup(t *testing.T) *world {
	t.Helper()
	m := kernel.NewMachine()
	exe := build(t, "featured", featureSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(500) // spin on state==0
	set, err := criu.Dump(m, p.PID(), criu.DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	return &world{m: m, p: p, exe: exe, set: set, ed: NewEditor(set, m)}
}

// restoreAndTrigger kills the original, restores the edited set, pokes
// the request word, and returns the restored process after it exits.
func (w *world) restoreAndTrigger(t *testing.T, request uint64) *kernel.Process {
	t.Helper()
	if err := w.m.Kill(w.p.PID()); err != nil {
		t.Fatal(err)
	}
	procs, _, err := criu.Restore(w.m, w.set)
	if err != nil {
		t.Fatal(err)
	}
	rp := procs[0]
	state, err := w.exe.Symbol("state")
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Mem().WriteU64(state.Value, request); err != nil {
		t.Fatal(err)
	}
	w.m.Run(100000)
	return rp
}

func result(t *testing.T, w *world, p *kernel.Process) uint64 {
	t.Helper()
	sym, err := w.exe.Symbol("result")
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Mem().ReadU64(sym.Value)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestUnpatchedFeatureWorks(t *testing.T) {
	w := setup(t)
	rp := w.restoreAndTrigger(t, 1)
	if !rp.Exited() || result(t, w, rp) != 100 {
		t.Fatalf("feature A result = %d", result(t, w, rp))
	}
}

func TestBlockEntryTrapsFeature(t *testing.T) {
	w := setup(t)
	featA, err := w.exe.Symbol("feature_a")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ed.BlockEntry(w.p.PID(), featA.Value); err != nil {
		t.Fatal(err)
	}
	rp := w.restoreAndTrigger(t, 1)
	// No SIGTRAP handler: default action kills the process.
	if rp.KilledBy() != kernel.SIGTRAP {
		t.Fatalf("killed by %v, want SIGTRAP", rp.KilledBy())
	}
	// The other feature keeps working on a fresh restore of the same
	// edited images? feature_b path is untouched, but the process is
	// dead; verify via a second restore.
	procs, _, err := criu.Restore(w.m, w.set)
	if err != nil {
		t.Fatal(err)
	}
	rp2 := procs[0]
	state, _ := w.exe.Symbol("state")
	if err := rp2.Mem().WriteU64(state.Value, 2); err != nil {
		t.Fatal(err)
	}
	w.m.Run(100000)
	if !rp2.Exited() || rp2.KilledBy() != 0 || result(t, w, rp2) != 200 {
		t.Fatalf("feature B broken after blocking A: result=%d killed=%v",
			result(t, w, rp2), rp2.KilledBy())
	}
}

func TestRestoreBytesReenablesFeature(t *testing.T) {
	w := setup(t)
	featA, _ := w.exe.Symbol("feature_a")
	orig, err := w.ed.ReadMem(w.p.PID(), featA.Value, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ed.BlockEntry(w.p.PID(), featA.Value); err != nil {
		t.Fatal(err)
	}
	// Re-enable: write the original byte back (the paper's
	// bidirectional transformation).
	if err := w.ed.WriteMem(w.p.PID(), featA.Value, orig); err != nil {
		t.Fatal(err)
	}
	rp := w.restoreAndTrigger(t, 1)
	if !rp.Exited() || rp.KilledBy() != 0 || result(t, w, rp) != 100 {
		t.Fatalf("re-enabled feature broken: result=%d killed=%v",
			result(t, w, rp), rp.KilledBy())
	}
}

func TestWipeRangeTrapsMidBlockJumps(t *testing.T) {
	w := setup(t)
	featA, _ := w.exe.Symbol("feature_a")
	featB, _ := w.exe.Symbol("feature_b")
	if err := w.ed.WipeRange(w.p.PID(), featA.Value, featB.Value-featA.Value); err != nil {
		t.Fatal(err)
	}
	// Every byte in the wiped range is INT3 now.
	got, err := w.ed.ReadMem(w.p.PID(), featA.Value, int(featB.Value-featA.Value))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xCC {
			t.Fatalf("byte %d = %#x, want CC", i, b)
		}
	}
}

func TestUnmapRangeRemovesPages(t *testing.T) {
	w := setup(t)
	text, err := w.exe.Section(delf.SecText)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ed.UnmapRange(w.p.PID(), text.Addr, text.Addr+kernel.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ed.ReadMem(w.p.PID(), text.Addr, 1); err == nil {
		t.Fatal("unmapped page still readable in image")
	}
	// Restoring and running must SIGSEGV at the missing code.
	if err := w.m.Kill(w.p.PID()); err != nil {
		t.Fatal(err)
	}
	procs, _, err := criu.Restore(w.m, w.set)
	if err != nil {
		t.Fatal(err)
	}
	w.m.Run(10000)
	if procs[0].KilledBy() != kernel.SIGSEGV {
		t.Fatalf("killed by %v, want SIGSEGV", procs[0].KilledBy())
	}
	// Misaligned ranges rejected.
	if err := w.ed.UnmapRange(w.p.PID(), 1, kernel.PageSize); !errors.Is(err, ErrAlignment) {
		t.Errorf("unaligned unmap err = %v", err)
	}
}

func TestWriteMemRequiresDumpedPage(t *testing.T) {
	// Dump WITHOUT ExecPages: code pages are absent; patching must
	// fail with a telling error instead of silently doing nothing.
	m := kernel.NewMachine()
	exe := build(t, "featured", featureSrc)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(200)
	set, err := criu.Dump(m, p.PID(), criu.DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEditor(set, m)
	featA, _ := exe.Symbol("feature_a")
	err = ed.BlockEntry(p.PID(), featA.Value)
	if !errors.Is(err, criu.ErrPageAbsent) {
		t.Fatalf("BlockEntry on vanilla dump err = %v, want ErrPageAbsent", err)
	}
	// Data pages (anonymous) are present and writable.
	state, _ := exe.Symbol("state")
	if err := ed.WriteMem(p.PID(), state.Value, []byte{1}); err != nil {
		t.Fatalf("data write failed: %v", err)
	}
	// Writes outside any VMA are rejected.
	if err := ed.WriteMem(p.PID(), 0x1000, []byte{1}); !errors.Is(err, ErrNotMapped) {
		t.Errorf("unmapped write err = %v", err)
	}
}

const sighandlerLibSrc = `
.text
.global trap_handler
trap_handler:
	; count trap hits in library data, then redirect the saved RIP
	; to the configured error path (the paper's 403-style policy)
	lea r9, hits
	load r10, [r9]
	add r10, 1
	store [r9], r10
	lea r9, redirect_to
	load r5, [r9]
	store [r3], r5
	ret
.global trap_restorer
trap_restorer:
	mov r1, sp
	mov r0, 12
	syscall
.data
.global hits
hits: .quad 0
.global redirect_to
redirect_to: .quad 0
`

func TestInsertLibraryAndRedirect(t *testing.T) {
	w := setup(t)
	lib := buildLib(t, "sighandler.so", sighandlerLibSrc)
	pid := w.p.PID()
	featA, _ := w.exe.Symbol("feature_a")
	if err := w.ed.BlockEntry(pid, featA.Value); err != nil {
		t.Fatal(err)
	}
	exports, err := w.ed.InsertLibrary(pid, lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ed.SetSigaction(pid, int(kernel.SIGTRAP),
		exports["trap_handler"], exports["trap_restorer"]); err != nil {
		t.Fatal(err)
	}
	// Configure the redirect target: the guest's shared error path.
	errpath, err := w.exe.Symbol("errpath")
	if err != nil {
		t.Fatal(err)
	}
	target := make([]byte, 8)
	for i := 0; i < 8; i++ {
		target[i] = byte(errpath.Value >> (8 * i))
	}
	if err := w.ed.WriteMem(pid, exports["redirect_to"], target); err != nil {
		t.Fatal(err)
	}
	rp := w.restoreAndTrigger(t, 1)
	// The trap fired, the handler redirected to the error path, and
	// the process survived with the error result instead of dying.
	if rp.KilledBy() != 0 || !rp.Exited() {
		t.Fatalf("process died: %v", rp.KilledBy())
	}
	if got := result(t, w, rp); got != 255 {
		t.Fatalf("result = %d, want 255 (error path)", got)
	}
	hits, err := rp.Mem().ReadU64(exports["hits"])
	if err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("handler hits = %d, want 1", hits)
	}
	// The module list records the injection.
	mods, err := w.ed.Modules(pid)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mod := range mods {
		if mod.Name == "sighandler.so" {
			found = true
		}
	}
	if !found {
		t.Error("injected library missing from module list")
	}
}

func TestInsertLibraryResolvesImportsAgainstImage(t *testing.T) {
	// A library importing a symbol from the target's libc-like
	// library must get its GOT resolved against the image.
	helper := buildLib(t, "libhelp.so", `
.text
.global help_fn
help_fn:
	mov r0, 7777
	ret
`)
	m := kernel.NewMachine()
	exe := build(t, "prog", `
.text
.global _start
_start:
	call help_fn@plt
spin:
	jmp spin
`, helper)
	p, err := m.Load(exe, helper)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	set, err := criu.Dump(m, p.PID(), criu.DumpOpts{ExecPages: true})
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEditor(set, m)

	injected := buildLib(t, "inject.so", `
.text
.global entry
entry:
	lea r9, slot
	load r9, [r9]
	jmp r9              ; tail-call help_fn through our GOT
.data
.global slot
slot: .quad 0
`)
	// Manually add a GOT-style import on `slot`.
	injected.Relocs = append(injected.Relocs, delf.Reloc{
		Off: mustSym(t, injected, "slot"), Kind: delf.RelGOT64, Symbol: "help_fn",
	})
	exports, err := ed.InsertLibrary(p.PID(), injected, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The slot must now hold help_fn's runtime address.
	slotVal, err := ed.ReadMem(p.PID(), exports["slot"], 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ed.ResolveSymbol(p.PID(), "help_fn")
	if err != nil {
		t.Fatal(err)
	}
	if got := leU64(slotVal); got != want {
		t.Fatalf("GOT slot = %#x, want %#x", got, want)
	}
	if want < kernel.LibBase {
		t.Errorf("help_fn resolved below lib base: %#x", want)
	}
}

func mustSym(t *testing.T, f *delf.File, name string) uint64 {
	t.Helper()
	sym, err := f.Symbol(name)
	if err != nil {
		t.Fatal(err)
	}
	return sym.Value
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestJSONRoundTrip(t *testing.T) {
	w := setup(t)
	pid := w.p.PID()
	coreJSON, err := w.ed.CoreJSON(pid)
	if err != nil {
		t.Fatal(err)
	}
	var c criu.CoreImage
	if err := json.Unmarshal(coreJSON, &c); err != nil {
		t.Fatal(err)
	}
	c.Regs[5] = 0x1234
	edited, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ed.SetCoreJSON(pid, edited); err != nil {
		t.Fatal(err)
	}
	pi, _ := w.set.Proc(pid)
	if pi.Core.Regs[5] != 0x1234 {
		t.Error("core JSON edit not applied")
	}
	mmJSON, err := w.ed.MMJSON(pid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mmJSON), "[stack]") {
		t.Error("mm JSON missing stack VMA")
	}
	if err := w.ed.SetMMJSON(pid, mmJSON); err != nil {
		t.Fatal(err)
	}
	if err := w.ed.SetCoreJSON(pid, []byte("{bad")); err == nil {
		t.Error("bad core JSON accepted")
	}
	if err := w.ed.SetMMJSON(pid, []byte("nope")); err == nil {
		t.Error("bad mm JSON accepted")
	}
}

func TestEditorErrors(t *testing.T) {
	w := setup(t)
	if _, err := w.ed.ReadMem(999, 0x400000, 1); err == nil {
		t.Error("ReadMem on missing pid succeeded")
	}
	if _, err := w.ed.FindModule(w.p.PID(), "nosuch.so"); !errors.Is(err, ErrNoModule) {
		t.Errorf("FindModule err = %v", err)
	}
	if _, err := w.ed.ResolveSymbol(w.p.PID(), "no_symbol_here"); err == nil {
		t.Error("ResolveSymbol on missing symbol succeeded")
	}
	// Overlapping AddVMA rejected.
	err := w.ed.AddVMA(w.p.PID(), criu.VMAEntry{
		Start: 0x400000, End: 0x401000, Perm: 1, Name: "overlap", Anon: true,
	}, nil)
	if err == nil {
		t.Error("overlapping AddVMA accepted")
	}
}

func TestSigactionReadback(t *testing.T) {
	w := setup(t)
	pid := w.p.PID()
	if _, _, ok := w.ed.Sigaction(pid, int(kernel.SIGTRAP)); ok {
		t.Error("unexpected pre-existing SIGTRAP handler")
	}
	if err := w.ed.SetSigaction(pid, int(kernel.SIGTRAP), 0x1111, 0x2222); err != nil {
		t.Fatal(err)
	}
	h, r, ok := w.ed.Sigaction(pid, int(kernel.SIGTRAP))
	if !ok || h != 0x1111 || r != 0x2222 {
		t.Fatalf("Sigaction = %#x/%#x/%v", h, r, ok)
	}
	// Update in place.
	if err := w.ed.SetSigaction(pid, int(kernel.SIGTRAP), 0x3333, 0x4444); err != nil {
		t.Fatal(err)
	}
	h, _, _ = w.ed.Sigaction(pid, int(kernel.SIGTRAP))
	if h != 0x3333 {
		t.Error("sigaction not updated in place")
	}
}
