// Package crit implements the image-rewriting layer of DynaCut: the
// analogue of the paper's extended CRIT (CRiu Image Tool). It edits
// frozen checkpoint images — never a live process — providing
// byte-level memory updates (INT3 placement, block wiping, restore),
// VMA growth/unmap, position-independent shared-library injection
// with GOT/data relocation against the in-image libc, and signal
// handler (sigaction) updates in the core image. It also decodes
// images to JSON and back, like `crit decode/encode`.
package crit

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/dynacut/dynacut/internal/criu"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/delf/link"
	"github.com/dynacut/dynacut/internal/faultinject"
	"github.com/dynacut/dynacut/internal/kernel"
)

// FileStore provides the "on-disk" binaries referenced by the images;
// *kernel.Machine implements it.
type FileStore interface {
	ReadFile(name string) ([]byte, error)
}

// Editor errors.
var (
	ErrNotMapped = errors.New("crit: address not mapped in image")
	ErrNoModule  = errors.New("crit: module not found in image")
	ErrAlignment = errors.New("crit: range not page aligned")
)

// Editor rewrites one ImageSet in place.
type Editor struct {
	set   *criu.ImageSet
	store FileStore
}

// NewEditor wraps an image set for rewriting. store may be nil if no
// library injection or symbol resolution is needed.
func NewEditor(set *criu.ImageSet, store FileStore) *Editor {
	return &Editor{set: set, store: store}
}

// Set returns the underlying image set.
func (e *Editor) Set() *criu.ImageSet { return e.set }

// PIDs returns the dumped process IDs in restore order.
func (e *Editor) PIDs() []int { return append([]int(nil), e.set.PIDs...) }

func (e *Editor) proc(pid int) (*criu.ProcImage, error) {
	return e.set.Proc(pid)
}

// faulter matches kernel.Machine's fault-injection hook; the editor
// consults it through its FileStore so image edits are chaos-testable
// without crit depending on the kernel's hook registry.
type faulter interface {
	Fault(site string, detail int) error
}

func (e *Editor) fault(site string, pid int) error {
	if f, ok := e.store.(faulter); ok {
		return f.Fault(site, pid)
	}
	return nil
}

// Fault consults the editor's fault hook (the machine backing its
// FileStore) at a named site, for callers layering their own
// chaos-testable steps — core's handler injection — on top of the
// editor's primitives. Without a hook it always succeeds.
func (e *Editor) Fault(site string, detail int) error {
	return e.fault(site, detail)
}

// vmaAt finds the VMA entry containing addr.
func vmaAt(pi *criu.ProcImage, addr uint64) (criu.VMAEntry, bool) {
	for _, v := range pi.MM.VMAs {
		if addr >= v.Start && addr < v.End {
			return v, true
		}
	}
	return criu.VMAEntry{}, false
}

// ReadMem reads n bytes at addr from the dumped pages.
func (e *Editor) ReadMem(pid int, addr uint64, n int) ([]byte, error) {
	pi, err := e.proc(pid)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for done := 0; done < n; {
		a := addr + uint64(done)
		page, err := pi.Page(a / kernel.PageSize)
		if err != nil {
			return nil, fmt.Errorf("read %#x: %w", a, err)
		}
		done += copy(out[done:], page[a%kernel.PageSize:])
	}
	return out, nil
}

// WriteMem patches bytes at addr in the dumped pages. Writing to a
// page absent from the image fails with criu.ErrPageAbsent — dump
// with DumpOpts.ExecPages to make code pages patchable (the paper's
// CRIU modification).
func (e *Editor) WriteMem(pid int, addr uint64, b []byte) error {
	if err := e.fault(faultinject.SiteEditWrite, pid); err != nil {
		return err
	}
	pi, err := e.proc(pid)
	if err != nil {
		return err
	}
	if _, ok := vmaAt(pi, addr); !ok {
		return fmt.Errorf("%w: %#x", ErrNotMapped, addr)
	}
	for done := 0; done < len(b); {
		a := addr + uint64(done)
		pn := a / kernel.PageSize
		page, err := pi.Page(pn)
		if err != nil {
			return fmt.Errorf("write %#x: %w", a, err)
		}
		patched := append([]byte(nil), page...)
		done += copy(patched[a%kernel.PageSize:], b[done:])
		if err := pi.SetPage(pn, patched); err != nil {
			return err
		}
	}
	return nil
}

// BlockEntry writes a single INT3 byte at addr: the cheapest feature
// blocking policy — one byte on the first basic block of the feature.
func (e *Editor) BlockEntry(pid int, addr uint64) error {
	return e.WriteMem(pid, addr, []byte{0xCC})
}

// WipeRange fills [addr, addr+size) with INT3, removing every
// instruction of a block so mid-block jumps (ROP) trap too — the
// aggressive policy of §3.2.2.
func (e *Editor) WipeRange(pid int, addr, size uint64) error {
	fill := make([]byte, size)
	for i := range fill {
		fill[i] = 0xCC
	}
	return e.WriteMem(pid, addr, fill)
}

// UnmapRange removes the page-aligned range from the VMA table and
// drops its pages: the strongest policy — the memory simply is not
// there any more.
func (e *Editor) UnmapRange(pid int, start, end uint64) error {
	if err := e.fault(faultinject.SiteEditUnmap, pid); err != nil {
		return err
	}
	if start%kernel.PageSize != 0 || end%kernel.PageSize != 0 || end <= start {
		return fmt.Errorf("%w: %#x-%#x", ErrAlignment, start, end)
	}
	pi, err := e.proc(pid)
	if err != nil {
		return err
	}
	var out []criu.VMAEntry
	touched := false
	for _, v := range pi.MM.VMAs {
		if end <= v.Start || v.End <= start {
			out = append(out, v)
			continue
		}
		touched = true
		if v.Start < start {
			left := v
			left.End = start
			out = append(out, left)
		}
		if end < v.End {
			right := v
			right.Start = end
			out = append(out, right)
		}
	}
	if !touched {
		return fmt.Errorf("%w: %#x-%#x", ErrNotMapped, start, end)
	}
	pi.MM.VMAs = out
	pi.DropPages(start/kernel.PageSize, end/kernel.PageSize)
	return nil
}

// GrowVMA extends the VMA starting at start to newEnd (page aligned),
// the "enlarge the VMAs" primitive of the paper's CRIT extension —
// e.g. growing a stack or data region before injecting content.
func (e *Editor) GrowVMA(pid int, start, newEnd uint64) error {
	if newEnd%kernel.PageSize != 0 {
		return fmt.Errorf("%w: new end %#x", ErrAlignment, newEnd)
	}
	pi, err := e.proc(pid)
	if err != nil {
		return err
	}
	idx := -1
	for i, v := range pi.MM.VMAs {
		if v.Start == start {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: no VMA starting at %#x", ErrNotMapped, start)
	}
	if newEnd <= pi.MM.VMAs[idx].End {
		return fmt.Errorf("crit: new end %#x does not grow VMA %s", newEnd, pi.MM.VMAs[idx].Name)
	}
	for i, v := range pi.MM.VMAs {
		if i == idx {
			continue
		}
		if v.Start < newEnd && pi.MM.VMAs[idx].End <= v.Start {
			return fmt.Errorf("crit: growth to %#x collides with %s", newEnd, v.Name)
		}
	}
	pi.MM.VMAs[idx].End = newEnd
	return nil
}

// AddVMA installs a new anonymous VMA with the given initial
// contents (library injection, extra stacks, ...).
func (e *Editor) AddVMA(pid int, v criu.VMAEntry, data []byte) error {
	if v.Start%kernel.PageSize != 0 || v.End%kernel.PageSize != 0 || v.End <= v.Start {
		return fmt.Errorf("%w: %#x-%#x", ErrAlignment, v.Start, v.End)
	}
	pi, err := e.proc(pid)
	if err != nil {
		return err
	}
	for _, old := range pi.MM.VMAs {
		if v.Start < old.End && old.Start < v.End {
			return fmt.Errorf("crit: VMA %#x-%#x overlaps %s", v.Start, v.End, old.Name)
		}
	}
	if uint64(len(data)) > v.End-v.Start {
		return fmt.Errorf("crit: data larger than VMA")
	}
	pi.MM.VMAs = append(pi.MM.VMAs, v)
	// Install page contents.
	buf := make([]byte, v.End-v.Start)
	copy(buf, data)
	for off := uint64(0); off < uint64(len(buf)); off += kernel.PageSize {
		pn := (v.Start + off) / kernel.PageSize
		if err := pi.SetPage(pn, buf[off:off+kernel.PageSize]); err != nil {
			return err
		}
	}
	return nil
}

// SetSigaction updates (or adds) a signal disposition in the core
// image — how DynaCut arms its injected SIGTRAP handler.
func (e *Editor) SetSigaction(pid, signo int, handler, restorer uint64) error {
	pi, err := e.proc(pid)
	if err != nil {
		return err
	}
	for i := range pi.Core.Sigs {
		if pi.Core.Sigs[i].Signo == signo {
			pi.Core.Sigs[i].Handler = handler
			pi.Core.Sigs[i].Restorer = restorer
			return nil
		}
	}
	pi.Core.Sigs = append(pi.Core.Sigs, criu.SigEntry{
		Signo: signo, Handler: handler, Restorer: restorer,
	})
	return nil
}

// SetSyscallFilter installs a seccomp-style allow list in the core
// image (§5: dynamically enabling/disabling seccomp filtering via
// process rewriting). nil removes the filter.
func (e *Editor) SetSyscallFilter(pid int, allowed []uint64) error {
	pi, err := e.proc(pid)
	if err != nil {
		return err
	}
	if allowed == nil {
		pi.Core.HasFilter = false
		pi.Core.SysFilter = nil
		return nil
	}
	pi.Core.HasFilter = true
	pi.Core.SysFilter = append([]uint64(nil), allowed...)
	return nil
}

// SyscallFilter reads the allow list from the core image (nil when no
// filter is installed).
func (e *Editor) SyscallFilter(pid int) ([]uint64, error) {
	pi, err := e.proc(pid)
	if err != nil {
		return nil, err
	}
	if !pi.Core.HasFilter {
		return nil, nil
	}
	return append([]uint64(nil), pi.Core.SysFilter...), nil
}

// Sigaction reads a signal disposition from the core image.
func (e *Editor) Sigaction(pid, signo int) (handler, restorer uint64, ok bool) {
	pi, err := e.proc(pid)
	if err != nil {
		return 0, 0, false
	}
	for _, sg := range pi.Core.Sigs {
		if sg.Signo == signo {
			return sg.Handler, sg.Restorer, true
		}
	}
	return 0, 0, false
}

// Modules lists the mapped binaries recorded in the mm image.
func (e *Editor) Modules(pid int) ([]criu.ModuleEntry, error) {
	pi, err := e.proc(pid)
	if err != nil {
		return nil, err
	}
	return append([]criu.ModuleEntry(nil), pi.MM.Modules...), nil
}

// VMAs lists the VMA entries of the mm image.
func (e *Editor) VMAs(pid int) ([]criu.VMAEntry, error) {
	pi, err := e.proc(pid)
	if err != nil {
		return nil, err
	}
	return append([]criu.VMAEntry(nil), pi.MM.VMAs...), nil
}

// FindModule returns the module entry with the given name.
func (e *Editor) FindModule(pid int, name string) (criu.ModuleEntry, error) {
	mods, err := e.Modules(pid)
	if err != nil {
		return criu.ModuleEntry{}, err
	}
	for _, mod := range mods {
		if mod.Name == name {
			return mod, nil
		}
	}
	return criu.ModuleEntry{}, fmt.Errorf("%w: %q", ErrNoModule, name)
}

// ResolveSymbol finds the runtime address of a symbol exported by any
// module in the image, consulting the file store for symbol tables
// (how the paper resolves PLT relocations of the injected library
// against the mapped libc).
func (e *Editor) ResolveSymbol(pid int, name string) (uint64, error) {
	if e.store == nil {
		return 0, fmt.Errorf("crit: no file store for symbol resolution")
	}
	mods, err := e.Modules(pid)
	if err != nil {
		return 0, err
	}
	for _, mod := range mods {
		data, err := e.store.ReadFile(mod.Name)
		if err != nil {
			continue
		}
		file, err := delf.Unmarshal(data)
		if err != nil {
			continue
		}
		sym, err := file.Symbol(name)
		if err != nil || !sym.Global {
			continue
		}
		lo, _ := file.ImageSpan()
		return mod.Lo - lo + sym.Value, nil
	}
	return 0, fmt.Errorf("crit: symbol %q not found in any module", name)
}

// InsertLibrary maps a position-independent shared library at base
// inside the image: section VMAs and pages are added, the library's
// dynamic relocations are applied (its own RelAbs64 plus RelGOT64
// imports resolved against the image's modules), and a module entry
// is recorded. It returns the absolute addresses of the library's
// global symbols. base 0 picks an unused, page-aligned address.
func (e *Editor) InsertLibrary(pid int, lib *delf.File, base uint64) (map[string]uint64, error) {
	if lib.Type != delf.TypeDyn {
		return nil, fmt.Errorf("crit: %s is not a shared library", lib.Name)
	}
	pi, err := e.proc(pid)
	if err != nil {
		return nil, err
	}
	lo, hi := lib.ImageSpan()
	span := (hi - lo + kernel.PageSize - 1) / kernel.PageSize * kernel.PageSize
	if base == 0 {
		base = e.findFreeRange(pi, span)
	}
	if base%kernel.PageSize != 0 {
		return nil, fmt.Errorf("%w: base %#x", ErrAlignment, base)
	}

	// Compute relocation patches before mutating the image.
	patches, err := link.DynamicPatches(lib, base, func(name string) (uint64, bool) {
		addr, rerr := e.ResolveSymbol(pid, name)
		return addr, rerr == nil
	})
	if err != nil {
		return nil, err
	}

	// Map sections.
	for _, sec := range lib.Sections {
		start := base + sec.Addr
		end := start + (sec.Size+kernel.PageSize-1)/kernel.PageSize*kernel.PageSize
		v := criu.VMAEntry{
			Start: start, End: end, Perm: uint8(sec.Perm),
			Name: lib.Name + ":" + sec.Name, Anon: true,
		}
		var data []byte
		if len(sec.Data) > 0 {
			data = sec.Data
		}
		if err := e.AddVMA(pid, v, data); err != nil {
			return nil, fmt.Errorf("inject %s: %w", v.Name, err)
		}
	}
	for _, pt := range patches {
		if err := e.WriteMem(pid, pt.Addr, pt.Bytes); err != nil {
			return nil, fmt.Errorf("inject reloc: %w", err)
		}
	}
	pi.MM.Modules = append(pi.MM.Modules, criu.ModuleEntry{
		Name: lib.Name, Lo: base + lo, Hi: base + hi,
	})

	exports := map[string]uint64{}
	for _, sym := range lib.Symbols {
		if sym.Global {
			exports[sym.Name] = base + sym.Value
		}
	}
	return exports, nil
}

// RemoveLibrary unwinds an InsertLibrary: the module entry named name
// is dropped and every section VMA the injection added (named
// "<name>:<section>") is removed along with its pages. It is the
// partial-failure cleanup path for handler injection — deliberately
// free of fault-hook sites, so an unwind cannot itself be chaos-killed
// into leaking the mapping it exists to reclaim.
func (e *Editor) RemoveLibrary(pid int, name string) error {
	pi, err := e.proc(pid)
	if err != nil {
		return err
	}
	prefix := name + ":"
	kept := pi.MM.VMAs[:0:0]
	removed := false
	for _, v := range pi.MM.VMAs {
		if len(v.Name) > len(prefix) && v.Name[:len(prefix)] == prefix {
			pi.DropPages(v.Start/kernel.PageSize, v.End/kernel.PageSize)
			removed = true
			continue
		}
		kept = append(kept, v)
	}
	mods := pi.MM.Modules[:0:0]
	for _, mod := range pi.MM.Modules {
		if mod.Name == name {
			removed = true
			continue
		}
		mods = append(mods, mod)
	}
	if !removed {
		return fmt.Errorf("%w: %q", ErrNoModule, name)
	}
	pi.MM.VMAs = kept
	pi.MM.Modules = mods
	return nil
}

// findFreeRange picks a page-aligned hole of the given size, below
// the stack and above every mapping (default library injection site;
// the paper randomizes it, we keep it deterministic for tests).
func (e *Editor) findFreeRange(pi *criu.ProcImage, span uint64) uint64 {
	const injectBase = 0x7000_0000_0000
	base := uint64(injectBase)
	for {
		conflict := false
		for _, v := range pi.MM.VMAs {
			if base < v.End && v.Start < base+span {
				conflict = true
				if v.End > base {
					base = (v.End + kernel.PageSize - 1) / kernel.PageSize * kernel.PageSize
				}
				break
			}
		}
		if !conflict {
			return base
		}
	}
}

// JSON views (the `crit decode` / `crit encode` workflow) -------------

// CoreJSON renders the core image as JSON.
func (e *Editor) CoreJSON(pid int) ([]byte, error) {
	pi, err := e.proc(pid)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(&pi.Core, "", "  ")
}

// SetCoreJSON replaces the core image from JSON.
func (e *Editor) SetCoreJSON(pid int, data []byte) error {
	pi, err := e.proc(pid)
	if err != nil {
		return err
	}
	var c criu.CoreImage
	if err := json.Unmarshal(data, &c); err != nil {
		return fmt.Errorf("crit: core json: %w", err)
	}
	pi.Core = c
	return nil
}

// MMJSON renders the mm image as JSON.
func (e *Editor) MMJSON(pid int) ([]byte, error) {
	pi, err := e.proc(pid)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(&pi.MM, "", "  ")
}

// SetMMJSON replaces the mm image from JSON.
func (e *Editor) SetMMJSON(pid int, data []byte) error {
	pi, err := e.proc(pid)
	if err != nil {
		return err
	}
	var mm criu.MMImage
	if err := json.Unmarshal(data, &mm); err != nil {
		return fmt.Errorf("crit: mm json: %w", err)
	}
	pi.MM = mm
	return nil
}
