// Package baseline implements trace-based *static* binary debloaters
// standing in for RAZOR and CHISEL, the comparison systems of the
// paper's Figure 10. Both take a binary plus execution traces and
// produce a one-time debloated binary: removed blocks are filled with
// INT3 in the binary image itself, permanently — the defining
// limitation DynaCut lifts. Their live-block fraction is therefore a
// constant over the program's lifetime.
//
//   - Chisel-like: aggressively keeps exactly the traced blocks
//     (the paper reports CHISEL removing ~66% of blocks).
//   - Razor-like: keeps traced blocks plus heuristically related
//     code — both outgoing edges of every executed conditional and
//     the blocks they reach transitively up to one level — RAZOR's
//     "zCode" expansion keeps it from breaking on slightly different
//     inputs (the paper reports ~53.1% removal).
package baseline

import (
	"fmt"

	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/disasm"
)

// Result describes one static debloating run.
type Result struct {
	Tool          string
	TotalBlocks   int
	KeptBlocks    int
	RemovedBlocks int
	// Debloated is the rewritten binary (removed blocks INT3-filled).
	Debloated *delf.File
}

// LiveFraction is the constant fraction of blocks left reachable.
func (r *Result) LiveFraction() float64 {
	if r.TotalBlocks == 0 {
		return 0
	}
	return float64(r.KeptBlocks) / float64(r.TotalBlocks)
}

// Chisel debloats exe keeping only the blocks covered by traces.
func Chisel(exe *delf.File, traces *coverage.Graph) (*Result, error) {
	return debloat("chisel", exe, traces, false)
}

// Razor debloats exe keeping covered blocks plus heuristically
// related blocks (non-taken branch edges and their immediate
// successors).
func Razor(exe *delf.File, traces *coverage.Graph) (*Result, error) {
	return debloat("razor", exe, traces, true)
}

func debloat(tool string, exe *delf.File, traces *coverage.Graph, expand bool) (*Result, error) {
	if exe.Type != delf.TypeExec {
		return nil, fmt.Errorf("baseline: %s is not an executable", exe.Name)
	}
	cfg := disasm.Analyze(exe)
	base, _ := traces.ModuleBase(exe.Name)

	kept := map[uint64]bool{}
	for _, b := range cfg.Sorted() {
		if traces.Contains(exe.Name, b.Addr-base) {
			kept[b.Addr] = true
		}
	}
	if expand {
		// RAZOR-style related-code heuristic: for every kept block,
		// keep all static successors, and their successors (two
		// levels of the zCode expansion).
		frontier := make([]uint64, 0, len(kept))
		for a := range kept {
			frontier = append(frontier, a)
		}
		for depth := 0; depth < 2; depth++ {
			var next []uint64
			for _, a := range frontier {
				blk, ok := cfg.BlockAt(a)
				if !ok {
					continue
				}
				for _, s := range blk.Succs {
					if !kept[s] {
						if _, ok := cfg.BlockAt(s); ok {
							kept[s] = true
							next = append(next, s)
						}
					}
				}
			}
			frontier = next
		}
	}

	out := cloneFile(exe)
	removed := 0
	for _, b := range cfg.Sorted() {
		if kept[b.Addr] {
			continue
		}
		if err := fillINT3(out, b.Addr, b.Size); err != nil {
			return nil, err
		}
		removed++
	}
	return &Result{
		Tool:          tool,
		TotalBlocks:   cfg.Count(),
		KeptBlocks:    cfg.Count() - removed,
		RemovedBlocks: removed,
		Debloated:     out,
	}, nil
}

func cloneFile(f *delf.File) *delf.File {
	out := &delf.File{
		Type:    f.Type,
		Name:    f.Name,
		Entry:   f.Entry,
		Symbols: append([]delf.Symbol(nil), f.Symbols...),
		Relocs:  append([]delf.Reloc(nil), f.Relocs...),
		Needed:  append([]string(nil), f.Needed...),
	}
	for _, s := range f.Sections {
		ns := &delf.Section{Name: s.Name, Addr: s.Addr, Size: s.Size, Perm: s.Perm}
		ns.Data = append([]byte(nil), s.Data...)
		out.Sections = append(out.Sections, ns)
	}
	return out
}

func fillINT3(f *delf.File, addr, size uint64) error {
	sec, err := f.SectionAt(addr)
	if err != nil {
		return err
	}
	off := addr - sec.Addr
	if off+size > uint64(len(sec.Data)) {
		return fmt.Errorf("baseline: block %#x+%d exceeds section %s", addr, size, sec.Name)
	}
	for i := uint64(0); i < size; i++ {
		sec.Data[off+i] = 0xCC
	}
	return nil
}
