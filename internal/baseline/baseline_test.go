package baseline

import (
	"strings"
	"testing"

	"github.com/dynacut/dynacut/internal/apps/webserv"
	"github.com/dynacut/dynacut/internal/coverage"
	"github.com/dynacut/dynacut/internal/kernel"
	"github.com/dynacut/dynacut/internal/trace"
)

// traceServer boots the server, drives the wanted workload, and
// returns the app plus its full coverage graph.
func traceServer(t *testing.T, reqs []string) (*webserv.App, *coverage.Graph) {
	t.Helper()
	app, err := webserv.Build(webserv.Config{Name: "lighttpd", Port: 8080})
	if err != nil {
		t.Fatal(err)
	}
	m := kernel.NewMachine()
	col := trace.NewCollector(app.Config.Name)
	m.SetTracer(col)
	p, err := m.Load(app.Exe, app.Libc)
	if err != nil {
		t.Fatal(err)
	}
	nudged := false
	m.SetNudgeFunc(func(pid int, arg uint64) { nudged = true })
	if !m.RunUntil(func() bool { return nudged }, 10_000_000) {
		t.Fatal("boot failed")
	}
	for _, r := range reqs {
		conn, err := m.Dial(app.Config.Port)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte(r)); err != nil {
			t.Fatal(err)
		}
		m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 || conn.Closed() }, 2_000_000)
		m.Run(20000)
	}
	return app, coverage.FromLog(col.Snapshot(p.Modules(), "full"))
}

func TestChiselMoreAggressiveThanRazor(t *testing.T) {
	app, cov := traceServer(t, []string{"GET /\n", "HEAD /\n"})
	chisel, err := Chisel(app.Exe, cov)
	if err != nil {
		t.Fatal(err)
	}
	razor, err := Razor(app.Exe, cov)
	if err != nil {
		t.Fatal(err)
	}
	if chisel.RemovedBlocks == 0 || razor.RemovedBlocks == 0 {
		t.Fatalf("nothing removed: chisel=%d razor=%d", chisel.RemovedBlocks, razor.RemovedBlocks)
	}
	// The paper's ordering: CHISEL removes more than RAZOR.
	if chisel.RemovedBlocks <= razor.RemovedBlocks {
		t.Errorf("chisel removed %d <= razor %d", chisel.RemovedBlocks, razor.RemovedBlocks)
	}
	if chisel.LiveFraction() >= razor.LiveFraction() {
		t.Errorf("live fractions: chisel %.2f >= razor %.2f",
			chisel.LiveFraction(), razor.LiveFraction())
	}
	if chisel.TotalBlocks != razor.TotalBlocks {
		t.Errorf("total mismatch: %d vs %d", chisel.TotalBlocks, razor.TotalBlocks)
	}
	if chisel.KeptBlocks+chisel.RemovedBlocks != chisel.TotalBlocks {
		t.Error("chisel kept+removed != total")
	}
}

func TestDebloatedBinaryServesTracedWorkload(t *testing.T) {
	reqs := []string{"GET /\n", "HEAD /\n", "OPTIONS /\n"}
	app, cov := traceServer(t, reqs)
	razor, err := Razor(app.Exe, cov)
	if err != nil {
		t.Fatal(err)
	}
	// Run the debloated binary: traced requests still work.
	m := kernel.NewMachine()
	p, err := m.Load(razor.Debloated, app.Libc)
	if err != nil {
		t.Fatal(err)
	}
	nudged := false
	m.SetNudgeFunc(func(pid int, arg uint64) { nudged = true })
	if !m.RunUntil(func() bool { return nudged }, 10_000_000) {
		t.Fatalf("debloated server died during boot: killed=%v", p.KilledBy())
	}
	conn, err := m.Dial(app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET /\n")); err != nil {
		t.Fatal(err)
	}
	m.RunUntil(func() bool { return len(conn.ReadAllPeek()) > 0 }, 2_000_000)
	if got := string(conn.ReadAll()); !strings.Contains(got, "200") {
		t.Fatalf("GET on debloated binary -> %q", got)
	}
}

func TestDebloatedBinaryKillsUntracedFeature(t *testing.T) {
	app, cov := traceServer(t, []string{"GET /\n"})
	chisel, err := Chisel(app.Exe, cov)
	if err != nil {
		t.Fatal(err)
	}
	m := kernel.NewMachine()
	p, err := m.Load(chisel.Debloated, app.Libc)
	if err != nil {
		t.Fatal(err)
	}
	nudged := false
	m.SetNudgeFunc(func(pid int, arg uint64) { nudged = true })
	if !m.RunUntil(func() bool { return nudged }, 10_000_000) {
		t.Fatalf("boot: killed=%v", p.KilledBy())
	}
	conn, err := m.Dial(app.Config.Port)
	if err != nil {
		t.Fatal(err)
	}
	// PUT was never traced: the static debloater removed it, and
	// unlike DynaCut there is no error-path redirect — the process
	// dies (the usability problem §3.2.2 calls out).
	if _, err := conn.Write([]byte("PUT /f data\n")); err != nil {
		t.Fatal(err)
	}
	m.Run(3_000_000)
	if !p.Exited() || p.KilledBy() != kernel.SIGTRAP {
		t.Fatalf("untraced feature: exited=%v killed=%v, want SIGTRAP death",
			p.Exited(), p.KilledBy())
	}
}

func TestRejectsLibraries(t *testing.T) {
	app, cov := traceServer(t, []string{"GET /\n"})
	if _, err := Chisel(app.Libc, cov); err == nil {
		t.Error("library accepted as debloat target")
	}
}
