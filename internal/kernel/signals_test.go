package kernel

import (
	"testing"

	"github.com/dynacut/dynacut/internal/isa"
)

// TestNestedSignals: a handler that itself triggers a trap must push
// a second frame and unwind both correctly.
func TestNestedSignals(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 5
	mov r2, =handler
	mov r3, =restorer
	mov r0, 11
	syscall
	int3                 ; outer trap
	mov r0, 1
	mov r1, 0            ; exits 0 only if both traps unwound
	syscall

handler:
	mov r8, =depth
	load r9, [r8]
	add r9, 1
	store [r8], r9
	cmp r9, 1
	jne .inner_done      ; second entry: do not recurse again
	int3                 ; nested trap while handling the first
.inner_done:
	load r5, [r3]        ; saved RIP
	add r5, 1            ; skip the INT3 (1 byte)
	store [r3], r5
	ret
restorer:
	mov r1, sp
	mov r0, 12
	syscall
.data
depth: .quad 0
`, 100000)
	if !p.Exited() || p.ExitCode() != 0 {
		t.Fatalf("exit = %v/%d killed=%v", p.Exited(), p.ExitCode(), p.KilledBy())
	}
	// Both handler entries happened.
	// depth lives in .data of the test binary at a fixed symbol; read
	// it back through the address space.
}

// TestSignalHandlerStackOverflowKills: delivery with an unusable
// stack must terminate instead of looping.
func TestSignalHandlerStackOverflowKills(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 5
	mov r2, =handler
	mov r3, =handler
	mov r0, 11
	syscall
	mov r15, 64          ; wreck the stack pointer (unmapped)
	int3
handler:
	ret
`, 100000)
	if p.KilledBy() != SIGSEGV {
		t.Fatalf("killed by %v, want SIGSEGV (double fault)", p.KilledBy())
	}
}

// TestHLTRaisesSIGSEGV: wiped memory (0xF4 fill is not used by
// DynaCut, but HLT decodes) must be fatal by default.
func TestHLTRaisesSIGSEGV(t *testing.T) {
	p := loadAndRun(t, ".text\n.global _start\n_start:\n\thlt\n", 100)
	if p.KilledBy() != SIGSEGV {
		t.Fatalf("killed by %v", p.KilledBy())
	}
}

// TestSigactionRemoval: handler 0 restores the default action.
func TestSigactionRemoval(t *testing.T) {
	p := loadAndRun(t, `
.text
.global _start
_start:
	mov r1, 5
	mov r2, =handler
	mov r3, =restorer
	mov r0, 11
	syscall
	mov r1, 5            ; now unregister
	mov r2, 0
	mov r3, 0
	mov r0, 11
	syscall
	int3                 ; default action again
	mov r0, 1
	mov r1, 0
	syscall
handler:
	ret
restorer:
	mov r1, sp
	mov r0, 12
	syscall
`, 10000)
	if p.KilledBy() != SIGTRAP {
		t.Fatalf("killed by %v, want SIGTRAP", p.KilledBy())
	}
}

// TestSignalPreservedAcrossFork: children inherit sigactions.
func TestSignalPreservedAcrossFork(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "sigfork", `
.text
.global _start
_start:
	mov r1, 5
	mov r2, =handler
	mov r3, =restorer
	mov r0, 11
	syscall
	mov r0, 9            ; fork
	syscall
	cmp r0, 0
	je child
wait_loop:
	mov r0, 16
	syscall
	cmp r0, -1
	je wait_loop
	mov r2, r0
	and r2, 0xff
	mov r0, 1
	mov r1, r2           ; exit with child's code
	syscall
child:
	int3                 ; must hit the inherited handler
	mov r0, 1
	mov r1, 7            ; handler skipped the INT3
	syscall
handler:
	load r5, [r3]
	add r5, 1
	store [r3], r5
	ret
restorer:
	mov r1, sp
	mov r0, 12
	syscall
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100000)
	if !p.Exited() || p.ExitCode() != 7 {
		t.Fatalf("exit = %v/%d killed=%v", p.Exited(), p.ExitCode(), p.KilledBy())
	}
}

func TestFrameLayoutConstants(t *testing.T) {
	if FrameSize != 16+8*isa.NumRegisters {
		t.Errorf("FrameSize = %d", FrameSize)
	}
	if FrameRegsOff != 16 || FrameRIPOff != 0 || FrameFlagsOff != 8 {
		t.Error("frame offsets changed; handler library ABI breaks")
	}
}

// TestSignalStrings covers the String methods.
func TestSignalStrings(t *testing.T) {
	for sig, want := range map[Signal]string{
		SIGILL: "SIGILL", SIGTRAP: "SIGTRAP", SIGFPE: "SIGFPE",
		SIGSEGV: "SIGSEGV", SIGCHLD: "SIGCHLD", Signal(33): "SIG33",
	} {
		if sig.String() != want {
			t.Errorf("%d -> %q", sig, sig.String())
		}
	}
}
