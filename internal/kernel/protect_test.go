package kernel

import (
	"testing"

	"github.com/dynacut/dynacut/internal/delf"
)

// TestGuestWriteAfterProtectRO: revoking write permission on a live
// region makes the next guest store fault.
func TestGuestWriteAfterProtectRO(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "writer", `
.text
.global _start
_start:
	mov r8, =word
	mov r1, 1
	store [r8], r1       ; first write succeeds
	mov r9, =gate
wait:
	load r2, [r9]        ; spin until the host flips the gate
	cmp r2, 0
	je wait
	mov r1, 2
	store [r8], r1       ; second write: region is RO now
	mov r0, 1
	mov r1, 0
	syscall
.data
word: .quad 0
.bss
.align 4096
gate: .space 4096
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	word, err := exe.Symbol("word")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Mem().ReadU64(word.Value); v != 1 {
		t.Fatalf("first write missing: %d", v)
	}
	// Revoke write on the .data page.
	dataStart := word.Value &^ (PageSize - 1)
	if err := p.Mem().Protect(dataStart, dataStart+PageSize, delf.PermR); err != nil {
		t.Fatal(err)
	}
	gate, err := exe.Symbol("gate")
	if err != nil {
		t.Fatal(err)
	}
	// The gate page is separate (page-aligned bss), still writable.
	if err := p.Mem().WriteU64(gate.Value, 1); err != nil {
		t.Fatal(err)
	}
	m.Run(100000)
	if p.KilledBy() != SIGSEGV {
		t.Fatalf("killed by %v, want SIGSEGV on RO store", p.KilledBy())
	}
	if v, _ := p.Mem().ReadU64(word.Value); v != 1 {
		t.Fatalf("RO write landed: %d", v)
	}
}
