package kernel

import (
	"testing"

	"github.com/dynacut/dynacut/internal/delf"
	"github.com/dynacut/dynacut/internal/isa"
)

// TestInstructionTruncatedAtMappingEdge: an instruction whose
// encoding runs off the end of the last mapped page must fault, not
// read garbage.
func TestInstructionTruncatedAtMappingEdge(t *testing.T) {
	m := NewMachine()
	p := m.NewRawProcess("edge", 0)
	if err := p.Mem().Map(VMA{
		Start: 0x1000, End: 0x2000, Perm: delf.PermR | delf.PermX, Name: "code",
	}); err != nil {
		t.Fatal(err)
	}
	// A 10-byte MOVri starting 4 bytes before the end of the mapping.
	var code []byte
	code = isa.MustEncode(code, isa.Inst{Op: isa.OpMOVri, A: 1, Imm: 42})
	if err := p.Mem().Write(0x2000-4, code[:4]); err != nil {
		t.Fatal(err)
	}
	p.SetRIP(0x2000 - 4)
	m.Run(10)
	if p.KilledBy() != SIGSEGV {
		t.Fatalf("killed by %v, want SIGSEGV (truncated fetch)", p.KilledBy())
	}
}

// TestInstructionSpanningTwoMappedPages executes correctly when both
// pages are mapped.
func TestInstructionSpanningTwoMappedPages(t *testing.T) {
	m := NewMachine()
	p := m.NewRawProcess("span", 0)
	if err := p.Mem().Map(VMA{
		Start: 0x1000, End: 0x3000, Perm: delf.PermR | delf.PermX, Name: "code",
	}); err != nil {
		t.Fatal(err)
	}
	var code []byte
	code = isa.MustEncode(code, isa.Inst{Op: isa.OpMOVri, A: 1, Imm: 7})
	code = isa.MustEncode(code, isa.Inst{Op: isa.OpINT3}) // stop here
	start := uint64(0x2000 - 4)                           // MOVri spans the page boundary
	if err := p.Mem().Write(start, code); err != nil {
		t.Fatal(err)
	}
	p.SetRIP(start)
	m.Run(10)
	if p.KilledBy() != SIGTRAP {
		t.Fatalf("killed by %v, want SIGTRAP after the spanning mov", p.KilledBy())
	}
	if p.Reg(1) != 7 {
		t.Fatalf("r1 = %d, spanning instruction mis-executed", p.Reg(1))
	}
}

// TestFetchStopsAtNXBoundary: execution falls off RX into RW memory
// mid-stream and must fault even though the RW bytes decode.
func TestFetchStopsAtNXBoundary(t *testing.T) {
	m := NewMachine()
	p := m.NewRawProcess("nx", 0)
	if err := p.Mem().Map(VMA{Start: 0x1000, End: 0x2000, Perm: delf.PermR | delf.PermX, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Mem().Map(VMA{Start: 0x2000, End: 0x3000, Perm: delf.PermR | delf.PermW, Name: "rw", Anon: true}); err != nil {
		t.Fatal(err)
	}
	// NOP sled to the boundary; valid instructions continue in RW.
	sled := make([]byte, 0x1000)
	for i := range sled {
		sled[i] = byte(isa.OpNOP)
	}
	if err := p.Mem().Write(0x1000, sled); err != nil {
		t.Fatal(err)
	}
	if err := p.Mem().Write(0x2000, []byte{byte(isa.OpNOP), byte(isa.OpRET)}); err != nil {
		t.Fatal(err)
	}
	p.SetRIP(0x1000)
	m.Run(0x1100)
	if p.KilledBy() != SIGSEGV {
		t.Fatalf("killed by %v, want SIGSEGV at the NX boundary", p.KilledBy())
	}
	if p.RIP() != 0x2000 {
		t.Fatalf("faulted at %#x, want the boundary 0x2000", p.RIP())
	}
}
