package kernel

// The basic-block translation cache: the kernel's second execution
// engine. The interpreter (exec.go) fetches and decodes every
// instruction on every execution; the translating engine decodes each
// basic block once — on its first execution — and replays the
// pre-decoded instruction vector afterwards, skipping the dominant
// per-instruction fetch/decode cost (a permission check, a page-table
// walk per byte, and an allocation, per instruction, per execution).
//
// Correctness is structural, not re-derived: translation IS the first
// interpreted execution. The recorder runs the ordinary
// fetch→decode→exec1 path and merely remembers what it decoded, so
// every side effect of a first execution — pages populated by the
// fetch window, dirty bits, tick charging, trap ordering — is
// byte-identical to the interpreter by construction. Replay runs the
// same exec1 semantic core on the remembered decodes. The only new
// failure class the cache introduces is staleness — executing a
// decode whose underlying bytes have since changed — and that is what
// the invalidation protocol (below) and the lockstep oracle
// (lockstep.go) exist to kill.
//
// Block formation: a block begins at the dispatch address and ends at
// the first control transfer (conditional or indirect jump, call,
// return), trap (INT3, HLT), or syscall — except a direct
// unconditional JMP, which the recorder follows, chaining the
// straight-line runs on both sides into one superblock (bounded by
// maxBlockInsts, and never following a jump back into the block being
// recorded, so loops are not unrolled). A block may also end early at
// a scheduler-slice boundary or at an instruction whose execution
// faulted; both simply produce a shorter cached block.
//
// Invalidation protocol (the proof obligations are spelled out in
// DESIGN.md §15):
//
//  1. Loud writes — guest stores, live-patch INT3 stores, attestation
//     repairs, restore-path SetPage, library injection — advance the
//     page's generation counter AND immediately evict every cached
//     block whose fetch window touched the page (Memory.noteWrite).
//     Eviction clears the block's valid flag, which the replay loop
//     checks after every instruction: a store into the page of the
//     very block being replayed stops the replay before the next
//     stale instruction, and a superblock chained through a flushed
//     page is severed mid-flight.
//  2. Silent writes — Memory.FlipBits, the bit-rot fault channel —
//     advance the generation only (no eviction, no dirty bit). Every
//     dispatch validates the block's recorded generations against the
//     live counters, so the next entry to the page re-translates and
//     executes the flipped bytes exactly as the interpreter would.
//  3. Layout changes — Map/Unmap/Protect — flush the entire cache:
//     fetch side effects depend on the VMA table (permission checks,
//     where an over-fetch window stops, which pages a fetch can
//     populate), not just on page contents.
//  4. Nothing is cloned. Fork, CoW replica spawning and restore all
//     build fresh address spaces whose caches start empty.

import (
	"fmt"
	"sort"

	"github.com/dynacut/dynacut/internal/isa"
)

// ExecMode selects the machine's execution engine.
type ExecMode int

// Execution modes.
const (
	// ModeInterpret is the reference interpreter: fetch, decode and
	// execute one instruction at a time. The oracle every other mode
	// is measured against.
	ModeInterpret ExecMode = iota
	// ModeTranslate executes through the basic-block translation
	// cache: blocks are decoded once and replayed from the cache.
	ModeTranslate
	// ModeLockstep executes through the cache but re-fetches and
	// re-decodes every cached instruction at each block dispatch,
	// comparing against the cached decode. A mismatch is a stale-cache
	// bug: it is recorded (CacheDivergences), the block is evicted,
	// and execution continues on the fresh decode — so the guest still
	// behaves like the interpreter while the harness collects proof of
	// the divergence. Interpreter-speed; built for the test oracle.
	ModeLockstep
)

func (em ExecMode) String() string {
	switch em {
	case ModeInterpret:
		return "interpret"
	case ModeTranslate:
		return "translate"
	case ModeLockstep:
		return "lockstep"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(em))
	}
}

// maxBlockInsts bounds one cached block (and therefore one superblock
// chain). Two scheduler slices: long enough that straight-line hot
// loops cache whole, small enough that a block's generation check
// stays a handful of page comparisons.
const maxBlockInsts = 128

// cachedInst is one pre-decoded instruction with its address — the
// operands are fully resolved at translation time, so replay never
// touches the encoding again.
type cachedInst struct {
	addr uint64
	in   isa.Inst
}

// block is one cached (super)block.
type block struct {
	entry uint64
	insts []cachedInst
	// pages are the sorted page numbers the recorder's fetch windows
	// touched (including over-fetch spill into a neighboring page);
	// gens are the generation counters observed at first touch. A
	// dispatch-time mismatch against the live counters means the
	// bytes — or the fetch behavior — may have changed: re-translate.
	pages  []uint64
	gens   []uint64
	layout uint64 // Memory.layoutGen at recording time
	valid  bool   // cleared by eviction; checked mid-replay
}

// fresh reports whether every page the block was decoded from is
// still at its recorded generation.
func (b *block) fresh(mem *Memory) bool {
	for i, pn := range b.pages {
		if mem.gens[pn] != b.gens[i] {
			return false
		}
	}
	return true
}

// BlockCacheStats is the translation cache's counter set.
type BlockCacheStats struct {
	Blocks       int    // blocks currently cached
	CachedInsts  int    // pre-decoded instructions currently cached
	Hits         uint64 // dispatches served from the cache
	Misses       uint64 // dispatches that had to (re-)translate
	Translations uint64 // blocks recorded
	ChainedJumps uint64 // unconditional jumps chained into superblocks
	PageFlushes  uint64 // blocks evicted by loud page writes
	GenEvictions uint64 // stale blocks caught by the generation check
	LayoutFlush  uint64 // whole-cache flushes from VMA-layout changes
}

// Add folds o into s (aggregation across processes/replicas).
func (s *BlockCacheStats) Add(o BlockCacheStats) {
	s.Blocks += o.Blocks
	s.CachedInsts += o.CachedInsts
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Translations += o.Translations
	s.ChainedJumps += o.ChainedJumps
	s.PageFlushes += o.PageFlushes
	s.GenEvictions += o.GenEvictions
	s.LayoutFlush += o.LayoutFlush
}

// blockCache holds one address space's translated blocks, keyed by
// entry address, with a per-page index for eviction.
type blockCache struct {
	blocks map[uint64]*block
	byPage map[uint64][]*block
	stats  BlockCacheStats
}

func newBlockCache() *blockCache {
	return &blockCache{
		blocks: map[uint64]*block{},
		byPage: map[uint64][]*block{},
	}
}

// blockCacheOf returns the memory's cache, creating it (and the
// generation space it validates against) on first use.
func (m *Memory) blockCacheOf() *blockCache {
	if m.bc == nil {
		m.bc = newBlockCache()
		if m.gens == nil {
			m.gens = map[uint64]uint64{}
		}
	}
	return m.bc
}

// lookup returns the valid, fresh cached block entered at addr, or
// nil after evicting whatever stale entry was found there.
func (bc *blockCache) lookup(mem *Memory, addr uint64) *block {
	b := bc.blocks[addr]
	if b == nil {
		bc.stats.Misses++
		return nil
	}
	if !b.valid || b.layout != mem.layoutGen || !b.fresh(mem) {
		bc.evict(b)
		bc.stats.GenEvictions++
		bc.stats.Misses++
		return nil
	}
	bc.stats.Hits++
	return b
}

// insert caches a freshly recorded block, replacing any previous
// entry at the same address.
func (bc *blockCache) insert(b *block, touched map[uint64]uint64) {
	if old := bc.blocks[b.entry]; old != nil {
		bc.evict(old)
	}
	b.pages = make([]uint64, 0, len(touched))
	for pn := range touched {
		b.pages = append(b.pages, pn)
	}
	sort.Slice(b.pages, func(i, j int) bool { return b.pages[i] < b.pages[j] })
	b.gens = make([]uint64, len(b.pages))
	for i, pn := range b.pages {
		b.gens[i] = touched[pn]
	}
	bc.blocks[b.entry] = b
	for _, pn := range b.pages {
		bc.byPage[pn] = append(bc.byPage[pn], b)
	}
	bc.stats.Translations++
}

// evict removes b from both indexes and clears its valid flag so any
// in-flight replay or chained superblock stops at the next
// instruction boundary.
func (bc *blockCache) evict(b *block) {
	b.valid = false
	if bc.blocks[b.entry] == b {
		delete(bc.blocks, b.entry)
	}
	for _, pn := range b.pages {
		list := bc.byPage[pn]
		kept := list[:0]
		for _, o := range list {
			if o != b {
				kept = append(kept, o)
			}
		}
		if len(kept) == 0 {
			delete(bc.byPage, pn)
		} else {
			bc.byPage[pn] = kept
		}
	}
}

// invalidatePage evicts every block whose fetch window touched pn —
// the loud-write protocol step.
func (bc *blockCache) invalidatePage(pn uint64) {
	list := bc.byPage[pn]
	if len(list) == 0 {
		return
	}
	for _, b := range append([]*block(nil), list...) {
		bc.evict(b)
		bc.stats.PageFlushes++
	}
}

// flushAll drops the entire cache — the layout-change protocol step.
func (bc *blockCache) flushAll() {
	for _, b := range bc.blocks {
		b.valid = false
	}
	bc.blocks = map[uint64]*block{}
	bc.byPage = map[uint64][]*block{}
	bc.stats.LayoutFlush++
}

// BlockCacheStats returns a snapshot of this address space's
// translation-cache counters.
func (m *Memory) BlockCacheStats() BlockCacheStats {
	if m.bc == nil {
		return BlockCacheStats{}
	}
	s := m.bc.stats
	s.Blocks = len(m.bc.blocks)
	s.CachedInsts = 0
	for _, b := range m.bc.blocks {
		s.CachedInsts += len(b.insts)
	}
	return s
}

// BlockInfo describes one cached block for introspection (tests, the
// fuzz harness, debugging).
type BlockInfo struct {
	Entry uint64
	Addrs []uint64
	Insts []isa.Inst
	Pages []uint64
}

// CachedBlocks returns the currently cached blocks sorted by entry
// address. Slices are copies; mutating them cannot corrupt the cache.
func (m *Memory) CachedBlocks() []BlockInfo {
	if m.bc == nil {
		return nil
	}
	out := make([]BlockInfo, 0, len(m.bc.blocks))
	for _, b := range m.bc.blocks {
		bi := BlockInfo{
			Entry: b.entry,
			Addrs: make([]uint64, len(b.insts)),
			Insts: make([]isa.Inst, len(b.insts)),
			Pages: append([]uint64(nil), b.pages...),
		}
		for i := range b.insts {
			bi.Addrs[i] = b.insts[i].addr
			bi.Insts[i] = b.insts[i].in
		}
		out = append(out, bi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}

// BlockCacheStats aggregates the translation-cache counters across
// every process on the machine.
func (m *Machine) BlockCacheStats() BlockCacheStats {
	var s BlockCacheStats
	for _, p := range m.procs {
		s.Add(p.mem.BlockCacheStats())
	}
	return s
}

// CacheDivergence records one lockstep-mode mismatch between a cached
// decode and a fresh fetch+decode of the same address — evidence of a
// stale cache (an invalidation protocol bug).
type CacheDivergence struct {
	PID    int
	Addr   uint64
	Detail string
}

func (d CacheDivergence) String() string {
	return fmt.Sprintf("pid %d @%#x: %s", d.PID, d.Addr, d.Detail)
}

// maxCacheDivs bounds the stored divergence reports; the total count
// keeps incrementing past the bound.
const maxCacheDivs = 64

// CacheDivergences returns the lockstep-mode divergences recorded so
// far (nil when none — the state every test asserts).
func (m *Machine) CacheDivergences() []CacheDivergence {
	return append([]CacheDivergence(nil), m.cacheDivs...)
}

// CacheDivergenceCount returns the total number of lockstep
// divergences observed, including any past the storage bound.
func (m *Machine) CacheDivergenceCount() uint64 { return m.cacheDivTotal }

func (m *Machine) recordCacheDiv(pid int, addr uint64, detail string) {
	m.cacheDivTotal++
	if len(m.cacheDivs) < maxCacheDivs {
		m.cacheDivs = append(m.cacheDivs, CacheDivergence{PID: pid, Addr: addr, Detail: detail})
	}
}

// verifyBlock is lockstep mode's dispatch-time oracle: re-fetch and
// re-decode every cached instruction and compare against the cache.
// On mismatch the divergence is recorded, the block evicted, and
// false returned so the caller re-records from live bytes — the guest
// never executes the stale decode.
func (m *Machine) verifyBlock(p *Process, b *block) bool {
	for i := range b.insts {
		ci := &b.insts[i]
		var in isa.Inst
		code, err := p.mem.FetchGuest(ci.addr, maxInstLen)
		if err == nil {
			in, err = isa.Decode(code)
		}
		if err != nil || in != ci.in {
			detail := fmt.Sprintf("cached %v, live decode %v", ci.in, in)
			if err != nil {
				detail = fmt.Sprintf("cached %v, live fetch/decode failed: %v", ci.in, err)
			}
			m.recordCacheDiv(p.pid, ci.addr, detail)
			p.mem.bc.evict(b)
			return false
		}
	}
	return true
}

// terminator reports whether op ends a basic block: any control
// transfer, trap, or syscall. (OpJMP is a terminator too — the
// recorder special-cases it for superblock chaining.)
func terminator(op isa.Opcode) bool {
	switch op {
	case isa.OpJMP, isa.OpJE, isa.OpJNE, isa.OpJL, isa.OpJG, isa.OpJLE, isa.OpJGE,
		isa.OpJMPr, isa.OpCALL, isa.OpCALLr, isa.OpRET,
		isa.OpSYS, isa.OpINT3, isa.OpHLT:
		return true
	}
	return false
}

// runSliceTranslated executes up to limit instructions of p through
// the block cache — the translating-engine counterpart of the
// interpreter's inner loop in runRound. It charges the virtual clock
// exactly as the interpreter does: one tick per step that the
// interpreter would have counted (retired instructions AND
// fetch/decode faults), nothing for a blocking syscall.
func (m *Machine) runSliceTranslated(p *Process, limit uint64) uint64 {
	if limit == 0 {
		return 0
	}
	bc := p.mem.blockCacheOf()
	var n uint64
	for n < limit && !p.exited {
		b := bc.lookup(p.mem, p.rip)
		if b != nil && m.execMode == ModeLockstep && !m.verifyBlock(p, b) {
			b = nil // evicted; fall through to re-record from live bytes
		}
		var charged uint64
		var blocked bool
		if b != nil {
			charged, blocked = m.replay(p, b, limit-n)
		} else {
			charged, blocked = m.record(p, bc, limit-n)
		}
		n += charged
		if blocked || charged == 0 {
			break
		}
	}
	return n
}

// replay executes a cached block through the shared exec1 core. It
// stops — without error, execution simply continues at the next
// dispatch — when the slice budget runs out, when control left the
// recorded straight line (a fault handler, a re-faulting
// instruction), when the block is evicted mid-flight (a store into
// its own page), or when a syscall would block (uncharged, exactly
// like the interpreter).
func (m *Machine) replay(p *Process, b *block, limit uint64) (charged uint64, blocked bool) {
	for i := range b.insts {
		if charged >= limit || p.exited {
			return charged, false
		}
		ci := &b.insts[i]
		if p.rip != ci.addr {
			return charged, false
		}
		if !m.exec1(p, ci.in, ci.addr) {
			return charged, true
		}
		charged++
		m.clock++
		if !b.valid {
			return charged, false
		}
	}
	return charged, false
}

// record is translation: one interpreted execution (the ordinary
// fetch→decode→exec1 path, with identical side effects and charging)
// that remembers its decodes and caches the resulting block. The
// fetch windows' page touches are recorded with their generation at
// first touch, so a block whose bytes changed under it — even during
// its own recording — can never validate.
func (m *Machine) record(p *Process, bc *blockCache, limit uint64) (charged uint64, blocked bool) {
	entry := p.rip
	insts := make([]cachedInst, 0, 16)
	touched := map[uint64]uint64{}
	var seen map[uint64]bool // lazily allocated; only superblocks need it
	layout := p.mem.layoutGen
	finalize := func() {
		if len(insts) > 0 {
			bc.insert(&block{entry: entry, insts: insts, layout: layout, valid: true}, touched)
		}
	}
	for charged < limit && !p.exited && len(insts) < maxBlockInsts {
		addr := p.rip
		code, err := p.mem.FetchGuest(addr, maxInstLen)
		if err != nil {
			m.fault(p, SIGSEGV, addr)
			charged++
			m.clock++
			break
		}
		for pn := addr / PageSize; pn <= (addr+uint64(len(code))-1)/PageSize; pn++ {
			if _, ok := touched[pn]; !ok {
				touched[pn] = p.mem.gens[pn]
			}
		}
		in, derr := isa.Decode(code)
		if derr != nil {
			m.fault(p, SIGSEGV, addr)
			charged++
			m.clock++
			break
		}
		if !m.exec1(p, in, addr) {
			// Blocking syscall: uncharged and unrecorded. The block
			// ends just before it; the syscall re-runs (and is
			// re-translated) when the process is next scheduled.
			finalize()
			return charged, true
		}
		charged++
		m.clock++
		insts = append(insts, cachedInst{addr: addr, in: in})
		if in.Op == isa.OpJMP {
			// Superblock chaining: follow the unconditional direct
			// jump and keep recording — unless it loops back into
			// this very block, which would unroll the loop.
			if seen == nil {
				seen = make(map[uint64]bool, len(insts)+1)
				for i := range insts {
					seen[insts[i].addr] = true
				}
			} else {
				seen[addr] = true
			}
			if seen[p.rip] {
				break
			}
			bc.stats.ChainedJumps++
			continue
		}
		if seen != nil {
			seen[addr] = true
		}
		if terminator(in.Op) {
			break
		}
		if p.rip != addr+uint64(in.Size) {
			// Execution faulted mid-straight-line and control went to
			// a handler (or the process died): end the block here.
			break
		}
	}
	finalize()
	return charged, false
}
