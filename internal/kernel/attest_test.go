package kernel

import (
	"crypto/sha256"
	"sort"
	"testing"

	"github.com/dynacut/dynacut/internal/delf"
)

func xVMA(start, end uint64) VMA {
	return VMA{Start: start, End: end, Perm: delf.PermR | delf.PermX, Name: "text", Anon: true}
}

// TestAttestHashPages: populated pages hash as their bytes, mapped but
// never-populated pages hash as zero pages, and hashing neither dirties
// nor populates anything — it is a pure observation.
func TestAttestHashPages(t *testing.T) {
	m := newMemory()
	if err := m.Map(rwVMA(0x1000, 0x3000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	m.ClearDirty()
	pop := len(m.PopulatedPages())

	got := m.HashPages([]uint64{1, 2})
	want := sha256.Sum256(m.PageData(1))
	if got[1] != want {
		t.Error("populated page digest mismatch")
	}
	if got[2] != zeroPageDigest {
		t.Error("unpopulated page should hash as a zero page")
	}
	if m.DirtyPageCount() != 0 || len(m.PopulatedPages()) != pop {
		t.Error("HashPages perturbed dirty/populated state")
	}
}

// TestAttestExecPages: only populated pages inside executable VMAs are
// reported, in sorted order.
func TestAttestExecPages(t *testing.T) {
	m := newMemory()
	if err := m.Map(xVMA(0x5000, 0x8000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(rwVMA(0x1000, 0x2000)); err != nil {
		t.Fatal(err)
	}
	// Populate the data page and two of the three text pages, written
	// out of address order.
	m.breakCoW(1)
	if err := m.SetPage(1, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	for _, pn := range []uint64{7, 5} {
		pg := make([]byte, PageSize)
		pg[0] = byte(pn)
		if err := m.SetPage(pn, pg); err != nil {
			t.Fatal(err)
		}
	}
	got := m.ExecPages()
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("ExecPages = %v, want [5 7]", got)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("ExecPages not sorted")
	}
}

// TestAttestFlipBitsSilentAndPrivate: FlipBits corrupts the live bytes
// without marking the page dirty (silent by construction) and breaks
// CoW first so a sibling sharing the page never sees the flip.
func TestAttestFlipBitsSilentAndPrivate(t *testing.T) {
	m := newMemory()
	if err := m.Map(xVMA(0x1000, 0x2000)); err != nil {
		t.Fatal(err)
	}
	pg := make([]byte, PageSize)
	pg[8] = 0x10
	if err := m.SetPage(1, pg); err != nil {
		t.Fatal(err)
	}
	sib := m.CloneCoW()
	m.ClearDirty()
	sib.ClearDirty()

	if m.FlipBits(0x1008, 0x80) != true {
		t.Fatal("FlipBits refused a populated page")
	}
	if got := m.PageData(1)[8]; got != 0x90 {
		t.Fatalf("flipped byte = %#x, want 0x90", got)
	}
	if m.DirtyPageCount() != 0 {
		t.Error("FlipBits marked the page dirty — the corruption must be silent")
	}
	if got := sib.PageData(1)[8]; got != 0x10 {
		t.Fatalf("flip leaked into a CoW sibling: %#x", got)
	}
	if m.FlipBits(0x9000, 0x01) {
		t.Error("FlipBits claimed to corrupt an unpopulated page")
	}
}
