package kernel

import (
	"github.com/dynacut/dynacut/internal/isa"
)

// maxInstLen is the longest instruction encoding (MOVri).
const maxInstLen = 10

// step executes one instruction of p. It returns false when the
// process would block on a syscall (RIP unchanged, no clock charge).
func (m *Machine) step(p *Process) bool {
	in, ok := m.fetchDecode(p)
	if !ok {
		return true
	}
	return m.exec1(p, in, p.rip)
}

// fetchDecode performs the instruction fetch and decode at p.rip.
// Both failure modes fault SIGSEGV exactly like executing unmapped or
// undecodable bytes always has: the step is charged to the clock but
// does not retire (p.insts unchanged).
func (m *Machine) fetchDecode(p *Process) (isa.Inst, bool) {
	code, err := p.mem.FetchGuest(p.rip, maxInstLen)
	if err != nil {
		m.fault(p, SIGSEGV, p.rip)
		return isa.Inst{}, false
	}
	in, err := isa.Decode(code)
	if err != nil {
		m.fault(p, SIGSEGV, p.rip)
		return isa.Inst{}, false
	}
	return in, true
}

// exec1 executes one already-decoded instruction located at addr
// (== p.rip). It is the single semantic core shared by the
// interpreter (which fetches and decodes every time) and the
// block-cache engine (which replays pre-decoded instructions), so the
// two execution modes cannot drift: ticks, dirty bits, trap ordering
// and tracer callbacks all happen here. It returns false when the
// process would block on a syscall (RIP unchanged, no clock charge).
func (m *Machine) exec1(p *Process, in isa.Inst, addr uint64) bool {
	next := addr + uint64(in.Size)

	switch in.Op {
	case isa.OpNOP:
		p.rip = next
	case isa.OpMOVri:
		p.regs[in.A] = uint64(in.Imm)
		p.rip = next
	case isa.OpMOVrr:
		p.regs[in.A] = p.regs[in.B]
		p.rip = next
	case isa.OpLOAD:
		v, err := p.mem.ReadU64(p.regs[in.B] + uint64(in.Imm))
		if err != nil {
			m.fault(p, SIGSEGV, p.regs[in.B]+uint64(in.Imm))
			return true
		}
		p.regs[in.A] = v
		p.rip = next
	case isa.OpSTORE:
		if err := p.mem.WriteU64(p.regs[in.B]+uint64(in.Imm), p.regs[in.A]); err != nil {
			m.fault(p, SIGSEGV, p.regs[in.B]+uint64(in.Imm))
			return true
		}
		p.rip = next
	case isa.OpLOADB:
		b, err := p.mem.ReadGuest(p.regs[in.B]+uint64(in.Imm), 1)
		if err != nil {
			m.fault(p, SIGSEGV, p.regs[in.B]+uint64(in.Imm))
			return true
		}
		p.regs[in.A] = uint64(b[0])
		p.rip = next
	case isa.OpSTOREB:
		if err := p.mem.WriteGuest(p.regs[in.B]+uint64(in.Imm), []byte{byte(p.regs[in.A])}); err != nil {
			m.fault(p, SIGSEGV, p.regs[in.B]+uint64(in.Imm))
			return true
		}
		p.rip = next
	case isa.OpADDrr:
		p.regs[in.A] += p.regs[in.B]
		p.rip = next
	case isa.OpSUBrr:
		p.regs[in.A] -= p.regs[in.B]
		p.rip = next
	case isa.OpMULrr:
		p.regs[in.A] *= p.regs[in.B]
		p.rip = next
	case isa.OpDIVrr:
		if p.regs[in.B] == 0 {
			m.fault(p, SIGFPE, addr)
			return true
		}
		p.regs[in.A] /= p.regs[in.B]
		p.rip = next
	case isa.OpANDrr:
		p.regs[in.A] &= p.regs[in.B]
		p.rip = next
	case isa.OpORrr:
		p.regs[in.A] |= p.regs[in.B]
		p.rip = next
	case isa.OpXORrr:
		p.regs[in.A] ^= p.regs[in.B]
		p.rip = next
	case isa.OpSHLrr:
		p.regs[in.A] <<= p.regs[in.B] & 63
		p.rip = next
	case isa.OpSHRrr:
		p.regs[in.A] >>= p.regs[in.B] & 63
		p.rip = next
	case isa.OpADDri:
		p.regs[in.A] += uint64(in.Imm)
		p.rip = next
	case isa.OpSUBri:
		p.regs[in.A] -= uint64(in.Imm)
		p.rip = next
	case isa.OpMULri:
		p.regs[in.A] *= uint64(in.Imm)
		p.rip = next
	case isa.OpANDri:
		p.regs[in.A] &= uint64(in.Imm)
		p.rip = next
	case isa.OpORri:
		p.regs[in.A] |= uint64(in.Imm)
		p.rip = next
	case isa.OpXORri:
		p.regs[in.A] ^= uint64(in.Imm)
		p.rip = next
	case isa.OpSHLri:
		p.regs[in.A] <<= uint64(in.Imm) & 63
		p.rip = next
	case isa.OpSHRri:
		p.regs[in.A] >>= uint64(in.Imm) & 63
		p.rip = next
	case isa.OpCMPrr:
		a, b := p.regs[in.A], p.regs[in.B]
		p.zf = a == b
		p.lf = int64(a) < int64(b)
		p.rip = next
	case isa.OpCMPri:
		a, b := p.regs[in.A], uint64(in.Imm)
		p.zf = a == b
		p.lf = int64(a) < int64(b)
		p.rip = next
	case isa.OpJMP:
		m.endBlock(p, addr, in.Size)
		p.rip = next + uint64(in.Imm)
	case isa.OpJE, isa.OpJNE, isa.OpJL, isa.OpJG, isa.OpJLE, isa.OpJGE:
		m.endBlock(p, addr, in.Size)
		taken := false
		switch in.Op {
		case isa.OpJE:
			taken = p.zf
		case isa.OpJNE:
			taken = !p.zf
		case isa.OpJL:
			taken = p.lf
		case isa.OpJG:
			taken = !p.lf && !p.zf
		case isa.OpJLE:
			taken = p.lf || p.zf
		case isa.OpJGE:
			taken = !p.lf
		}
		if taken {
			p.rip = next + uint64(in.Imm)
		} else {
			p.rip = next
		}
	case isa.OpJMPr:
		m.endBlock(p, addr, in.Size)
		p.rip = p.regs[in.A]
	case isa.OpCALL:
		m.endBlock(p, addr, in.Size)
		if !m.push(p, next) {
			return true
		}
		p.rip = next + uint64(in.Imm)
	case isa.OpCALLr:
		m.endBlock(p, addr, in.Size)
		if !m.push(p, next) {
			return true
		}
		p.rip = p.regs[in.A]
	case isa.OpRET:
		m.endBlock(p, addr, in.Size)
		v, ok := m.pop(p)
		if !ok {
			return true
		}
		p.rip = v
	case isa.OpPUSH:
		if !m.push(p, p.regs[in.A]) {
			return true
		}
		p.rip = next
	case isa.OpPOP:
		v, ok := m.pop(p)
		if !ok {
			return true
		}
		p.regs[in.A] = v
		p.rip = next
	case isa.OpLEA:
		p.regs[in.A] = next + uint64(in.Imm)
		p.rip = next
	case isa.OpSYS:
		if !m.syscall(p, next) {
			return false // would block: retry this instruction later
		}
	case isa.OpINT3:
		// End the block *before* the trap: the INT3 byte itself was
		// reached but the original code there never runs.
		m.endBlockAt(p, addr)
		m.fault(p, SIGTRAP, addr)
	case isa.OpHLT:
		m.endBlockAt(p, addr)
		m.fault(p, SIGSEGV, addr)
	default:
		m.fault(p, SIGILL, addr)
	}

	p.insts++
	p.blockStartIfNeeded()
	return true
}

// blockStartIfNeeded begins a new basic block after a control
// transfer ended the previous one.
func (p *Process) blockStartIfNeeded() {
	if p.blockStart == 0 {
		p.blockStart = p.rip
	}
}

// endBlock reports a completed basic block that ends with the
// instruction at addr (inclusive).
func (m *Machine) endBlock(p *Process, addr uint64, size int) {
	if m.tracer != nil && p.blockStart != 0 {
		m.tracer.OnBlock(p.pid, p.blockStart, addr+uint64(size)-p.blockStart)
	}
	p.blockStart = 0
}

// endBlockAt reports a block cut short *before* addr (trap/fault at
// addr: the bytes at addr never executed as original code).
func (m *Machine) endBlockAt(p *Process, addr uint64) {
	if m.tracer != nil && p.blockStart != 0 && addr > p.blockStart {
		m.tracer.OnBlock(p.pid, p.blockStart, addr-p.blockStart)
	}
	p.blockStart = 0
}

func (m *Machine) push(p *Process, v uint64) bool {
	sp := p.regs[isa.SP] - 8
	if err := p.mem.WriteU64(sp, v); err != nil {
		m.fault(p, SIGSEGV, sp)
		return false
	}
	p.regs[isa.SP] = sp
	return true
}

func (m *Machine) pop(p *Process) (uint64, bool) {
	sp := p.regs[isa.SP]
	v, err := p.mem.ReadU64(sp)
	if err != nil {
		m.fault(p, SIGSEGV, sp)
		return 0, false
	}
	p.regs[isa.SP] = sp + 8
	return v, true
}

// fault delivers a signal: if the process registered a handler, a
// signal frame is pushed and control transfers to the handler with
// r1=signo, r2=fault address, r3=frame pointer; otherwise the process
// is terminated with 128+signo (the default action — what static
// debloaters do when removed code is reached).
func (m *Machine) fault(p *Process, sig Signal, faultAddr uint64) {
	if m.obs != nil {
		m.obs.Add("kernel.signals", 1)
		if sig == SIGTRAP {
			m.obs.Add("kernel.traps", 1)
		}
	}
	act, ok := p.sig[sig]
	if !ok || act.Handler == 0 {
		m.terminate(p, 128+int(sig), sig)
		return
	}
	frame := p.regs[isa.SP] - FrameSize
	ok = true
	ok = ok && p.mem.WriteU64(frame+FrameRIPOff, p.rip) == nil
	ok = ok && p.mem.WriteU64(frame+FrameFlagsOff, p.Flags()) == nil
	for i := 0; ok && i < isa.NumRegisters; i++ {
		ok = p.mem.WriteU64(frame+FrameRegsOff+uint64(8*i), p.regs[i]) == nil
	}
	// Push the restorer return address below the frame.
	ok = ok && p.mem.WriteU64(frame-8, act.Restorer) == nil
	if !ok {
		// Stack unusable: double fault, terminate.
		m.terminate(p, 128+int(SIGSEGV), SIGSEGV)
		return
	}
	p.regs[isa.SP] = frame - 8
	p.regs[1] = uint64(sig)
	p.regs[2] = faultAddr
	p.regs[3] = frame
	p.rip = act.Handler
	p.blockStart = 0
}

// sigreturn restores the context saved in the frame at frameAddr.
func (m *Machine) sigreturn(p *Process, frameAddr uint64) {
	rip, err1 := p.mem.ReadU64(frameAddr + FrameRIPOff)
	flags, err2 := p.mem.ReadU64(frameAddr + FrameFlagsOff)
	if err1 != nil || err2 != nil {
		m.terminate(p, 128+int(SIGSEGV), SIGSEGV)
		return
	}
	for i := 0; i < isa.NumRegisters; i++ {
		v, err := p.mem.ReadU64(frameAddr + FrameRegsOff + uint64(8*i))
		if err != nil {
			m.terminate(p, 128+int(SIGSEGV), SIGSEGV)
			return
		}
		p.regs[i] = v
	}
	p.SetFlags(flags)
	p.rip = rip
	p.blockStart = 0
}
