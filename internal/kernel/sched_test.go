package kernel

import (
	"testing"
)

// spinnerSrc increments its own counter forever.
const spinnerSrc = `
.text
.global _start
_start:
	mov r8, =c
loop:
	load r1, [r8]
	add r1, 1
	store [r8], r1
	jmp loop
.data
c: .quad 0
`

// TestSchedulerFairness: two runnable processes must make comparable
// progress under the round-robin scheduler.
func TestSchedulerFairness(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "spin", spinnerSrc)
	p1, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	exe2 := buildExe(t, "spin2", spinnerSrc)
	p2, err := m.Load(exe2)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100_000)
	i1, i2 := p1.Insts(), p2.Insts()
	if i1 == 0 || i2 == 0 {
		t.Fatalf("starvation: %d vs %d", i1, i2)
	}
	ratio := float64(i1) / float64(i2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair split: %d vs %d (ratio %.2f)", i1, i2, ratio)
	}
}

// TestRunStepBudgetExact: Run must retire exactly the requested
// number of instructions when work is available.
func TestRunStepBudgetExact(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "spin", spinnerSrc)
	if _, err := m.Load(exe); err != nil {
		t.Fatal(err)
	}
	before := m.Clock()
	if n := m.Run(777); n != 777 {
		t.Fatalf("Run(777) = %d", n)
	}
	if m.Clock()-before != 777 {
		t.Fatalf("clock advanced %d", m.Clock()-before)
	}
}

// TestRunUntilHonorsBudget: an unsatisfiable predicate must not spin
// past the budget.
func TestRunUntilHonorsBudget(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "spin", spinnerSrc)
	if _, err := m.Load(exe); err != nil {
		t.Fatal(err)
	}
	before := m.Clock()
	if m.RunUntil(func() bool { return false }, 5000) {
		t.Fatal("false predicate satisfied")
	}
	ran := m.Clock() - before
	if ran < 5000 || ran > 6200 {
		t.Fatalf("RunUntil ran %d steps for a 5000 budget", ran)
	}
}

// TestExitedProcessesStopScheduling.
func TestExitedProcessesStopScheduling(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "quit", `
.text
.global _start
_start:
	mov r0, 1
	mov r1, 0
	syscall
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if !p.Exited() {
		t.Fatal("did not exit")
	}
	insts := p.Insts()
	if m.Run(1000) != 0 {
		t.Fatal("dead machine made progress")
	}
	if p.Insts() != insts {
		t.Fatal("exited process executed instructions")
	}
	if got := len(m.Processes()); got != 0 {
		t.Fatalf("live processes = %d", got)
	}
	// The table entry remains until reaped.
	if _, err := m.Process(p.PID()); err != nil {
		t.Fatal("exited process entry vanished")
	}
	m.Remove(p.PID())
	if _, err := m.Process(p.PID()); err == nil {
		t.Fatal("Remove did not delete the entry")
	}
}

// TestChildrenListing.
func TestChildrenListing(t *testing.T) {
	m := NewMachine()
	exe := buildExe(t, "forker", `
.text
.global _start
_start:
	mov r0, 9
	syscall
	mov r0, 9
	syscall
spin:
	mov r0, 14
	syscall
	jmp spin
`)
	p, err := m.Load(exe)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(5000)
	kids := m.Children(p.PID())
	// Parent forks twice; first child also executes the second fork.
	if len(kids) < 2 {
		t.Fatalf("children = %d", len(kids))
	}
	for _, k := range kids {
		if k.Parent() != p.PID() {
			t.Errorf("child %d parent = %d", k.PID(), k.Parent())
		}
	}
}

// TestRunRoundMatchesRun: the public single-round stepper must be
// exactly one lap of Run's scheduler — same fair split, same clock
// accounting — so a caller interleaving work at round boundaries (the
// live-patch quiescence loop) sees the identical execution Run would
// have produced.
func TestRunRoundMatchesRun(t *testing.T) {
	build := func(t *testing.T) (*Machine, *Process, *Process) {
		m := NewMachine()
		p1, err := m.Load(buildExe(t, "spin", spinnerSrc))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := m.Load(buildExe(t, "spin2", spinnerSrc))
		if err != nil {
			t.Fatal(err)
		}
		return m, p1, p2
	}

	// One round = one 64-instruction slice per runnable process.
	m, p1, p2 := build(t)
	before := m.Clock()
	if n := m.RunRound(); n != 128 {
		t.Fatalf("RunRound() = %d, want 128 (2 procs x 64-step slice)", n)
	}
	if m.Clock()-before != 128 {
		t.Fatalf("clock advanced %d, want 128", m.Clock()-before)
	}
	if p1.Insts() != 64 || p2.Insts() != 64 {
		t.Fatalf("unfair round: %d vs %d", p1.Insts(), p2.Insts())
	}

	// k rounds must land in the same state as one Run of the same
	// budget: the refactor of Run onto runRound must not have changed
	// scheduling order or clock math.
	mr, r1, r2 := build(t)
	for i := 0; i < 5; i++ {
		if n := mr.RunRound(); n != 128 {
			t.Fatalf("round %d = %d steps", i, n)
		}
	}
	mb, b1, b2 := build(t)
	mb.Run(5 * 128)
	if r1.Insts() != b1.Insts() || r2.Insts() != b2.Insts() || mr.Clock() != mb.Clock() {
		t.Fatalf("RunRound diverged from Run: insts %d/%d vs %d/%d, clock %d vs %d",
			r1.Insts(), r2.Insts(), b1.Insts(), b2.Insts(), mr.Clock(), mb.Clock())
	}

	// No runnable work: a round retires nothing and says so.
	empty := NewMachine()
	if n := empty.RunRound(); n != 0 {
		t.Fatalf("RunRound on an empty machine = %d, want 0", n)
	}
}
